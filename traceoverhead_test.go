package fbdsim

// Overhead guard for the memtrace recorder (ISSUE 2 acceptance
// criterion): with tracing disabled the instrumented simulator must stay
// within 2% of its pre-instrumentation throughput. CI runs
// BenchmarkTraceDisabled/BenchmarkTraceEnabled and TestTraceOverhead on
// every push; the disabled path's only per-request costs are a nil
// pointer check at completion and two timestamp stores in the channel
// models, both measured here.

import (
	"context"
	"testing"
	"time"
)

// overheadConfig is the workload both overhead measurements run: the
// AMB-prefetch system (the longest instrumented path) on one core.
func overheadConfig(traced bool) Config {
	cfg := WithAMBPrefetch(Default())
	cfg.MaxInsts = 60_000
	cfg.WarmupInsts = 10_000
	cfg.Trace.Enabled = traced
	return cfg
}

func runOnce(tb testing.TB, traced bool) (Results, time.Duration) {
	tb.Helper()
	start := time.Now()
	res, err := Run(context.Background(), overheadConfig(traced), []string{"swim"})
	if err != nil {
		tb.Fatal(err)
	}
	return res, time.Since(start)
}

// TestTraceOverhead checks the two properties the recorder promises:
//
//  1. Tracing is purely observational — a traced run and an untraced run
//     of the same configuration produce identical simulation results.
//  2. The disabled path is not meaningfully slower than the enabled one.
//     Absolute wall-clock on shared CI machines is too noisy to resolve
//     the documented <2% bound directly (that bound is established with
//     repeated benchstat runs; see DESIGN.md), so the regression guard
//     interleaves the two variants (equal exposure to background load),
//     takes the best of five runs each, and asserts the disabled path
//     does not exceed the enabled path by more than 50% — the enabled
//     path does all the recorder work and measures only ~10-15% slower,
//     so a trip means the "disabled" guard is doing real per-request work.
func TestTraceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short")
	}
	resOff, _ := runOnce(t, false)
	resOn, _ := runOnce(t, true)

	if resOff.Cycles != resOn.Cycles || resOff.Reads != resOn.Reads ||
		resOff.Writes != resOn.Writes || resOff.AMBHits != resOn.AMBHits ||
		resOff.TotalIPC() != resOn.TotalIPC() {
		t.Errorf("tracing changed simulation results:\n  off: cycles=%d reads=%d writes=%d hits=%d ipc=%v\n  on:  cycles=%d reads=%d writes=%d hits=%d ipc=%v",
			resOff.Cycles, resOff.Reads, resOff.Writes, resOff.AMBHits, resOff.TotalIPC(),
			resOn.Cycles, resOn.Reads, resOn.Writes, resOn.AMBHits, resOn.TotalIPC())
	}
	if resOff.Trace != nil {
		t.Error("untraced run must not carry a trace summary")
	}
	if resOn.Trace == nil {
		t.Fatal("traced run must carry a trace summary")
	}
	if resOn.Trace.Reads == 0 {
		t.Error("traced run recorded no reads")
	}

	// Interleaved best-of-5 wall times: alternating variants exposes both
	// to the same background load, and the minimum picks each variant's
	// least-contended window.
	off := time.Duration(1<<62 - 1)
	on := off
	for i := 0; i < 5; i++ {
		if _, d := runOnce(t, false); d < off {
			off = d
		}
		if _, d := runOnce(t, true); d < on {
			on = d
		}
	}
	if float64(off) > float64(on)*1.5 {
		t.Errorf("disabled tracing (%v) more than 50%% slower than enabled (%v): the nil-guard path regressed", off, on)
	}
}

// BenchmarkTraceDisabled times the production configuration: recorder
// absent, one nil check per completion. Compare against
// BenchmarkTraceEnabled with benchstat to quantify recorder cost.
func BenchmarkTraceDisabled(b *testing.B) {
	benchTraceRun(b, false)
}

// BenchmarkTraceEnabled times the same simulation with the recorder
// attached (event retention, histograms, epoch sampling).
func BenchmarkTraceEnabled(b *testing.B) {
	benchTraceRun(b, true)
}

func benchTraceRun(b *testing.B, traced bool) {
	skipIfShort(b)
	var insts int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), overheadConfig(traced), []string{"swim"})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Committed {
			insts += c
		}
	}
	if insts > 0 {
		b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minsts/s")
	}
}
