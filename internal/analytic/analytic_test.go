package analytic

import (
	"context"
	"math"
	"testing"
	"time"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

func TestIdleLatencies(t *testing.T) {
	// The unloaded path latencies must reproduce the paper's Figure 4
	// numbers for the default FB-DIMM configuration: ~63 ns for a DRAM
	// read, ~33 ns for an AMB-cache hit.
	var c Calibration
	c.deriveChannelTerms(config.WithAMBPrefetch(config.Default()))
	if math.Abs(c.IdleMissNS-63) > 3 {
		t.Errorf("idle miss latency %.1f ns, want ~63 ns", c.IdleMissNS)
	}
	if math.Abs(c.IdleHitNS-33) > 3 {
		t.Errorf("idle AMB-hit latency %.1f ns, want ~33 ns", c.IdleHitNS)
	}
	// Without AMB prefetching (or with full-latency hits) there is no
	// short path.
	c.deriveChannelTerms(config.Default())
	if c.IdleHitNS != c.IdleMissNS {
		t.Errorf("FBD baseline hit latency %.1f != miss %.1f", c.IdleHitNS, c.IdleMissNS)
	}
	c.deriveChannelTerms(config.WithFullLatencyHits(config.Default()))
	if c.IdleHitNS != c.IdleMissNS {
		t.Errorf("FBD-APFL hit latency %.1f != miss %.1f", c.IdleHitNS, c.IdleMissNS)
	}
}

func TestMD1(t *testing.T) {
	s := 9.6 // one 64B line at 6.67 GB/s
	if w := mD1Wait(0, s); w != 0 {
		t.Errorf("idle queue wait %v, want 0", w)
	}
	// W(0.5) = 0.5*s/(2*0.5) = s/2.
	if w := mD1Wait(0.5, s); math.Abs(w-s/2) > 1e-9 {
		t.Errorf("W(0.5) = %v, want %v", w, s/2)
	}
	// Monotone in rho, finite at saturation.
	if w1, w2 := mD1Wait(0.5, s), mD1Wait(0.9, s); w2 <= w1 {
		t.Errorf("wait not monotone: W(0.9)=%v <= W(0.5)=%v", w2, w1)
	}
	if w := mD1Wait(2.0, s); math.IsInf(w, 0) || math.IsNaN(w) || w < 0 {
		t.Errorf("overloaded wait %v not finite", w)
	}
	// Quantiles: zero below the idle atom, increasing above it.
	if q := mD1Quantile(0.3, s, 0.5); q != 0 {
		t.Errorf("p50 at rho=0.3 = %v, want 0 (idle atom)", q)
	}
	q90, q99 := mD1Quantile(0.5, s, 0.90), mD1Quantile(0.5, s, 0.99)
	if !(q99 > q90 && q90 > 0) {
		t.Errorf("tail quantiles not increasing: p90 %v p99 %v", q90, q99)
	}
}

func TestCalibrateAndEstimate(t *testing.T) {
	ResetCache()
	cfg := config.WithAMBPrefetch(config.Default())
	cfg.MaxInsts = 1_000_000
	cfg.WarmupInsts = 100_000
	ctx := context.Background()

	cal, err := Calibrate(ctx, cfg, []string{"swim"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cal.ProbeIPC <= 0 || cal.ReadsPerInst <= 0 {
		t.Fatalf("degenerate calibration: %+v", cal)
	}
	if cal.AMBHitRate <= 0.3 || cal.AMBHitRate > 1 {
		t.Errorf("AMB hit rate %.3f implausible for FBD-AP/swim", cal.AMBHitRate)
	}

	// The query itself must be sub-10ms (the acceptance bound); give it a
	// generous margin below that to keep slow CI honest.
	start := time.Now()
	r := cal.Estimate(cfg)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("Estimate took %v, want < 10ms", d)
	}
	if r.Estimate == nil || r.Estimate.Tier != "analytic" {
		t.Fatalf("Estimate results missing analytic tier marker: %+v", r.Estimate)
	}
	if r.Estimate.Calibration != cal.Key {
		t.Errorf("estimate calibration key %q != %q", r.Estimate.Calibration, cal.Key)
	}
	// Results shape: budget-scaled instruction counts, positive rates.
	if got := r.Committed[0]; got != cfg.MaxInsts {
		t.Errorf("single-core committed %d, want the %d budget", got, cfg.MaxInsts)
	}
	if r.TotalIPC() <= 0 || r.Cycles <= 0 || r.Reads <= 0 {
		t.Errorf("implausible estimate: ipc %v cycles %d reads %d", r.TotalIPC(), r.Cycles, r.Reads)
	}
	if r.AvgReadLatencyNS < cal.IdleHitNS || r.AvgReadLatencyNS > 10*cal.IdleMissNS {
		t.Errorf("estimated latency %.1f ns outside sane range", r.AvgReadLatencyNS)
	}
	if !(r.P99LatencyNS >= r.P90LatencyNS && r.P90LatencyNS >= r.P50LatencyNS) {
		t.Errorf("percentiles not ordered: p50 %.1f p90 %.1f p99 %.1f", r.P50LatencyNS, r.P90LatencyNS, r.P99LatencyNS)
	}

	// Calibration is memoized: a second call for a different budget of the
	// same (config, workload) returns the identical object.
	cfg2 := cfg
	cfg2.MaxInsts = 5_000_000
	cal2, err := Calibrate(ctx, cfg2, []string{"swim"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cal2 != cal {
		t.Error("calibration not memoized across budgets")
	}
	// Estimates scale with the budget.
	r2 := cal2.Estimate(cfg2)
	if r2.Committed[0] != cfg2.MaxInsts {
		t.Errorf("budget-5M committed %d", r2.Committed[0])
	}
	// Budget-invariant up to the integer rounding of cycles and committed
	// counts.
	if math.Abs(r2.TotalIPC()-r.TotalIPC()) > 1e-4 {
		t.Errorf("IPC should be budget-invariant: %v vs %v", r2.TotalIPC(), r.TotalIPC())
	}
}

func TestEstimateAccuracyCoarse(t *testing.T) {
	// The analytic tier is a triage tool, not a replacement: its IPC
	// should land within ~15% of cycle-accurate on a seed workload (the
	// probe provides the throughput; the model the latency shape).
	if testing.Short() {
		t.Skip("full run for comparison is not short")
	}
	ResetCache()
	cfg := config.Default()
	cfg.MaxInsts = 600_000
	cfg.WarmupInsts = 60_000
	r, err := Run(context.Background(), cfg, []string{"swim"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := system.RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	errPct := 100 * math.Abs(r.TotalIPC()-full.TotalIPC()) / full.TotalIPC()
	t.Logf("analytic IPC %.4f vs full %.4f (err %.1f%%), latency %.1f vs %.1f ns",
		r.TotalIPC(), full.TotalIPC(), errPct, r.AvgReadLatencyNS, full.AvgReadLatencyNS)
	if errPct > 15 {
		t.Errorf("analytic IPC error %.1f%% > 15%%", errPct)
	}
	if lat := math.Abs(r.AvgReadLatencyNS-full.AvgReadLatencyNS) / full.AvgReadLatencyNS; lat > 0.4 {
		t.Errorf("analytic latency off by %.0f%%", 100*lat)
	}
}
