// Package analytic implements the lowest-cost fidelity tier: a closed-form
// M/D/1 queueing model of the FB-DIMM channel, calibrated once per
// (configuration, workload) pair by a short cycle-accurate probe run.
// After calibration a query is pure arithmetic — no events, no state — and
// returns in well under ten milliseconds, which makes the tier suitable for
// interactive triage over large design spaces: sweep analytically, then
// re-run the interesting corner cycle-accurately (or sampled).
//
// The model follows the two-queue decomposition of DROPLET's
// DramPerfModelPrefetch (see SNIPPETS.md): demand reads and prefetch
// fetches wait in separate queues in front of the same channel, each with a
// deterministic service time equal to one cacheline transfer at the
// channel's data rate. A read's latency is the unloaded (idle) path latency
// plus the M/D/1 queueing delay of its queue; AMB-cache hits skip the DRAM
// core and pay the shorter idle latency of the paper's Figure 4. The
// workload-dependent terms — instruction throughput, demand/prefetch/write
// intensities and the AMB hit rate — come from the probe; the
// configuration-dependent terms — idle latencies and channel bandwidth —
// come from the config, so one calibration answers queries at any
// instruction budget.
package analytic

import (
	"context"
	"fmt"
	"math"
	"sync"

	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/snapshot"
	"fbdsim/internal/system"
)

// Options tunes the calibration probe. The zero value selects defaults.
type Options struct {
	// ProbeWarmup and ProbeMeasure are the warmup and measured instruction
	// counts of the cycle-accurate probe run (defaults 40k / 160k — on the
	// order of a hundred milliseconds of wall clock on the seed workloads,
	// and the shortest span at which the seed traces' throughput reaches
	// steady state).
	ProbeWarmup  int64
	ProbeMeasure int64
}

func (o Options) withDefaults() Options {
	if o.ProbeWarmup <= 0 {
		o.ProbeWarmup = 40_000
	}
	if o.ProbeMeasure <= 0 {
		o.ProbeMeasure = 160_000
	}
	return o
}

// Calibration holds the per-(config, workload) terms of the model. It is
// immutable after Calibrate returns; Estimate queries are pure functions of
// it and may run concurrently.
type Calibration struct {
	// Key identifies the (budget-masked config, workload) pair this
	// calibration answers for — the memoization key.
	Key string

	Benchmarks []string
	Cores      int

	// Probe-measured workload terms, all per committed instruction (or
	// dimensionless rates).
	ProbeIPC        float64   // total IPC of the probe window
	CoreShare       []float64 // per-core share of committed instructions
	ReadsPerInst    float64   // demand reads reaching the controller
	WritesPerInst   float64   // writebacks reaching the controller
	PrefetchPerInst float64   // AMB group-prefetch fetches
	AMBHitRate      float64   // fraction of reads served from the AMB cache
	ProbeLatencyNS  float64   // probe's average loaded read latency

	// Config-derived channel terms.
	ServiceNS   float64 // one cacheline transfer at the channel data rate
	IdleMissNS  float64 // unloaded latency of a read served by the DRAM core
	IdleHitNS   float64 // unloaded latency of an AMB-cache hit
	BandwidthGB float64 // aggregate peak read bandwidth, GB/s
	Channels    int

	// LatencyResidualNS anchors the model to the probe: the difference
	// between the probe's measured loaded latency and the model's own
	// prediction at the calibration operating point. The closed-form terms
	// capture idle path and first-order queueing; contention the model does
	// not represent (bank conflicts, refresh, write-drain interference,
	// scheduler effects) lands in this calibrated offset.
	LatencyResidualNS float64
}

// calCache memoizes calibrations across queries: the probe is the expensive
// part, and sweeps ask the same (config, workload) point at many budgets.
var calCache sync.Map // key string -> *Calibration

// CalibrationKey returns the memoization identity of a (config, workload)
// pair: the snapshot fingerprint of the configuration with its instruction
// budgets masked out, so runs that differ only in budget share one probe.
func CalibrationKey(cfg config.Config, benchmarks []string) string {
	cfg.MaxInsts = 0
	cfg.WarmupInsts = 0
	return "analytic:" + snapshot.Fingerprint(cfg, benchmarks)
}

// Calibrate returns the calibration for (cfg, benchmarks), running the
// cycle-accurate probe on a cache miss. Concurrent callers for the same key
// may race the probe; the first store wins and the work is idempotent.
func Calibrate(ctx context.Context, cfg config.Config, benchmarks []string, opt Options) (*Calibration, error) {
	key := CalibrationKey(cfg, benchmarks)
	if c, ok := calCache.Load(key); ok {
		return c.(*Calibration), nil
	}
	opt = opt.withDefaults()

	probe := cfg
	probe.WarmupInsts = opt.ProbeWarmup
	probe.MaxInsts = opt.ProbeMeasure
	probe.Trace = config.Trace{}
	r, err := system.RunWorkloadContext(ctx, probe, benchmarks)
	if err != nil {
		return nil, fmt.Errorf("analytic: calibration probe: %w", err)
	}

	var committed int64
	for _, c := range r.Committed {
		committed += c
	}
	if committed <= 0 || r.Cycles <= 0 {
		return nil, fmt.Errorf("analytic: calibration probe measured nothing (committed %d, cycles %d)", committed, r.Cycles)
	}
	cal := &Calibration{
		Key:           key,
		Benchmarks:    append([]string(nil), benchmarks...),
		Cores:         r.Cores,
		ProbeIPC:      r.TotalIPC(),
		CoreShare:     make([]float64, r.Cores),
		ReadsPerInst:  float64(r.Reads) / float64(committed),
		WritesPerInst: float64(r.Writes) / float64(committed),
		PrefetchPerInst: float64(r.AMB.Prefetched) /
			float64(committed),
		ProbeLatencyNS: r.AvgReadLatencyNS,
	}
	for i, c := range r.Committed {
		cal.CoreShare[i] = float64(c) / float64(committed)
	}
	if r.Reads > 0 {
		cal.AMBHitRate = float64(r.AMBHits) / float64(r.Reads)
	}
	cal.deriveChannelTerms(cfg)
	if cal.ProbeLatencyNS > 0 {
		cal.LatencyResidualNS = cal.ProbeLatencyNS - cal.modelLatencyNS()
	}
	calCache.Store(key, cal)
	return cal, nil
}

// deriveChannelTerms fills the config-dependent model constants.
func (c *Calibration) deriveChannelTerms(cfg config.Config) {
	m := &cfg.Mem
	c.Channels = m.LogicalChannels
	c.BandwidthGB = m.PeakChannelBandwidth() / 1e9

	// Deterministic service time: one cacheline on one logical channel
	// (GangWidth physical channels in lockstep).
	perChannel := m.DataRate.BytesPerSecond() * float64(m.GangWidth)
	c.ServiceNS = float64(m.LineBytes) / perChannel * 1e9

	// Unloaded latencies, per the paper's Figure 4 decomposition: the
	// controller overhead, one DRAM clock to serialize the command frame,
	// the southbound hop chain, the DRAM core (ACT-to-data for a miss,
	// nothing for an AMB hit), the data burst, and the northbound return
	// hops. Hop counts assume the average DIMM is mid-chain. For the
	// default configuration this reproduces the paper's ~63 ns idle read
	// and ~33 ns AMB hit.
	hops := float64(m.DIMMsPerChannel) / 2
	if hops < 1 {
		hops = 1
	}
	hopNS := m.AMBHopDelay.Nanoseconds()
	ctrl := m.CtrlOverhead.Nanoseconds()
	cmd := m.DataRate.TCK().Nanoseconds()
	dramCore := (m.Timing.TRCD + m.Timing.TCL).Nanoseconds()
	c.IdleMissNS = ctrl + cmd + hops*hopNS + dramCore + c.ServiceNS + hops*hopNS
	c.IdleHitNS = ctrl + cmd + hops*hopNS + c.ServiceNS + hops*hopNS
	if m.FullLatencyHits || !m.AMBPrefetch {
		c.IdleHitNS = c.IdleMissNS
	}
}

// mD1Wait returns the mean M/D/1 queueing delay for utilization rho and
// deterministic service time s: W = rho*s / (2*(1-rho)). Utilization is
// clamped below saturation so overloaded configurations report a large
// finite delay instead of a singularity.
func mD1Wait(rho, s float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho > 0.97 {
		rho = 0.97
	}
	return rho * s / (2 * (1 - rho))
}

// mD1Quantile approximates the q-quantile of the M/D/1 waiting time using
// the heavy-traffic exponential tail P(W > t) = rho * exp(-2(1-rho)t/s):
// zero below the (1-rho) atom, the inverted tail above it.
func mD1Quantile(rho, s, q float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > 0.97 {
		rho = 0.97
	}
	if q <= 1-rho {
		return 0
	}
	return s / (2 * (1 - rho)) * math.Log(rho/(1-q))
}

// queueState evaluates the two-queue load at the calibration's operating
// point: utilizations and mean waits of the demand and prefetch queues.
func (c *Calibration) queueState() (rhoDemand, rhoPrefetch, waitDemand, waitPrefetch float64) {
	// Arrival rates against the channel pool. Demand reads and writebacks
	// share the demand queue; AMB group prefetches have their own queue
	// (DROPLET's split): prefetch bursts then delay later prefetches, not
	// the demand reads the AMB cache is busy servicing.
	instPerNS := c.ProbeIPC * clock.CPUFrequencyGHz
	demandPerNS := (c.ReadsPerInst*(1-c.AMBHitRate) + c.WritesPerInst) * instPerNS / float64(c.Channels)
	prefetchPerNS := c.PrefetchPerInst * instPerNS / float64(c.Channels)

	rhoDemand = demandPerNS * c.ServiceNS
	rhoPrefetch = prefetchPerNS * c.ServiceNS
	waitDemand = mD1Wait(rhoDemand, c.ServiceNS)
	// The prefetch queue drains behind demand traffic on the same physical
	// link, so its wait sees the combined utilization.
	waitPrefetch = mD1Wait(rhoDemand+rhoPrefetch, c.ServiceNS)
	return
}

// modelLatencyNS is the model's average read latency before residual
// anchoring: idle path plus first-order queueing delay.
func (c *Calibration) modelLatencyNS() float64 {
	rhoD, rhoP, waitD, waitP := c.queueState()
	_ = rhoD
	hit := c.AMBHitRate
	// A demand hit whose group fetch is still queued pays a share of the
	// prefetch-queue wait (probability ~ that queue's own occupancy).
	hitNS := c.IdleHitNS + waitD + rhoP*waitP
	missNS := c.IdleMissNS + waitD
	return hit*hitNS + (1-hit)*missNS
}

// Estimate answers one query: what would a cycle-accurate run of cfg over
// this calibration's workload report? It is pure arithmetic over the
// calibration — microsecond-scale, no simulation state — and returns a
// Results shaped like a real run's, with Estimate.Tier = "analytic".
func (c *Calibration) Estimate(cfg config.Config) system.Results {
	// Instruction accounting mirrors the run loop: the budget is the
	// fastest core's measured instructions; slower cores scale by their
	// probe share.
	budget := cfg.MaxInsts
	maxShare := 0.0
	for _, s := range c.CoreShare {
		if s > maxShare {
			maxShare = s
		}
	}
	committed := make([]int64, c.Cores)
	var total int64
	for i, s := range c.CoreShare {
		committed[i] = int64(float64(budget) * s / maxShare)
		total += committed[i]
	}

	ipc := c.ProbeIPC
	instPerNS := ipc * clock.CPUFrequencyGHz
	rhoDemand, rhoPrefetch, _, _ := c.queueState()

	hit := c.AMBHitRate
	// Anchor the average on the probe's measured loaded latency: model idle
	// path + queueing + the calibrated residual for contention the closed
	// form does not represent.
	avgLatency := c.modelLatencyNS() + c.LatencyResidualNS
	if avgLatency < c.IdleHitNS {
		avgLatency = c.IdleHitNS
	}
	// Percentiles shift with the same calibrated offset (never below the
	// unloaded path).
	resid := c.LatencyResidualNS
	if resid < 0 {
		resid = 0
	}

	// IPC correction: the probe measured ProbeIPC at ProbeLatency; the
	// model's loaded latency differs only through queueing, and the probe
	// already ran loaded. Keep the probe IPC as the throughput estimate —
	// the latency fields are where the queue model adds information.
	cycles := int64(float64(total) / ipc)
	if cycles < 1 {
		cycles = 1
	}

	reads := int64(c.ReadsPerInst * float64(total))
	writes := int64(c.WritesPerInst * float64(total))
	prefetched := int64(c.PrefetchPerInst * float64(total))
	ambHits := int64(float64(reads) * hit)

	out := system.Results{
		Benchmarks:       append([]string(nil), c.Benchmarks...),
		Cores:            c.Cores,
		IPC:              make([]float64, c.Cores),
		Committed:        committed,
		Cycles:           cycles,
		Reads:            reads,
		Writes:           writes,
		AMBHits:          ambHits,
		AvgReadLatencyNS: avgLatency,
		P50LatencyNS: resid + hit*c.IdleHitNS + (1-hit)*c.IdleMissNS +
			mD1Quantile(rhoDemand, c.ServiceNS, 0.50),
		P90LatencyNS: resid + c.IdleMissNS + mD1Quantile(rhoDemand, c.ServiceNS, 0.90),
		P99LatencyNS: resid + c.IdleMissNS + mD1Quantile(rhoDemand, c.ServiceNS, 0.99),
		AMB: ambcache.Stats{
			Reads:      reads,
			Hits:       ambHits,
			Prefetched: prefetched,
		},
	}
	for i := range out.IPC {
		out.IPC[i] = float64(committed[i]) / float64(cycles)
	}
	// Utilized bandwidth: all transferred lines over the wall time.
	wallNS := float64(cycles) / clock.CPUFrequencyGHz
	lineBytes := float64(cfg.Mem.LineBytes)
	misses := float64(reads) * (1 - hit)
	out.UtilizedBandwidthGBs = (misses + float64(writes) + float64(prefetched)) * lineBytes / wallNS
	out.ReadLinkUtilization = rhoDemand + rhoPrefetch
	if out.ReadLinkUtilization > 1 {
		out.ReadLinkUtilization = 1
	}
	out.WriteLinkUtilization = c.WritesPerInst * instPerNS / float64(c.Channels) * c.ServiceNS

	out.Estimate = &system.EstimateInfo{
		Tier:        "analytic",
		TotalIPC:    out.TotalIPC(),
		Calibration: c.Key,
	}
	return out
}

// Run is the one-call face of the tier: calibrate (memoized) then estimate.
func Run(ctx context.Context, cfg config.Config, benchmarks []string, opt Options) (system.Results, error) {
	cal, err := Calibrate(ctx, cfg, benchmarks, opt)
	if err != nil {
		return system.Results{}, err
	}
	return cal.Estimate(cfg), nil
}

// ResetCache drops all memoized calibrations (tests use it to force fresh
// probes).
func ResetCache() {
	calCache.Range(func(k, _ any) bool {
		calCache.Delete(k)
		return true
	})
}
