package memreq

import "testing"

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("kind strings: %q %q", Read.String(), Write.String())
	}
}

func TestRequestCallbackPlumbing(t *testing.T) {
	fired := 0
	r := &Request{ID: 7, Addr: 128, Kind: Read}
	r.OnDone = func(q *Request) {
		if q != r {
			t.Error("callback received a different request")
		}
		fired++
	}
	r.OnDone(r)
	if fired != 1 {
		t.Errorf("callback fired %d times", fired)
	}
}
