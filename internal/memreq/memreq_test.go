package memreq

import "testing"

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Errorf("kind strings: %q %q", Read.String(), Write.String())
	}
}

func TestRequestCallbackPlumbing(t *testing.T) {
	fired := 0
	r := &Request{ID: 7, Addr: 128, Kind: Read}
	r.OnDone = func(q *Request) {
		if q != r {
			t.Error("callback received a different request")
		}
		fired++
	}
	r.OnDone(r)
	if fired != 1 {
		t.Errorf("callback fired %d times", fired)
	}
}

func TestPoolReuseAndZeroing(t *testing.T) {
	var p Pool
	r := p.Get()
	if r == nil || p.Len() != 0 {
		t.Fatalf("fresh Get: %v, len %d", r, p.Len())
	}
	r.ID, r.Addr, r.Kind = 9, 512, Write
	r.AMBHit, r.Done = true, 42
	r.OnDone = func(*Request) {}
	p.Put(r)
	if p.Len() != 1 {
		t.Fatalf("len after Put = %d, want 1", p.Len())
	}
	q := p.Get()
	if q != r {
		t.Fatal("Get did not reuse the pooled request")
	}
	// Put must have scrubbed every field: a recycled transaction carrying a
	// stale callback or timestamp would corrupt the simulation silently.
	if q.ID != 0 || q.Addr != 0 || q.Kind != Read || q.AMBHit || q.Done != 0 ||
		q.OnDone != nil || q.T != (Timing{}) {
		t.Fatalf("reused request not zeroed: %+v", *q)
	}
	if p.Len() != 0 {
		t.Fatalf("len after reuse = %d, want 0", p.Len())
	}
}

func TestPoolGrowsUnderLoad(t *testing.T) {
	var p Pool
	reqs := make([]*Request, 64)
	for i := range reqs {
		reqs[i] = p.Get()
	}
	for _, r := range reqs {
		p.Put(r)
	}
	if p.Len() != 64 {
		t.Fatalf("len = %d, want 64", p.Len())
	}
	seen := map[*Request]bool{}
	for range reqs {
		r := p.Get()
		if seen[r] {
			t.Fatal("pool handed out the same request twice")
		}
		seen[r] = true
	}
}
