package textplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBarChartBasic(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "speedups", []Bar{
		{"FBD", 1.0},
		{"FBD-AP", 1.16},
	}, 40, 1.0)
	out := buf.String()
	if !strings.Contains(out, "speedups") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "FBD-AP") || !strings.Contains(out, "1.160") {
		t.Errorf("missing bar data:\n%s", out)
	}
	// The longer bar must have more # characters.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
	// Baseline marker appears.
	if !strings.ContainsAny(out, "|+") {
		t.Error("baseline marker missing")
	}
}

func TestBarChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "t", nil, 40, 0)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart must say so")
	}
}

func TestBarChartClamping(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "t", []Bar{{"neg", -1}, {"big", 100}}, 20, 0)
	out := buf.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "#") > 20 {
			t.Errorf("bar exceeds width: %q", line)
		}
	}
}

func TestScatterBasic(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "bw vs lat", "GB/s", "ns", []Point{
		{X: 5, Y: 60, Glyph: 'd'},
		{X: 15, Y: 250, Glyph: 'f'},
		{X: 10, Y: 120, Glyph: 'a'},
	}, 40, 10)
	out := buf.String()
	for _, want := range []string{"bw vs lat", "GB/s", "ns", "d", "f", "a"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	// Axis extremes appear.
	if !strings.Contains(out, "60.0") || !strings.Contains(out, "250.0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestScatterOverlapMarker(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "t", "x", "y", []Point{
		{X: 1, Y: 1, Glyph: 'd'},
		{X: 1, Y: 1, Glyph: 'f'},
		{X: 2, Y: 2, Glyph: 'f'},
	}, 20, 8)
	if !strings.Contains(buf.String(), "@") {
		t.Error("overlapping distinct glyphs should render @")
	}
}

func TestScatterSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "t", "x", "y", []Point{{X: 3, Y: 4}}, 20, 8)
	if !strings.Contains(buf.String(), "*") {
		t.Error("default glyph missing")
	}
}

func TestScatterEmpty(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "t", "x", "y", nil, 20, 8)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty scatter must say so")
	}
}

func TestSpark(t *testing.T) {
	// Monotone ramp: first glyph lowest, last glyph highest.
	s := []rune(Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8))
	if len(s) != 8 {
		t.Fatalf("sparkline length = %d, want 8", len(s))
	}
	if s[0] != '▁' || s[7] != '█' {
		t.Errorf("ramp endpoints = %c..%c, want ▁..█", s[0], s[7])
	}

	// Longer series downsample to width glyphs.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := len([]rune(Spark(long, 16))); got != 16 {
		t.Errorf("downsampled length = %d, want 16", got)
	}

	// A flat series renders mid-height, not a divide-by-zero artifact.
	flat := []rune(Spark([]float64{2, 2, 2}, 8))
	for _, g := range flat {
		if g != '▅' {
			t.Errorf("flat series glyph = %c, want ▅", g)
		}
	}

	// NaN renders as a space; finite neighbours still scale.
	withNaN := []rune(Spark([]float64{0, math.NaN(), 10}, 8))
	if withNaN[1] != ' ' {
		t.Errorf("NaN glyph = %q, want space", withNaN[1])
	}

	if Spark(nil, 8) != "" || Spark([]float64{1}, 0) != "" {
		t.Error("empty input or zero width must render empty")
	}
}
