// Package textplot renders the paper's figures as terminal graphics: bar
// charts for the speedup/power comparisons and scatter plots for the
// bandwidth-versus-latency figures. Everything is plain text so results can
// be read in CI logs and diffed between runs.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart writes a horizontal bar chart. Bars scale to width characters at
// the maximum value; a baseline (e.g. 1.0 for normalized plots) draws a
// marker column when it falls inside the plotted range.
func BarChart(w io.Writer, title string, bars []Bar, width int, baseline float64) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(w, "%s\n", title)
	if len(bars) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelW := 0
	maxV := math.Inf(-1)
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if b.Value > maxV {
			maxV = b.Value
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	scale := float64(width) / maxV
	baseCol := -1
	if baseline > 0 && baseline <= maxV {
		baseCol = int(baseline * scale)
	}
	for _, b := range bars {
		n := int(b.Value * scale)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if baseCol >= 0 && baseCol < len(row) {
			if row[baseCol] == ' ' {
				row[baseCol] = '|'
			} else {
				row[baseCol] = '+'
			}
		}
		fmt.Fprintf(w, "  %-*s %s %8.3f\n", labelW, b.Label, string(row), b.Value)
	}
}

// sparkGlyphs are the eight block-element levels of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Spark renders a series as a one-line unicode sparkline of at most width
// glyphs — the live-dashboard strip for utilization, hit-rate and queue
// depth series. Longer series are downsampled by averaging fixed-size
// chunks; values scale to the series' own min..max range (a flat series
// renders mid-height). NaN and Inf values render as spaces.
func Spark(vals []float64, width int) string {
	if width <= 0 || len(vals) == 0 {
		return ""
	}
	// Downsample to width points by chunk-averaging.
	if len(vals) > width {
		ds := make([]float64, 0, width)
		for i := 0; i < width; i++ {
			lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
			var sum float64
			n := 0
			for _, v := range vals[lo:hi] {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					sum += v
					n++
				}
			}
			if n == 0 {
				ds = append(ds, math.NaN())
				continue
			}
			ds = append(ds, sum/float64(n))
		}
		vals = ds
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > hi {
		return strings.Repeat(" ", len(vals)) // nothing finite
	}
	var sb strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			sb.WriteByte(' ')
		case hi == lo:
			sb.WriteRune(sparkGlyphs[len(sparkGlyphs)/2])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
			sb.WriteRune(sparkGlyphs[idx])
		}
	}
	return sb.String()
}

// Point is one scatter-plot sample.
type Point struct {
	X, Y  float64
	Glyph rune // distinguishes series ('d' DDR2, 'f' FBD, 'a' FBD-AP, ...)
}

// Scatter writes an X/Y scatter plot of the points on a cols×rows character
// grid with axis annotations — the shape of Figures 5 and 10.
func Scatter(w io.Writer, title, xlabel, ylabel string, pts []Point, cols, rows int) {
	fmt.Fprintf(w, "%s\n", title)
	if len(pts) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if cols < 16 {
		cols = 16
	}
	if rows < 8 {
		rows = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = make([]rune, cols)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, p := range pts {
		c := int((p.X - minX) / (maxX - minX) * float64(cols-1))
		r := int((p.Y - minY) / (maxY - minY) * float64(rows-1))
		r = rows - 1 - r // origin bottom-left
		g := p.Glyph
		if g == 0 {
			g = '*'
		}
		if grid[r][c] != ' ' && grid[r][c] != g {
			grid[r][c] = '@' // overlapping series
		} else {
			grid[r][c] = g
		}
	}
	fmt.Fprintf(w, "  %s\n", ylabel)
	for r, row := range grid {
		var left string
		switch r {
		case 0:
			left = fmt.Sprintf("%8.1f", maxY)
		case rows - 1:
			left = fmt.Sprintf("%8.1f", minY)
		default:
			left = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s|\n", left, string(row))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", cols))
	fmt.Fprintf(w, "%s %-*.1f%*.1f\n", strings.Repeat(" ", 8), cols/2, minX, cols-cols/2, maxX)
	fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", 8), xlabel)
}
