package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDelay(t *testing.T) {
	tests := []struct {
		name    string
		p       Policy
		attempt int
		want    time.Duration
	}{
		{"zero value attempt 1", Policy{}, 1, DefaultInitial},
		{"zero value attempt 2 doubles", Policy{}, 2, 2 * DefaultInitial},
		{"zero value saturates at default max", Policy{}, 20, DefaultMax},
		{"attempt below 1 clamps to 1", Policy{}, 0, DefaultInitial},
		{"negative attempt clamps to 1", Policy{}, -5, DefaultInitial},
		{
			"explicit schedule",
			Policy{Initial: 10 * time.Millisecond, Max: time.Second, Multiplier: 3},
			3,
			90 * time.Millisecond,
		},
		{
			"explicit cap",
			Policy{Initial: 10 * time.Millisecond, Max: 25 * time.Millisecond},
			3,
			25 * time.Millisecond,
		},
		{
			"huge attempt saturates instead of overflowing",
			Policy{Initial: time.Second, Max: time.Minute},
			100000,
			time.Minute,
		},
		{
			"multiplier below 1 falls back to default",
			Policy{Initial: 10 * time.Millisecond, Max: time.Second, Multiplier: 0.5},
			2,
			20 * time.Millisecond,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Delay(tt.attempt); got != tt.want {
				t.Fatalf("Delay(%d) = %v, want %v", tt.attempt, got, tt.want)
			}
		})
	}
}

func TestDelayIsMonotoneUpToCap(t *testing.T) {
	p := Policy{Initial: 7 * time.Millisecond, Max: 500 * time.Millisecond}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 32; attempt++ {
		d := p.Delay(attempt)
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v", attempt, d, attempt-1, prev)
		}
		if d > p.Max {
			t.Fatalf("Delay(%d) = %v exceeds cap %v", attempt, d, p.Max)
		}
		prev = d
	}
	if prev != p.Max {
		t.Fatalf("schedule never reached the cap: last %v, want %v", prev, p.Max)
	}
}

// Jitter must scale the deterministic delay by the injected random value
// and never exceed the pre-jitter envelope.
func TestSleepJitterUsesInjectedRand(t *testing.T) {
	p := Policy{
		Initial: 40 * time.Millisecond,
		Max:     time.Second,
		Jitter:  true,
		Rand:    func() float64 { return 0.25 },
	}
	start := time.Now()
	if err := p.Sleep(context.Background(), 1); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	got := time.Since(start)
	if got < 10*time.Millisecond {
		t.Fatalf("jittered sleep %v shorter than 0.25×Initial = 10ms", got)
	}
	if got > 40*time.Millisecond+500*time.Millisecond {
		t.Fatalf("jittered sleep %v far exceeds the pre-jitter delay", got)
	}
}

// A jitter draw of zero must not hang or sleep: it returns immediately.
func TestSleepZeroJitterReturnsImmediately(t *testing.T) {
	p := Policy{Initial: time.Hour, Max: time.Hour, Jitter: true, Rand: func() float64 { return 0 }}
	start := time.Now()
	if err := p.Sleep(context.Background(), 1); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("zero-jitter sleep took %v, want immediate return", d)
	}
}

func TestSleepHonorsContextCancellation(t *testing.T) {
	p := Policy{Initial: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- p.Sleep(ctx, 1) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled Sleep took %v, want prompt return", d)
	}
}

func TestDoSucceedsAfterFailures(t *testing.T) {
	p := Policy{Initial: time.Millisecond, Max: 2 * time.Millisecond}
	calls := 0
	err := Do(context.Background(), p, 5, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
}

func TestDoReturnsLastErrorWhenAttemptsSpent(t *testing.T) {
	p := Policy{Initial: time.Millisecond, Max: time.Millisecond}
	sentinel := errors.New("still broken")
	calls := 0
	err := Do(context.Background(), p, 3, func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want exactly 3", calls)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	p := Policy{Initial: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, p, 0, func() error { calls++; return errors.New("nope") })
	}()
	// Let the first attempt land, then cancel during its backoff.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls < 1 {
		t.Fatal("fn was never called")
	}
}

func TestDoChecksContextBeforeFirstCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Do(ctx, Policy{}, 3, func() error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on dead ctx = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn ran despite cancelled context")
	}
}
