// Package retry provides capped exponential backoff with optional full
// jitter and context-aware sleeping. It is the one shared backoff
// implementation in the tree: the fbdserve job-retry loop, the cluster
// coordinator's dispatch retries and the worker's re-join loop all run
// on the same Policy so their cap/jitter/cancellation semantics stay
// identical and are tested in one place.
package retry

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// Defaults applied by Policy.norm when the corresponding field is zero.
const (
	DefaultInitial    = 50 * time.Millisecond
	DefaultMax        = 2 * time.Second
	DefaultMultiplier = 2.0
)

// Policy describes a capped exponential backoff schedule. The zero value
// is usable and backs off 50ms, 100ms, ... capped at 2s, without jitter.
type Policy struct {
	// Initial is the delay before the first retry (attempt 1).
	Initial time.Duration
	// Max caps the delay; every attempt beyond the cap waits Max.
	Max time.Duration
	// Multiplier is the per-attempt growth factor (values < 1 fall back
	// to the default of 2).
	Multiplier float64
	// Jitter enables "full jitter": each sleep is drawn uniformly from
	// [0, Delay(attempt)), which decorrelates a thundering herd of
	// retriers. Delay itself is never jittered, so callers can reason
	// about the deterministic envelope.
	Jitter bool
	// Rand supplies the jitter source as a func returning [0, 1).
	// Nil uses math/rand's global source; tests inject a fixed value.
	Rand func() float64
}

func (p Policy) norm() Policy {
	if p.Initial <= 0 {
		p.Initial = DefaultInitial
	}
	if p.Max <= 0 {
		p.Max = DefaultMax
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay returns the deterministic (pre-jitter) backoff before retry
// attempt n, 1-based: Initial*Multiplier^(n-1), saturating at Max.
// Attempts below 1 are treated as 1; overflow saturates at Max.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.norm()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.Initial) * math.Pow(p.Multiplier, float64(attempt-1))
	if !(d < float64(p.Max)) { // catches NaN, +Inf and plain overflow
		return p.Max
	}
	return time.Duration(d)
}

// Sleep waits out the backoff before retry attempt n (jittered when
// Policy.Jitter is set) or until ctx ends, whichever comes first. It
// returns nil after a full sleep and ctx.Err() when cancelled, so the
// caller's retry loop reads `if p.Sleep(ctx, n) != nil { return }`.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	p = p.norm()
	d := p.Delay(attempt)
	if p.Jitter {
		d = time.Duration(p.Rand() * float64(d))
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do calls fn until it succeeds, sleeping the policy's backoff between
// failures. attempts caps the number of calls (<= 0 means retry until
// ctx ends). It returns nil on the first success; ctx.Err() if the
// context ends first; otherwise the last error once attempts is spent.
func Do(ctx context.Context, p Policy, attempts int, fn func() error) error {
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if last = fn(); last == nil {
			return nil
		}
		if attempts > 0 && attempt >= attempts {
			return last
		}
		if err := p.Sleep(ctx, attempt); err != nil {
			return err
		}
	}
}
