package telemetry

import (
	"encoding/json"
	"sync"
	"testing"

	"fbdsim/internal/memtrace"
	"fbdsim/internal/power"
)

func sampleAt(i int) Sample {
	return Sample{Epoch: memtrace.Epoch{StartNS: float64(i) * 256, EndNS: float64(i+1) * 256, Reads: int64(i)}}
}

func TestSubscribeReplayThenLive(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	st.PublishState("queued")
	st.PublishState("running")
	st.PublishSample(sampleAt(0))

	replay, sub := st.Subscribe()
	if len(replay) != 3 {
		t.Fatalf("replay = %d events, want 3", len(replay))
	}
	if replay[0].Type != EventState || replay[2].Type != EventEpoch {
		t.Fatalf("replay types = %q, %q", replay[0].Type, replay[2].Type)
	}
	for i, ev := range replay {
		if ev.Seq != int64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}

	st.PublishSample(sampleAt(1))
	ev := <-sub.C
	if ev.Type != EventEpoch || ev.Seq != 4 {
		t.Fatalf("live event = %+v", ev)
	}
	var got Sample
	if err := json.Unmarshal(ev.Data, &got); err != nil {
		t.Fatalf("unmarshal live sample: %v", err)
	}
	if got.Reads != 1 {
		t.Fatalf("live sample Reads = %d, want 1", got.Reads)
	}

	st.Close("done")
	end := <-sub.C
	if end.Type != EventEnd {
		t.Fatalf("terminal event type = %q, want %q", end.Type, EventEnd)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel still open after end event")
	}
}

func TestEventRingBounded(t *testing.T) {
	hub := NewHub(Options{MaxEvents: 8})
	st := hub.Open("job-1")
	for i := 0; i < 20; i++ {
		st.PublishSample(sampleAt(i))
	}
	replay, sub := st.Subscribe()
	defer sub.Cancel()
	if len(replay) != 8 {
		t.Fatalf("replay = %d events, want ring cap 8", len(replay))
	}
	// Oldest-first, ending at the most recent publish.
	if replay[0].Seq != 13 || replay[7].Seq != 20 {
		t.Fatalf("replay seq range = [%d, %d], want [13, 20]", replay[0].Seq, replay[7].Seq)
	}
}

func TestSampleWindowBounded(t *testing.T) {
	hub := NewHub(Options{MaxSamples: 4})
	st := hub.Open("job-1")
	for i := 0; i < 10; i++ {
		st.PublishSample(sampleAt(i))
	}
	stats := st.Snapshot(0)
	if len(stats.Samples) != 4 {
		t.Fatalf("window = %d samples, want 4", len(stats.Samples))
	}
	if stats.Samples[0].Reads != 6 || stats.Samples[3].Reads != 9 {
		t.Fatalf("window reads = [%d..%d], want [6..9]", stats.Samples[0].Reads, stats.Samples[3].Reads)
	}
	if stats.Latest == nil || stats.Latest.Reads != 9 {
		t.Fatalf("latest = %+v, want Reads 9", stats.Latest)
	}

	limited := st.Snapshot(2)
	if len(limited.Samples) != 2 || limited.Samples[0].Reads != 8 {
		t.Fatalf("lastN=2 window = %+v", limited.Samples)
	}
}

func TestResetClearsWindow(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	st.PublishSample(sampleAt(0))
	st.PublishSample(sampleAt(1))
	st.PublishReset()
	st.PublishSample(sampleAt(2))

	stats := st.Snapshot(0)
	if stats.Resets != 1 {
		t.Fatalf("resets = %d, want 1", stats.Resets)
	}
	if len(stats.Samples) != 1 || stats.Samples[0].Reads != 2 {
		t.Fatalf("post-reset window = %+v, want one sample with Reads 2", stats.Samples)
	}
}

// A subscriber that stops reading must be dropped — its channel closed —
// without the publisher ever blocking.
func TestSlowSubscriberDropped(t *testing.T) {
	hub := NewHub(Options{SubBuffer: 2})
	st := hub.Open("job-1")
	_, slow := st.Subscribe()
	_, fast := st.Subscribe()

	// Publish from this goroutine with nobody draining slow: 2 events fill
	// slow's buffer, the 3rd drops it, and no publish ever blocks. fast is
	// drained after each publish, so it stays within its buffer and lives.
	for i := 0; i < 5; i++ {
		st.PublishSample(sampleAt(i))
		if _, ok := <-fast.C; !ok {
			t.Fatal("fast subscriber dropped while keeping up")
		}
	}

	// slow got the buffered 2 then a close.
	n := 0
	for range slow.C {
		n++
	}
	if n != 2 {
		t.Fatalf("slow subscriber received %d events before drop, want 2", n)
	}
	if got := st.Snapshot(0).DroppedSubscribers; got != 1 {
		t.Fatalf("dropped_subscribers = %d, want 1", got)
	}
	fast.Cancel()
}

func TestSubscribeAfterClose(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	st.PublishState("running")
	st.Close("failed")
	st.PublishSample(sampleAt(0)) // no-op after close

	replay, sub := st.Subscribe()
	if len(replay) != 2 || replay[1].Type != EventEnd {
		t.Fatalf("post-close replay = %+v, want [state, end]", replay)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("post-close subscriber channel not closed")
	}
	if st.Snapshot(0).State != "failed" {
		t.Fatalf("state = %q, want failed", st.Snapshot(0).State)
	}
	sub.Cancel() // double-cancel safe
	sub.Cancel()
}

func TestHubOpenIdempotent(t *testing.T) {
	hub := NewHub(Options{})
	a := hub.Open("x")
	b := hub.Open("x")
	if a != b {
		t.Fatal("Open returned distinct streams for one id")
	}
	if hub.Get("x") != a {
		t.Fatal("Get missed an opened stream")
	}
	if hub.Get("y") != nil {
		t.Fatal("Get invented a stream")
	}
}

// Concurrent publishers, subscribers, snapshotters, and cancels: the test
// is the race detector. Subscribers drain until their channel closes —
// which the hub guarantees happens, via drop (slow), Cancel (voluntary) or
// stream Close (terminal) — so nothing here can block forever.
func TestConcurrentPublishSubscribe(t *testing.T) {
	hub := NewHub(Options{MaxEvents: 32, MaxSamples: 16, SubBuffer: 4})
	st := hub.Open("job-1")
	var pubWG, subWG sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < 200; i++ {
				st.PublishSample(sampleAt(p*200 + i))
			}
		}(p)
	}
	for s := 0; s < 4; s++ {
		subWG.Add(1)
		go func(s int) {
			defer subWG.Done()
			for i := 0; i < 10; i++ {
				_, sub := st.Subscribe()
				n := 0
				for range sub.C {
					if n++; s%2 == 0 && n >= 5 {
						// Voluntary cancel mid-stream; the close makes the
						// range drain and exit.
						sub.Cancel()
					}
				}
			}
		}(s)
	}
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := 0; i < 100; i++ {
			_ = st.Snapshot(8)
		}
	}()
	pubWG.Wait()
	st.Close("done")
	st.Close("done") // idempotent
	subWG.Wait()
}

func TestJobSinkFusion(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	sink := NewJobSink(st)

	ep := memtrace.Epoch{StartNS: 0, EndNS: 256, ACTs: 10, PREs: 12, ColReads: 30, ColWrites: 10}
	sink.EpochSample(ep)
	stats := st.Snapshot(0)
	if stats.Latest == nil {
		t.Fatal("no sample published")
	}
	// pairs = max(10, 12) = 12; 12*4 + 40*1 = 88 under paper weights.
	if got := stats.Latest.DynamicEnergy; got != 88 {
		t.Fatalf("DynamicEnergy = %v, want 88", got)
	}
	if stats.Latest.SimCyclesPerSec != 0 {
		t.Fatalf("first sample SimCyclesPerSec = %v, want 0", stats.Latest.SimCyclesPerSec)
	}

	sink.EpochSample(memtrace.Epoch{StartNS: 256, EndNS: 512})
	if got := st.Snapshot(0).Latest.SimCyclesPerSec; got <= 0 {
		t.Fatalf("second sample SimCyclesPerSec = %v, want > 0", got)
	}

	// WindowReset clears and re-arms the first-sample rate suppression.
	sink.WindowReset()
	sink.EpochSample(memtrace.Epoch{StartNS: 512, EndNS: 768})
	stats = st.Snapshot(0)
	if stats.Resets != 1 || len(stats.Samples) != 1 {
		t.Fatalf("post-reset stats = %+v", stats)
	}
	if stats.Latest.SimCyclesPerSec != 0 {
		t.Fatalf("post-reset first sample rate = %v, want 0", stats.Latest.SimCyclesPerSec)
	}
}

func TestEpochDynamicEnergyPairsRule(t *testing.T) {
	w := power.PaperWeights()
	// ACTs > PREs: pairs follow ACTs.
	if got := EpochDynamicEnergy(memtrace.Epoch{ACTs: 5, PREs: 3, ColReads: 2}, w); got != 22 {
		t.Fatalf("energy = %v, want 22", got)
	}
	// Zero epoch costs zero.
	if got := EpochDynamicEnergy(memtrace.Epoch{}, w); got != 0 {
		t.Fatalf("zero epoch energy = %v, want 0", got)
	}
}

func TestSubscribeFromSkipsConsumedPrefix(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	st.PublishState("queued")
	st.PublishState("running")
	st.PublishSample(sampleAt(0))
	st.PublishSample(sampleAt(1))

	replay, sub := st.SubscribeFrom(2)
	defer sub.Cancel()
	if len(replay) != 2 {
		t.Fatalf("replay = %d events, want 2", len(replay))
	}
	if replay[0].Seq != 3 || replay[1].Seq != 4 {
		t.Fatalf("replay seqs = %d, %d, want 3, 4", replay[0].Seq, replay[1].Seq)
	}

	// Fully caught up: empty replay, but the subscription is live.
	replay2, sub2 := st.SubscribeFrom(4)
	defer sub2.Cancel()
	if len(replay2) != 0 {
		t.Fatalf("caught-up replay = %d events, want 0", len(replay2))
	}
	st.PublishSample(sampleAt(2))
	ev := <-sub2.C
	if ev.Seq != 5 {
		t.Fatalf("live event seq = %d, want 5", ev.Seq)
	}
}

// after beyond the retained ring (or the whole history) degrades to an
// empty replay, never a panic or a duplicate.
func TestSubscribeFromBeyondHistory(t *testing.T) {
	hub := NewHub(Options{MaxEvents: 4})
	st := hub.Open("job-1")
	for i := 0; i < 10; i++ {
		st.PublishSample(sampleAt(i))
	}
	replay, sub := st.SubscribeFrom(100)
	defer sub.Cancel()
	if len(replay) != 0 {
		t.Fatalf("replay = %d events, want 0", len(replay))
	}
	// An after older than the ring's oldest entry replays the whole ring:
	// the gap is visible as first Seq > after+1.
	replay2, sub2 := st.SubscribeFrom(2)
	defer sub2.Cancel()
	if len(replay2) != 4 || replay2[0].Seq != 7 {
		t.Fatalf("replay = %d events starting at %d, want 4 starting at 7",
			len(replay2), replay2[0].Seq)
	}
}

func TestTerminal(t *testing.T) {
	hub := NewHub(Options{})
	st := hub.Open("job-1")
	st.PublishState("running")
	if seq, closed := st.Terminal(); seq != 1 || closed {
		t.Fatalf("Terminal = (%d, %v), want (1, false)", seq, closed)
	}
	st.Close("done")
	seq, closed := st.Terminal()
	if seq != 2 || !closed {
		t.Fatalf("Terminal after close = (%d, %v), want (2, true)", seq, closed)
	}
	// A caught-up reconnect on the closed stream has nothing to replay.
	replay, _ := st.SubscribeFrom(seq)
	if len(replay) != 0 {
		t.Fatalf("caught-up replay on closed stream = %d events, want 0", len(replay))
	}
}
