// Package telemetry is the live-introspection hub of the serving layer: a
// bounded, in-process time-series broker that running simulations publish
// into at every epoch boundary and that HTTP handlers (SSE streams, the
// stats endpoint, the dashboard) read out of without ever touching the
// simulation goroutine.
//
// The design goals, in order:
//
//  1. The publisher never blocks. Publishing appends to a fixed-size ring
//     under a mutex and hands copies to subscriber channels with a
//     non-blocking send; a subscriber that cannot keep up is dropped
//     (its channel closed) rather than allowed to stall the simulation.
//  2. Zero cost when nobody is looking. A stream with no subscribers costs
//     one short critical section per epoch (microseconds of simulated
//     time apart); an untraced job publishes only a handful of lifecycle
//     state events over its whole life.
//  3. Bounded memory. Both the event ring and the sample window are
//     fixed-capacity; old entries are overwritten, and the drop counters
//     are exported so truncation is visible, never silent.
//
// One Stream exists per serving entity (job or sweep), keyed by its public
// ID. Events carry a monotonically increasing per-stream sequence number,
// which the SSE layer exposes as the event id so clients can detect gaps
// after a reconnect.
package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"fbdsim/internal/memtrace"
	"fbdsim/internal/power"
)

// Event types published on a stream.
const (
	// EventState marks a lifecycle transition; Data is {"state": ...}.
	EventState = "state"
	// EventEpoch carries one Sample; Data is the Sample JSON.
	EventEpoch = "epoch"
	// EventReset marks a measurement-window restart (the warmup
	// boundary): every epoch published before it belongs to warmup and is
	// not part of the final exported series.
	EventReset = "reset"
	// EventPoint carries one completed sweep grid point; Data is the same
	// JSON rendering the sweep NDJSON endpoint streams.
	EventPoint = "point"
	// EventEnd is the terminal event of a stream; Data is {"state": ...}.
	// No events follow it and subscriber channels close after delivering
	// it.
	EventEnd = "end"
)

// Event is one published stream entry. Data is pre-marshaled at publish
// time so fan-out to N subscribers shares one rendering.
type Event struct {
	Seq  int64           `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Sample is one memtrace epoch fused with the serving-side derivations the
// dashboard and SSE clients want next to it: the Section 5.5 dynamic-energy
// delta and the wall-clock simulation speed while the epoch ran.
type Sample struct {
	memtrace.Epoch
	// DynamicEnergy is the epoch's DRAM dynamic-energy delta in
	// column-access units under power.PaperWeights (ACT/PRE pairs
	// weighted 4:1 against column accesses).
	DynamicEnergy float64 `json:"dynamic_energy"`
	// SimCyclesPerSec is simulated CPU cycles in the epoch divided by the
	// wall time since the previous epoch landed — the live analogue of
	// the job view's sim_cycles_per_sec. Zero for the first sample of a
	// window.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Hub owns one Stream per live serving entity. The zero value is not
// usable; call NewHub.
type Hub struct {
	mu      sync.Mutex
	streams map[string]*Stream
	opts    Options
}

// Options sizes a Hub's streams. The zero value gets defaults.
type Options struct {
	// MaxEvents bounds each stream's replayable event ring (default
	// 4096). Subscribers joining late replay at most this many events.
	MaxEvents int
	// MaxSamples bounds each stream's retained sample window for the
	// stats endpoint and the dashboard (default 512).
	MaxSamples int
	// SubBuffer is each subscriber channel's capacity (default 256); a
	// subscriber this far behind is dropped.
	SubBuffer int
}

func (o Options) norm() Options {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 4096
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 512
	}
	if o.SubBuffer <= 0 {
		o.SubBuffer = 256
	}
	return o
}

// NewHub builds an empty hub.
func NewHub(opts Options) *Hub {
	return &Hub{streams: make(map[string]*Stream), opts: opts.norm()}
}

// Open returns the stream for id, creating it if needed.
func (h *Hub) Open(id string) *Stream {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st, ok := h.streams[id]; ok {
		return st
	}
	st := &Stream{
		id:      id,
		events:  make([]Event, 0, min(h.opts.MaxEvents, 64)),
		samples: make([]Sample, 0, min(h.opts.MaxSamples, 64)),
		opts:    h.opts,
		subs:    make(map[*Subscriber]struct{}),
	}
	h.streams[id] = st
	return st
}

// Get returns the stream for id, or nil when none was opened.
func (h *Hub) Get(id string) *Stream {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streams[id]
}

// Stream is the bounded event log plus sample window of one entity.
type Stream struct {
	id   string
	opts Options

	mu  sync.Mutex
	seq int64
	// events is a ring: when full, eventHead marks the oldest entry and
	// appends overwrite in place.
	events    []Event
	eventHead int
	// samples is the same ring structure over epoch samples only, the
	// latest-window view the stats endpoint serves.
	samples    []Sample
	sampleHead int

	subs        map[*Subscriber]struct{}
	closed      bool
	state       string
	droppedSubs int64
	resets      int64
}

// ID returns the stream's key (the job or sweep ID).
func (st *Stream) ID() string { return st.id }

// Subscriber is one live listener. Receive events from C; the channel
// closes when the stream ends, the subscriber falls too far behind, or
// Cancel is called.
type Subscriber struct {
	C    <-chan Event
	ch   chan Event
	st   *Stream
	dead bool // guarded by st.mu
}

// Cancel detaches the subscriber and closes its channel. Safe to call more
// than once, and safe concurrently with stream publishes.
func (sub *Subscriber) Cancel() {
	st := sub.st
	st.mu.Lock()
	st.dropLocked(sub)
	st.mu.Unlock()
}

// dropLocked removes a subscriber and closes its channel exactly once.
// Caller holds st.mu.
func (st *Stream) dropLocked(sub *Subscriber) {
	if sub.dead {
		return
	}
	sub.dead = true
	delete(st.subs, sub)
	close(sub.ch)
}

// Subscribe registers a listener and returns the replayable history along
// with it: every event still in the ring, atomically consistent with the
// subscription point (no event is both missing from the replay and never
// sent to the channel). On a closed stream the subscriber's channel is
// already closed; the replay still carries the history including the end
// event.
func (st *Stream) Subscribe() (replay []Event, sub *Subscriber) {
	return st.SubscribeFrom(0)
}

// SubscribeFrom is Subscribe for a reconnecting client that has already
// consumed every event up to and including sequence number after: the
// replay carries only the ring's events with Seq > after, so a resumed
// SSE connection (Last-Event-ID) picks up where it left off instead of
// re-reading the whole history. after <= 0 replays everything retained.
// Events older than the ring bound are gone either way; the caller can
// detect that gap by comparing the first replayed Seq against after+1.
func (st *Stream) SubscribeFrom(after int64) (replay []Event, sub *Subscriber) {
	st.mu.Lock()
	defer st.mu.Unlock()
	replay = st.eventsLocked()
	if after > 0 {
		// The ring is Seq-ordered oldest-first; skip the consumed prefix.
		i := 0
		for i < len(replay) && replay[i].Seq <= after {
			i++
		}
		replay = replay[i:]
	}
	ch := make(chan Event, st.opts.SubBuffer)
	sub = &Subscriber{C: ch, ch: ch, st: st}
	if st.closed {
		sub.dead = true
		close(ch)
		return replay, sub
	}
	st.subs[sub] = struct{}{}
	return replay, sub
}

// Terminal reports the stream's last published sequence number and
// whether the stream has closed (published its end event). A reconnect
// that has already consumed through lastSeq of a closed stream has
// nothing left to read.
func (st *Stream) Terminal() (lastSeq int64, closed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq, st.closed
}

// eventsLocked copies the ring oldest-first. Caller holds st.mu.
func (st *Stream) eventsLocked() []Event {
	if len(st.events) == 0 {
		return nil
	}
	out := make([]Event, 0, len(st.events))
	out = append(out, st.events[st.eventHead:]...)
	out = append(out, st.events[:st.eventHead]...)
	return out
}

// publish appends one event and fans it out. The send to each subscriber
// is non-blocking: a full channel means the subscriber is consuming slower
// than the simulation produces, and it is dropped on the spot — the
// simulation goroutine never waits on a network peer.
func (st *Stream) publish(typ string, data json.RawMessage) Event {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.publishLocked(typ, data)
}

func (st *Stream) publishLocked(typ string, data json.RawMessage) Event {
	if st.closed {
		return Event{}
	}
	st.seq++
	ev := Event{Seq: st.seq, Type: typ, Data: data}
	if len(st.events) < st.opts.MaxEvents {
		st.events = append(st.events, ev)
	} else {
		st.events[st.eventHead] = ev
		st.eventHead = (st.eventHead + 1) % len(st.events)
	}
	for sub := range st.subs {
		select {
		case sub.ch <- ev:
		default:
			st.droppedSubs++
			st.dropLocked(sub)
		}
	}
	return ev
}

func marshal(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		// Every published payload is a struct of plain fields; a marshal
		// failure is a programming error, not a runtime condition.
		panic("telemetry: marshal: " + err.Error())
	}
	return b
}

type stateBody struct {
	State string `json:"state"`
}

// PublishState records a lifecycle transition.
func (st *Stream) PublishState(state string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.state = state
	st.publishLocked(EventState, marshal(stateBody{State: state}))
}

// PublishSample records one fused epoch sample: into the sample window and
// out to subscribers as an epoch event.
func (st *Stream) PublishSample(s Sample) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	if len(st.samples) < st.opts.MaxSamples {
		st.samples = append(st.samples, s)
	} else {
		st.samples[st.sampleHead] = s
		st.sampleHead = (st.sampleHead + 1) % len(st.samples)
	}
	st.publishLocked(EventEpoch, marshal(&s))
}

// PublishReset clears the sample window (the epochs published so far were
// warmup) and tells subscribers to do the same.
func (st *Stream) PublishReset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.samples = st.samples[:0]
	st.sampleHead = 0
	st.resets++
	st.publishLocked(EventReset, marshal(struct {
		Reason string `json:"reason"`
	}{Reason: "measurement_start"}))
}

// PublishPoint records one completed sweep grid point (pre-marshaled by
// the caller so the stream shares the NDJSON endpoint's exact rendering).
func (st *Stream) PublishPoint(data json.RawMessage) {
	st.publish(EventPoint, data)
}

// Close publishes the terminal end event carrying finalState and closes
// every subscriber channel. Further publishes are no-ops. Safe to call
// more than once.
func (st *Stream) Close(finalState string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.state = finalState
	st.publishLocked(EventEnd, marshal(stateBody{State: finalState}))
	st.closed = true
	for sub := range st.subs {
		st.dropLocked(sub)
	}
}

// Stats is the latest-window snapshot the polling endpoint serves.
type Stats struct {
	ID    string `json:"id"`
	State string `json:"state,omitempty"`
	// Seq is the last published sequence number; clients comparing it
	// across polls can tell whether anything happened.
	Seq int64 `json:"seq"`
	// Resets counts measurement-window restarts (1 once warmup ended).
	Resets int64 `json:"resets"`
	// DroppedSubscribers counts listeners dropped for falling behind.
	DroppedSubscribers int64 `json:"dropped_subscribers"`
	// Samples is the retained latest window, oldest first; Latest
	// duplicates its last entry for cheap single-value consumers.
	Samples []Sample `json:"samples,omitempty"`
	Latest  *Sample  `json:"latest,omitempty"`
}

// Snapshot returns the latest-window view: up to lastN samples (0 or
// negative means the whole retained window) plus the stream counters.
func (st *Stream) Snapshot(lastN int) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Stats{
		ID:                 st.id,
		State:              st.state,
		Seq:                st.seq,
		Resets:             st.resets,
		DroppedSubscribers: st.droppedSubs,
	}
	n := len(st.samples)
	if n == 0 {
		return out
	}
	samples := make([]Sample, 0, n)
	samples = append(samples, st.samples[st.sampleHead:]...)
	samples = append(samples, st.samples[:st.sampleHead]...)
	if lastN > 0 && lastN < len(samples) {
		samples = samples[len(samples)-lastN:]
	}
	out.Samples = samples
	out.Latest = &samples[len(samples)-1]
	return out
}

// JobSink adapts a Stream to the memtrace.Sink seam, fusing each epoch row
// with the power-model energy delta and the live simulation speed. It runs
// on the simulation goroutine; both methods do a bounded amount of work and
// never block (Stream publishes are non-blocking by construction).
type JobSink struct {
	st       *Stream
	weights  power.Weights
	lastWall time.Time
	first    bool
}

// NewJobSink builds a sink publishing into st with the paper's 4:1 energy
// calibration.
func NewJobSink(st *Stream) *JobSink {
	return &JobSink{st: st, weights: power.PaperWeights(), first: true}
}

// EpochSample implements memtrace.Sink.
func (s *JobSink) EpochSample(ep memtrace.Epoch) {
	now := time.Now()
	sample := Sample{Epoch: ep, DynamicEnergy: EpochDynamicEnergy(ep, s.weights)}
	if !s.first {
		if wall := now.Sub(s.lastWall).Seconds(); wall > 0 {
			// 1 ns of simulated time is 4 CPU cycles at the modelled 4 GHz.
			simCycles := (ep.EndNS - ep.StartNS) * 4
			sample.SimCyclesPerSec = simCycles / wall
		}
	}
	s.first = false
	s.lastWall = now
	s.st.PublishSample(sample)
}

// WindowReset implements memtrace.Sink.
func (s *JobSink) WindowReset() {
	s.first = true
	s.st.PublishReset()
}

// EpochDynamicEnergy is the Section 5.5 dynamic-energy delta of one epoch
// in column-access units: ACT/PRE pairs (the larger of the two counts, so
// no event is dropped when rows stay open across the boundary) weighted
// against column accesses.
func EpochDynamicEnergy(ep memtrace.Epoch, w power.Weights) float64 {
	pairs := ep.ACTs
	if ep.PREs > pairs {
		pairs = ep.PREs
	}
	return float64(pairs)*w.ACTPREPair + float64(ep.ColReads+ep.ColWrites)*w.ColumnAccess
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
