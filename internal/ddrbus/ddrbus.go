// Package ddrbus models a conventional DDR2 memory channel — the baseline
// the paper compares FB-DIMM against. Unlike FB-DIMM's two independent
// unidirectional links, a DDR2 channel has one shared command/address bus
// and one shared bidirectional data bus; reads and writes contend for the
// same data wires, which is why FB-DIMM's aggregate bandwidth is higher at
// equal data rates.
//
// With the default (ganged-pair) configuration the idle read latency is
// 12 ns controller overhead + 3 ns propagation + 9 ns stub-bus command
// overhead (registered-DIMM latch plus 2T command timing, needed for signal
// integrity on the multi-drop bus) + 15 ns tRCD + 15 ns tCL + 6 ns data
// burst = 60 ns, just below FB-DIMM's 63 ns — matching the measured idle
// latencies the paper reports in Figure 5 (60 ns DDR2 vs 62 ns FB-DIMM for
// single-core workloads) and its observation that FB-DIMM trades a little
// idle latency for bandwidth.
package ddrbus

import (
	"fbdsim/internal/addrmap"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/dram"
	"fbdsim/internal/fbdchan"
	"fbdsim/internal/resource"
)

// Channel is one logical DDR2 channel (a gang of physical channels in
// lockstep), with its DIMMs attached as ranks on the shared buses.
type Channel struct {
	cfg    *config.Mem
	mapper *addrmap.Mapper

	tck      clock.Time
	burst    clock.Time // data-bus occupancy of one cacheline
	cmdDelay clock.Time

	cmdBus  *resource.Timeline
	dataBus *resource.Timeline
	dimms   []*dram.DIMM

	// Counters accumulates DRAM operations for the power model.
	Counters dram.Counters
	// Links accumulates channel traffic for utilized-bandwidth stats.
	Links fbdchan.LinkStats
	// BankConflicts counts activations delayed by bank-level timing.
	BankConflicts int64

	// lastCmdAt / lastServiceAt mirror fbdchan.Channel's fields: the
	// command-arrival and data-bus start of the most recent Schedule* call,
	// surfaced through LastTiming for the memtrace recorder.
	lastCmdAt     clock.Time
	lastServiceAt clock.Time
}

// New builds the channel model from a validated configuration.
func New(cfg *config.Mem, mapper *addrmap.Mapper) *Channel {
	tck := cfg.DataRate.TCK()
	gang := clock.Time(cfg.GangWidth)
	line := clock.Time(cfg.LineBytes)
	beats := (line + 8*gang - 1) / (8 * gang)

	c := &Channel{
		cfg:    cfg,
		mapper: mapper,
		tck:    tck,
		burst:  beats * tck / 2,
		// Propagation plus the stub-bus overhead of a registered, multi-
		// drop DDR2 channel: one clock in the DIMM register and 2T command
		// timing (three clocks total at the configured data rate).
		cmdDelay: 3*clock.Nanosecond + 3*tck,
		cmdBus:   resource.NewQuantized(tck),
		dataBus:  resource.NewQuantized(0),
		dimms:    make([]*dram.DIMM, cfg.DIMMsPerChannel),
	}
	for i := range c.dimms {
		c.dimms[i] = dram.NewDIMM(cfg.BanksPerDIMM, cfg.Timing)
		if cfg.RefreshEnabled {
			trefi, trfc := cfg.RefreshTimings()
			c.dimms[i].SetRefresh(trefi, trfc, clock.Time(i)*trefi/clock.Time(cfg.DIMMsPerChannel))
		}
	}
	return c
}

// IsFastRead reports an open-row hit opportunity (only meaningful under
// open-page mode; the DDR2 baseline defaults to close-page cacheline
// interleaving where it is always false).
func (c *Channel) IsFastRead(addr int64) bool {
	if c.cfg.PageMode != config.OpenPage {
		return false
	}
	loc := c.mapper.Map(addr)
	return c.dimms[loc.DIMM].Banks[loc.Bank].OpenRow() == loc.Row
}

// ScheduleRead books command bus, bank, and data bus for a demand read
// starting no earlier than ready and returns when the cacheline is back at
// the controller. The second return mirrors the FB-DIMM interface and is
// always false (no AMB cache on DDR2).
func (c *Channel) ScheduleRead(addr int64, ready clock.Time) (dataAt clock.Time, ambHit bool) {
	loc := c.mapper.Map(addr)
	c.Links.BytesNorth += int64(c.cfg.LineBytes)

	// One reservation covers the ACT+RD command pair.
	slot := c.cmdBus.Reserve(ready, 2*c.tck)
	cmdArrive := slot + c.cmdDelay
	busStart := c.bankRead(loc, cmdArrive)
	c.lastCmdAt, c.lastServiceAt = cmdArrive, busStart
	return busStart + c.burst, false
}

func (c *Channel) bankRead(loc addrmap.Location, cmdArrive clock.Time) clock.Time {
	dimm := c.dimms[loc.DIMM]
	bank := dimm.Banks[loc.Bank]
	t := c.cfg.Timing

	c.openRow(loc, cmdArrive)

	rdMin := bank.EarliestRead(cmdArrive)
	busAt := c.dataBus.Reserve(rdMin+t.TCL, c.burst)
	rdAt := busAt - t.TCL
	bank.Read(rdAt, c.burst, &c.Counters)

	if c.cfg.PageMode == config.ClosePage {
		preAt := bank.EarliestPRE(rdAt + t.TRPD)
		bank.Precharge(preAt, &c.Counters)
	}
	return busAt
}

// openRow brings loc.Row into the row buffer if it is not already there,
// issuing PRE/ACT as needed.
func (c *Channel) openRow(loc addrmap.Location, from clock.Time) {
	dimm := c.dimms[loc.DIMM]
	bank := dimm.Banks[loc.Bank]
	if c.cfg.PageMode == config.OpenPage && bank.OpenRow() == loc.Row {
		return
	}
	rowReady := from
	if bank.OpenRow() != dram.NoRow {
		preAt := bank.EarliestPRE(from)
		bank.Precharge(preAt, &c.Counters)
		rowReady = preAt
	}
	actAt := dimm.EarliestACT(loc.Bank, rowReady)
	if actAt > rowReady {
		c.BankConflicts++
	}
	dimm.Activate(loc.Bank, actAt, loc.Row, &c.Counters)
}

// ScheduleWrite books a group of writebacks sharing one DRAM row (one
// activation, n pipelined column writes) and returns when the last line's
// data is in the DRAM array. Write data shares the one data bus with reads.
// Under the baseline's cacheline interleaving, regions are single lines and
// every group has length one.
func (c *Channel) ScheduleWrite(addrs []int64, ready clock.Time) clock.Time {
	loc := c.mapper.Map(addrs[0])
	n := len(addrs)
	c.Links.BytesSouth += int64(n * c.cfg.LineBytes)

	slot := c.cmdBus.Reserve(ready, clock.Time(1+n)*c.tck)
	cmdArrive := slot + c.cmdDelay

	dimm := c.dimms[loc.DIMM]
	bank := dimm.Banks[loc.Bank]
	t := c.cfg.Timing

	c.openRow(loc, cmdArrive)

	wrMin := bank.EarliestWrite(cmdArrive)
	busAt := c.dataBus.Reserve(wrMin+t.TWL, clock.Time(n)*c.burst)
	wrAt := busAt - t.TWL
	c.lastCmdAt, c.lastServiceAt = cmdArrive, busAt
	dataStart := bank.Write(wrAt, clock.Time(n)*c.burst, &c.Counters)
	c.Counters.ColWrit += int64(n - 1)
	lastWr := wrAt + clock.Time(n-1)*c.burst

	if c.cfg.PageMode == config.ClosePage {
		preAt := bank.EarliestPRE(lastWr + t.TWPD)
		bank.Precharge(preAt, &c.Counters)
	}
	return dataStart + clock.Time(n)*c.burst
}

// LinkBusy reports the cumulative reserved time of the shared data bus
// (returned as "north"; the command bus as "south") for utilization stats.
func (c *Channel) LinkBusy() (north, south clock.Time) {
	return c.dataBus.TotalReserved(), c.cmdBus.TotalReserved()
}

// LastTiming returns the command-arrival and service-start times of the
// most recent ScheduleRead/ScheduleWrite call (see fbdchan.Channel.LastTiming).
func (c *Channel) LastTiming() (cmdAt, serviceAt clock.Time) {
	return c.lastCmdAt, c.lastServiceAt
}

// DIMMBusBusy reports the cumulative reserved time of the shared data bus.
// On DDR2 the "DIMM bus" and the channel data bus are the same wires.
func (c *Channel) DIMMBusBusy() clock.Time {
	return c.dataBus.TotalReserved()
}

// Housekeep prunes reservation history older than horizon.
func (c *Channel) Housekeep(horizon clock.Time) {
	c.cmdBus.Prune(horizon)
	c.dataBus.Prune(horizon)
}
