package ddrbus

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/fbdchan"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the channel's mutable state: the shared command and
// data bus timelines, every bank FSM, and the accumulated counters.
// Geometry and timing are construction-derived and not written.
func (c *Channel) Snapshot(e *snapshot.Encoder) {
	c.cmdBus.Snapshot(e)
	c.dataBus.Snapshot(e)
	e.Int(len(c.dimms))
	for _, d := range c.dimms {
		d.Snapshot(e)
	}
	c.Counters.Snapshot(e)
	e.I64(c.Links.BytesNorth)
	e.I64(c.Links.BytesSouth)
	e.I64(c.BankConflicts)
	e.I64(int64(c.lastCmdAt))
	e.I64(int64(c.lastServiceAt))
}

// Restore overwrites the channel's mutable state from d. The DIMM count
// must match the constructed configuration.
func (c *Channel) Restore(d *snapshot.Decoder) {
	c.cmdBus.Restore(d)
	c.dataBus.Restore(d)
	if n := d.Int(); n != len(c.dimms) {
		d.Fail("ddrbus: snapshot has %d DIMMs, machine has %d", n, len(c.dimms))
		return
	}
	for _, dimm := range c.dimms {
		dimm.Restore(d)
	}
	c.Counters.Restore(d)
	c.Links = fbdchan.LinkStats{BytesNorth: d.I64(), BytesSouth: d.I64()}
	c.BankConflicts = d.I64()
	c.lastCmdAt = clock.Time(d.I64())
	c.lastServiceAt = clock.Time(d.I64())
}
