package ddrbus

import (
	"testing"

	"fbdsim/internal/addrmap"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

const ns = clock.Nanosecond
const ready12 = 12 * ns

func newChannel(t *testing.T, mutate func(*config.Config)) (*Channel, *addrmap.Mapper) {
	t.Helper()
	cfg := config.DDR2Baseline()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	m := addrmap.New(&cfg.Mem)
	mem := cfg.Mem
	return New(&mem, m), m
}

// TestIdleReadLatency: DDR2's idle read is 3 propagation + 9 stub-bus
// command overhead + 15 tRCD + 15 tCL + 6 data = 48 ns past the controller
// overhead (60 ns end to end) — just below FB-DIMM's 63 ns, matching the
// measured idle latencies of Figure 5.
func TestIdleReadLatency(t *testing.T) {
	ch, _ := newChannel(t, nil)
	dataAt, hit := ch.ScheduleRead(0, ready12)
	if hit {
		t.Fatal("DDR2 never AMB-hits")
	}
	if want := ready12 + 48*ns; dataAt != want {
		t.Errorf("idle read at %v, want %v (60ns total)", dataAt, want)
	}
}

// TestSharedDataBusSerializesAcrossBanks: unlike FB-DIMM's per-DIMM buses,
// one data bus carries everything; two reads to different banks still space
// by the burst time.
func TestSharedDataBusSerializes(t *testing.T) {
	ch, m := newChannel(t, nil)
	cfg := config.DDR2Baseline().Mem
	a, b := int64(0), int64(2*64)
	if m.Map(a).BankID(&cfg) == m.Map(b).BankID(&cfg) {
		t.Fatal("want different banks")
	}
	d1, _ := ch.ScheduleRead(a, ready12)
	d2, _ := ch.ScheduleRead(b, ready12)
	if d2-d1 < 6*ns {
		t.Errorf("shared data bus must serialize: %v apart", d2-d1)
	}
}

// TestReadWriteShareDataBus: a write burst delays a following read — the
// structural hazard FB-DIMM's separate southbound link removes.
func TestReadWriteShareDataBus(t *testing.T) {
	solo, _ := newChannel(t, nil)
	dSolo, _ := solo.ScheduleRead(2*64, ready12)

	ch, _ := newChannel(t, nil)
	// Write to a different bank first; its data occupies the shared bus.
	ch.ScheduleWrite([]int64{0}, ready12)
	dAfterWrite, _ := ch.ScheduleRead(2*64, ready12)
	if dAfterWrite <= dSolo {
		t.Errorf("read unaffected by write-bus occupancy: %v vs solo %v", dAfterWrite, dSolo)
	}
}

// TestOpenPageRowHit: under page interleaving with open rows, the second
// read to the same row skips ACT entirely.
func TestOpenPageRowHit(t *testing.T) {
	ch, m := newChannel(t, func(c *config.Config) {
		c.Mem.Interleave = config.PageInterleave
		c.Mem.PageMode = config.OpenPage
	})
	if !m.SameRow(0, 64) {
		t.Fatal("page interleave: lines 0 and 1 share a row")
	}
	ch.ScheduleRead(0, ready12)
	if ch.Counters.ACT != 1 {
		t.Fatalf("first read ACT = %d", ch.Counters.ACT)
	}
	if !ch.IsFastRead(64) {
		t.Error("open row must be fast")
	}
	d2, _ := ch.ScheduleRead(64, 600*ns)
	if ch.Counters.ACT != 1 {
		t.Errorf("row hit issued another ACT (total %d)", ch.Counters.ACT)
	}
	// Row hit skips tRCD: 12 cmd + 15 tCL + 6 data = 33ns past ready.
	if want := 600*ns + 33*ns; d2 != want {
		t.Errorf("row-hit read at %v, want %v", d2, want)
	}
	if ch.Counters.PRE != 0 {
		t.Errorf("open page should not precharge yet: PRE = %d", ch.Counters.PRE)
	}
}

// TestOpenPageRowConflict: a different row in the same bank pays
// PRE + ACT before the column access.
func TestOpenPageRowConflict(t *testing.T) {
	ch, m := newChannel(t, func(c *config.Config) {
		c.Mem.Interleave = config.PageInterleave
		c.Mem.PageMode = config.OpenPage
	})
	cfg := config.DDR2Baseline().Mem
	rowBytes := int64(cfg.RowBytes)
	conflict := rowBytes * int64(cfg.TotalBanks()) // same bank, next row
	la, lb := m.Map(0), m.Map(conflict)
	if la.BankID(&cfg) != lb.BankID(&cfg) || la.Row == lb.Row {
		t.Fatalf("addresses do not row-conflict: %v vs %v", la, lb)
	}
	ch.ScheduleRead(0, ready12)
	d2, _ := ch.ScheduleRead(conflict, 500*ns)
	if ch.Counters.PRE != 1 || ch.Counters.ACT != 2 {
		t.Errorf("PRE/ACT = %d/%d, want 1/2", ch.Counters.PRE, ch.Counters.ACT)
	}
	// tRP + tRCD + tCL + transfer + cmd ≥ 54ns past ready.
	if d2 < 500*ns+54*ns {
		t.Errorf("row conflict resolved too fast: %v", d2)
	}
}

func TestWriteGroupSingleActivation(t *testing.T) {
	ch, _ := newChannel(t, func(c *config.Config) {
		c.Mem.Interleave = config.MultiCachelineInterleave
	})
	ch.ScheduleWrite([]int64{0, 64, 128, 192}, ready12)
	if ch.Counters.ACT != 1 || ch.Counters.ColWrit != 4 {
		t.Errorf("ACT=%d writes=%d, want 1/4", ch.Counters.ACT, ch.Counters.ColWrit)
	}
}

func TestLinkBytes(t *testing.T) {
	ch, _ := newChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	ch.ScheduleWrite([]int64{2 * 64}, ready12)
	if ch.Links.BytesNorth != 64 || ch.Links.BytesSouth != 64 {
		t.Errorf("bytes = %+v", ch.Links)
	}
}

func TestClosePageNeverFast(t *testing.T) {
	ch, _ := newChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	if ch.IsFastRead(0) {
		t.Error("close-page DDR2 has no fast reads")
	}
}

func TestHousekeepPreservesFutureScheduling(t *testing.T) {
	ch, _ := newChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	ch.Housekeep(500 * ns)
	d, _ := ch.ScheduleRead(2*64, 1200*ns)
	if want := 1200*ns + 48*ns; d != want {
		t.Errorf("post-housekeep read at %v, want %v", d, want)
	}
}
