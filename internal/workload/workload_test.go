package workload

import (
	"reflect"
	"testing"

	"fbdsim/internal/trace"
)

// TestTable3Workloads pins the exact mixes of Table 3.
func TestTable3Workloads(t *testing.T) {
	want := map[string][]string{
		"2C-1": {"wupwise", "swim"},
		"2C-2": {"mgrid", "applu"},
		"2C-3": {"vpr", "equake"},
		"2C-4": {"facerec", "lucas"},
		"2C-5": {"fma3d", "parser"},
		"2C-6": {"gap", "vortex"},
		"4C-1": {"wupwise", "swim", "mgrid", "applu"},
		"4C-2": {"vpr", "equake", "facerec", "lucas"},
		"4C-3": {"fma3d", "parser", "gap", "vortex"},
		"4C-4": {"wupwise", "mgrid", "vpr", "facerec"},
		"4C-5": {"fma3d", "gap", "swim", "applu"},
		"4C-6": {"equake", "lucas", "parser", "vortex"},
		"8C-1": {"wupwise", "swim", "mgrid", "applu", "vpr", "equake", "facerec", "lucas"},
		"8C-2": {"wupwise", "swim", "mgrid", "applu", "fma3d", "parser", "gap", "vortex"},
		"8C-3": {"vpr", "equake", "facerec", "lucas", "fma3d", "parser", "gap", "vortex"},
	}
	got := Table3()
	if len(got) != len(want) {
		t.Fatalf("Table 3 has %d workloads, want %d", len(got), len(want))
	}
	for _, w := range got {
		exp, ok := want[w.Name]
		if !ok {
			t.Errorf("unexpected workload %q", w.Name)
			continue
		}
		if !reflect.DeepEqual(w.Benchmarks, exp) {
			t.Errorf("%s = %v, want %v", w.Name, w.Benchmarks, exp)
		}
	}
}

func TestEveryBenchmarkHasAProfile(t *testing.T) {
	for _, w := range All() {
		for _, b := range w.Benchmarks {
			if _, err := trace.ProfileFor(b); err != nil {
				t.Errorf("%s: %v", w.Name, err)
			}
		}
	}
}

func TestSingleCore(t *testing.T) {
	ws := SingleCore()
	if len(ws) != 12 {
		t.Fatalf("single-core workloads = %d, want 12", len(ws))
	}
	for _, w := range ws {
		if w.Cores() != 1 {
			t.Errorf("%s has %d cores", w.Name, w.Cores())
		}
	}
}

func TestByCores(t *testing.T) {
	all := All()
	if got := len(ByCores(all, 1)); got != 12 {
		t.Errorf("1-core count = %d", got)
	}
	if got := len(ByCores(all, 2)); got != 6 {
		t.Errorf("2-core count = %d", got)
	}
	if got := len(ByCores(all, 4)); got != 6 {
		t.Errorf("4-core count = %d", got)
	}
	if got := len(ByCores(all, 8)); got != 3 {
		t.Errorf("8-core count = %d", got)
	}
	if got := len(ByCores(all, 16)); got != 0 {
		t.Errorf("16-core count = %d", got)
	}
}

func TestLookup(t *testing.T) {
	w, err := Lookup("4C-5")
	if err != nil {
		t.Fatal(err)
	}
	if w.Cores() != 4 || w.Benchmarks[2] != "swim" {
		t.Errorf("4C-5 = %v", w)
	}
	if _, err := Lookup("16C-1"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestSMTSpeedup(t *testing.T) {
	// Two programs at half their solo IPC: speedup 1.0 (throughput equal
	// to one dedicated machine).
	got := SMTSpeedup([]float64{0.5, 1.0}, []float64{1.0, 2.0})
	if got != 1.0 {
		t.Errorf("speedup = %g, want 1.0", got)
	}
	// Solo: trivially 1.0.
	if got := SMTSpeedup([]float64{2.0}, []float64{2.0}); got != 1.0 {
		t.Errorf("solo speedup = %g", got)
	}
}

func TestSMTSpeedupPanics(t *testing.T) {
	for i, f := range []func(){
		func() { SMTSpeedup([]float64{1}, []float64{1, 2}) },
		func() { SMTSpeedup([]float64{1}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWorkloadString(t *testing.T) {
	w := Workload{Name: "2C-1", Benchmarks: []string{"a", "b"}}
	if w.String() != "2C-1[a b]" {
		t.Errorf("String = %q", w.String())
	}
}

func TestRandomWorkload(t *testing.T) {
	a := Random(4, 9)
	b := Random(4, 9)
	if !reflect.DeepEqual(a, b) {
		t.Error("Random must be deterministic per seed")
	}
	c := Random(4, 10)
	if reflect.DeepEqual(a.Benchmarks, c.Benchmarks) {
		t.Error("different seeds should usually differ")
	}
	// No duplicates below twelve cores.
	seen := map[string]bool{}
	for _, bm := range a.Benchmarks {
		if seen[bm] {
			t.Errorf("duplicate %q in 4-core random mix", bm)
		}
		seen[bm] = true
		if _, err := trace.ProfileFor(bm); err != nil {
			t.Errorf("invalid benchmark %q", bm)
		}
	}
	// Oversized mixes recycle the pool.
	big := Random(16, 3)
	if big.Cores() != 16 {
		t.Errorf("16-core mix has %d cores", big.Cores())
	}
}

func TestRandomWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(0, 1)
}
