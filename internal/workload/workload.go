// Package workload defines the multiprogrammed workload mixes of Table 3
// and the SMT-speedup metric of Section 4.2.
package workload

import (
	"fmt"

	"fbdsim/internal/trace"
)

// Workload is one named mix of benchmarks, one per core.
type Workload struct {
	Name       string
	Benchmarks []string
}

// Cores returns the core count of the mix.
func (w Workload) Cores() int { return len(w.Benchmarks) }

func (w Workload) String() string {
	return fmt.Sprintf("%s%v", w.Name, w.Benchmarks)
}

// SingleCore returns the twelve single-program workloads used as the
// single-core group (and as the reference points for SMT speedup).
func SingleCore() []Workload {
	names := trace.BenchmarkNames()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = Workload{Name: "1C-" + n, Benchmarks: []string{n}}
	}
	return out
}

// Table3 returns the 2-, 4- and 8-core mixes exactly as Table 3 lists them.
func Table3() []Workload {
	return []Workload{
		{Name: "2C-1", Benchmarks: []string{"wupwise", "swim"}},
		{Name: "2C-2", Benchmarks: []string{"mgrid", "applu"}},
		{Name: "2C-3", Benchmarks: []string{"vpr", "equake"}},
		{Name: "2C-4", Benchmarks: []string{"facerec", "lucas"}},
		{Name: "2C-5", Benchmarks: []string{"fma3d", "parser"}},
		{Name: "2C-6", Benchmarks: []string{"gap", "vortex"}},
		{Name: "4C-1", Benchmarks: []string{"wupwise", "swim", "mgrid", "applu"}},
		{Name: "4C-2", Benchmarks: []string{"vpr", "equake", "facerec", "lucas"}},
		{Name: "4C-3", Benchmarks: []string{"fma3d", "parser", "gap", "vortex"}},
		{Name: "4C-4", Benchmarks: []string{"wupwise", "mgrid", "vpr", "facerec"}},
		{Name: "4C-5", Benchmarks: []string{"fma3d", "gap", "swim", "applu"}},
		{Name: "4C-6", Benchmarks: []string{"equake", "lucas", "parser", "vortex"}},
		{Name: "8C-1", Benchmarks: []string{"wupwise", "swim", "mgrid", "applu", "vpr", "equake", "facerec", "lucas"}},
		{Name: "8C-2", Benchmarks: []string{"wupwise", "swim", "mgrid", "applu", "fma3d", "parser", "gap", "vortex"}},
		{Name: "8C-3", Benchmarks: []string{"vpr", "equake", "facerec", "lucas", "fma3d", "parser", "gap", "vortex"}},
	}
}

// All returns single-core, 2-, 4- and 8-core workloads in presentation
// order.
func All() []Workload {
	return append(SingleCore(), Table3()...)
}

// ByCores filters ws to mixes with exactly n cores.
func ByCores(ws []Workload, n int) []Workload {
	var out []Workload
	for _, w := range ws {
		if w.Cores() == n {
			out = append(out, w)
		}
	}
	return out
}

// Lookup finds a workload by name across All().
func Lookup(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Random constructs an n-core workload by sampling benchmarks without
// replacement (falling back to with-replacement beyond twelve cores), the
// way Section 4.2 built Table 3 ("we construct the multiprogramming
// workloads randomly from these selected applications"). The same seed
// always yields the same mix.
func Random(n int, seed int64) Workload {
	if n < 1 {
		panic("workload: need at least one core")
	}
	names := trace.BenchmarkNames()
	// SplitMix64, matching the trace package's generator.
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	pool := append([]string(nil), names...)
	mix := make([]string, 0, n)
	for len(mix) < n {
		if len(pool) == 0 {
			pool = append(pool, names...)
		}
		i := int(next() % uint64(len(pool)))
		mix = append(mix, pool[i])
		pool = append(pool[:i], pool[i+1:]...)
	}
	return Workload{Name: fmt.Sprintf("%dC-rand%d", n, seed), Benchmarks: mix}
}

// SMTSpeedup computes the Section 4.2 metric:
//
//	speedup = Σ_i IPC_cmp[i] / IPC_single[i]
//
// where IPC_single[i] is the same program's IPC alone on the reference
// system. The two slices are matched by index.
func SMTSpeedup(ipcCMP, ipcSingle []float64) float64 {
	if len(ipcCMP) != len(ipcSingle) {
		panic(fmt.Sprintf("workload: IPC slice length mismatch %d vs %d", len(ipcCMP), len(ipcSingle)))
	}
	sum := 0.0
	for i := range ipcCMP {
		if ipcSingle[i] <= 0 {
			panic("workload: non-positive reference IPC")
		}
		sum += ipcCMP[i] / ipcSingle[i]
	}
	return sum
}
