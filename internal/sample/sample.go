// Package sample implements the statistical-sampling fidelity tier: a
// SMARTS/SimPoint-style alternation of fast functional warming and short
// detailed measured windows over one live machine. The paper itself ran
// SimPoint-sampled SPEC2000 regions rather than full programs; this package
// reproduces that trade on the simulator side. Between windows the cores
// execute their trace streams functionally — cache, AMB-cache and
// prefetcher state stays warm while the channel and DRAM timing models are
// bypassed and the simulated clock is frozen — so each measured window
// starts from representative microarchitectural state after only a short
// detailed settling ramp. Per-window measurements aggregate into one
// Results whose headline IPC carries a batch-means 95% confidence interval
// (Results.Estimate).
//
// Cost/accuracy contract (enforced by this package's property tests and the
// committed BENCH_sampled.json): on the seed workloads the default options
// simulate 10-50x fewer instructions in detail than a full run while
// keeping total-IPC error under 2%.
package sample

import (
	"context"
	"fmt"
	"math"

	"fbdsim/internal/ambcache"
	"fbdsim/internal/config"
	"fbdsim/internal/dram"
	"fbdsim/internal/stats"
	"fbdsim/internal/system"
)

// Options tunes the sampling schedule. The zero value selects defaults
// sized for the seed workloads' instruction budgets.
type Options struct {
	// Windows is the number of detailed measured windows (default 12; at
	// least 2 are required for a variance estimate).
	Windows int
	// DetailFraction is the share of the total instruction stream
	// (warmup + measurement budget) simulated in detail, ramps included
	// (default 0.08 — a 12.5x reduction in detailed instructions).
	DetailFraction float64
	// RampFraction is the share of each window's detailed instructions
	// spent settling (unmeasured) before measurement begins (default 0.25).
	RampFraction float64
}

func (o Options) withDefaults() Options {
	if o.Windows <= 0 {
		o.Windows = 12
	}
	if o.Windows < 2 {
		o.Windows = 2
	}
	if o.DetailFraction <= 0 || o.DetailFraction > 1 {
		o.DetailFraction = 0.08
	}
	if o.RampFraction <= 0 || o.RampFraction >= 1 {
		o.RampFraction = 0.25
	}
	return o
}

// Run estimates what a full cycle-accurate run of cfg over benchmarks would
// report, simulating only a DetailFraction of the instruction stream in
// detail. The returned Results carry combined per-window measurements and a
// non-nil Estimate with the batch-means confidence interval.
func Run(ctx context.Context, cfg config.Config, benchmarks []string, opt Options) (system.Results, error) {
	opt = opt.withDefaults()
	s, err := system.New(cfg, benchmarks)
	if err != nil {
		return system.Results{}, err
	}
	return run(ctx, s, cfg, opt)
}

func run(ctx context.Context, s *system.System, cfg config.Config, opt Options) (system.Results, error) {
	warm, budget := cfg.WarmupInsts, cfg.MaxInsts
	span := warm + budget
	n := int64(opt.Windows)

	// Detailed instructions per window (ramp + measured), derived from the
	// fraction; floors keep degenerate budgets meaningful.
	detail := int64(float64(span) * opt.DetailFraction / float64(n))
	if detail < 64 {
		detail = 64
	}
	ramp := int64(float64(detail) * opt.RampFraction)
	measure := detail - ramp
	if measure < 32 {
		measure = 32
	}
	stride := budget / n
	if stride < detail {
		// The budget is too small to sample: windows would overlap. Fall
		// back to contiguous detailed windows (no functional spans inside
		// the measured region — only the warmup is skipped).
		stride = detail
	}

	var (
		windows    []system.Results
		perIPC     []float64
		detailed   int64
		functional int64
		// rates accumulates each core's committed instructions across the
		// detailed windows run so far; the ratios are the cores' natural
		// relative speeds.
		rates = make([]int64, len(s.Committed()))
	)
	noteRates := func(r system.Results) {
		for i, c := range r.Committed {
			rates[i] += c
		}
	}
	// advanceTo moves the slowest core to target functionally, advancing
	// every other core proportionally to its measured speed. Equal advance
	// would pin the cores' stream positions together, and inter-core skew
	// is not a neutral detail: cores that share the L2, the AMB caches and
	// the channel contend measurably differently when aligned than when
	// naturally drifted apart. This is the warmup-region schedule, matching
	// the full run's warmup semantics (every core reaches the threshold).
	advanceTo := func(target int64) {
		cur := s.Committed()
		slow, d := 0, int64(0)
		for i, c := range cur {
			if adv := target - c; adv > d {
				slow, d = i, adv
			}
		}
		if d <= 0 {
			return
		}
		per := make([]int64, len(cur))
		for i := range per {
			per[i] = d
			if rates[slow] > 0 && rates[i] > rates[slow] {
				per[i] = d * rates[i] / rates[slow]
			}
		}
		// Cost accounting stays in stream-progress units (the slow core's
		// advance), the same units as the instruction span and the
		// per-window detailed counts.
		functional += d
		s.FunctionalAdvanceEach(per)
	}

	// Bootstrap: the tail of the warmup region runs in detail. Its window
	// is not part of the estimate — it calibrates the per-core rates the
	// functional spans need, and it leaves the machine settled exactly the
	// way every later window will be entered.
	boot := ramp + measure
	if boot > warm {
		boot = warm
	}
	if len(rates) > 1 && boot > 0 {
		advanceTo(warm - boot)
		r, err := s.StepWindow(ctx, ramp, boot-ramp)
		if err != nil {
			return system.Results{}, fmt.Errorf("sample: bootstrap window: %w", err)
		}
		detailed += ramp + maxOf(r.Committed)
		noteRates(r)
	}

	// Cover the rest of the warmup functionally, then record the
	// miss-counter baseline of the measured region: the functional spans
	// execute every skipped instruction's cache behaviour, so by the end of
	// the schedule the region's true misses-per-instruction is known
	// exactly — the control variate the regression estimator below anchors
	// on.
	advanceTo(warm)
	baseMisses := s.Hierarchy().DemandMisses
	baseCommitted := sumOf(s.Committed())

	// The measured region is scheduled in fast-core progress units: a full
	// run's measurement ends when the FASTEST core commits the budget past
	// its warm baseline (see system.maxDelta), so targeting the slowest core
	// here would simulate a far longer span of the skewed cores' streams
	// than the run being estimated — at multicore cost blowups to match.
	// advanceMeasured moves the leading core to target (past warm baseline),
	// trailing cores proportionally less.
	warmBase := append([]int64(nil), s.Committed()...)
	fastDelta := func() int64 {
		var d int64
		for i, c := range s.Committed() {
			if dd := c - warmBase[i]; dd > d {
				d = dd
			}
		}
		return d
	}
	advanceMeasured := func(target int64) {
		d := target - fastDelta()
		if d <= 0 {
			return
		}
		fast := 0
		for i, r := range rates {
			if r > rates[fast] {
				fast = i
			}
		}
		per := make([]int64, len(warmBase))
		for i := range per {
			per[i] = d
			if rates[fast] > 0 && rates[i] < rates[fast] {
				per[i] = d * rates[i] / rates[fast]
			}
		}
		functional += d
		s.FunctionalAdvanceEach(per)
	}

	for i := int64(0); i < n; i++ {
		advanceMeasured(i * stride)
		r, err := s.StepWindow(ctx, ramp, measure)
		if err != nil {
			return system.Results{}, fmt.Errorf("sample: window %d: %w", i, err)
		}
		detailed += ramp + maxOf(r.Committed)
		noteRates(r)
		windows = append(windows, r)
		perIPC = append(perIPC, r.TotalIPC())
	}
	// Cover the tail of the measured region so the control variate spans
	// exactly what a full run would have executed.
	advanceMeasured(budget)
	trueMPI := float64(s.Hierarchy().DemandMisses-baseMisses) /
		float64(sumOf(s.Committed())-baseCommitted)

	out := combine(windows)
	estIPC, ci := regressionEstimate(windows, trueMPI)
	// Re-anchor the combined Results on the adjusted estimate: keep the
	// measured per-core instruction counts and rescale the cycle count so
	// IPC[i] = Committed[i]/Cycles still holds.
	if estIPC > 0 && out.TotalIPC() > 0 {
		out.Cycles = int64(float64(sumOf(out.Committed))/estIPC + 0.5)
		for i := range out.IPC {
			out.IPC[i] = float64(out.Committed[i]) / float64(out.Cycles)
		}
	}
	out.Estimate = &system.EstimateInfo{
		Tier:            "sampled",
		TotalIPC:        out.TotalIPC(),
		CI95:            ci,
		Windows:         len(windows),
		DetailedInsts:   detailed,
		FunctionalInsts: functional,
		PerWindowIPC:    perIPC,
	}
	return out, nil
}

// regressionEstimate is a control-variate estimator over the measured
// windows: per-window cycles-per-instruction is nearly linear in per-window
// demand misses per instruction (each miss costs roughly the same stall),
// and the functional spans give the measured region's TRUE misses-per-
// instruction. Regressing window CPI on window MPI and evaluating the fit
// at the true MPI removes the dominant variance component — which windows
// happened to catch miss bursts — leaving only the residual noise. It
// returns the adjusted total-IPC estimate and the 95% CI half-width on it
// (batch-means over the regression residuals).
func regressionEstimate(ws []system.Results, trueMPI float64) (ipc, ci float64) {
	n := len(ws)
	xs := make([]float64, n) // window demand misses per committed instruction
	ys := make([]float64, n) // window cycles per committed instruction
	var committed, cycles, misses int64
	for i, r := range ws {
		c := sumOf(r.Committed)
		xs[i] = float64(r.DemandMisses) / float64(c)
		ys[i] = float64(r.Cycles) / float64(c)
		committed += c
		cycles += r.Cycles
		misses += r.DemandMisses
	}
	// Combined (committed-weighted) means: the ratio estimator the
	// adjustment re-centres.
	yc := float64(cycles) / float64(committed)
	xc := float64(misses) / float64(committed)

	var xbar, ybar float64
	for i := range xs {
		xbar += xs[i]
		ybar += ys[i]
	}
	xbar /= float64(n)
	ybar /= float64(n)
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - xbar) * (xs[i] - xbar)
		sxy += (xs[i] - xbar) * (ys[i] - ybar)
	}
	// The adjustment is applied only to single-core runs. A window's stop
	// condition — the first cycle-check boundary after `measure` committed
	// instructions — correlates with the window's own recent speed, so
	// windows preferentially end right after fast low-miss stretches and
	// the plain combined estimate runs optimistic; for one core the CPI~MPI
	// fit is tight and evaluating it at the true MPI removes both that
	// selection bias and trace nonstationarity (a stream whose locality
	// drifts over the run makes the plain window mean badly biased). On
	// multicore the windows themselves can be state-biased — the functional
	// schedule walks trailing cores' positions on estimated rates, and a
	// position error changes shared-cache contention in every window — so
	// re-centring on the true MPI corrects the wrong axis and can move the
	// estimate further from the truth; the covariate stays unused and the
	// CI (batch means over the raw windows) carries the uncertainty. See
	// DESIGN.md §14 for when multicore sampled estimates are trustworthy.
	beta := 0.0
	if n >= 4 && sxx > 0 && len(ws[0].Committed) == 1 {
		beta = sxy / sxx
	}
	yAdj := yc + beta*(trueMPI-xc)
	if yAdj <= 0 { // a degenerate fit must not produce nonsense
		yAdj, beta = yc, 0
	}

	// Residual spread around the fit drives the CI; with beta == 0 this
	// degrades gracefully to plain batch-means on window CPI.
	var ss float64
	for i := range xs {
		d := ys[i] - ybar - beta*(xs[i]-xbar)
		ss += d * d
	}
	dof := n - 1
	if beta != 0 {
		dof = n - 2
	}
	ciY := 0.0
	if dof >= 1 && n >= 2 {
		s := math.Sqrt(ss / float64(dof))
		ciY = tValue(dof) * s / math.Sqrt(float64(n))
	}
	ipc = 1 / yAdj
	// First-order delta method: d(1/y) = dy/y².
	ci = ciY / (yAdj * yAdj)
	return ipc, ci
}

// combine aggregates per-window Results into one: counters and cycles sum,
// rates recompute from the sums, and latency percentiles come from the
// merged per-window histograms (each window's histogram covers exactly its
// measured interval, so the merge is the union of measured reads).
func combine(ws []system.Results) system.Results {
	first := ws[0]
	out := system.Results{
		Benchmarks: first.Benchmarks,
		Cores:      first.Cores,
		IPC:        make([]float64, first.Cores),
		Committed:  make([]int64, first.Cores),
	}
	hist := &stats.Histogram{}
	var latWeighted float64
	var bwWeighted, readUtilW, writeUtilW float64
	for _, r := range ws {
		out.Cycles += r.Cycles
		for i := range out.Committed {
			out.Committed[i] += r.Committed[i]
		}
		out.Reads += r.Reads
		out.Writes += r.Writes
		out.AMBHits += r.AMBHits
		out.BankConflicts += r.BankConflicts
		out.L2Accesses += r.L2Accesses
		out.L2Misses += r.L2Misses
		out.DemandMisses += r.DemandMisses
		out.SWPrefetches += r.SWPrefetches
		out.HWPrefetches += r.HWPrefetches
		out.Writebacks += r.Writebacks
		out.DRAM = dram.Counters{
			ACT:     out.DRAM.ACT + r.DRAM.ACT,
			PRE:     out.DRAM.PRE + r.DRAM.PRE,
			ColRead: out.DRAM.ColRead + r.DRAM.ColRead,
			ColWrit: out.DRAM.ColWrit + r.DRAM.ColWrit,
		}
		out.AMB = ambcache.Stats{
			Reads:         out.AMB.Reads + r.AMB.Reads,
			Hits:          out.AMB.Hits + r.AMB.Hits,
			Prefetched:    out.AMB.Prefetched + r.AMB.Prefetched,
			Evictions:     out.AMB.Evictions + r.AMB.Evictions,
			Invalidations: out.AMB.Invalidations + r.AMB.Invalidations,
			Scrubs:        out.AMB.Scrubs + r.AMB.Scrubs,
		}
		out.Faults = out.Faults.Add(r.Faults)
		hist.Merge(r.LatencyHist)
		latWeighted += r.AvgReadLatencyNS * float64(r.Reads)
		w := float64(r.Cycles)
		bwWeighted += r.UtilizedBandwidthGBs * w
		readUtilW += r.ReadLinkUtilization * w
		writeUtilW += r.WriteLinkUtilization * w
	}
	for i := range out.IPC {
		out.IPC[i] = float64(out.Committed[i]) / float64(out.Cycles)
	}
	if out.Reads > 0 {
		out.AvgReadLatencyNS = latWeighted / float64(out.Reads)
	}
	out.LatencyHist = hist
	if hist.Count() > 0 {
		out.P50LatencyNS = hist.Percentile(0.50).Nanoseconds()
		out.P90LatencyNS = hist.Percentile(0.90).Nanoseconds()
		out.P99LatencyNS = hist.Percentile(0.99).Nanoseconds()
		out.MaxLatencyNS = hist.Max().Nanoseconds()
	}
	if out.Cycles > 0 {
		out.UtilizedBandwidthGBs = bwWeighted / float64(out.Cycles)
		out.ReadLinkUtilization = readUtilW / float64(out.Cycles)
		out.WriteLinkUtilization = writeUtilW / float64(out.Cycles)
	}
	return out
}

// batchMeansCI returns the sample mean of the per-window IPC observations
// and the half-width of the 95% batch-means confidence interval
// (t_{n-1} × s/√n). Windows are the batches; with the long functional spans
// between them, window means are close to independent.
func batchMeansCI(xs []float64) (mean, half float64) {
	n := len(xs)
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n-1))
	return mean, tValue(n-1) * s / math.Sqrt(float64(n))
}

// tValue returns the two-sided 95% Student-t critical value for df degrees
// of freedom (interpolation-free lookup; large df converges to 1.96).
func tValue(df int) float64 {
	table := []float64{ // df 1..30
		12.71, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return table[0]
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

func sumOf(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func minOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
