package sample

import (
	"context"
	"math"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

// accuracyCase is one seed workload × configuration point of the sampling
// contract.
type accuracyCase struct {
	name       string
	cfg        config.Config
	benchmarks []string
}

func accuracyCases(short bool) []accuracyCase {
	fbd := config.Default()
	ap := config.WithAMBPrefetch(config.Default())
	ddr2 := config.DDR2Baseline()
	cases := []accuracyCase{
		{"fbd-ap/swim", ap, []string{"swim"}},
		{"fbd/vpr", fbd, []string{"vpr"}},
	}
	if !short {
		cases = append(cases,
			accuracyCase{"ddr2/swim", ddr2, []string{"swim"}},
			accuracyCase{"fbd-ap/2C-1", ap, []string{"wupwise", "swim"}},
			accuracyCase{"fbd/4C-1", fbd, []string{"wupwise", "swim", "mgrid", "applu"}},
		)
	}
	return cases
}

// TestSampledAccuracy is the tier's property test: on seed workloads the
// sampled estimate must stay within 2% total-IPC error of the full
// cycle-accurate run while simulating at least 10x (and at most 50x) fewer
// instructions in detail.
func TestSampledAccuracy(t *testing.T) {
	for _, tc := range accuracyCases(testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			// The contract is stated at production scale: sampling needs
			// enough measured windows of enough length to average the
			// traces' phase structure, which a few-hundred-k-instruction
			// span cannot provide at a >=10x detail reduction.
			cfg.MaxInsts = 2_000_000
			cfg.WarmupInsts = 100_000
			full, err := system.RunWorkload(cfg, tc.benchmarks)
			if err != nil {
				t.Fatal(err)
			}
			est, err := Run(context.Background(), cfg, tc.benchmarks, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if est.Estimate == nil {
				t.Fatal("sampled Results missing Estimate")
			}
			errPct := 100 * math.Abs(est.TotalIPC()-full.TotalIPC()) / full.TotalIPC()
			span := cfg.WarmupInsts + cfg.MaxInsts
			reduction := float64(span) / float64(est.Estimate.DetailedInsts)
			t.Logf("full IPC %.4f  sampled %.4f ± %.4f  err %.2f%%  detail reduction %.1fx (detailed %d / span %d, windows %d)",
				full.TotalIPC(), est.TotalIPC(), est.Estimate.CI95, errPct,
				reduction, est.Estimate.DetailedInsts, span, est.Estimate.Windows)
			if errPct >= 2.0 {
				t.Errorf("IPC error %.2f%% >= 2%%", errPct)
			}
			if reduction < 10 || reduction > 50 {
				t.Errorf("detailed-instruction reduction %.1fx outside the 10-50x contract", reduction)
			}
		})
	}
}

// TestSampledEstimateShape checks the bookkeeping invariants of the
// estimate: windows recorded, per-window IPCs present, CI non-negative,
// counters plausible.
func TestSampledEstimateShape(t *testing.T) {
	cfg := config.WithAMBPrefetch(config.Default())
	cfg.MaxInsts = 120_000
	cfg.WarmupInsts = 20_000
	r, err := Run(context.Background(), cfg, []string{"swim"}, Options{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := r.Estimate
	if e == nil || e.Tier != "sampled" {
		t.Fatalf("estimate = %+v, want sampled tier", e)
	}
	if e.Windows != 4 || len(e.PerWindowIPC) != 4 {
		t.Fatalf("windows = %d, per-window IPCs = %d, want 4", e.Windows, len(e.PerWindowIPC))
	}
	if e.CI95 < 0 {
		t.Errorf("negative CI95 %v", e.CI95)
	}
	if e.TotalIPC != r.TotalIPC() {
		t.Errorf("estimate TotalIPC %v != results TotalIPC %v", e.TotalIPC, r.TotalIPC())
	}
	if e.DetailedInsts <= 0 || e.FunctionalInsts <= 0 {
		t.Errorf("cost accounting empty: detailed %d functional %d", e.DetailedInsts, e.FunctionalInsts)
	}
	if r.Cycles <= 0 || r.Reads <= 0 {
		t.Errorf("combined results implausible: cycles %d reads %d", r.Cycles, r.Reads)
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC %v <= 0", i, ipc)
		}
	}
}

// TestSampledCancellation: a cancelled context aborts mid-schedule with the
// context error.
func TestSampledCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := config.Default()
	cfg.MaxInsts = 200_000
	if _, err := Run(ctx, cfg, []string{"swim"}, Options{}); err == nil {
		t.Fatal("expected cancellation error")
	}
}
