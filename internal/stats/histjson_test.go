package stats

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fbdsim/internal/clock"
)

// TestHistogramJSONRoundTrip: marshal→unmarshal is the identity on the full
// in-memory state, including counts, n, sum and the exact min/max — the
// property the sweep journal's bit-identical resume depends on.
func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := rng.Intn(5000)
		for i := 0; i < n; i++ {
			h.Observe(clock.Time(rng.Int63n(1 << uint(10+rng.Intn(30)))))
		}
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Histogram
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h, &back) {
			t.Fatalf("trial %d: round trip not identity (n=%d)", trial, n)
		}
	}
}

// TestHistogramJSONEmpty: the zero histogram round-trips to the zero value
// and encodes without a counts array.
func TestHistogramJSONEmpty(t *testing.T) {
	h := &Histogram{}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "counts") {
		t.Errorf("empty histogram encoded counts: %s", b)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, &back) {
		t.Error("empty round trip not identity")
	}
}

// TestHistogramJSONRejectsBadBucket: corrupt journals fail loudly instead of
// silently mis-binning.
func TestHistogramJSONRejectsBadBucket(t *testing.T) {
	var h Histogram
	for _, bad := range []string{
		`{"n":1,"sum":5,"min":5,"max":5,"counts":[[-1,1]]}`,
		`{"n":1,"sum":5,"min":5,"max":5,"counts":[[99999,1]]}`,
	} {
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("accepted out-of-range bucket: %s", bad)
		}
	}
}

// TestHistogramJSONPercentilesSurvive: queries on a decoded histogram match
// the original exactly.
func TestHistogramJSONPercentilesSurvive(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(clock.Time(i * 37))
	}
	b, _ := json.Marshal(h)
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if h.Percentile(p) != back.Percentile(p) {
			t.Errorf("p%.2f: %d vs %d", p, h.Percentile(p), back.Percentile(p))
		}
	}
	if h.Mean() != back.Mean() || h.Count() != back.Count() {
		t.Error("mean/count drifted across round trip")
	}
}
