package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, goroutine-safe event counter — the
// building block of the serving-side metrics (jobs accepted, cache hits,
// ...) and of the experiment Runner's cache accounting.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-like uses, e.g. queue depth).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is an expvar-style collection of named metrics that renders
// itself as a JSON object. Values are read at render time, so registering a
// Counter or a Func is enough to keep the exported value live. The zero
// value is ready to use.
type Registry struct {
	mu    sync.Mutex
	names []string
	vars  map[string]func() any
	// labels maps a registered key to its Prometheus label-set suffix
	// (`{k="v",...}`) when the metric was registered through LabeledFunc;
	// the key itself is base name + suffix, so JSON output carries the
	// labels verbatim and Prometheus output re-splits them.
	labels map[string]string
}

// Func registers a metric computed at render time.
func (r *Registry) Func(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name, "", f)
}

// LabeledFunc registers a metric computed at render time that carries a
// fixed Prometheus label set: WriteProm renders it as name{k="v",...} value
// and WriteJSON uses the full labeled key. Label sets must be bounded and
// known at registration time (e.g. tenants from a keyfile) — this is not a
// per-request label minting API, so cardinality stays fixed for the
// process's life.
func (r *Registry) LabeledFunc(name string, labels map[string]string, f func() any) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(promName(k))
		sb.WriteString(`="`)
		sb.WriteString(promEscape(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name+sb.String(), sb.String(), f)
}

// registerLocked installs one metric under its full key. Caller holds r.mu.
func (r *Registry) registerLocked(key, labelSuffix string, f func() any) {
	if r.vars == nil {
		r.vars = make(map[string]func() any)
	}
	if _, dup := r.vars[key]; dup {
		panic(fmt.Sprintf("stats: duplicate metric %q", key))
	}
	r.names = append(r.names, key)
	r.vars[key] = f
	if labelSuffix != "" {
		if r.labels == nil {
			r.labels = make(map[string]string)
		}
		r.labels[key] = labelSuffix
	}
}

// Counter registers and returns a named counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Func(name, func() any { return c.Value() })
	return c
}

// LabeledCounter registers and returns a counter carrying a fixed label set
// (see LabeledFunc for the cardinality contract).
func (r *Registry) LabeledCounter(name string, labels map[string]string) *Counter {
	c := &Counter{}
	r.LabeledFunc(name, labels, func() any { return c.Value() })
	return c
}

// Snapshot returns the current value of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.names))
	for name, f := range r.vars {
		out[name] = f()
	}
	return out
}

// Info is a label-set metric: constant facts about the process (version,
// toolchain, start time) exported Prometheus-style as the constant-1 sample
// name{key="value",...} 1, the idiom scrapers join other series against.
// WriteJSON renders it as a plain string map.
type Info map[string]string

// capture copies the registry's name list (sorted), value funcs and label
// suffixes so rendering never holds the registry lock across user callbacks.
func (r *Registry) capture() ([]string, map[string]func() any, map[string]string) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make(map[string]func() any, len(names))
	for k, v := range r.vars {
		vars[k] = v
	}
	labels := make(map[string]string, len(r.labels))
	for k, v := range r.labels {
		labels[k] = v
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names, vars, labels
}

// WriteJSON renders the registry as an indented JSON object with keys
// emitted explicitly in sorted order — deterministic output, pinned by a
// golden test, safe for scrapers to diff.
func (r *Registry) WriteJSON(w io.Writer) error {
	names, vars, _ := r.capture()
	var buf bytes.Buffer
	buf.WriteString("{")
	for i, name := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("\n  ")
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		buf.Write(key)
		buf.WriteString(": ")
		val, err := json.MarshalIndent(vars[name](), "  ", "  ")
		if err != nil {
			return fmt.Errorf("metric %q: %w", name, err)
		}
		buf.Write(val)
	}
	if len(names) > 0 {
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4), keys in sorted order, names sanitized to the Prometheus
// charset. Value types map onto exposition types:
//
//   - numbers and bools: one untyped sample
//   - *Histogram (clock.Time picoseconds): a native histogram — cumulative
//     _bucket{le="..."} samples with bounds converted to seconds, then
//     _sum and _count
//   - Info: the constant-1 labeled sample name{k="v",...} 1
//
// Metrics registered via LabeledFunc/LabeledCounter render as
// name{k="v",...} value; a family of labeled samples sharing one base name
// gets a single # TYPE line. Anything else is skipped.
func (r *Registry) WriteProm(w io.Writer) error {
	names, vars, labels := r.capture()
	lastBase := ""
	for _, name := range names {
		base, suffix := name, ""
		if ls, ok := labels[name]; ok {
			base, suffix = strings.TrimSuffix(name, ls), ls
		}
		pn := promName(base)
		var err error
		switch x := vars[name]().(type) {
		case *Histogram:
			err = writePromHistogram(w, pn, x)
			pn = ""
		case Info:
			err = writePromInfo(w, pn, x)
			pn = ""
		default:
			v, ok := promValue(x)
			if !ok {
				continue
			}
			if pn != lastBase {
				if _, err = fmt.Fprintf(w, "# TYPE %s untyped\n", pn); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s%s %s\n", pn, suffix, v)
		}
		lastBase = pn
		if err != nil {
			return err
		}
	}
	return nil
}

// promTicksPerSecond converts the histogram domain (clock.Time
// picoseconds) to the Prometheus convention of seconds. Dividing by the
// exactly representable 1e12 keeps round values round ("1.002e-06", not
// "1.0019999999999999e-06").
const promTicksPerSecond = 1e12

// writePromHistogram renders one *Histogram as a native Prometheus
// histogram. Bucket bounds are the histogram's internal log-linear bounds
// in seconds; only non-empty buckets are emitted (counts are cumulative, so
// eliding empties is lossless), with the mandatory +Inf bucket closing the
// series.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for _, b := range h.CumulativeBuckets() {
		le := float64(b.Upper) / promTicksPerSecond
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatProm(le), b.Cumulative); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	sum := float64(h.Sum()) / promTicksPerSecond
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatProm(sum), name, h.Count())
	return err
}

// writePromInfo renders an Info metric as the constant-1 labeled sample,
// labels in sorted order with values escaped per the exposition format.
func writePromInfo(w io.Writer, name string, info Info) error {
	keys := make([]string, 0, len(info))
	for k := range info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(promName(k))
		sb.WriteString(`="`)
		sb.WriteString(promEscape(info[k]))
		sb.WriteByte('"')
	}
	_, err := fmt.Fprintf(w, "# TYPE %s untyped\n%s{%s} 1\n", name, name, sb.String())
	return err
}

// formatProm formats a float the way the exposition format expects.
func formatProm(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a label value: backslash, double quote and newline.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promValue formats a metric value as a Prometheus sample, or reports that
// the value is not numeric.
func promValue(v any) (string, bool) {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("%d", x), true
	case int64:
		return fmt.Sprintf("%d", x), true
	case uint64:
		return fmt.Sprintf("%d", x), true
	case float64:
		return fmt.Sprintf("%g", x), true
	case float32:
		return fmt.Sprintf("%g", x), true
	case bool:
		if x {
			return "1", true
		}
		return "0", true
	default:
		return "", false
	}
}

// promName maps a registry name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other rune with '_'.
func promName(name string) string {
	out := []byte(name)
	for i, c := range out {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
