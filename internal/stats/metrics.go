package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, goroutine-safe event counter — the
// building block of the serving-side metrics (jobs accepted, cache hits,
// ...) and of the experiment Runner's cache accounting.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-like uses, e.g. queue depth).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is an expvar-style collection of named metrics that renders
// itself as a JSON object. Values are read at render time, so registering a
// Counter or a Func is enough to keep the exported value live. The zero
// value is ready to use.
type Registry struct {
	mu    sync.Mutex
	names []string
	vars  map[string]func() any
}

// Func registers a metric computed at render time.
func (r *Registry) Func(name string, f func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.vars == nil {
		r.vars = make(map[string]func() any)
	}
	if _, dup := r.vars[name]; dup {
		panic(fmt.Sprintf("stats: duplicate metric %q", name))
	}
	r.names = append(r.names, name)
	r.vars[name] = f
}

// Counter registers and returns a named counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Func(name, func() any { return c.Value() })
	return c
}

// Snapshot returns the current value of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.names))
	for name, f := range r.vars {
		out[name] = f()
	}
	return out
}

// WriteJSON renders the registry as an indented JSON object with keys in
// sorted order (stable output for tests and scrapers).
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make(map[string]func() any, len(names))
	for k, v := range r.vars {
		vars[k] = v
	}
	r.mu.Unlock()
	sort.Strings(names)

	// Render through an ordered map: encoding/json sorts map keys, which
	// is exactly the stability we want, but values must be captured first
	// so a slow marshal does not hold the registry lock.
	obj := make(map[string]any, len(names))
	for _, name := range names {
		obj[name] = vars[name]()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one untyped sample per numeric metric, names sanitized
// to the Prometheus charset, keys in sorted order. Non-numeric metrics
// (strings, structs) are skipped — Prometheus samples are float64-valued.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make(map[string]func() any, len(names))
	for k, v := range r.vars {
		vars[k] = v
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		v, ok := promValue(vars[name]())
		if !ok {
			continue
		}
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s untyped\n%s %s\n", pn, pn, v); err != nil {
			return err
		}
	}
	return nil
}

// promValue formats a metric value as a Prometheus sample, or reports that
// the value is not numeric.
func promValue(v any) (string, bool) {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("%d", x), true
	case int64:
		return fmt.Sprintf("%d", x), true
	case uint64:
		return fmt.Sprintf("%d", x), true
	case float64:
		return fmt.Sprintf("%g", x), true
	case float32:
		return fmt.Sprintf("%g", x), true
	case bool:
		if x {
			return "1", true
		}
		return "0", true
	default:
		return "", false
	}
}

// promName maps a registry name onto the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other rune with '_'.
func promName(name string) string {
	out := []byte(name)
	for i, c := range out {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
