package stats

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fbdsim/internal/clock"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// A *Histogram metric must render as a native Prometheus histogram:
// cumulative _bucket samples with seconds bounds, then _sum and _count.
func TestWritePromHistogram(t *testing.T) {
	var h Histogram
	// Three observations in picoseconds: 1 ns, 1 ns, 1 µs.
	h.Observe(1000)
	h.Observe(1000)
	h.Observe(clock.Microsecond)

	reg := &Registry{}
	reg.Func("req_seconds", func() any { return h.Clone() })

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.Contains(out, "# TYPE req_seconds histogram\n") {
		t.Errorf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `req_seconds_bucket{le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, "req_seconds_count 3\n") {
		t.Errorf("missing _count:\n%s", out)
	}
	// Sum = 2*1000ps + 1e6ps = 1.002e6 ps = 1.002e-6 s.
	if !strings.Contains(out, "req_seconds_sum 1.002e-06\n") {
		t.Errorf("missing _sum in seconds:\n%s", out)
	}

	// Bucket lines are cumulative and non-decreasing, and every le bound
	// parses as a positive float within the ps→s conversion's range.
	var lastCum int64 = -1
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "req_seconds_bucket{le=\"") || strings.Contains(line, "+Inf") {
			continue
		}
		buckets++
		le, cum, err := parseBucketLine(line)
		if err != nil {
			t.Fatalf("malformed bucket line %q: %v", line, err)
		}
		if le <= 0 || le > 1 {
			t.Errorf("bucket bound %g out of the sub-second range", le)
		}
		if cum < lastCum {
			t.Errorf("bucket counts must be cumulative: %d after %d", cum, lastCum)
		}
		lastCum = cum
	}
	if buckets == 0 {
		t.Errorf("no finite bucket lines rendered:\n%s", out)
	}
	if lastCum != 3 {
		t.Errorf("last finite cumulative = %d, want 3 (no observation beyond 1µs)", lastCum)
	}
}

// parseBucketLine parses one `name{le="<float>"} <int>` exposition line.
func parseBucketLine(line string) (le float64, cum int64, err error) {
	start := strings.Index(line, `le="`) + len(`le="`)
	end := strings.Index(line[start:], `"`) + start
	if le, err = strconv.ParseFloat(line[start:end], 64); err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(line)
	cum, err = strconv.ParseInt(fields[len(fields)-1], 10, 64)
	return le, cum, err
}

// An empty histogram still renders a structurally complete exposition.
func TestWritePromHistogramEmpty(t *testing.T) {
	reg := &Registry{}
	reg.Func("idle_seconds", func() any { return &Histogram{} })
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE idle_seconds histogram\n",
		`idle_seconds_bucket{le="+Inf"} 0`,
		"idle_seconds_sum 0\n",
		"idle_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty histogram output missing %q:\n%s", want, out)
		}
	}
}

// An Info metric renders as the constant-1 labeled sample with sorted,
// escaped labels.
func TestWritePromInfo(t *testing.T) {
	reg := &Registry{}
	reg.Func("build_info", func() any {
		return Info{"version": "v1.2.3", "go_version": "go1.22", "note": `a"b\c` + "\nd"}
	})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `build_info{go_version="go1.22",note="a\"b\\c\nd",version="v1.2.3"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("info sample wrong:\ngot  %s\nwant %s", sb.String(), want)
	}
}

// CumulativeBuckets elides empties and reports cumulative counts at the
// correct log-linear upper bounds.
func TestCumulativeBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	h.Observe(100)
	bs := h.CumulativeBuckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %+v, want 2 entries", bs)
	}
	if bs[0].Upper != 1 || bs[0].Cumulative != 2 {
		t.Errorf("first bucket = %+v, want upper 1 cum 2", bs[0])
	}
	if bs[1].Cumulative != 3 || bs[1].Upper <= 100 {
		t.Errorf("second bucket = %+v, want cum 3 with upper > 100", bs[1])
	}
}

// The registry's JSON rendering is pinned byte-for-byte: keys sorted,
// two-space indent, deterministic value formatting. Scrapers and tests
// diff this output, so accidental reordering or reformatting must fail CI.
func TestWriteJSONGolden(t *testing.T) {
	reg := &Registry{}
	reg.Counter("zeta_total").Add(12)
	reg.Counter("alpha_total").Add(3)
	reg.Func("ratio", func() any { return 0.25 })
	reg.Func("build_info", func() any {
		return Info{"version": "v0.0.0-test", "go_version": "go-test"}
	})
	var h Histogram
	h.Observe(1000)
	h.Observe(2000)
	reg.Func("wait_seconds", func() any { return h.Clone() })

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "registry.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("WriteJSON output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
