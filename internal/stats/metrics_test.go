package stats

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	c.Add(-8000)
	if got := c.Value(); got != 0 {
		t.Errorf("after Add(-8000) = %d, want 0", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := &Registry{}
	jobs := reg.Counter("jobs")
	reg.Func("depth", func() any { return 3 })
	jobs.Add(5)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	if m["jobs"].(float64) != 5 || m["depth"].(float64) != 3 {
		t.Errorf("rendered values wrong: %v", m)
	}

	snap := reg.Snapshot()
	if snap["jobs"].(int64) != 5 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRegistryProm(t *testing.T) {
	reg := &Registry{}
	jobs := reg.Counter("jobs_done")
	jobs.Add(7)
	reg.Func("wall-ms.mean", func() any { return 1.5 }) // needs sanitizing
	reg.Func("ratio", func() any { return float64(0.25) })
	reg.Func("label", func() any { return "text" }) // non-numeric: skipped
	reg.Func("up", func() any { return true })

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE jobs_done untyped\njobs_done 7\n",
		"# TYPE wall_ms_mean untyped\nwall_ms_mean 1.5\n",
		"ratio 0.25\n",
		"up 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "label") || strings.Contains(out, "text") {
		t.Errorf("non-numeric metric must be skipped:\n%s", out)
	}
	// Every sample line must match the exposition grammar loosely:
	// name SP value, with a sanitized name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
		if strings.ContainsAny(parts[0], "-. ") {
			t.Errorf("unsanitized metric name %q", parts[0])
		}
	}
}

func TestRegistryLabeled(t *testing.T) {
	reg := &Registry{}
	acme := reg.LabeledCounter("tenant_jobs", map[string]string{"tenant": "acme"})
	beta := reg.LabeledCounter("tenant_jobs", map[string]string{"tenant": "beta"})
	reg.LabeledFunc("tenant_active", map[string]string{"tenant": "acme", "class": "analytic"}, func() any { return 2 })
	acme.Add(3)
	beta.Add(9)

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`tenant_jobs{tenant="acme"} 3`,
		`tenant_jobs{tenant="beta"} 9`,
		`tenant_active{class="analytic",tenant="acme"} 2`, // labels sorted by key
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base family even with multiple label sets.
	if got := strings.Count(out, "# TYPE tenant_jobs untyped"); got != 1 {
		t.Errorf("TYPE line for tenant_jobs emitted %d times, want 1:\n%s", got, out)
	}

	// JSON output carries the labeled key verbatim (deterministic, sorted).
	sb.Reset()
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	if m[`tenant_jobs{tenant="acme"}`].(float64) != 3 {
		t.Errorf("labeled JSON key missing: %v", m)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":    "ok_name",
		"has-dash":   "has_dash",
		"dots.too":   "dots_too",
		"0leading":   "_leading",
		"mixed:case": "mixed:case",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name must panic")
		}
	}()
	reg := &Registry{}
	reg.Counter("x")
	reg.Counter("x")
}
