package stats

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	c.Add(-8000)
	if got := c.Value(); got != 0 {
		t.Errorf("after Add(-8000) = %d, want 0", got)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := &Registry{}
	jobs := reg.Counter("jobs")
	reg.Func("depth", func() any { return 3 })
	jobs.Add(5)

	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, sb.String())
	}
	if m["jobs"].(float64) != 5 || m["depth"].(float64) != 3 {
		t.Errorf("rendered values wrong: %v", m)
	}

	snap := reg.Snapshot()
	if snap["jobs"].(int64) != 5 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name must panic")
		}
	}()
	reg := &Registry{}
	reg.Counter("x")
	reg.Counter("x")
}
