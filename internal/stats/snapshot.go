package stats

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the histogram: the non-zero buckets (sparse — most
// of the 328 buckets are empty) plus the running aggregates.
func (h *Histogram) Snapshot(e *snapshot.Encoder) {
	nz := 0
	for _, c := range h.counts {
		if c != 0 {
			nz++
		}
	}
	e.Int(nz)
	for i, c := range h.counts {
		if c != 0 {
			e.Int(i)
			e.I64(c)
		}
	}
	e.I64(h.n)
	e.I64(int64(h.sum))
	e.I64(int64(h.min))
	e.I64(int64(h.max))
}

// Restore overwrites the histogram from d.
func (h *Histogram) Restore(d *snapshot.Decoder) {
	*h = Histogram{}
	nz := d.Count(16)
	for i := 0; i < nz; i++ {
		idx := d.Int()
		if idx < 0 || idx >= maxBuckets {
			d.Fail("stats: histogram bucket index %d out of range", idx)
			return
		}
		h.counts[idx] = d.I64()
	}
	h.n = d.I64()
	h.sum = clock.Time(d.I64())
	h.min = clock.Time(d.I64())
	h.max = clock.Time(d.I64())
}
