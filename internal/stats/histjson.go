package stats

import (
	"encoding/json"
	"fmt"

	"fbdsim/internal/clock"
)

// histogramJSON is the wire form of a Histogram: the non-zero buckets as
// sorted [bucket, count] pairs plus the exact scalar state. Every field of
// the in-memory representation is preserved, so a marshal/unmarshal round
// trip reconstructs a Histogram that is reflect.DeepEqual to the original —
// the property the sweep journal's bit-identical resume guarantee rests on.
type histogramJSON struct {
	N      int64      `json:"n"`
	Sum    clock.Time `json:"sum"`
	Min    clock.Time `json:"min"`
	Max    clock.Time `json:"max"`
	Counts [][2]int64 `json:"counts,omitempty"`
}

// MarshalJSON encodes the histogram losslessly (sparse bucket pairs).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{N: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			out.Counts = append(out.Counts, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram previously encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*h = Histogram{n: in.N, sum: in.Sum, min: in.Min, max: in.Max}
	for _, pair := range in.Counts {
		idx, c := pair[0], pair[1]
		if idx < 0 || idx >= maxBuckets {
			return fmt.Errorf("stats: histogram bucket %d out of range [0,%d)", idx, maxBuckets)
		}
		h.counts[idx] = c
	}
	return nil
}
