// Package stats provides the measurement primitives the experiment harness
// builds on: a log-linear latency histogram with percentile queries (memory
// latency distributions are heavy-tailed, and the tail — not the mean — is
// what blocks a ROB), and a simple running summary.
package stats

import (
	"fmt"
	"math/bits"
	"strings"

	"fbdsim/internal/clock"
)

// subBuckets is the number of linear sub-buckets per power of two. Eight
// gives ≤ 12.5% relative error on percentile queries, plenty for latency
// distributions spanning 30 ns to a few µs.
const subBuckets = 8

// maxBuckets covers values up to 2^40 ps ≈ 1.1 s.
const maxBuckets = 41 * subBuckets

// Histogram is a log-linear histogram over clock.Time values. The zero
// value is ready to use.
type Histogram struct {
	counts [maxBuckets]int64
	n      int64
	sum    clock.Time
	min    clock.Time
	max    clock.Time
}

// bucketOf maps a value to its bucket index.
func bucketOf(v clock.Time) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v), >= 3
	// Linear position within the power-of-two range [2^exp, 2^(exp+1)).
	sub := int((v >> uint(exp-3)) & (subBuckets - 1))
	idx := (exp-2)*subBuckets + sub
	if idx >= maxBuckets {
		return maxBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx (the inverse
// of bucketOf, used to answer percentile queries).
func bucketLow(idx int) clock.Time {
	if idx < subBuckets {
		return clock.Time(idx)
	}
	exp := idx/subBuckets + 2
	sub := idx % subBuckets
	return clock.Time((8 + int64(sub)) << uint(exp-3))
}

// Observe records one value.
func (h *Histogram) Observe(v clock.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() clock.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / clock.Time(h.n)
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() clock.Time { return h.min }
func (h *Histogram) Max() clock.Time { return h.max }

// Percentile returns an approximation of the p-quantile: the lower bound
// of the bucket containing the ceil(p·n)-th observation. With log-linear
// buckets the approximation is within 12.5% of the true value.
//
// Edge behavior: an empty histogram returns 0 for every p; p <= 0 returns
// the exact observed minimum; p >= 1 returns the exact observed maximum.
// NaN compares false with both bounds and is treated like an interior p
// (it resolves to the first bucket).
func (h *Histogram) Percentile(p float64) clock.Time {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	target := int64(p * float64(h.n))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Sub returns a histogram holding the observations in h but not in old,
// where old is normally an earlier snapshot of the same histogram. It is
// how the system measures post-warmup distributions without resetting
// counters.
//
// Sub is tolerant of a mismatched argument: a nil old behaves like an
// empty snapshot, and any bucket where old exceeds h is clamped to zero
// (with n and sum recomputed from the clamped buckets) instead of going
// negative. The result's min/max are conservative bounds derived from the
// surviving buckets, intersected with h's observed range.
func (h *Histogram) Sub(old *Histogram) *Histogram {
	if old == nil {
		return h.Clone()
	}
	out := &Histogram{}
	first, last := -1, -1
	for i := range h.counts {
		d := h.counts[i] - old.counts[i]
		if d <= 0 {
			continue
		}
		out.counts[i] = d
		out.n += d
		if first < 0 {
			first = i
		}
		last = i
	}
	if out.n == 0 {
		return out
	}
	if sum := h.sum - old.sum; sum > 0 {
		out.sum = sum
	}
	// Bucket bounds of the surviving mass, tightened by h's exact extremes
	// when those fall inside them.
	out.min = bucketLow(first)
	if h.min > out.min {
		out.min = h.min
	}
	out.max = bucketLow(last + 1)
	if h.max < out.max {
		out.max = h.max
	}
	if out.max < out.min {
		out.max = out.min
	}
	return out
}

// Clone returns a copy (a snapshot for later Sub).
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Merge folds other's observations into h (nil or empty other is a no-op).
// The sampling tier uses it to combine per-window latency distributions
// into one estimate.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// BucketCount is one cumulative histogram bucket: Cumulative observations
// with value < Upper (bucket bounds are half-open [low, high)).
type BucketCount struct {
	Upper      clock.Time
	Cumulative int64
}

// CumulativeBuckets returns the histogram's non-empty buckets as cumulative
// counts keyed by bucket upper bound, lowest first — the shape a Prometheus
// histogram exposition wants. Empty buckets are elided (Prometheus allows
// arbitrary bound subsets since counts are cumulative); the total
// observation count is Count() and observations overflowing the last
// internal bucket appear only in the +Inf bucket the renderer adds.
func (h *Histogram) CumulativeBuckets() []BucketCount {
	var out []BucketCount
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if i == maxBuckets-1 {
			// The final bucket absorbs clamped overflow values, so its
			// finite bound would lie; leave that mass to the +Inf bucket.
			break
		}
		out = append(out, BucketCount{Upper: bucketLow(i + 1), Cumulative: cum})
	}
	return out
}

// Sum returns the exact sum of all observed values.
func (h *Histogram) Sum() clock.Time { return h.sum }

// String summarizes the distribution in nanoseconds.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.1fns p50=%.1fns p90=%.1fns p99=%.1fns max=%.1fns",
		h.n, h.Mean().Nanoseconds(), h.Percentile(0.50).Nanoseconds(),
		h.Percentile(0.90).Nanoseconds(), h.Percentile(0.99).Nanoseconds(),
		h.max.Nanoseconds())
}

// Render draws a coarse ASCII bar chart of the distribution (for the CLI's
// -hist flag); width is the maximum bar length in characters.
func (h *Histogram) Render(width int) string {
	if h.n == 0 {
		return "(no observations)\n"
	}
	if width < 8 {
		width = 8
	}
	// Merge buckets into at most 16 display rows spanning min..max.
	first, last := bucketOf(h.min), bucketOf(h.max)
	span := last - first + 1
	rows := 16
	if span < rows {
		rows = span
	}
	per := (span + rows - 1) / rows
	type row struct {
		lo, hi clock.Time
		count  int64
	}
	var rws []row
	for b := first; b <= last; b += per {
		end := b + per - 1
		if end > last {
			end = last
		}
		var c int64
		for i := b; i <= end; i++ {
			c += h.counts[i]
		}
		hi := bucketLow(end + 1)
		rws = append(rws, row{bucketLow(b), hi, c})
	}
	var peak int64 = 1
	for _, r := range rws {
		if r.count > peak {
			peak = r.count
		}
	}
	var sb strings.Builder
	for _, r := range rws {
		bar := int(int64(width) * r.count / peak)
		fmt.Fprintf(&sb, "%8.0f-%-8.0fns |%-*s| %d\n",
			r.lo.Nanoseconds(), r.hi.Nanoseconds(), width, strings.Repeat("#", bar), r.count)
	}
	return sb.String()
}

// Summary accumulates a scalar series (IPC, bandwidth, ...) for cheap
// mean/min/max reporting.
type Summary struct {
	n   int64
	sum float64
	min float64
	max float64
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// Count, Mean, Min, Max report the accumulated series.
func (s *Summary) Count() int64 { return s.n }
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }
