package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fbdsim/internal/clock"
)

const ns = clock.Nanosecond

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
	if h.String() != "empty" {
		t.Errorf("String = %q", h.String())
	}
	if !strings.Contains(h.Render(40), "no observations") {
		t.Error("Render of empty histogram")
	}
}

func TestMeanMinMax(t *testing.T) {
	var h Histogram
	for _, v := range []clock.Time{10 * ns, 20 * ns, 30 * ns} {
		h.Observe(v)
	}
	if h.Mean() != 20*ns {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 10*ns || h.Max() != 30*ns {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	// 1..1000 ns uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(clock.Time(i) * ns)
	}
	for _, tc := range []struct {
		p    float64
		want clock.Time
	}{
		{0.50, 500 * ns},
		{0.90, 900 * ns},
		{0.99, 990 * ns},
	} {
		got := h.Percentile(tc.p)
		lo := float64(tc.want) * 0.85
		hi := float64(tc.want) * 1.01
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("p%.0f = %v, want within 15%% below %v", tc.p*100, got, tc.want)
		}
	}
	if h.Percentile(0) != h.Min() || h.Percentile(1) != h.Max() {
		t.Error("extreme percentiles must clamp to min/max")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketOf(v)) <= v for all v, and bucketOf(bucketLow(i)) == i.
	for i := 0; i < maxBuckets; i++ {
		lo := bucketLow(i)
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucket %d: low %d maps to %d", i, lo, got)
		}
	}
	f := func(raw uint32) bool {
		v := clock.Time(raw)
		return bucketLow(bucketOf(v)) <= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeObservationsClamp(t *testing.T) {
	var h Histogram
	h.Observe(-5 * ns)
	if h.Count() != 1 || h.Min() != 0 {
		t.Errorf("negative observation handling: %+v", h)
	}
}

func TestSubSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100 * ns)
	h.Observe(200 * ns)
	snap := h.Clone()
	h.Observe(300 * ns)
	h.Observe(400 * ns)
	d := h.Sub(snap)
	if d.Count() != 2 {
		t.Fatalf("delta count = %d", d.Count())
	}
	if d.Mean() != 350*ns {
		t.Errorf("delta mean = %v, want 350ns", d.Mean())
	}
}

func TestSubMismatchClamps(t *testing.T) {
	// Sub with a non-snapshot argument must clamp, not go negative or
	// panic: buckets where old exceeds h contribute nothing.
	var a, b Histogram
	a.Observe(100 * ns)
	b.Observe(10 * ns) // not in a: would drive that bucket negative
	b.Observe(10 * ns)
	d := a.Sub(&b)
	if d.Count() != 1 {
		t.Fatalf("clamped delta count = %d, want 1", d.Count())
	}
	if d.Min() < 0 || d.Max() < d.Min() {
		t.Errorf("clamped delta range invalid: min=%v max=%v", d.Min(), d.Max())
	}
	if p := d.Percentile(0.5); p < 0 {
		t.Errorf("percentile of clamped delta = %v", p)
	}

	// Fully-mismatched: everything clamps away, leaving an empty result.
	var empty Histogram
	d = empty.Sub(&b)
	if d.Count() != 0 || d.Mean() != 0 {
		t.Errorf("empty-minus-nonempty = %+v, want empty", d)
	}
}

func TestSubNilOld(t *testing.T) {
	var h Histogram
	h.Observe(50 * ns)
	d := h.Sub(nil)
	if d.Count() != 1 || d.Mean() != 50*ns {
		t.Errorf("Sub(nil) = %+v, want clone", d)
	}
	d.Observe(60 * ns)
	if h.Count() != 1 {
		t.Error("Sub(nil) must return an independent copy")
	}
}

func TestSubPreservesExtremes(t *testing.T) {
	// A genuine snapshot whose delta lies inside h's range: min/max of the
	// delta must stay within the surviving buckets' bounds.
	var h Histogram
	h.Observe(100 * ns)
	snap := h.Clone()
	h.Observe(300 * ns)
	d := h.Sub(snap)
	if d.Count() != 1 {
		t.Fatalf("delta count = %d", d.Count())
	}
	if d.Max() < d.Min() || d.Max() > 300*ns || d.Min() > 300*ns {
		t.Errorf("delta extremes min=%v max=%v", d.Min(), d.Max())
	}
}

func TestPercentileEdges(t *testing.T) {
	var empty Histogram
	for _, p := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Percentile(p); got != 0 {
			t.Errorf("empty.Percentile(%v) = %v, want 0", p, got)
		}
	}
	var h Histogram
	h.Observe(17 * ns)
	h.Observe(4000 * ns)
	if got := h.Percentile(0); got != 17*ns {
		t.Errorf("p=0 = %v, want exact min 17ns", got)
	}
	if got := h.Percentile(-0.5); got != 17*ns {
		t.Errorf("p<0 = %v, want exact min 17ns", got)
	}
	if got := h.Percentile(1); got != 4000*ns {
		t.Errorf("p=1 = %v, want exact max 4000ns", got)
	}
	if got := h.Percentile(1.5); got != 4000*ns {
		t.Errorf("p>1 = %v, want exact max 4000ns", got)
	}
}

func TestRender(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Observe(clock.Time(60+rng.Intn(300)) * ns)
	}
	out := h.Render(40)
	if !strings.Contains(out, "#") || !strings.Contains(out, "ns") {
		t.Errorf("Render output malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines > 17 {
		t.Errorf("Render produced %d rows, want <= 16", lines)
	}
}

// TestPercentileMonotonic is a property: percentiles never decrease in p.
func TestPercentileMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 300; i++ {
			h.Observe(clock.Time(rng.Intn(1_000_000)))
		}
		prev := clock.Time(-1)
		for p := 0.05; p <= 1.0; p += 0.05 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.Count() != 4 || s.Mean() != 2.5 || s.Min() != 1 || s.Max() != 4 {
		t.Errorf("summary = %+v", s)
	}
	var empty Summary
	if empty.Mean() != 0 {
		t.Error("empty summary mean")
	}
}
