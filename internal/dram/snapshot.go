package dram

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes one bank's timing FSM. The timing parameters are
// construction-derived and not written.
func (b *Bank) Snapshot(e *snapshot.Encoder) {
	e.I64(b.openRow)
	e.I64(int64(b.actAt))
	e.I64(int64(b.readyAt))
	e.I64(int64(b.preOKAt))
	e.I64(int64(b.lastWriteDataEnd))
}

// Restore overwrites the bank's FSM from d.
func (b *Bank) Restore(d *snapshot.Decoder) {
	b.openRow = d.I64()
	b.actAt = clock.Time(d.I64())
	b.readyAt = clock.Time(d.I64())
	b.preOKAt = clock.Time(d.I64())
	b.lastWriteDataEnd = clock.Time(d.I64())
}

// Snapshot serializes the operation counters.
func (c *Counters) Snapshot(e *snapshot.Encoder) {
	e.I64(c.ACT)
	e.I64(c.PRE)
	e.I64(c.ColRead)
	e.I64(c.ColWrit)
}

// Restore overwrites the counters from d.
func (c *Counters) Restore(d *snapshot.Decoder) {
	c.ACT = d.I64()
	c.PRE = d.I64()
	c.ColRead = d.I64()
	c.ColWrit = d.I64()
}

// Snapshot serializes the DIMM's mutable state: every bank FSM plus the
// inter-bank tRRD tracker. Refresh settings and the degraded-bus scale are
// derived from configuration at construction and not written.
func (d *DIMM) Snapshot(e *snapshot.Encoder) {
	e.Int(len(d.Banks))
	for _, b := range d.Banks {
		b.Snapshot(e)
	}
	e.I64(int64(d.lastACT))
	e.Bool(d.hasACT)
}

// Restore overwrites the DIMM's mutable state from dec. The bank count
// must match the constructed geometry.
func (d *DIMM) Restore(dec *snapshot.Decoder) {
	if n := dec.Int(); n != len(d.Banks) {
		dec.Fail("dram: snapshot has %d banks, machine has %d", n, len(d.Banks))
		return
	}
	for _, b := range d.Banks {
		b.Restore(dec)
	}
	d.lastACT = clock.Time(dec.I64())
	d.hasACT = dec.Bool()
}
