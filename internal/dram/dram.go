// Package dram models DDR2 logical banks at command granularity. A Bank
// tracks the row-buffer state and the earliest legal issue time of each
// DRAM operation under the Table 2 timing constraints; a DIMM groups banks
// and enforces the inter-bank tRRD spacing. Data-bus occupancy is owned by
// the interconnect models (internal/fbdchan, internal/ddrbus), not here.
//
// The model is transaction-driven rather than edge-triggered: callers ask
// "when could this command issue?" and then commit it, which keeps the
// memory-controller schedulers simple while preserving cycle accuracy.
package dram

import (
	"fmt"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

// NoRow marks a closed (precharged or precharging) bank.
const NoRow int64 = -1

// Counters accumulates DRAM operation counts for the power model
// (Section 5.5 estimates power from ACT/PRE pairs and column accesses).
type Counters struct {
	ACT     int64
	PRE     int64
	ColRead int64 // column read accesses, including AMB prefetch fetches
	ColWrit int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.ACT += other.ACT
	c.PRE += other.PRE
	c.ColRead += other.ColRead
	c.ColWrit += other.ColWrit
}

// Columns returns the total number of column accesses.
func (c *Counters) Columns() int64 { return c.ColRead + c.ColWrit }

// Bank is one logical DRAM bank (all physical banks of a rank operated in
// lockstep, per Section 3.2).
type Bank struct {
	t config.Timing

	openRow int64
	// actAt is the issue time of the most recent ACT.
	actAt clock.Time
	// readyAt is when the bank is precharged and may accept an ACT
	// (tRP after the precharge).
	readyAt clock.Time
	// preOKAt is the earliest a PRE may issue (tRAS after ACT, tRPD after
	// a read, tWPD after a write).
	preOKAt clock.Time
	// lastColEnd is when the most recent column access's bus burst ends;
	// used by tWTR accounting at the DIMM level.
	lastWriteDataEnd clock.Time
}

// NewBank returns a precharged, idle bank.
func NewBank(t config.Timing) *Bank {
	return &Bank{t: t, openRow: NoRow}
}

// OpenRow returns the currently open row, or NoRow.
func (b *Bank) OpenRow() int64 { return b.openRow }

// EarliestACT returns the earliest time ≥ now an ACT may issue. The bank
// must be (or become) precharged; tRC from the previous ACT also applies.
// Inter-bank tRRD is enforced by DIMM.
func (b *Bank) EarliestACT(now clock.Time) clock.Time {
	t := maxTime(now, b.readyAt)
	if b.actAt > 0 || b.openRow != NoRow {
		t = maxTime(t, b.actAt+b.t.TRC)
	}
	return t
}

// Activate opens row at time at. The caller must respect EarliestACT.
func (b *Bank) Activate(at clock.Time, row int64, c *Counters) {
	if b.openRow != NoRow {
		panic(fmt.Sprintf("dram: ACT to open bank (row %d open)", b.openRow))
	}
	b.openRow = row
	b.actAt = at
	b.preOKAt = at + b.t.TRAS
	c.ACT++
}

// EarliestRead returns the earliest time ≥ now a column read may issue to
// the open row (tRCD after ACT, tWTR after the last write data).
func (b *Bank) EarliestRead(now clock.Time) clock.Time {
	t := maxTime(now, b.actAt+b.t.TRCD)
	return maxTime(t, b.lastWriteDataEnd+b.t.TWTR)
}

// Read issues a column read at time at and returns when the first data
// beats leave the DRAM (tCL later). burst is the data-bus occupancy of the
// transfer, used to extend the precharge constraint.
func (b *Bank) Read(at clock.Time, burst clock.Time, c *Counters) (dataAt clock.Time) {
	b.mustBeOpen("RD")
	b.preOKAt = maxTime(b.preOKAt, at+b.t.TRPD)
	c.ColRead++
	return at + b.t.TCL
}

// EarliestWrite returns the earliest time ≥ now a column write may issue.
func (b *Bank) EarliestWrite(now clock.Time) clock.Time {
	return maxTime(now, b.actAt+b.t.TRCD)
}

// Write issues a column write at time at; data appears tWL later and
// occupies the bus for burst.
func (b *Bank) Write(at clock.Time, burst clock.Time, c *Counters) (dataAt clock.Time) {
	b.mustBeOpen("WR")
	b.preOKAt = maxTime(b.preOKAt, at+b.t.TWPD)
	dataAt = at + b.t.TWL
	b.lastWriteDataEnd = dataAt + burst
	c.ColWrit++
	return dataAt
}

// EarliestPRE returns the earliest time ≥ now a precharge may issue.
func (b *Bank) EarliestPRE(now clock.Time) clock.Time {
	return maxTime(now, b.preOKAt)
}

// Precharge closes the bank at time at; it becomes ready tRP later.
func (b *Bank) Precharge(at clock.Time, c *Counters) {
	b.mustBeOpen("PRE")
	b.openRow = NoRow
	b.readyAt = at + b.t.TRP
	c.PRE++
}

func (b *Bank) mustBeOpen(op string) {
	if b.openRow == NoRow {
		panic(fmt.Sprintf("dram: %s to closed bank", op))
	}
}

func maxTime(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}

// DIMM groups the logical banks behind one AMB (or, for the DDR2 baseline,
// one rank on the channel) and enforces tRRD between activations to
// different banks, plus — when enabled — periodic all-bank refresh windows.
type DIMM struct {
	Banks   []*Bank
	t       config.Timing
	lastACT clock.Time
	hasACT  bool

	// Refresh: every refEvery the DIMM spends refBusy refreshing all
	// banks; no new activation may start inside the window. refPhase
	// staggers DIMMs so a channel never loses every DIMM at once.
	refEvery clock.Time
	refBusy  clock.Time
	refPhase clock.Time

	// busScale is the degraded-mode bus slowdown: every burst occupies
	// busScale× the nominal DDR2 bus time. 1 (healthy) unless degraded.
	busScale int
}

// SetDegradedBus puts the DIMM's DDR2 bus into degraded mode: each data
// burst occupies factor× its nominal bus time (the fault model for a DIMM
// whose interface trains down to a reduced rate). factor <= 1 restores the
// healthy bus.
func (d *DIMM) SetDegradedBus(factor int) {
	if factor < 1 {
		factor = 1
	}
	d.busScale = factor
}

// BusScale returns the bus slowdown factor in effect (1 when healthy).
func (d *DIMM) BusScale() int {
	if d.busScale < 1 {
		return 1
	}
	return d.busScale
}

// SetRefresh enables periodic all-bank refresh: a window of busy every
// interval, offset by phase. The paper's evaluation ignores refresh (its
// ~1-2% bandwidth cost is common to every configuration); this extension
// lets the ablation benchmarks quantify that assumption.
func (d *DIMM) SetRefresh(interval, busy, phase clock.Time) {
	if interval <= busy || busy <= 0 {
		panic("dram: refresh interval must exceed the refresh busy time")
	}
	d.refEvery = interval
	d.refBusy = busy
	d.refPhase = phase
}

// avoidRefresh pushes t past any refresh window it falls inside.
func (d *DIMM) avoidRefresh(t clock.Time) clock.Time {
	if d.refEvery == 0 {
		return t
	}
	pos := (t - d.refPhase) % d.refEvery
	if pos < 0 {
		pos += d.refEvery
	}
	if pos < d.refBusy {
		return t + (d.refBusy - pos)
	}
	return t
}

// NewDIMM builds a DIMM with n precharged banks.
func NewDIMM(n int, t config.Timing) *DIMM {
	d := &DIMM{t: t, Banks: make([]*Bank, n)}
	for i := range d.Banks {
		d.Banks[i] = NewBank(t)
	}
	return d
}

// EarliestACT returns the earliest time ≥ now bank may be activated,
// including the inter-bank tRRD constraint and any refresh window.
func (d *DIMM) EarliestACT(bank int, now clock.Time) clock.Time {
	t := d.Banks[bank].EarliestACT(now)
	if d.hasACT {
		t = maxTime(t, d.lastACT+d.t.TRRD)
	}
	return d.avoidRefresh(t)
}

// Activate issues the ACT and records it for tRRD tracking.
func (d *DIMM) Activate(bank int, at clock.Time, row int64, c *Counters) {
	d.Banks[bank].Activate(at, row, c)
	d.lastACT = at
	d.hasACT = true
}
