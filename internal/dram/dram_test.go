package dram

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

const ns = clock.Nanosecond

func newBank() (*Bank, *Counters) {
	return NewBank(config.Table2()), &Counters{}
}

func TestFreshBankIsClosed(t *testing.T) {
	b, _ := newBank()
	if b.OpenRow() != NoRow {
		t.Fatal("fresh bank must be precharged")
	}
	if got := b.EarliestACT(100 * ns); got != 100*ns {
		t.Errorf("fresh bank ACT at %v, want immediately", got)
	}
}

func TestReadAfterActivateRespectsTRCD(t *testing.T) {
	b, c := newBank()
	b.Activate(0, 7, c)
	if b.OpenRow() != 7 {
		t.Fatalf("open row = %d", b.OpenRow())
	}
	if got := b.EarliestRead(0); got != 15*ns {
		t.Errorf("earliest read = %v, want tRCD = 15ns", got)
	}
	data := b.Read(15*ns, 6*ns, c)
	if data != 30*ns {
		t.Errorf("read data at %v, want 15ns + tCL = 30ns", data)
	}
	if c.ACT != 1 || c.ColRead != 1 {
		t.Errorf("counters = %+v", *c)
	}
}

func TestPrechargeConstraints(t *testing.T) {
	b, c := newBank()
	b.Activate(0, 1, c)
	// tRAS: no precharge before 39ns even with no accesses.
	if got := b.EarliestPRE(0); got != 39*ns {
		t.Errorf("earliest PRE = %v, want tRAS = 39ns", got)
	}
	// A read at 35ns pushes PRE to 35+tRPD = 44ns.
	b.Read(35*ns, 6*ns, c)
	if got := b.EarliestPRE(0); got != 44*ns {
		t.Errorf("earliest PRE after read = %v, want 44ns", got)
	}
	b.Precharge(44*ns, c)
	if b.OpenRow() != NoRow {
		t.Error("bank must close on precharge")
	}
	// Ready again tRP later; tRC from the ACT also applies (54 < 59).
	if got := b.EarliestACT(0); got != 59*ns {
		t.Errorf("next ACT at %v, want 44+tRP = 59ns", got)
	}
	if c.PRE != 1 {
		t.Errorf("PRE count = %d", c.PRE)
	}
}

func TestWritePushesPrechargeByTWPD(t *testing.T) {
	b, c := newBank()
	b.Activate(0, 1, c)
	data := b.Write(20*ns, 6*ns, c)
	if data != 32*ns {
		t.Errorf("write data at %v, want 20 + tWL = 32ns", data)
	}
	if got := b.EarliestPRE(0); got != 56*ns {
		t.Errorf("earliest PRE = %v, want 20 + tWPD = 56ns", got)
	}
	if c.ColWrit != 1 {
		t.Errorf("write count = %d", c.ColWrit)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	b, c := newBank()
	b.Activate(0, 1, c)
	b.Write(20*ns, 6*ns, c) // data 32..38ns
	// tWTR: read no earlier than 38 + 9 = 47ns.
	if got := b.EarliestRead(0); got != 47*ns {
		t.Errorf("earliest read after write = %v, want 47ns", got)
	}
}

func TestTRCBetweenActivations(t *testing.T) {
	b, c := newBank()
	b.Activate(0, 1, c)
	b.Read(15*ns, 6*ns, c)
	b.Precharge(39*ns, c)
	// tRP clears at 54ns, which equals tRC here.
	if got := b.EarliestACT(0); got != 54*ns {
		t.Errorf("second ACT at %v, want max(tRC, PRE+tRP) = 54ns", got)
	}
	b.Activate(54*ns, 2, c)
	if b.OpenRow() != 2 {
		t.Error("second activation row")
	}
}

func TestIllegalOperationsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Bank, *Counters)
	}{
		{"read closed", func(b *Bank, c *Counters) { b.Read(0, 6*ns, c) }},
		{"write closed", func(b *Bank, c *Counters) { b.Write(0, 6*ns, c) }},
		{"precharge closed", func(b *Bank, c *Counters) { b.Precharge(0, c) }},
		{"double activate", func(b *Bank, c *Counters) {
			b.Activate(0, 1, c)
			b.Activate(100*ns, 2, c)
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			b, c := newBank()
			tc.f(b, c)
		}()
	}
}

func TestDIMMEnforcesTRRD(t *testing.T) {
	d := NewDIMM(4, config.Table2())
	c := &Counters{}
	d.Activate(0, 0, 1, c)
	// A different bank must wait tRRD = 9ns.
	if got := d.EarliestACT(1, 0); got != 9*ns {
		t.Errorf("cross-bank ACT at %v, want tRRD = 9ns", got)
	}
	d.Activate(1, 9*ns, 1, c)
	if got := d.EarliestACT(2, 0); got != 18*ns {
		t.Errorf("third ACT at %v, want 18ns", got)
	}
	if c.ACT != 2 {
		t.Errorf("ACT count = %d", c.ACT)
	}
}

func TestDIMMSameBankUsesBankRules(t *testing.T) {
	d := NewDIMM(4, config.Table2())
	c := &Counters{}
	d.Activate(0, 0, 1, c)
	d.Banks[0].Read(15*ns, 6*ns, c)
	d.Banks[0].Precharge(39*ns, c)
	// Same bank: tRC dominates tRRD.
	if got := d.EarliestACT(0, 0); got != 54*ns {
		t.Errorf("same-bank re-ACT at %v, want 54ns", got)
	}
}

func TestDegradedBusScale(t *testing.T) {
	d := NewDIMM(4, config.Table2())
	if d.BusScale() != 1 {
		t.Errorf("healthy DIMM BusScale = %d, want 1", d.BusScale())
	}
	d.SetDegradedBus(3)
	if d.BusScale() != 3 {
		t.Errorf("degraded BusScale = %d, want 3", d.BusScale())
	}
	d.SetDegradedBus(0) // factor <= 1 restores the healthy bus
	if d.BusScale() != 1 {
		t.Errorf("restored BusScale = %d, want 1", d.BusScale())
	}
}

func TestCountersAddAndColumns(t *testing.T) {
	a := Counters{ACT: 1, PRE: 2, ColRead: 3, ColWrit: 4}
	b := Counters{ACT: 10, PRE: 20, ColRead: 30, ColWrit: 40}
	a.Add(b)
	if a.ACT != 11 || a.PRE != 22 || a.ColRead != 33 || a.ColWrit != 44 {
		t.Errorf("Add = %+v", a)
	}
	if a.Columns() != 77 {
		t.Errorf("Columns = %d", a.Columns())
	}
}

func TestRefreshWindowBlocksActivation(t *testing.T) {
	d := NewDIMM(4, config.Table2())
	d.SetRefresh(1000*ns, 100*ns, 0)
	// Inside the window [0, 100ns): pushed to the end.
	if got := d.EarliestACT(0, 50*ns); got != 100*ns {
		t.Errorf("ACT during refresh at %v, want 100ns", got)
	}
	// Outside the window: unaffected.
	if got := d.EarliestACT(0, 200*ns); got != 200*ns {
		t.Errorf("ACT after refresh at %v, want 200ns", got)
	}
	// The next period's window also blocks.
	if got := d.EarliestACT(0, 1050*ns); got != 1100*ns {
		t.Errorf("ACT in second window at %v, want 1100ns", got)
	}
}

func TestRefreshPhaseStagger(t *testing.T) {
	d := NewDIMM(4, config.Table2())
	d.SetRefresh(1000*ns, 100*ns, 500*ns)
	if got := d.EarliestACT(0, 50*ns); got != 50*ns {
		t.Errorf("phase-shifted window should not block t=50ns: %v", got)
	}
	if got := d.EarliestACT(0, 550*ns); got != 600*ns {
		t.Errorf("ACT in shifted window at %v, want 600ns", got)
	}
}

func TestRefreshMisconfigurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDIMM(1, config.Table2()).SetRefresh(100*ns, 100*ns, 0)
}
