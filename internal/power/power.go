// Package power estimates DRAM dynamic power the way Section 5.5 does:
// count activate/precharge pairs and column accesses from the simulator,
// then weight them with the ratio obtained from the Micron DDR2
// system-power calculator — roughly 4:1 between one ACT/PRE pair and one
// column access at 70% bandwidth utilization under close-page mode.
// Absolute watts are never needed; every figure is a ratio between two
// configurations of the same run length.
package power

import "fbdsim/internal/dram"

// Weights holds the relative energy of the counted DRAM events.
type Weights struct {
	// ACTPREPair is the energy of one activation plus its precharge,
	// in units of one column access.
	ACTPREPair float64
	// ColumnAccess is the unit energy of one column (read or write)
	// access.
	ColumnAccess float64
}

// PaperWeights is the 4:1 calibration of Section 5.5.
func PaperWeights() Weights { return Weights{ACTPREPair: 4, ColumnAccess: 1} }

// StaticFraction is the share of total DRAM power that is static for the
// paper's configuration (the dynamic estimate excludes it, as the paper
// notes).
const StaticFraction = 0.175

// Dynamic returns the dynamic energy of the counted events in
// column-access units. Activations and precharges come in pairs under
// close-page auto-precharge; when the counts differ (open-page runs may end
// with rows open), the pair count is the larger of the two so no event is
// dropped.
func Dynamic(c dram.Counters, w Weights) float64 {
	pairs := c.ACT
	if c.PRE > pairs {
		pairs = c.PRE
	}
	return float64(pairs)*w.ACTPREPair + float64(c.Columns())*w.ColumnAccess
}

// Ratio returns Dynamic(test)/Dynamic(base) — the normalized power of
// Figure 13 (values below 1.0 are savings).
func Ratio(test, base dram.Counters, w Weights) float64 {
	b := Dynamic(base, w)
	if b == 0 {
		return 0
	}
	return Dynamic(test, w) / b
}

// Saving returns 1 - Ratio: the fraction of dynamic DRAM power saved.
func Saving(test, base dram.Counters, w Weights) float64 {
	return 1 - Ratio(test, base, w)
}
