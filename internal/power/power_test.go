package power

import (
	"testing"
	"testing/quick"

	"fbdsim/internal/dram"
)

func TestDynamicWeighting(t *testing.T) {
	w := PaperWeights()
	if w.ACTPREPair != 4 || w.ColumnAccess != 1 {
		t.Fatalf("paper weights = %+v, want 4:1", w)
	}
	c := dram.Counters{ACT: 10, PRE: 10, ColRead: 7, ColWrit: 3}
	if got := Dynamic(c, w); got != 4*10+10 {
		t.Errorf("Dynamic = %g, want 50", got)
	}
}

func TestDynamicUsesLargerOfACTPRE(t *testing.T) {
	w := PaperWeights()
	// Open-page run ended with rows open: more ACTs than PREs.
	c := dram.Counters{ACT: 12, PRE: 10, ColRead: 0}
	if got := Dynamic(c, w); got != 48 {
		t.Errorf("Dynamic = %g, want 48 (12 pairs)", got)
	}
	c = dram.Counters{ACT: 10, PRE: 12}
	if got := Dynamic(c, w); got != 48 {
		t.Errorf("Dynamic = %g, want 48", got)
	}
}

func TestRatioAndSaving(t *testing.T) {
	w := PaperWeights()
	base := dram.Counters{ACT: 100, PRE: 100, ColRead: 100}
	// The paper's four-cacheline trade-off: fewer ACTs, more columns.
	ap := dram.Counters{ACT: 60, PRE: 60, ColRead: 140}
	ratio := Ratio(ap, base, w)
	want := (4.0*60 + 140) / (4.0*100 + 100)
	if ratio != want {
		t.Errorf("ratio = %g, want %g", ratio, want)
	}
	if got := Saving(ap, base, w); got != 1-want {
		t.Errorf("saving = %g", got)
	}
}

func TestRatioZeroBase(t *testing.T) {
	if got := Ratio(dram.Counters{ACT: 1}, dram.Counters{}, PaperWeights()); got != 0 {
		t.Errorf("zero base ratio = %g", got)
	}
}

func TestStaticFraction(t *testing.T) {
	if StaticFraction != 0.175 {
		t.Errorf("static fraction = %g, want 17.5%%", StaticFraction)
	}
}

// TestMoreWorkNeverCheaper: adding DRAM events can only increase dynamic
// energy (monotonicity property).
func TestMoreWorkNeverCheaper(t *testing.T) {
	w := PaperWeights()
	f := func(act, col, dAct, dCol uint16) bool {
		base := dram.Counters{ACT: int64(act), PRE: int64(act), ColRead: int64(col)}
		more := dram.Counters{ACT: int64(act) + int64(dAct), PRE: int64(act) + int64(dAct),
			ColRead: int64(col) + int64(dCol)}
		return Dynamic(more, w) >= Dynamic(base, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperTradeoffDirection: replacing K single-line accesses (K ACT
// pairs + K columns) with one group fetch (1 ACT pair + K columns) always
// saves energy under the 4:1 weighting — the mechanism behind Figure 13's
// savings; waste only appears when extra unused columns exceed 4 per saved
// pair.
func TestPaperTradeoffDirection(t *testing.T) {
	w := PaperWeights()
	k := int64(4)
	separate := dram.Counters{ACT: k, PRE: k, ColRead: k}
	grouped := dram.Counters{ACT: 1, PRE: 1, ColRead: k}
	if Dynamic(grouped, w) >= Dynamic(separate, w) {
		t.Error("group fetch must be cheaper when all lines are used")
	}
	// Break-even: 1 pair saved (4 units) buys at most 4 wasted columns.
	wasted := dram.Counters{ACT: 1, PRE: 1, ColRead: 1 + 4}
	single := dram.Counters{ACT: 2, PRE: 2, ColRead: 1}
	if Dynamic(wasted, w) != Dynamic(single, w) {
		t.Errorf("break-even mismatch: %g vs %g", Dynamic(wasted, w), Dynamic(single, w))
	}
}
