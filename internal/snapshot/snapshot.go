// Package snapshot defines the versioned binary container every simulation
// checkpoint is written in, plus the primitive encoder/decoder each stateful
// component's Snapshot/Restore seam builds on.
//
// A snapshot file is a single self-describing blob:
//
//	magic        8 bytes  "FBDSNAP\x00"
//	version      u32      format version (currently 1)
//	fingerprint  str      SHA-256 identity of (config, workload) — see Fingerprint
//	nsections    u32
//	section ×n   str tag, u64 payload length, payload bytes
//	crc          u32      IEEE CRC-32 over everything above
//
// All integers are little-endian; strings and byte slices are u64
// length-prefixed. The container fails closed: a reader refuses the whole
// file — before handing out a single section — on a bad magic, an
// unsupported version, a CRC mismatch, a truncated or over-long section
// table, or a fingerprint that does not match the machine being restored.
// Each refusal carries a typed sentinel error (ErrBadMagic, ErrVersion,
// ErrCorrupt, ErrFingerprint, ErrUnknownSection) so callers can map them to
// distinct user-facing outcomes (the fbdsim CLI exits with a dedicated code
// on fingerprint mismatch, mirroring the sweep journal's refusal UX).
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fbdsim/internal/config"
)

// Version is the current snapshot format version. A file written by any
// other version is refused, never partially interpreted. History:
//
//	1  initial container
//	2  memtrace gauges/epochs gained PRE and column-access counters
//	   (live power telemetry)
const Version = 2

// magic identifies a snapshot file. The trailing NUL keeps it from being a
// prefix of any text format.
const magic = "FBDSNAP\x00"

// Typed refusal errors. Every decode failure wraps exactly one of these so
// callers can distinguish "wrong machine" from "damaged file" from "written
// by a newer build".
var (
	// ErrBadMagic: the file is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion: the file is a snapshot, but written in a format version
	// this build does not understand.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrFingerprint: the snapshot belongs to a different (config,
	// workload) identity than the machine being restored.
	ErrFingerprint = errors.New("snapshot: fingerprint mismatch")
	// ErrCorrupt: truncation, CRC mismatch, or a structurally invalid
	// payload.
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrUnknownSection: the section table names a section this build does
	// not know how to restore (or omits one it requires).
	ErrUnknownSection = errors.New("snapshot: unknown section")
)

// Fingerprint returns the canonical identity hash of one simulation: a
// SHA-256 over the JSON encodings of the full configuration and the
// benchmark list. It is the same canonicalization as the sweep engine's
// result-cache key (sweep.Key delegates here), so a snapshot's identity and
// the sweep/job identity of the run that produced it always agree.
func Fingerprint(cfg config.Config, benchmarks []string) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Config and []string cannot fail to encode.
	_ = enc.Encode(cfg)
	_ = enc.Encode(benchmarks)
	return hex.EncodeToString(h.Sum(nil))
}

// Encoder accumulates one section's payload. Appends cannot fail, but a
// component may flag state it cannot serialize (Fail); the Writer surfaces
// the first such flag and refuses to emit a file.
type Encoder struct {
	buf []byte
	err error
}

// Fail marks the section as unserializable. Components call it when they
// encounter state a snapshot cannot represent (e.g. a test-only closure
// waiter); the Writer's Err then refuses the whole snapshot.
func (e *Encoder) Fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("snapshot: %s", fmt.Sprintf(format, args...))
	}
}

// Err returns the first Fail recorded on this section, if any.
func (e *Encoder) Err() error { return e.err }

// U64 appends v little-endian.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends v little-endian.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends v as an i64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends the IEEE-754 bits of v.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a u64 length prefix then the bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends s length-prefixed.
func (e *Encoder) String(s string) { e.Bytes([]byte(s)) }

// I64s appends a u64 count then each element.
func (e *Encoder) I64s(vs []int64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Decoder consumes one section's payload with a sticky error: the first
// failure (underflow, oversized length, caller-flagged structural mismatch)
// poisons every subsequent read, which then returns zero values. Callers
// run a whole Restore and check Err once at the end — a poisoned decoder
// can hand out garbage zeros, but the caller discards the half-restored
// machine, so no live state is ever left mutated by a corrupt file.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a raw payload (tests and fuzzing; production decoders
// come from Reader.Section).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky error (nil if every read so far succeeded).
func (d *Decoder) Err() error { return d.err }

// Fail poisons the decoder with a structural-mismatch error. Components
// call it when a decoded count disagrees with the constructed machine shape.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Done reports an error if decoding failed or left unconsumed bytes — a
// length mismatch between writer and reader is corruption, not padding.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes in section", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = fmt.Errorf("%w: truncated payload", ErrCorrupt)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a little-endian u64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an i64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an i64 and narrows it to int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads one byte; any value other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.err = fmt.Errorf("%w: invalid bool byte %d", ErrCorrupt, b[0])
		return false
	}
}

// F64 reads IEEE-754 bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Count reads an element count for a slice whose elements occupy at least
// elemBytes each, refusing counts the remaining payload cannot possibly
// hold — the guard that keeps a corrupt length from driving a huge
// allocation before the structural mismatch is noticed.
func (d *Decoder) Count(elemBytes int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64((len(d.buf)-d.off)/elemBytes) {
		d.err = fmt.Errorf("%w: count %d exceeds payload", ErrCorrupt, n)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice (aliasing the underlying buffer).
func (d *Decoder) Bytes() []byte {
	n := d.U64()
	if n > uint64(len(d.buf)-d.off) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: length %d exceeds payload", ErrCorrupt, n)
		}
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// I64s reads a counted i64 slice.
func (d *Decoder) I64s() []int64 {
	n := d.U64()
	if n > uint64(len(d.buf)-d.off)/8 {
		if d.err == nil {
			d.err = fmt.Errorf("%w: slice count %d exceeds payload", ErrCorrupt, n)
		}
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// Writer assembles a snapshot file: begin sections in order, then Finish.
type Writer struct {
	fingerprint string
	tags        []string
	sections    []*Encoder
}

// NewWriter starts a snapshot for the machine identified by fingerprint.
func NewWriter(fingerprint string) *Writer {
	return &Writer{fingerprint: fingerprint}
}

// Section begins a new named section and returns its payload encoder.
func (w *Writer) Section(tag string) *Encoder {
	e := &Encoder{}
	w.tags = append(w.tags, tag)
	w.sections = append(w.sections, e)
	return e
}

// Err returns the first serialization failure flagged on any section.
func (w *Writer) Err() error {
	for _, e := range w.sections {
		if e.err != nil {
			return e.err
		}
	}
	return nil
}

// Finish serializes the container: header, section table, payloads, CRC.
// Callers must check Err first; Finish does not re-check it.
func (w *Writer) Finish() []byte {
	var out []byte
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(w.fingerprint)))
	out = append(out, w.fingerprint...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(w.sections)))
	for i, e := range w.sections {
		out = binary.LittleEndian.AppendUint64(out, uint64(len(w.tags[i])))
		out = append(out, w.tags[i]...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(e.buf)))
		out = append(out, e.buf...)
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// Reader is a fully validated, parsed snapshot. Construction (Open)
// validates everything global — magic, version, CRC, fingerprint, section
// table bounds — so a Reader in hand means the file is structurally sound;
// only per-section payload decoding can still fail.
type Reader struct {
	tags     []string
	payloads [][]byte
	consumed []bool
}

// Open parses and validates data as a snapshot for the machine identified
// by fingerprint. It returns a typed error (see package errors) without
// yielding any payload when the file cannot be restored safely.
func Open(data []byte, fingerprint string) (*Reader, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	// CRC covers everything including the version field, so check it
	// before trusting any header value — except that a future version may
	// legitimately follow a different layout after the version field, so a
	// version mismatch outranks a CRC mismatch when both fail.
	if len(data) < len(magic)+4+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(data[len(magic):])
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	crcOK := binary.LittleEndian.Uint32(trailer) == crc32.ChecksumIEEE(body)
	if v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}
	if !crcOK {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}

	d := NewDecoder(body[len(magic)+4:])
	fp := d.String()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if fp != fingerprint {
		return nil, fmt.Errorf("%w: snapshot is for %.12s…, this machine is %.12s…", ErrFingerprint, fp, fingerprint)
	}
	nb := d.take(4)
	if nb == nil {
		return nil, d.Err()
	}
	n := binary.LittleEndian.Uint32(nb)
	r := &Reader{}
	for i := uint32(0); i < n; i++ {
		tag := d.String()
		payload := d.Bytes()
		if d.Err() != nil {
			return nil, d.Err()
		}
		r.tags = append(r.tags, tag)
		r.payloads = append(r.payloads, payload)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	r.consumed = make([]bool, len(r.tags))
	return r, nil
}

// Section returns the decoder for the named section, or an
// ErrUnknownSection-wrapped error naming the missing tag.
func (r *Reader) Section(tag string) (*Decoder, error) {
	for i, t := range r.tags {
		if t == tag && !r.consumed[i] {
			r.consumed[i] = true
			return NewDecoder(r.payloads[i]), nil
		}
	}
	return nil, fmt.Errorf("%w: required section %q missing", ErrUnknownSection, tag)
}

// Strict errors unless every section in the file was consumed: a snapshot
// carrying a section this build did not ask for was written by a machine
// with state this build cannot restore, so restoring the rest would be a
// silent partial restore.
func (r *Reader) Strict() error {
	for i, c := range r.consumed {
		if !c {
			return fmt.Errorf("%w: section %q not understood by this build", ErrUnknownSection, r.tags[i])
		}
	}
	return nil
}
