package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"fbdsim/internal/config"
)

// buildFile assembles a small but representative snapshot: two sections
// exercising every primitive type.
func buildFile(t *testing.T, fingerprint string) []byte {
	t.Helper()
	w := NewWriter(fingerprint)
	a := w.Section("alpha")
	a.U64(42)
	a.I64(-7)
	a.Int(13)
	a.Bool(true)
	a.Bool(false)
	a.F64(3.5)
	a.Bytes([]byte{1, 2, 3})
	a.String("hello")
	a.I64s([]int64{5, -5, 0})
	b := w.Section("beta")
	b.I64(99)
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	return w.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := buildFile(t, "fp")
	r, err := Open(data, "fp")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	a, err := r.Section("alpha")
	if err != nil {
		t.Fatalf("Section alpha: %v", err)
	}
	if got := a.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := a.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := a.Int(); got != 13 {
		t.Errorf("Int = %d", got)
	}
	if !a.Bool() || a.Bool() {
		t.Errorf("Bool pair wrong")
	}
	if got := a.F64(); got != 3.5 {
		t.Errorf("F64 = %v", got)
	}
	if got := a.Bytes(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Bytes = %v", got)
	}
	if got := a.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := a.I64s(); len(got) != 3 || got[1] != -5 {
		t.Errorf("I64s = %v", got)
	}
	if err := a.Done(); err != nil {
		t.Errorf("alpha Done: %v", err)
	}
	bsec, err := r.Section("beta")
	if err != nil {
		t.Fatalf("Section beta: %v", err)
	}
	if got := bsec.I64(); got != 99 {
		t.Errorf("beta I64 = %d", got)
	}
	if err := bsec.Done(); err != nil {
		t.Errorf("beta Done: %v", err)
	}
	if err := r.Strict(); err != nil {
		t.Errorf("Strict: %v", err)
	}
}

// typedError reports whether err wraps one of the package's sentinel errors
// — the fail-closed contract: every refusal is classifiable.
func typedError(err error) bool {
	for _, sentinel := range []error{ErrBadMagic, ErrVersion, ErrFingerprint, ErrCorrupt, ErrUnknownSection} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// TestOpenTruncated: every proper prefix of a valid file must be refused
// with a typed error — no panic, no Reader.
func TestOpenTruncated(t *testing.T) {
	data := buildFile(t, "fp")
	for n := 0; n < len(data); n++ {
		r, err := Open(data[:n], "fp")
		if err == nil {
			t.Fatalf("Open accepted a %d/%d-byte prefix", n, len(data))
		}
		if r != nil {
			t.Fatalf("Open returned a Reader alongside error %v", err)
		}
		if !typedError(err) {
			t.Fatalf("prefix %d: untyped error %v", n, err)
		}
	}
}

// TestOpenBitFlips: flipping any single byte must be refused with a typed
// error (magic damage → ErrBadMagic, version damage → ErrVersion, anything
// else → the CRC catches it as ErrCorrupt).
func TestOpenBitFlips(t *testing.T) {
	data := buildFile(t, "fp")
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		_, err := Open(mut, "fp")
		if err == nil {
			t.Fatalf("Open accepted a file with byte %d flipped", i)
		}
		if !typedError(err) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
		switch {
		case i < len(magic):
			if !errors.Is(err, ErrBadMagic) {
				t.Fatalf("magic byte %d flipped: got %v, want ErrBadMagic", i, err)
			}
		case i < len(magic)+4:
			if !errors.Is(err, ErrVersion) {
				t.Fatalf("version byte %d flipped: got %v, want ErrVersion (version outranks CRC)", i, err)
			}
		default:
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprint) {
				t.Fatalf("byte %d flipped: got %v, want ErrCorrupt", i, err)
			}
		}
	}
}

// TestOpenFlippedCRC: damaging only the trailing checksum is ErrCorrupt.
func TestOpenFlippedCRC(t *testing.T) {
	data := buildFile(t, "fp")
	data[len(data)-1] ^= 0xff
	if _, err := Open(data, "fp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped CRC byte: got %v, want ErrCorrupt", err)
	}
}

// TestOpenFutureVersion: a file stamped with a newer format version is
// refused with ErrVersion even though its CRC is valid.
func TestOpenFutureVersion(t *testing.T) {
	data := buildFile(t, "fp")
	body := append([]byte(nil), data[:len(data)-4]...)
	binary.LittleEndian.PutUint32(body[len(magic):], Version+1)
	data = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Open(data, "fp"); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestOpenFingerprintMismatch(t *testing.T) {
	data := buildFile(t, "fp-a")
	if _, err := Open(data, "fp-b"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("wrong fingerprint: got %v, want ErrFingerprint", err)
	}
}

func TestOpenNotASnapshot(t *testing.T) {
	for _, junk := range [][]byte{nil, []byte("x"), []byte("{\"json\":true}"), []byte("FBDSNAPX________________")} {
		if _, err := Open(junk, "fp"); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("junk %q: got %v, want ErrBadMagic/ErrCorrupt", junk, err)
		}
	}
}

// TestSectionUnknownAndStrict: asking for an absent section and leaving a
// present one unconsumed are both ErrUnknownSection — the former is a
// missing requirement, the latter a silent-partial-restore guard.
func TestSectionUnknownAndStrict(t *testing.T) {
	data := buildFile(t, "fp")
	r, err := Open(data, "fp")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := r.Section("gamma"); !errors.Is(err, ErrUnknownSection) {
		t.Fatalf("missing section: got %v, want ErrUnknownSection", err)
	}
	if _, err := r.Section("alpha"); err != nil {
		t.Fatalf("Section alpha: %v", err)
	}
	if err := r.Strict(); !errors.Is(err, ErrUnknownSection) {
		t.Fatalf("unconsumed section: got %v, want ErrUnknownSection", err)
	}
}

// TestDecoderStickyError: the first failure poisons every later read, and
// Done reports it.
func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	if got := d.U64(); got != 0 {
		t.Errorf("underflowing U64 = %d, want 0", got)
	}
	if d.Err() == nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("underflow not flagged: %v", d.Err())
	}
	if got := d.I64(); got != 0 {
		t.Errorf("read after poison = %d, want 0", got)
	}
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done after poison: %v", err)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.I64(1)
	e.I64(2)
	d := NewDecoder(e.buf)
	d.I64()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}
}

// TestDecoderCountGuard: a corrupt count larger than the remaining payload
// could hold is refused before any allocation.
func TestDecoderCountGuard(t *testing.T) {
	var e Encoder
	e.U64(1 << 40) // claimed element count
	d := NewDecoder(e.buf)
	if n := d.Count(16); n != 0 {
		t.Fatalf("Count accepted alloc-bomb length %d", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Count guard: %v", d.Err())
	}

	var e2 Encoder
	e2.U64(1 << 40)
	d2 := NewDecoder(e2.buf)
	if vs := d2.I64s(); vs != nil {
		t.Fatalf("I64s accepted alloc-bomb length")
	}
	if !errors.Is(d2.Err(), ErrCorrupt) {
		t.Fatalf("I64s guard: %v", d2.Err())
	}
}

func TestDecoderInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("bool byte 2: %v", d.Err())
	}
}

// TestEncoderFailRefusesFile: a component flagging unserializable state
// makes the writer refuse the whole snapshot.
func TestEncoderFailRefusesFile(t *testing.T) {
	w := NewWriter("fp")
	w.Section("ok").I64(1)
	w.Section("bad").Fail("closure waiter on line %#x", 0x40)
	if err := w.Err(); err == nil {
		t.Fatalf("Writer.Err nil after section Fail")
	} else if err.Error() != "snapshot: closure waiter on line 0x40" {
		t.Fatalf("unexpected Fail message %q", err)
	}
}

// TestFingerprintSensitivity: the identity hash moves with any config or
// workload change and is stable across calls.
func TestFingerprintSensitivity(t *testing.T) {
	cfg := config.Default()
	bench := []string{"swim", "applu"}
	a := Fingerprint(cfg, bench)
	if a != Fingerprint(cfg, bench) {
		t.Fatalf("fingerprint not deterministic")
	}
	cfg2 := cfg
	cfg2.Seed++
	if Fingerprint(cfg2, bench) == a {
		t.Errorf("seed change did not move the fingerprint")
	}
	if Fingerprint(cfg, []string{"applu", "swim"}) == a {
		t.Errorf("benchmark order change did not move the fingerprint")
	}
}

// FuzzOpen exercises the container parser with arbitrary bytes: it must
// never panic and every refusal must carry a typed sentinel.
func FuzzOpen(f *testing.F) {
	valid := NewWriter("fp")
	valid.Section("s").I64s([]int64{1, 2, 3})
	f.Add(valid.Finish())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(data, "fp")
		if err != nil {
			if r != nil {
				t.Fatalf("Reader returned alongside error %v", err)
			}
			if !typedError(err) {
				t.Fatalf("untyped refusal: %v", err)
			}
			return
		}
		// A structurally valid file: decoding any section must be panic-free
		// and Done must classify failures as corruption.
		for _, tag := range []string{"s", "other"} {
			d, serr := r.Section(tag)
			if serr != nil {
				continue
			}
			d.I64s()
			d.Bool()
			if derr := d.Done(); derr != nil && !errors.Is(derr, ErrCorrupt) {
				t.Fatalf("section decode error untyped: %v", derr)
			}
		}
	})
}
