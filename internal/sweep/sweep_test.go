package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/stats"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// fakeRun is a deterministic stand-in simulator: results are a pure
// function of (config, benchmarks), including a populated latency
// histogram, so bit-identity assertions exercise the full Results shape.
func fakeRun(_ context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
	h := &stats.Histogram{}
	mix := cfg.Seed*31 + cfg.MaxInsts + int64(len(benchmarks))*7
	for i := int64(1); i <= 64; i++ {
		h.Observe(clock.Time(mix*i%97_000 + 1))
	}
	ipc := make([]float64, len(benchmarks))
	committed := make([]int64, len(benchmarks))
	for i := range benchmarks {
		ipc[i] = float64(mix%11+int64(i)+1) / 4
		committed[i] = cfg.MaxInsts
	}
	return system.Results{
		Benchmarks:       append([]string(nil), benchmarks...),
		Cores:            len(benchmarks),
		IPC:              ipc,
		Committed:        committed,
		Cycles:           cfg.MaxInsts * 3,
		Reads:            mix % 5000,
		AvgReadLatencyNS: float64(mix%300) + 0.5,
		LatencyHist:      h,
	}, nil
}

func testSpec(nConfigs, nWorkloads int) Spec {
	var cfgs []NamedConfig
	for i := 0; i < nConfigs; i++ {
		c := config.Default()
		if i%2 == 1 {
			c = config.WithAMBPrefetch(c)
		}
		c.Seed = int64(i + 1)
		cfgs = append(cfgs, NamedConfig{Name: fmt.Sprintf("cfg-%d", i), Config: c})
	}
	var wls []workload.Workload
	for i := 0; i < nWorkloads; i++ {
		wls = append(wls, workload.Workload{
			Name:       fmt.Sprintf("wl-%d", i),
			Benchmarks: []string{"swim", "mgrid"}[:i%2+1],
		})
	}
	return Spec{
		Name:        "test",
		Configs:     cfgs,
		Workloads:   wls,
		MaxInsts:    10_000,
		WarmupInsts: 1_000,
		Parallel:    2,
	}
}

func TestSpecValidate(t *testing.T) {
	ok := testSpec(2, 2)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no configs", func(s *Spec) { s.Configs = nil }, "no configs"},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "no workloads"},
		{"negative parallel", func(s *Spec) { s.Parallel = -4 }, "negative parallelism"},
		{"negative budget", func(s *Spec) { s.MaxInsts = -1 }, "negative instruction budget"},
		{"dup config", func(s *Spec) { s.Configs[1].Name = s.Configs[0].Name }, "duplicate config"},
		{"dup workload", func(s *Spec) { s.Workloads[1].Name = s.Workloads[0].Name }, "duplicate workload"},
		{"dup seed", func(s *Spec) { s.Seeds = []int64{3, 3} }, "duplicate seed"},
		{"empty benchmarks", func(s *Spec) { s.Workloads[0].Benchmarks = nil }, "no benchmarks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec(2, 2)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandOrderAndOverrides(t *testing.T) {
	s := testSpec(2, 2)
	s.Seeds = []int64{5, 9}
	defs := s.Points()
	if len(defs) != 8 {
		t.Fatalf("expanded %d points, want 8", len(defs))
	}
	// Config-major, then workload, then seed; indices dense.
	want := []struct {
		cfg, wl string
		seed    int64
	}{
		{"cfg-0", "wl-0", 5}, {"cfg-0", "wl-0", 9},
		{"cfg-0", "wl-1", 5}, {"cfg-0", "wl-1", 9},
		{"cfg-1", "wl-0", 5}, {"cfg-1", "wl-0", 9},
		{"cfg-1", "wl-1", 5}, {"cfg-1", "wl-1", 9},
	}
	for i, d := range defs {
		if d.Index != i || d.Config != want[i].cfg || d.Workload != want[i].wl || d.Seed != want[i].seed {
			t.Fatalf("point %d = {%d %s %s %d}, want {%d %s %s %d}",
				i, d.Index, d.Config, d.Workload, d.Seed, i, want[i].cfg, want[i].wl, want[i].seed)
		}
		if d.Cfg.MaxInsts != 10_000 || d.Cfg.WarmupInsts != 1_000 {
			t.Fatalf("point %d budgets not overridden: %+v", i, d.Cfg)
		}
		if d.Cfg.CPU.Cores != len(d.Benchmarks) {
			t.Fatalf("point %d cores %d != %d benchmarks", i, d.Cfg.CPU.Cores, len(d.Benchmarks))
		}
	}
}

func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	a := testSpec(2, 2)
	b := a
	b.Name = "other"
	b.Parallel = 7
	b.Journal = "/tmp/x"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint changed with execution-only knobs")
	}
	c := a
	c.MaxInsts = 20_000
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint ignored a budget change")
	}
}

func TestRunStreamsAllPoints(t *testing.T) {
	s := testSpec(3, 2)
	eng, err := New(s, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := eng.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pts := Collect(ch)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if p.Err != "" {
			t.Fatalf("point %d failed: %s", i, p.Err)
		}
		if p.Results.LatencyHist == nil {
			t.Fatalf("point %d lost its histogram", i)
		}
		if p.Key == "" {
			t.Fatalf("point %d has no key", i)
		}
	}
	pr := eng.Progress()
	if pr.Total != 6 || pr.Completed != 6 || pr.Failed != 0 || pr.Replayed != 0 {
		t.Fatalf("progress %+v", pr)
	}
}

// TestSingleFlightAcrossPoints: two config dimension values with identical
// content must simulate once; the second point is a cache hit.
func TestSingleFlightAcrossPoints(t *testing.T) {
	c := config.Default()
	s := Spec{
		Name: "dedup",
		Configs: []NamedConfig{
			{Name: "a", Config: c},
			{Name: "b", Config: c}, // same content, different label
		},
		Workloads:   []workload.Workload{{Name: "w", Benchmarks: []string{"swim"}}},
		MaxInsts:    5_000,
		WarmupInsts: 0,
		Parallel:    1,
	}
	var runs atomic.Int64
	eng, err := New(s, Options{Run: func(ctx context.Context, cfg config.Config, b []string) (system.Results, error) {
		runs.Add(1)
		return fakeRun(ctx, cfg, b)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := eng.Start(context.Background())
	pts := Collect(ch)
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if runs.Load() != 1 {
		t.Fatalf("simulated %d times, want 1", runs.Load())
	}
	if !reflect.DeepEqual(pts[0].Results, pts[1].Results) {
		t.Fatal("deduped points differ")
	}
	if eng.Progress().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", eng.Progress().CacheHits)
	}
}

func TestParallelBound(t *testing.T) {
	s := testSpec(4, 2)
	s.Parallel = 2
	var cur, peak atomic.Int64
	eng, err := New(s, Options{Run: func(ctx context.Context, cfg config.Config, b []string) (system.Results, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return fakeRun(ctx, cfg, b)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := eng.Start(context.Background())
	Collect(ch)
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds Parallel=2", got)
	}
}

func TestErrorPointsEmittedNotJournaled(t *testing.T) {
	dir := t.TempDir()
	s := testSpec(1, 2)
	s.Journal = filepath.Join(dir, "j.ndjson")
	boom := errors.New("bank exploded")
	eng, err := New(s, Options{Run: func(ctx context.Context, cfg config.Config, b []string) (system.Results, error) {
		if len(b) == 2 { // wl-1 has two benchmarks
			return system.Results{}, boom
		}
		return fakeRun(ctx, cfg, b)
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := eng.Start(context.Background())
	pts := Collect(ch)
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	var failed int
	for _, p := range pts {
		if p.Err != "" {
			failed++
			if !strings.Contains(p.Err, "bank exploded") {
				t.Fatalf("wrong error: %s", p.Err)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed points, want 1", failed)
	}
	if pr := eng.Progress(); pr.Failed != 1 || pr.Completed != 1 {
		t.Fatalf("progress %+v", pr)
	}

	// The failed point must not be in the journal: a resumed sweep
	// re-attempts it.
	eng2, err := New(s, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := eng2.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pts2 := Collect(ch2)
	for _, p := range pts2 {
		if p.Err != "" {
			t.Fatalf("resumed point %d still failing: %s", p.Index, p.Err)
		}
	}
	if pr := eng2.Progress(); pr.Replayed != 1 {
		t.Fatalf("resumed progress %+v, want Replayed=1", pr)
	}
}

// TestKillAndResumeBitIdentical is the resume property test: a sweep
// killed after ≥1 completed shard and resumed from its journal yields a
// merged point set reflect.DeepEqual to an uninterrupted run of the same
// spec.
func TestKillAndResumeBitIdentical(t *testing.T) {
	base := testSpec(3, 2) // 6 points
	base.Seeds = []int64{11, 22}
	base.Parallel = 2 // 12 points total

	// Reference: uninterrupted, no journal.
	ref, err := New(base, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	refCh, _ := ref.Start(context.Background())
	want := Collect(refCh)
	if len(want) != 12 {
		t.Fatalf("reference run produced %d points", len(want))
	}

	for _, killAfter := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("killAfter=%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			s := base
			s.Journal = filepath.Join(dir, "sweep.ndjson")

			// First run: cancel the context once killAfter points have
			// completed — the moral equivalent of kill -9 mid-sweep
			// (the journal additionally tolerates torn writes, covered
			// by TestJournalTruncatedTail).
			ctx, cancel := context.WithCancel(context.Background())
			var done atomic.Int64
			killed, err := New(s, Options{Run: func(c context.Context, cfg config.Config, b []string) (system.Results, error) {
				res, err := fakeRun(c, cfg, b)
				if done.Add(1) >= int64(killAfter) {
					cancel()
				}
				return res, err
			}})
			if err != nil {
				t.Fatal(err)
			}
			ch, err := killed.Start(ctx)
			if err != nil {
				t.Fatal(err)
			}
			partial := Collect(ch)
			cancel()
			if len(partial) == 0 {
				t.Fatal("interrupted run completed nothing — cannot exercise resume")
			}
			if len(partial) == 12 {
				t.Skip("interrupted run finished before cancellation took effect")
			}

			// Resume: same spec, same journal, fresh engine.
			resumed, err := New(s, Options{Run: fakeRun})
			if err != nil {
				t.Fatal(err)
			}
			ch2, err := resumed.Start(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := Collect(ch2)

			if pr := resumed.Progress(); pr.Replayed < 1 {
				t.Fatalf("resume replayed nothing: %+v", pr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed sweep diverged from uninterrupted run\ngot  %d points\nwant %d points", len(got), len(want))
			}
		})
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := testSpec(1, 1)
	s.Journal = filepath.Join(dir, "j.ndjson")
	eng, err := New(s, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := eng.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	Collect(ch)

	other := s
	other.MaxInsts = 99_999 // different grid identity, same journal path
	eng2, err := New(other, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Start(context.Background()); err == nil || !strings.Contains(err.Error(), "different sweep spec") {
		t.Fatalf("mismatched journal accepted: %v", err)
	}
}

// TestJournalTruncatedTail: a torn final record (the classic kill -9
// mid-write artifact) is discarded; everything before it replays.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := testSpec(2, 2)
	s.Journal = filepath.Join(dir, "j.ndjson")
	eng, err := New(s, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := eng.Start(context.Background())
	want := Collect(ch)

	// Tear the journal: chop the last record in half.
	b, err := os.ReadFile(s.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Journal, b[:len(b)-37], 0o644); err != nil {
		t.Fatal(err)
	}

	eng2, err := New(s, Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := eng2.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(ch2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("torn-tail resume diverged from original run")
	}
	pr := eng2.Progress()
	if pr.Replayed != 3 || pr.Completed != 4 {
		t.Fatalf("progress %+v, want 3 replayed + 1 recomputed", pr)
	}
}

func TestStartTwiceRejected(t *testing.T) {
	eng, err := New(testSpec(1, 1), Options{Run: fakeRun})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := eng.Start(context.Background())
	Collect(ch)
	if _, err := eng.Start(context.Background()); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestCancelBeforeStartEmitsNothingFresh(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int64
	eng, err := New(testSpec(2, 2), Options{Run: func(c context.Context, cfg config.Config, b []string) (system.Results, error) {
		runs.Add(1)
		return system.Results{}, c.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := eng.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pts := Collect(ch); len(pts) != 0 {
		t.Fatalf("cancelled sweep emitted %d points", len(pts))
	}
}

// TestCanonicalizeIsIdentityOnRealRun pins the whole-pipeline property the
// resume guarantee needs: for a real (untraced) simulation, Canonicalize
// is the identity — nothing in Results is lossy under JSON.
func TestCanonicalizeIsIdentityOnRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	cfg := config.Default()
	cfg.MaxInsts = 5_000
	cfg.WarmupInsts = 1_000
	cfg.CPU.Cores = 1
	res, err := system.RunWorkloadContext(context.Background(), cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonicalize(res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, canon) {
		t.Fatal("canonicalization is not the identity on a real untraced run")
	}
}

// Concurrency smoke: many goroutines share one cache through Do.
func TestCacheConcurrentDo(t *testing.T) {
	c := NewCache(0)
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do(context.Background(), "k", func() (system.Results, error) {
				runs.Add(1)
				return system.Results{Cores: 4}, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
}
