package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// runJournaled executes spec against fakeRun with its journal at path and
// returns the collected points.
func runJournaled(t *testing.T, spec Spec, path string) []Point {
	t.Helper()
	spec.Journal = path
	eng, err := New(spec, Options{Run: fakeRun})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ch, err := eng.Start(context.Background())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return Collect(ch)
}

// A writer that dies mid-record after earlier fsynced appends leaves a
// torn tail behind a valid prefix. Reopening must replay the prefix,
// truncate the tear, and a resumed sweep must produce results identical
// to an unbroken run.
func TestJournalTornTailAfterFsync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	spec := testSpec(2, 2) // 4 points

	ref := runJournaled(t, spec, filepath.Join(dir, "ref.ndjson"))
	full := runJournaled(t, spec, path)
	if !reflect.DeepEqual(ref, full) {
		t.Fatal("journaled run differs from reference before any damage")
	}

	// Simulate the crash: the (closed, i.e. lock-free) journal gains a
	// partial record — valid JSON prefix, no terminating newline — as if
	// the writer died inside writeLine after its previous fsync landed.
	damaged, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open for damage: %v", err)
	}
	if _, err := damaged.WriteString(`{"index":99,"config":"cfg-`); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	damaged.Close()
	tornSize := fileSize(t, path)

	// Reopen: every fsynced point replays, the tear is truncated away.
	spec.Journal = path
	j, pts, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err != nil {
		t.Fatalf("OpenJournal on torn journal: %v", err)
	}
	if len(pts) != len(ref) {
		t.Fatalf("replayed %d points, want %d", len(pts), len(ref))
	}
	j.Close()
	if got := fileSize(t, path); got >= tornSize {
		t.Fatalf("torn tail not truncated: size %d, want < %d", got, tornSize)
	}

	// And the resumed sweep is bit-identical to the reference.
	resumed := runJournaled(t, spec, path)
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatal("resumed sweep differs from unbroken reference")
	}
}

// A complete corrupt line (newline-terminated garbage) buries any valid
// records behind it: replay keeps the prefix only and truncates from the
// corruption on, never resurrecting the suffix.
func TestJournalCorruptRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	spec := testSpec(2, 2)
	ref := runJournaled(t, spec, path)

	// Split the file after the header + first two point lines, splice in
	// a corrupt record, and re-append the remaining valid lines.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := splitLines(raw)
	if len(lines) != len(ref)+1 { // header + one line per point
		t.Fatalf("journal has %d lines, want %d", len(lines), len(ref)+1)
	}
	var rebuilt []byte
	for _, l := range lines[:3] {
		rebuilt = append(rebuilt, l...)
	}
	rebuilt = append(rebuilt, []byte("{\"index\": not-json}\n")...)
	for _, l := range lines[3:] {
		rebuilt = append(rebuilt, l...)
	}
	if err := os.WriteFile(path, rebuilt, 0o644); err != nil {
		t.Fatalf("rewrite journal: %v", err)
	}

	j, pts, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	j.Close()
	if len(pts) != 2 {
		t.Fatalf("replayed %d points, want only the 2 before the corruption", len(pts))
	}
	// The corrupt record and the valid-looking suffix behind it are gone.
	var wantSize int64
	for _, l := range lines[:3] {
		wantSize += int64(len(l))
	}
	if got := fileSize(t, path); got != wantSize {
		t.Fatalf("journal size %d after truncation, want %d", got, wantSize)
	}

	resumed := runJournaled(t, spec, path)
	if !reflect.DeepEqual(ref, resumed) {
		t.Fatal("resumed sweep differs from reference after corruption recovery")
	}
}

// Two concurrent openers of one journal would interleave appends and
// corrupt the replay stream; the second opener must fail closed with the
// typed ErrLocked sentinel while the first holds the file.
func TestJournalSecondOpenerFailsClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	spec := testSpec(1, 1)

	j1, _, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	defer j1.Close()

	j2, _, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err == nil {
		j2.Close()
		t.Fatal("second opener succeeded; want ErrLocked")
	}
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second open error = %v, want errors.Is(_, ErrLocked)", err)
	}

	// The refused opener must not have touched the file: the header the
	// first opener wrote is intact and usable after release.
	sizeBefore := fileSize(t, path)
	j1.Close()
	j3, pts, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err != nil {
		t.Fatalf("reopen after release: %v", err)
	}
	defer j3.Close()
	if len(pts) != 0 {
		t.Fatalf("unexpected replayed points: %d", len(pts))
	}
	if got := fileSize(t, path); got != sizeBefore {
		t.Fatalf("journal size changed %d -> %d across a refused open", sizeBefore, got)
	}
}

// The lock dies with its holder: a journal left behind by a finished (or
// killed) process opens cleanly.
func TestJournalLockReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	spec := testSpec(1, 1)
	_ = runJournaled(t, spec, path) // opens, appends, closes

	j, pts, err := OpenJournal(path, spec.Name, spec.Fingerprint())
	if err != nil {
		t.Fatalf("reopen finished journal: %v", err)
	}
	defer j.Close()
	if len(pts) != 1 {
		t.Fatalf("replayed %d points, want 1", len(pts))
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return fi.Size()
}

// splitLines splits raw into newline-terminated chunks (the final chunk
// keeps its newline; raw is assumed newline-terminated).
func splitLines(raw []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range raw {
		if b == '\n' {
			lines = append(lines, raw[start:i+1])
			start = i + 1
		}
	}
	return lines
}
