//go:build unix

package sweep

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on the open journal file,
// failing immediately (ErrLocked) when another process holds it. flock
// locks belong to the open file description, so they vanish with the
// holder: a SIGKILLed writer leaves the journal resumable, not wedged.
func lockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EWOULDBLOCK {
			return ErrLocked
		}
		return err
	}
}
