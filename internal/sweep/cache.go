package sweep

import (
	"container/list"
	"context"
	"sync"

	"fbdsim/internal/config"
	"fbdsim/internal/snapshot"
	"fbdsim/internal/system"
)

// Key returns the canonical cache key of one simulation request: a SHA-256
// hash over the JSON encoding of the full configuration (which embeds seed
// and instruction budgets) and the benchmark list. Two requests that would
// produce identical Results hash identically; any differing knob — timing,
// geometry, seed, budget, benchmark order — produces a different key.
//
// It is the shared identity across the sweep engine, the exp.Runner memo
// cache and the simserver job/result API, and doubles as the snapshot
// fingerprint (the canonicalization lives in internal/snapshot so the
// system layer can use it without an import cycle).
func Key(cfg config.Config, benchmarks []string) string {
	return snapshot.Fingerprint(cfg, benchmarks)
}

// Cache is a goroutine-safe LRU cache of completed simulation results with
// single-flight execution: concurrent Do calls for the same key run the
// simulation once and share the outcome. A max of 0 (or negative) means
// unbounded — the exp.Runner memoization mode; the serving path bounds it.
type Cache struct {
	mu     sync.Mutex
	max    int
	order  *list.List // front = most recently used
	items  map[string]*list.Element
	flight map[string]*flight
}

type cacheItem struct {
	key string
	res system.Results
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	res  system.Results
	err  error
}

// NewCache builds a Cache holding at most max results (max <= 0: unbounded).
func NewCache(max int) *Cache {
	return &Cache{
		max:    max,
		order:  list.New(),
		items:  make(map[string]*list.Element),
		flight: make(map[string]*flight),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (system.Results, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(key)
}

func (c *Cache) getLocked(key string) (system.Results, bool) {
	el, ok := c.items[key]
	if !ok {
		return system.Results{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// Put stores res under key, evicting the least recently used entry when the
// cache is bounded and full.
func (c *Cache) Put(key string, res system.Results) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, res)
}

func (c *Cache) putLocked(key string, res system.Results) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, res: res})
	for c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Do returns the result for key, computing it with fn on a miss. Concurrent
// calls for the same key coalesce onto one fn execution. hit reports whether
// the result came from the cache or an in-flight computation rather than
// this call's own fn.
//
// Errors are never cached: a failed or cancelled computation is forgotten,
// so a later Do with the same key re-runs fn instead of replaying the error
// (waiters already coalesced onto the failed flight do observe its error).
// A waiter whose own ctx expires first returns ctx.Err() without waiting
// further.
func (c *Cache) Do(ctx context.Context, key string, fn func() (system.Results, error)) (res system.Results, hit bool, err error) {
	c.mu.Lock()
	if res, ok := c.getLocked(key); ok {
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.flight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return system.Results{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.flight, key)
	if f.err == nil {
		c.putLocked(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, false, f.err
}
