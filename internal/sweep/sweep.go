// Package sweep is the parameter-sweep engine: it expands a declarative
// grid specification — configurations × workloads × seeds — into
// independently executable shards (one per grid point), runs them on a
// bounded worker pool behind a single-flight LRU result cache, streams
// per-point results as they complete, and checkpoints completed points to
// an append-only NDJSON journal so that a killed sweep resumes without
// recomputing anything it already finished.
//
// Every figure of the paper's evaluation is a sweep (internal/exp builds
// its figures on this engine), and the simulation service exposes the same
// engine over HTTP (POST /v1/sweeps in internal/simserver).
//
// Resume guarantee: results are canonicalized through their JSON encoding
// before they are journaled or emitted, and stats.Histogram round-trips
// losslessly, so a sweep interrupted after any number of completed shards
// and resumed from its journal produces a merged result set that is
// bit-identical (reflect.DeepEqual) to an uninterrupted run.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fbdsim/internal/config"
	"fbdsim/internal/fidelity"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// RunFunc executes one simulation. The default is the real simulator
// (system.RunWorkloadContext); tests and embedding servers substitute fakes
// or instrumented wrappers.
type RunFunc func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error)

// NamedConfig is one configuration dimension value of a sweep grid.
type NamedConfig struct {
	Name   string        `json:"name"`
	Config config.Config `json:"config"`
	// Fidelity overrides the spec-level tier for this config's points
	// ("" inherits; see Spec.Fidelity). A grid can triage most configs
	// analytically and run the interesting one cycle-accurately.
	Fidelity string `json:"fidelity,omitempty"`
}

// Spec declares a sweep grid. The grid is the cross product
// Configs × Workloads × Seeds; each grid point is one shard, simulated
// independently. Spec is pure data — execution knobs that do not affect
// the results (Parallel, Journal) are excluded from the spec fingerprint
// that guards journal resumption.
type Spec struct {
	// Name labels the sweep (progress displays, journal header).
	Name string `json:"name"`
	// Configs is the configuration dimension (at least one entry).
	Configs []NamedConfig `json:"configs"`
	// Workloads is the workload dimension (at least one entry).
	Workloads []workload.Workload `json:"workloads"`
	// Seeds is the seed dimension. Empty means one pass per (config,
	// workload) keeping each config's own Seed; a non-zero entry
	// overrides cfg.Seed for that point.
	Seeds []int64 `json:"seeds,omitempty"`
	// MaxInsts > 0 overrides every config's instruction budget.
	MaxInsts int64 `json:"max_insts,omitempty"`
	// WarmupInsts >= 0 overrides every config's warmup budget (0 is a
	// valid override: no warmup); negative keeps each config's value.
	WarmupInsts int64 `json:"warmup_insts,omitempty"`
	// Fidelity selects the simulation tier of every point:
	// "cycle-accurate" (or "", the backward-compatible default),
	// "sampled" or "analytic". Per-config Fidelity overrides it
	// point-wise. The tier is part of the result identity — estimate
	// points cache and journal under tier-tagged keys, so they never
	// masquerade as full-detail results.
	Fidelity string `json:"fidelity,omitempty"`
	// Parallel bounds concurrently running shards (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// Journal is the checkpoint file path; empty disables checkpointing.
	Journal string `json:"-"`
	// ShareWarmup warms each group of points with an identical warmup
	// prefix (see WarmupKey) once: the group's first point snapshots the
	// machine at the warmup boundary and the rest restore it instead of
	// re-simulating the prefix. Results are bit-identical with or without
	// sharing, so this is an execution knob, excluded from the spec
	// fingerprint like Parallel and Journal.
	ShareWarmup bool `json:"-"`
}

// Validate reports whether the spec describes a runnable grid.
func (s Spec) Validate() error {
	if len(s.Configs) == 0 {
		return errors.New("sweep: spec has no configs")
	}
	if len(s.Workloads) == 0 {
		return errors.New("sweep: spec has no workloads")
	}
	if s.Parallel < 0 {
		return fmt.Errorf("sweep: negative parallelism %d", s.Parallel)
	}
	if s.MaxInsts < 0 {
		return fmt.Errorf("sweep: negative instruction budget %d", s.MaxInsts)
	}
	seen := map[string]bool{}
	for _, nc := range s.Configs {
		if seen[nc.Name] {
			return fmt.Errorf("sweep: duplicate config name %q", nc.Name)
		}
		seen[nc.Name] = true
	}
	seen = map[string]bool{}
	for _, w := range s.Workloads {
		if len(w.Benchmarks) == 0 {
			return fmt.Errorf("sweep: workload %q has no benchmarks", w.Name)
		}
		if seen[w.Name] {
			return fmt.Errorf("sweep: duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
	seenSeed := map[int64]bool{}
	for _, s := range s.Seeds {
		if seenSeed[s] {
			return fmt.Errorf("sweep: duplicate seed %d", s)
		}
		seenSeed[s] = true
	}
	if _, err := fidelity.Parse(s.Fidelity); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	for _, nc := range s.Configs {
		if _, err := fidelity.Parse(nc.Fidelity); err != nil {
			return fmt.Errorf("sweep: config %q: %w", nc.Name, err)
		}
	}
	return nil
}

// pointFidelity resolves the effective tier of one grid point: the
// config-level override, else the spec level, normalized so that the
// cycle-accurate default is always the empty string (stable JSON, stable
// fingerprints).
func (s Spec) pointFidelity(nc NamedConfig) string {
	f := nc.Fidelity
	if f == "" {
		f = s.Fidelity
	}
	t, err := fidelity.Parse(f)
	if err != nil || t == fidelity.CycleAccurate {
		return ""
	}
	return string(t)
}

// pointConfig resolves the effective configuration of one grid point: the
// named config with the spec's budget overrides and the point's seed.
func (s Spec) pointConfig(nc NamedConfig, seed int64) config.Config {
	cfg := nc.Config
	if seed != 0 {
		cfg.Seed = seed
	}
	if s.MaxInsts > 0 {
		cfg.MaxInsts = s.MaxInsts
	}
	if s.WarmupInsts >= 0 {
		cfg.WarmupInsts = s.WarmupInsts
	}
	return cfg
}

// Fingerprint returns the spec's identity hash: everything that affects
// the produced results (configs, workloads, seeds, budgets) and nothing
// that does not (name, parallelism, journal path). A journal written under
// one fingerprint refuses to resume a spec with another.
func (s Spec) Fingerprint() string {
	type identity struct {
		Configs     []NamedConfig       `json:"configs"`
		Workloads   []workload.Workload `json:"workloads"`
		Seeds       []int64             `json:"seeds"`
		MaxInsts    int64               `json:"max_insts"`
		WarmupInsts int64               `json:"warmup_insts"`
		// omitempty keeps every pre-fidelity journal fingerprint valid:
		// a cycle-accurate spec hashes exactly as it always did.
		Fidelity string `json:"fidelity,omitempty"`
	}
	fid := ""
	if t, err := fidelity.Parse(s.Fidelity); err == nil && t != fidelity.CycleAccurate {
		fid = string(t)
	}
	b, _ := json.Marshal(identity{s.Configs, s.Workloads, s.Seeds, s.MaxInsts, s.WarmupInsts, fid})
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Point is one completed grid point. Point carries only deterministic
// fields — no wall times, cache provenance or attempt counts — so the
// point stream of a resumed sweep is bit-identical to an uninterrupted
// one.
type Point struct {
	// Index is the point's position in expansion order
	// (config-major, then workload, then seed).
	Index int `json:"index"`
	// Config and Workload name the grid coordinates; Seed is the
	// effective trace seed of the run.
	Config   string `json:"config"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// Key is the canonical result-cache key of the point's resolved
	// configuration (see Key); tier-tagged for estimate points.
	Key string `json:"key"`
	// Fidelity is the tier the point ran at ("" = cycle-accurate, the
	// only value pre-fidelity journals contain).
	Fidelity string `json:"fidelity,omitempty"`
	// Results holds the simulation output (zero when Err is set).
	// Sweep results never carry a memtrace summary: Results.Trace is
	// stripped during canonicalization.
	Results system.Results `json:"results"`
	// Err is the failure message of a deterministically failing point
	// ("" on success). Failed points are not journaled; a resumed sweep
	// re-runs them.
	Err string `json:"err,omitempty"`
}

// PointDef is one expanded, not-yet-executed grid point: the resolved
// configuration and workload of one shard, addressed by Index in
// expansion order and by the content hash Key. PointDef is the unit of
// distributed execution — a cluster coordinator leases batches of
// PointDefs to workers, and the JSON encoding is the wire format — so
// it carries everything a remote process needs to run the shard without
// the enclosing Spec.
type PointDef struct {
	Index      int           `json:"index"`
	Config     string        `json:"config"`
	Workload   string        `json:"workload"`
	Seed       int64         `json:"seed"`
	Cfg        config.Config `json:"cfg"`
	Benchmarks []string      `json:"benchmarks"`
	Key        string        `json:"key"`
	Fidelity   string        `json:"fidelity,omitempty"`
}

// Points enumerates the grid in deterministic order (config-major, then
// workload, then seed) — the same order every time for the same spec, so
// Index is a stable address across processes and resumes.
func (s Spec) Points() []PointDef {
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0} // sentinel: keep each config's own seed
	}
	defs := make([]PointDef, 0, len(s.Configs)*len(s.Workloads)*len(seeds))
	for _, nc := range s.Configs {
		for _, w := range s.Workloads {
			for _, seed := range seeds {
				cfg := s.pointConfig(nc, seed)
				cfg.CPU.Cores = len(w.Benchmarks)
				fid := s.pointFidelity(nc)
				defs = append(defs, PointDef{
					Index:      len(defs),
					Config:     nc.Name,
					Workload:   w.Name,
					Seed:       cfg.Seed,
					Cfg:        cfg,
					Benchmarks: w.Benchmarks,
					Key:        fidelity.Key(fidelity.Tier(fid), cfg, w.Benchmarks),
					Fidelity:   fid,
				})
			}
		}
	}
	return defs
}

// Progress is a point-in-time snapshot of a sweep's execution.
type Progress struct {
	// Total is the grid size; Completed counts successful points
	// (including replayed ones), Failed the points that errored.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Replayed counts points restored from the journal without
	// simulating; CacheHits counts fresh points served by the result
	// cache or coalesced onto an in-flight identical run.
	Replayed  int `json:"replayed"`
	CacheHits int `json:"cache_hits"`
	// Warmups counts warmup phases actually simulated. Without warmup
	// sharing it matches the number of fresh runs with a warmup budget;
	// with ShareWarmup it drops to one per warmup group.
	Warmups int `json:"warmups"`
}

// TierRunFunc executes one estimate-tier simulation (tier is "sampled" or
// "analytic"). The default is fidelity.Run.
type TierRunFunc func(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error)

// Options carries the execution dependencies a Spec deliberately excludes.
type Options struct {
	// Run overrides the simulation function (default: the real
	// simulator, system.RunWorkloadContext).
	Run RunFunc
	// RunTier overrides the executor of sampled/analytic points
	// (default: fidelity.Run). Cycle-accurate points always go through
	// Run.
	RunTier TierRunFunc
	// Cache is a shared single-flight result cache; nil builds a
	// private unbounded one. Sharing the serving cache lets sweep
	// points and job submissions deduplicate against each other.
	Cache *Cache
}

// Engine executes one sweep spec. Build with New, start with Start, watch
// with Progress.
type Engine struct {
	spec    Spec
	run     RunFunc
	runTier TierRunFunc
	cache   *Cache
	defs    []PointDef

	completed atomic.Int64
	failed    atomic.Int64
	replayed  atomic.Int64
	cacheHits atomic.Int64
	warmups   atomic.Int64

	warmMu     sync.Mutex
	warmGroups map[string]*warmupGroup

	started atomic.Bool
}

// New validates and expands spec into an executable engine.
func New(spec Spec, opts Options) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	run := opts.Run
	if run == nil {
		run = system.RunWorkloadContext
	}
	runTier := opts.RunTier
	if runTier == nil {
		runTier = func(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error) {
			return fidelity.Run(ctx, fidelity.Tier(tier), cfg, benchmarks)
		}
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache(0)
	}
	return &Engine{
		spec:       spec,
		run:        run,
		runTier:    runTier,
		cache:      cache,
		defs:       spec.Points(),
		warmGroups: make(map[string]*warmupGroup),
	}, nil
}

// Total returns the grid size.
func (e *Engine) Total() int { return len(e.defs) }

// Progress returns the current execution counters.
func (e *Engine) Progress() Progress {
	return Progress{
		Total:     len(e.defs),
		Completed: int(e.completed.Load()),
		Failed:    int(e.failed.Load()),
		Replayed:  int(e.replayed.Load()),
		CacheHits: int(e.cacheHits.Load()),
		Warmups:   int(e.warmups.Load()),
	}
}

// Start launches the sweep and returns the point stream. Points restored
// from the journal are emitted first (in index order), then fresh points
// in completion order; the channel closes once every shard has been
// executed, failed or skipped because ctx was cancelled. Start may be
// called once per Engine.
//
// Cancelling ctx stops dispatch and cancels in-flight simulations through
// the simulator's context plumbing; cancelled points are not emitted and
// not journaled, so a later run resumes them cleanly.
func (e *Engine) Start(ctx context.Context) (<-chan Point, error) {
	if e.started.Swap(true) {
		return nil, errors.New("sweep: engine already started")
	}

	var (
		j        *Journal
		replayed map[int]Point
		err      error
	)
	if e.spec.Journal != "" {
		j, replayed, err = OpenJournal(e.spec.Journal, e.spec.Name, e.spec.Fingerprint())
		if err != nil {
			return nil, err
		}
	}
	// Keep only replayed points whose key still matches its grid slot —
	// a defense in depth behind the fingerprint check.
	byIndex := make(map[int]Point, len(replayed))
	for _, def := range e.defs {
		if p, ok := replayed[def.Index]; ok && p.Key == def.Key {
			byIndex[def.Index] = p
		}
	}

	parallel := e.spec.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	// Buffered to the grid size: workers never block on a slow or
	// abandoned consumer, and an abandoned sweep still drains, journals
	// and terminates.
	out := make(chan Point, len(e.defs))

	go func() {
		defer close(out)
		if j != nil {
			defer j.Close()
		}

		// Replay journaled points first, in index order, and seed the
		// result cache so dependent reads (figure aggregation, job
		// submissions) hit instead of re-simulating.
		indices := make([]int, 0, len(byIndex))
		for idx := range byIndex {
			indices = append(indices, idx)
		}
		sort.Ints(indices)
		for _, idx := range indices {
			p := byIndex[idx]
			e.cache.Put(p.Key, p.Results)
			e.replayed.Add(1)
			e.completed.Add(1)
			out <- p
		}

		work := make(chan PointDef)
		var wg sync.WaitGroup
		for i := 0; i < parallel; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for def := range work {
					e.runPoint(ctx, def, j, out)
				}
			}()
		}
		for _, def := range e.defs {
			if _, done := byIndex[def.Index]; done {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			work <- def
		}
		close(work)
		wg.Wait()
	}()
	return out, nil
}

// runPoint executes one shard: single-flight cached simulation,
// canonicalization, journaling, emission.
func (e *Engine) runPoint(ctx context.Context, def PointDef, j *Journal, out chan<- Point) {
	res, hit, err := e.cache.Do(ctx, def.Key, func() (system.Results, error) {
		return e.runShard(ctx, def)
	})
	p := Point{
		Index:    def.Index,
		Config:   def.Config,
		Workload: def.Workload,
		Seed:     def.Seed,
		Key:      def.Key,
		Fidelity: def.Fidelity,
	}
	switch {
	case err == nil:
		canon, cerr := Canonicalize(res)
		if cerr != nil {
			e.failed.Add(1)
			p.Err = cerr.Error()
			out <- p
			return
		}
		p.Results = canon
		if hit {
			e.cacheHits.Add(1)
		}
		if j != nil {
			j.Append(p)
		}
		e.completed.Add(1)
		out <- p
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Shutdown, not a point failure: emit nothing, journal nothing;
		// a resumed sweep re-runs the point.
	default:
		e.failed.Add(1)
		p.Err = err.Error()
		out <- p
	}
}

// Run expands and executes spec with default options, returning the point
// stream (see Engine.Start). It is the one-call library API:
//
//	ch, err := sweep.Run(ctx, spec)
//	for p := range ch { ... }
func Run(ctx context.Context, spec Spec) (<-chan Point, error) {
	eng, err := New(spec, Options{})
	if err != nil {
		return nil, err
	}
	return eng.Start(ctx)
}

// Canonicalize round-trips res through its JSON encoding — the journal's
// storage format — and strips the memtrace summary (trace artifacts belong
// to the job API, not to sweep points). Because every Results field
// (including stats.Histogram) marshals losslessly, canonicalization is the
// identity on trace-free results; applying it to every emitted point makes
// fresh and journal-replayed points byte-for-byte interchangeable.
func Canonicalize(res system.Results) (system.Results, error) {
	res.Trace = nil
	b, err := json.Marshal(res)
	if err != nil {
		return system.Results{}, err
	}
	var out system.Results
	if err := json.Unmarshal(b, &out); err != nil {
		return system.Results{}, err
	}
	return out, nil
}

// Collect drains ch and returns every point sorted by Index — the merged
// result set of a sweep, in grid order regardless of completion order.
func Collect(ch <-chan Point) []Point {
	var pts []Point
	for p := range ch {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, k int) bool { return pts[i].Index < pts[k].Index })
	return pts
}
