package sweep

import (
	"encoding/json"
	"io"
)

// WriteNDJSON streams the point channel to w as newline-delimited JSON,
// one Point per line, in completion order, flushing after every point when
// w supports it (e.g. an http.Flusher-backed writer wrapped in a flushing
// io.Writer). It drains ch fully and returns the first write error, if
// any; on error the remaining points are still drained so the producing
// engine never blocks.
func WriteNDJSON(w io.Writer, ch <-chan Point) error {
	enc := json.NewEncoder(w)
	var firstErr error
	for p := range ch {
		if firstErr != nil {
			continue
		}
		if err := enc.Encode(p); err != nil {
			firstErr = err
		}
		if f, ok := w.(interface{ Flush() }); ok {
			f.Flush()
		}
	}
	return firstErr
}
