package sweep

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/workload"
)

// kSweepSpec builds the satellite grid: two base configurations (DDR2 and
// FB-DIMM, neither under multi-cacheline interleaving) crossed with three
// prefetch region sizes K. K is warmup-inert for these interleaving schemes,
// so the six points form exactly two warmup groups.
func kSweepSpec(share bool) Spec {
	var cfgs []NamedConfig
	for _, base := range []struct {
		name string
		cfg  config.Config
	}{
		{"ddr2", config.DDR2Baseline()},
		{"fbd", config.Default()},
	} {
		for _, k := range []int{2, 4, 8} {
			c := base.cfg
			c.Mem.RegionLines = k
			cfgs = append(cfgs, NamedConfig{Name: fmt.Sprintf("%s-k%d", base.name, k), Config: c})
		}
	}
	return Spec{
		Name:        "k-sweep",
		Configs:     cfgs,
		Workloads:   []workload.Workload{{Name: "wl", Benchmarks: []string{"swim"}}},
		MaxInsts:    12_000,
		WarmupInsts: 3_000,
		Parallel:    3,
		ShareWarmup: share,
	}
}

// TestWarmupKeyMasksInertKnobs: points differing only in measurement budget
// or (outside multi-cacheline interleaving) region size share a warmup
// group; warmup-visible knobs split groups.
func TestWarmupKeyMasksInertKnobs(t *testing.T) {
	base := config.Default()
	bench := []string{"swim"}
	ref := WarmupKey(base, bench)

	budget := base
	budget.MaxInsts *= 2
	if WarmupKey(budget, bench) != ref {
		t.Errorf("MaxInsts changed the warmup key")
	}
	k := base
	k.Mem.RegionLines = 8
	if WarmupKey(k, bench) != ref {
		t.Errorf("RegionLines changed the warmup key under %v interleaving", base.Mem.Interleave)
	}

	mc := config.WithAMBPrefetch(config.Default())
	mcK := mc
	mcK.Mem.RegionLines = 8
	if WarmupKey(mc, bench) == WarmupKey(mcK, bench) {
		t.Errorf("RegionLines did not change the warmup key under multi-cacheline interleaving")
	}
	seed := base
	seed.Seed++
	if WarmupKey(seed, bench) == ref {
		t.Errorf("seed did not change the warmup key")
	}
	if WarmupKey(base, []string{"applu"}) == ref {
		t.Errorf("workload did not change the warmup key")
	}
}

// BenchmarkSharedWarmup measures what warmup sharing buys on the Figure-8
// style K-sweep (2 presets × K ∈ {2,4,8} = 6 points, 2 warmup groups) in
// two budget regimes: the figure harness's default shape where warmup is a
// small fraction of the run, and a warmup-heavy shape (long warmup, short
// measured window) where amortization dominates. Numbers are recorded in
// EXPERIMENTS.md (extension E7).
func BenchmarkSharedWarmup(b *testing.B) {
	regimes := []struct {
		name          string
		warmup, insts int64
	}{
		{"default", 40_000, 300_000},
		{"warmup-heavy", 200_000, 50_000},
	}
	for _, reg := range regimes {
		for _, share := range []bool{false, true} {
			name := reg.name + "/plain"
			if share {
				name = reg.name + "/shared"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := kSweepSpec(share)
					spec.WarmupInsts = reg.warmup
					spec.MaxInsts = reg.insts
					eng, err := New(spec, Options{})
					if err != nil {
						b.Fatal(err)
					}
					ch, err := eng.Start(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					for _, p := range Collect(ch) {
						if p.Err != "" {
							b.Fatalf("point %s/%s: %s", p.Config, p.Workload, p.Err)
						}
					}
				}
			})
		}
	}
}

// TestSharedWarmupOneWarmupPerGroup is the satellite acceptance test: a
// 2-config × 3-K grid under ShareWarmup performs exactly two warmups — one
// per (config-prefix, workload) group — and its merged results DeepEqual a
// sweep of the same grid with sharing off. Runs the real simulator.
func TestSharedWarmupOneWarmupPerGroup(t *testing.T) {
	run := func(share bool) ([]Point, Progress, error) {
		eng, err := New(kSweepSpec(share), Options{})
		if err != nil {
			return nil, Progress{}, err
		}
		ch, err := eng.Start(context.Background())
		if err != nil {
			return nil, Progress{}, err
		}
		pts := Collect(ch)
		return pts, eng.Progress(), nil
	}

	plain, plainProg, err := run(false)
	if err != nil {
		t.Fatalf("plain sweep: %v", err)
	}
	shared, sharedProg, err := run(true)
	if err != nil {
		t.Fatalf("shared sweep: %v", err)
	}
	for _, p := range append(append([]Point(nil), plain...), shared...) {
		if p.Err != "" {
			t.Fatalf("point %s/%s failed: %s", p.Config, p.Workload, p.Err)
		}
	}

	if plainProg.Warmups != 6 {
		t.Errorf("plain sweep performed %d warmups, want 6", plainProg.Warmups)
	}
	if sharedProg.Warmups != 2 {
		t.Errorf("shared sweep performed %d warmups, want 2 (one per warmup group)", sharedProg.Warmups)
	}
	if !reflect.DeepEqual(plain, shared) {
		t.Errorf("shared-warmup sweep results diverged from plain sweep\nplain:  %+v\nshared: %+v", plain, shared)
	}
}
