package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The journal is an append-only NDJSON checkpoint file: one header line
// identifying the sweep spec, then one line per successfully completed
// point, fsynced after each append. A sweep killed at any moment — even
// mid-write — resumes by replaying every fully written line and truncating
// the partial tail; replayed points are emitted without re-simulating, and
// because points are canonicalized before journaling, the merged result
// set is bit-identical to an uninterrupted run.
//
// The journal is also the commit log of distributed sweeps: a cluster
// coordinator appends each point exactly once (first delivery wins), so a
// point executed twice — requeue race, speculative re-issue — still lands
// in the file once and resume stays bit-identical.

// ErrLocked reports that another live process holds the journal open.
// Exactly one writer may own a journal file at a time — concurrent
// appenders would interleave fsyncs and corrupt the replay stream — so a
// second opener fails closed with this sentinel (wrapped; test with
// errors.Is) instead of silently sharing the file.
var ErrLocked = errors.New("journal is locked by another process")

// journalHeader is the first line of every journal file.
type journalHeader struct {
	V           int    `json:"v"`
	Sweep       string `json:"sweep"`
	Fingerprint string `json:"fingerprint"`
}

const journalVersion = 1

// Journal is the append side; opening also replays existing points.
// Appends are serialized: worker goroutines checkpoint concurrently.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (or creates) the checkpoint file at path, replays the
// completed points it holds, truncates any partially written tail, and
// returns the journal positioned for appending. A journal written for a
// different spec fingerprint is refused rather than silently merged, and
// a journal already held open by another live process is refused with
// ErrLocked (the lock is advisory flock, released automatically when the
// holder dies — a crashed writer never wedges resumption).
func OpenJournal(path, name, fingerprint string) (*Journal, map[int]Point, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("sweep: create journal directory: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal %s: %w", path, err)
	}

	points := make(map[int]Point)
	r := bufio.NewReader(f)
	var valid int64 // offset past the last fully written line
	sawHeader := false
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the process died mid-write. The
			// partial line is discarded and overwritten below.
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sweep: read journal: %w", err)
		}
		if !sawHeader {
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("sweep: corrupt journal header in %s: %w", path, err)
			}
			if h.V != journalVersion {
				f.Close()
				return nil, nil, fmt.Errorf("sweep: journal %s has version %d, want %d", path, h.V, journalVersion)
			}
			if h.Fingerprint != fingerprint {
				f.Close()
				return nil, nil, fmt.Errorf("sweep: journal %s belongs to a different sweep spec (fingerprint %.12s…, want %.12s…)", path, h.Fingerprint, fingerprint)
			}
			sawHeader = true
			valid += int64(len(line))
			continue
		}
		var p Point
		if err := json.Unmarshal(line, &p); err != nil {
			// A torn or corrupt record: everything before it is good,
			// it and everything after are dropped and recomputed.
			break
		}
		points[p.Index] = p
		valid += int64(len(line))
	}

	// Drop the invalid tail (if any) and position for appending.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: truncate journal: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: seek journal: %w", err)
	}

	j := &Journal{f: f}
	if !sawHeader {
		if err := j.writeLine(journalHeader{V: journalVersion, Sweep: name, Fingerprint: fingerprint}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, points, nil
}

// Append checkpoints one completed point. Journal failures are deliberately
// non-fatal to the sweep — the point was computed and is emitted either
// way; the worst outcome of a failed append is recomputation on resume.
func (j *Journal) Append(p Point) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.writeLine(p)
}

func (j *Journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encode journal line: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sweep: write journal: %w", err)
	}
	// One fsync per point: a completed point survives any later crash.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync journal: %w", err)
	}
	return nil
}

// Close syncs and releases the journal (and its writer lock).
func (j *Journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.f.Sync()
	_ = j.f.Close()
}
