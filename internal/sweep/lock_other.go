//go:build !unix

package sweep

import "os"

// lockFile is a no-op where flock is unavailable: the journal loses its
// second-opener protection but keeps every crash-recovery property.
func lockFile(*os.File) error { return nil }
