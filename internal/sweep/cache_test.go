package sweep

import (
	"context"
	"errors"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

func TestKeyDistinguishesInputs(t *testing.T) {
	base := config.Default()
	other := base
	other.Seed = base.Seed + 1
	k1 := Key(base, []string{"swim"})
	if k1 != Key(base, []string{"swim"}) {
		t.Fatal("key not deterministic")
	}
	if k1 == Key(other, []string{"swim"}) {
		t.Fatal("seed change did not change key")
	}
	if k1 == Key(base, []string{"mgrid"}) {
		t.Fatal("benchmark change did not change key")
	}
	if Key(base, []string{"swim", "mgrid"}) == Key(base, []string{"mgrid", "swim"}) {
		t.Fatal("benchmark order did not change key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", system.Results{Cores: 1})
	c.Put("b", system.Results{Cores: 2})
	c.Get("a") // a is now most recent
	c.Put("c", system.Results{Cores: 3})
	if _, ok := c.Get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 1000; i++ {
		c.Put(string(rune(i)), system.Results{Cores: i})
	}
	if c.Len() != 1000 {
		t.Fatalf("unbounded cache evicted: len=%d", c.Len())
	}
}

func TestCacheDoErrorNotCached(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (system.Results, error) {
		calls++
		return system.Results{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	res, hit, err := c.Do(context.Background(), "k", func() (system.Results, error) {
		calls++
		return system.Results{Cores: 9}, nil
	})
	if err != nil || hit || res.Cores != 9 {
		t.Fatalf("retry: res=%+v hit=%v err=%v", res, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (error must not be cached)", calls)
	}
}

// TestCacheDoCoalescedWaiterSeesError: a Do call that finds an in-flight
// computation for its key observes that computation's error rather than
// running its own fn. White-box: the flight is planted and completed
// directly so the ordering is deterministic.
func TestCacheDoCoalescedWaiterSeesError(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	f := &flight{done: make(chan struct{}), err: boom}
	c.mu.Lock()
	c.flight["k"] = f
	c.mu.Unlock()
	close(f.done)

	_, hit, err := c.Do(context.Background(), "k", func() (system.Results, error) {
		t.Error("waiter ran its own fn despite in-flight computation")
		return system.Results{}, nil
	})
	if !hit {
		t.Error("coalesced waiter not reported as hit")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("waiter saw %v, want boom", err)
	}
}

// TestCacheDoWaiterContextCancel: a waiter whose context expires while the
// flight is still running gives up with ctx.Err().
func TestCacheDoWaiterContextCancel(t *testing.T) {
	c := NewCache(0)
	f := &flight{done: make(chan struct{})} // never completes
	c.mu.Lock()
	c.flight["k"] = f
	c.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (system.Results, error) {
		t.Error("cancelled waiter ran fn")
		return system.Results{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
