package sweep

import (
	"context"
	"sync"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

// WarmupKey returns the identity hash of a grid point's warmup prefix: the
// cache key of its configuration with the warmup-inert knobs masked out.
// Two points with equal WarmupKeys execute identical simulations from cycle
// zero through the warmup boundary, so one point's warm-boundary snapshot is
// a valid starting state for the others. Masked knobs:
//
//   - MaxInsts: the measurement budget only decides when the run stops, long
//     after warmup.
//   - Mem.RegionLines: the prefetch group size K steers the address mapping
//     only under multi-cacheline interleaving (the mapper pins it to 1
//     otherwise), so for the other interleaving schemes a K-sweep shares one
//     warmup.
//
// Everything else — seed, workload, timing, geometry, fault plan — changes
// machine state from cycle zero and stays in the key.
func WarmupKey(cfg config.Config, benchmarks []string) string {
	cfg.MaxInsts = 0
	if cfg.Mem.Interleave != config.MultiCachelineInterleave {
		cfg.Mem.RegionLines = 0
	}
	return Key(cfg, benchmarks)
}

// warmupGroup is the shared-warmup rendezvous of one WarmupKey: the first
// point to arrive becomes the leader and runs from cycle zero with a
// warm-boundary checkpoint armed; the rest wait on ready and restore the
// leader's snapshot instead of re-warming. A leader that finishes without
// producing a snapshot (checkpoint-free RunFunc, cancellation, failure
// before warmup) leaves data nil and the waiters fall back to full runs.
type warmupGroup struct {
	ready chan struct{}
	once  sync.Once
	data  []byte
}

func (g *warmupGroup) publish(data []byte) {
	g.once.Do(func() {
		g.data = data
		close(g.ready)
	})
}

// warmupGroupFor returns def's rendezvous and whether this caller is its
// leader. Returns nil when warmup sharing is off or the point has no warmup
// phase to share.
func (e *Engine) warmupGroupFor(def PointDef) (g *warmupGroup, leader bool) {
	if !e.spec.ShareWarmup || def.Cfg.WarmupInsts <= 0 {
		return nil, false
	}
	key := WarmupKey(def.Cfg, def.Benchmarks)
	e.warmMu.Lock()
	defer e.warmMu.Unlock()
	g, ok := e.warmGroups[key]
	if !ok {
		g = &warmupGroup{ready: make(chan struct{})}
		e.warmGroups[key] = g
	}
	return g, !ok
}

// runShard executes one grid point's simulation, sharing warmup state across
// the point's warmup group when the spec enables it. The context plumbing is
// advisory: a RunFunc that ignores the checkpoint/restore specs (fakes,
// instrumented wrappers) degrades to plain runs with no correctness impact.
func (e *Engine) runShard(ctx context.Context, def PointDef) (system.Results, error) {
	// Estimate tiers manage their own warmup (sampled: functional
	// warming; analytic: a memoized probe) and bypass the
	// warmup-sharing machinery entirely.
	if def.Fidelity != "" {
		return e.runTier(ctx, def.Fidelity, def.Cfg, def.Benchmarks)
	}
	g, leader := e.warmupGroupFor(def)
	switch {
	case g == nil:
		if def.Cfg.WarmupInsts > 0 {
			e.warmups.Add(1)
		}
		return e.run(ctx, def.Cfg, def.Benchmarks)

	case leader:
		// Leader: warm up from cycle zero, snapshotting the machine at the
		// warmup boundary under the group's key (not the point's own, so
		// every group member can restore it). The rendezvous is always
		// released, even when the run ends without a checkpoint.
		key := WarmupKey(def.Cfg, def.Benchmarks)
		e.warmups.Add(1)
		defer g.publish(nil)
		ctx := system.WithCheckpoint(ctx, system.CheckpointSpec{
			AtWarm:      true,
			Fingerprint: key,
			OnCheckpoint: func(cp system.Checkpoint) error {
				g.publish(cp.Data)
				return nil
			},
		})
		return e.run(ctx, def.Cfg, def.Benchmarks)

	default:
		// Follower: wait for the leader's warm snapshot, then run the
		// measurement phase on top of it.
		select {
		case <-g.ready:
		case <-ctx.Done():
			return system.Results{}, ctx.Err()
		}
		if g.data == nil {
			// The leader produced no snapshot; warm up independently.
			e.warmups.Add(1)
			return e.run(ctx, def.Cfg, def.Benchmarks)
		}
		key := WarmupKey(def.Cfg, def.Benchmarks)
		ctx := system.WithRestore(ctx, system.RestoreSpec{Data: g.data, Fingerprint: key})
		return e.run(ctx, def.Cfg, def.Benchmarks)
	}
}
