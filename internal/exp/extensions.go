package exp

import (
	"fmt"
	"io"
	"time"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/fidelity"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// ----------------------------------------------------------- Extension E1

// E1Row compares hardware prefetching against (and combined with) AMB
// prefetching for one core count, all normalized to a system with neither.
type E1Row struct {
	Cores int
	AP    float64 // AMB prefetching only
	HP    float64 // hardware stream prefetching only
	APHP  float64 // both
}

// E1Data tests the Section 5.4 conjecture: "We believe AMB prefetching will
// improve performance similarly if hardware prefetching is used." The paper
// did not run this experiment (hardware prefetcher design variance made a
// fair comparison hard); this extension runs a conventional stream
// prefetcher and mirrors the Figure 12 analysis.
type E1Data struct{ Rows []E1Row }

// ExtensionHWPrefetch runs E1. Software prefetching is disabled in all four
// arms so the hardware prefetcher is the only cache-level prefetch source.
func ExtensionHWPrefetch(r *Runner) (E1Data, error) {
	var d E1Data
	base := config.FBDIMMBaseline()
	base.CPU.SoftwarePrefetch = false

	apCfg := config.WithAMBPrefetch(config.Default())
	apCfg.CPU.SoftwarePrefetch = false

	hpCfg := base
	hpCfg.CPU.HardwarePrefetch = true

	bothCfg := apCfg
	bothCfg.CPU.HardwarePrefetch = true

	for _, g := range r.coreGroups() {
		none, err := r.speedupAll(base, g.Workloads)
		if err != nil {
			return d, err
		}
		ap, err := r.speedupAll(apCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		hp, err := r.speedupAll(hpCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		both, err := r.speedupAll(bothCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		b := mean(none)
		d.Rows = append(d.Rows, E1Row{
			Cores: g.Cores,
			AP:    mean(ap) / b,
			HP:    mean(hp) / b,
			APHP:  mean(both) / b,
		})
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E1Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E1  AMB vs hardware stream prefetching (relative to neither = 1.0)\n")
	fmt.Fprintf(w, "%6s %8s %8s %8s %20s\n", "cores", "AP", "HP", "AP+HP", "additive prediction")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %8.3f %8.3f %8.3f %20.3f\n",
			row.Cores, row.AP, row.HP, row.APHP, row.AP+row.HP-1)
	}
}

// ----------------------------------------------------------- Extension E2

// E2Row quantifies the cost of DRAM refresh for one configuration.
type E2Row struct {
	Cores     int
	System    string
	NoRefresh float64 // average SMT speedup without refresh
	Refresh   float64 // with tREFI/tRFC refresh windows
	CostPct   float64 // slowdown caused by refresh
}

// E2Data checks the paper's implicit assumption that ignoring refresh is
// harmless: the ~1.6% duty cycle (tRFC/tREFI) should cost about that much
// uniformly, leaving every comparison intact.
type E2Data struct{ Rows []E2Row }

// ExtensionRefresh runs E2 on the FBD and FBD-AP systems.
func ExtensionRefresh(r *Runner) (E2Data, error) {
	var d E2Data
	systems := []struct {
		name string
		cfg  config.Config
	}{
		{"FBD", config.FBDIMMBaseline()},
		{"FBD-AP", config.WithAMBPrefetch(config.Default())},
	}
	for _, sys := range systems {
		ref := sys.cfg
		ref.Mem.RefreshEnabled = true
		for _, g := range r.coreGroups() {
			off, err := r.speedupAll(sys.cfg, g.Workloads)
			if err != nil {
				return d, err
			}
			on, err := r.speedupAll(ref, g.Workloads)
			if err != nil {
				return d, err
			}
			row := E2Row{Cores: g.Cores, System: sys.name, NoRefresh: mean(off), Refresh: mean(on)}
			row.CostPct = (1 - row.Refresh/row.NoRefresh) * 100
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E2Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E2  cost of DRAM refresh (tREFI 7.8us, tRFC 127.5ns)\n")
	fmt.Fprintf(w, "%6s %8s %10s %10s %8s\n", "cores", "system", "no-refresh", "refresh", "cost%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %8s %10.3f %10.3f %8.2f\n",
			row.Cores, row.System, row.NoRefresh, row.Refresh, row.CostPct)
	}
}

// ----------------------------------------------------------- Extension E3

// E3Row compares bank-conflict mitigation strategies for one core count.
type E3Row struct {
	Cores int
	// System is FBD, FBD+perm, FBD-AP, or FBD-AP+perm.
	System string
	// Speedup is the average SMT speedup (DDR2 single-core reference).
	Speedup float64
	// ConflictsPerKRead is delayed activations per 1000 memory reads.
	ConflictsPerKRead float64
}

// E3Data evaluates permutation-based interleaving (the paper's reference
// [26], by the same authors) against and combined with AMB prefetching:
// both attack DRAM bank conflicts, one by scattering conflicting rows
// across banks, the other by not visiting the banks at all.
type E3Data struct{ Rows []E3Row }

// ExtensionPermutation runs E3.
func ExtensionPermutation(r *Runner) (E3Data, error) {
	var d E3Data
	permuted := func(c config.Config) config.Config {
		c.Mem.PermuteBanks = true
		return c
	}
	openPage := func() config.Config {
		c := config.FBDIMMBaseline()
		c.Mem.Interleave = config.PageInterleave
		c.Mem.PageMode = config.OpenPage
		return c
	}
	systems := []struct {
		name string
		cfg  config.Config
	}{
		{"FBD", config.FBDIMMBaseline()},
		{"FBD+perm", permuted(config.FBDIMMBaseline())},
		// Open-page arms: permutation's home turf — row-buffer conflicts
		// exist to be scattered there.
		{"FBD-open", openPage()},
		{"FBD-open+perm", permuted(openPage())},
		{"FBD-AP", config.WithAMBPrefetch(config.Default())},
		{"FBD-AP+perm", permuted(config.WithAMBPrefetch(config.Default()))},
	}
	for _, g := range r.coreGroups() {
		for _, sys := range systems {
			speedups, err := r.speedupAll(sys.cfg, g.Workloads)
			if err != nil {
				return d, err
			}
			var conflicts, reads int64
			for _, w := range g.Workloads {
				res, err := r.Run(sys.cfg, w.Benchmarks)
				if err != nil {
					return d, err
				}
				conflicts += res.BankConflicts
				reads += res.Reads
			}
			row := E3Row{Cores: g.Cores, System: sys.name, Speedup: mean(speedups)}
			if reads > 0 {
				row.ConflictsPerKRead = 1000 * float64(conflicts) / float64(reads)
			}
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E3Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E3  bank-conflict mitigation: permutation interleaving vs AMB prefetching\n")
	fmt.Fprintf(w, "%6s %-14s %9s %16s\n", "cores", "system", "speedup", "conflicts/Kread")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %-14s %9.3f %16.1f\n",
			row.Cores, row.System, row.Speedup, row.ConflictsPerKRead)
	}
}

// CSV exports the E3 rows.
func (d E3Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Cores), r.System,
			fmt.Sprintf("%.3f", r.Speedup), fmt.Sprintf("%.1f", r.ConflictsPerKRead)})
	}
	return writeRecords(w, []string{"cores", "system", "speedup", "conflicts_per_kread"}, rows)
}

// ----------------------------------------------------------- Extension E4

// E4Row reports the spread of the headline AP gain across trace seeds.
type E4Row struct {
	Cores   int
	MeanPct float64
	MinPct  float64
	MaxPct  float64
}

// E4Data quantifies seed sensitivity: the paper runs one SimPoint slice per
// program; our synthetic traces let us re-roll the workload and check that
// the Figure 7 conclusion is not a lucky draw.
type E4Data struct {
	Seeds []int64
	Rows  []E4Row
}

// ExtensionSeedSensitivity recomputes the Figure 7 average gains under
// several trace seeds using sub-runners that share this runner's budgets.
func ExtensionSeedSensitivity(r *Runner, seeds []int64) (E4Data, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	d := E4Data{Seeds: seeds}
	perCores := map[int][]float64{}
	for _, seed := range seeds {
		opts := r.Options()
		opts.Seed = seed
		sub := NewRunner(opts)
		f7, err := Figure7(sub)
		if err != nil {
			return d, err
		}
		for cores, gain := range f7.AvgGainPct {
			perCores[cores] = append(perCores[cores], gain)
		}
	}
	for _, cores := range []int{1, 2, 4, 8} {
		gains := perCores[cores]
		if len(gains) == 0 {
			continue
		}
		row := E4Row{Cores: cores, MinPct: gains[0], MaxPct: gains[0]}
		for _, g := range gains {
			row.MeanPct += g
			if g < row.MinPct {
				row.MinPct = g
			}
			if g > row.MaxPct {
				row.MaxPct = g
			}
		}
		row.MeanPct /= float64(len(gains))
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E4Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E4  seed sensitivity of the AMB-prefetching gain (%d seeds)\n", len(d.Seeds))
	fmt.Fprintf(w, "%6s %10s %10s %10s\n", "cores", "mean%", "min%", "max%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %+10.1f %+10.1f %+10.1f\n", row.Cores, row.MeanPct, row.MinPct, row.MaxPct)
	}
}

// CSV exports the E4 rows.
func (d E4Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.1f", r.MeanPct), fmt.Sprintf("%.1f", r.MinPct), fmt.Sprintf("%.1f", r.MaxPct)})
	}
	return writeRecords(w, []string{"cores", "mean_pct", "min_pct", "max_pct"}, rows)
}

// ----------------------------------------------------------- Extension E5

// E5Row projects the systems onto DDR3 devices for one core count.
type E5Row struct {
	Cores int
	// FBD2 / AP2 are DDR2-667 baselines; FBD3 / AP3 are DDR3-1333.
	FBD2 float64
	AP2  float64
	FBD3 float64
	AP3  float64
	// APGain2Pct / APGain3Pct are the AMB-prefetching gains on each device
	// generation.
	APGain2Pct float64
	APGain3Pct float64
}

// E5Data tests footnote 1's forward projection: FB-DIMM (and AMB
// prefetching) with DDR3 DIMMs. Doubling the per-DIMM device bandwidth
// widens the redundant-bandwidth gap AMB prefetching exploits, so the
// technique should survive the generation change.
type E5Data struct{ Rows []E5Row }

// ExtensionDDR3 runs E5.
func ExtensionDDR3(r *Runner) (E5Data, error) {
	var d E5Data
	fbd2 := config.FBDIMMBaseline()
	ap2 := config.WithAMBPrefetch(config.Default())
	fbd3 := config.WithDDR3(config.FBDIMMBaseline())
	ap3 := config.WithDDR3(config.WithAMBPrefetch(config.Default()))

	for _, g := range r.coreGroups() {
		row := E5Row{Cores: g.Cores}
		for _, arm := range []struct {
			cfg config.Config
			out *float64
		}{
			{fbd2, &row.FBD2}, {ap2, &row.AP2}, {fbd3, &row.FBD3}, {ap3, &row.AP3},
		} {
			s, err := r.speedupAll(arm.cfg, g.Workloads)
			if err != nil {
				return d, err
			}
			*arm.out = mean(s)
		}
		row.APGain2Pct = gainPct(row.AP2, row.FBD2)
		row.APGain3Pct = gainPct(row.AP3, row.FBD3)
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E5Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E5  DDR3 projection (footnote 1): FB-DIMM with DDR3-1333 DIMMs\n")
	fmt.Fprintf(w, "%6s %9s %9s %9s %9s %10s %10s\n",
		"cores", "FBD-DDR2", "AP-DDR2", "FBD-DDR3", "AP-DDR3", "gain2%", "gain3%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %9.3f %9.3f %9.3f %9.3f %+10.1f %+10.1f\n",
			row.Cores, row.FBD2, row.AP2, row.FBD3, row.AP3, row.APGain2Pct, row.APGain3Pct)
	}
}

// CSV exports the E5 rows.
func (d E5Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", r.Cores),
			fmt.Sprintf("%.3f", r.FBD2), fmt.Sprintf("%.3f", r.AP2),
			fmt.Sprintf("%.3f", r.FBD3), fmt.Sprintf("%.3f", r.AP3),
			fmt.Sprintf("%.1f", r.APGain2Pct), fmt.Sprintf("%.1f", r.APGain3Pct)})
	}
	return writeRecords(w, []string{"cores", "fbd_ddr2", "ap_ddr2", "fbd_ddr3", "ap_ddr3", "ap_gain2_pct", "ap_gain3_pct"}, rows)
}

// ----------------------------------------------------------- Extension E6

// E6Row is one (link error rate, prefetch degree) point of the fault
// sweep. K = 0 denotes the FBD baseline without AMB prefetching.
type E6Row struct {
	RatePct float64 // per-frame CRC error probability on each link, percent
	K       int     // prefetch region size; 0 = plain FBD
	Speedup float64 // mean SMT speedup across the workload set
	// GainPct is the AMB-prefetching gain over plain FBD at the same
	// error rate (0 for the baseline rows).
	GainPct float64
	// RetriesPerKRead is frame replays per 1000 memory reads.
	RetriesPerKRead float64
	// P95NS is the mean post-warmup p95 read latency across workloads.
	P95NS float64
}

// E6Data sweeps link error rate against prefetch degree: retried frames
// re-arbitrate for link slots, so every replay steals exactly the
// bandwidth headroom that AMB prefetching spends on speculative K-line
// fills. The sweep quantifies how quickly channel errors erode the
// prefetching gain, and whether larger K amplifies the erosion.
type E6Data struct{ Rows []E6Row }

// ExtensionFaultSweep runs E6: error rate {0, 1, 5, 10}% x K {2, 4, 8},
// FBD vs FBD-AP, with a fixed fault seed so every point is reproducible.
func ExtensionFaultSweep(r *Runner) (E6Data, error) {
	var d E6Data
	withFault := func(cfg config.Config, rate float64) config.Config {
		cfg.Fault = config.Fault{DegradedDIMM: -1, DeadBank: -1}
		if rate > 0 {
			cfg.Fault.Enabled = true
			cfg.Fault.Seed = 1
			cfg.Fault.SouthErrorRate = rate
			cfg.Fault.NorthErrorRate = rate
		}
		return cfg
	}
	apK := func(k int) config.Config {
		cfg := config.WithAMBPrefetch(config.Default())
		cfg.Mem.RegionLines = k
		return cfg
	}
	var ws []workload.Workload
	for _, g := range r.coreGroups() {
		ws = append(ws, g.Workloads...)
	}

	measure := func(cfg config.Config) (E6Row, error) {
		var row E6Row
		speedups, err := r.speedupAll(cfg, ws)
		if err != nil {
			return row, err
		}
		row.Speedup = mean(speedups)
		var retries, reads int64
		var p95 float64
		for _, w := range ws {
			res, err := r.Run(cfg, w.Benchmarks)
			if err != nil {
				return row, err
			}
			retries += res.Faults.Retries
			reads += res.Reads
			if res.LatencyHist != nil {
				p95 += float64(res.LatencyHist.Percentile(0.95)) / float64(clock.Nanosecond)
			}
		}
		if reads > 0 {
			row.RetriesPerKRead = 1000 * float64(retries) / float64(reads)
		}
		if len(ws) > 0 {
			row.P95NS = p95 / float64(len(ws))
		}
		return row, nil
	}

	for _, rate := range []float64{0, 0.01, 0.05, 0.10} {
		base, err := measure(withFault(config.FBDIMMBaseline(), rate))
		if err != nil {
			return d, err
		}
		base.RatePct = rate * 100
		d.Rows = append(d.Rows, base)
		for _, k := range []int{2, 4, 8} {
			row, err := measure(withFault(apK(k), rate))
			if err != nil {
				return d, err
			}
			row.RatePct, row.K = rate*100, k
			row.GainPct = gainPct(row.Speedup, base.Speedup)
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E6Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E6  link error rate x prefetch degree (per-frame CRC error probability)\n")
	fmt.Fprintf(w, "%7s %6s %9s %8s %14s %9s\n",
		"err%", "K", "speedup", "gain%", "retries/Kread", "p95(ns)")
	for _, row := range d.Rows {
		k := "FBD"
		if row.K > 0 {
			k = fmt.Sprintf("%d", row.K)
		}
		fmt.Fprintf(w, "%7.1f %6s %9.3f %+8.1f %14.1f %9.0f\n",
			row.RatePct, k, row.Speedup, row.GainPct, row.RetriesPerKRead, row.P95NS)
	}
}

// CSV exports the E6 rows.
func (d E6Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", r.RatePct), fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%.3f", r.Speedup), fmt.Sprintf("%.1f", r.GainPct),
			fmt.Sprintf("%.1f", r.RetriesPerKRead), fmt.Sprintf("%.0f", r.P95NS)})
	}
	return writeRecords(w, []string{"err_pct", "k", "speedup", "gain_pct", "retries_per_kread", "p95_ns"}, rows)
}

// ----------------------------------------------------------- Extension E8

// E8Row is one (system, workload) cell of the tiered-fidelity table: the
// cycle-accurate reference and each estimate tier's accuracy and cost.
type E8Row struct {
	System   string
	Workload string
	// FullIPC / FullMS are the cycle-accurate reference and its wall time.
	FullIPC float64
	FullMS  float64
	// Sampled tier: the estimate, its absolute IPC error against the
	// reference, the wall-clock speedup, and the detailed-instruction
	// reduction (total insts / detailed insts).
	SampledIPC     float64
	SampledErrPct  float64
	SampledSpeedX  float64
	SampledReduceX float64
	// Analytic tier: the estimate, its error, and the per-query latency
	// after the one-time calibration probe (the probe itself is a short
	// cycle-accurate run, amortized across every later query).
	AnalyticIPC    float64
	AnalyticErrPct float64
	AnalyticMS     float64
}

// E8Data is the accuracy-vs-speedup contract of the fidelity tiers: how far
// each estimate tier strays from the cycle-accurate answer, and what that
// tolerance buys in wall-clock time. The sampled tier's error should stay
// within a couple of percent; the analytic tier trades more error for
// effectively free queries, which is the triage tier a sweep uses before
// refining its interesting region cycle-accurately.
type E8Data struct {
	MaxInsts int64
	Rows     []E8Row
}

// ExtensionTieredFidelity runs E8 over ddr2/fbd/fbd-ap and the runner's
// single-core seed workloads. Cells run sequentially and bypass the result
// cache: the wall-clock columns are the point of the table, so every run
// must be fresh.
func ExtensionTieredFidelity(r *Runner) (E8Data, error) {
	d := E8Data{MaxInsts: r.opts.MaxInsts}
	systems := []struct {
		name string
		cfg  config.Config
	}{
		{"ddr2", config.DDR2Baseline()},
		{"fbd", config.FBDIMMBaseline()},
		{"fbd-ap", config.WithAMBPrefetch(config.Default())},
	}
	ws := workload.ByCores(r.opts.Workloads, 1)
	ctx := r.abortCtx
	errPct := func(est, full float64) float64 {
		if full == 0 {
			return 0
		}
		e := (est - full) / full * 100
		if e < 0 {
			e = -e
		}
		return e
	}
	for _, sys := range systems {
		for _, w := range ws {
			cfg := r.normalize(sys.cfg, len(w.Benchmarks))
			row := E8Row{System: sys.name, Workload: w.Name}

			start := time.Now()
			full, err := system.RunWorkloadContext(ctx, cfg, w.Benchmarks)
			if err != nil {
				return d, err
			}
			row.FullMS = float64(time.Since(start).Nanoseconds()) / 1e6
			row.FullIPC = full.TotalIPC()

			start = time.Now()
			smp, err := fidelity.Run(ctx, fidelity.Sampled, cfg, w.Benchmarks)
			if err != nil {
				return d, err
			}
			sampledMS := float64(time.Since(start).Nanoseconds()) / 1e6
			row.SampledIPC = smp.TotalIPC()
			row.SampledErrPct = errPct(row.SampledIPC, row.FullIPC)
			if sampledMS > 0 {
				row.SampledSpeedX = row.FullMS / sampledMS
			}
			if est := smp.Estimate; est != nil && est.DetailedInsts > 0 {
				row.SampledReduceX = float64(est.DetailedInsts+est.FunctionalInsts) / float64(est.DetailedInsts)
			}

			// First analytic call pays the calibration probe; the second
			// measures the steady-state query latency the tier advertises.
			an, err := fidelity.Run(ctx, fidelity.Analytic, cfg, w.Benchmarks)
			if err != nil {
				return d, err
			}
			start = time.Now()
			an, err = fidelity.Run(ctx, fidelity.Analytic, cfg, w.Benchmarks)
			if err != nil {
				return d, err
			}
			row.AnalyticMS = float64(time.Since(start).Nanoseconds()) / 1e6
			row.AnalyticIPC = an.TotalIPC()
			row.AnalyticErrPct = errPct(row.AnalyticIPC, row.FullIPC)

			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// Format writes the extension as a table.
func (d E8Data) Format(w io.Writer) {
	fmt.Fprintf(w, "E8  tiered fidelity: accuracy vs speedup (%d insts per run)\n", d.MaxInsts)
	fmt.Fprintf(w, "%7s %-10s %8s %8s | %8s %6s %7s %8s | %8s %6s %8s\n",
		"system", "workload", "full-ipc", "full-ms",
		"smp-ipc", "err%", "speedx", "detailx",
		"ana-ipc", "err%", "query-ms")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%7s %-10s %8.3f %8.1f | %8.3f %6.2f %7.1f %8.1f | %8.3f %6.2f %8.3f\n",
			row.System, row.Workload, row.FullIPC, row.FullMS,
			row.SampledIPC, row.SampledErrPct, row.SampledSpeedX, row.SampledReduceX,
			row.AnalyticIPC, row.AnalyticErrPct, row.AnalyticMS)
	}
}

// CSV exports the E8 rows.
func (d E8Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{r.System, r.Workload,
			fmt.Sprintf("%.4f", r.FullIPC), fmt.Sprintf("%.1f", r.FullMS),
			fmt.Sprintf("%.4f", r.SampledIPC), fmt.Sprintf("%.2f", r.SampledErrPct),
			fmt.Sprintf("%.1f", r.SampledSpeedX), fmt.Sprintf("%.1f", r.SampledReduceX),
			fmt.Sprintf("%.4f", r.AnalyticIPC), fmt.Sprintf("%.2f", r.AnalyticErrPct),
			fmt.Sprintf("%.3f", r.AnalyticMS)})
	}
	return writeRecords(w, []string{"system", "workload", "full_ipc", "full_ms",
		"sampled_ipc", "sampled_err_pct", "sampled_speed_x", "sampled_reduce_x",
		"analytic_ipc", "analytic_err_pct", "analytic_query_ms"}, rows)
}
