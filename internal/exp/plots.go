package exp

import (
	"fmt"
	"io"

	"fbdsim/internal/textplot"
)

// Plot renders Figure 4 as a bar chart of per-core-count average speedups.
func (d Figure4Data) Plot(w io.Writer) {
	var bars []textplot.Bar
	sums := map[int][2]float64{}
	counts := map[int]int{}
	for _, row := range d.Rows {
		s := sums[row.Cores]
		s[0] += row.DDR2
		s[1] += row.FBD
		sums[row.Cores] = s
		counts[row.Cores]++
	}
	for _, n := range []int{1, 2, 4, 8} {
		if c := counts[n]; c > 0 {
			bars = append(bars,
				textplot.Bar{Label: fmt.Sprintf("%dC DDR2", n), Value: sums[n][0] / float64(c)},
				textplot.Bar{Label: fmt.Sprintf("%dC FBD ", n), Value: sums[n][1] / float64(c)})
		}
	}
	textplot.BarChart(w, "Figure 4  avg SMT speedup (ref: single-core DDR2)", bars, 48, 1.0)
}

// Plot renders Figure 5's bandwidth-vs-latency scatter ('d' DDR2, 'f' FBD).
func (d Figure5Data) Plot(w io.Writer) {
	var pts []textplot.Point
	for _, row := range d.Rows {
		g := 'd'
		if row.System == "FBD" {
			g = 'f'
		}
		pts = append(pts, textplot.Point{X: row.BandwidthGBs, Y: row.LatencyNS, Glyph: g})
	}
	textplot.Scatter(w, "Figure 5  utilized bandwidth vs latency (d=DDR2, f=FBD)",
		"utilized bandwidth GB/s", "avg latency ns", pts, 56, 16)
}

// Plot renders Figure 7 as per-workload AP gain bars.
func (d Figure7Data) Plot(w io.Writer) {
	var bars []textplot.Bar
	for _, row := range d.Rows {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%-10s", row.Workload),
			Value: row.GainPct,
		})
	}
	textplot.BarChart(w, "Figure 7  AMB-prefetching gain % per workload", bars, 48, 0)
}

// Plot renders Figure 8 as coverage/efficiency bars per variant.
func (d Figure8Data) Plot(w io.Writer) {
	var bars []textplot.Bar
	for _, row := range d.Rows {
		bars = append(bars,
			textplot.Bar{Label: row.Variant.Label + " cov", Value: row.Coverage},
			textplot.Bar{Label: row.Variant.Label + " eff", Value: row.Efficiency})
	}
	textplot.BarChart(w, "Figure 8  prefetch coverage / efficiency", bars, 48, 0)
}

// Plot renders Figure 10's scatter ('f' FBD, 'a' FBD-AP). Every 'a' point
// should sit below-right of its 'f' partner.
func (d Figure10Data) Plot(w io.Writer) {
	var pts []textplot.Point
	for _, row := range d.Rows {
		pts = append(pts,
			textplot.Point{X: row.FBDBW, Y: row.FBDLat, Glyph: 'f'},
			textplot.Point{X: row.APBW, Y: row.APLat, Glyph: 'a'})
	}
	textplot.Scatter(w, "Figure 10  bandwidth vs latency (f=FBD, a=FBD-AP)",
		"utilized bandwidth GB/s", "avg latency ns", pts, 56, 16)
}

// Plot renders Figure 13 as normalized-power bars (below the 1.0 baseline
// means saving).
func (d Figure13Data) Plot(w io.Writer) {
	var bars []textplot.Bar
	for _, row := range d.Rows {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%dC %-12s", row.Cores, row.Variant.Label),
			Value: row.PowerRatio,
		})
	}
	textplot.BarChart(w, "Figure 13  normalized DRAM dynamic energy (|=FBD baseline)", bars, 48, 1.0)
}
