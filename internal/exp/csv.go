package exp

import (
	"encoding/csv"
	"fmt"
	"io"
)

// writeRecords is the shared CSV writer: a header row followed by records.
func writeRecords(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// CSV exports the Figure 4 rows.
func (data Figure4Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{r.Workload, d(r.Cores), f3(r.DDR2), f3(r.FBD)})
	}
	return writeRecords(w, []string{"workload", "cores", "ddr2", "fbd"}, rows)
}

// CSV exports the Figure 5 rows.
func (data Figure5Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{r.Workload, d(r.Cores), r.System,
			f3(r.BandwidthGBs), f1(r.LatencyNS)})
	}
	return writeRecords(w, []string{"workload", "cores", "system", "bandwidth_gbs", "latency_ns"}, rows)
}

// CSV exports the Figure 6 rows.
func (data Figure6Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), d(r.RateMTs), d(r.Channels),
			f3(r.DDR2), f3(r.FBD)})
	}
	return writeRecords(w, []string{"cores", "rate_mts", "channels", "ddr2", "fbd"}, rows)
}

// CSV exports the Figure 7 rows.
func (data Figure7Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{r.Workload, d(r.Cores), f3(r.FBD), f3(r.FBDAP), f1(r.GainPct)})
	}
	return writeRecords(w, []string{"workload", "cores", "fbd", "fbd_ap", "gain_pct"}, rows)
}

// CSV exports the Figure 8 rows.
func (data Figure8Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{r.Variant.Label, d(r.Variant.RegionLines),
			d(r.Variant.Entries), d(r.Variant.Assoc), f3(r.Coverage), f3(r.Efficiency)})
	}
	return writeRecords(w, []string{"variant", "region_lines", "entries", "assoc", "coverage", "efficiency"}, rows)
}

// CSV exports the Figure 9 rows.
func (data Figure9Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), f3(r.FBD), f3(r.APFL), f3(r.AP),
			f1(r.BandwidthGainPct), f1(r.LatencyGainPct)})
	}
	return writeRecords(w, []string{"cores", "fbd", "fbd_apfl", "fbd_ap", "bw_gain_pct", "lat_gain_pct"}, rows)
}

// CSV exports the Figure 10 rows.
func (data Figure10Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{r.Workload, d(r.Cores),
			f3(r.FBDBW), f1(r.FBDLat), f3(r.APBW), f1(r.APLat)})
	}
	return writeRecords(w, []string{"workload", "cores", "fbd_bw_gbs", "fbd_lat_ns", "ap_bw_gbs", "ap_lat_ns"}, rows)
}

// CSV exports the Figure 11 rows.
func (data Figure11Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), r.Variant.Label, f3(r.Normalized)})
	}
	return writeRecords(w, []string{"cores", "variant", "normalized"}, rows)
}

// CSV exports the Figure 12 rows.
func (data Figure12Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), f3(r.AP), f3(r.SP), f3(r.APSP)})
	}
	return writeRecords(w, []string{"cores", "ap", "sp", "ap_sp"}, rows)
}

// CSV exports the Figure 13 rows.
func (data Figure13Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), r.Variant.Label,
			f3(r.PowerRatio), f3(r.ACTRatio), f3(r.ColRatio)})
	}
	return writeRecords(w, []string{"cores", "variant", "power_ratio", "act_ratio", "col_ratio"}, rows)
}

// CSV exports the E1 rows.
func (data E1Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), f3(r.AP), f3(r.HP), f3(r.APHP)})
	}
	return writeRecords(w, []string{"cores", "ap", "hp", "ap_hp"}, rows)
}

// CSV exports the E2 rows.
func (data E2Data) CSV(w io.Writer) error {
	rows := make([][]string, 0, len(data.Rows))
	for _, r := range data.Rows {
		rows = append(rows, []string{d(r.Cores), r.System, f3(r.NoRefresh), f3(r.Refresh), f1(r.CostPct)})
	}
	return writeRecords(w, []string{"cores", "system", "no_refresh", "refresh", "cost_pct"}, rows)
}
