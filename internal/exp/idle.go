package exp

import (
	"fmt"
	"io"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/memreq"
)

// IdleLatencies holds the idle read latencies the paper documents: 63 ns
// for an FB-DIMM DRAM access (12 controller + 3 command + 15 tRCD + 15 tCL
// + 6 data + 4×3 AMB hops, Section 5.2), 33 ns for an AMB-cache hit, and
// ~60 ns for the DDR2 baseline (no AMB hops, but registered-DIMM and 2T
// stub-bus command overhead; Figure 5 measures 60 ns DDR2 vs 62 ns FB-DIMM
// at one core).
type IdleLatencies struct {
	FBDMiss clock.Time // demand read on idle FB-DIMM (paper: 63 ns)
	AMBHit  clock.Time // read served by the AMB cache (paper: 33 ns)
	DDR2    clock.Time // demand read on idle DDR2 (paper, Fig. 5: ~60 ns)
}

// MeasureIdleLatencies drives single reads through otherwise idle memory
// systems and reports the measured latencies. It is experiment V1 of
// DESIGN.md and validates the model's latency decomposition against the
// paper's arithmetic.
func MeasureIdleLatencies() (IdleLatencies, error) {
	var out IdleLatencies

	// FB-DIMM miss.
	fbd := config.Default().Mem
	t, err := idleRead(&fbd, []int64{0})
	if err != nil {
		return out, err
	}
	out.FBDMiss = t[0]

	// FB-DIMM with AMB prefetching: a read to line 0 fetches its region;
	// a later read to line 1 (same region) hits the AMB cache.
	ap := config.WithAMBPrefetch(config.Default()).Mem
	t, err = idleRead(&ap, []int64{0, 64})
	if err != nil {
		return out, err
	}
	out.AMBHit = t[1]

	// DDR2 baseline miss.
	ddr := config.DDR2Baseline().Mem
	t, err = idleRead(&ddr, []int64{0})
	if err != nil {
		return out, err
	}
	out.DDR2 = t[0]
	return out, nil
}

// idleRead issues the addresses one at a time on an idle controller —
// each request starts a fresh epoch well after the previous one finished,
// so no queueing is involved — and returns the per-request latency.
func idleRead(mem *config.Mem, addrs []int64) ([]clock.Time, error) {
	ctrl := memctrl.New(mem)
	tck := ctrl.TCK()
	const epoch = 10 * clock.Microsecond

	lat := make([]clock.Time, len(addrs))
	for i, addr := range addrs {
		start := clock.Time(i) * epoch
		done := clock.Time(-1)
		req := &memreq.Request{
			Addr: addr,
			Kind: memreq.Read,
			OnDone: func(r *memreq.Request) {
				done = r.Done
			},
		}
		if !ctrl.Enqueue(req, start) {
			return nil, fmt.Errorf("exp: idle controller rejected request %d", i)
		}
		for now := start; done < 0; now += tck {
			if now > start+epoch {
				return nil, fmt.Errorf("exp: request %d never completed", i)
			}
			ctrl.Tick(now)
		}
		lat[i] = done - start
	}
	return lat, nil
}

// Format writes the idle latencies next to the paper's values.
func (l IdleLatencies) Format(w io.Writer) {
	fmt.Fprintf(w, "V1  idle read latency (measured vs paper)\n")
	fmt.Fprintf(w, "  FB-DIMM DRAM access : %6.1f ns (paper 63)\n", l.FBDMiss.Nanoseconds())
	fmt.Fprintf(w, "  AMB-cache hit       : %6.1f ns (paper 33)\n", l.AMBHit.Nanoseconds())
	fmt.Fprintf(w, "  DDR2 DRAM access    : %6.1f ns (paper measures ~60 in Figure 5)\n", l.DDR2.Nanoseconds())
}
