package exp

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/sweep"
	"fbdsim/internal/workload"
)

// testRunner returns a runner with tiny budgets and the quick workload set.
func testRunner() *Runner {
	return NewRunner(Options{
		MaxInsts:    60_000,
		WarmupInsts: 8_000,
		Workloads:   QuickWorkloads(),
	})
}

// TestIdleLatencyDecomposition is experiment V1: the model must reproduce
// the paper's idle latencies exactly.
func TestIdleLatencyDecomposition(t *testing.T) {
	l, err := MeasureIdleLatencies()
	if err != nil {
		t.Fatal(err)
	}
	if l.FBDMiss != 63*clock.Nanosecond {
		t.Errorf("FB-DIMM idle miss = %v, want 63ns", l.FBDMiss)
	}
	if l.AMBHit != 33*clock.Nanosecond {
		t.Errorf("AMB hit = %v, want 33ns", l.AMBHit)
	}
	if l.DDR2 != 60*clock.Nanosecond {
		t.Errorf("DDR2 idle miss = %v, want 60ns (Figure 5)", l.DDR2)
	}
	var buf bytes.Buffer
	l.Format(&buf)
	if !strings.Contains(buf.String(), "63") {
		t.Error("Format output missing paper reference")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.norm()
	if o.MaxInsts <= 0 || o.WarmupInsts <= 0 || o.Seed == 0 || o.Parallel <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if len(o.Workloads) != len(workload.All()) {
		t.Errorf("default workload set = %d, want full paper set", len(o.Workloads))
	}
}

func TestQuickWorkloads(t *testing.T) {
	ws := QuickWorkloads()
	cores := map[int]bool{}
	for _, w := range ws {
		cores[w.Cores()] = true
	}
	for _, n := range []int{1, 2, 4, 8} {
		if !cores[n] {
			t.Errorf("quick set missing a %d-core mix", n)
		}
	}
}

// TestRunnerMemoization: identical requests simulate once.
func TestRunnerMemoization(t *testing.T) {
	r := testRunner()
	a, err := r.Run(config.Default(), []string{"vpr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(config.Default(), []string{"vpr"})
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC[0] != b.IPC[0] {
		t.Error("memoized results differ")
	}
	if r.cache.Len() != 1 {
		t.Errorf("cache entries = %d, want 1", r.cache.Len())
	}
	// A different config is a different entry.
	if _, err := r.Run(config.DDR2Baseline(), []string{"vpr"}); err != nil {
		t.Fatal(err)
	}
	if r.cache.Len() != 2 {
		t.Errorf("cache entries = %d, want 2", r.cache.Len())
	}
}

// TestRunnerSweep: a figure-style grid through the Runner's sweep path —
// distinct configs simulate, identical configs dedup against the shared
// cache, and points come back in grid order.
func TestRunnerSweep(t *testing.T) {
	r := testRunner()
	sp := config.Default()
	nosp := config.Default()
	nosp.CPU.SoftwarePrefetch = false
	pts, err := r.sweep("grid", []sweep.NamedConfig{
		{Name: "sp", Config: sp},
		{Name: "nosp", Config: nosp},
		{Name: "sp-again", Config: sp}, // same content as "sp": must dedup
	}, []workload.Workload{{Name: "1C-vpr", Benchmarks: []string{"vpr"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Index != i || p.Err != "" || p.Results.IPC[0] <= 0 {
			t.Errorf("point %d malformed: %+v", i, p)
		}
	}
	if s := r.Summary(); s.Simulations != 2 {
		t.Errorf("simulations = %d, want 2 (sp-again dedups)", s.Simulations)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	r := testRunner()
	_, err := r.sweep("bad", []sweep.NamedConfig{{Name: "d", Config: config.Default()}},
		[]workload.Workload{{Name: "w", Benchmarks: []string{"nosuch"}}})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Parallel: -1}).Validate(); err == nil {
		t.Error("negative Parallel accepted")
	}
	if err := (Options{MaxInsts: -5}).Validate(); err == nil {
		t.Error("negative MaxInsts accepted")
	}
	if err := (Options{AbortAfterPoints: -2}).Validate(); err == nil {
		t.Error("negative AbortAfterPoints accepted")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewRunner accepted negative parallelism")
		}
	}()
	NewRunner(Options{Parallel: -3})
}

// TestRunnerJournalResume: an aborted journaled suite resumes to results
// identical to an uninterrupted one — the exp-level half of the sweep
// engine's resume guarantee.
func TestRunnerJournalResume(t *testing.T) {
	skipIfShort(t)
	dir := t.TempDir()
	ws := []workload.Workload{
		{Name: "1C-swim", Benchmarks: []string{"swim"}},
		{Name: "1C-vpr", Benchmarks: []string{"vpr"}},
	}
	opts := Options{MaxInsts: 40_000, WarmupInsts: 4_000, Workloads: ws, Parallel: 1}
	grid := func(r *Runner) ([]sweep.Point, error) {
		nosp := config.Default()
		nosp.CPU.SoftwarePrefetch = false
		return r.sweep("resume-grid", []sweep.NamedConfig{
			{Name: "sp", Config: config.Default()},
			{Name: "nosp", Config: nosp},
		}, ws)
	}

	ref, err := grid(NewRunner(opts))
	if err != nil {
		t.Fatal(err)
	}

	abortOpts := opts
	abortOpts.Journal = dir
	abortOpts.AbortAfterPoints = 1
	if _, err := grid(NewRunner(abortOpts)); !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted run err = %v, want ErrAborted", err)
	}

	resumeOpts := opts
	resumeOpts.Journal = dir
	r := NewRunner(resumeOpts)
	got, err := grid(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("resumed suite diverged from uninterrupted run")
	}
	if s := r.Summary(); s.Simulations >= int64(len(ref)) {
		t.Errorf("resume re-simulated everything (%d sims for %d points)", s.Simulations, len(ref))
	}
}

func TestSpeedupSelfReferenceIsOne(t *testing.T) {
	r := testRunner()
	w := workload.Workload{Name: "1C", Benchmarks: []string{"vpr"}}
	s, err := r.Speedup(config.DDR2Baseline(), w)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1.0 {
		t.Errorf("DDR2 single-core speedup = %g, want exactly 1 (self-reference)", s)
	}
}

// TestFigure7Shape: AMB prefetching helps every quick workload, with no
// negative speedups — the paper's headline claim.
func TestFigure7Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure7(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != len(QuickWorkloads()) {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	for _, row := range d.Rows {
		if row.GainPct < 0 {
			t.Errorf("%s: negative AP speedup %.1f%% (paper: none)", row.Workload, row.GainPct)
		}
		if row.FBDAP <= 0 || row.FBD <= 0 {
			t.Errorf("%s: degenerate speedups %+v", row.Workload, row)
		}
	}
	for _, n := range []int{1, 2, 4, 8} {
		if g, ok := d.AvgGainPct[n]; ok && (g < 2 || g > 60) {
			t.Errorf("@%d cores: avg gain %.1f%% outside plausible band", n, g)
		}
	}
	var buf bytes.Buffer
	d.Format(&buf)
	if !strings.Contains(buf.String(), "FBD-AP") {
		t.Error("Format output malformed")
	}
}

// TestFigure8Shape: coverage rises with K and respects the (K-1)/K bound;
// efficiency falls with K; associativity helps coverage monotonically.
func TestFigure8Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure8(r)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Figure8Row{}
	for _, row := range d.Rows {
		byLabel[row.Variant.Label] = row
		k := row.Variant.RegionLines
		if bound := float64(k-1) / float64(k); row.Coverage > bound+1e-9 {
			t.Errorf("%s: coverage %.3f exceeds bound %.3f", row.Variant.Label, row.Coverage, bound)
		}
	}
	if byLabel["#CL=2"].Coverage >= byLabel["#CL=4 (default)"].Coverage {
		t.Error("coverage should rise from K=2 to K=4")
	}
	if byLabel["#CL=2"].Efficiency <= byLabel["#CL=8"].Efficiency {
		t.Error("efficiency should fall from K=2 to K=8")
	}
	if byLabel["direct-mapped"].Coverage > byLabel["4-way"].Coverage {
		t.Error("higher associativity should not lose coverage")
	}
}

// TestFigure9Shape: both gain sources are non-negative everywhere.
func TestFigure9Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure9(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.APFL < row.FBD*0.98 {
			t.Errorf("@%d cores: APFL %.3f below FBD %.3f", row.Cores, row.APFL, row.FBD)
		}
		if row.AP < row.APFL*0.97 {
			t.Errorf("@%d cores: AP %.3f far below APFL %.3f", row.Cores, row.AP, row.APFL)
		}
	}
}

// TestFigure12Shape: AP+SP ends up at least as fast as either alone, and
// close to additive (complementarity).
func TestFigure12Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure12(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.APSP < row.AP*0.97 || row.APSP < row.SP*0.97 {
			t.Errorf("@%d cores: AP+SP %.3f below its parts (AP %.3f, SP %.3f)",
				row.Cores, row.APSP, row.AP, row.SP)
		}
		if row.AP < 0.98 || row.SP < 0.98 {
			t.Errorf("@%d cores: a prefetching arm lost to no-prefetching (AP %.3f, SP %.3f)",
				row.Cores, row.AP, row.SP)
		}
	}
}

// TestFigure13Shape: AMB prefetching cuts activations everywhere; K=4
// saves dynamic power at low core counts; larger K always spends more
// column accesses.
func TestFigure13Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure13(r)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Figure13Row{}
	for _, row := range d.Rows {
		byKey[row.Variant.Label+string(rune(row.Cores))] = row
		if row.ACTRatio >= 1 {
			t.Errorf("@%d %s: activations did not drop (%.3f)", row.Cores, row.Variant.Label, row.ACTRatio)
		}
		if row.ColRatio <= 1 {
			t.Errorf("@%d %s: column accesses did not rise (%.3f)", row.Cores, row.Variant.Label, row.ColRatio)
		}
	}
	for _, cores := range []int{1, 2} {
		if row, ok := byKey["#CL=4"+string(rune(cores))]; ok && row.PowerRatio >= 1 {
			t.Errorf("@%d cores K=4 power ratio %.3f, expected saving", cores, row.PowerRatio)
		}
	}
}

// TestFigure4And5Consistency: Figure 5 reuses Figure 4's runs, so both
// complete from one cache without error and cover every workload.
func TestFigure4And5Consistency(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	f4, err := Figure4(r)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Figure5(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != len(QuickWorkloads()) {
		t.Errorf("figure 4 rows = %d", len(f4.Rows))
	}
	if len(f5.Rows) != 2*len(QuickWorkloads()) {
		t.Errorf("figure 5 rows = %d", len(f5.Rows))
	}
	for _, row := range f5.Rows {
		if row.BandwidthGBs <= 0 || row.LatencyNS < 51 {
			t.Errorf("figure 5 row implausible: %+v", row)
		}
	}
}

// TestFigure11DefaultIsUnity: the default variant normalizes to exactly 1.
func TestFigure11DefaultIsUnity(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure11(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.Variant.Label == "#CL=4 (default)" && row.Normalized != 1.0 {
			t.Errorf("@%d cores default normalized = %g, want 1", row.Cores, row.Normalized)
		}
		if row.Normalized < 0.5 || row.Normalized > 1.5 {
			t.Errorf("@%d cores %s: normalized %.3f implausible",
				row.Cores, row.Variant.Label, row.Normalized)
		}
	}
}

// TestRunnerContextCancelDoesNotPoison: a cancelled run returns ctx.Err()
// and is evicted from the memo cache, so the next identical request
// re-simulates successfully.
func TestRunnerContextCancelDoesNotPoison(t *testing.T) {
	r := testRunner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx, config.Default(), []string{"vpr"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run err = %v, want Canceled", err)
	}
	if entries := r.cache.Len(); entries != 0 {
		t.Fatalf("cancelled entry not evicted (%d cached)", entries)
	}
	res, err := r.RunContext(context.Background(), config.Default(), []string{"vpr"})
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if res.IPC[0] <= 0 {
		t.Error("retry produced an empty result")
	}
}

// TestRunnerSummary: hit/miss counters and simulated wall time accumulate.
func TestRunnerSummary(t *testing.T) {
	r := testRunner()
	if _, err := r.Run(config.Default(), []string{"vpr"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(config.Default(), []string{"vpr"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(config.DDR2Baseline(), []string{"vpr"}); err != nil {
		t.Fatal(err)
	}
	s := r.Summary()
	if s.Simulations != 2 || s.CacheHits != 1 {
		t.Errorf("summary = %+v, want 2 simulations / 1 hit", s)
	}
	if s.SimWall <= 0 {
		t.Error("simulated wall time not recorded")
	}
	var buf bytes.Buffer
	r.LogSummary(&buf)
	if !strings.Contains(buf.String(), "2 simulations, 1 cache hits") {
		t.Errorf("LogSummary output %q", buf.String())
	}
}

// skipIfShort skips simulation-heavy tests under -short so the race-enabled
// CI lane stays fast; the full run is unchanged.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-heavy test; skipped in -short")
	}
}
