package exp

import (
	"fmt"
	"io"

	"fbdsim/internal/config"
	"fbdsim/internal/power"
	"fbdsim/internal/sweep"
	"fbdsim/internal/workload"
)

func gainPct(test, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (test/base - 1) * 100
}

// ---------------------------------------------------------------- Figure 4

// Figure4Row compares DDR2 and FB-DIMM SMT speedups for one workload.
type Figure4Row struct {
	Workload string
	Cores    int
	DDR2     float64
	FBD      float64
}

// Figure4Data is the DDR2-vs-FB-DIMM comparison of Figure 4.
type Figure4Data struct {
	Rows []Figure4Row
	// AvgGainPct is FB-DIMM's average gain over DDR2 per core count
	// (paper: -1.5%, -0.6%, +1.1%, +6.0% for 1/2/4/8 cores).
	AvgGainPct map[int]float64
}

// Figure4 reproduces Figure 4: SMT speedup of every workload on DDR2 and
// FB-DIMM (no AMB prefetching), referenced to single-threaded DDR2.
func Figure4(r *Runner) (Figure4Data, error) {
	d := Figure4Data{AvgGainPct: map[int]float64{}}
	for _, g := range r.coreGroups() {
		ddr, err := r.speedupAll(config.DDR2Baseline(), g.Workloads)
		if err != nil {
			return d, err
		}
		fbd, err := r.speedupAll(config.FBDIMMBaseline(), g.Workloads)
		if err != nil {
			return d, err
		}
		gains := make([]float64, len(g.Workloads))
		for i, w := range g.Workloads {
			d.Rows = append(d.Rows, Figure4Row{Workload: w.Name, Cores: g.Cores, DDR2: ddr[i], FBD: fbd[i]})
			gains[i] = fbd[i] / ddr[i]
		}
		d.AvgGainPct[g.Cores] = (mean(gains) - 1) * 100
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure4Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 4  SMT speedup, DDR2 vs FB-DIMM (reference: single-core DDR2)\n")
	fmt.Fprintf(w, "%-12s %6s %8s %8s %8s\n", "workload", "cores", "DDR2", "FBD", "gain%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-12s %6d %8.3f %8.3f %+8.1f\n",
			row.Workload, row.Cores, row.DDR2, row.FBD, gainPct(row.FBD, row.DDR2))
	}
	for _, n := range []int{1, 2, 4, 8} {
		if g, ok := d.AvgGainPct[n]; ok {
			fmt.Fprintf(w, "  avg FBD gain over DDR2 @%d cores: %+.1f%%\n", n, g)
		}
	}
}

// ---------------------------------------------------------------- Figure 5

// Figure5Row is one (bandwidth, latency) point of Figure 5.
type Figure5Row struct {
	Workload     string
	Cores        int
	System       string // "DDR2" or "FBD"
	BandwidthGBs float64
	LatencyNS    float64
}

// Figure5Data holds the utilized-bandwidth-vs-latency scatter of Figure 5.
type Figure5Data struct {
	Rows []Figure5Row
	// Averages per (cores, system): bandwidth and latency (paper at 8
	// cores: FBD 17.1 GB/s @146 ns vs DDR2 16.0 GB/s @155 ns).
	AvgBW  map[string]float64
	AvgLat map[string]float64
}

func avgKey(cores int, sys string) string { return fmt.Sprintf("%dC/%s", cores, sys) }

// Figure5 reproduces Figure 5 from the same runs as Figure 4.
func Figure5(r *Runner) (Figure5Data, error) {
	d := Figure5Data{AvgBW: map[string]float64{}, AvgLat: map[string]float64{}}
	systems := []struct {
		name string
		cfg  config.Config
	}{
		{"DDR2", config.DDR2Baseline()},
		{"FBD", config.FBDIMMBaseline()},
	}
	for _, g := range r.coreGroups() {
		for _, sys := range systems {
			var bws, lats []float64
			for _, w := range g.Workloads {
				res, err := r.Run(sys.cfg, w.Benchmarks)
				if err != nil {
					return d, err
				}
				d.Rows = append(d.Rows, Figure5Row{
					Workload: w.Name, Cores: g.Cores, System: sys.name,
					BandwidthGBs: res.UtilizedBandwidthGBs, LatencyNS: res.AvgReadLatencyNS,
				})
				bws = append(bws, res.UtilizedBandwidthGBs)
				lats = append(lats, res.AvgReadLatencyNS)
			}
			d.AvgBW[avgKey(g.Cores, sys.name)] = mean(bws)
			d.AvgLat[avgKey(g.Cores, sys.name)] = mean(lats)
		}
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure5Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 5  utilized bandwidth vs average latency (DDR2 vs FBD)\n")
	fmt.Fprintf(w, "%-12s %6s %6s %10s %10s\n", "workload", "cores", "system", "BW GB/s", "lat ns")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-12s %6d %6s %10.2f %10.1f\n",
			row.Workload, row.Cores, row.System, row.BandwidthGBs, row.LatencyNS)
	}
	for _, n := range []int{1, 2, 4, 8} {
		for _, sys := range []string{"DDR2", "FBD"} {
			k := avgKey(n, sys)
			if bw, ok := d.AvgBW[k]; ok {
				fmt.Fprintf(w, "  avg %-8s: %6.2f GB/s @ %6.1f ns\n", k, bw, d.AvgLat[k])
			}
		}
	}
}

// ---------------------------------------------------------------- Figure 6

// Figure6Row is one bandwidth-scaling point: per-core-count average SMT
// speedup at a (data rate, channel count) design point.
type Figure6Row struct {
	Cores    int
	RateMTs  int
	Channels int // logical channels
	DDR2     float64
	FBD      float64
}

// Figure6Data is the bandwidth-impact study of Figure 6.
type Figure6Data struct{ Rows []Figure6Row }

// Figure6 reproduces Figure 6: performance with data rates 533/667 MT/s and
// 1/2/4 logical channels, for both memory systems.
func Figure6(r *Runner) (Figure6Data, error) {
	var d Figure6Data
	for _, rate := range []int{533, 667} {
		for _, ch := range []int{1, 2, 4} {
			mk := func(base config.Config) config.Config {
				base.Mem.DataRate = clockRate(rate)
				base.Mem.LogicalChannels = ch
				return base
			}
			for _, g := range r.coreGroups() {
				ddr, err := r.speedupAll(mk(config.DDR2Baseline()), g.Workloads)
				if err != nil {
					return d, err
				}
				fbd, err := r.speedupAll(mk(config.FBDIMMBaseline()), g.Workloads)
				if err != nil {
					return d, err
				}
				d.Rows = append(d.Rows, Figure6Row{
					Cores: g.Cores, RateMTs: rate, Channels: ch,
					DDR2: mean(ddr), FBD: mean(fbd),
				})
			}
		}
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure6Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 6  bandwidth impact (avg SMT speedup per core count)\n")
	fmt.Fprintf(w, "%6s %8s %9s %8s %8s\n", "cores", "MT/s", "channels", "DDR2", "FBD")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %8d %9d %8.3f %8.3f\n",
			row.Cores, row.RateMTs, row.Channels, row.DDR2, row.FBD)
	}
}

// ---------------------------------------------------------------- Figure 7

// Figure7Row compares FB-DIMM with and without AMB prefetching.
type Figure7Row struct {
	Workload string
	Cores    int
	FBD      float64
	FBDAP    float64
	GainPct  float64
}

// Figure7Data is the headline result: AMB prefetching's speedup.
type Figure7Data struct {
	Rows []Figure7Row
	// AvgGainPct per core count (paper: 16.0 / 19.4 / 16.3 / 15.0 %).
	AvgGainPct map[int]float64
	// MaxGainPct per core count (paper: — / 30.7 / 25.1 / 19.7 %).
	MaxGainPct map[int]float64
}

// Figure7 reproduces Figure 7 with the default AMB prefetcher (K=4,
// 64-entry fully-associative FIFO AMB cache, software prefetching on).
func Figure7(r *Runner) (Figure7Data, error) {
	d := Figure7Data{AvgGainPct: map[int]float64{}, MaxGainPct: map[int]float64{}}
	apCfg := config.WithAMBPrefetch(config.Default())
	for _, g := range r.coreGroups() {
		fbd, err := r.speedupAll(config.FBDIMMBaseline(), g.Workloads)
		if err != nil {
			return d, err
		}
		ap, err := r.speedupAll(apCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		gains := make([]float64, len(g.Workloads))
		maxGain := 0.0
		for i, w := range g.Workloads {
			gp := gainPct(ap[i], fbd[i])
			d.Rows = append(d.Rows, Figure7Row{
				Workload: w.Name, Cores: g.Cores, FBD: fbd[i], FBDAP: ap[i], GainPct: gp,
			})
			gains[i] = ap[i] / fbd[i]
			if gp > maxGain {
				maxGain = gp
			}
		}
		d.AvgGainPct[g.Cores] = (mean(gains) - 1) * 100
		d.MaxGainPct[g.Cores] = maxGain
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure7Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 7  FB-DIMM with vs without AMB prefetching (SMT speedup)\n")
	fmt.Fprintf(w, "%-12s %6s %8s %8s %8s\n", "workload", "cores", "FBD", "FBD-AP", "gain%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-12s %6d %8.3f %8.3f %+8.1f\n",
			row.Workload, row.Cores, row.FBD, row.FBDAP, row.GainPct)
	}
	for _, n := range []int{1, 2, 4, 8} {
		if g, ok := d.AvgGainPct[n]; ok {
			fmt.Fprintf(w, "  @%d cores: avg gain %+.1f%% (paper avg 16.0/19.4/16.3/15.0), max %+.1f%%\n",
				n, g, d.MaxGainPct[n])
		}
	}
}

// ---------------------------------------------------------------- Figure 8

// PrefetcherVariant names one AMB-prefetcher configuration of the
// sensitivity sweeps (Figures 8, 11, 13).
type PrefetcherVariant struct {
	Label       string
	RegionLines int
	Entries     int
	Assoc       int // config.FullAssoc for fully associative
}

// apply returns the default system with this prefetcher variant enabled.
func (v PrefetcherVariant) apply() config.Config {
	cfg := config.WithAMBPrefetch(config.Default())
	cfg.Mem.RegionLines = v.RegionLines
	cfg.Mem.AMBCacheLines = v.Entries
	cfg.Mem.AMBCacheAssoc = v.Assoc
	return cfg
}

// Figure8Variants returns the sweep of Figure 8: region size 2/4/8,
// buffer size 32/64/128, associativity direct/2/4/full. The middle entry
// of each axis is the default configuration.
func Figure8Variants() []PrefetcherVariant {
	return []PrefetcherVariant{
		{"#CL=2", 2, 64, config.FullAssoc},
		{"#CL=4 (default)", 4, 64, config.FullAssoc},
		{"#CL=8", 8, 64, config.FullAssoc},
		{"#entry=32", 4, 32, config.FullAssoc},
		{"#entry=128", 4, 128, config.FullAssoc},
		{"direct-mapped", 4, 64, 1},
		{"2-way", 4, 64, 2},
		{"4-way", 4, 64, 4},
	}
}

// Figure8Row reports aggregate prefetch coverage and efficiency for one
// variant.
type Figure8Row struct {
	Variant    PrefetcherVariant
	Coverage   float64
	Efficiency float64
}

// Figure8Data is the coverage/efficiency study of Figure 8.
type Figure8Data struct{ Rows []Figure8Row }

// variantConfigs turns a prefetcher-variant sweep into the config
// dimension of a sweep spec, one named config per variant label.
func variantConfigs(vs []PrefetcherVariant) []sweep.NamedConfig {
	out := make([]sweep.NamedConfig, len(vs))
	for i, v := range vs {
		out[i] = sweep.NamedConfig{Name: v.Label, Config: v.apply()}
	}
	return out
}

// Figure8 reproduces Figure 8: coverage (#prefetch_hit/#read) and
// efficiency (#prefetch_hit/#prefetch) across prefetcher variants,
// aggregated over the workload set. The figure is one sweep spec —
// variants × workloads — executed by the sweep engine.
func Figure8(r *Runner) (Figure8Data, error) {
	var d Figure8Data
	pts, err := r.sweep("figure8", variantConfigs(Figure8Variants()), r.opts.Workloads)
	if err != nil {
		return d, err
	}
	type agg struct{ hits, reads, prefetched int64 }
	byVariant := map[string]*agg{}
	for _, p := range pts {
		a := byVariant[p.Config]
		if a == nil {
			a = &agg{}
			byVariant[p.Config] = a
		}
		a.hits += p.Results.AMB.Hits
		a.reads += p.Results.AMB.Reads
		a.prefetched += p.Results.AMB.Prefetched
	}
	for _, v := range Figure8Variants() {
		a := byVariant[v.Label]
		row := Figure8Row{Variant: v}
		if a.reads > 0 {
			row.Coverage = float64(a.hits) / float64(a.reads)
		}
		if a.prefetched > 0 {
			row.Efficiency = float64(a.hits) / float64(a.prefetched)
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure8Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 8  prefetch coverage and efficiency (coverage bound for K: (K-1)/K)\n")
	fmt.Fprintf(w, "%-18s %10s %12s\n", "variant", "coverage", "efficiency")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-18s %10.3f %12.3f\n", row.Variant.Label, row.Coverage, row.Efficiency)
	}
}

// ---------------------------------------------------------------- Figure 9

// Figure9Row decomposes the AMB-prefetching gain for one core count.
type Figure9Row struct {
	Cores int
	FBD   float64 // baseline average speedup
	APFL  float64 // prefetching with full-latency hits (bank benefit only)
	AP    float64 // full prefetching
	// BandwidthGainPct is APFL over FBD (paper: 8.2/10.1/8.5/9.2%);
	// LatencyGainPct is AP over APFL (paper: 7.1/8.5/7.2/5.3%).
	BandwidthGainPct float64
	LatencyGainPct   float64
}

// Figure9Data is the gain decomposition of Figure 9.
type Figure9Data struct{ Rows []Figure9Row }

// Figure9 reproduces Figure 9 using the FBD-APFL configuration, separating
// the bank-conflict (bandwidth) benefit from the idle-latency benefit.
func Figure9(r *Runner) (Figure9Data, error) {
	var d Figure9Data
	apCfg := config.WithAMBPrefetch(config.Default())
	flCfg := config.WithFullLatencyHits(config.Default())
	for _, g := range r.coreGroups() {
		fbd, err := r.speedupAll(config.FBDIMMBaseline(), g.Workloads)
		if err != nil {
			return d, err
		}
		fl, err := r.speedupAll(flCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		ap, err := r.speedupAll(apCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		row := Figure9Row{Cores: g.Cores, FBD: mean(fbd), APFL: mean(fl), AP: mean(ap)}
		row.BandwidthGainPct = gainPct(row.APFL, row.FBD)
		row.LatencyGainPct = gainPct(row.AP, row.APFL)
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure9Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 9  decomposition of the AMB-prefetching gain\n")
	fmt.Fprintf(w, "%6s %8s %8s %8s %14s %14s\n",
		"cores", "FBD", "FBD-APFL", "FBD-AP", "bw-util gain%", "latency gain%")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %8.3f %8.3f %8.3f %+14.1f %+14.1f\n",
			row.Cores, row.FBD, row.APFL, row.AP, row.BandwidthGainPct, row.LatencyGainPct)
	}
}

// --------------------------------------------------------------- Figure 10

// Figure10Row pairs bandwidth and latency for FBD and FBD-AP on one
// workload.
type Figure10Row struct {
	Workload string
	Cores    int
	FBDBW    float64
	FBDLat   float64
	APBW     float64
	APLat    float64
}

// Figure10Data is the bandwidth/latency comparison of Figure 10.
type Figure10Data struct{ Rows []Figure10Row }

// Figure10 reproduces Figure 10: for every workload, AMB prefetching should
// raise utilized bandwidth and cut average latency.
func Figure10(r *Runner) (Figure10Data, error) {
	var d Figure10Data
	apCfg := config.WithAMBPrefetch(config.Default())
	for _, g := range r.coreGroups() {
		for _, w := range g.Workloads {
			base, err := r.Run(config.FBDIMMBaseline(), w.Benchmarks)
			if err != nil {
				return d, err
			}
			ap, err := r.Run(apCfg, w.Benchmarks)
			if err != nil {
				return d, err
			}
			d.Rows = append(d.Rows, Figure10Row{
				Workload: w.Name, Cores: g.Cores,
				FBDBW: base.UtilizedBandwidthGBs, FBDLat: base.AvgReadLatencyNS,
				APBW: ap.UtilizedBandwidthGBs, APLat: ap.AvgReadLatencyNS,
			})
		}
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure10Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 10  utilized bandwidth vs latency, FBD vs FBD-AP\n")
	fmt.Fprintf(w, "%-12s %6s %10s %9s %10s %9s\n",
		"workload", "cores", "FBD GB/s", "FBD ns", "AP GB/s", "AP ns")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%-12s %6d %10.2f %9.1f %10.2f %9.1f\n",
			row.Workload, row.Cores, row.FBDBW, row.FBDLat, row.APBW, row.APLat)
	}
}

// --------------------------------------------------------------- Figure 11

// Figure11Row is one sensitivity point: performance of a prefetcher variant
// normalized to the default variant, averaged within a core count.
type Figure11Row struct {
	Cores      int
	Variant    PrefetcherVariant
	Normalized float64
}

// Figure11Data is the sensitivity study of Figure 11.
type Figure11Data struct{ Rows []Figure11Row }

// Figure11 reproduces Figure 11 over the Figure 8 variant sweep. The
// figure is one sweep spec — the default prefetcher plus every variant,
// crossed with the workload set — whose points, together with the DDR2
// single-core reference sweep, yield per-variant speedups; the "#CL=4
// (default)" variant shares the default's configuration and therefore its
// simulations.
func Figure11(r *Runner) (Figure11Data, error) {
	var d Figure11Data
	def := PrefetcherVariant{"default", 4, 64, config.FullAssoc}
	cfgs := append([]sweep.NamedConfig{{Name: def.Label, Config: def.apply()}},
		variantConfigs(Figure8Variants())...)
	pts, err := r.sweep("figure11", cfgs, r.opts.Workloads)
	if err != nil {
		return d, err
	}
	refs, err := r.refIPCAll(benchSet(r.opts.Workloads))
	if err != nil {
		return d, err
	}
	// speedup[config][workload] from the collected grid.
	byPoint := make(map[string]map[string]float64, len(cfgs))
	for _, p := range pts {
		if byPoint[p.Config] == nil {
			byPoint[p.Config] = map[string]float64{}
		}
		var w workload.Workload
		for _, cand := range r.opts.Workloads {
			if cand.Name == p.Workload {
				w = cand
				break
			}
		}
		ref := make([]float64, len(w.Benchmarks))
		for i, b := range w.Benchmarks {
			ref[i] = refs[b]
		}
		byPoint[p.Config][p.Workload] = workload.SMTSpeedup(p.Results.IPC, ref)
	}
	groupMean := func(label string, ws []workload.Workload) float64 {
		xs := make([]float64, len(ws))
		for i, w := range ws {
			xs[i] = byPoint[label][w.Name]
		}
		return mean(xs)
	}
	for _, g := range r.coreGroups() {
		baseAvg := groupMean(def.Label, g.Workloads)
		for _, v := range Figure8Variants() {
			d.Rows = append(d.Rows, Figure11Row{
				Cores: g.Cores, Variant: v, Normalized: groupMean(v.Label, g.Workloads) / baseAvg,
			})
		}
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure11Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 11  sensitivity (performance normalized to K=4, 64 entries, full assoc)\n")
	fmt.Fprintf(w, "%6s %-18s %10s\n", "cores", "variant", "norm perf")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %-18s %10.3f\n", row.Cores, row.Variant.Label, row.Normalized)
	}
}

// --------------------------------------------------------------- Figure 12

// Figure12Row compares prefetching combinations for one core count, all
// normalized to no prefetching at all.
type Figure12Row struct {
	Cores int
	AP    float64 // AMB prefetching only
	SP    float64 // software prefetching only
	APSP  float64 // both
}

// Figure12Data is the AP/SP complementarity study of Figure 12.
type Figure12Data struct{ Rows []Figure12Row }

// Figure12 reproduces Figure 12: relative speedups of AP, SP and AP+SP over
// a system with neither, averaged per core count.
func Figure12(r *Runner) (Figure12Data, error) {
	var d Figure12Data
	noneCfg := config.FBDIMMBaseline()
	noneCfg.CPU.SoftwarePrefetch = false
	apCfg := config.WithAMBPrefetch(config.Default())
	apCfg.CPU.SoftwarePrefetch = false
	spCfg := config.FBDIMMBaseline()
	bothCfg := config.WithAMBPrefetch(config.Default())

	for _, g := range r.coreGroups() {
		none, err := r.speedupAll(noneCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		ap, err := r.speedupAll(apCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		sp, err := r.speedupAll(spCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		both, err := r.speedupAll(bothCfg, g.Workloads)
		if err != nil {
			return d, err
		}
		base := mean(none)
		d.Rows = append(d.Rows, Figure12Row{
			Cores: g.Cores,
			AP:    mean(ap) / base,
			SP:    mean(sp) / base,
			APSP:  mean(both) / base,
		})
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure12Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 12  AP vs SP vs AP+SP (relative to no prefetching = 1.0)\n")
	fmt.Fprintf(w, "%6s %8s %8s %8s %22s\n", "cores", "AP", "SP", "AP+SP", "AP+SP vs (AP+SP-1)+1")
	for _, row := range d.Rows {
		additive := row.AP + row.SP - 1
		fmt.Fprintf(w, "%6d %8.3f %8.3f %8.3f %22.3f\n",
			row.Cores, row.AP, row.SP, row.APSP, additive)
	}
}

// --------------------------------------------------------------- Figure 13

// Figure13Row is the normalized DRAM dynamic energy of one prefetcher
// variant at one core count (values below 1.0 are savings).
type Figure13Row struct {
	Cores      int
	Variant    PrefetcherVariant
	PowerRatio float64
	// ACTRatio and ColRatio expose the mechanism: fewer activations,
	// more column accesses.
	ACTRatio float64
	ColRatio float64
}

// Figure13Data is the power study of Figure 13.
type Figure13Data struct{ Rows []Figure13Row }

// Figure13Variants is the power sweep: region sizes 2/4/8 plus the paper's
// recommended practical configuration (4-way, 64 entries, K=4).
func Figure13Variants() []PrefetcherVariant {
	return []PrefetcherVariant{
		{"#CL=2", 2, 64, config.FullAssoc},
		{"#CL=4", 4, 64, config.FullAssoc},
		{"#CL=8", 8, 64, config.FullAssoc},
		{"4-way/64/K=4", 4, 64, 4},
	}
}

// Figure13 reproduces Figure 13: DRAM dynamic energy per committed
// instruction of each AP variant, normalized to FB-DIMM without
// prefetching, using the Section 5.5 4:1 ACT-PRE:column weighting. The
// figure is one sweep spec — the FBD baseline plus the power variants,
// crossed with the workload set — aggregated per core group.
func Figure13(r *Runner) (Figure13Data, error) {
	var d Figure13Data
	const baseLabel = "FBD"
	cfgs := append([]sweep.NamedConfig{{Name: baseLabel, Config: config.FBDIMMBaseline()}},
		variantConfigs(Figure13Variants())...)
	pts, err := r.sweep("figure13", cfgs, r.opts.Workloads)
	if err != nil {
		return d, err
	}
	type agg struct{ energy, insts, act, col float64 }
	w := power.PaperWeights()
	// byGroup[config label][core count]
	byGroup := map[string]map[int]*agg{}
	for _, p := range pts {
		if byGroup[p.Config] == nil {
			byGroup[p.Config] = map[int]*agg{}
		}
		a := byGroup[p.Config][p.Results.Cores]
		if a == nil {
			a = &agg{}
			byGroup[p.Config][p.Results.Cores] = a
		}
		a.energy += power.Dynamic(p.Results.DRAM, w)
		a.insts += float64(sum(p.Results.Committed))
		a.act += float64(p.Results.DRAM.ACT)
		a.col += float64(p.Results.DRAM.Columns())
	}
	for _, g := range r.coreGroups() {
		base := byGroup[baseLabel][g.Cores]
		for _, v := range Figure13Variants() {
			a := byGroup[v.Label][g.Cores]
			d.Rows = append(d.Rows, Figure13Row{
				Cores:      g.Cores,
				Variant:    v,
				PowerRatio: (a.energy / a.insts) / (base.energy / base.insts),
				ACTRatio:   (a.act / a.insts) / (base.act / base.insts),
				ColRatio:   (a.col / a.insts) / (base.col / base.insts),
			})
		}
	}
	return d, nil
}

// Format writes the figure as a table.
func (d Figure13Data) Format(w io.Writer) {
	fmt.Fprintf(w, "Figure 13  DRAM dynamic energy per instruction, normalized to FBD\n")
	fmt.Fprintf(w, "%6s %-14s %8s %9s %9s %9s\n",
		"cores", "variant", "power", "saving%", "ACT", "columns")
	for _, row := range d.Rows {
		fmt.Fprintf(w, "%6d %-14s %8.3f %+9.1f %9.3f %9.3f\n",
			row.Cores, row.Variant.Label, row.PowerRatio, (1-row.PowerRatio)*100,
			row.ACTRatio, row.ColRatio)
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
