package exp

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"fbdsim/internal/config"
)

// parseCSV decodes the emitted bytes back into records so the tests check
// well-formedness, not just substrings.
func parseCSV(t *testing.T, b []byte) [][]string {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	return recs
}

func TestFigure4CSV(t *testing.T) {
	d := Figure4Data{Rows: []Figure4Row{
		{Workload: "4C-1", Cores: 4, DDR2: 2.5, FBD: 2.625},
		{Workload: "8C-1", Cores: 8, DDR2: 3, FBD: 3.18},
	}}
	var buf bytes.Buffer
	if err := d.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2 rows", len(recs))
	}
	if want := []string{"workload", "cores", "ddr2", "fbd"}; strings.Join(recs[0], ",") != strings.Join(want, ",") {
		t.Errorf("header = %v, want %v", recs[0], want)
	}
	if got := recs[1]; got[0] != "4C-1" || got[1] != "4" || got[2] != "2.500" || got[3] != "2.625" {
		t.Errorf("row 1 = %v", got)
	}
}

func TestFigure8CSVVariantFields(t *testing.T) {
	d := Figure8Data{Rows: []Figure8Row{
		{
			Variant:    PrefetcherVariant{Label: "#CL=4 (default)", RegionLines: 4, Entries: 64, Assoc: config.FullAssoc},
			Coverage:   0.42,
			Efficiency: 0.61,
		},
	}}
	var buf bytes.Buffer
	if err := d.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	row := recs[1]
	// The label contains a comma-free parenthesis but is still one field.
	if row[0] != "#CL=4 (default)" || row[1] != "4" || row[2] != "64" {
		t.Errorf("variant columns = %v", row)
	}
	if row[4] != "0.420" || row[5] != "0.610" {
		t.Errorf("metric columns = %v", row)
	}
}

func TestExtensionCSVHeaders(t *testing.T) {
	var buf bytes.Buffer
	e1 := E1Data{Rows: []E1Row{{Cores: 2, AP: 1.1, HP: 1.05, APHP: 1.15}}}
	if err := e1.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if strings.Join(recs[0], ",") != "cores,ap,hp,ap_hp" {
		t.Errorf("E1 header = %v", recs[0])
	}
	if recs[1][3] != "1.150" {
		t.Errorf("E1 row = %v", recs[1])
	}
}

// errWriter fails after n bytes so the CSV writers' error paths run.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestCSVPropagatesWriteErrors(t *testing.T) {
	d := Figure4Data{Rows: []Figure4Row{{Workload: "1C", Cores: 1, DDR2: 1, FBD: 1}}}
	if err := d.CSV(&errWriter{}); err == nil {
		t.Error("failing writer must surface an error")
	}
	// Fail mid-stream too, after the header went through.
	if err := d.CSV(&errWriter{n: 10}); err == nil {
		t.Error("mid-stream write failure must surface an error")
	}
}
