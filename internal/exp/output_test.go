package exp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// formatterT, plotterT and csverT mirror the cmd/paperexp adapters.
type formatterT interface{ Format(w io.Writer) }
type plotterT interface{ Plot(w io.Writer) }
type csverT interface{ CSV(w io.Writer) error }

// TestEveryFigureOutputSurface runs every experiment once on a tiny budget
// and pushes the result through all its output formats: Format always,
// Plot and CSV where implemented. Everything must produce non-trivial,
// well-formed output.
func TestEveryFigureOutputSurface(t *testing.T) {
	skipIfShort(t)
	r := NewRunner(Options{
		MaxInsts:    40_000,
		WarmupInsts: 5_000,
		Workloads:   QuickWorkloads()[:3], // swim, vpr, 2C-1
	})

	figures := []struct {
		name string
		run  func() (formatterT, error)
	}{
		{"Figure4", func() (formatterT, error) { d, err := Figure4(r); return d, err }},
		{"Figure5", func() (formatterT, error) { d, err := Figure5(r); return d, err }},
		{"Figure6", func() (formatterT, error) { d, err := Figure6(r); return d, err }},
		{"Figure7", func() (formatterT, error) { d, err := Figure7(r); return d, err }},
		{"Figure8", func() (formatterT, error) { d, err := Figure8(r); return d, err }},
		{"Figure9", func() (formatterT, error) { d, err := Figure9(r); return d, err }},
		{"Figure10", func() (formatterT, error) { d, err := Figure10(r); return d, err }},
		{"Figure11", func() (formatterT, error) { d, err := Figure11(r); return d, err }},
		{"Figure12", func() (formatterT, error) { d, err := Figure12(r); return d, err }},
		{"Figure13", func() (formatterT, error) { d, err := Figure13(r); return d, err }},
		{"E1", func() (formatterT, error) { d, err := ExtensionHWPrefetch(r); return d, err }},
		{"E2", func() (formatterT, error) { d, err := ExtensionRefresh(r); return d, err }},
		{"E3", func() (formatterT, error) { d, err := ExtensionPermutation(r); return d, err }},
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			d, err := fig.run()
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			d.Format(&out)
			if out.Len() < 40 || strings.Count(out.String(), "\n") < 2 {
				t.Errorf("Format output too small:\n%s", out.String())
			}
			if p, ok := d.(plotterT); ok {
				var plot bytes.Buffer
				p.Plot(&plot)
				if plot.Len() < 40 {
					t.Errorf("Plot output too small:\n%s", plot.String())
				}
			}
			if c, ok := d.(csverT); ok {
				var csvOut bytes.Buffer
				if err := c.CSV(&csvOut); err != nil {
					t.Fatalf("CSV: %v", err)
				}
				lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
				if len(lines) < 2 {
					t.Fatalf("CSV has no data rows:\n%s", csvOut.String())
				}
				cols := strings.Count(lines[0], ",")
				for i, line := range lines {
					if strings.Count(line, ",") != cols {
						t.Errorf("CSV row %d has inconsistent columns: %q", i, line)
					}
				}
			}
		})
	}
}

// TestFigure6ChannelMonotonicity: more channels never hurt, at any rate.
func TestFigure6ChannelMonotonicity(t *testing.T) {
	skipIfShort(t)
	r := NewRunner(Options{
		MaxInsts:    40_000,
		WarmupInsts: 5_000,
		Workloads:   QuickWorkloads()[:3],
	})
	d, err := Figure6(r)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ cores, rate int }
	byCh := map[key]map[int]float64{}
	for _, row := range d.Rows {
		k := key{row.Cores, row.RateMTs}
		if byCh[k] == nil {
			byCh[k] = map[int]float64{}
		}
		byCh[k][row.Channels] = row.FBD
	}
	for k, m := range byCh {
		// Allow small noise: 4 channels must at least match 1 channel.
		if m[4] < m[1]*0.98 {
			t.Errorf("%+v: 4 channels (%.3f) slower than 1 (%.3f)", k, m[4], m[1])
		}
	}
}

// TestFigure10EveryWorkloadImproves: the Figure 10 claim, on the quick set.
func TestFigure10EveryWorkloadImproves(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := Figure10(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range d.Rows {
		if row.APLat >= row.FBDLat {
			t.Errorf("%s: AP latency %.1f not below FBD %.1f", row.Workload, row.APLat, row.FBDLat)
		}
		if row.APBW < row.FBDBW*0.98 {
			t.Errorf("%s: AP bandwidth %.2f below FBD %.2f", row.Workload, row.APBW, row.FBDBW)
		}
	}
}
