// Package exp regenerates every table and figure of the paper's evaluation
// (Section 5). Each FigureN function sweeps the configurations that figure
// varies, runs the workloads of Table 3 through the full simulator, and
// returns rows shaped like the paper's plots. A Runner memoizes simulation
// results so that figures sharing configurations (e.g. the FBD baseline
// appears in Figures 4, 7, 9, 10, 12 and 13) pay for each run once, and
// executes independent runs in parallel.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/stats"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// clockRate converts an MT/s integer into the clock.DataRate type,
// validating it is supported.
func clockRate(mts int) clock.DataRate {
	r := clock.DataRate(mts)
	if !r.Valid() {
		panic(fmt.Sprintf("exp: unsupported data rate %d", mts))
	}
	return r
}

// Options bound the simulation effort of a whole experiment suite.
type Options struct {
	// MaxInsts / WarmupInsts override the per-run instruction budgets
	// (defaults: 300k measured after 40k warmup — small enough to sweep
	// every figure quickly, large enough for stable averages).
	MaxInsts    int64
	WarmupInsts int64
	// Seed drives trace generation.
	Seed int64
	// Parallel caps concurrently running simulations (default: GOMAXPROCS).
	Parallel int
	// Workloads restricts the workload set (default: the full paper set —
	// twelve single-program runs plus the fifteen Table 3 mixes).
	Workloads []workload.Workload
}

func (o Options) norm() Options {
	if o.MaxInsts <= 0 {
		o.MaxInsts = 300_000
	}
	if o.WarmupInsts < 0 {
		o.WarmupInsts = 0
	} else if o.WarmupInsts == 0 {
		o.WarmupInsts = 40_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Workloads == nil {
		o.Workloads = workload.All()
	}
	return o
}

// QuickWorkloads is a reduced set (one mix per core count) for smoke runs
// and benchmarks.
func QuickWorkloads() []workload.Workload {
	ws := []workload.Workload{
		{Name: "1C-swim", Benchmarks: []string{"swim"}},
		{Name: "1C-vpr", Benchmarks: []string{"vpr"}},
	}
	for _, name := range []string{"2C-1", "4C-1", "8C-1"} {
		w, err := workload.Lookup(name)
		if err != nil {
			panic(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// Runner executes and memoizes simulations.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[string]*cacheEntry
	sem   chan struct{}

	// Cache accounting (see Summary): misses are actual simulations,
	// hits are requests served from (or coalesced onto) a prior run.
	hits     stats.Counter
	misses   stats.Counter
	simNanos atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  system.Results
	err  error
}

// NewRunner builds a Runner with the given options.
func NewRunner(opts Options) *Runner {
	o := opts.norm()
	return &Runner{
		opts:  o,
		cache: make(map[string]*cacheEntry),
		sem:   make(chan struct{}, o.Parallel),
	}
}

// Options returns the normalized options in effect.
func (r *Runner) Options() Options { return r.opts }

// Run simulates cfg on the benchmark mix, memoized. The Runner's
// instruction budgets and seed override the config's.
func (r *Runner) Run(cfg config.Config, benchmarks []string) (system.Results, error) {
	return r.RunContext(context.Background(), cfg, benchmarks)
}

// RunContext is Run with cancellation. Cancelling ctx stops an in-flight
// simulation at cycle-batch granularity (see system.RunContext). A
// cancelled run is evicted from the memo cache so a later request with the
// same configuration re-simulates instead of replaying the context error;
// concurrent waiters coalesced onto a cancelled run observe its error.
func (r *Runner) RunContext(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
	cfg.MaxInsts = r.opts.MaxInsts
	cfg.WarmupInsts = r.opts.WarmupInsts
	cfg.Seed = r.opts.Seed
	key := fmt.Sprintf("%#v|%v", cfg, benchmarks)

	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
		r.misses.Inc()
	} else {
		r.hits.Inc()
	}
	r.mu.Unlock()

	e.once.Do(func() {
		select {
		case r.sem <- struct{}{}:
		case <-ctx.Done():
			e.err = ctx.Err()
			return
		}
		defer func() { <-r.sem }()
		start := time.Now()
		e.res, e.err = system.RunWorkloadContext(ctx, cfg, benchmarks)
		r.simNanos.Add(time.Since(start).Nanoseconds())
	})
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		r.mu.Lock()
		if r.cache[key] == e {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	}
	return e.res, e.err
}

// Summary reports the Runner's cumulative cache accounting.
type Summary struct {
	// Simulations is the number of distinct configurations actually
	// simulated (memo-cache misses).
	Simulations int64
	// CacheHits is the number of requests served from — or coalesced
	// onto — an existing run.
	CacheHits int64
	// SimWall is total wall-clock time spent inside the simulator,
	// summed across parallel runs.
	SimWall time.Duration
}

// Summary returns the Runner's cache accounting so far.
func (r *Runner) Summary() Summary {
	return Summary{
		Simulations: r.misses.Value(),
		CacheHits:   r.hits.Value(),
		SimWall:     time.Duration(r.simNanos.Load()),
	}
}

// LogSummary writes a one-line sweep-cost report, the line cmd/paperexp
// prints at suite end.
func (r *Runner) LogSummary(w io.Writer) {
	s := r.Summary()
	fmt.Fprintf(w, "runner: %d simulations, %d cache hits, %.1fs simulated wall time\n",
		s.Simulations, s.CacheHits, s.SimWall.Seconds())
}

// job is one parallel simulation request.
type job struct {
	cfg        config.Config
	benchmarks []string
}

// batch runs all jobs concurrently (bounded by Parallel) and returns their
// results in order.
func (r *Runner) batch(jobs []job) ([]system.Results, error) {
	results := make([]system.Results, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(jobs[i].cfg, jobs[i].benchmarks)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// refIPC returns each benchmark's single-core IPC on the reference system
// (single-threaded execution with two-channel DDR2, the paper's SMT-speedup
// denominator).
func (r *Runner) refIPC(benchmarks []string) ([]float64, error) {
	ref := config.DDR2Baseline()
	jobs := make([]job, len(benchmarks))
	for i, b := range benchmarks {
		jobs[i] = job{cfg: ref, benchmarks: []string{b}}
	}
	results, err := r.batch(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(benchmarks))
	for i, res := range results {
		out[i] = res.IPC[0]
	}
	return out, nil
}

// Speedup runs cfg on w and returns the SMT speedup against the DDR2
// single-core reference.
func (r *Runner) Speedup(cfg config.Config, w workload.Workload) (float64, error) {
	res, err := r.Run(cfg, w.Benchmarks)
	if err != nil {
		return 0, err
	}
	ref, err := r.refIPC(w.Benchmarks)
	if err != nil {
		return 0, err
	}
	return workload.SMTSpeedup(res.IPC, ref), nil
}

// speedupAll computes SMT speedups of cfg across ws, warming the per-run
// cache in parallel first.
func (r *Runner) speedupAll(cfg config.Config, ws []workload.Workload) ([]float64, error) {
	jobs := make([]job, 0, len(ws)*2)
	for _, w := range ws {
		jobs = append(jobs, job{cfg: cfg, benchmarks: w.Benchmarks})
		for _, b := range w.Benchmarks {
			jobs = append(jobs, job{cfg: config.DDR2Baseline(), benchmarks: []string{b}})
		}
	}
	if _, err := r.batch(jobs); err != nil {
		return nil, err
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		s, err := r.Speedup(cfg, w)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// coreGroups partitions the options' workload set by core count, in
// presentation order (1, 2, 4, 8), skipping empty groups.
func (r *Runner) coreGroups() []coreGroup {
	var groups []coreGroup
	for _, n := range []int{1, 2, 4, 8} {
		ws := workload.ByCores(r.opts.Workloads, n)
		if len(ws) > 0 {
			groups = append(groups, coreGroup{Cores: n, Workloads: ws})
		}
	}
	return groups
}

type coreGroup struct {
	Cores     int
	Workloads []workload.Workload
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
