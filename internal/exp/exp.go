// Package exp regenerates every table and figure of the paper's evaluation
// (Section 5). Each FigureN function declares the grid of configurations ×
// workloads that figure varies as a sweep spec and executes it through the
// internal/sweep engine: bounded parallelism, single-flight result
// caching shared across figures (the FBD baseline appears in Figures 4, 7,
// 9, 10, 12 and 13 but simulates once), and — when Options.Journal is set —
// per-sweep checkpoint journals so an interrupted suite resumes without
// recomputing completed points.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/fidelity"
	"fbdsim/internal/stats"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// ErrAborted is returned by sweeps cut short by Options.AbortAfterPoints —
// the deterministic mid-run kill used by the resume tests and the CI smoke
// step. A journaled suite re-run without the limit completes from where it
// stopped.
var ErrAborted = errors.New("exp: aborted after AbortAfterPoints simulations")

// clockRate converts an MT/s integer into the clock.DataRate type,
// validating it is supported.
func clockRate(mts int) clock.DataRate {
	r := clock.DataRate(mts)
	if !r.Valid() {
		panic(fmt.Sprintf("exp: unsupported data rate %d", mts))
	}
	return r
}

// Options bound the simulation effort of a whole experiment suite.
type Options struct {
	// MaxInsts / WarmupInsts override the per-run instruction budgets
	// (defaults: 300k measured after 40k warmup — small enough to sweep
	// every figure quickly, large enough for stable averages).
	MaxInsts    int64
	WarmupInsts int64
	// Seed drives trace generation.
	Seed int64
	// Parallel caps concurrently running simulations (default: GOMAXPROCS;
	// negative values are rejected by Validate).
	Parallel int
	// Workloads restricts the workload set (default: the full paper set —
	// twelve single-program runs plus the fifteen Table 3 mixes).
	Workloads []workload.Workload
	// Journal names a directory for sweep checkpoint journals. When set,
	// every figure sweep writes completed points to
	// <Journal>/<name>-<fingerprint>.ndjson and resumes from it on the
	// next run of the same grid. Empty disables checkpointing.
	Journal string
	// AbortAfterPoints, when positive, cancels the suite once that many
	// fresh simulations have completed — a deterministic kill switch for
	// exercising journal resume (sweeps then fail with ErrAborted).
	AbortAfterPoints int
	// Fidelity selects the simulation tier for every run in the suite:
	// "cycle-accurate" (default), "sampled", or "analytic". Estimate tiers
	// key the shared cache and journal fingerprints with a tier prefix, so
	// a triage pass never pollutes cycle-accurate results.
	Fidelity string
}

// Validate rejects option values that a front door (flag parsing, request
// decoding) should refuse rather than silently normalize.
func (o Options) Validate() error {
	if o.Parallel < 0 {
		return fmt.Errorf("exp: negative parallelism %d", o.Parallel)
	}
	if o.MaxInsts < 0 {
		return fmt.Errorf("exp: negative instruction budget %d", o.MaxInsts)
	}
	if o.AbortAfterPoints < 0 {
		return fmt.Errorf("exp: negative AbortAfterPoints %d", o.AbortAfterPoints)
	}
	if _, err := fidelity.Parse(o.Fidelity); err != nil {
		return fmt.Errorf("exp: %v", err)
	}
	return nil
}

func (o Options) norm() Options {
	if o.MaxInsts <= 0 {
		o.MaxInsts = 300_000
	}
	if o.WarmupInsts < 0 {
		o.WarmupInsts = 0
	} else if o.WarmupInsts == 0 {
		o.WarmupInsts = 40_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Workloads == nil {
		o.Workloads = workload.All()
	}
	// Normalize so that "cycle-accurate" and "" key caches identically.
	if t, err := fidelity.Parse(o.Fidelity); err == nil {
		if t == fidelity.CycleAccurate {
			o.Fidelity = ""
		} else {
			o.Fidelity = string(t)
		}
	}
	return o
}

// QuickWorkloads is a reduced set (one mix per core count) for smoke runs
// and benchmarks.
func QuickWorkloads() []workload.Workload {
	ws := []workload.Workload{
		{Name: "1C-swim", Benchmarks: []string{"swim"}},
		{Name: "1C-vpr", Benchmarks: []string{"vpr"}},
	}
	for _, name := range []string{"2C-1", "4C-1", "8C-1"} {
		w, err := workload.Lookup(name)
		if err != nil {
			panic(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// Runner executes simulations through the sweep engine's single-flight
// cache: identical requests — within a figure, across figures, or across a
// figure sweep and a direct Run call — simulate once.
type Runner struct {
	opts  Options
	cache *sweep.Cache
	sem   chan struct{}

	// Cache accounting (see Summary): misses are actual simulations,
	// hits are requests served from (or coalesced onto) a prior run.
	hits     stats.Counter
	misses   stats.Counter
	simNanos atomic.Int64

	// abortCtx is cancelled once AbortAfterPoints simulations complete;
	// without the option it never fires.
	abortCtx    context.Context
	abortCancel context.CancelFunc
}

// NewRunner builds a Runner with the given options. Invalid option values
// (see Options.Validate) are a programmer error and panic; front doors
// call Validate first and report a usage error instead.
func NewRunner(opts Options) *Runner {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	o := opts.norm()
	r := &Runner{
		opts:  o,
		cache: sweep.NewCache(0),
		sem:   make(chan struct{}, o.Parallel),
	}
	r.abortCtx, r.abortCancel = context.WithCancel(context.Background())
	return r
}

// Options returns the normalized options in effect.
func (r *Runner) Options() Options { return r.opts }

// normalize applies the Runner's budget/seed overrides and the core-count
// convention (CPU.Cores = len(benchmarks)) so that every path — direct
// Run, figure sweep, journal replay — keys the cache identically.
func (r *Runner) normalize(cfg config.Config, cores int) config.Config {
	cfg.MaxInsts = r.opts.MaxInsts
	cfg.WarmupInsts = r.opts.WarmupInsts
	cfg.Seed = r.opts.Seed
	cfg.CPU.Cores = cores
	return cfg
}

// measured runs one simulation behind the global parallelism bound, with
// wall-time and miss accounting and the AbortAfterPoints kill switch. It is
// the shared backend of simulate (cycle-accurate) and simulateTier.
func (r *Runner) measured(ctx context.Context, run func() (system.Results, error)) (system.Results, error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return system.Results{}, ctx.Err()
	}
	defer func() { <-r.sem }()
	start := time.Now()
	res, err := run()
	r.simNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return res, err
	}
	r.misses.Inc()
	if n := r.opts.AbortAfterPoints; n > 0 && r.misses.Value() >= int64(n) {
		r.abortCancel()
	}
	return res, nil
}

// simulate is the Runner's sweep.RunFunc: the cycle-accurate simulator.
func (r *Runner) simulate(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
	return r.measured(ctx, func() (system.Results, error) {
		return system.RunWorkloadContext(ctx, cfg, benchmarks)
	})
}

// simulateTier is the Runner's sweep.TierRunFunc: the same accounting, but
// dispatching through the requested fidelity tier.
func (r *Runner) simulateTier(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error) {
	return r.measured(ctx, func() (system.Results, error) {
		return fidelity.Run(ctx, fidelity.Tier(tier), cfg, benchmarks)
	})
}

// Run simulates cfg on the benchmark mix, memoized. The Runner's
// instruction budgets and seed override the config's.
func (r *Runner) Run(cfg config.Config, benchmarks []string) (system.Results, error) {
	return r.RunContext(r.abortCtx, cfg, benchmarks)
}

// RunContext is Run with cancellation. Cancelling ctx stops an in-flight
// simulation at cycle-batch granularity (see system.RunContext). Errors —
// including cancellation — are never cached, so a later request with the
// same configuration re-simulates instead of replaying the error;
// concurrent waiters coalesced onto a cancelled run observe its error.
func (r *Runner) RunContext(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
	cfg = r.normalize(cfg, len(benchmarks))
	key := fidelity.Key(fidelity.Tier(r.opts.Fidelity), cfg, benchmarks)
	res, hit, err := r.cache.Do(ctx, key, func() (system.Results, error) {
		if r.opts.Fidelity != "" {
			return r.simulateTier(ctx, r.opts.Fidelity, cfg, benchmarks)
		}
		return r.simulate(ctx, cfg, benchmarks)
	})
	if hit {
		r.hits.Inc()
	}
	return res, err
}

// sweep executes a named grid through the sweep engine against the
// Runner's shared cache and returns the points in grid order. With
// Options.Journal set the sweep checkpoints to (and resumes from) a
// journal file keyed by the spec fingerprint. The first failing point
// aborts with its error; an AbortAfterPoints cut returns ErrAborted.
func (r *Runner) sweep(name string, cfgs []sweep.NamedConfig, ws []workload.Workload) ([]sweep.Point, error) {
	spec := sweep.Spec{
		Name:        name,
		Configs:     cfgs,
		Workloads:   ws,
		Seeds:       []int64{r.opts.Seed},
		MaxInsts:    r.opts.MaxInsts,
		WarmupInsts: r.opts.WarmupInsts,
		Parallel:    r.opts.Parallel,
		Fidelity:    r.opts.Fidelity,
	}
	if r.opts.Journal != "" {
		spec.Journal = filepath.Join(r.opts.Journal,
			fmt.Sprintf("%s-%.12s.ndjson", name, spec.Fingerprint()))
	}
	eng, err := sweep.New(spec, sweep.Options{Run: r.simulate, RunTier: r.simulateTier, Cache: r.cache})
	if err != nil {
		return nil, err
	}
	ch, err := eng.Start(r.abortCtx)
	if err != nil {
		return nil, err
	}
	pts := sweep.Collect(ch)
	r.hits.Add(int64(eng.Progress().CacheHits))
	for _, p := range pts {
		if p.Err != "" {
			return pts, fmt.Errorf("exp: sweep %s point %s/%s: %s", name, p.Config, p.Workload, p.Err)
		}
	}
	if len(pts) < eng.Total() {
		if r.abortCtx.Err() != nil {
			return pts, ErrAborted
		}
		return pts, fmt.Errorf("exp: sweep %s incomplete: %d of %d points", name, len(pts), eng.Total())
	}
	return pts, nil
}

// Summary reports the Runner's cumulative cache accounting.
type Summary struct {
	// Simulations is the number of distinct configurations actually
	// simulated (memo-cache misses).
	Simulations int64
	// CacheHits is the number of requests served from — or coalesced
	// onto — an existing run.
	CacheHits int64
	// SimWall is total wall-clock time spent inside the simulator,
	// summed across parallel runs.
	SimWall time.Duration
}

// Summary returns the Runner's cache accounting so far.
func (r *Runner) Summary() Summary {
	return Summary{
		Simulations: r.misses.Value(),
		CacheHits:   r.hits.Value(),
		SimWall:     time.Duration(r.simNanos.Load()),
	}
}

// LogSummary writes a one-line sweep-cost report, the line cmd/paperexp
// prints at suite end.
func (r *Runner) LogSummary(w io.Writer) {
	s := r.Summary()
	fmt.Fprintf(w, "runner: %d simulations, %d cache hits, %.1fs simulated wall time\n",
		s.Simulations, s.CacheHits, s.SimWall.Seconds())
}

// benchSet returns the sorted distinct benchmarks of ws.
func benchSet(ws []workload.Workload) []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range ws {
		for _, b := range w.Benchmarks {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	sort.Strings(out)
	return out
}

// refIPCAll sweeps the DDR2 single-core reference over benchmarks and
// returns each benchmark's IPC (the paper's SMT-speedup denominator).
func (r *Runner) refIPCAll(benchmarks []string) (map[string]float64, error) {
	ws := make([]workload.Workload, len(benchmarks))
	for i, b := range benchmarks {
		ws[i] = workload.Workload{Name: b, Benchmarks: []string{b}}
	}
	pts, err := r.sweep("ddr2-ref", []sweep.NamedConfig{
		{Name: "ddr2", Config: config.DDR2Baseline()},
	}, ws)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(pts))
	for _, p := range pts {
		out[p.Workload] = p.Results.IPC[0]
	}
	return out, nil
}

// refIPC returns each benchmark's single-core IPC on the reference system.
func (r *Runner) refIPC(benchmarks []string) ([]float64, error) {
	distinct := append([]string(nil), benchmarks...)
	sort.Strings(distinct)
	distinct = slices.Compact(distinct)
	m, err := r.refIPCAll(distinct)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(benchmarks))
	for i, b := range benchmarks {
		out[i] = m[b]
	}
	return out, nil
}

// Speedup runs cfg on w and returns the SMT speedup against the DDR2
// single-core reference.
func (r *Runner) Speedup(cfg config.Config, w workload.Workload) (float64, error) {
	res, err := r.Run(cfg, w.Benchmarks)
	if err != nil {
		return 0, err
	}
	ref, err := r.refIPC(w.Benchmarks)
	if err != nil {
		return 0, err
	}
	return workload.SMTSpeedup(res.IPC, ref), nil
}

// speedupAll computes SMT speedups of cfg across ws: one sweep over
// cfg × ws plus the DDR2 reference sweep, both through the shared cache.
func (r *Runner) speedupAll(cfg config.Config, ws []workload.Workload) ([]float64, error) {
	pts, err := r.sweep("speedup", []sweep.NamedConfig{{Name: "cfg", Config: cfg}}, ws)
	if err != nil {
		return nil, err
	}
	refs, err := r.refIPCAll(benchSet(ws))
	if err != nil {
		return nil, err
	}
	byName := make(map[string]system.Results, len(pts))
	for _, p := range pts {
		byName[p.Workload] = p.Results
	}
	out := make([]float64, len(ws))
	for i, w := range ws {
		ref := make([]float64, len(w.Benchmarks))
		for k, b := range w.Benchmarks {
			ref[k] = refs[b]
		}
		out[i] = workload.SMTSpeedup(byName[w.Name].IPC, ref)
	}
	return out, nil
}

// coreGroups partitions the options' workload set by core count, in
// presentation order (1, 2, 4, 8), skipping empty groups.
func (r *Runner) coreGroups() []coreGroup {
	var groups []coreGroup
	for _, n := range []int{1, 2, 4, 8} {
		ws := workload.ByCores(r.opts.Workloads, n)
		if len(ws) > 0 {
			groups = append(groups, coreGroup{Cores: n, Workloads: ws})
		}
	}
	return groups
}

type coreGroup struct {
	Cores     int
	Workloads []workload.Workload
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
