package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestExtensionHWPrefetchShape: hardware prefetching helps alone and
// composes with AMB prefetching; its benefit shrinks as channel contention
// rises (the paper's argument for prefetching below the channel).
func TestExtensionHWPrefetchShape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := ExtensionHWPrefetch(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	byCores := map[int]E1Row{}
	for _, row := range d.Rows {
		byCores[row.Cores] = row
		if row.AP < 0.98 {
			t.Errorf("@%d cores AP arm lost to no prefetching: %.3f", row.Cores, row.AP)
		}
		if row.HP < 0.95 {
			t.Errorf("@%d cores HP arm badly lost to no prefetching: %.3f", row.Cores, row.HP)
		}
		if row.APHP < row.AP*0.97 {
			t.Errorf("@%d cores AP+HP %.3f far below AP alone %.3f", row.Cores, row.APHP, row.AP)
		}
	}
	// HP's relative benefit must decay from 1 core to 8 cores (it spends
	// channel bandwidth that contention makes precious).
	if one, ok1 := byCores[1]; ok1 {
		if eight, ok8 := byCores[8]; ok8 && eight.HP > one.HP {
			t.Errorf("HP benefit should shrink with cores: %.3f @1C vs %.3f @8C", one.HP, eight.HP)
		}
	}
	var buf bytes.Buffer
	d.Format(&buf)
	if !strings.Contains(buf.String(), "AP+HP") {
		t.Error("Format output malformed")
	}
}

// TestExtensionRefreshShape: refresh costs a few percent at most and never
// flips the AP-vs-FBD comparison.
func TestExtensionRefreshShape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := ExtensionRefresh(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.CostPct > 8 || row.CostPct < -8 {
			t.Errorf("@%d cores %s: refresh cost %.2f%% implausible (duty cycle is 1.6%%)",
				row.Cores, row.System, row.CostPct)
		}
	}
	var buf bytes.Buffer
	d.Format(&buf)
	if !strings.Contains(buf.String(), "tREFI") {
		t.Error("Format output malformed")
	}
}

// TestExtensionPermutationShape: AMB prefetching cuts conflicts far below
// either baseline; every system keeps a sane speedup.
func TestExtensionPermutationShape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := ExtensionPermutation(r)
	if err != nil {
		t.Fatal(err)
	}
	conflicts := map[string]float64{}
	for _, row := range d.Rows {
		if row.Speedup <= 0 {
			t.Errorf("%s @%dC: degenerate speedup", row.System, row.Cores)
		}
		conflicts[row.System] += row.ConflictsPerKRead
	}
	if conflicts["FBD-AP"] >= conflicts["FBD"] {
		t.Errorf("AP should cut conflicts: %.0f vs %.0f", conflicts["FBD-AP"], conflicts["FBD"])
	}
	if _, ok := conflicts["FBD-open+perm"]; !ok {
		t.Error("open-page permutation arm missing")
	}
}

// TestExtensionSeedSensitivity: across seeds the headline gain stays
// positive at every core count (the paper's "no negative speedup" claim
// is not a lucky draw).
func TestExtensionSeedSensitivity(t *testing.T) {
	skipIfShort(t)
	r := NewRunner(Options{
		MaxInsts:    40_000,
		WarmupInsts: 5_000,
		Workloads:   QuickWorkloads()[:3],
	})
	d, err := ExtensionSeedSensitivity(r, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range d.Rows {
		if row.MinPct > row.MeanPct || row.MeanPct > row.MaxPct {
			t.Errorf("@%dC: min/mean/max out of order: %+v", row.Cores, row)
		}
		if row.MinPct < 0 {
			t.Errorf("@%dC: a seed produced a negative average gain (%.1f%%)", row.Cores, row.MinPct)
		}
	}
}

// TestExtensionDDR3Shape: DDR3 beats DDR2 device bandwidth, and the AMB
// prefetching gain survives the generation change.
func TestExtensionDDR3Shape(t *testing.T) {
	skipIfShort(t)
	r := testRunner()
	d, err := ExtensionDDR3(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		if row.FBD3 < row.FBD2*0.95 {
			t.Errorf("@%dC: DDR3 baseline (%.3f) clearly below DDR2 (%.3f)",
				row.Cores, row.FBD3, row.FBD2)
		}
		if row.APGain3Pct <= 0 {
			t.Errorf("@%dC: AMB prefetching gain vanished on DDR3 (%.1f%%)",
				row.Cores, row.APGain3Pct)
		}
	}
}
