package fault

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

func enabled(seed int64) config.Fault {
	return config.Fault{
		Enabled:          true,
		Seed:             seed,
		SouthErrorRate:   0.1,
		NorthErrorRate:   0.1,
		AMBSoftErrorRate: 0.1,
		DegradedDIMM:     -1,
		DeadBank:         -1,
	}
}

func TestFromConfigDisabled(t *testing.T) {
	if in := FromConfig(config.Fault{}); in != nil {
		t.Fatalf("disabled config must produce a nil injector, got %+v", in)
	}
}

// TestNilSafety: every method of a nil injector is a no-op, the contract
// the pipeline's zero-overhead seam relies on.
func TestNilSafety(t *testing.T) {
	var in *Injector
	if in.FrameError(SouthFrame) || in.FrameError(NorthFrame) || in.AMBSoftError() {
		t.Error("nil injector must never fault")
	}
	in.NoteRetry(10)
	in.NoteRemap()
	if ch, dimm, factor, dead := in.Degraded(); ch != 0 || dimm != -1 || factor != 1 || dead != -1 {
		t.Errorf("nil Degraded() = (%d, %d, %d, %d), want (0, -1, 1, -1)", ch, dimm, factor, dead)
	}
}

// TestDeterminism: two injectors with the same seed produce identical fault
// sequences; a different seed produces a different one.
func TestDeterminism(t *testing.T) {
	const n = 4096
	seq := func(seed int64) []bool {
		in := FromConfig(enabled(seed))
		out := make([]bool, 0, 3*n)
		for i := 0; i < n; i++ {
			out = append(out, in.FrameError(SouthFrame), in.FrameError(NorthFrame), in.AMBSoftError())
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical fault sequence")
	}
}

// TestClassStreamIndependence: enabling or disabling one class must not
// shift another class's stream — the property that makes single-class
// sweeps comparable.
func TestClassStreamIndependence(t *testing.T) {
	const n = 2048
	north := func(fc config.Fault) []bool {
		in := FromConfig(fc)
		out := make([]bool, n)
		for i := range out {
			// Interleave south draws to prove they cannot perturb north.
			in.FrameError(SouthFrame)
			out[i] = in.FrameError(NorthFrame)
		}
		return out
	}
	both := enabled(3)
	onlyNorth := enabled(3)
	onlyNorth.SouthErrorRate = 0
	a, b := north(both), north(onlyNorth)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("north stream shifted by the south rate at draw %d", i)
		}
	}
}

func TestRates(t *testing.T) {
	fc := enabled(1)
	fc.SouthErrorRate, fc.NorthErrorRate, fc.AMBSoftErrorRate = 0, 1, 0.5
	in := FromConfig(fc)
	const n = 10000
	fired := 0
	for i := 0; i < n; i++ {
		if in.FrameError(SouthFrame) {
			t.Fatal("rate-0 class fired")
		}
		if !in.FrameError(NorthFrame) {
			t.Fatal("rate-1 class failed to fire")
		}
		if in.AMBSoftError() {
			fired++
		}
	}
	if frac := float64(fired) / n; frac < 0.45 || frac > 0.55 {
		t.Errorf("rate-0.5 class fired %.3f of draws, want ~0.5", frac)
	}
	if in.Counters.NorthFrameErrors != n {
		t.Errorf("NorthFrameErrors = %d, want %d", in.Counters.NorthFrameErrors, n)
	}
	if in.Counters.AMBSoftErrors != int64(fired) {
		t.Errorf("AMBSoftErrors = %d, want %d", in.Counters.AMBSoftErrors, fired)
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{SouthFrameErrors: 10, NorthFrameErrors: 8, Retries: 18,
		RetryLatency: 1000 * clock.Nanosecond, AMBSoftErrors: 3, Remapped: 5}
	w := Counters{SouthFrameErrors: 4, NorthFrameErrors: 2, Retries: 6,
		RetryLatency: 300 * clock.Nanosecond, AMBSoftErrors: 1, Remapped: 2}
	d := a.Sub(w)
	want := Counters{SouthFrameErrors: 6, NorthFrameErrors: 6, Retries: 12,
		RetryLatency: 700 * clock.Nanosecond, AMBSoftErrors: 2, Remapped: 3}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
	if d.LinkErrors() != 12 {
		t.Errorf("LinkErrors = %d, want 12", d.LinkErrors())
	}
	if got := d.AvgRetryDelayNS(); got != 700.0/12 {
		t.Errorf("AvgRetryDelayNS = %v, want %v", got, 700.0/12)
	}
}

func TestRetrySettingsDefaults(t *testing.T) {
	in := FromConfig(enabled(1))
	if in.RetryDelay() != 60*clock.Nanosecond {
		t.Errorf("default retry delay = %v, want 60ns", in.RetryDelay())
	}
	if in.MaxRetries() != 8 {
		t.Errorf("default max retries = %d, want 8", in.MaxRetries())
	}
	fc := enabled(1)
	fc.RetryDelay, fc.MaxRetries = 90*clock.Nanosecond, 2
	in = FromConfig(fc)
	if in.RetryDelay() != 90*clock.Nanosecond || in.MaxRetries() != 2 {
		t.Errorf("explicit retry settings not honoured: %v, %d", in.RetryDelay(), in.MaxRetries())
	}
}

func TestDegraded(t *testing.T) {
	fc := enabled(1)
	fc.DegradedChannel, fc.DegradedDIMM, fc.DegradedBusFactor, fc.DeadBank = 1, 2, 3, 0
	in := FromConfig(fc)
	if ch, dimm, factor, dead := in.Degraded(); ch != 1 || dimm != 2 || factor != 3 || dead != 0 {
		t.Errorf("Degraded() = (%d, %d, %d, %d), want (1, 2, 3, 0)", ch, dimm, factor, dead)
	}
	// Unset factor applies the default.
	fc.DegradedBusFactor = 0
	if _, _, factor, _ := FromConfig(fc).Degraded(); factor != 2 {
		t.Errorf("default degraded bus factor = %d, want 2", factor)
	}
}
