// Package fault is a deterministic, seeded fault injector for the FB-DIMM
// pipeline. It models the failure modes the real protocol is built to
// survive — transient CRC-detected frame errors on the southbound and
// northbound links (replayed by the memory controller), soft errors in the
// AMB prefetch buffer (scrubbed and refetched), and a degraded DIMM whose
// bus runs at reduced rate or has a bank mapped out — so experiments can
// measure how much of the AMB-prefetch gain survives on an error-prone
// channel, where retries compete with prefetch fetches for link slots.
//
// The injector follows the memtrace recorder's seam contract: the pipeline
// holds a *Injector that is nil unless fault injection is enabled, every
// method is nil-safe, and the disabled cost is a single pointer comparison
// at each injection point.
//
// Determinism: each fault class draws from its own counter-based splitmix64
// stream (stream i hashes seed·class into draw #n), so the same seed and
// rates always produce the same fault sequence, and enabling one class
// never shifts another class's stream. Results of a faulty run are exactly
// reproducible.
package fault

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

// Class identifies an independently-seeded fault stream.
type Class int

const (
	// SouthFrame is a CRC-detected error on a southbound command/write
	// frame; the controller replays the frame after RetryDelay.
	SouthFrame Class = iota
	// NorthFrame is a CRC-detected error on a northbound read-data frame;
	// the controller re-requests the transfer.
	NorthFrame
	// AMBSoft is a soft error in an AMB prefetch-buffer entry, detected on
	// access; the controller scrubs the tag and refetches from DRAM.
	AMBSoft

	// NumClasses counts the stochastic fault classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case SouthFrame:
		return "south-frame"
	case NorthFrame:
		return "north-frame"
	case AMBSoft:
		return "amb-soft"
	default:
		return "fault-class-?"
	}
}

// Counters accumulates injected faults and their cost. All fields are
// cumulative; post-warmup deltas are taken with Sub.
type Counters struct {
	// SouthFrameErrors / NorthFrameErrors count CRC-detected link frame
	// errors (each forces one replay attempt).
	SouthFrameErrors int64
	NorthFrameErrors int64
	// Retries counts link replays actually performed; RetryLatency is the
	// total extra link-scheduling delay those replays added.
	Retries      int64
	RetryLatency clock.Time
	// AMBSoftErrors counts poisoned AMB-cache lines detected on access
	// (each one is scrubbed and serviced as a demand miss).
	AMBSoftErrors int64
	// Remapped counts accesses steered away from a dead bank by the
	// address map's bank-sparing remap.
	Remapped int64
}

// Sub returns c - w, the counters accumulated after snapshot w.
func (c Counters) Sub(w Counters) Counters {
	return Counters{
		SouthFrameErrors: c.SouthFrameErrors - w.SouthFrameErrors,
		NorthFrameErrors: c.NorthFrameErrors - w.NorthFrameErrors,
		Retries:          c.Retries - w.Retries,
		RetryLatency:     c.RetryLatency - w.RetryLatency,
		AMBSoftErrors:    c.AMBSoftErrors - w.AMBSoftErrors,
		Remapped:         c.Remapped - w.Remapped,
	}
}

// Add returns c + w (the sampling tier folds per-window deltas together).
func (c Counters) Add(w Counters) Counters {
	return Counters{
		SouthFrameErrors: c.SouthFrameErrors + w.SouthFrameErrors,
		NorthFrameErrors: c.NorthFrameErrors + w.NorthFrameErrors,
		Retries:          c.Retries + w.Retries,
		RetryLatency:     c.RetryLatency + w.RetryLatency,
		AMBSoftErrors:    c.AMBSoftErrors + w.AMBSoftErrors,
		Remapped:         c.Remapped + w.Remapped,
	}
}

// LinkErrors returns the total frame errors across both links.
func (c Counters) LinkErrors() int64 { return c.SouthFrameErrors + c.NorthFrameErrors }

// AvgRetryDelayNS returns the mean extra delay per replay in nanoseconds.
func (c Counters) AvgRetryDelayNS() float64 {
	if c.Retries == 0 {
		return 0
	}
	return c.RetryLatency.Nanoseconds() / float64(c.Retries)
}

// Injector decides, deterministically, which operations fault. The zero
// pointer is valid and injects nothing.
type Injector struct {
	rates [NumClasses]float64
	seeds [NumClasses]uint64
	ctr   [NumClasses]uint64

	retryDelay clock.Time
	maxRetries int

	degChannel int
	degDIMM    int // -1 = no degraded DIMM
	degFactor  int
	deadBank   int // -1 = no dead bank

	// Counters accumulates every injected fault.
	Counters Counters
}

// FromConfig builds the injector, or nil when fault injection is disabled
// (the zero-overhead path). fc must be validated.
func FromConfig(fc config.Fault) *Injector {
	if !fc.Enabled {
		return nil
	}
	delay, retries := fc.RetrySettings()
	in := &Injector{
		retryDelay: delay,
		maxRetries: retries,
		degChannel: fc.DegradedChannel,
		degDIMM:    fc.DegradedDIMM,
		degFactor:  fc.EffectiveBusFactor(),
		deadBank:   fc.DeadBank,
	}
	in.rates[SouthFrame] = fc.SouthErrorRate
	in.rates[NorthFrame] = fc.NorthErrorRate
	in.rates[AMBSoft] = fc.AMBSoftErrorRate
	for c := Class(0); c < NumClasses; c++ {
		// Decorrelate the per-class streams: hashing seed with a
		// class-specific offset gives each class an independent base key.
		in.seeds[c] = splitmix64(uint64(fc.Seed) + uint64(c)*0x9e3779b97f4a7c15)
	}
	return in
}

// draw advances class c's stream and reports whether the next event of that
// class faults.
func (in *Injector) draw(c Class) bool {
	rate := in.rates[c]
	if rate <= 0 {
		return false
	}
	h := splitmix64(in.seeds[c] + in.ctr[c])
	in.ctr[c]++
	// 53-bit mantissa gives a uniform in [0, 1).
	return float64(h>>11)/(1<<53) < rate
}

// FrameError reports whether the next frame of class c (SouthFrame or
// NorthFrame) is CRC-corrupted, counting the error when it fires. Nil-safe.
func (in *Injector) FrameError(c Class) bool {
	if in == nil || !in.draw(c) {
		return false
	}
	if c == SouthFrame {
		in.Counters.SouthFrameErrors++
	} else {
		in.Counters.NorthFrameErrors++
	}
	return true
}

// AMBSoftError reports whether an AMB-cache access hits a poisoned entry,
// counting the error when it fires. Callers draw only for resident lines.
// Nil-safe.
func (in *Injector) AMBSoftError() bool {
	if in == nil || !in.draw(AMBSoft) {
		return false
	}
	in.Counters.AMBSoftErrors++
	return true
}

// NoteRetry records one link replay and the extra delay it added. Nil-safe.
func (in *Injector) NoteRetry(delay clock.Time) {
	if in == nil {
		return
	}
	in.Counters.Retries++
	in.Counters.RetryLatency += delay
}

// NoteRemap records one access steered away from a dead bank. Nil-safe.
func (in *Injector) NoteRemap() {
	if in == nil {
		return
	}
	in.Counters.Remapped++
}

// RetryDelay returns the fixed CRC-detect + replay turnaround added before
// each link replay re-arbitrates for a slot.
func (in *Injector) RetryDelay() clock.Time { return in.retryDelay }

// MaxRetries bounds consecutive replays of one transfer; past the bound the
// transfer is assumed delivered (real controllers escalate to a link
// retrain, which the model folds into the capped replay cost).
func (in *Injector) MaxRetries() int { return in.maxRetries }

// Degraded returns the degraded-DIMM description: the channel and DIMM
// (dimm < 0 when no DIMM is degraded), the bus slowdown factor, and the
// mapped-out bank (deadBank < 0 when no bank is dead).
func (in *Injector) Degraded() (channel, dimm, factor, deadBank int) {
	if in == nil {
		return 0, -1, 1, -1
	}
	return in.degChannel, in.degDIMM, in.degFactor, in.deadBank
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche hash whose
// outputs over sequential inputs pass PractRand; ideal for counter-based
// deterministic streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
