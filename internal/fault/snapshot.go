package fault

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the injector's mutable state: the per-class draw
// counters (the PRNG stream positions) and the accumulated fault counters.
// Rates, seeds and degraded-hardware settings are configuration-derived and
// not written. Nil-safe: a disabled injector writes a zero marker.
func (in *Injector) Snapshot(e *snapshot.Encoder) {
	if in == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	for _, c := range in.ctr {
		e.U64(c)
	}
	e.I64(in.Counters.SouthFrameErrors)
	e.I64(in.Counters.NorthFrameErrors)
	e.I64(in.Counters.Retries)
	e.I64(int64(in.Counters.RetryLatency))
	e.I64(in.Counters.AMBSoftErrors)
	e.I64(in.Counters.Remapped)
}

// Restore overwrites the injector's mutable state from d. The
// enabled/disabled marker must match the constructed machine (injection is
// part of the configuration fingerprint, so a mismatch means corruption).
func (in *Injector) Restore(d *snapshot.Decoder) {
	present := d.Bool()
	if present != (in != nil) {
		d.Fail("fault: snapshot injector presence %v, machine %v", present, in != nil)
		return
	}
	if in == nil {
		return
	}
	for i := range in.ctr {
		in.ctr[i] = d.U64()
	}
	in.Counters = Counters{
		SouthFrameErrors: d.I64(),
		NorthFrameErrors: d.I64(),
		Retries:          d.I64(),
		RetryLatency:     clock.Time(d.I64()),
		AMBSoftErrors:    d.I64(),
		Remapped:         d.I64(),
	}
}
