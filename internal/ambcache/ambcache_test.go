package ambcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbdsim/internal/config"
)

// id derives the set-index key the way fbdchan does for a standalone cache
// (identity on the line number is fine for unit tests).
func id(lineAddr int64) int64 { return lineAddr / 64 }

func fill(c *Cache, lines ...int64) {
	for _, l := range lines {
		c.InsertPrefetch(l*64, id(l*64))
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(4, config.FullAssoc, config.FIFO)
	if c.LookupRead(64, id(64)) {
		t.Fatal("empty cache must miss")
	}
	fill(c, 1)
	if !c.LookupRead(64, id(64)) {
		t.Fatal("inserted line must hit")
	}
	if c.Stats.Reads != 2 || c.Stats.Hits != 1 || c.Stats.Prefetched != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.Coverage() != 0.5 || c.Stats.Efficiency() != 1.0 {
		t.Errorf("coverage %f efficiency %f", c.Stats.Coverage(), c.Stats.Efficiency())
	}
}

func TestFIFOEvictsInsertionOrderDespiteHits(t *testing.T) {
	c := New(2, config.FullAssoc, config.FIFO)
	fill(c, 1, 2)
	// Hit line 1 repeatedly; FIFO must still evict it first (the paper's
	// argument: a hit block now lives in the processor cache).
	for i := 0; i < 5; i++ {
		if !c.LookupRead(64, id(64)) {
			t.Fatal("expected hit")
		}
	}
	evicted, was := c.InsertPrefetch(3*64, id(3*64))
	if !was || evicted != 64 {
		t.Errorf("FIFO evicted %d (was=%v), want line 1", evicted/64, was)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := New(2, config.FullAssoc, config.LRU)
	fill(c, 1, 2)
	c.LookupRead(64, id(64)) // touch line 1
	evicted, was := c.InsertPrefetch(3*64, id(3*64))
	if !was || evicted != 2*64 {
		t.Errorf("LRU evicted %d (was=%v), want line 2", evicted/64, was)
	}
}

func TestSetAssociativity(t *testing.T) {
	// 8 lines, 2-way: 4 sets. Lines with equal id mod 4 share a set.
	c := New(8, 2, config.FIFO)
	if c.Ways() != 2 || c.Lines() != 8 {
		t.Fatalf("geometry %d ways %d lines", c.Ways(), c.Lines())
	}
	fill(c, 0, 4, 8) // all set 0: third insert evicts line 0
	if c.Contains(0, id(0)) {
		t.Error("line 0 should be evicted from its set")
	}
	if !c.Contains(4*64, id(4*64)) || !c.Contains(8*64, id(8*64)) {
		t.Error("lines 4 and 8 should be resident")
	}
	// A different set is unaffected.
	fill(c, 1)
	if !c.Contains(64, id(64)) {
		t.Error("set 1 insert failed")
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats.Evictions)
	}
}

func TestFullAssocCapacity(t *testing.T) {
	c := New(4, config.FullAssoc, config.FIFO)
	fill(c, 10, 20, 30, 40)
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	evicted, was := c.InsertPrefetch(50*64, id(50*64))
	if !was || evicted != 10*64 {
		t.Errorf("evicted %d, want oldest (10)", evicted/64)
	}
	if c.Occupancy() != 4 {
		t.Errorf("occupancy after eviction = %d", c.Occupancy())
	}
}

func TestReinsertIsRefreshNotEviction(t *testing.T) {
	c := New(2, config.FullAssoc, config.FIFO)
	fill(c, 1, 2)
	if _, was := c.InsertPrefetch(64, id(64)); was {
		t.Error("reinserting a resident line must not evict")
	}
	if c.Occupancy() != 2 {
		t.Errorf("occupancy = %d", c.Occupancy())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, config.FullAssoc, config.FIFO)
	fill(c, 1, 2)
	if !c.Invalidate(64, id(64)) {
		t.Fatal("invalidate of resident line")
	}
	if c.Invalidate(64, id(64)) {
		t.Fatal("second invalidate must report absent")
	}
	if c.Contains(64, id(64)) {
		t.Fatal("line still resident after invalidate")
	}
	if c.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d", c.Stats.Invalidations)
	}
	// The freed frame is reused before any eviction.
	fill(c, 3)
	if c.Stats.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", c.Stats.Evictions)
	}
}

// TestScrub: a soft-error scrub removes the line like Invalidate but books
// the loss separately, so fault sweeps can tell scrubs from demand-hit
// consumption.
func TestScrub(t *testing.T) {
	c := New(4, config.FullAssoc, config.FIFO)
	fill(c, 1, 2)
	if !c.Scrub(64, id(64)) {
		t.Fatal("scrubbing a present line must report true")
	}
	if c.Scrub(64, id(64)) {
		t.Fatal("scrubbing an absent line must report false")
	}
	if c.Contains(64, id(64)) {
		t.Error("scrubbed line still present")
	}
	if !c.Contains(2*64, id(2*64)) {
		t.Error("scrub must not disturb other lines")
	}
	if c.Stats.Scrubs != 1 {
		t.Errorf("Scrubs = %d, want 1", c.Stats.Scrubs)
	}
	if c.Stats.Invalidations != 0 {
		t.Errorf("scrub must not count as an invalidation, got %d", c.Stats.Invalidations)
	}
	if c.LookupRead(64, id(64)) {
		t.Error("scrubbed line must miss on the next demand")
	}
}

func TestReset(t *testing.T) {
	c := New(4, config.FullAssoc, config.FIFO)
	fill(c, 1, 2, 3)
	c.LookupRead(64, id(64))
	c.Reset()
	if c.Occupancy() != 0 || c.Stats != (Stats{}) {
		t.Errorf("Reset left occupancy %d stats %+v", c.Occupancy(), c.Stats)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Hits: 2, Prefetched: 3, Evictions: 4, Invalidations: 5}
	b := Stats{Reads: 10, Hits: 20, Prefetched: 30, Evictions: 40, Invalidations: 50}
	a.Add(b)
	if a != (Stats{Reads: 11, Hits: 22, Prefetched: 33, Evictions: 44, Invalidations: 55}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestZeroDenominators(t *testing.T) {
	var s Stats
	if s.Coverage() != 0 || s.Efficiency() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, config.FullAssoc, config.FIFO) },
		func() { New(10, 4, config.FIFO) }, // 10 not divisible by 4
		func() { New(24, 2, config.FIFO) }, // 12 sets, not a power of two
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestOccupancyNeverExceedsCapacity is a property test across random
// operation sequences for several geometries and both policies.
func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geoms := []struct{ lines, assoc int }{
			{64, config.FullAssoc}, {64, 1}, {64, 2}, {64, 4}, {32, 2}, {128, 8},
		}
		g := geoms[rng.Intn(len(geoms))]
		repl := config.FIFO
		if rng.Intn(2) == 1 {
			repl = config.LRU
		}
		c := New(g.lines, g.assoc, repl)
		for i := 0; i < 500; i++ {
			line := int64(rng.Intn(4096)) * 64
			switch rng.Intn(3) {
			case 0:
				c.InsertPrefetch(line, id(line))
			case 1:
				c.LookupRead(line, id(line))
			case 2:
				c.Invalidate(line, id(line))
			}
			if c.Occupancy() > c.Lines() {
				return false
			}
		}
		// Conservation: hits can never exceed reads or prefetched count.
		return c.Stats.Hits <= c.Stats.Reads && c.Stats.Evictions <= c.Stats.Prefetched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateEntries: inserting and looking up may never create two
// valid entries for one line.
func TestNoDuplicateEntries(t *testing.T) {
	c := New(8, 2, config.FIFO)
	for i := 0; i < 10; i++ {
		c.InsertPrefetch(4*64, id(4*64))
	}
	count := 0
	for _, set := range c.data {
		for _, e := range set {
			if e.valid && e.addr == 4*64 {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("line present %d times", count)
	}
}
