// Package ambcache implements the AMB prefetch buffer of Section 3.2: a
// small SRAM cache attached to each Advanced Memory Buffer, whose tags and
// status bits live in a "prefetch information table" at the memory
// controller. The default configuration holds 64 cachelines of 64 bytes
// (4 KB), fully associative, with FIFO replacement — LRU is unsuitable
// because a block that hits is now resident in the processor cache and will
// not be re-referenced soon.
package ambcache

import (
	"fmt"

	"fbdsim/internal/config"
)

type entry struct {
	addr  int64 // line-aligned address
	valid bool
	seq   int64 // insertion order (FIFO) — never updated on hit
	use   int64 // last-touch order (LRU)
}

// Stats counts the events that define prefetch coverage and efficiency
// (Figure 8): coverage = hits/reads, efficiency = hits/prefetched blocks.
type Stats struct {
	// Reads is the number of demand reads presented to the tag table.
	Reads int64
	// Hits is the number of demand reads served from the AMB cache.
	Hits int64
	// Prefetched is the number of non-demanded blocks stored in the cache.
	Prefetched int64
	// Evictions counts FIFO/LRU replacements of valid entries.
	Evictions int64
	// Invalidations counts entries dropped because of writes.
	Invalidations int64
	// Scrubs counts entries dropped because a soft error poisoned them
	// (fault injection); the demand access proceeds as a miss.
	Scrubs int64
}

// Coverage returns hits/reads, or 0 when no reads occurred.
func (s Stats) Coverage() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads)
}

// Efficiency returns hits/prefetched, or 0 when nothing was prefetched.
func (s Stats) Efficiency() float64 {
	if s.Prefetched == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Prefetched)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.Hits += other.Hits
	s.Prefetched += other.Prefetched
	s.Evictions += other.Evictions
	s.Invalidations += other.Invalidations
	s.Scrubs += other.Scrubs
}

// Cache models one AMB's prefetch buffer. The simulator keeps the instance
// at the memory controller, mirroring the paper's split where the
// controller holds tags and the AMB holds data; the AMB-side data array has
// no independent behaviour to model.
type Cache struct {
	sets int
	ways int
	repl config.Replacement
	data [][]entry
	tick int64

	// Stats are exported for the experiment harness.
	Stats Stats
}

// New builds an AMB cache of capacity lines with the given associativity
// (config.FullAssoc for fully associative) and replacement policy.
func New(lines, assoc int, repl config.Replacement) *Cache {
	if lines < 1 {
		panic("ambcache: capacity must be at least one line")
	}
	ways := assoc
	if assoc == config.FullAssoc || assoc >= lines {
		ways = lines
	}
	if lines%ways != 0 {
		panic(fmt.Sprintf("ambcache: %d lines not divisible by %d ways", lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("ambcache: set count %d not a power of two", sets))
	}
	c := &Cache{
		sets: sets,
		ways: ways,
		repl: repl,
		data: make([][]entry, sets),
	}
	for i := range c.data {
		c.data[i] = make([]entry, ways)
	}
	return c
}

// setIndex maps a caller-provided index key to a set. The key must be the
// DIMM-local line ID (addrmap.Mapper.LocalLineID), not the raw address:
// interleaving makes the channel/DIMM bits of raw addresses constant per
// AMB, which would alias every entry into a fraction of the sets.
func (c *Cache) setIndex(localID int64) int {
	if c.sets == 1 {
		return 0
	}
	return int(localID & int64(c.sets-1))
}

// Lines returns the total capacity in cachelines.
func (c *Cache) Lines() int { return c.sets * c.ways }

// Ways returns the associativity actually in effect.
func (c *Cache) Ways() int { return c.ways }

// LookupRead checks the tag table for a demand read and counts it toward
// coverage statistics. On a hit, FIFO keeps the insertion order (the block
// stays until replaced); LRU refreshes recency.
func (c *Cache) LookupRead(lineAddr, localID int64) bool {
	c.Stats.Reads++
	if c.touch(lineAddr, localID) {
		c.Stats.Hits++
		return true
	}
	return false
}

// Contains reports residency without touching statistics or recency.
func (c *Cache) Contains(lineAddr, localID int64) bool {
	set := c.data[c.setIndex(localID)]
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			return true
		}
	}
	return false
}

func (c *Cache) touch(lineAddr, localID int64) bool {
	set := c.data[c.setIndex(localID)]
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			c.tick++
			set[i].use = c.tick
			return true
		}
	}
	return false
}

// InsertPrefetch stores a prefetched (non-demanded) block, evicting by the
// configured policy if the set is full. It returns the evicted line address
// and whether an eviction occurred. Inserting an already-resident line is a
// no-op refresh.
func (c *Cache) InsertPrefetch(lineAddr, localID int64) (evicted int64, wasEvicted bool) {
	c.Stats.Prefetched++
	return c.insert(lineAddr, localID)
}

func (c *Cache) insert(lineAddr, localID int64) (evicted int64, wasEvicted bool) {
	si := c.setIndex(localID)
	set := c.data[si]
	c.tick++
	// Already resident: refresh only.
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			set[i].use = c.tick
			return 0, false
		}
	}
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if c.older(set[i], set[victim]) {
				victim = i
			}
		}
		evicted, wasEvicted = set[victim].addr, true
		c.Stats.Evictions++
	}
	set[victim] = entry{addr: lineAddr, valid: true, seq: c.tick, use: c.tick}
	return evicted, wasEvicted
}

func (c *Cache) older(a, b entry) bool {
	if c.repl == config.LRU {
		return a.use < b.use
	}
	return a.seq < b.seq
}

// Invalidate drops the line if present (the design invalidates on writes so
// the AMB never serves stale data). It reports whether the line was
// resident.
func (c *Cache) Invalidate(lineAddr, localID int64) bool {
	set := c.data[c.setIndex(localID)]
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			set[i].valid = false
			c.Stats.Invalidations++
			return true
		}
	}
	return false
}

// Scrub drops the line because a soft error poisoned it: the controller
// discards its tag so the demand access refetches from DRAM. Distinct from
// Invalidate only in accounting — scrubs measure fault-induced losses, not
// coherence traffic. It reports whether the line was resident.
func (c *Cache) Scrub(lineAddr, localID int64) bool {
	set := c.data[c.setIndex(localID)]
	for i := range set {
		if set[i].valid && set[i].addr == lineAddr {
			set[i].valid = false
			c.Stats.Scrubs++
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries (useful for tests and
// debugging).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.data {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

// Reset clears all entries and statistics.
func (c *Cache) Reset() {
	for i := range c.data {
		for j := range c.data[i] {
			c.data[i][j] = entry{}
		}
	}
	c.tick = 0
	c.Stats = Stats{}
}
