package ambcache

import "fbdsim/internal/snapshot"

// Snapshot serializes the prefetch buffer's mutable state: every tag
// entry, the insertion/recency tick, and the coverage statistics.
// Geometry and replacement policy are construction-derived and not
// written.
func (c *Cache) Snapshot(e *snapshot.Encoder) {
	e.Int(c.sets)
	e.Int(c.ways)
	for _, set := range c.data {
		for _, en := range set {
			e.I64(en.addr)
			e.Bool(en.valid)
			e.I64(en.seq)
			e.I64(en.use)
		}
	}
	e.I64(c.tick)
	e.I64(c.Stats.Reads)
	e.I64(c.Stats.Hits)
	e.I64(c.Stats.Prefetched)
	e.I64(c.Stats.Evictions)
	e.I64(c.Stats.Invalidations)
	e.I64(c.Stats.Scrubs)
}

// Restore overwrites the buffer's mutable state from d. The geometry must
// match the constructed cache.
func (c *Cache) Restore(d *snapshot.Decoder) {
	if sets, ways := d.Int(), d.Int(); sets != c.sets || ways != c.ways {
		d.Fail("ambcache: snapshot geometry %dx%d, machine %dx%d", sets, ways, c.sets, c.ways)
		return
	}
	for _, set := range c.data {
		for i := range set {
			set[i] = entry{addr: d.I64(), valid: d.Bool(), seq: d.I64(), use: d.I64()}
		}
	}
	c.tick = d.I64()
	c.Stats = Stats{
		Reads:         d.I64(),
		Hits:          d.I64(),
		Prefetched:    d.I64(),
		Evictions:     d.I64(),
		Invalidations: d.I64(),
		Scrubs:        d.I64(),
	}
}
