// Package addrmap implements the DRAM interleaving schemes of Section 3.2:
// conventional cacheline interleaving, page interleaving, and the
// multi-cacheline (K-line region) interleaving that AMB prefetching
// requires. A Mapper decomposes a physical address into the channel, DIMM,
// bank, row and column that serve it, and can enumerate the prefetch group
// of a demanded block.
package addrmap

import (
	"fmt"
	"math/bits"

	"fbdsim/internal/config"
)

// Location identifies the DRAM resources serving one memory block.
type Location struct {
	Channel int // logical channel
	DIMM    int // DIMM on the channel
	Bank    int // logical bank on the DIMM
	Row     int64
	Col     int // cacheline index within the row
}

// BankID returns a dense global index for the (channel, DIMM, bank) triple,
// suitable for array indexing across the whole memory system.
func (l Location) BankID(cfg *config.Mem) int {
	return (l.Channel*cfg.DIMMsPerChannel+l.DIMM)*cfg.BanksPerDIMM + l.Bank
}

func (l Location) String() string {
	return fmt.Sprintf("ch%d/dimm%d/bank%d/row%d/col%d", l.Channel, l.DIMM, l.Bank, l.Row, l.Col)
}

// Mapper translates physical addresses to DRAM locations under one
// interleaving scheme.
type Mapper struct {
	cfg config.Mem

	lineShift   uint
	linesPerRow int64
	channels    int64
	dimms       int64
	banks       int64
	totalBanks  int64
	regionLines int64

	// Bank sparing (degraded-DIMM fault mode): accesses to one dead
	// (channel, DIMM, bank) triple are steered onto the next bank of the
	// same DIMM. Off by default.
	spareOn   bool
	spareCh   int
	spareDIMM int
	spareBank int
}

// New builds a Mapper for the memory configuration. The configuration must
// already be validated.
func New(cfg *config.Mem) *Mapper {
	m := &Mapper{
		cfg:         *cfg,
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		linesPerRow: int64(cfg.RowBytes / cfg.LineBytes),
		channels:    int64(cfg.LogicalChannels),
		dimms:       int64(cfg.DIMMsPerChannel),
		banks:       int64(cfg.BanksPerDIMM),
		regionLines: int64(cfg.RegionLines),
	}
	m.totalBanks = m.channels * m.dimms * m.banks
	if cfg.Interleave != config.MultiCachelineInterleave {
		m.regionLines = 1
	}
	return m
}

// LineAddr returns the cacheline-aligned address containing addr.
func (m *Mapper) LineAddr(addr int64) int64 {
	return addr &^ (int64(m.cfg.LineBytes) - 1)
}

// lineIndex returns the global cacheline index of addr.
func (m *Mapper) lineIndex(addr int64) int64 { return addr >> m.lineShift }

// Map decomposes a physical address into its DRAM location, applying the
// bank-sparing remap when one is configured.
func (m *Mapper) Map(addr int64) Location {
	loc := m.mapRaw(addr)
	if m.spareOn && loc.Channel == m.spareCh && loc.DIMM == m.spareDIMM && loc.Bank == m.spareBank {
		loc.Bank = (loc.Bank + 1) % int(m.banks)
	}
	return loc
}

// mapRaw is the interleaving decomposition before bank sparing.
func (m *Mapper) mapRaw(addr int64) Location {
	line := m.lineIndex(addr)
	var loc Location
	switch m.cfg.Interleave {
	case config.CachelineInterleave:
		loc = m.spread(line, 1, 0)
	case config.MultiCachelineInterleave:
		region, inRegion := line/m.regionLines, line%m.regionLines
		loc = m.spread(region, m.regionLines, inRegion)
	case config.PageInterleave:
		page, col := line/m.linesPerRow, line%m.linesPerRow
		loc = m.spreadUnits(page)
		loc.Row = page / m.totalBanks
		loc.Col = int(col)
	default:
		panic(fmt.Sprintf("addrmap: unknown interleave %v", m.cfg.Interleave))
	}
	if m.cfg.PermuteBanks {
		// Permutation-based interleaving [26]: XOR the bank index with
		// the row's low bits. For any fixed (channel, DIMM, row) this is
		// a bijection on banks, so the mapping stays injective while
		// same-bank row conflicts scatter across banks.
		loc.Bank ^= int(loc.Row) & (m.cfg.BanksPerDIMM - 1)
	}
	return loc
}

// spread distributes interleave units (of unitLines cachelines each) across
// channel, DIMM and bank round-robin, then packs the remainder into columns
// and rows. offset is the line position within the unit.
func (m *Mapper) spread(unit, unitLines, offset int64) Location {
	loc := m.spreadUnits(unit)
	idx := unit / m.totalBanks // unit sequence number within this bank
	unitsPerRow := m.linesPerRow / unitLines
	loc.Row = idx / unitsPerRow
	loc.Col = int((idx%unitsPerRow)*unitLines + offset)
	return loc
}

// spreadUnits assigns a unit number to channel/DIMM/bank round-robin with
// channel varying fastest (maximizing channel-level concurrency), then DIMM,
// then bank — the wraparound order of Figure 2.
func (m *Mapper) spreadUnits(unit int64) Location {
	return Location{
		Channel: int(unit % m.channels),
		DIMM:    int((unit / m.channels) % m.dimms),
		Bank:    int((unit / (m.channels * m.dimms)) % m.banks),
	}
}

// SetBankSpare maps out one bank: every access the interleaving would send
// to (channel, dimm, bank) is steered onto the next bank of the same DIMM
// instead. This is the degraded-DIMM graceful-degradation mode — the
// simulator carries timing, not data, so the resulting double load on the
// spare bank is the modelled effect and row/column aliasing between the two
// banks' address ranges is immaterial. Requires at least two banks per DIMM.
func (m *Mapper) SetBankSpare(channel, dimm, bank int) {
	if m.banks < 2 {
		panic("addrmap: bank sparing requires at least two banks per DIMM")
	}
	if channel < 0 || int64(channel) >= m.channels ||
		dimm < 0 || int64(dimm) >= m.dimms ||
		bank < 0 || int64(bank) >= m.banks {
		panic(fmt.Sprintf("addrmap: spare target ch%d/dimm%d/bank%d out of range", channel, dimm, bank))
	}
	m.spareOn = true
	m.spareCh, m.spareDIMM, m.spareBank = channel, dimm, bank
}

// Remapped reports whether addr's access is being steered away from a dead
// bank by the configured spare (always false without one).
func (m *Mapper) Remapped(addr int64) bool {
	if !m.spareOn {
		return false
	}
	loc := m.mapRaw(addr)
	return loc.Channel == m.spareCh && loc.DIMM == m.spareDIMM && loc.Bank == m.spareBank
}

// RegionLines is the prefetch group size K under the current scheme
// (1 when the scheme does not define regions).
func (m *Mapper) RegionLines() int { return int(m.regionLines) }

// RegionID returns a unique identifier of the prefetch group containing
// addr. Addresses in the same group share DRAM row and bank.
func (m *Mapper) RegionID(addr int64) int64 {
	line := m.lineIndex(addr)
	switch m.cfg.Interleave {
	case config.MultiCachelineInterleave:
		return line / m.regionLines
	case config.PageInterleave:
		return line / m.linesPerRow
	default:
		return line
	}
}

// Group enumerates the line addresses the AMB fetches for a demand access to
// addr, demanded line first.
//
// Under multi-cacheline interleaving this is the full K-line region
// (Figure 2: demand on block 6 fetches blocks 6, 4, 5, 7). Under page
// interleaving it is the K-line window [N-1, N+2] clipped to the page, as
// Section 3.2 describes. Under cacheline interleaving it is the demanded
// line alone.
func (m *Mapper) Group(addr int64) []int64 {
	demanded := m.LineAddr(addr)
	lb := int64(m.cfg.LineBytes)
	switch m.cfg.Interleave {
	case config.MultiCachelineInterleave:
		base := demanded &^ (m.regionLines*lb - 1)
		group := make([]int64, 0, m.regionLines)
		group = append(group, demanded)
		for i := int64(0); i < m.regionLines; i++ {
			if a := base + i*lb; a != demanded {
				group = append(group, a)
			}
		}
		return group
	case config.PageInterleave:
		k := int64(m.cfg.RegionLines)
		if k < 1 {
			k = 1
		}
		pageBytes := m.linesPerRow * lb
		pageBase := demanded &^ (pageBytes - 1)
		start := demanded - lb // block N-1 first, then N+1, N+2, ...
		if start < pageBase {
			start = demanded
		}
		group := []int64{demanded}
		for a := start; int64(len(group)) < k; a += lb {
			if a == demanded {
				continue
			}
			if a < pageBase || a >= pageBase+pageBytes {
				break
			}
			group = append(group, a)
		}
		return group
	default:
		return []int64{demanded}
	}
}

// LocalLineID returns a dense identifier of addr's cacheline *within its
// DIMM*: consecutive lines stored on one DIMM get consecutive IDs. The AMB
// cache must index its sets with this, not the raw line address — after
// interleaving strips lines across channels and DIMMs, the channel/DIMM
// bits of the raw address are constant for any one AMB and would alias
// every entry into a fraction of the sets.
func (m *Mapper) LocalLineID(addr int64) int64 {
	line := m.lineIndex(addr)
	spread := m.channels * m.dimms
	switch m.cfg.Interleave {
	case config.MultiCachelineInterleave:
		region, off := line/m.regionLines, line%m.regionLines
		return (region/spread)*m.regionLines + off
	case config.PageInterleave:
		page, off := line/m.linesPerRow, line%m.linesPerRow
		return (page/spread)*m.linesPerRow + off
	default:
		return line / spread
	}
}

// SameRow reports whether two addresses map to the same row of the same
// bank (a row-buffer hit opportunity under open-page mode).
func (m *Mapper) SameRow(a, b int64) bool {
	la, lb := m.Map(a), m.Map(b)
	return la.Channel == lb.Channel && la.DIMM == lb.DIMM && la.Bank == lb.Bank && la.Row == lb.Row
}
