package addrmap

import (
	"testing"
	"testing/quick"

	"fbdsim/internal/config"
)

func defaultMem(iv config.Interleave) *config.Mem {
	c := config.Default()
	m := c.Mem
	m.Interleave = iv
	if iv != config.CachelineInterleave {
		m.PageMode = config.OpenPage
	}
	if iv == config.MultiCachelineInterleave {
		m.PageMode = config.ClosePage
	}
	return &m
}

func TestLineAddr(t *testing.T) {
	m := New(defaultMem(config.CachelineInterleave))
	if got := m.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr = %#x, want 0x12340", got)
	}
	if got := m.LineAddr(64); got != 64 {
		t.Errorf("LineAddr(64) = %d", got)
	}
}

// TestCachelineInterleaveSpread checks the Figure 2 wraparound order:
// consecutive cachelines walk channels fastest, then DIMMs, then banks.
func TestCachelineInterleaveSpread(t *testing.T) {
	cfg := defaultMem(config.CachelineInterleave)
	m := New(cfg)
	total := cfg.TotalBanks()
	seen := map[int]bool{}
	for i := 0; i < total; i++ {
		loc := m.Map(int64(i) * 64)
		if loc.Channel != i%cfg.LogicalChannels {
			t.Fatalf("line %d channel = %d, want %d", i, loc.Channel, i%cfg.LogicalChannels)
		}
		id := loc.BankID(cfg)
		if seen[id] {
			t.Fatalf("line %d reuses bank %d before wraparound", i, id)
		}
		seen[id] = true
	}
	// After one wraparound the mapping repeats banks with the next column.
	first := m.Map(0)
	again := m.Map(int64(total) * 64)
	if first.BankID(cfg) != again.BankID(cfg) {
		t.Error("wraparound must return to the first bank")
	}
	if first.Row == again.Row && first.Col == again.Col {
		t.Error("wraparound must advance within the bank")
	}
}

// TestMultiCachelineRegions checks that all K lines of a region share a
// bank and row, and consecutive regions move to a different channel.
func TestMultiCachelineRegions(t *testing.T) {
	cfg := defaultMem(config.MultiCachelineInterleave)
	m := New(cfg)
	k := int64(cfg.RegionLines)
	if m.RegionLines() != int(k) {
		t.Fatalf("RegionLines = %d, want %d", m.RegionLines(), k)
	}
	base := m.Map(0)
	for i := int64(1); i < k; i++ {
		loc := m.Map(i * 64)
		if loc.Channel != base.Channel || loc.DIMM != base.DIMM ||
			loc.Bank != base.Bank || loc.Row != base.Row {
			t.Fatalf("line %d leaves its region: %v vs %v", i, loc, base)
		}
		if loc.Col != base.Col+int(i) {
			t.Fatalf("line %d column = %d, want %d", i, loc.Col, base.Col+int(i))
		}
	}
	next := m.Map(k * 64)
	if next.Channel == base.Channel {
		t.Error("next region should be on the next channel")
	}
}

// TestFigure2Example reproduces the worked example of Figure 2: with
// four-way cacheline interleaving, a demand on block 6 groups with blocks
// 4, 5 and 7.
func TestFigure2Example(t *testing.T) {
	cfg := defaultMem(config.MultiCachelineInterleave)
	m := New(cfg)
	group := m.Group(6 * 64)
	if len(group) != 4 {
		t.Fatalf("group size = %d, want 4", len(group))
	}
	if group[0] != 6*64 {
		t.Fatalf("demanded block first: got %d", group[0]/64)
	}
	want := map[int64]bool{4 * 64: true, 5 * 64: true, 7 * 64: true}
	for _, a := range group[1:] {
		if !want[a] {
			t.Errorf("unexpected group member %d", a/64)
		}
		delete(want, a)
	}
	if len(want) != 0 {
		t.Errorf("missing group members: %v", want)
	}
}

// TestGroupSharesRegionID checks that every group member maps to the same
// region and DRAM row (the property the single-ACT fetch relies on).
func TestGroupSharesRegionID(t *testing.T) {
	for _, iv := range []config.Interleave{config.MultiCachelineInterleave, config.PageInterleave} {
		cfg := defaultMem(iv)
		m := New(cfg)
		for _, addr := range []int64{0, 64, 640, 8192, 1 << 20, 5<<20 + 192} {
			group := m.Group(addr)
			id := m.RegionID(addr)
			base := m.Map(addr)
			for _, a := range group {
				if m.RegionID(a) != id {
					t.Errorf("%v: member %#x leaves region %d", iv, a, id)
				}
				loc := m.Map(a)
				if loc.Bank != base.Bank || loc.Row != base.Row || loc.DIMM != base.DIMM {
					t.Errorf("%v: member %#x changes bank/row", iv, a)
				}
			}
		}
	}
}

// TestPageInterleaveGroupWindow checks the Section 3.2 page-mode window:
// demand on block N prefetches N-1, N+1, N+2 clipped to the page.
func TestPageInterleaveGroupWindow(t *testing.T) {
	cfg := defaultMem(config.PageInterleave)
	m := New(cfg)

	// Mid-page: N-1 then N+1, N+2.
	n := int64(10)
	group := m.Group(n * 64)
	want := []int64{n * 64, (n - 1) * 64, (n + 1) * 64, (n + 2) * 64}
	if len(group) != 4 {
		t.Fatalf("group len = %d", len(group))
	}
	for i, a := range want {
		if group[i] != a {
			t.Errorf("group[%d] = block %d, want %d", i, group[i]/64, a/64)
		}
	}

	// First block of a page: no N-1 available.
	group = m.Group(0)
	for _, a := range group {
		if a < 0 || a >= int64(cfg.RowBytes) {
			t.Errorf("group member %d outside page", a)
		}
	}
	if group[0] != 0 {
		t.Error("demanded block must be first")
	}
}

func TestGroupCachelineInterleaveIsSingleton(t *testing.T) {
	m := New(defaultMem(config.CachelineInterleave))
	group := m.Group(12345)
	if len(group) != 1 || group[0] != m.LineAddr(12345) {
		t.Errorf("cacheline interleave group = %v", group)
	}
}

// TestMapFieldsInRange is a property test: every address maps to in-range
// resources under all three schemes.
func TestMapFieldsInRange(t *testing.T) {
	for _, iv := range []config.Interleave{
		config.CachelineInterleave, config.MultiCachelineInterleave, config.PageInterleave,
	} {
		cfg := defaultMem(iv)
		m := New(cfg)
		f := func(raw uint32) bool {
			addr := int64(raw) * 8 // arbitrary word-aligned addresses
			loc := m.Map(addr)
			return loc.Channel >= 0 && loc.Channel < cfg.LogicalChannels &&
				loc.DIMM >= 0 && loc.DIMM < cfg.DIMMsPerChannel &&
				loc.Bank >= 0 && loc.Bank < cfg.BanksPerDIMM &&
				loc.Row >= 0 &&
				loc.Col >= 0 && loc.Col < cfg.RowBytes/cfg.LineBytes
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", iv, err)
		}
	}
}

// TestMapInjective is a property test: distinct cachelines never collide on
// (channel, DIMM, bank, row, col).
func TestMapInjective(t *testing.T) {
	for _, iv := range []config.Interleave{
		config.CachelineInterleave, config.MultiCachelineInterleave, config.PageInterleave,
	} {
		cfg := defaultMem(iv)
		m := New(cfg)
		seen := map[Location]int64{}
		for line := int64(0); line < 4096; line++ {
			addr := line * 64
			loc := m.Map(addr)
			if prev, ok := seen[loc]; ok {
				t.Fatalf("%v: lines %d and %d both map to %v", iv, prev, line, loc)
			}
			seen[loc] = line
		}
	}
}

// TestLocalLineID checks the AMB set-index key: unique per DIMM and dense
// across what one DIMM stores.
func TestLocalLineID(t *testing.T) {
	for _, iv := range []config.Interleave{
		config.CachelineInterleave, config.MultiCachelineInterleave, config.PageInterleave,
	} {
		cfg := defaultMem(iv)
		m := New(cfg)
		type key struct {
			ch, dimm int
			id       int64
		}
		seen := map[key]int64{}
		low := map[int64]bool{}
		for line := int64(0); line < 1<<14; line++ {
			addr := line * 64
			loc := m.Map(addr)
			id := m.LocalLineID(addr)
			k := key{loc.Channel, loc.DIMM, id}
			if prev, ok := seen[k]; ok {
				t.Fatalf("%v: lines %d and %d share local ID %d on ch%d/dimm%d",
					iv, prev, line, id, loc.Channel, loc.DIMM)
			}
			seen[k] = line
			if id < 64 {
				low[id] = true
			}
		}
		// Density: the low ID space must actually be used (no stranded
		// set-index bits, the bug the key exists to prevent).
		if len(low) < 48 {
			t.Errorf("%v: only %d of the low 64 local IDs used; set indexing would alias", iv, len(low))
		}
	}
}

func TestSameRow(t *testing.T) {
	cfg := defaultMem(config.MultiCachelineInterleave)
	m := New(cfg)
	if !m.SameRow(0, 64) {
		t.Error("lines 0 and 1 share a region hence a row")
	}
	if m.SameRow(0, 4*64) {
		t.Error("line 4 starts the next region on another channel")
	}
}

func TestBankIDDense(t *testing.T) {
	cfg := defaultMem(config.CachelineInterleave)
	ids := map[int]bool{}
	for ch := 0; ch < cfg.LogicalChannels; ch++ {
		for d := 0; d < cfg.DIMMsPerChannel; d++ {
			for b := 0; b < cfg.BanksPerDIMM; b++ {
				id := Location{Channel: ch, DIMM: d, Bank: b}.BankID(cfg)
				if id < 0 || id >= cfg.TotalBanks() {
					t.Fatalf("BankID out of range: %d", id)
				}
				if ids[id] {
					t.Fatalf("duplicate BankID %d", id)
				}
				ids[id] = true
			}
		}
	}
}

func TestLocationString(t *testing.T) {
	s := Location{Channel: 1, DIMM: 2, Bank: 3, Row: 4, Col: 5}.String()
	if s != "ch1/dimm2/bank3/row4/col5" {
		t.Errorf("String = %q", s)
	}
}

// TestPermutationInjective: XOR-ing banks with row bits must stay a
// bijection under every interleaving scheme.
func TestPermutationInjective(t *testing.T) {
	for _, iv := range []config.Interleave{
		config.CachelineInterleave, config.MultiCachelineInterleave, config.PageInterleave,
	} {
		cfg := defaultMem(iv)
		cfg.PermuteBanks = true
		m := New(cfg)
		seen := map[Location]int64{}
		for line := int64(0); line < 8192; line++ {
			loc := m.Map(line * 64)
			if loc.Bank < 0 || loc.Bank >= cfg.BanksPerDIMM {
				t.Fatalf("%v: bank %d out of range", iv, loc.Bank)
			}
			if prev, ok := seen[loc]; ok {
				t.Fatalf("%v: lines %d and %d collide at %v", iv, prev, line, loc)
			}
			seen[loc] = line
		}
	}
}

// TestPermutationPreservesRegionCohesion: a prefetch region still lands in
// one bank and row when banks are permuted (the single-ACT fetch depends on
// it).
func TestPermutationPreservesRegionCohesion(t *testing.T) {
	cfg := defaultMem(config.MultiCachelineInterleave)
	cfg.PermuteBanks = true
	m := New(cfg)
	for _, addr := range []int64{0, 1 << 16, 5<<20 + 320} {
		base := m.Map(addr)
		for _, a := range m.Group(addr) {
			loc := m.Map(a)
			if loc.Bank != base.Bank || loc.Row != base.Row || loc.DIMM != base.DIMM {
				t.Fatalf("region member %#x split from its group: %v vs %v", a, loc, base)
			}
		}
	}
}

// TestBankSpare: a spared-out bank is never returned for the degraded
// DIMM, other locations are untouched, and Remapped reports exactly the
// addresses that moved.
func TestBankSpare(t *testing.T) {
	for _, iv := range []config.Interleave{
		config.CachelineInterleave, config.MultiCachelineInterleave, config.PageInterleave,
	} {
		cfg := defaultMem(iv)
		plain := New(cfg)
		spared := New(cfg)
		const deadCh, deadDIMM, deadBank = 0, 1, 2
		spared.SetBankSpare(deadCh, deadDIMM, deadBank)

		for line := int64(0); line < 1<<14; line++ {
			addr := line * 64
			before := plain.Map(addr)
			after := spared.Map(addr)
			hit := before.Channel == deadCh && before.DIMM == deadDIMM && before.Bank == deadBank
			if hit {
				if after.Bank == deadBank {
					t.Fatalf("%v: addr %#x still maps to the dead bank", iv, addr)
				}
				if after.Channel != before.Channel || after.DIMM != before.DIMM ||
					after.Row != before.Row || after.Col != before.Col {
					t.Fatalf("%v: spare remap moved more than the bank: %v vs %v", iv, after, before)
				}
			} else if after != before {
				t.Fatalf("%v: addr %#x off the dead bank changed: %v vs %v", iv, addr, after, before)
			}
			if spared.Remapped(addr) != hit {
				t.Fatalf("%v: Remapped(%#x) = %v, want %v", iv, addr, spared.Remapped(addr), hit)
			}
			if plain.Remapped(addr) {
				t.Fatalf("%v: Remapped must be false without a spare", iv)
			}
		}
	}
}

func TestBankSparePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	cfg := defaultMem(config.CachelineInterleave)
	mustPanic("bank out of range", func() { New(cfg).SetBankSpare(0, 0, cfg.BanksPerDIMM) })
	one := defaultMem(config.CachelineInterleave)
	one.BanksPerDIMM = 1
	mustPanic("single bank", func() { New(one).SetBankSpare(0, 0, 0) })
}

// TestPermutationScattersRowConflicts: addresses that share a bank across
// consecutive rows without permutation use different banks with it.
func TestPermutationScattersRowConflicts(t *testing.T) {
	plain := New(defaultMem(config.CachelineInterleave))
	cfgP := defaultMem(config.CachelineInterleave)
	cfgP.PermuteBanks = true
	perm := New(cfgP)

	stride := int64(cfgP.TotalBanks()) * int64(cfgP.RowBytes/cfgP.LineBytes) * 64
	a, b := int64(0), stride // same bank, consecutive rows without permutation
	pa, pb := plain.Map(a), plain.Map(b)
	if pa.Bank != pb.Bank || pa.Row == pb.Row {
		t.Fatalf("setup: expected a row conflict, got %v vs %v", pa, pb)
	}
	qa, qb := perm.Map(a), perm.Map(b)
	if qa.Bank == qb.Bank {
		t.Error("permutation failed to scatter consecutive rows across banks")
	}
}
