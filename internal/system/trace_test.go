package system

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

// traceTestConfig returns a short-run configuration with tracing enabled.
func traceTestConfig(base config.Config, seed int64) config.Config {
	base.MaxInsts = 30_000
	base.WarmupInsts = 5_000
	base.Seed = seed
	base.Trace.Enabled = true
	base.Trace.Epoch = 2 * clock.Microsecond
	return base
}

// TestStageLatenciesSumToEndToEnd is the per-request breakdown invariant
// of the memtrace recorder, checked property-style over short random
// workloads on the baseline FB-DIMM, the AMB-prefetch system, and the
// DDR2 baseline: every completed request's stage latencies sum exactly to
// its end-to-end latency, and no stage is negative.
func TestStageLatenciesSumToEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		base config.Config
	}{
		{"fbd", config.Default()},
		{"fbd-ap", config.WithAMBPrefetch(config.Default())},
		{"ddr2", config.DDR2Baseline()},
	}
	benches := [][]string{{"swim"}, {"mcf", "applu"}}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 2; seed++ {
				for _, b := range benches {
					res, err := RunWorkload(traceTestConfig(tc.base, seed), b)
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, b, err)
					}
					if res.Trace == nil {
						t.Fatal("Trace.Enabled run must produce a trace summary")
					}
					evs := res.Trace.TraceEvents
					if len(evs) == 0 {
						t.Fatalf("seed %d %v: no trace events", seed, b)
					}
					hits := 0
					for _, ev := range evs {
						bd := ev.Breakdown()
						var sum clock.Time
						for s, d := range bd {
							if d < 0 {
								t.Fatalf("request %d: negative stage %d: %v", ev.ID, s, d)
							}
							sum += d
						}
						if sum != ev.EndToEnd() {
							t.Fatalf("request %d: stages sum to %v, end-to-end is %v (%+v)",
								ev.ID, sum, ev.EndToEnd(), ev)
						}
						if ev.AMBHit {
							hits++
						}
					}
					if tc.name == "fbd-ap" && res.AMBHits > 0 && hits == 0 {
						t.Errorf("seed %d %v: results report %d AMB hits but no traced event carries the flag",
							seed, b, res.AMBHits)
					}
				}
			}
		})
	}
}

// TestTraceDisabledByDefault pins the no-cost default: without
// Trace.Enabled, Results carries no trace summary.
func TestTraceDisabledByDefault(t *testing.T) {
	cfg := config.Default()
	cfg.MaxInsts = 5_000
	cfg.WarmupInsts = 1_000
	res, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("tracing off must leave Results.Trace nil")
	}
}

// TestTraceEpochConsistency checks the time-series against the scalar
// results: epoch read counts sum to the reported read total, and each
// epoch's per-stage means sum to its average latency.
func TestTraceEpochConsistency(t *testing.T) {
	cfg := traceTestConfig(config.WithAMBPrefetch(config.Default()), 1)
	res, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || len(tr.Epochs) == 0 {
		t.Fatal("expected a trace with epochs")
	}
	var reads int64
	for _, ep := range tr.Epochs {
		reads += ep.Reads
		var stages float64
		for _, m := range ep.StageMeanNS {
			stages += m
		}
		diff := stages - ep.AvgReadLatencyNS
		if diff < 0 {
			diff = -diff
		}
		if ep.Reads > 0 && diff > 1e-9 {
			t.Errorf("epoch at %vns: stage means sum %v != avg latency %v", ep.StartNS, stages, ep.AvgReadLatencyNS)
		}
	}
	if reads != tr.Reads {
		t.Errorf("epoch reads sum %d != summary reads %d", reads, tr.Reads)
	}
	// Results.Reads counts issue events in the window while the trace
	// counts completions; they differ only by the in-flight population at
	// the two window boundaries.
	diff := tr.Reads - res.Reads
	if diff < 0 {
		diff = -diff
	}
	if diff > int64(cfg.Mem.QueueEntries*cfg.Mem.LogicalChannels) {
		t.Errorf("trace reads %d too far from results reads %d", tr.Reads, res.Reads)
	}
}
