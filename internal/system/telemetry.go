package system

import (
	"context"

	"fbdsim/internal/memtrace"
)

// This file is the system half of the live-telemetry seam: a context key
// carrying a memtrace.Sink from the serving layer down to the recorder the
// machine is built with. The sink receives epoch rows as the simulation
// crosses 1024-cycle measurement boundaries, turning the post-mortem
// time-series into a stream without adding a single hot-path branch — the
// attachment happens once, at machine construction, and the recorder's
// nil-sink check fires only at epoch flushes.

type epochSinkKey struct{}

// WithEpochSink returns a context that asks RunWorkloadContext to attach
// sink to the run's memtrace recorder. The sink only fires when the run is
// traced (Config.Trace.Enabled); an untraced run has no recorder and the
// sink is silently unused. Sink methods run on the simulation goroutine:
// they must be fast and must never block, or they will slow the simulation
// they observe.
func WithEpochSink(ctx context.Context, sink memtrace.Sink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, epochSinkKey{}, sink)
}

// EpochSinkFrom returns the sink installed by WithEpochSink, or nil.
// Exported so test fakes standing in for the simulation (simserver.RunFunc
// substitutes) can honor the same contract the real system does.
func EpochSinkFrom(ctx context.Context) memtrace.Sink {
	sink, _ := ctx.Value(epochSinkKey{}).(memtrace.Sink)
	return sink
}
