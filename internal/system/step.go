package system

import "context"

// This file is the windowed-stepping face of the System: the sampling tier
// (internal/sample) drives a single machine through an alternation of
// functionally-executed spans (FunctionalAdvance — caches and prefetchers
// stay warm, timing models bypassed, simulated clock frozen) and detailed
// measured windows (StepWindow — the ordinary event-driven loop, measured
// with the same warm-baseline delta machinery a full run uses). Because a
// functional span does not advance the clock and leaves all in-flight
// detailed state (ROB entries, MSHRs, controller transactions) untouched,
// the detailed windows stitch together into one continuous timed execution
// of the sampled instruction stream.

// functionalChunk is the per-core round-robin grain of FunctionalAdvance.
// Cores must interleave at a grain far smaller than the advance span:
// running each core's whole span back-to-back would serialize access
// streams that contend in the shared L2 and AMB caches during detailed
// execution, measurably inflating the functional miss counts on multicore
// workloads.
const functionalChunk = 256

// FunctionalAdvance executes insts instructions per core functionally: the
// trace streams advance and cache/AMB/prefetcher tag state mutates exactly
// as a detailed run of those instructions would mutate it, but no cycle
// passes and nothing is timed. See cpu.(*Core).FunctionalAdvance.
func (s *System) FunctionalAdvance(insts int64) {
	for done := int64(0); done < insts; done += functionalChunk {
		n := insts - done
		if n > functionalChunk {
			n = functionalChunk
		}
		for _, c := range s.cores {
			c.FunctionalAdvance(n)
		}
	}
}

// FunctionalAdvanceEach is FunctionalAdvance with a per-core instruction
// count (insts[i] for core i; len must match the core count). The sampling
// tier uses it to advance heterogeneous cores at their measured relative
// rates, preserving the natural inter-core drift a detailed run would
// produce: cores that share the L2, AMB caches and channel contend
// differently when their stream positions diverge, so pinning them to
// equal progress during functional spans biases the measured windows.
// Chunked round-robin interleaving scales each core's grain so all cores
// finish their quota together.
func (s *System) FunctionalAdvanceEach(insts []int64) {
	max := maxOf64(insts)
	if max <= 0 {
		return
	}
	done := make([]int64, len(insts))
	for base := int64(0); base < max; base += functionalChunk {
		for i, c := range s.cores {
			// This round's quota: the core's proportional share of the
			// schedule up to base+chunk, less what it has already run.
			q := insts[i] * (base + functionalChunk) / max
			if q > insts[i] {
				q = insts[i]
			}
			if n := q - done[i]; n > 0 {
				c.FunctionalAdvance(n)
				done[i] = q
			}
		}
	}
}

func maxOf64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StepWindow runs the machine in full detail from its current position:
// ramp instructions per core of unmeasured settling (structures the
// functional span cannot warm — controller queues, ROB, MSHR occupancy —
// return to steady state), then a measured window that ends when any core
// commits measure instructions past the settling boundary. It returns the
// window's Results; the machine stays live at the final cycle boundary, so
// further FunctionalAdvance/StepWindow calls continue seamlessly.
//
// StepWindow repurposes the System's budget fields, so a stepped System
// must not be reused for ordinary Run calls or checkpointing.
func (s *System) StepWindow(ctx context.Context, ramp, measure int64) (Results, error) {
	if ramp < 0 {
		ramp = 0
	}
	if measure < 1 {
		measure = 1
	}
	s.resumeCycle = s.lastCycle
	s.resumeWarm = nil
	// WarmupInsts is an absolute committed-count threshold in the run
	// loops; anchor it at the current stream position.
	s.cfg.WarmupInsts = s.minCommitted() + ramp
	s.cfg.MaxInsts = measure
	return s.RunContext(ctx)
}

// Committed reports the per-core cumulative committed-instruction counts —
// the sampling tier's notion of stream position.
func (s *System) Committed() []int64 { return s.committedNow() }

// Cycle reports the boundary cycle the machine is parked at (the resume
// point of the next StepWindow).
func (s *System) Cycle() int64 { return s.lastCycle }
