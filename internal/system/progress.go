package system

import "context"

// Progress is a liveness snapshot delivered to a WithProgress callback at
// simulation boundary checks: at most once per executed cycle batch (1024
// CPU cycles); stretches the event-driven loop fast-forwards over coalesce
// into the next report.
type Progress struct {
	// Cycle is the current CPU cycle.
	Cycle int64
	// Committed is the minimum committed instruction count across cores —
	// the counter warmup and measurement completion are judged by.
	Committed int64
	// Warm reports whether warmup has finished (measurement under way).
	Warm bool
}

type progressCtxKey struct{}

// WithProgress returns a context that delivers boundary-check Progress
// snapshots to fn during RunContext. fn runs on the simulation goroutine:
// it must be fast and must not block, or it throttles the simulation. The
// callback observes state only — it cannot perturb results.
func WithProgress(ctx context.Context, fn func(Progress)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressCtxKey{}, fn)
}

func progressFromContext(ctx context.Context) func(Progress) {
	fn, _ := ctx.Value(progressCtxKey{}).(func(Progress))
	return fn
}
