// Package system wires cores, cache hierarchy and memory controller into a
// complete simulated machine and runs it to an instruction budget. It is
// the execution engine behind every experiment: build a System from a
// Config and a benchmark list, call Run, read the Results.
package system

import (
	"context"
	"fmt"

	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/cpu"
	"fbdsim/internal/dram"
	"fbdsim/internal/fault"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/memtrace"
	"fbdsim/internal/stats"
	"fbdsim/internal/trace"
)

// Results summarizes one simulation run (post-warmup deltas only).
type Results struct {
	Benchmarks []string
	Cores      int

	// IPC per core, in benchmark order.
	IPC []float64
	// Committed instructions per core.
	Committed []int64
	// Cycles is the measured CPU-cycle count.
	Cycles int64

	// Memory subsystem measurements.
	Reads            int64
	Writes           int64
	AMBHits          int64
	AvgReadLatencyNS float64
	// Read-latency distribution over the measured window.
	P50LatencyNS float64
	P90LatencyNS float64
	P99LatencyNS float64
	MaxLatencyNS float64
	// LatencyHist is the full post-warmup distribution (nil only for
	// zero-read runs).
	LatencyHist *stats.Histogram
	// UtilizedBandwidthGBs is total channel traffic divided by wall time —
	// the metric of Figures 5 and 10.
	UtilizedBandwidthGBs float64
	// BankConflicts counts activations delayed by bank-level timing —
	// the inefficiency Section 5.2 argues AMB prefetching reduces.
	BankConflicts int64
	// ReadLinkUtilization / WriteLinkUtilization are the busy fractions of
	// the read path (northbound / DDR2 data bus) and the write/command
	// path, averaged over channels.
	ReadLinkUtilization  float64
	WriteLinkUtilization float64

	DRAM dram.Counters
	AMB  ambcache.Stats

	// Faults summarizes injected faults and their cost over the measured
	// window (all zero unless Config.Fault.Enabled was set).
	Faults fault.Counters

	// L2 behaviour.
	L2Accesses   int64
	L2Misses     int64
	DemandMisses int64
	SWPrefetches int64
	HWPrefetches int64
	Writebacks   int64

	// Trace is the memtrace summary (per-stage latency breakdowns, epoch
	// time-series, retained per-request events); nil unless
	// Config.Trace.Enabled was set.
	Trace *memtrace.Summary
}

// L2MissRate returns L2 misses per access.
func (r Results) L2MissRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Misses) / float64(r.L2Accesses)
}

// TotalIPC returns the sum of per-core IPCs.
func (r Results) TotalIPC() float64 {
	sum := 0.0
	for _, v := range r.IPC {
		sum += v
	}
	return sum
}

// snapshot captures every cumulative counter at the warmup boundary.
type snapshot struct {
	cycle      int64
	committed  []int64
	hist       *stats.Histogram
	ctrl       memctrl.Stats
	dram       dram.Counters
	amb        ambcache.Stats
	faults     fault.Counters
	north      int64
	south      int64
	conflicts  int64
	northBusy  clock.Time
	southBusy  clock.Time
	l2Acc      int64
	l2Miss     int64
	demand     int64
	swPrefetch int64
	hwPrefetch int64
	writebacks int64
}

// System is one fully-wired simulated machine.
type System struct {
	cfg   config.Config
	names []string
	ctrl  *memctrl.Controller
	hier  *cpu.Hierarchy
	cores []*cpu.Core
	ratio int64
}

// New builds a system running one benchmark per core. The Config's
// CPU.Cores is overridden by len(benchmarks).
func New(cfg config.Config, benchmarks []string) (*System, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("system: no benchmarks given")
	}
	cfg.CPU.Cores = len(benchmarks)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrl := memctrl.New(&cfg.Mem)
	if cfg.Trace.Enabled {
		ctrl.SetRecorder(memtrace.New(memtrace.Config{
			Epoch:     cfg.Trace.Epoch,
			MaxEvents: cfg.Trace.MaxEvents,
			Channels:  cfg.Mem.LogicalChannels,
			DIMMBuses: cfg.Mem.LogicalChannels * cfg.Mem.DIMMsPerChannel,
		}))
	}
	if cfg.Fault.Enabled {
		ctrl.SetInjector(fault.FromConfig(cfg.Fault))
	}
	hier := cpu.NewHierarchy(&cfg.CPU, cfg.CPU.Cores, ctrl)
	// Start from a steady-state L2 so short runs produce representative
	// eviction/writeback traffic (see PrewarmL2). The dirty fraction
	// approximates the steady-state share of written-to lines: about one
	// in three streams is a store stream, and stores also dirty part of
	// the hot set.
	hier.PrewarmL2(0.35)
	s := &System{
		cfg:   cfg,
		names: append([]string(nil), benchmarks...),
		ctrl:  ctrl,
		hier:  hier,
		ratio: int64(clock.CPUCyclesPerTCK(cfg.Mem.DataRate)),
	}
	for i, name := range benchmarks {
		p, err := trace.ProfileFor(name)
		if err != nil {
			return nil, err
		}
		gen := trace.NewSynthetic(p, i, cfg.Seed)
		s.cores = append(s.cores, cpu.NewCore(&s.cfg.CPU, i, gen, hier))
	}
	return s, nil
}

// Controller exposes the memory controller (tests and experiments).
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// Hierarchy exposes the cache hierarchy (tests and experiments).
func (s *System) Hierarchy() *cpu.Hierarchy { return s.hier }

// Run executes warmup then measurement and returns the measured Results.
// It errors out if the machine stops making progress (a model bug guard).
func (s *System) Run() (Results, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: ctx is checked once per cycle batch
// (1024 CPU cycles, microseconds of wall time), so a cancelled run stops
// within milliseconds rather than at the instruction budget. On
// cancellation it returns ctx.Err() and an empty Results.
func (s *System) RunContext(ctx context.Context) (Results, error) {
	var (
		cycle    int64
		warm     *snapshot
		interval = int64(1024)
	)
	done := ctx.Done()
	// Generous progress bound: if the slowest plausible IPC (~0.02/core)
	// cannot explain the cycle count, something is wedged.
	budget := s.cfg.WarmupInsts + s.cfg.MaxInsts
	maxCycles := budget*500 + 1_000_000

	for {
		now := clock.Time(cycle) * clock.CPUCycle
		if cycle%s.ratio == 0 {
			s.ctrl.Tick(now)
		}
		s.hier.Tick(cycle, now)
		for _, c := range s.cores {
			c.Tick(cycle)
		}
		cycle++

		if cycle%interval != 0 {
			continue
		}
		if done != nil {
			select {
			case <-done:
				return Results{}, ctx.Err()
			default:
			}
		}
		if warm == nil {
			if s.minCommitted() >= s.cfg.WarmupInsts {
				snap := s.snapshot(cycle)
				warm = &snap
				// Restart the trace window so the recorder covers exactly
				// the measured interval (no-op when tracing is off).
				s.ctrl.ResetTraceMeasurement(clock.Time(cycle) * clock.CPUCycle)
			}
		} else if s.maxDelta(warm) >= s.cfg.MaxInsts {
			return s.results(warm, cycle), nil
		}
		if cycle > maxCycles {
			return Results{}, fmt.Errorf("system: no progress after %d cycles (committed %v)",
				cycle, s.committedNow())
		}
	}
}

func (s *System) committedNow() []int64 {
	out := make([]int64, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.Committed
	}
	return out
}

func (s *System) minCommitted() int64 {
	min := s.cores[0].Committed
	for _, c := range s.cores[1:] {
		if c.Committed < min {
			min = c.Committed
		}
	}
	return min
}

func (s *System) maxDelta(w *snapshot) int64 {
	var max int64
	for i, c := range s.cores {
		if d := c.Committed - w.committed[i]; d > max {
			max = d
		}
	}
	return max
}

func (s *System) snapshot(cycle int64) snapshot {
	north, south := s.ctrl.LinkBytes()
	nBusy, sBusy := s.ctrl.LinkBusy()
	l2 := s.hier.L2().Stats
	return snapshot{
		cycle:      cycle,
		committed:  s.committedNow(),
		hist:       s.ctrl.LatHist.Clone(),
		ctrl:       s.ctrl.Stats,
		dram:       s.ctrl.DRAMCounters(),
		amb:        s.ctrl.AMBStats(),
		faults:     s.ctrl.FaultCounters(),
		north:      north,
		south:      south,
		conflicts:  s.ctrl.BankConflicts(),
		northBusy:  nBusy,
		southBusy:  sBusy,
		l2Acc:      l2.Accesses,
		l2Miss:     l2.Misses,
		demand:     s.hier.DemandMisses,
		swPrefetch: s.hier.SWPrefetches,
		hwPrefetch: s.hier.HWPrefetches,
		writebacks: s.hier.WBCount,
	}
}

func (s *System) results(w *snapshot, cycle int64) Results {
	end := s.snapshot(cycle)
	dc := cycle - w.cycle
	r := Results{
		Benchmarks: s.names,
		Cores:      len(s.cores),
		Cycles:     dc,
		IPC:        make([]float64, len(s.cores)),
		Committed:  make([]int64, len(s.cores)),
	}
	for i := range s.cores {
		r.Committed[i] = end.committed[i] - w.committed[i]
		r.IPC[i] = float64(r.Committed[i]) / float64(dc)
	}

	r.Reads = end.ctrl.Reads - w.ctrl.Reads
	r.Writes = end.ctrl.Writes - w.ctrl.Writes
	r.AMBHits = end.ctrl.AMBHits - w.ctrl.AMBHits
	lat := end.ctrl.ReadLatency - w.ctrl.ReadLatency
	done := end.ctrl.ReadsDone - w.ctrl.ReadsDone
	if done > 0 {
		r.AvgReadLatencyNS = lat.Nanoseconds() / float64(done)
	}
	hist := s.ctrl.LatHist.Sub(w.hist)
	r.LatencyHist = hist
	if hist.Count() > 0 {
		r.P50LatencyNS = hist.Percentile(0.50).Nanoseconds()
		r.P90LatencyNS = hist.Percentile(0.90).Nanoseconds()
		r.P99LatencyNS = hist.Percentile(0.99).Nanoseconds()
		r.MaxLatencyNS = hist.Max().Nanoseconds()
	}

	bytes := (end.north - w.north) + (end.south - w.south)
	seconds := float64(dc) * float64(clock.CPUCycle) * 1e-12
	if seconds > 0 {
		r.UtilizedBandwidthGBs = float64(bytes) / seconds / 1e9
	}
	r.BankConflicts = end.conflicts - w.conflicts
	if wall := clock.Time(dc) * clock.CPUCycle; wall > 0 {
		chans := float64(s.cfg.Mem.LogicalChannels)
		r.ReadLinkUtilization = float64(end.northBusy-w.northBusy) / float64(wall) / chans
		r.WriteLinkUtilization = float64(end.southBusy-w.southBusy) / float64(wall) / chans
	}

	r.DRAM = dram.Counters{
		ACT:     end.dram.ACT - w.dram.ACT,
		PRE:     end.dram.PRE - w.dram.PRE,
		ColRead: end.dram.ColRead - w.dram.ColRead,
		ColWrit: end.dram.ColWrit - w.dram.ColWrit,
	}
	r.AMB = ambcache.Stats{
		Reads:         end.amb.Reads - w.amb.Reads,
		Hits:          end.amb.Hits - w.amb.Hits,
		Prefetched:    end.amb.Prefetched - w.amb.Prefetched,
		Evictions:     end.amb.Evictions - w.amb.Evictions,
		Invalidations: end.amb.Invalidations - w.amb.Invalidations,
		Scrubs:        end.amb.Scrubs - w.amb.Scrubs,
	}
	r.Faults = end.faults.Sub(w.faults)
	r.L2Accesses = end.l2Acc - w.l2Acc
	r.L2Misses = end.l2Miss - w.l2Miss
	r.DemandMisses = end.demand - w.demand
	r.SWPrefetches = end.swPrefetch - w.swPrefetch
	r.HWPrefetches = end.hwPrefetch - w.hwPrefetch
	r.Writebacks = end.writebacks - w.writebacks
	r.Trace = s.ctrl.TraceSummary(clock.Time(cycle) * clock.CPUCycle)
	return r
}

// RunWorkload is a convenience: build and run in one call.
func RunWorkload(cfg config.Config, benchmarks []string) (Results, error) {
	return RunWorkloadContext(context.Background(), cfg, benchmarks)
}

// RunWorkloadContext is RunWorkload with cancellation (see RunContext).
func RunWorkloadContext(ctx context.Context, cfg config.Config, benchmarks []string) (Results, error) {
	s, err := New(cfg, benchmarks)
	if err != nil {
		return Results{}, err
	}
	return s.RunContext(ctx)
}
