// Package system wires cores, cache hierarchy and memory controller into a
// complete simulated machine and runs it to an instruction budget. It is
// the execution engine behind every experiment: build a System from a
// Config and a benchmark list, call Run, read the Results.
package system

import (
	"context"
	"fmt"
	"os"

	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/cpu"
	"fbdsim/internal/dram"
	"fbdsim/internal/fault"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/memtrace"
	"fbdsim/internal/stats"
	"fbdsim/internal/trace"
)

// Results summarizes one simulation run (post-warmup deltas only).
type Results struct {
	Benchmarks []string
	Cores      int

	// IPC per core, in benchmark order.
	IPC []float64
	// Committed instructions per core.
	Committed []int64
	// Cycles is the measured CPU-cycle count.
	Cycles int64

	// Memory subsystem measurements.
	Reads            int64
	Writes           int64
	AMBHits          int64
	AvgReadLatencyNS float64
	// Read-latency distribution over the measured window.
	P50LatencyNS float64
	P90LatencyNS float64
	P99LatencyNS float64
	MaxLatencyNS float64
	// LatencyHist is the full post-warmup distribution (nil only for
	// zero-read runs).
	LatencyHist *stats.Histogram
	// UtilizedBandwidthGBs is total channel traffic divided by wall time —
	// the metric of Figures 5 and 10.
	UtilizedBandwidthGBs float64
	// BankConflicts counts activations delayed by bank-level timing —
	// the inefficiency Section 5.2 argues AMB prefetching reduces.
	BankConflicts int64
	// ReadLinkUtilization / WriteLinkUtilization are the busy fractions of
	// the read path (northbound / DDR2 data bus) and the write/command
	// path, averaged over channels.
	ReadLinkUtilization  float64
	WriteLinkUtilization float64

	DRAM dram.Counters
	AMB  ambcache.Stats

	// Faults summarizes injected faults and their cost over the measured
	// window (all zero unless Config.Fault.Enabled was set).
	Faults fault.Counters

	// L2 behaviour.
	L2Accesses   int64
	L2Misses     int64
	DemandMisses int64
	SWPrefetches int64
	HWPrefetches int64
	Writebacks   int64

	// Trace is the memtrace summary (per-stage latency breakdowns, epoch
	// time-series, retained per-request events); nil unless
	// Config.Trace.Enabled was set.
	Trace *memtrace.Summary

	// Estimate describes how these Results were produced when a reduced-
	// fidelity tier (sampled or analytic) generated them: the tier name,
	// the headline-IPC confidence interval, and the tier's cost accounting.
	// Nil for cycle-accurate runs, so cycle-accurate JSON output is
	// unchanged.
	Estimate *EstimateInfo `json:",omitempty"`
}

// EstimateInfo annotates Results produced by a reduced-fidelity tier.
type EstimateInfo struct {
	// Tier is "sampled" or "analytic".
	Tier string
	// TotalIPC is the headline estimate (sum of per-core IPC).
	TotalIPC float64
	// CI95 is the half-width of the 95% confidence interval on TotalIPC
	// (batch-means over measured windows for the sampled tier; 0 when the
	// tier provides no variance estimate).
	CI95 float64 `json:",omitempty"`
	// Windows / DetailedInsts / FunctionalInsts account for the sampled
	// tier's cost: measured windows, per-core instructions simulated in
	// detail, and per-core instructions executed functionally.
	Windows         int   `json:",omitempty"`
	DetailedInsts   int64 `json:",omitempty"`
	FunctionalInsts int64 `json:",omitempty"`
	// PerWindowIPC is the sampled tier's batch-means input (total IPC per
	// measured window).
	PerWindowIPC []float64 `json:",omitempty"`
	// Calibration names the probe run an analytic estimate was calibrated
	// from (the probe's config/workload fingerprint prefix).
	Calibration string `json:",omitempty"`
}

// L2MissRate returns L2 misses per access.
func (r Results) L2MissRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Misses) / float64(r.L2Accesses)
}

// TotalIPC returns the sum of per-core IPCs.
func (r Results) TotalIPC() float64 {
	sum := 0.0
	for _, v := range r.IPC {
		sum += v
	}
	return sum
}

// warmSnapshot captures every cumulative counter at the warmup boundary.
// (It is a measurement baseline, not a machine checkpoint; full machine
// serialization lives in checkpoint.go.)
type warmSnapshot struct {
	cycle      int64
	committed  []int64
	hist       *stats.Histogram
	ctrl       memctrl.Stats
	dram       dram.Counters
	amb        ambcache.Stats
	faults     fault.Counters
	north      int64
	south      int64
	conflicts  int64
	northBusy  clock.Time
	southBusy  clock.Time
	l2Acc      int64
	l2Miss     int64
	demand     int64
	swPrefetch int64
	hwPrefetch int64
	writebacks int64
}

// System is one fully-wired simulated machine.
type System struct {
	cfg   config.Config
	names []string
	ctrl  *memctrl.Controller
	hier  *cpu.Hierarchy
	cores []*cpu.Core
	ratio int64

	// refLoop forces the tick-every-cycle reference loop instead of the
	// event-driven fast-forward loop. Settable via the SIM_REFERENCE_LOOP
	// environment variable (any non-empty value) or SetReferenceLoop; the
	// two loops produce bit-identical Results, so this exists as an escape
	// hatch and as the oracle for the equivalence property tests.
	refLoop bool

	// resumeCycle / resumeWarm are set by RestoreSnapshot: the boundary
	// cycle the loops resume from and the restored warmup baseline (nil if
	// the checkpoint predates warmup).
	resumeCycle int64
	resumeWarm  *warmSnapshot

	// lastCycle is the boundary cycle at which the last completed run
	// returned its Results — the resume point for windowed stepping
	// (StepWindow).
	lastCycle int64
}

// New builds a system running one benchmark per core. The Config's
// CPU.Cores is overridden by len(benchmarks).
func New(cfg config.Config, benchmarks []string) (*System, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("system: no benchmarks given")
	}
	cfg.CPU.Cores = len(benchmarks)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrl := memctrl.New(&cfg.Mem)
	if cfg.Trace.Enabled {
		ctrl.SetRecorder(memtrace.New(memtrace.Config{
			Epoch:     cfg.Trace.Epoch,
			MaxEvents: cfg.Trace.MaxEvents,
			Channels:  cfg.Mem.LogicalChannels,
			DIMMBuses: cfg.Mem.LogicalChannels * cfg.Mem.DIMMsPerChannel,
		}))
	}
	if cfg.Fault.Enabled {
		ctrl.SetInjector(fault.FromConfig(cfg.Fault))
	}
	hier := cpu.NewHierarchy(&cfg.CPU, cfg.CPU.Cores, ctrl)
	// Start from a steady-state L2 so short runs produce representative
	// eviction/writeback traffic (see PrewarmL2). The dirty fraction
	// approximates the steady-state share of written-to lines: about one
	// in three streams is a store stream, and stores also dirty part of
	// the hot set.
	hier.PrewarmL2(0.35)
	s := &System{
		cfg:     cfg,
		names:   append([]string(nil), benchmarks...),
		ctrl:    ctrl,
		hier:    hier,
		ratio:   int64(clock.CPUCyclesPerTCK(cfg.Mem.DataRate)),
		refLoop: os.Getenv("SIM_REFERENCE_LOOP") != "",
	}
	for i, name := range benchmarks {
		p, err := trace.ProfileFor(name)
		if err != nil {
			return nil, err
		}
		gen := trace.NewSynthetic(p, i, cfg.Seed)
		s.cores = append(s.cores, cpu.NewCore(&s.cfg.CPU, i, gen, hier))
	}
	return s, nil
}

// Controller exposes the memory controller (tests and experiments).
func (s *System) Controller() *memctrl.Controller { return s.ctrl }

// Hierarchy exposes the cache hierarchy (tests and experiments).
func (s *System) Hierarchy() *cpu.Hierarchy { return s.hier }

// Run executes warmup then measurement and returns the measured Results.
// It errors out if the machine stops making progress (a model bug guard).
func (s *System) Run() (Results, error) {
	return s.RunContext(context.Background())
}

// SetReferenceLoop selects (true) or deselects (false) the tick-every-cycle
// reference loop for subsequent Run/RunContext calls. It exists for the
// equivalence property tests; production callers use SIM_REFERENCE_LOOP.
func (s *System) SetReferenceLoop(ref bool) { s.refLoop = ref }

// checkInterval is the cycle batch between boundary checks (cancellation,
// warmup snapshot, measurement end, progress guard). Both loops use the
// same interval so snapshots land on identical cycles.
const checkInterval = int64(1024)

// RunContext is Run with cancellation: ctx is checked at least once per
// cycle batch (1024 executed CPU cycles) and once per fast-forward skip, so
// a cancelled run stops within milliseconds of wall time rather than at the
// instruction budget. On cancellation it returns ctx.Err() and an empty
// Results.
//
// By default the system runs the event-driven loop, which jumps from one
// machine-wide interesting cycle to the next instead of ticking every CPU
// cycle; it produces bit-identical Results to the reference loop (see
// DESIGN.md §9 for the quiescence contract each component provides). Set
// SIM_REFERENCE_LOOP=1 to force the reference loop.
func (s *System) RunContext(ctx context.Context) (Results, error) {
	if s.refLoop {
		return s.runReference(ctx)
	}
	return s.runFast(ctx)
}

// runReference is the naive loop: every component ticks every CPU cycle.
// It is the behavioural oracle the fast loop is tested against, and the
// escape hatch if a model change ever violates a quiescence contract.
func (s *System) runReference(ctx context.Context) (Results, error) {
	cycle := s.resumeCycle
	warm := s.resumeWarm
	cp := checkpointFromContext(ctx)
	var cpSt checkpointState
	done := ctx.Done()
	progress := progressFromContext(ctx)
	maxCycles := s.progressBound()

	for {
		now := clock.Time(cycle) * clock.CPUCycle
		if cycle%s.ratio == 0 {
			s.ctrl.Tick(now)
		}
		s.hier.Tick(cycle, now)
		for _, c := range s.cores {
			c.Tick(cycle)
		}
		cycle++

		if cycle%checkInterval != 0 {
			continue
		}
		if done != nil {
			select {
			case <-done:
				return Results{}, ctx.Err()
			default:
			}
		}
		if progress != nil {
			progress(Progress{Cycle: cycle, Committed: s.minCommitted(), Warm: warm != nil})
		}
		justWarmed := false
		if warm == nil {
			if s.minCommitted() >= s.cfg.WarmupInsts {
				snap := s.snapshot(cycle)
				warm = &snap
				justWarmed = true
				// Restart the trace window so the recorder covers exactly
				// the measured interval (no-op when tracing is off).
				s.ctrl.ResetTraceMeasurement(clock.Time(cycle) * clock.CPUCycle)
			}
		} else if s.maxDelta(warm) >= s.cfg.MaxInsts {
			return s.results(warm, cycle), nil
		}
		if cp != nil {
			if err := s.maybeCheckpoint(cp, &cpSt, cycle, warm, justWarmed); err != nil {
				return Results{}, err
			}
		}
		if cycle > maxCycles {
			return Results{}, s.wedgedError(cycle, maxCycles)
		}
	}
}

// runFast is the event-driven loop. After executing a cycle it asks every
// component for its next interesting cycle — cores report commit wakeups
// and dispatchability, the hierarchy reports pending retries the controller
// would accept, the controller reports completions, pipeline-exit times and
// epoch boundaries — and jumps straight there when that is in the future.
// Component estimates are conservative (never later than the true next
// state change), and a skipped cycle is exactly a cycle in which the
// reference loop's ticks would all have been no-ops, so the two loops
// produce bit-identical Results. The only per-skipped-cycle effects the
// reference loop has — stall accounting and the cache-statistics cost of
// failed dispatch probes — are replayed in bulk.
func (s *System) runFast(ctx context.Context) (Results, error) {
	cycle := s.resumeCycle
	warm := s.resumeWarm
	cp := checkpointFromContext(ctx)
	var cpSt checkpointState
	done := ctx.Done()
	progress := progressFromContext(ctx)
	maxCycles := s.progressBound()
	// The reference loop errors out at the first check boundary past
	// maxCycles; a fully wedged machine fast-forwards straight there.
	errBoundary := (maxCycles/checkInterval + 1) * checkInterval

	// Restore-aware loop state: at a fresh start (cycle 0) these come out to
	// checkInterval and 0; resuming from a checkpointed boundary X they come
	// out exactly as the unbroken run would have them at the top of the
	// iteration that executes cycle X (the boundary's own checks already ran
	// before the checkpoint was taken).
	nextCheck := cycle + checkInterval                    // next boundary-check cycle
	nextTick := (cycle + s.ratio - 1) / s.ratio * s.ratio // next controller tick cycle (multiple of ratio)

	for {
		// Boundary bookkeeping, hoisted to the loop top (the reference
		// loop runs it after incrementing past the boundary — the same
		// machine state, since the boundary cycle has not executed yet in
		// either formulation). Hoisting lets a skip land exactly on a
		// boundary and still perform its checks.
		if cycle == nextCheck {
			nextCheck += checkInterval
			if done != nil {
				select {
				case <-done:
					return Results{}, ctx.Err()
				default:
				}
			}
			if progress != nil {
				progress(Progress{Cycle: cycle, Committed: s.minCommitted(), Warm: warm != nil})
			}
			justWarmed := false
			if warm == nil {
				if s.minCommitted() >= s.cfg.WarmupInsts {
					snap := s.snapshot(cycle)
					warm = &snap
					justWarmed = true
					s.ctrl.ResetTraceMeasurement(clock.Time(cycle) * clock.CPUCycle)
				}
			} else if s.maxDelta(warm) >= s.cfg.MaxInsts {
				return s.results(warm, cycle), nil
			}
			if cp != nil {
				if err := s.maybeCheckpoint(cp, &cpSt, cycle, warm, justWarmed); err != nil {
					return Results{}, err
				}
			}
			if cycle > maxCycles {
				return Results{}, s.wedgedError(cycle, maxCycles)
			}
		}

		now := clock.Time(cycle) * clock.CPUCycle
		if cycle == nextTick {
			// In the reference loop the hierarchy's "now" still holds the
			// previous cycle's time when the controller ticks (Hierarchy
			// ticks after the controller); writebacks spawned by completion
			// callbacks inherit that stamp. Reproduce it after skips.
			s.hier.SetNow(now - clock.CPUCycle)
			s.ctrl.Tick(now)
			nextTick += s.ratio
		}
		s.hier.Tick(cycle, now)
		for _, c := range s.cores {
			c.Tick(cycle)
		}
		cycle++

		target := s.nextEventCycle(cycle, nextTick)
		if target <= cycle {
			continue
		}
		// Never skip a boundary whose condition is already armed: committed
		// counts are frozen while skipping, so armed-ness cannot change
		// mid-skip, and the snapshot must land on the same boundary cycle
		// the reference loop uses.
		if warm == nil {
			if target > nextCheck && s.minCommitted() >= s.cfg.WarmupInsts {
				target = nextCheck
			}
		} else if target > nextCheck && s.maxDelta(warm) >= s.cfg.MaxInsts {
			target = nextCheck
		}
		if target > errBoundary {
			target = errBoundary // a wedged machine jumps straight to the guard
		}
		if target <= cycle {
			continue
		}
		// One cancellation check per skip preserves the reference loop's
		// wall-clock cancellation latency: a skip costs O(cores) work, far
		// less than the 1024 executed cycles between reference checks.
		if done != nil {
			select {
			case <-done:
				return Results{}, ctx.Err()
			default:
			}
		}
		skipped := target - cycle
		for i, c := range s.cores {
			c.AddStallCycles(skipped)
			if c.RetryProbesCache() {
				s.hier.ReplayBlockedProbes(i, skipped)
			}
		}
		cycle = target
		nextTick = (cycle + s.ratio - 1) / s.ratio * s.ratio
		nextCheck = (cycle + checkInterval - 1) / checkInterval * checkInterval
	}
}

// nextEventCycle returns the earliest cycle at or after cycle whose
// execution could change machine state: the minimum over every component's
// own conservative estimate. nextTick is the next controller tick cycle;
// controller events round up to it because they can only be serviced inside
// a tick.
func (s *System) nextEventCycle(cycle, nextTick int64) int64 {
	if !s.hier.Quiescent() {
		return cycle
	}
	next := int64(1) << 62
	for _, c := range s.cores {
		w := c.NextEventCycle(cycle)
		if w <= cycle {
			return cycle
		}
		if w < next {
			next = w
		}
	}
	if at := s.ctrl.NextEventAt(); at < clock.Infinity {
		tc := (clock.CyclesCeil(at) + s.ratio - 1) / s.ratio * s.ratio
		if tc < nextTick {
			tc = nextTick
		}
		if tc < next {
			next = tc
		}
	}
	return next
}

// progressBound derives the wedge-detection cycle limit from the
// configuration (replacing a former magic budget*500+1e6 constant): the
// instruction budget times a worst-case per-instruction cost — a demand
// miss waiting behind a full transaction buffer of worst-case close-page
// accesses, each inflated by the retry protocol when fault injection is
// enabled — floored at the old 500 cycles/instruction, plus fixed slack
// for warmup transients. It is deliberately generous; tripping it means a
// model bug, not a slow workload.
func (s *System) progressBound() int64 {
	t := s.cfg.Mem.Timing
	burst := clock.Time(s.cfg.Mem.LineBytes/8) * s.cfg.Mem.DataRate.TCK() / 2
	access := t.TRP + t.TRCD + t.TCL + burst
	if s.cfg.Fault.Enabled {
		delay, retries := s.cfg.Fault.RetrySettings()
		access += delay * clock.Time(retries)
	}
	perInst := s.cfg.Mem.CtrlOverhead + clock.Time(s.cfg.Mem.QueueEntries)*access
	cyc := int64(perInst / clock.CPUCycle)
	if cyc < 500 {
		cyc = 500
	}
	budget := s.cfg.WarmupInsts + s.cfg.MaxInsts
	// Relative to the resume point: a restored or windowed run only has
	// its own budget left, not the cycles already executed before it.
	return s.resumeCycle + budget*cyc + 1_000_000
}

// wedgedError reports a tripped progress guard, naming the component that
// looks stuck so the failure is debuggable from the message alone.
func (s *System) wedgedError(cycle, limit int64) error {
	suspect := "cores (queues empty and idle, yet instructions are not committing)"
	if p := s.ctrl.Pending(); p > 0 || s.ctrl.QueuedReads()+s.ctrl.QueuedWrites() > 0 {
		suspect = fmt.Sprintf("memory controller (%d queued reads, %d queued writes, %d in flight)",
			s.ctrl.QueuedReads(), s.ctrl.QueuedWrites(), p)
	} else if m := s.hier.OutstandingMisses(); m > 0 {
		suspect = fmt.Sprintf("cache hierarchy (%d outstanding misses, none in the controller)", m)
	}
	rob := make([]int, len(s.cores))
	for i, c := range s.cores {
		rob[i] = c.ROBOccupancy()
	}
	return fmt.Errorf("system: no progress after %d cycles (limit %d): suspect %s; committed %v, rob occupancy %v",
		cycle, limit, suspect, s.committedNow(), rob)
}

func (s *System) committedNow() []int64 {
	out := make([]int64, len(s.cores))
	for i, c := range s.cores {
		out[i] = c.Committed
	}
	return out
}

func (s *System) minCommitted() int64 {
	min := s.cores[0].Committed
	for _, c := range s.cores[1:] {
		if c.Committed < min {
			min = c.Committed
		}
	}
	return min
}

func (s *System) maxDelta(w *warmSnapshot) int64 {
	var max int64
	for i, c := range s.cores {
		if d := c.Committed - w.committed[i]; d > max {
			max = d
		}
	}
	return max
}

func (s *System) snapshot(cycle int64) warmSnapshot {
	north, south := s.ctrl.LinkBytes()
	nBusy, sBusy := s.ctrl.LinkBusy()
	l2 := s.hier.L2().Stats
	return warmSnapshot{
		cycle:      cycle,
		committed:  s.committedNow(),
		hist:       s.ctrl.LatHist.Clone(),
		ctrl:       s.ctrl.Stats,
		dram:       s.ctrl.DRAMCounters(),
		amb:        s.ctrl.AMBStats(),
		faults:     s.ctrl.FaultCounters(),
		north:      north,
		south:      south,
		conflicts:  s.ctrl.BankConflicts(),
		northBusy:  nBusy,
		southBusy:  sBusy,
		l2Acc:      l2.Accesses,
		l2Miss:     l2.Misses,
		demand:     s.hier.DemandMisses,
		swPrefetch: s.hier.SWPrefetches,
		hwPrefetch: s.hier.HWPrefetches,
		writebacks: s.hier.WBCount,
	}
}

func (s *System) results(w *warmSnapshot, cycle int64) Results {
	end := s.snapshot(cycle)
	dc := cycle - w.cycle
	r := Results{
		Benchmarks: s.names,
		Cores:      len(s.cores),
		Cycles:     dc,
		IPC:        make([]float64, len(s.cores)),
		Committed:  make([]int64, len(s.cores)),
	}
	for i := range s.cores {
		r.Committed[i] = end.committed[i] - w.committed[i]
		r.IPC[i] = float64(r.Committed[i]) / float64(dc)
	}

	r.Reads = end.ctrl.Reads - w.ctrl.Reads
	r.Writes = end.ctrl.Writes - w.ctrl.Writes
	r.AMBHits = end.ctrl.AMBHits - w.ctrl.AMBHits
	lat := end.ctrl.ReadLatency - w.ctrl.ReadLatency
	done := end.ctrl.ReadsDone - w.ctrl.ReadsDone
	if done > 0 {
		r.AvgReadLatencyNS = lat.Nanoseconds() / float64(done)
	}
	hist := s.ctrl.LatHist.Sub(w.hist)
	r.LatencyHist = hist
	if hist.Count() > 0 {
		r.P50LatencyNS = hist.Percentile(0.50).Nanoseconds()
		r.P90LatencyNS = hist.Percentile(0.90).Nanoseconds()
		r.P99LatencyNS = hist.Percentile(0.99).Nanoseconds()
		r.MaxLatencyNS = hist.Max().Nanoseconds()
	}

	bytes := (end.north - w.north) + (end.south - w.south)
	seconds := float64(dc) * float64(clock.CPUCycle) * 1e-12
	if seconds > 0 {
		r.UtilizedBandwidthGBs = float64(bytes) / seconds / 1e9
	}
	r.BankConflicts = end.conflicts - w.conflicts
	if wall := clock.Time(dc) * clock.CPUCycle; wall > 0 {
		chans := float64(s.cfg.Mem.LogicalChannels)
		r.ReadLinkUtilization = float64(end.northBusy-w.northBusy) / float64(wall) / chans
		r.WriteLinkUtilization = float64(end.southBusy-w.southBusy) / float64(wall) / chans
	}

	r.DRAM = dram.Counters{
		ACT:     end.dram.ACT - w.dram.ACT,
		PRE:     end.dram.PRE - w.dram.PRE,
		ColRead: end.dram.ColRead - w.dram.ColRead,
		ColWrit: end.dram.ColWrit - w.dram.ColWrit,
	}
	r.AMB = ambcache.Stats{
		Reads:         end.amb.Reads - w.amb.Reads,
		Hits:          end.amb.Hits - w.amb.Hits,
		Prefetched:    end.amb.Prefetched - w.amb.Prefetched,
		Evictions:     end.amb.Evictions - w.amb.Evictions,
		Invalidations: end.amb.Invalidations - w.amb.Invalidations,
		Scrubs:        end.amb.Scrubs - w.amb.Scrubs,
	}
	r.Faults = end.faults.Sub(w.faults)
	r.L2Accesses = end.l2Acc - w.l2Acc
	r.L2Misses = end.l2Miss - w.l2Miss
	r.DemandMisses = end.demand - w.demand
	r.SWPrefetches = end.swPrefetch - w.swPrefetch
	r.HWPrefetches = end.hwPrefetch - w.hwPrefetch
	r.Writebacks = end.writebacks - w.writebacks
	r.Trace = s.ctrl.TraceSummary(clock.Time(cycle) * clock.CPUCycle)
	s.lastCycle = cycle
	return r
}

// RunWorkload is a convenience: build and run in one call.
func RunWorkload(cfg config.Config, benchmarks []string) (Results, error) {
	return RunWorkloadContext(context.Background(), cfg, benchmarks)
}

// RunWorkloadContext is RunWorkload with cancellation (see RunContext).
func RunWorkloadContext(ctx context.Context, cfg config.Config, benchmarks []string) (Results, error) {
	s, err := New(cfg, benchmarks)
	if err != nil {
		return Results{}, err
	}
	if sink := EpochSinkFrom(ctx); sink != nil {
		// Nil-safe: an untraced run has no recorder and keeps no sink.
		s.ctrl.Recorder().SetSink(sink)
	}
	if rs := restoreFromContext(ctx); rs != nil {
		if err := s.RestoreSnapshot(rs.Data, rs.Fingerprint); err != nil {
			return Results{}, err
		}
	}
	return s.RunContext(ctx)
}
