package system

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"fbdsim/internal/config"
)

// equivBudgets keeps the equivalence runs short: the point is covering the
// skip/replay machinery across configurations, not simulating far.
func equivBudgets(cfg *config.Config) {
	cfg.WarmupInsts = 3_000
	cfg.MaxInsts = 12_000
}

// runOnce builds a fresh System for cfg and runs it with the requested
// loop. Both loops must start from identical machines, so each run gets
// its own System.
func runOnce(t *testing.T, cfg config.Config, benchmarks []string, reference bool) Results {
	t.Helper()
	s, err := New(cfg, benchmarks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SetReferenceLoop(reference)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run (reference=%v): %v", reference, err)
	}
	return res
}

// TestFastLoopBitIdentical is the property test backing the event-driven
// loop: across interconnects, AMB prefetching, seeds, fault injection and
// memtrace recording, the fast loop's Results must DeepEqual the reference
// loop's — every counter, histogram bucket, latency percentile, trace
// event and epoch row, not just the headline IPC.
func TestFastLoopBitIdentical(t *testing.T) {
	benchmarks := []string{"mcf", "art"}
	modes := []struct {
		name string
		cfg  func() config.Config
	}{
		{"ddr2", config.DDR2Baseline},
		{"fbd", config.Default},
		{"fbd-ap", func() config.Config { return config.WithAMBPrefetch(config.Default()) }},
	}
	for _, mode := range modes {
		for _, seed := range []int64{1, 7} {
			for _, withFault := range []bool{false, true} {
				for _, withTrace := range []bool{false, true} {
					name := fmt.Sprintf("%s/seed%d/fault=%v/trace=%v", mode.name, seed, withFault, withTrace)
					t.Run(name, func(t *testing.T) {
						cfg := mode.cfg()
						equivBudgets(&cfg)
						cfg.Seed = seed
						if withFault {
							cfg.Fault = config.Fault{
								Enabled:          true,
								Seed:             seed + 100,
								SouthErrorRate:   0.002,
								NorthErrorRate:   0.002,
								AMBSoftErrorRate: 0.001,
								DegradedChannel:  0,
								DegradedDIMM:     1,
								DeadBank:         -1,
							}
						}
						if withTrace {
							cfg.Trace.Enabled = true
							cfg.Trace.MaxEvents = 4096
						}
						ref := runOnce(t, cfg, benchmarks, true)
						fast := runOnce(t, cfg, benchmarks, false)
						if !reflect.DeepEqual(ref, fast) {
							t.Fatalf("fast loop diverged from reference loop\nreference: %+v\nfast:      %+v", ref, fast)
						}
					})
				}
			}
		}
	}
}

// TestFastLoopBitIdenticalComputeHeavy covers the opposite regime: cores
// that rarely miss, where skips are driven by head-of-ROB load latency
// rather than MSHR exhaustion.
func TestFastLoopBitIdenticalComputeHeavy(t *testing.T) {
	cfg := config.Default()
	equivBudgets(&cfg)
	benchmarks := []string{"wupwise", "lucas"}
	ref := runOnce(t, cfg, benchmarks, true)
	fast := runOnce(t, cfg, benchmarks, false)
	if !reflect.DeepEqual(ref, fast) {
		t.Fatalf("fast loop diverged from reference loop\nreference: %+v\nfast:      %+v", ref, fast)
	}
}

// TestFastLoopCancellationLatency is the regression test for the
// cancellation contract: the fast loop checks ctx at every executed check
// boundary and once per skip, so a cancelled run must return promptly even
// though fast-forwarding covers simulated time in large jumps.
func TestFastLoopCancellationLatency(t *testing.T) {
	cfg := config.Default()
	cfg.WarmupInsts = 1_000_000
	cfg.MaxInsts = 50_000_000 // far more than the test will simulate
	s, err := New(cfg, []string{"mcf", "art"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.RunContext(ctx)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	// The reference loop's contract is "within milliseconds"; allow slack
	// for loaded CI machines but fail on anything suggesting the fast loop
	// ran a full budget past cancellation.
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v, want well under 1s", elapsed)
	}
}

// TestProgressBoundScalesWithConfig pins the satellite fix: the wedge
// guard derives from the configuration, so a config with a slower worst
// case (fault retries enabled) gets a larger bound, and every bound keeps
// the old 500-cycles-per-instruction floor.
func TestProgressBoundScalesWithConfig(t *testing.T) {
	cfg := config.Default()
	cfg.WarmupInsts, cfg.MaxInsts = 1_000, 2_000
	s, err := New(cfg, []string{"mcf"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	plain := s.progressBound()
	if min := (cfg.WarmupInsts+cfg.MaxInsts)*500 + 1_000_000; plain < min {
		t.Fatalf("progressBound %d below reference floor %d", plain, min)
	}

	cfg.Fault = config.Fault{Enabled: true, Seed: 1, DegradedDIMM: -1, DeadBank: -1}
	sf, err := New(cfg, []string{"mcf"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if withFault := sf.progressBound(); withFault <= plain {
		t.Fatalf("progressBound with fault retries %d, want > %d (retry delay must widen the bound)", withFault, plain)
	}
}
