// Machine-state checkpointing: serialize a running System at a cycle-batch
// boundary into the versioned internal/snapshot container, and restore one
// into a freshly constructed System so the run continues bit-identically.
//
// Checkpoints are only taken at boundary cycles (multiples of checkInterval,
// the same boundaries both simulation loops use for warmup and measurement
// checks), where the reference and event-driven loops present identical
// machine state: every tick below the boundary cycle has executed, the
// boundary cycle's tick has not. Restoring therefore resumes either loop
// with nothing more than the cycle counter and the warmup snapshot.
package system

import (
	"context"
	"errors"
	"sync/atomic"

	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/fault"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/snapshot"
	"fbdsim/internal/stats"
)

// ErrPaused is returned by RunContext when a checkpoint Trigger fired: the
// machine state was delivered to the spec's OnCheckpoint sink and the run
// stopped at that boundary. It is a clean outcome, not a failure — resubmit
// the checkpoint to continue.
var ErrPaused = errors.New("system: run paused at checkpoint")

// Trigger requests an asynchronous pause-checkpoint. Fire may be called from
// any goroutine; the simulation takes the checkpoint at its next boundary
// check (within 1024 executed CPU cycles) and returns ErrPaused.
type Trigger struct {
	fired atomic.Bool
}

// Fire requests the checkpoint. Idempotent.
func (t *Trigger) Fire() { t.fired.Store(true) }

func (t *Trigger) pending() bool { return t != nil && t.fired.Load() }

// Checkpoint is one serialized machine state, delivered to OnCheckpoint.
type Checkpoint struct {
	// Data is the complete snapshot container (see internal/snapshot).
	Data []byte
	// Cycle is the boundary CPU cycle the state was captured at.
	Cycle int64
	// Warm reports whether the warmup boundary had already passed.
	Warm bool
}

// CheckpointSpec configures checkpoint capture for one run. Any combination
// of the three triggers may be armed; AtCycle and AtWarm each fire at most
// once per run.
type CheckpointSpec struct {
	// AtCycle takes a checkpoint at the first boundary at or after this
	// cycle (<= 0: disabled).
	AtCycle int64
	// AtWarm takes a checkpoint at the warmup boundary, immediately after
	// the measurement baseline is captured and the trace window reset —
	// the state the sweep engine's shared-warmup cache stores.
	AtWarm bool
	// Trigger, when non-nil and fired, takes a checkpoint at the next
	// boundary and ends the run with ErrPaused.
	Trigger *Trigger
	// Fingerprint overrides the identity hash embedded in the snapshot
	// (empty: the run's own config+workload fingerprint). The sweep engine
	// stamps shared-warmup checkpoints with the warmup group key so every
	// member of the group can restore them.
	Fingerprint string
	// OnCheckpoint receives each captured checkpoint. A returned error
	// aborts the run with it. Required for the spec to be useful; runs on
	// the simulation goroutine.
	OnCheckpoint func(Checkpoint) error
}

type checkpointCtxKey struct{}

// WithCheckpoint returns a context that arms checkpoint capture for
// RunContext calls under it.
func WithCheckpoint(ctx context.Context, spec CheckpointSpec) context.Context {
	return context.WithValue(ctx, checkpointCtxKey{}, &spec)
}

func checkpointFromContext(ctx context.Context) *CheckpointSpec {
	spec, _ := ctx.Value(checkpointCtxKey{}).(*CheckpointSpec)
	return spec
}

// RestoreSpec names a snapshot to restore before running. Fingerprint, when
// non-empty, overrides the identity the snapshot is validated against (the
// sweep engine passes the warmup group key).
type RestoreSpec struct {
	Data        []byte
	Fingerprint string
}

type restoreCtxKey struct{}

// WithRestore returns a context under which RunWorkloadContext restores the
// given snapshot into the freshly built System before running it.
func WithRestore(ctx context.Context, spec RestoreSpec) context.Context {
	return context.WithValue(ctx, restoreCtxKey{}, &spec)
}

func restoreFromContext(ctx context.Context) *RestoreSpec {
	spec, _ := ctx.Value(restoreCtxKey{}).(*RestoreSpec)
	return spec
}

// Fingerprint returns the config+workload identity hash of this machine —
// the default identity embedded in its checkpoints.
func (s *System) Fingerprint() string {
	return snapshot.Fingerprint(s.cfg, s.names)
}

// checkpointState tracks per-run one-shot checkpoint triggers.
type checkpointState struct {
	warmTaken  bool
	cycleTaken bool
}

// maybeCheckpoint runs at every boundary check (both loops, identical
// machine state): it captures and delivers a checkpoint when a trigger
// condition holds. justWarmed marks the boundary at which warmup completed.
// A non-nil return ends the run: ErrPaused for a fired Trigger, or the
// serialization/sink error.
func (s *System) maybeCheckpoint(spec *CheckpointSpec, st *checkpointState, cycle int64, warm *warmSnapshot, justWarmed bool) error {
	take, pause := false, false
	if spec.Trigger.pending() {
		take, pause = true, true
	}
	if spec.AtWarm && justWarmed && !st.warmTaken {
		take = true
		st.warmTaken = true
	}
	if spec.AtCycle > 0 && cycle >= spec.AtCycle && !st.cycleTaken {
		take = true
		st.cycleTaken = true
	}
	if !take {
		return nil
	}
	data, err := s.snapshotBytes(cycle, warm, spec.Fingerprint)
	if err != nil {
		return err
	}
	if spec.OnCheckpoint != nil {
		if err := spec.OnCheckpoint(Checkpoint{Data: data, Cycle: cycle, Warm: warm != nil}); err != nil {
			return err
		}
	}
	if pause {
		return ErrPaused
	}
	return nil
}

// snapshotBytes serializes the entire machine at boundary cycle into a
// snapshot container stamped with fingerprint (empty: the machine's own).
func (s *System) snapshotBytes(cycle int64, warm *warmSnapshot, fingerprint string) ([]byte, error) {
	if fingerprint == "" {
		fingerprint = s.Fingerprint()
	}
	// Canonicalize the hierarchy's "now" before serializing. At a boundary
	// the reference loop always holds the previous cycle's time, but the
	// fast loop may hold an older value from before a skip — harmless there
	// (it re-pins via SetNow ahead of every controller tick), yet a restored
	// reference loop would consume the stale stamp directly. Pinning the
	// canonical value also makes fast- and reference-taken checkpoints
	// byte-identical.
	s.hier.SetNow(clock.Time(cycle-1) * clock.CPUCycle)
	w := snapshot.NewWriter(fingerprint)

	sys := w.Section("system")
	sys.I64(cycle)
	sys.Bool(warm != nil)
	if warm != nil {
		encodeWarm(sys, warm)
	}

	cores := w.Section("cores")
	cores.Int(len(s.cores))
	for _, c := range s.cores {
		c.Snapshot(cores)
	}

	s.hier.Snapshot(w.Section("hier"))
	s.ctrl.Snapshot(w.Section("memctrl"))

	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.Finish(), nil
}

// RestoreSnapshot restores a checkpoint into s, which must be freshly built
// from the same configuration and workload (New, not yet run). The snapshot
// is validated against fingerprint (empty: the machine's own identity) and
// decoded into a scratch machine first, so a corrupt file never leaves s
// half-mutated: s changes only when the whole restore succeeded.
func (s *System) RestoreSnapshot(data []byte, fingerprint string) error {
	if fingerprint == "" {
		fingerprint = s.Fingerprint()
	}
	r, err := snapshot.Open(data, fingerprint)
	if err != nil {
		return err
	}
	tmp, err := New(s.cfg, s.names)
	if err != nil {
		return err
	}

	sys, err := r.Section("system")
	if err != nil {
		return err
	}
	cycle := sys.I64()
	var warm *warmSnapshot
	if sys.Bool() {
		warm = decodeWarm(sys)
	}
	if cycle < 0 || cycle%checkInterval != 0 {
		sys.Fail("system: checkpoint cycle %d is not a boundary", cycle)
	}
	if err := sys.Done(); err != nil {
		return err
	}

	cores, err := r.Section("cores")
	if err != nil {
		return err
	}
	if n := cores.Int(); n != len(tmp.cores) {
		cores.Fail("system: snapshot has %d cores, machine has %d", n, len(tmp.cores))
	}
	if cores.Err() == nil {
		for _, c := range tmp.cores {
			c.Restore(cores)
		}
	}
	if err := cores.Done(); err != nil {
		return err
	}

	hier, err := r.Section("hier")
	if err != nil {
		return err
	}
	tmp.hier.Restore(hier)
	if err := hier.Done(); err != nil {
		return err
	}

	ctrl, err := r.Section("memctrl")
	if err != nil {
		return err
	}
	onRead, onWrite := tmp.hier.RequestCallbacks()
	tmp.ctrl.Restore(ctrl, onRead, onWrite)
	if err := ctrl.Done(); err != nil {
		return err
	}
	if err := r.Strict(); err != nil {
		return err
	}

	// Fully decoded: swap the restored machine in. The object graph under
	// tmp is self-consistent (cores point at tmp.hier, which points at
	// tmp.ctrl), so swapping the roots is a complete state transplant.
	s.ctrl, s.hier, s.cores = tmp.ctrl, tmp.hier, tmp.cores
	s.resumeCycle, s.resumeWarm = cycle, warm
	s.lastCycle = cycle
	return nil
}

// encodeWarm serializes the warmup-boundary measurement baseline.
func encodeWarm(e *snapshot.Encoder, w *warmSnapshot) {
	e.I64(w.cycle)
	e.I64s(w.committed)
	w.hist.Snapshot(e)
	e.I64(w.ctrl.Reads)
	e.I64(w.ctrl.Writes)
	e.I64(w.ctrl.AMBHits)
	e.I64(int64(w.ctrl.ReadLatency))
	e.I64(w.ctrl.ReadsDone)
	e.I64(w.ctrl.QueueRejects)
	w.dram.Snapshot(e)
	e.I64(w.amb.Reads)
	e.I64(w.amb.Hits)
	e.I64(w.amb.Prefetched)
	e.I64(w.amb.Evictions)
	e.I64(w.amb.Invalidations)
	e.I64(w.amb.Scrubs)
	e.I64(w.faults.SouthFrameErrors)
	e.I64(w.faults.NorthFrameErrors)
	e.I64(w.faults.Retries)
	e.I64(int64(w.faults.RetryLatency))
	e.I64(w.faults.AMBSoftErrors)
	e.I64(w.faults.Remapped)
	e.I64(w.north)
	e.I64(w.south)
	e.I64(w.conflicts)
	e.I64(int64(w.northBusy))
	e.I64(int64(w.southBusy))
	e.I64(w.l2Acc)
	e.I64(w.l2Miss)
	e.I64(w.demand)
	e.I64(w.swPrefetch)
	e.I64(w.hwPrefetch)
	e.I64(w.writebacks)
}

func decodeWarm(d *snapshot.Decoder) *warmSnapshot {
	w := &warmSnapshot{
		cycle:     d.I64(),
		committed: d.I64s(),
		hist:      &stats.Histogram{},
	}
	w.hist.Restore(d)
	w.ctrl = memctrl.Stats{
		Reads:        d.I64(),
		Writes:       d.I64(),
		AMBHits:      d.I64(),
		ReadLatency:  clock.Time(d.I64()),
		ReadsDone:    d.I64(),
		QueueRejects: d.I64(),
	}
	w.dram.Restore(d)
	w.amb = ambcache.Stats{
		Reads:         d.I64(),
		Hits:          d.I64(),
		Prefetched:    d.I64(),
		Evictions:     d.I64(),
		Invalidations: d.I64(),
		Scrubs:        d.I64(),
	}
	w.faults = fault.Counters{
		SouthFrameErrors: d.I64(),
		NorthFrameErrors: d.I64(),
		Retries:          d.I64(),
		RetryLatency:     clock.Time(d.I64()),
		AMBSoftErrors:    d.I64(),
		Remapped:         d.I64(),
	}
	w.north = d.I64()
	w.south = d.I64()
	w.conflicts = d.I64()
	w.northBusy = clock.Time(d.I64())
	w.southBusy = clock.Time(d.I64())
	w.l2Acc = d.I64()
	w.l2Miss = d.I64()
	w.demand = d.I64()
	w.swPrefetch = d.I64()
	w.hwPrefetch = d.I64()
	w.writebacks = d.I64()
	return w
}
