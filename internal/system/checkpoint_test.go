package system

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/snapshot"
)

// checkpointAt runs cfg with a one-shot checkpoint at the first boundary at
// or after atCycle and returns the run's Results plus the captured bytes.
func checkpointAt(t *testing.T, cfg config.Config, benchmarks []string, atCycle int64, atWarm bool) (Results, []byte, int64) {
	t.Helper()
	var data []byte
	var cpCycle int64
	ctx := WithCheckpoint(context.Background(), CheckpointSpec{
		AtCycle: atCycle,
		AtWarm:  atWarm,
		OnCheckpoint: func(cp Checkpoint) error {
			data = append([]byte(nil), cp.Data...)
			cpCycle = cp.Cycle
			return nil
		},
	})
	res, err := RunWorkloadContext(ctx, cfg, benchmarks)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if data == nil {
		t.Fatalf("no checkpoint captured (atCycle=%d atWarm=%v)", atCycle, atWarm)
	}
	return res, data, cpCycle
}

// restoreAndRun builds a fresh System, restores data into it and runs it to
// completion with the requested loop.
func restoreAndRun(t *testing.T, cfg config.Config, benchmarks []string, data []byte, reference bool) Results {
	t.Helper()
	s, err := New(cfg, benchmarks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.RestoreSnapshot(data, ""); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	s.SetReferenceLoop(reference)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("restored run (reference=%v): %v", reference, err)
	}
	return res
}

// TestCheckpointRestoreBitIdentical is the property test backing the
// snapshot subsystem: across interconnects and seeds, with fault injection
// and memtrace recording enabled, a run snapshotted at a random post-warmup
// boundary and resumed in a freshly built System must produce Results that
// DeepEqual the unbroken run's — every counter, histogram bucket, PRNG-driven
// fault, trace event and epoch row. The checkpointed (but uninterrupted) run
// itself must also be unperturbed, and the restored machine must replay
// identically under both simulation loops.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	benchmarks := []string{"mcf", "art"}
	modes := []struct {
		name string
		cfg  func() config.Config
	}{
		{"ddr2", config.DDR2Baseline},
		{"fbd", config.Default},
		{"fbd-ap", func() config.Config { return config.WithAMBPrefetch(config.Default()) }},
	}
	for _, mode := range modes {
		for _, seed := range []int64{1, 7} {
			name := fmt.Sprintf("%s/seed%d", mode.name, seed)
			t.Run(name, func(t *testing.T) {
				cfg := mode.cfg()
				equivBudgets(&cfg)
				cfg.Seed = seed
				cfg.Fault = config.Fault{
					Enabled:          true,
					Seed:             seed + 100,
					SouthErrorRate:   0.002,
					NorthErrorRate:   0.002,
					AMBSoftErrorRate: 0.001,
					DegradedChannel:  0,
					DegradedDIMM:     1,
					DeadBank:         -1,
				}
				cfg.Trace.Enabled = true
				cfg.Trace.MaxEvents = 4096

				base, err := RunWorkload(cfg, benchmarks)
				if err != nil {
					t.Fatalf("baseline run: %v", err)
				}

				// Learn the warmup boundary, then checkpoint at a random
				// boundary shortly after it (the measured window is tens of
				// boundaries long at these budgets).
				warmRes, warmData, warmCycle := checkpointAt(t, cfg, benchmarks, 0, true)
				if !reflect.DeepEqual(base, warmRes) {
					t.Fatalf("taking a warm checkpoint perturbed the run")
				}
				rng := rand.New(rand.NewSource(seed * 7919))
				at := warmCycle + (1+rng.Int63n(8))*checkInterval
				midRes, midData, midCycle := checkpointAt(t, cfg, benchmarks, at, false)
				if !reflect.DeepEqual(base, midRes) {
					t.Fatalf("taking a mid-run checkpoint perturbed the run")
				}
				if midCycle < at || midCycle%checkInterval != 0 {
					t.Fatalf("checkpoint landed at %d, want boundary >= %d", midCycle, at)
				}

				for _, tc := range []struct {
					label string
					data  []byte
				}{
					{"warm", warmData},
					{"mid-measurement", midData},
				} {
					got := restoreAndRun(t, cfg, benchmarks, tc.data, false)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s checkpoint: restored fast-loop run diverged\nbase:     %+v\nrestored: %+v", tc.label, base, got)
					}
					got = restoreAndRun(t, cfg, benchmarks, tc.data, true)
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s checkpoint: restored reference-loop run diverged\nbase:     %+v\nrestored: %+v", tc.label, base, got)
					}
				}
			})
		}
	}
}

// TestCheckpointTriggerPausesRun: a fired Trigger takes a checkpoint at the
// next boundary and ends the run with ErrPaused; resubmitting the checkpoint
// completes the run with the unbroken run's Results.
func TestCheckpointTriggerPausesRun(t *testing.T) {
	cfg := config.Default()
	equivBudgets(&cfg)
	benchmarks := []string{"swim"}

	base, err := RunWorkload(cfg, benchmarks)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	trig := &Trigger{}
	trig.Fire()
	var data []byte
	ctx := WithCheckpoint(context.Background(), CheckpointSpec{
		Trigger: trig,
		OnCheckpoint: func(cp Checkpoint) error {
			data = append([]byte(nil), cp.Data...)
			return nil
		},
	})
	_, err = RunWorkloadContext(ctx, cfg, benchmarks)
	if !errors.Is(err, ErrPaused) {
		t.Fatalf("paused run returned %v, want ErrPaused", err)
	}
	if data == nil {
		t.Fatalf("pause did not deliver a checkpoint")
	}

	got, err := RunWorkloadContext(WithRestore(context.Background(), RestoreSpec{Data: data}), cfg, benchmarks)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("resumed run diverged from unbroken run\nbase:    %+v\nresumed: %+v", base, got)
	}
}

// TestRestoreRejectsWrongMachine: a checkpoint only restores into a machine
// with the same config+workload fingerprint, and a rejected restore leaves
// the target machine untouched and runnable.
func TestRestoreRejectsWrongMachine(t *testing.T) {
	cfg := config.Default()
	equivBudgets(&cfg)
	_, data, _ := checkpointAt(t, cfg, []string{"swim"}, 0, true)

	other := cfg
	other.Seed = cfg.Seed + 1
	s, err := New(other, []string{"swim"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.RestoreSnapshot(data, ""); !errors.Is(err, snapshot.ErrFingerprint) {
		t.Fatalf("restore into different machine returned %v, want ErrFingerprint", err)
	}
	want, err := RunWorkload(other, []string{"swim"})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatalf("run after rejected restore: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("rejected restore left the machine perturbed")
	}

	// An explicit fingerprint override (the sweep engine's group key) makes
	// the same bytes restorable anywhere the caller vouches for.
	groupKey := "shared-warmup-group"
	_, data2, _ := func() (Results, []byte, int64) {
		var d []byte
		ctx := WithCheckpoint(context.Background(), CheckpointSpec{
			AtWarm:      true,
			Fingerprint: groupKey,
			OnCheckpoint: func(cp Checkpoint) error {
				d = append([]byte(nil), cp.Data...)
				return nil
			},
		})
		r, err := RunWorkloadContext(ctx, cfg, []string{"swim"})
		if err != nil {
			t.Fatalf("group-key run: %v", err)
		}
		return r, d, 0
	}()
	s2, err := New(cfg, []string{"swim"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s2.RestoreSnapshot(data2, ""); !errors.Is(err, snapshot.ErrFingerprint) {
		t.Fatalf("group-key snapshot restored under machine identity: %v", err)
	}
	if err := s2.RestoreSnapshot(data2, groupKey); err != nil {
		t.Fatalf("group-key restore: %v", err)
	}
}

// truncateLastSection rewrites a snapshot so its container stays valid
// (magic, version, fingerprint, CRC all intact) but the final section's
// payload is 8 bytes short — corruption only the per-section decode can
// catch, after every earlier section already decoded successfully.
func truncateLastSection(t *testing.T, data []byte) []byte {
	t.Helper()
	body := append([]byte(nil), data[:len(data)-4]...)
	off := 8 + 4 // magic + version
	fpLen := binary.LittleEndian.Uint64(body[off:])
	off += 8 + int(fpLen)
	nsect := binary.LittleEndian.Uint32(body[off:])
	off += 4
	lenOff := 0
	for i := uint32(0); i < nsect; i++ {
		tagLen := binary.LittleEndian.Uint64(body[off:])
		off += 8 + int(tagLen)
		lenOff = off
		payLen := binary.LittleEndian.Uint64(body[off:])
		off += 8 + int(payLen)
	}
	if off != len(body) {
		t.Fatalf("section walk ended at %d of %d", off, len(body))
	}
	payLen := binary.LittleEndian.Uint64(body[lenOff:])
	if payLen < 8 {
		t.Fatalf("last section too small to truncate")
	}
	binary.LittleEndian.PutUint64(body[lenOff:], payLen-8)
	body = body[:len(body)-8]
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// TestRestoreCorruptPayloadLeavesMachineUntouched: a snapshot whose
// container validates but whose last section fails to decode must be
// rejected with ErrCorrupt after the earlier sections were already decoded —
// and the live System must remain completely unmutated and runnable, proving
// restore is all-or-nothing rather than section-by-section.
func TestRestoreCorruptPayloadLeavesMachineUntouched(t *testing.T) {
	cfg := config.Default()
	equivBudgets(&cfg)
	_, data, _ := checkpointAt(t, cfg, []string{"swim"}, 0, true)
	bad := truncateLastSection(t, data)

	s, err := New(cfg, []string{"swim"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.RestoreSnapshot(bad, ""); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("corrupt payload: got %v, want ErrCorrupt", err)
	}
	want, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatalf("run after rejected restore: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("rejected restore left the machine perturbed")
	}
}
