package system

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"fbdsim/internal/config"
)

// quick returns a small-budget config for fast end-to-end runs.
func quickCfg(base config.Config) config.Config {
	base.MaxInsts = 120_000
	base.WarmupInsts = 15_000
	return base
}

func TestRunSingleCore(t *testing.T) {
	r, err := RunWorkload(quickCfg(config.Default()), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 1 || len(r.IPC) != 1 {
		t.Fatalf("results shape: %+v", r)
	}
	if r.IPC[0] <= 0 || r.IPC[0] > 8 {
		t.Errorf("IPC = %g out of range", r.IPC[0])
	}
	if r.Committed[0] < 120_000 {
		t.Errorf("committed = %d, want >= MaxInsts", r.Committed[0])
	}
	if r.Reads == 0 || r.Writes == 0 {
		t.Errorf("no memory traffic: %d reads %d writes", r.Reads, r.Writes)
	}
	if r.AvgReadLatencyNS < 63 {
		t.Errorf("avg latency %.1f below the idle minimum", r.AvgReadLatencyNS)
	}
	if r.UtilizedBandwidthGBs <= 0 {
		t.Error("no bandwidth recorded")
	}
	if r.DRAM.ACT == 0 || r.DRAM.PRE == 0 {
		t.Error("no DRAM operations counted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := RunWorkload(quickCfg(config.Default()), nil); err == nil {
		t.Error("empty benchmark list must fail")
	}
	if _, err := RunWorkload(quickCfg(config.Default()), []string{"doom"}); err == nil ||
		!strings.Contains(err.Error(), "doom") {
		t.Errorf("unknown benchmark error = %v", err)
	}
	bad := quickCfg(config.Default())
	bad.Mem.DataRate = 123
	if _, err := RunWorkload(bad, []string{"swim"}); err == nil {
		t.Error("invalid config must fail")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(config.WithAMBPrefetch(config.Default()))
	a, err := RunWorkload(cfg, []string{"mgrid", "vpr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(cfg, []string{"mgrid", "vpr"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := RunWorkload(cfg, []string{"mgrid", "vpr"})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.IPC, c.IPC) {
		t.Error("different seeds produced identical IPCs")
	}
}

// TestClosePageACTPREPairs: under close-page auto-precharge every
// activation precharges, so the counts match.
func TestClosePageACTPREPairs(t *testing.T) {
	r, err := RunWorkload(quickCfg(config.Default()), []string{"applu"})
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.ACT != r.DRAM.PRE {
		t.Errorf("ACT %d != PRE %d under close-page", r.DRAM.ACT, r.DRAM.PRE)
	}
}

// TestAMBPrefetchImprovesStreamingWorkload: the headline claim on its most
// favourable input.
func TestAMBPrefetchImprovesStreamingWorkload(t *testing.T) {
	base, err := RunWorkload(quickCfg(config.Default()), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := RunWorkload(quickCfg(config.WithAMBPrefetch(config.Default())), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if ap.IPC[0] <= base.IPC[0] {
		t.Errorf("AMB prefetch did not help swim: %g vs %g", ap.IPC[0], base.IPC[0])
	}
	if ap.AvgReadLatencyNS >= base.AvgReadLatencyNS {
		t.Errorf("latency did not drop: %.1f vs %.1f", ap.AvgReadLatencyNS, base.AvgReadLatencyNS)
	}
	if ap.DRAM.ACT >= base.DRAM.ACT {
		t.Errorf("activations did not drop: %d vs %d", ap.DRAM.ACT, base.DRAM.ACT)
	}
	if ap.AMB.Hits == 0 || ap.AMBHits != ap.AMB.Hits {
		t.Errorf("AMB hit accounting inconsistent: %d vs %d", ap.AMBHits, ap.AMB.Hits)
	}
	if c := ap.AMB.Coverage(); c < 0.3 || c > 0.75 {
		t.Errorf("swim coverage = %.2f, want within (0.3, K-1/K]", c)
	}
}

// TestCoverageBound: coverage can never exceed the theoretical (K-1)/K.
func TestCoverageBound(t *testing.T) {
	for _, k := range []int{2, 4} {
		cfg := quickCfg(config.WithAMBPrefetch(config.Default()))
		cfg.Mem.RegionLines = k
		r, err := RunWorkload(cfg, []string{"swim"})
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(k-1) / float64(k)
		if got := r.AMB.Coverage(); got > bound {
			t.Errorf("K=%d coverage %.3f exceeds bound %.3f", k, got, bound)
		}
	}
}

// TestMultiCoreResults: every core progresses; aggregate counters are
// consistent.
func TestMultiCoreResults(t *testing.T) {
	r, err := RunWorkload(quickCfg(config.Default()),
		[]string{"wupwise", "swim", "mgrid", "applu"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 {
		t.Fatalf("cores = %d", r.Cores)
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 {
			t.Errorf("core %d (%s) IPC = %g", i, r.Benchmarks[i], ipc)
		}
	}
	if r.TotalIPC() <= r.IPC[0] {
		t.Error("TotalIPC must sum cores")
	}
	if r.L2Accesses == 0 || r.L2Misses == 0 || r.L2Misses > r.L2Accesses {
		t.Errorf("L2 stats inconsistent: %d/%d", r.L2Misses, r.L2Accesses)
	}
	if rate := r.L2MissRate(); rate <= 0 || rate >= 1 {
		t.Errorf("L2 miss rate = %g", rate)
	}
	if r.DemandMisses == 0 || r.SWPrefetches == 0 || r.Writebacks == 0 {
		t.Errorf("hierarchy counters: %d demand, %d swpf, %d wb",
			r.DemandMisses, r.SWPrefetches, r.Writebacks)
	}
}

// TestSoftwarePrefetchToggle: turning SP off removes prefetch traffic and
// costs performance on prefetch-friendly code.
func TestSoftwarePrefetchToggle(t *testing.T) {
	on, err := RunWorkload(quickCfg(config.Default()), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(config.Default())
	cfg.CPU.SoftwarePrefetch = false
	off, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if off.SWPrefetches != 0 {
		t.Errorf("SP disabled but %d prefetches issued", off.SWPrefetches)
	}
	if on.SWPrefetches == 0 {
		t.Error("SP enabled but no prefetches issued")
	}
	if off.IPC[0] >= on.IPC[0] {
		t.Errorf("software prefetching should help swim: %g (off) vs %g (on)",
			off.IPC[0], on.IPC[0])
	}
}

// TestDDR2VsFBDIMMIdleLatency: the systems' average latencies reflect their
// idle latency ordering on a light workload.
func TestDDR2VsFBDIMMLatencyOrdering(t *testing.T) {
	ddr, err := RunWorkload(quickCfg(config.DDR2Baseline()), []string{"parser"})
	if err != nil {
		t.Fatal(err)
	}
	fbd, err := RunWorkload(quickCfg(config.Default()), []string{"parser"})
	if err != nil {
		t.Fatal(err)
	}
	if fbd.AvgReadLatencyNS <= ddr.AvgReadLatencyNS {
		t.Errorf("light load: FBD latency %.1f should exceed DDR2 %.1f",
			fbd.AvgReadLatencyNS, ddr.AvgReadLatencyNS)
	}
}

// TestAPFLSitsBetween: the Figure 9 arm orders FBD <= APFL <= AP on a
// streaming workload.
func TestAPFLSitsBetween(t *testing.T) {
	run := func(cfg config.Config) float64 {
		r, err := RunWorkload(quickCfg(cfg), []string{"swim", "applu"})
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalIPC()
	}
	fbd := run(config.Default())
	apfl := run(config.WithFullLatencyHits(config.Default()))
	ap := run(config.WithAMBPrefetch(config.Default()))
	if fbd >= apfl || fbd >= ap {
		t.Errorf("prefetching arms must beat the baseline: FBD %.3f, APFL %.3f, AP %.3f",
			fbd, apfl, ap)
	}
	// AP additionally cuts hit latency; allow a small noise band since the
	// two runs' schedules diverge completely after the first hit.
	if ap < apfl*0.97 {
		t.Errorf("AP (%.3f) far below APFL (%.3f); latency benefit inverted", ap, apfl)
	}
}

// TestVRLRuns: variable read latency completes and does not hurt.
func TestVRLRuns(t *testing.T) {
	cfg := quickCfg(config.WithAMBPrefetch(config.Default()))
	cfg.Mem.VRL = true
	r, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC[0] <= 0 {
		t.Error("VRL run made no progress")
	}
}

// TestPageInterleaveOpenPageRuns: the open-page configuration is exercised
// end to end.
func TestPageInterleaveOpenPageRuns(t *testing.T) {
	cfg := quickCfg(config.Default())
	cfg.Mem.Interleave = config.PageInterleave
	cfg.Mem.PageMode = config.OpenPage
	r, err := RunWorkload(cfg, []string{"applu"})
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC[0] <= 0 {
		t.Error("open-page run made no progress")
	}
	// Open-page with spatial locality performs fewer ACTs than columns.
	if r.DRAM.ACT >= r.DRAM.Columns() {
		t.Errorf("open page: ACT %d should be below columns %d", r.DRAM.ACT, r.DRAM.Columns())
	}
}

// TestAPWithPageInterleave: the paper's alternative AP mode (Figure 2,
// right) works too.
func TestAPWithPageInterleave(t *testing.T) {
	cfg := quickCfg(config.WithAMBPrefetch(config.Default()))
	cfg.Mem.Interleave = config.PageInterleave
	cfg.Mem.PageMode = config.OpenPage
	r, err := RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if r.AMB.Hits == 0 {
		t.Error("page-interleave AP produced no hits")
	}
}

// TestHardwarePrefetchExtension: the stream prefetcher engages on a
// streaming workload and improves it when software prefetching is off.
func TestHardwarePrefetchExtension(t *testing.T) {
	base := quickCfg(config.Default())
	base.CPU.SoftwarePrefetch = false
	off, err := RunWorkload(base, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	hw := base
	hw.CPU.HardwarePrefetch = true
	on, err := RunWorkload(hw, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if off.HWPrefetches != 0 {
		t.Errorf("HW prefetches issued while disabled: %d", off.HWPrefetches)
	}
	if on.HWPrefetches == 0 {
		t.Fatal("HW prefetcher never engaged")
	}
	if on.IPC[0] <= off.IPC[0] {
		t.Errorf("HW prefetching should help swim without SP: %g vs %g", on.IPC[0], off.IPC[0])
	}
}

// TestRefreshExtension: enabling refresh costs a little performance, never
// a lot, and the run completes.
func TestRefreshExtension(t *testing.T) {
	base := quickCfg(config.Default())
	off, err := RunWorkload(base, []string{"applu"})
	if err != nil {
		t.Fatal(err)
	}
	ref := base
	ref.Mem.RefreshEnabled = true
	on, err := RunWorkload(ref, []string{"applu"})
	if err != nil {
		t.Fatal(err)
	}
	ratio := on.IPC[0] / off.IPC[0]
	if ratio > 1.05 || ratio < 0.90 {
		t.Errorf("refresh changed IPC by %.1f%%, want a small cost", (ratio-1)*100)
	}
}

// TestLatencyPercentilesOrdered: the histogram wiring produces a sane
// distribution.
func TestLatencyPercentilesOrdered(t *testing.T) {
	r, err := RunWorkload(quickCfg(config.Default()), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyHist == nil || r.LatencyHist.Count() == 0 {
		t.Fatal("no latency histogram")
	}
	if !(r.P50LatencyNS <= r.P90LatencyNS && r.P90LatencyNS <= r.P99LatencyNS &&
		r.P99LatencyNS <= r.MaxLatencyNS) {
		t.Errorf("percentiles out of order: %v %v %v %v",
			r.P50LatencyNS, r.P90LatencyNS, r.P99LatencyNS, r.MaxLatencyNS)
	}
	if r.P50LatencyNS < 50 {
		t.Errorf("p50 %.1fns below idle latency", r.P50LatencyNS)
	}
	// Histogram counts completed reads; Reads counts issued reads. The
	// difference is the handful in flight across the warmup boundary.
	if diff := r.LatencyHist.Count() - r.Reads; diff < -100 || diff > 100 {
		t.Errorf("histogram n=%d vs reads %d", r.LatencyHist.Count(), r.Reads)
	}
}

// TestAMBPrefetchReducesBankConflicts measures the Section 5.2 mechanism
// directly: the AMB cache absorbs reads that would otherwise conflict in
// the DRAM banks.
func TestAMBPrefetchReducesBankConflicts(t *testing.T) {
	base, err := RunWorkload(quickCfg(config.Default()), []string{"swim", "applu"})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := RunWorkload(quickCfg(config.WithAMBPrefetch(config.Default())), []string{"swim", "applu"})
	if err != nil {
		t.Fatal(err)
	}
	if base.BankConflicts == 0 {
		t.Fatal("baseline shows no bank conflicts; instrumentation broken")
	}
	if ap.BankConflicts >= base.BankConflicts {
		t.Errorf("AP did not reduce bank conflicts: %d vs %d", ap.BankConflicts, base.BankConflicts)
	}
}

// TestLinkUtilizationSane: utilizations are fractions, and AMB prefetching
// raises read-link utilization on a bandwidth-hungry mix (Figure 10's
// mechanism).
func TestLinkUtilizationSane(t *testing.T) {
	base, err := RunWorkload(quickCfg(config.Default()), []string{"swim", "applu"})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := RunWorkload(quickCfg(config.WithAMBPrefetch(config.Default())), []string{"swim", "applu"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Results{base, ap} {
		if r.ReadLinkUtilization <= 0 || r.ReadLinkUtilization > 1.01 {
			t.Errorf("read-link utilization %f out of range", r.ReadLinkUtilization)
		}
		if r.WriteLinkUtilization <= 0 || r.WriteLinkUtilization > 1.01 {
			t.Errorf("write-link utilization %f out of range", r.WriteLinkUtilization)
		}
	}
	if ap.ReadLinkUtilization <= base.ReadLinkUtilization {
		t.Errorf("AP should raise read-link utilization: %f vs %f",
			ap.ReadLinkUtilization, base.ReadLinkUtilization)
	}
}

// TestArtCacheCliff reproduces the Section 4.2 footnote that justified
// excluding art: its working set fits a 4 MB L2 but thrashes a 1 MB one,
// so the L2 miss rate collapses/explodes across the cliff.
func TestArtCacheCliff(t *testing.T) {
	run := func(l2KB int) Results {
		cfg := config.Default()
		cfg.CPU.L2KB = l2KB
		cfg.MaxInsts = 400_000 // long enough to loop over art's footprint
		cfg.WarmupInsts = 250_000
		r, err := RunWorkload(cfg, []string{"art"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	big := run(4096)
	small := run(1024)
	if small.L2MissRate() < big.L2MissRate()*1.5 {
		t.Errorf("art cliff missing: miss rate %.3f @1MB vs %.3f @4MB",
			small.L2MissRate(), big.L2MissRate())
	}
}

// TestMcfLowIPC reproduces the other §4.2 exclusion: mcf's dependent
// pointer chasing yields by far the lowest IPC of any program.
func TestMcfLowIPC(t *testing.T) {
	mcf, err := RunWorkload(quickCfg(config.Default()), []string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	swim, err := RunWorkload(quickCfg(config.Default()), []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if mcf.IPC[0] >= swim.IPC[0]*0.6 {
		t.Errorf("mcf IPC %.3f not clearly below swim %.3f", mcf.IPC[0], swim.IPC[0])
	}
}

func TestRunContextCancellation(t *testing.T) {
	// A budget no test machine finishes in the test's lifetime.
	cfg := config.Default()
	cfg.MaxInsts = 500_000_000
	cfg.WarmupInsts = 0

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunWorkloadContext(ctx, cfg, []string{"swim"})
		done <- err
	}()
	// Let the simulation get going, then cancel and time the stop.
	time.Sleep(20 * time.Millisecond)
	begin := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled simulation did not stop")
	}
	if elapsed := time.Since(begin); elapsed > 100*time.Millisecond {
		t.Errorf("cancellation latency %v, want < 100ms (cycle-batch granularity)", elapsed)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWorkloadContext(ctx, quickCfg(config.Default()), []string{"swim"}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled context: err = %v, want Canceled", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := quickCfg(config.Default())
	a, err := RunWorkload(cfg, []string{"vpr"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkloadContext(context.Background(), cfg, []string{"vpr"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC[0] != b.IPC[0] {
		t.Error("RunWorkloadContext(Background) must be identical to RunWorkload")
	}
}
