package hwprefetch

import "fbdsim/internal/snapshot"

// Snapshot serializes the prefetcher's mutable state: the stream table,
// the recency tick and the counters. Configuration is construction-derived
// and not written.
func (p *Prefetcher) Snapshot(e *snapshot.Encoder) {
	e.Int(len(p.table))
	for _, en := range p.table {
		e.Bool(en.valid)
		e.I64(en.lastLine)
		e.I64(en.dir)
		e.Int(en.score)
		e.I64(en.head)
		e.I64(en.use)
	}
	e.I64(p.tick)
	e.I64(p.Trained)
	e.I64(p.Issued)
	e.I64(p.Allocated)
}

// Restore overwrites the prefetcher's mutable state from d. The table size
// must match the constructed configuration.
func (p *Prefetcher) Restore(d *snapshot.Decoder) {
	if n := d.Int(); n != len(p.table) {
		d.Fail("hwprefetch: snapshot has %d streams, machine has %d", n, len(p.table))
		return
	}
	for i := range p.table {
		p.table[i] = entry{
			valid:    d.Bool(),
			lastLine: d.I64(),
			dir:      d.I64(),
			score:    d.Int(),
			head:     d.I64(),
			use:      d.I64(),
		}
	}
	p.tick = d.I64()
	p.Trained = d.I64()
	p.Issued = d.I64()
	p.Allocated = d.I64()
}
