// Package hwprefetch implements a stream-based hardware L2 prefetcher in
// the stream-buffer tradition the paper cites (Jouppi; Sherwood's
// predictor-directed stream buffers). Section 5.4 evaluates AMB prefetching
// only against software prefetching and conjectures that "AMB prefetching
// will improve performance similarly if hardware prefetching is used"; this
// package provides the extension experiment that tests the conjecture
// (see exp.ExtensionHWPrefetch).
//
// The design is deliberately conventional: a small table of stream entries
// trained by L2 demand-miss addresses. A stream allocates on a miss with no
// matching entry, trains when a subsequent miss lands on the next line in
// either direction, and once confident emits prefetches `Degree` lines
// ahead of the observed head.
package hwprefetch

// Config sizes the prefetcher.
type Config struct {
	// Streams is the number of concurrently tracked miss streams.
	Streams int
	// Degree is how many lines each trained trigger prefetches ahead.
	Degree int
	// TrainThreshold is the number of consecutive in-order misses needed
	// before a stream starts prefetching.
	TrainThreshold int
}

// DefaultConfig mirrors a modest mid-2000s stream prefetcher.
func DefaultConfig() Config {
	return Config{Streams: 16, Degree: 4, TrainThreshold: 2}
}

type entry struct {
	valid    bool
	lastLine int64
	dir      int64 // +1 ascending, -1 descending
	score    int
	head     int64 // furthest line already prefetched (exclusive)
	use      int64
}

// Prefetcher is one shared L2-side stream prefetcher. Not goroutine-safe.
type Prefetcher struct {
	cfg       Config
	lineBytes int64
	table     []entry
	tick      int64

	// Stats.
	Trained   int64 // streams that reached the confidence threshold
	Issued    int64 // prefetch addresses emitted
	Allocated int64 // table allocations
}

// New builds the prefetcher for the given cacheline size.
func New(cfg Config, lineBytes int) *Prefetcher {
	if cfg.Streams < 1 || cfg.Degree < 1 || cfg.TrainThreshold < 1 {
		panic("hwprefetch: degenerate configuration")
	}
	return &Prefetcher{
		cfg:       cfg,
		lineBytes: int64(lineBytes),
		table:     make([]entry, cfg.Streams),
	}
}

// OnMiss trains the prefetcher with a demand L2 miss and returns the line
// addresses to prefetch (possibly none). The caller issues them as
// non-binding prefetches.
func (p *Prefetcher) OnMiss(addr int64) []int64 {
	line := addr / p.lineBytes
	p.tick++

	// Find the entry this miss continues: the miss line must be within a
	// small window ahead of the stream in its direction.
	best := -1
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			continue
		}
		d := line - e.lastLine
		if e.dir < 0 {
			d = -d
		}
		if d >= 0 && d <= 4 {
			best = i
			break
		}
		// An untrained entry may still pick its direction from the second
		// miss.
		if e.score == 0 && (d == -1 || d == 1) {
			best = i
			break
		}
	}
	if best < 0 {
		p.allocate(line)
		return nil
	}

	e := &p.table[best]
	e.use = p.tick
	step := line - e.lastLine
	switch {
	case step == 0:
		return nil // same line re-missed (MSHR race); nothing to learn
	case e.score == 0 && (step == 1 || step == -1):
		e.dir = step
		e.score = 1
	case step == e.dir || (step > 0) == (e.dir > 0):
		if e.score < 8 {
			e.score++
		}
		if e.score == p.cfg.TrainThreshold {
			p.Trained++
			e.head = line // prefetching starts ahead of here
		}
	default:
		// Direction broke: retrain from this point.
		e.dir = 0
		e.score = 0
	}
	e.lastLine = line

	if e.score < p.cfg.TrainThreshold {
		return nil
	}
	// Emit up to Degree lines ahead of the observed head, continuing from
	// whatever was already covered.
	target := line + e.dir*int64(p.cfg.Degree)
	out := make([]int64, 0, p.cfg.Degree)
	next := e.head + e.dir
	if e.dir > 0 && next <= line {
		next = line + 1
	}
	if e.dir < 0 && next >= line {
		next = line - 1
	}
	for l := next; ; l += e.dir {
		if e.dir > 0 && l > target {
			break
		}
		if e.dir < 0 && l < target {
			break
		}
		if l < 0 {
			break
		}
		out = append(out, l*p.lineBytes)
	}
	if len(out) > 0 {
		e.head = target
		p.Issued += int64(len(out))
	}
	return out
}

func (p *Prefetcher) allocate(line int64) {
	victim := 0
	for i := range p.table {
		if !p.table[i].valid {
			victim = i
			goto install
		}
		if p.table[i].use < p.table[victim].use {
			victim = i
		}
	}
install:
	p.table[victim] = entry{valid: true, lastLine: line, use: p.tick}
	p.Allocated++
}

// Accuracy helpers for tests and experiments.
func (p *Prefetcher) TableOccupancy() int {
	n := 0
	for _, e := range p.table {
		if e.valid {
			n++
		}
	}
	return n
}
