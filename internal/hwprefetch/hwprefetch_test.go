package hwprefetch

import (
	"math/rand"
	"testing"
)

func collect(p *Prefetcher, lines ...int64) []int64 {
	var out []int64
	for _, l := range lines {
		out = append(out, p.OnMiss(l*64)...)
	}
	return out
}

func TestAscendingStreamTrains(t *testing.T) {
	p := New(DefaultConfig(), 64)
	// First two misses allocate + set direction; third reaches the
	// threshold and triggers prefetches.
	if got := collect(p, 100, 101); len(got) != 0 {
		t.Fatalf("prefetched before training: %v", got)
	}
	got := collect(p, 102)
	if len(got) == 0 {
		t.Fatal("trained stream issued nothing")
	}
	for i, a := range got {
		want := (103 + int64(i)) * 64
		if a != want {
			t.Errorf("prefetch %d = line %d, want %d", i, a/64, want/64)
		}
	}
	if p.Trained != 1 {
		t.Errorf("trained = %d", p.Trained)
	}
}

func TestDescendingStream(t *testing.T) {
	p := New(DefaultConfig(), 64)
	got := collect(p, 500, 499, 498)
	if len(got) == 0 {
		t.Fatal("descending stream not detected")
	}
	for _, a := range got {
		if a/64 >= 498 {
			t.Errorf("descending prefetch went the wrong way: line %d", a/64)
		}
	}
}

func TestNoDuplicatePrefetches(t *testing.T) {
	p := New(DefaultConfig(), 64)
	collect(p, 100, 101, 102)
	// The next miss advances the stream by one; only the uncovered lines
	// should be prefetched again.
	got := collect(p, 103)
	seen := map[int64]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate prefetch %d", a/64)
		}
		seen[a] = true
		if a/64 <= 106 { // degree 4 from line 102 already covered 103..106
			t.Errorf("re-prefetched covered line %d", a/64)
		}
	}
}

func TestRandomMissesStaySilent(t *testing.T) {
	p := New(DefaultConfig(), 64)
	rng := rand.New(rand.NewSource(3))
	issued := 0
	for i := 0; i < 2000; i++ {
		issued += len(p.OnMiss(int64(rng.Intn(1<<26)) * 64))
	}
	// Random addresses should almost never train a stream.
	if issued > 40 {
		t.Errorf("random misses issued %d prefetches", issued)
	}
}

func TestInterleavedStreams(t *testing.T) {
	p := New(DefaultConfig(), 64)
	// Two streams advancing in lockstep, far apart.
	var issued []int64
	a, b := int64(1000), int64(900000)
	for i := int64(0); i < 6; i++ {
		issued = append(issued, p.OnMiss((a+i)*64)...)
		issued = append(issued, p.OnMiss((b+i)*64)...)
	}
	if p.Trained != 2 {
		t.Fatalf("trained = %d, want both streams", p.Trained)
	}
	near, far := false, false
	for _, x := range issued {
		if x/64 > a && x/64 < a+100 {
			near = true
		}
		if x/64 > b && x/64 < b+100 {
			far = true
		}
	}
	if !near || !far {
		t.Error("both streams should prefetch")
	}
}

func TestDirectionBreakRetrains(t *testing.T) {
	p := New(DefaultConfig(), 64)
	collect(p, 100, 101, 102) // trained ascending
	// A jump backwards within the window breaks direction.
	p.OnMiss(99 * 64)
	got := p.OnMiss(98 * 64)
	_ = got // may or may not emit during retrain; must not panic
}

func TestTableLRUAllocation(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 2, TrainThreshold: 2}, 64)
	p.OnMiss(1000 * 64)
	p.OnMiss(2000 * 64)
	if p.TableOccupancy() != 2 {
		t.Fatalf("occupancy = %d", p.TableOccupancy())
	}
	p.OnMiss(3000 * 64) // evicts the LRU entry (1000)
	if p.TableOccupancy() != 2 {
		t.Fatalf("occupancy = %d after eviction", p.TableOccupancy())
	}
	if p.Allocated != 3 {
		t.Errorf("allocations = %d", p.Allocated)
	}
}

func TestSameLineRemissIgnored(t *testing.T) {
	p := New(DefaultConfig(), 64)
	collect(p, 100, 101, 102)
	before := p.Issued
	p.OnMiss(102 * 64) // MSHR race re-miss
	if p.Issued != before {
		t.Error("same-line re-miss must not issue")
	}
}

func TestDegenerateConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{}, 64)
}
