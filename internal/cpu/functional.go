package cpu

import "fbdsim/internal/trace"

// This file is the functional-warming mode of the core model: the sampling
// tier (internal/sample) alternates detailed measured windows with long
// functionally-executed spans, so caches, the AMB prefetch caches and the
// hardware prefetcher stay warm while the channel and DRAM timing models are
// bypassed entirely. A functional span does not advance the simulated clock
// and does not touch the ROB, the load/store queues, the MSHRs or the
// memory-controller queues — in-flight detailed state stays valid and
// completes normally when detailed stepping resumes. Only two things change:
// the trace-stream position (the same instructions a detailed run would
// execute, in the same order) and the cache/prefetcher tag state those
// instructions would leave behind.

// FunctionalAdvance commits n instructions from the core's trace stream
// without timing: gap instructions are counted, memory operations execute
// their cache-state effects instantly through the hierarchy's functional
// path. The dispatch-stream cursor (cur/gapLeft/opPending) stays coherent,
// so a later detailed Tick resumes from the exact stream position.
func (c *Core) FunctionalAdvance(n int64) {
	for n > 0 {
		if c.gapLeft > 0 {
			d := int64(c.gapLeft)
			if d > n {
				d = n
			}
			c.gapLeft -= int(d)
			c.Committed += d
			n -= d
			continue
		}
		if !c.opPending {
			c.fetchNext()
			continue
		}
		switch c.cur.Op {
		case trace.Load:
			c.hier.FunctionalAccess(c.id, c.cur.Addr, false)
		case trace.Store:
			c.hier.FunctionalAccess(c.id, c.cur.Addr, true)
		case trace.Prefetch:
			if c.cfg.SoftwarePrefetch {
				c.hier.FunctionalPrefetch(c.id, c.cur.Addr)
			}
		}
		c.opPending = false
		c.Committed++
		n--
	}
}

// FunctionalAccess performs one load (store=false) or store (store=true) in
// functional-warming mode: cache lookups and fills happen instantly, misses
// propagate their tag effects down to the memory model's functional path,
// and nothing is timed or queued. Lines with an in-flight detailed miss are
// skipped — the pending completion will install them.
func (h *Hierarchy) FunctionalAccess(core int, addr int64, store bool) {
	if h.l1[core].Access(addr, store) {
		return
	}
	line := h.l2.LineAddr(addr)
	if _, ok := h.outstanding[line]; ok {
		return
	}
	if h.l2.Access(addr, store) {
		h.functionalFillL1(core, addr, store)
		return
	}
	h.DemandMisses++
	h.mem.FunctionalRead(line)
	if v := h.l2.Fill(line, store); v.Valid && v.Dirty {
		h.mem.FunctionalWrite(v.Addr)
		h.WBCount++
	}
	h.functionalFillL1(core, addr, store)
	if h.hwpf != nil {
		for _, a := range h.hwpf.OnMiss(line) {
			h.functionalPrefetchLine(a, &h.HWPrefetches)
		}
	}
}

// FunctionalPrefetch is the functional twin of Prefetch (software prefetch
// hints during a functional span).
func (h *Hierarchy) FunctionalPrefetch(core int, addr int64) {
	h.functionalPrefetchLine(addr, &h.SWPrefetches)
}

// functionalPrefetchLine installs a prefetched line instantly, mirroring
// prefetchLine minus the MSHR/issue machinery (functional spans have no
// resource limits to model).
func (h *Hierarchy) functionalPrefetchLine(addr int64, counter *int64) {
	line := h.l2.LineAddr(addr)
	if _, ok := h.outstanding[line]; ok {
		return
	}
	if h.l2.Contains(addr) {
		return
	}
	*counter++
	h.mem.FunctionalRead(line)
	if v := h.l2.FillPrefetch(line); v.Valid && v.Dirty {
		h.mem.FunctionalWrite(v.Addr)
		h.WBCount++
	}
}

// functionalFillL1 mirrors fillL1 but routes dirty L2 victims straight to
// the memory model's functional write path instead of the timed writeback
// queue.
func (h *Hierarchy) functionalFillL1(core int, addr int64, dirty bool) {
	v := h.l1[core].Fill(addr, dirty)
	if v.Valid && v.Dirty {
		lv := h.l2.Fill(v.Addr, true)
		if lv.Valid && lv.Dirty {
			h.mem.FunctionalWrite(lv.Addr)
			h.WBCount++
		}
	}
}
