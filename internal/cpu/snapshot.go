package cpu

import (
	"sort"

	"fbdsim/internal/clock"
	"fbdsim/internal/memreq"
	"fbdsim/internal/snapshot"
	"fbdsim/internal/trace"
)

// Snapshot serializes the core's mutable state: the ROB ring, the queue
// occupancies, the dispatch stream (including the trace generator's PRNG
// position), the dependence tracker and the counters.
func (c *Core) Snapshot(e *snapshot.Encoder) {
	gen, ok := c.gen.(*trace.Synthetic)
	if !ok {
		e.Fail("cpu: core %d trace generator %T is not serializable", c.id, c.gen)
		return
	}
	gen.Snapshot(e)
	e.Int(len(c.ring))
	for _, it := range c.ring {
		e.Int(it.gapBefore)
		e.Bool(it.hasOp)
		e.Bool(it.done)
		e.I64(it.doneCycle)
	}
	e.Int(c.head)
	e.Int(c.n)
	e.Int(c.robCount)
	e.Int(c.lqInUse)
	e.Int(c.sqInUse)
	trace.SnapshotItem(e, c.cur)
	e.Int(c.gapLeft)
	e.Bool(c.opPending)
	e.I64(c.loadSeq)
	e.I64(c.lastLoadSeq)
	e.Bool(c.lastLoadDone)
	e.I64(c.Committed)
	e.I64(c.Stalls)
}

// Restore overwrites the core's mutable state from d. The ring size is
// ROBEntries-derived and must match the constructed machine.
func (c *Core) Restore(d *snapshot.Decoder) {
	gen, ok := c.gen.(*trace.Synthetic)
	if !ok {
		d.Fail("cpu: core %d trace generator %T is not restorable", c.id, c.gen)
		return
	}
	gen.Restore(d)
	if n := d.Int(); n != len(c.ring) {
		d.Fail("cpu: snapshot ROB ring %d, machine %d", n, len(c.ring))
		return
	}
	for i := range c.ring {
		c.ring[i] = robItem{
			gapBefore: d.Int(),
			hasOp:     d.Bool(),
			done:      d.Bool(),
			doneCycle: d.I64(),
		}
	}
	c.head = d.Int()
	c.n = d.Int()
	c.robCount = d.Int()
	c.lqInUse = d.Int()
	c.sqInUse = d.Int()
	c.cur = trace.RestoreItem(d)
	c.gapLeft = d.Int()
	c.opPending = d.Bool()
	c.loadSeq = d.I64()
	c.lastLoadSeq = d.I64()
	c.lastLoadDone = d.Bool()
	c.Committed = d.I64()
	c.Stalls = d.I64()
}

// Snapshot serializes the hierarchy's mutable state: the caches, the MSHR
// table (outstanding misses with their typed waiters), the unissued and
// writeback queues, and the counters. Outstanding entries are written in
// line-address order so identical machine states produce identical bytes;
// unissued entries alias outstanding ones, so they serialize as line
// references. The request pool and MSHR free list are capacity caches with
// no behavioural state and restore empty.
func (h *Hierarchy) Snapshot(e *snapshot.Encoder) {
	e.Int(len(h.l1))
	for _, l1 := range h.l1 {
		l1.Snapshot(e)
	}
	h.l2.Snapshot(e)
	e.Bool(h.hwpf != nil)
	if h.hwpf != nil {
		h.hwpf.Snapshot(e)
	}

	lines := make([]int64, 0, len(h.outstanding))
	for line := range h.outstanding {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.Int(len(lines))
	for _, line := range lines {
		me := h.outstanding[line]
		e.I64(me.line)
		e.Int(me.core)
		e.Bool(me.dirty)
		e.Bool(me.sw)
		e.Bool(me.issued)
		e.I64(int64(me.created))
		e.Int(len(me.waiters))
		for _, w := range me.waiters {
			if w.fn != nil {
				e.Fail("cpu: closure waiter on line %#x is not serializable", me.line)
				return
			}
			e.Int(w.core)
			e.Int(w.ringIdx)
			e.I64(w.seq)
		}
	}
	e.Int(len(h.unissued))
	for _, me := range h.unissued {
		e.I64(me.line)
	}
	e.Int(len(h.writebacks))
	for _, wb := range h.writebacks {
		e.I64(wb.addr)
		e.I64(int64(wb.created))
	}
	e.Int(h.wbHead)
	e.Int(h.l2MSHRInUse)
	e.I64(h.reqID)
	e.I64(int64(h.now))
	e.I64(h.DemandMisses)
	e.I64(h.SWPrefetches)
	e.I64(h.HWPrefetches)
	e.I64(h.WBCount)
	e.I64(h.DroppedPF)
}

// Restore overwrites the hierarchy's mutable state from d. Structural
// shapes (core count, cache geometry, prefetcher presence) must match the
// constructed machine.
func (h *Hierarchy) Restore(d *snapshot.Decoder) {
	if n := d.Int(); n != len(h.l1) {
		d.Fail("cpu: snapshot has %d L1 caches, machine has %d", n, len(h.l1))
		return
	}
	for _, l1 := range h.l1 {
		l1.Restore(d)
	}
	h.l2.Restore(d)
	if havePF := d.Bool(); havePF != (h.hwpf != nil) {
		d.Fail("cpu: snapshot HW prefetcher %v, machine %v", havePF, h.hwpf != nil)
		return
	}
	if h.hwpf != nil {
		h.hwpf.Restore(d)
	}

	n := d.Count(32)
	h.outstanding = make(map[int64]*missEntry, n)
	for i := 0; i < n; i++ {
		me := &missEntry{
			line:    d.I64(),
			core:    d.Int(),
			dirty:   d.Bool(),
			sw:      d.Bool(),
			issued:  d.Bool(),
			created: clock.Time(d.I64()),
		}
		nw := d.Count(24)
		for j := 0; j < nw; j++ {
			me.waiters = append(me.waiters, waiter{core: d.Int(), ringIdx: d.Int(), seq: d.I64()})
		}
		if d.Err() != nil {
			return
		}
		h.outstanding[me.line] = me
	}
	n = d.Count(8)
	h.unissued = h.unissued[:0]
	for i := 0; i < n; i++ {
		line := d.I64()
		me, ok := h.outstanding[line]
		if !ok {
			d.Fail("cpu: unissued miss %#x has no outstanding entry", line)
			return
		}
		h.unissued = append(h.unissued, me)
	}
	n = d.Count(16)
	h.writebacks = h.writebacks[:0]
	for i := 0; i < n; i++ {
		h.writebacks = append(h.writebacks, wbEntry{addr: d.I64(), created: clock.Time(d.I64())})
	}
	h.wbHead = d.Int()
	if h.wbHead < 0 || h.wbHead > len(h.writebacks) {
		d.Fail("cpu: writeback head %d outside queue of %d", h.wbHead, len(h.writebacks))
		return
	}
	h.l2MSHRInUse = d.Int()
	h.reqID = d.I64()
	h.now = clock.Time(d.I64())
	h.DemandMisses = d.I64()
	h.SWPrefetches = d.I64()
	h.HWPrefetches = d.I64()
	h.WBCount = d.I64()
	h.DroppedPF = d.I64()
	h.entryFree = h.entryFree[:0]
}

// RequestCallbacks exposes the hierarchy's shared completion callbacks; the
// controller's Restore rewires each deserialized in-flight request's OnDone
// to them by transaction kind.
func (h *Hierarchy) RequestCallbacks() (onRead, onWrite func(r *memreq.Request)) {
	return h.onReadDone, h.onWriteDone
}
