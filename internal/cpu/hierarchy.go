// Package cpu implements the mechanistic out-of-order core model of
// Table 1 and the cache hierarchy connecting the cores to the memory
// controller. The model is in the USIMM tradition: instructions occupy ROB
// slots and commit in order up to the issue width; loads issue their cache
// access at dispatch and block commit at the ROB head until data returns;
// stores allocate store-queue entries and never block commit; MSHR and
// queue limits bound memory-level parallelism. This reproduces the
// latency/bandwidth/MLP feedback the paper's results rest on without
// simulating instruction semantics.
package cpu

import (
	"fbdsim/internal/cache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/hwprefetch"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/memreq"
)

// waiter is one completion subscription on a missEntry. Production waiters
// are plain data — a core's ROB slot (loads) or store queue (ringIdx < 0) —
// so MSHR state serializes into snapshots; fn is the closure escape hatch
// the closure-based Load/Store test seam uses (nil in production, and a
// snapshot refuses to serialize it).
type waiter struct {
	core    int
	ringIdx int   // ROB ring slot of a load waiter; -1 for a store waiter
	seq     int64 // the load's dispatch sequence number (dependence tracking)
	fn      func(doneCycle int64)
}

// missEntry tracks one outstanding L2 miss (one cacheline) and everyone
// waiting for it. Requests to the same line coalesce into one entry, as
// MSHRs do.
type missEntry struct {
	line    int64
	core    int
	dirty   bool       // a store (RFO) is among the requesters
	sw      bool       // purely a software prefetch (no waiters)
	issued  bool       // accepted by the memory controller
	created clock.Time // MSHR allocation time, kept across Enqueue retries
	waiters []waiter
}

// wbEntry is a dirty victim line awaiting controller space, with the time
// the eviction produced it (the memtrace "created" stamp).
type wbEntry struct {
	addr    int64
	created clock.Time
}

// Hierarchy owns the shared L2, the per-core L1 data caches, the MSHR
// bookkeeping, and the writeback path. It is single-threaded: the system
// loop drives it.
type Hierarchy struct {
	cfg *config.CPU
	l1  []*cache.Cache
	l2  *cache.Cache
	mem *memctrl.Controller

	// cores indexes the registered cores by id — the delivery targets of
	// typed waiters (NewCore self-registers).
	cores []*Core

	outstanding map[int64]*missEntry
	unissued    []*missEntry // created but not yet accepted by the controller
	writebacks  []wbEntry    // dirty victim lines awaiting controller space
	wbHead      int          // first un-drained writeback (the rest were sent)

	// pool recycles memory transactions and entryFree recycles MSHR
	// records, so the steady-state miss path allocates nothing. onReadDone
	// and onWriteDone are the two completion callbacks shared by every
	// request (built once in NewHierarchy, so issuing a request allocates
	// no closure).
	pool        memreq.Pool
	entryFree   []*missEntry
	onReadDone  func(*memreq.Request)
	onWriteDone func(*memreq.Request)

	// hwpf is the optional stream prefetcher trained by demand L2 misses.
	hwpf *hwprefetch.Prefetcher

	l2MSHRInUse int
	reqID       int64
	now         clock.Time // time of the current cycle, set by Tick

	// Stats.
	DemandMisses int64 // L2 demand (load/store) misses sent to memory
	SWPrefetches int64 // software prefetches sent to memory
	HWPrefetches int64 // hardware (stream) prefetches sent to memory
	WBCount      int64 // writebacks sent to memory
	DroppedPF    int64 // prefetches dropped for lack of resources
}

// NewHierarchy builds the hierarchy for cores cores sharing one L2 in
// front of mem.
func NewHierarchy(cfg *config.CPU, cores int, mem *memctrl.Controller) *Hierarchy {
	h := &Hierarchy{
		cfg:         cfg,
		l2:          cache.New(cfg.L2KB, cfg.L2Assoc, cfg.LineBytes),
		mem:         mem,
		outstanding: make(map[int64]*missEntry),
	}
	h.l1 = make([]*cache.Cache, cores)
	for i := range h.l1 {
		h.l1[i] = cache.New(cfg.L1DataKB, cfg.L1Assoc, cfg.LineBytes)
	}
	if cfg.HardwarePrefetch {
		pc := hwprefetch.DefaultConfig()
		if cfg.HWPrefetchStreams > 0 {
			pc.Streams = cfg.HWPrefetchStreams
		}
		if cfg.HWPrefetchDegree > 0 {
			pc.Degree = cfg.HWPrefetchDegree
		}
		h.hwpf = hwprefetch.New(pc, cfg.LineBytes)
	}
	// A read completion resolves its MSHR entry through the outstanding
	// map (the request address is the entry's line), so one callback
	// serves every read ever issued.
	h.onReadDone = func(r *memreq.Request) {
		e := h.outstanding[r.Addr]
		done := r.Done
		h.pool.Put(r)
		h.complete(e, done)
	}
	h.onWriteDone = func(r *memreq.Request) { h.pool.Put(r) }
	return h
}

// HWPrefetcher exposes the hardware prefetcher for statistics (nil when
// disabled).
func (h *Hierarchy) HWPrefetcher() *hwprefetch.Prefetcher { return h.hwpf }

// L2 exposes the shared cache for statistics.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// PrewarmL2 fills every L2 frame with placeholder lines, dirtyFrac of them
// dirty. Short simulations then start from a realistic steady state — every
// demand fill causes an eviction, and dirty evictions generate writeback
// traffic from the first measured cycle instead of only after the multi-
// million-instruction ramp a 4 MB cache would otherwise need. Placeholder
// addresses live far above any core's address space so they never hit.
func (h *Hierarchy) PrewarmL2(dirtyFrac float64) {
	const base = int64(1) << 60
	sets, ways := h.l2.Sets(), h.l2.Ways()
	line := int64(h.cfg.LineBytes)
	mark := int(dirtyFrac * float64(ways))
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			addr := base + (int64(w)*int64(sets)+int64(s))*line
			h.l2.Fill(addr, w < mark)
		}
	}
	// Prewarm fills are bookkeeping, not measured behaviour.
	h.l2.Stats = cache.Stats{}
}

// L1 exposes core i's data cache for statistics.
func (h *Hierarchy) L1(i int) *cache.Cache { return h.l1[i] }

// OutstandingMisses returns the number of L2 misses in flight.
func (h *Hierarchy) OutstandingMisses() int { return len(h.outstanding) }

// registerCore records c as the delivery target for waiters carrying its
// id (NewCore calls it).
func (h *Hierarchy) registerCore(c *Core) {
	for len(h.cores) <= c.id {
		h.cores = append(h.cores, nil)
	}
	h.cores[c.id] = c
}

// deliver routes one completion to its waiter: the test-seam closure when
// present, otherwise the registered core's typed sink.
func (h *Hierarchy) deliver(w waiter, ready int64) {
	if w.fn != nil {
		w.fn(ready)
		return
	}
	c := h.cores[w.core]
	if w.ringIdx < 0 {
		c.storeDone()
	} else {
		c.loadDone(w.ringIdx, w.seq, ready)
	}
}

// Load performs core's load of addr at cycle. On success it returns true
// and guarantees onDone will be called exactly once with the data-ready
// cycle. It returns false when an L2 MSHR is unavailable; the core retries
// next cycle. Cores use LoadROB (typed, serializable waiters); this
// closure form is the direct-drive seam tests use.
func (h *Hierarchy) Load(core int, addr int64, cycle int64, onDone func(int64)) bool {
	return h.load(core, addr, cycle, waiter{core: core, fn: onDone})
}

// LoadROB is Load for a dispatched core load: the waiter is the core's ROB
// ring slot plus dispatch sequence number — plain data, so an in-flight
// miss serializes.
func (h *Hierarchy) LoadROB(core int, addr int64, cycle int64, ringIdx int, seq int64) bool {
	return h.load(core, addr, cycle, waiter{core: core, ringIdx: ringIdx, seq: seq})
}

func (h *Hierarchy) load(core int, addr int64, cycle int64, w waiter) bool {
	if h.l1[core].Access(addr, false) {
		h.deliver(w, cycle+int64(h.cfg.L1HitCycles))
		return true
	}
	line := h.l2.LineAddr(addr)
	if e, ok := h.outstanding[line]; ok {
		e.waiters = append(e.waiters, w)
		e.sw = false
		if e.core != core {
			e.core = core // fill the most recent requester's L1 too
		}
		return true
	}
	if h.l2.Access(addr, false) {
		h.fillL1(core, addr, false)
		h.deliver(w, cycle+int64(h.cfg.L2HitCycles))
		return true
	}
	return h.startMiss(core, line, false, false, w)
}

// Store performs core's store of addr (write-allocate). onDone fires when
// the store-queue entry can be released (line owned locally). Cores use
// StoreSQ; this closure form is the test seam.
func (h *Hierarchy) Store(core int, addr int64, cycle int64, onDone func(int64)) bool {
	return h.store(core, addr, cycle, waiter{core: core, ringIdx: -1, fn: onDone})
}

// StoreSQ is Store for a dispatched core store; completion releases the
// core's store-queue entry through its typed sink.
func (h *Hierarchy) StoreSQ(core int, addr int64, cycle int64) bool {
	return h.store(core, addr, cycle, waiter{core: core, ringIdx: -1})
}

func (h *Hierarchy) store(core int, addr int64, cycle int64, w waiter) bool {
	if h.l1[core].Access(addr, true) {
		h.deliver(w, cycle+int64(h.cfg.L1HitCycles))
		return true
	}
	line := h.l2.LineAddr(addr)
	if e, ok := h.outstanding[line]; ok {
		e.dirty = true
		e.sw = false
		e.waiters = append(e.waiters, w)
		return true
	}
	if h.l2.Access(addr, true) {
		h.fillL1(core, addr, true)
		h.deliver(w, cycle+int64(h.cfg.L2HitCycles))
		return true
	}
	return h.startMiss(core, line, true, false, w)
}

// Prefetch executes a software prefetch: it warms the L2 without blocking
// anything. Short of resources it is silently dropped, as hardware does.
func (h *Hierarchy) Prefetch(core int, addr int64, cycle int64) {
	h.prefetchLine(core, addr, &h.SWPrefetches)
}

// prefetchLine issues a non-binding L2 fill for addr, counting it against
// counter. Duplicate, resident or resource-starved prefetches drop.
func (h *Hierarchy) prefetchLine(core int, addr int64, counter *int64) {
	line := h.l2.LineAddr(addr)
	if _, ok := h.outstanding[line]; ok {
		return
	}
	if h.l2.Contains(addr) {
		return
	}
	if h.l2MSHRInUse >= h.cfg.L2MSHRs {
		h.DroppedPF++
		return
	}
	e := h.newEntry(line, core, false, true)
	h.outstanding[line] = e
	h.l2MSHRInUse++
	*counter++
	if !h.issue(e) {
		h.unissued = append(h.unissued, e)
	}
}

// trainHW feeds the hardware prefetcher with a demand miss and issues
// whatever it wants fetched.
func (h *Hierarchy) trainHW(core int, line int64) {
	if h.hwpf == nil {
		return
	}
	for _, a := range h.hwpf.OnMiss(line) {
		h.prefetchLine(core, a, &h.HWPrefetches)
	}
}

// startMiss allocates the MSHR and memory request for a demand miss.
func (h *Hierarchy) startMiss(core int, line int64, dirty, sw bool, w waiter) bool {
	if h.l2MSHRInUse >= h.cfg.L2MSHRs {
		return false
	}
	e := h.newEntry(line, core, dirty, sw)
	e.waiters = append(e.waiters, w)
	h.outstanding[line] = e
	h.l2MSHRInUse++
	h.DemandMisses++
	if !h.issue(e) {
		h.unissued = append(h.unissued, e)
	}
	h.trainHW(core, line)
	return true
}

// newEntry allocates an MSHR record stamped with the current time, reusing
// a freed one (and its waiters backing array) when available.
func (h *Hierarchy) newEntry(line int64, core int, dirty, sw bool) *missEntry {
	if n := len(h.entryFree); n > 0 {
		e := h.entryFree[n-1]
		h.entryFree = h.entryFree[:n-1]
		*e = missEntry{line: line, core: core, dirty: dirty, sw: sw, created: h.now, waiters: e.waiters[:0]}
		return e
	}
	return &missEntry{line: line, core: core, dirty: dirty, sw: sw, created: h.now}
}

// freeEntry recycles a completed MSHR record. Waiter records are cleared
// so the free list cannot pin dead closures.
func (h *Hierarchy) freeEntry(e *missEntry) {
	for i := range e.waiters {
		e.waiters[i] = waiter{}
	}
	h.entryFree = append(h.entryFree, e)
}

// issue hands the miss to the memory controller; false means the
// transaction buffer was full and the entry stays on the unissued list.
func (h *Hierarchy) issue(e *missEntry) bool {
	h.reqID++
	req := h.pool.Get()
	req.ID = h.reqID
	req.Addr = e.line
	req.Kind = memreq.Read
	req.Core = e.core
	req.SWPrefetch = e.sw
	req.Created = e.created
	req.OnDone = h.onReadDone
	if !h.mem.Enqueue(req, h.now) {
		h.pool.Put(req)
		return false
	}
	e.issued = true
	return true
}

// complete fills the caches and releases waiters when memory data returns.
func (h *Hierarchy) complete(e *missEntry, at clock.Time) {
	doneCycle := clock.CyclesCeil(at)
	delete(h.outstanding, e.line)
	h.l2MSHRInUse--

	var victim cache.Victim
	if e.sw {
		victim = h.l2.FillPrefetch(e.line)
	} else {
		victim = h.l2.Fill(e.line, e.dirty)
		h.fillL1(e.core, e.line, e.dirty)
	}
	if victim.Valid && victim.Dirty {
		h.writeback(victim.Addr)
	}
	ready := doneCycle + int64(h.cfg.L2HitCycles)
	for _, w := range e.waiters {
		h.deliver(w, ready)
	}
	h.freeEntry(e)
}

func (h *Hierarchy) fillL1(core int, addr int64, dirty bool) {
	v := h.l1[core].Fill(addr, dirty)
	if v.Valid && v.Dirty {
		// Dirty L1 victim folds back into the L2.
		lv := h.l2.Fill(v.Addr, true)
		if lv.Valid && lv.Dirty {
			h.writeback(lv.Addr)
		}
	}
}

// writeback queues a dirty line for memory.
func (h *Hierarchy) writeback(line int64) {
	h.writebacks = append(h.writebacks, wbEntry{addr: line, created: h.now})
}

// Tick retries unissued misses and pending writebacks; the system loop
// calls it every CPU cycle with the current time.
func (h *Hierarchy) Tick(cycle int64, now clock.Time) {
	h.now = now
	// Retry unissued demand misses first: they block cores.
	n := 0
	for _, e := range h.unissued {
		if !e.issued && !h.issue(e) {
			h.unissued[n] = e
			n++
		}
	}
	h.unissued = h.unissued[:n]

	for h.wbHead < len(h.writebacks) {
		h.reqID++
		wb := h.writebacks[h.wbHead]
		req := h.pool.Get()
		req.ID = h.reqID
		req.Addr = wb.addr
		req.Kind = memreq.Write
		req.Created = wb.created
		req.OnDone = h.onWriteDone
		if !h.mem.Enqueue(req, now) {
			h.pool.Put(req)
			break
		}
		h.WBCount++
		h.wbHead++
	}
	if h.wbHead > 0 && h.wbHead == len(h.writebacks) {
		h.writebacks = h.writebacks[:0]
		h.wbHead = 0
	}
}

// SetNow pins the hierarchy's notion of "now". The fast-forward loop calls
// it before a controller tick that follows a skipped stretch: in the
// reference loop h.now still holds the previous cycle's time at that point
// (Hierarchy.Tick runs after Controller.Tick), and writebacks created by
// completion callbacks inside the controller tick inherit that stamp.
// Reproducing it keeps memtrace output bit-identical.
func (h *Hierarchy) SetNow(now clock.Time) {
	if now < 0 {
		now = 0
	}
	h.now = now
}

// Quiescent reports whether a Tick right now would be a no-op: no unissued
// miss or pending writeback that the controller would currently accept.
// Entries blocked on a full controller queue do not count — the queue only
// drains inside a controller tick, and the controller's own next-event
// query schedules that.
func (h *Hierarchy) Quiescent() bool {
	for _, e := range h.unissued {
		if h.mem.CanAccept(e.line, memreq.Read) {
			return false
		}
	}
	if h.wbHead < len(h.writebacks) && h.mem.CanAccept(h.writebacks[h.wbHead].addr, memreq.Write) {
		return false
	}
	return true
}

// canAccept is the side-effect-free twin of Load/Store: would the access
// succeed this cycle? Hits, coalescing with an outstanding miss, and free
// MSHRs all accept; only MSHR exhaustion refuses. It must never return
// false when Load/Store would succeed (the fast-forward contract); false
// positives merely cost an executed cycle.
func (h *Hierarchy) canAccept(core int, addr int64) bool {
	if h.l1[core].Contains(addr) {
		return true
	}
	line := h.l2.LineAddr(addr)
	if _, ok := h.outstanding[line]; ok {
		return true
	}
	if h.l2.Contains(addr) {
		return true
	}
	return h.l2MSHRInUse < h.cfg.L2MSHRs
}

// CanAcceptLoad reports whether a load of addr by core would be accepted
// this cycle (no side effects).
func (h *Hierarchy) CanAcceptLoad(core int, addr int64) bool { return h.canAccept(core, addr) }

// CanAcceptStore reports whether a store of addr by core would be accepted
// this cycle (no side effects).
func (h *Hierarchy) CanAcceptStore(core int, addr int64) bool { return h.canAccept(core, addr) }

// ReplayBlockedProbes credits the cache statistics of n failed dispatch
// probes by core: each cycle the reference loop spends in the
// MSHR-exhaustion retry state performs one missing L1 lookup and one
// missing L2 lookup (no LRU or other state is touched on a miss), so the
// fast-forward loop adds the counts in bulk for the cycles it skips.
func (h *Hierarchy) ReplayBlockedProbes(core int, n int64) {
	h.l1[core].Stats.Accesses += n
	h.l1[core].Stats.Misses += n
	h.l2.Stats.Accesses += n
	h.l2.Stats.Misses += n
}
