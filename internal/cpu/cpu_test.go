package cpu

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/memctrl"
	"fbdsim/internal/trace"
)

// script replays a fixed item sequence, then repeats its last item forever.
type script struct {
	items []trace.Item
	pos   int
}

func (s *script) Next(it *trace.Item) {
	if s.pos < len(s.items) {
		*it = s.items[s.pos]
		s.pos++
		return
	}
	*it = s.items[len(s.items)-1]
}

// loop cycles through items forever.
type loop struct {
	items []trace.Item
	pos   int
}

func (l *loop) Next(it *trace.Item) {
	*it = l.items[l.pos%len(l.items)]
	l.pos++
}

// rig wires one or more cores to a real memory controller.
type rig struct {
	cfg   config.Config
	ctrl  *memctrl.Controller
	hier  *Hierarchy
	cores []*Core
	cycle int64
	ratio int64
}

func newRig(t *testing.T, gens []trace.Generator, mutate func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.CPU.Cores = len(gens)
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	r := &rig{cfg: cfg, ratio: int64(clock.CPUCyclesPerTCK(cfg.Mem.DataRate))}
	r.ctrl = memctrl.New(&r.cfg.Mem)
	r.hier = NewHierarchy(&r.cfg.CPU, len(gens), r.ctrl)
	for i, g := range gens {
		r.cores = append(r.cores, NewCore(&r.cfg.CPU, i, g, r.hier))
	}
	return r
}

func (r *rig) step(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		now := clock.Time(r.cycle) * clock.CPUCycle
		if r.cycle%r.ratio == 0 {
			r.ctrl.Tick(now)
		}
		r.hier.Tick(r.cycle, now)
		for _, c := range r.cores {
			c.Tick(r.cycle)
		}
		r.cycle++
	}
}

// TestComputeBoundIPC: with no memory operations beyond an L1-resident
// address, the core sustains nearly the full issue width.
func TestComputeBoundIPC(t *testing.T) {
	gen := &loop{items: []trace.Item{{Gap: 63, Op: trace.Load, Addr: 0}}}
	r := newRig(t, []trace.Generator{gen}, nil)
	r.step(500) // absorb the single cold miss
	start := r.cores[0].Committed
	r.step(2000)
	ipc := float64(r.cores[0].Committed-start) / 2000
	if ipc < 7.5 {
		t.Errorf("compute-bound IPC = %.2f, want near issue width 8", ipc)
	}
}

// TestLoadMissBlocksCommit: a single missing load stalls the core for the
// full memory latency.
func TestLoadMissBlocksCommit(t *testing.T) {
	gen := &script{items: []trace.Item{
		{Gap: 0, Op: trace.Load, Addr: 1 << 30},
		{Gap: 1 << 30, Op: trace.Load, Addr: 0}, // effectively: compute forever
	}}
	r := newRig(t, []trace.Generator{gen}, nil)
	r.step(4)
	if r.cores[0].Committed != 0 {
		t.Fatalf("committed %d before miss returned", r.cores[0].Committed)
	}
	// Miss latency is ~63ns + L2 fill = ~78ns ≈ 315 cycles.
	r.step(400)
	if r.cores[0].Committed == 0 {
		t.Fatal("core never unblocked")
	}
}

// TestMLPOverlapsIndependentMisses: N independent misses complete in far
// less than N serial latencies.
func TestMLPOverlapsIndependentMisses(t *testing.T) {
	var items []trace.Item
	for i := 1; i <= 8; i++ {
		// Consecutive lines spread across channels/DIMMs/banks under
		// cacheline interleaving: genuinely independent resources.
		items = append(items, trace.Item{Gap: 0, Op: trace.Load, Addr: int64(i) * 64})
	}
	items = append(items, trace.Item{Gap: 1 << 30, Op: trace.Load, Addr: 1 << 40})
	r := newRig(t, []trace.Generator{&script{items: items}}, nil)
	// Serial would need 8 x ~300 = 2400 cycles; overlap finishes well under.
	r.step(1200)
	if got := r.cores[0].Committed; got < 9 {
		t.Errorf("committed %d; independent misses did not overlap", got)
	}
}

// TestDependentLoadsSerialize: the same misses with Dep set take roughly N
// serial latencies.
func TestDependentLoadsSerialize(t *testing.T) {
	mk := func(dep bool) *script {
		var items []trace.Item
		for i := 1; i <= 4; i++ {
			items = append(items, trace.Item{Op: trace.Load, Addr: int64(i) * 64, Dep: dep && i > 1})
		}
		items = append(items, trace.Item{Gap: 1 << 30, Op: trace.Load, Addr: 1 << 40})
		return &script{items: items}
	}
	indep := newRig(t, []trace.Generator{mk(false)}, nil)
	dep := newRig(t, []trace.Generator{mk(true)}, nil)

	cyclesTo := func(r *rig, n int64) int64 {
		for r.cycle < 100000 {
			r.step(50)
			if r.cores[0].Committed >= n {
				return r.cycle
			}
		}
		t.Fatal("never committed enough")
		return 0
	}
	ci := cyclesTo(indep, 5)
	cd := cyclesTo(dep, 5)
	if cd < ci*2 {
		t.Errorf("dependent chain (%d cycles) should be far slower than independent (%d)", cd, ci)
	}
}

// TestLQLimit: outstanding loads never exceed the load-queue size.
func TestLQLimit(t *testing.T) {
	var items []trace.Item
	for i := 0; i < 200; i++ {
		items = append(items, trace.Item{Op: trace.Load, Addr: int64(i) * 4096})
	}
	r := newRig(t, []trace.Generator{&script{items: items}}, func(c *config.Config) {
		c.CPU.LQEntries = 8
	})
	for i := 0; i < 100; i++ {
		r.step(10)
		if got := r.cores[0].LQInUse(); got > 8 {
			t.Fatalf("LQ occupancy %d exceeds limit", got)
		}
	}
}

// TestSQLimit: outstanding stores never exceed the store-queue size, and
// stores do not block commit once accepted.
func TestSQLimit(t *testing.T) {
	var items []trace.Item
	for i := 0; i < 200; i++ {
		items = append(items, trace.Item{Op: trace.Store, Addr: int64(i) * 4096})
	}
	r := newRig(t, []trace.Generator{&script{items: items}}, func(c *config.Config) {
		c.CPU.SQEntries = 8
	})
	for i := 0; i < 200; i++ {
		r.step(10)
		if got := r.cores[0].SQInUse(); got > 8 {
			t.Fatalf("SQ occupancy %d exceeds limit", got)
		}
	}
	if r.cores[0].Committed == 0 {
		t.Error("stores must commit without blocking")
	}
}

// TestROBNeverOverflows across a mixed workload.
func TestROBNeverOverflows(t *testing.T) {
	p, err := trace.ProfileFor("swim")
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewSynthetic(p, 0, 42)
	r := newRig(t, []trace.Generator{gen}, nil)
	for i := 0; i < 300; i++ {
		r.step(20)
		if got := r.cores[0].ROBOccupancy(); got > r.cfg.CPU.ROBEntries {
			t.Fatalf("ROB occupancy %d exceeds %d", got, r.cfg.CPU.ROBEntries)
		}
	}
}

// ------------------------------------------------------------- hierarchy

// TestHierarchyHitLatencies checks the L1 and L2 hit paths.
func TestHierarchyHitLatencies(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier

	var ready int64 = -1
	// Cold: miss (returns true, completes later).
	if !h.Load(0, 0, 0, func(c int64) { ready = c }) {
		t.Fatal("load rejected")
	}
	r.step(500)
	if ready < 0 {
		t.Fatal("miss never completed")
	}

	// Now L1-resident.
	ready = -1
	h.Load(0, 0, r.cycle, func(c int64) { ready = c })
	if ready != r.cycle+3 {
		t.Errorf("L1 hit ready at %d, want cycle+3", ready-r.cycle)
	}

	// Evict from L1 only: a second line in the same L1 set... simpler:
	// use a fresh address that is L2-resident after prefetch.
	h.Prefetch(0, 1<<20, r.cycle)
	r.step(500)
	ready = -1
	h.Load(0, 1<<20, r.cycle, func(c int64) { ready = c })
	if ready != r.cycle+15 {
		t.Errorf("L2 hit ready at +%d, want +15", ready-r.cycle)
	}
}

// TestMSHRCoalescing: loads to one line share a single memory request.
func TestMSHRCoalescing(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	done := 0
	for i := 0; i < 4; i++ {
		if !h.Load(0, int64(i*8), 0, func(int64) { done++ }) {
			t.Fatalf("load %d rejected", i)
		}
	}
	if h.OutstandingMisses() != 1 {
		t.Errorf("outstanding = %d, want 1 (coalesced)", h.OutstandingMisses())
	}
	if h.DemandMisses != 1 {
		t.Errorf("demand misses = %d", h.DemandMisses)
	}
	r.step(500)
	if done != 4 {
		t.Errorf("waiters completed = %d, want 4", done)
	}
}

// TestMSHRLimit: the hierarchy refuses new misses at the L2 MSHR cap.
func TestMSHRLimit(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}},
		func(c *config.Config) { c.CPU.L2MSHRs = 4 })
	h := r.hier
	for i := 0; i < 4; i++ {
		if !h.Load(0, int64(i)*4096, 0, func(int64) {}) {
			t.Fatalf("load %d rejected below cap", i)
		}
	}
	if h.Load(0, 99*4096, 0, func(int64) {}) {
		t.Error("load accepted beyond MSHR cap")
	}
	// Prefetches are dropped, not rejected.
	h.Prefetch(0, 98*4096, 0)
	if h.DroppedPF != 1 {
		t.Errorf("dropped prefetches = %d", h.DroppedPF)
	}
	// After completion the MSHR frees up.
	r.step(1000)
	if !h.Load(0, 99*4096, r.cycle, func(int64) {}) {
		t.Error("load rejected after MSHRs freed")
	}
}

// TestStoreRFOAndWriteback: a store miss fetches the line (read), dirties
// it, and its eventual eviction writes back to memory.
func TestStoreRFOAndWriteback(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	h.PrewarmL2(1.0) // every frame dirty: first eviction writes back

	freed := false
	if !h.Store(0, 0, 0, func(int64) { freed = true }) {
		t.Fatal("store rejected")
	}
	r.step(600)
	if !freed {
		t.Fatal("store never released its queue entry")
	}
	// The fill evicted a dirty prewarm line → one memory write (plus the
	// RFO read).
	if h.WBCount != 1 {
		t.Errorf("writebacks = %d, want 1", h.WBCount)
	}
	if got := r.ctrl.Stats.Reads; got != 1 {
		t.Errorf("memory reads = %d, want 1 (the RFO)", got)
	}
	r.step(2000)
	if got := r.ctrl.Stats.Writes; got != 1 {
		t.Errorf("memory writes = %d, want 1", got)
	}
}

// TestPrewarmL2FillsEveryFrame.
func TestPrewarmL2FillsEveryFrame(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	h.PrewarmL2(0.5)
	l2 := h.L2()
	if got, want := l2.Occupancy(), l2.Sets()*l2.Ways(); got != want {
		t.Errorf("prewarm occupancy = %d, want %d", got, want)
	}
	if l2.Stats.Accesses != 0 {
		t.Error("prewarm must not count as accesses")
	}
}

// TestSoftwarePrefetchWarmsL2: after a prefetch completes, the demand load
// is an L2 hit.
func TestSoftwarePrefetchWarmsL2(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	h.Prefetch(0, 4096, 0)
	if h.SWPrefetches != 1 {
		t.Fatalf("prefetches issued = %d", h.SWPrefetches)
	}
	r.step(600)
	ready := int64(-1)
	h.Load(0, 4096, r.cycle, func(c int64) { ready = c })
	if ready != r.cycle+15 {
		t.Errorf("post-prefetch load ready at +%d, want L2 hit (+15)", ready-r.cycle)
	}
	if h.DemandMisses != 0 {
		t.Errorf("demand misses = %d, want 0", h.DemandMisses)
	}
}

// TestPrefetchDeduplication: prefetching an outstanding or resident line is
// a no-op.
func TestPrefetchDeduplication(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	h.Prefetch(0, 0, 0)
	h.Prefetch(0, 0, 0) // outstanding: dropped silently
	if h.SWPrefetches != 1 {
		t.Errorf("prefetches = %d, want 1", h.SWPrefetches)
	}
	r.step(600)
	h.Prefetch(0, 0, r.cycle) // resident: no-op
	if h.SWPrefetches != 1 {
		t.Errorf("prefetches = %d after resident prefetch", h.SWPrefetches)
	}
}

// TestMultiCoreSharedL2: one core's fill serves another core's... actually
// address spaces are disjoint in real workloads; here we check two cores
// make independent progress on a shared hierarchy.
func TestMultiCoreProgress(t *testing.T) {
	mk := func() trace.Generator {
		return &loop{items: []trace.Item{{Gap: 20, Op: trace.Load, Addr: 0}}}
	}
	r := newRig(t, []trace.Generator{mk(), mk(), mk(), mk()}, nil)
	r.step(3000)
	for i, c := range r.cores {
		if c.Committed == 0 {
			t.Errorf("core %d made no progress", i)
		}
	}
}

// TestL1DirtyEvictionFoldsIntoL2: a dirty line displaced from an L1 is
// written back into the L2 (and from there eventually to memory), never
// silently dropped.
func TestL1DirtyEvictionFoldsIntoL2(t *testing.T) {
	r := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1 << 20, Op: trace.Load, Addr: 0}}}}, nil)
	h := r.hier
	l1 := h.L1(0)

	// Dirty a line in L1 set 0, then displace it with conflicting fills.
	done := false
	if !h.Store(0, 0, 0, func(int64) { done = true }) {
		t.Fatal("store rejected")
	}
	r.step(600)
	if !done || !l1.Contains(0) {
		t.Fatal("store line not resident in L1")
	}
	setStride := int64(l1.Sets() * 64)
	for i := int64(1); i <= int64(l1.Ways()); i++ {
		if !h.Load(0, i*setStride, r.cycle, func(int64) {}) {
			t.Fatal("conflict load rejected")
		}
		r.step(600)
	}
	if l1.Contains(0) {
		t.Fatal("conflict fills failed to evict the dirty line")
	}
	// The dirty data survives in the L2 (the fold-back path).
	if !h.L2().Contains(0) {
		t.Fatal("dirty L1 victim lost: not in L2")
	}
	ready := int64(-1)
	h.Load(0, 0, r.cycle, func(c int64) { ready = c })
	if ready != r.cycle+15 {
		t.Errorf("reload ready at +%d, want L2 hit (+15)", ready-r.cycle)
	}
}

// TestHWPrefetcherAccessorNil: the accessor reports absence when disabled.
func TestHWPrefetcherAccessor(t *testing.T) {
	off := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1, Op: trace.Load, Addr: 0}}}}, nil)
	if off.hier.HWPrefetcher() != nil {
		t.Error("prefetcher present while disabled")
	}
	on := newRig(t, []trace.Generator{&loop{items: []trace.Item{{Gap: 1, Op: trace.Load, Addr: 0}}}},
		func(c *config.Config) { c.CPU.HardwarePrefetch = true })
	if on.hier.HWPrefetcher() == nil {
		t.Error("prefetcher missing while enabled")
	}
}
