package cpu

import (
	"fmt"

	"fbdsim/internal/config"
	"fbdsim/internal/trace"
)

// robItem is one reorder-buffer record: a run of freely-committing
// instructions (gapBefore) optionally followed by one load that must wait
// for its data. Stores and prefetches commit freely and are folded into the
// gap; only loads can stall the ROB head.
type robItem struct {
	gapBefore int
	hasOp     bool
	done      bool
	doneCycle int64
}

// Core is one out-of-order processor core running a trace.
type Core struct {
	cfg  *config.CPU
	id   int
	gen  trace.Generator
	hier *Hierarchy

	// ROB as a ring of robItems; items never move, so callbacks may hold
	// indices.
	ring     []robItem
	head, n  int
	robCount int // instructions currently in the ROB

	lqInUse int
	sqInUse int

	// Dispatch stream state.
	cur       trace.Item
	gapLeft   int
	opPending bool // cur's op has not been dispatched yet

	// Dependent loads (Item.Dep) wait for their producer's data. Each
	// dispatched load gets the next loadSeq; lastLoadDone reports whether
	// the load carrying lastLoadSeq has completed. Plain data (rather than
	// a shared *bool flipped by a closure) so the whole dependence state
	// serializes into a snapshot.
	loadSeq      int64
	lastLoadSeq  int64
	lastLoadDone bool

	// Committed is the cumulative number of committed instructions.
	Committed int64
	// Stalls counts cycles in which nothing committed while the ROB was
	// non-empty (diagnostic).
	Stalls int64
}

// NewCore builds core id fed by gen and backed by hier.
func NewCore(cfg *config.CPU, id int, gen trace.Generator, hier *Hierarchy) *Core {
	c := &Core{
		cfg:          cfg,
		id:           id,
		gen:          gen,
		hier:         hier,
		ring:         make([]robItem, cfg.ROBEntries+2),
		lastLoadDone: true, // no producer load outstanding yet
	}
	hier.registerCore(c)
	c.fetchNext()
	return c
}

func (c *Core) fetchNext() {
	c.gen.Next(&c.cur)
	c.gapLeft = c.cur.Gap
	c.opPending = true
}

func (c *Core) tailIndex() int { return (c.head + c.n - 1) % len(c.ring) }

// addGap appends d freely-committing instructions to the ROB tail.
func (c *Core) addGap(d int) {
	if c.n > 0 {
		t := &c.ring[c.tailIndex()]
		if !t.hasOp {
			t.gapBefore += d
			c.robCount += d
			return
		}
	}
	c.push(robItem{gapBefore: d})
	c.robCount += d
}

// addLoad appends a load record and returns its ring index for the
// completion callback.
func (c *Core) addLoad() int {
	if c.n > 0 {
		t := c.tailIndex()
		if !c.ring[t].hasOp {
			c.ring[t].hasOp = true
			c.ring[t].done = false
			c.robCount++
			return t
		}
	}
	c.push(robItem{hasOp: true})
	c.robCount++
	return c.tailIndex()
}

func (c *Core) push(it robItem) {
	if c.n == len(c.ring) {
		panic(fmt.Sprintf("cpu: core %d ROB ring overflow", c.id))
	}
	c.ring[(c.head+c.n)%len(c.ring)] = it
	c.n++
}

// Tick advances the core one CPU cycle: in-order commit from the ROB head,
// then dispatch of new instructions while resources allow.
func (c *Core) Tick(cycle int64) {
	c.commit(cycle)
	c.dispatch(cycle)
}

// waitsExternal is the NextEventCycle sentinel for "blocked until a memory
// completion callback fires". Completions only fire inside controller
// ticks, which the system loop schedules from the controller's own
// next-event query, so a core reporting waitsExternal never needs a wakeup
// of its own.
const waitsExternal = int64(1)<<62 - 1

// NextEventCycle reports the earliest cycle at or after next whose Tick
// could change core state, assuming no memory completion callback fires
// before then. It returns next itself when the core can make progress
// immediately, the ROB head's data-ready cycle when commit is the only
// thing pending, and waitsExternal when the core is fully blocked on the
// memory system. The estimate is conservative: it may return an earlier
// cycle than the true next event (costing a wasted tick), never a later
// one — that is the contract that keeps the fast-forward loop bit-identical
// to the reference loop.
func (c *Core) NextEventCycle(next int64) int64 {
	wake := waitsExternal
	if c.n > 0 {
		it := &c.ring[c.head]
		if it.gapBefore > 0 || !it.hasOp {
			return next // free-committing instructions (or an empty record) at the head
		}
		if it.done {
			if it.doneCycle <= next {
				return next // head load's data is ready: commit proceeds
			}
			wake = it.doneCycle
		}
	}
	if c.robCount < c.cfg.ROBEntries {
		if c.gapLeft > 0 || !c.opPending {
			return next // plain instructions still to dispatch
		}
		if c.canDispatchOp() {
			return next
		}
	}
	return wake
}

// canDispatchOp mirrors dispatchOp's resource checks without side effects.
// It must never report false when dispatchOp would succeed (that would let
// the system skip a dispatch); reporting true when dispatchOp would fail
// merely costs an extra executed cycle.
func (c *Core) canDispatchOp() bool {
	switch c.cur.Op {
	case trace.Load:
		if c.lqInUse >= c.cfg.LQEntries {
			return false
		}
		if c.cur.Dep && !c.lastLoadDone {
			return false
		}
		return c.hier.CanAcceptLoad(c.id, c.cur.Addr)
	case trace.Store:
		if c.sqInUse >= c.cfg.SQEntries {
			return false
		}
		return c.hier.CanAcceptStore(c.id, c.cur.Addr)
	default: // a prefetch (or its NOP stand-in) always dispatches
		return true
	}
}

// AddStallCycles accounts skipped quiescent cycles: the reference loop
// would have counted each of them as a commit stall while the ROB was
// non-empty.
func (c *Core) AddStallCycles(n int64) {
	if c.n > 0 {
		c.Stalls += n
	}
}

// RetryProbesCache reports whether the core is blocked in the one dispatch
// state that touches the cache hierarchy every cycle: an op that clears the
// queue and dependence checks but is refused by the hierarchy (MSHR
// exhaustion). The reference loop pays a failed L1 and L2 lookup — and
// their statistics — for each such cycle; the fast-forward loop replays
// those counts in bulk via Hierarchy.ReplayBlockedProbes. Only meaningful
// when NextEventCycle did not report immediate progress.
func (c *Core) RetryProbesCache() bool {
	if c.robCount >= c.cfg.ROBEntries || c.gapLeft > 0 || !c.opPending {
		return false
	}
	switch c.cur.Op {
	case trace.Load:
		if c.lqInUse >= c.cfg.LQEntries {
			return false
		}
		return !(c.cur.Dep && !c.lastLoadDone)
	case trace.Store:
		return c.sqInUse < c.cfg.SQEntries
	default:
		return false
	}
}

func (c *Core) commit(cycle int64) {
	budget := c.cfg.IssueWidth
	before := c.Committed
	for budget > 0 && c.n > 0 {
		it := &c.ring[c.head]
		if it.gapBefore > 0 {
			d := it.gapBefore
			if d > budget {
				d = budget
			}
			it.gapBefore -= d
			c.robCount -= d
			c.Committed += int64(d)
			budget -= d
			if budget == 0 {
				break
			}
		}
		if !it.hasOp {
			c.head = (c.head + 1) % len(c.ring)
			c.n--
			continue
		}
		if !it.done || it.doneCycle > cycle {
			break // load at head still waiting for data
		}
		c.robCount--
		c.Committed++
		c.lqInUse--
		budget--
		c.head = (c.head + 1) % len(c.ring)
		c.n--
	}
	if c.Committed == before && c.n > 0 {
		c.Stalls++
	}
}

func (c *Core) dispatch(cycle int64) {
	budget := c.cfg.IssueWidth
	for budget > 0 && c.robCount < c.cfg.ROBEntries {
		if c.gapLeft > 0 {
			d := c.gapLeft
			if d > budget {
				d = budget
			}
			if room := c.cfg.ROBEntries - c.robCount; d > room {
				d = room
			}
			c.addGap(d)
			c.gapLeft -= d
			budget -= d
			continue
		}
		if !c.opPending {
			c.fetchNext()
			continue
		}
		if !c.dispatchOp(cycle) {
			return // resource-blocked; retry next cycle
		}
		budget--
		c.opPending = false
		c.fetchNext()
	}
}

// dispatchOp issues the current memory operation; false means a structural
// resource (LQ, SQ, MSHR) is unavailable this cycle.
func (c *Core) dispatchOp(cycle int64) bool {
	switch c.cur.Op {
	case trace.Load:
		if c.lqInUse >= c.cfg.LQEntries {
			return false
		}
		if c.cur.Dep && !c.lastLoadDone {
			return false // producer load still outstanding
		}
		idx := c.addLoad()
		c.loadSeq++
		// Arm the dependence tracker before issuing: a hit completes
		// synchronously inside LoadROB and must find its own seq armed.
		prevSeq, prevDone := c.lastLoadSeq, c.lastLoadDone
		c.lastLoadSeq, c.lastLoadDone = c.loadSeq, false
		if !c.hier.LoadROB(c.id, c.cur.Addr, cycle, idx, c.loadSeq) {
			// Roll the speculative ROB entry back; no MSHR was free.
			c.unwindLoad(idx)
			c.loadSeq--
			c.lastLoadSeq, c.lastLoadDone = prevSeq, prevDone
			return false
		}
		c.lqInUse++
		return true

	case trace.Store:
		if c.sqInUse >= c.cfg.SQEntries {
			return false
		}
		if !c.hier.StoreSQ(c.id, c.cur.Addr, cycle) {
			return false
		}
		c.sqInUse++
		c.addGap(1) // stores commit without blocking
		return true

	case trace.Prefetch:
		if c.cfg.SoftwarePrefetch {
			c.hier.Prefetch(c.id, c.cur.Addr, cycle)
		}
		c.addGap(1) // a prefetch (or its NOP stand-in) commits freely
		return true

	default:
		panic(fmt.Sprintf("cpu: unknown op %v", c.cur.Op))
	}
}

// loadDone is the hierarchy's completion sink for a dispatched load: the
// data for the load in ring slot idx (dispatch sequence seq) is ready at
// cycle ready. Called synchronously for cache hits, from a miss entry's
// waiter list otherwise.
func (c *Core) loadDone(idx int, seq int64, ready int64) {
	c.ring[idx].done = true
	c.ring[idx].doneCycle = ready
	if seq == c.lastLoadSeq {
		c.lastLoadDone = true
	}
}

// storeDone releases the store-queue entry of a completed store.
func (c *Core) storeDone() { c.sqInUse-- }

// unwindLoad removes the just-added load record (it must be the tail).
func (c *Core) unwindLoad(idx int) {
	if idx != c.tailIndex() || !c.ring[idx].hasOp {
		panic("cpu: unwind of non-tail load")
	}
	c.ring[idx].hasOp = false
	c.robCount--
	if c.ring[idx].gapBefore == 0 {
		c.n--
	}
}

// ROBOccupancy reports instructions currently in flight (diagnostics).
func (c *Core) ROBOccupancy() int { return c.robCount }

// LQInUse and SQInUse expose queue occupancy for tests.
func (c *Core) LQInUse() int { return c.lqInUse }
func (c *Core) SQInUse() int { return c.sqInUse }
