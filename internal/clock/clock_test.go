package clock

import (
	"testing"
	"testing/quick"
)

func TestTCKValues(t *testing.T) {
	cases := []struct {
		rate DataRate
		want Time
	}{
		{DDR2_533, 3750 * Picosecond},
		{DDR2_667, 3000 * Picosecond},
		{DDR2_800, 2500 * Picosecond},
	}
	for _, c := range cases {
		if got := c.rate.TCK(); got != c.want {
			t.Errorf("TCK(%d) = %v, want %v", int(c.rate), got, c.want)
		}
	}
}

func TestTCKUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TCK on unsupported rate did not panic")
		}
	}()
	DataRate(123).TCK()
}

func TestValid(t *testing.T) {
	for _, r := range []DataRate{DDR2_533, DDR2_667, DDR2_800} {
		if !r.Valid() {
			t.Errorf("rate %d should be valid", int(r))
		}
	}
	for _, r := range []DataRate{0, 1, 400, 666, 1066} {
		if r.Valid() {
			t.Errorf("rate %d should be invalid", int(r))
		}
	}
}

func TestCPUCyclesPerTCK(t *testing.T) {
	cases := []struct {
		rate DataRate
		want int
	}{
		{DDR2_533, 15},
		{DDR2_667, 12},
		{DDR2_800, 10},
	}
	for _, c := range cases {
		if got := CPUCyclesPerTCK(c.rate); got != c.want {
			t.Errorf("CPUCyclesPerTCK(%d) = %d, want %d", int(c.rate), got, c.want)
		}
	}
}

func TestBytesPerSecond(t *testing.T) {
	// A 64-bit DDR2-800 channel moves 6.4 GB/s.
	if got := DDR2_800.BytesPerSecond(); got != 6.4e9 {
		t.Errorf("DDR2-800 bandwidth = %g, want 6.4e9", got)
	}
	if got := DDR2_667.BytesPerSecond(); got != 667e6*8 {
		t.Errorf("DDR2-667 bandwidth = %g, want %g", got, 667e6*8)
	}
}

func TestNanoseconds(t *testing.T) {
	if got := (63 * Nanosecond).Nanoseconds(); got != 63 {
		t.Errorf("63ns = %g", got)
	}
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Errorf("1500ps = %gns, want 1.5", got)
	}
}

func TestString(t *testing.T) {
	if s := (33 * Nanosecond).String(); s != "33.000ns" {
		t.Errorf("String = %q", s)
	}
	if s := Infinity.String(); s != "inf" {
		t.Errorf("Infinity.String = %q", s)
	}
}

func TestTimeArithmeticProperty(t *testing.T) {
	// Durations expressed in ns survive a round trip through Nanoseconds
	// for any count that fits comfortably in the simulated horizon.
	f := func(n uint32) bool {
		d := Time(n) * Nanosecond
		return d.Nanoseconds() == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInfinityIsLargeButSafe(t *testing.T) {
	if Infinity <= 0 {
		t.Fatal("Infinity must be positive")
	}
	if Infinity+1000*Nanosecond < Infinity {
		t.Fatal("adding small offsets to Infinity must not overflow")
	}
}

func TestDDR3Rates(t *testing.T) {
	if DDR3_1333.TCK() != 1500*Picosecond || DDR3_1600.TCK() != 1250*Picosecond {
		t.Error("DDR3 clock periods wrong")
	}
	if CPUCyclesPerTCK(DDR3_1333) != 6 || CPUCyclesPerTCK(DDR3_1600) != 5 {
		t.Error("DDR3 CPU:DRAM ratios must stay integral")
	}
}
