// Package clock provides the simulation time base shared by every model in
// fbdsim. All simulated time is kept in integer picoseconds so that DRAM
// timing parameters (multiples of 3 ns at DDR2-667) and the 4 GHz CPU clock
// (250 ps) compose without rounding error.
package clock

import "fmt"

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Infinity is a sentinel meaning "never"; it is far larger than any
// simulated horizon but still safe to add small offsets to.
const Infinity Time = 1 << 62

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time in nanoseconds for human-readable logs.
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return fmt.Sprintf("%.3fns", t.Nanoseconds())
}

// DataRate is a DDR transfer rate in mega-transfers per second.
type DataRate int

// Data rates evaluated in the paper (Figure 6 uses 533 and 667; the FB-DIMM
// bandwidth discussion in Section 3.1 uses 800), plus the DDR3 speeds the
// paper's footnote anticipates ("Future FB-DIMM will also support DDR3 bus
// and DRAM").
const (
	DDR2_533  DataRate = 533
	DDR2_667  DataRate = 667
	DDR2_800  DataRate = 800
	DDR3_1333 DataRate = 1333
	DDR3_1600 DataRate = 1600
)

// tckTable maps a data rate to the DRAM clock period. DDR transfers two
// beats per clock, so the clock frequency is rate/2 MHz. The values are the
// idealized periods used throughout the paper (3 ns at 667 MT/s).
var tckTable = map[DataRate]Time{
	DDR2_533:  3750 * Picosecond,
	DDR2_667:  3000 * Picosecond,
	DDR2_800:  2500 * Picosecond,
	DDR3_1333: 1500 * Picosecond,
	DDR3_1600: 1250 * Picosecond,
}

// TCK returns the DRAM clock period for the data rate.
// It panics on an unsupported rate; configuration validation rejects those
// before any simulation starts.
func (r DataRate) TCK() Time {
	t, ok := tckTable[r]
	if !ok {
		panic(fmt.Sprintf("clock: unsupported data rate %d MT/s", int(r)))
	}
	return t
}

// Valid reports whether the data rate is one of the supported DDR2 speeds.
func (r DataRate) Valid() bool {
	_, ok := tckTable[r]
	return ok
}

// BytesPerSecond returns the peak bandwidth of a 64-bit DDR channel running
// at rate r, in bytes per second.
func (r DataRate) BytesPerSecond() float64 {
	return float64(r) * 1e6 * 8 // 8 bytes per transfer on a 64-bit bus
}

// CPUFrequencyGHz is the fixed processor clock of Table 1.
const CPUFrequencyGHz = 4

// CPUCycle is the CPU clock period (250 ps at 4 GHz).
const CPUCycle Time = 250 * Picosecond

// CyclesCeil returns the first CPU-cycle index whose time is at or after t
// (the ceiling of t in CPU cycles). It is the conversion the event-driven
// system loop uses to turn a component's next-event time into the cycle at
// which that event must be serviced.
func CyclesCeil(t Time) int64 {
	if t <= 0 {
		return 0
	}
	return int64((t + CPUCycle - 1) / CPUCycle)
}

// CPUCyclesPerTCK returns the integer number of CPU cycles per DRAM clock.
// Every supported data rate divides evenly (12 at 667, 15 at 533, 10 at 800).
func CPUCyclesPerTCK(r DataRate) int {
	tck := r.TCK()
	n := int(tck / CPUCycle)
	if Time(n)*CPUCycle != tck {
		panic(fmt.Sprintf("clock: tCK %v not a multiple of the CPU cycle", tck))
	}
	return n
}
