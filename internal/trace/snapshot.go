package trace

import "fbdsim/internal/snapshot"

// Snapshot serializes the generator's mutable state: the PRNG position,
// every stream's walk, and the queued prefetch. The profile and derived
// geometry are construction-derived and not written.
func (g *Synthetic) Snapshot(e *snapshot.Encoder) {
	e.U64(g.r.state)
	e.Int(len(g.streams))
	for _, s := range g.streams {
		e.I64(s.pos)
		e.I64(s.segEnd)
		e.I64(s.lastPF)
	}
	snapshotItem(e, g.pending)
	e.Bool(g.hasPending)
}

// Restore overwrites the generator's mutable state from d. The stream
// count must match the constructed profile.
func (g *Synthetic) Restore(d *snapshot.Decoder) {
	g.r.state = d.U64()
	if n := d.Int(); n != len(g.streams) {
		d.Fail("trace: snapshot has %d streams, machine has %d", n, len(g.streams))
		return
	}
	for i := range g.streams {
		g.streams[i] = stream{pos: d.I64(), segEnd: d.I64(), lastPF: d.I64()}
	}
	g.pending = restoreItem(d)
	g.hasPending = d.Bool()
}

// snapshotItem and restoreItem serialize one trace Item; the core model
// reuses them for its in-flight dispatch item.
func snapshotItem(e *snapshot.Encoder, it Item) {
	e.Int(it.Gap)
	e.Int(int(it.Op))
	e.I64(it.Addr)
	e.Bool(it.Dep)
}

func restoreItem(d *snapshot.Decoder) Item {
	return Item{Gap: d.Int(), Op: Op(d.Int()), Addr: d.I64(), Dep: d.Bool()}
}

// SnapshotItem serializes one Item (exported for the core model's
// dispatch-stream state).
func SnapshotItem(e *snapshot.Encoder, it Item) { snapshotItem(e, it) }

// RestoreItem decodes one Item.
func RestoreItem(d *snapshot.Decoder) Item { return restoreItem(d) }
