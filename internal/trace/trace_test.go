package trace

import (
	"testing"
	"testing/quick"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	names := BenchmarkNames()
	if len(names) != 12 {
		t.Fatalf("benchmark count = %d, want the paper's 12", len(names))
	}
	for _, n := range names {
		p, ok := ps[n]
		if !ok {
			t.Errorf("missing profile %q", n)
			continue
		}
		if p.Name != n {
			t.Errorf("profile %q has Name %q", n, p.Name)
		}
		if p.MemRatio <= 0 || p.MemRatio >= 1 {
			t.Errorf("%s: MemRatio %f out of range", n, p.MemRatio)
		}
		if p.StoreRatio < 0 || p.StoreRatio > 1 {
			t.Errorf("%s: StoreRatio %f", n, p.StoreRatio)
		}
		if p.HotFrac+p.StreamFrac > 1 {
			t.Errorf("%s: fractions exceed 1", n)
		}
		if p.Streams < 1 || p.StrideBytes < 8 || p.FootprintMB < 1 {
			t.Errorf("%s: degenerate geometry %+v", n, p)
		}
		if p.SWPrefetchCoverage < 0 || p.SWPrefetchCoverage > 1 {
			t.Errorf("%s: prefetch coverage %f", n, p.SWPrefetchCoverage)
		}
	}
}

func TestFPCodesMoreStreamingThanINT(t *testing.T) {
	ps := Profiles()
	for _, fp := range []string{"swim", "applu", "lucas"} {
		for _, in := range []string{"vpr", "parser", "vortex"} {
			if ps[fp].StreamFrac <= ps[in].StreamFrac {
				t.Errorf("%s should stream more than %s", fp, in)
			}
			if ps[fp].SWPrefetchCoverage <= ps[in].SWPrefetchCoverage {
				t.Errorf("%s should have more compiler prefetching than %s", fp, in)
			}
		}
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, err := ProfileFor("quake3"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := ProfileFor("swim"); err != nil {
		t.Fatalf("swim: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ProfileFor("equake")
	a := NewSynthetic(p, 2, 99)
	b := NewSynthetic(p, 2, 99)
	var ia, ib Item
	for i := 0; i < 20000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("diverged at item %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestSeedAndCoreChangeStream(t *testing.T) {
	p, _ := ProfileFor("equake")
	base := NewSynthetic(p, 0, 1)
	seed := NewSynthetic(p, 0, 2)
	core := NewSynthetic(p, 1, 1)
	same := 0
	var a, b, c Item
	for i := 0; i < 1000; i++ {
		base.Next(&a)
		seed.Next(&b)
		core.Next(&c)
		if a == b && a == c {
			same++
		}
	}
	if same > 900 {
		t.Errorf("streams barely differ across seed/core (%d/1000 identical)", same)
	}
}

func TestAddressesStayInCoreSpace(t *testing.T) {
	p, _ := ProfileFor("swim")
	for _, core := range []int{0, 3} {
		g := NewSynthetic(p, core, 7)
		base := int64(core) * AddressSpaceStride
		limit := base + AddressSpaceStride
		var it Item
		for i := 0; i < 50000; i++ {
			g.Next(&it)
			// Prefetch targets may run a few lines past a stream segment
			// but never out of the core's space.
			if it.Addr < base || it.Addr >= limit {
				t.Fatalf("item %d address %#x outside core %d space", i, it.Addr, core)
			}
		}
	}
}

func TestMemRatioApproximatelyHonored(t *testing.T) {
	p, _ := ProfileFor("swim")
	g := NewSynthetic(p, 0, 5)
	var it Item
	insts, memOps := 0, 0
	for i := 0; i < 200000; i++ {
		g.Next(&it)
		insts += it.Gap
		if it.Op != Prefetch {
			insts++
			memOps++
		} else {
			insts++ // prefetch is an instruction too
		}
	}
	got := float64(memOps) / float64(insts)
	// Prefetch instructions dilute the ratio somewhat; allow a band.
	if got < p.MemRatio*0.6 || got > p.MemRatio*1.3 {
		t.Errorf("memory ratio = %.3f, profile %.3f", got, p.MemRatio)
	}
}

func TestStoreRatioApproximatelyHonored(t *testing.T) {
	p, _ := ProfileFor("vortex")
	g := NewSynthetic(p, 0, 5)
	var it Item
	loads, stores := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&it)
		switch it.Op {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	got := float64(stores) / float64(loads+stores)
	if got < p.StoreRatio-0.05 || got > p.StoreRatio+0.05 {
		t.Errorf("store ratio = %.3f, profile %.3f", got, p.StoreRatio)
	}
}

func TestPrefetchPrecedesItsLoad(t *testing.T) {
	p, _ := ProfileFor("swim")
	g := NewSynthetic(p, 0, 11)
	var it Item
	var lastPF Item
	havePF := false
	checked := 0
	for i := 0; i < 100000 && checked < 200; i++ {
		g.Next(&it)
		if it.Op == Prefetch {
			lastPF = it
			havePF = true
			continue
		}
		if havePF {
			// The prefetch reaches PrefetchDistanceLines ahead of the
			// access that follows it.
			d := lastPF.Addr - it.Addr
			if d != p.PrefetchDistanceLines*64 {
				t.Fatalf("prefetch distance = %d bytes, want %d", d, p.PrefetchDistanceLines*64)
			}
			checked++
			havePF = false
		}
	}
	if checked == 0 {
		t.Fatal("no prefetch pairs observed")
	}
}

func TestPrefetchNeverDependent(t *testing.T) {
	p, _ := ProfileFor("swim")
	g := NewSynthetic(p, 0, 13)
	var it Item
	for i := 0; i < 100000; i++ {
		g.Next(&it)
		if it.Op == Prefetch && it.Dep {
			t.Fatal("prefetch marked dependent")
		}
		if it.Op == Store && it.Dep {
			t.Fatal("store marked dependent")
		}
	}
}

func TestIntegerCodesMoreDependent(t *testing.T) {
	count := func(name string) float64 {
		p, _ := ProfileFor(name)
		g := NewSynthetic(p, 0, 3)
		var it Item
		deps, loads := 0, 0
		for i := 0; i < 100000; i++ {
			g.Next(&it)
			if it.Op == Load {
				loads++
				if it.Dep {
					deps++
				}
			}
		}
		return float64(deps) / float64(loads)
	}
	if count("parser") <= count("swim") {
		t.Error("parser (pointer code) should have more dependent loads than swim")
	}
}

func TestWordAlignment(t *testing.T) {
	p, _ := ProfileFor("gap")
	g := NewSynthetic(p, 0, 17)
	f := func(n uint16) bool {
		var it Item
		for i := 0; i <= int(n%64); i++ {
			g.Next(&it)
		}
		return it.Addr%8 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Prefetch.String() != "prefetch" {
		t.Error("op strings")
	}
	if Op(9).String() == "" {
		t.Error("unknown op must print")
	}
}

func TestExcludedProgramsAvailableButNotInWorkloads(t *testing.T) {
	for _, name := range []string{"art", "mcf"} {
		if _, err := ProfileFor(name); err != nil {
			t.Errorf("%s must be runnable: %v", name, err)
		}
		for _, wl := range BenchmarkNames() {
			if wl == name {
				t.Errorf("%s must not be in the Table 3 pool", name)
			}
		}
	}
	if got := len(AllProgramNames()); got != 14 {
		t.Errorf("AllProgramNames = %d entries, want 14", got)
	}
}

func TestMCFIsDependencyBound(t *testing.T) {
	ps := Profiles()
	for _, other := range BenchmarkNames() {
		if ps["mcf"].DepFrac <= ps[other].DepFrac && other != "parser" {
			t.Errorf("mcf should be the most dependent (vs %s)", other)
		}
	}
	if ps["mcf"].DepFrac <= ps["parser"].DepFrac {
		t.Error("mcf should exceed even parser")
	}
}

func TestArtFootprintNearL2Cliff(t *testing.T) {
	p, _ := ProfileFor("art")
	// The footprint must sit between the paper's 2MB and 4MB cliff edges.
	if p.FootprintMB < 2 || p.FootprintMB > 4 {
		t.Errorf("art footprint %dMB misses the 2-4MB cliff", p.FootprintMB)
	}
}
