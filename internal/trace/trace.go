// Package trace produces the instruction/memory-reference streams that
// drive the core model. The paper runs SimPoint-selected slices of twelve
// memory-intensive SPEC2000 programs on Alpha binaries with compiler
// software prefetching; we cannot ship those, so each program is replaced
// by a deterministic synthetic generator whose memory behaviour — miss
// intensity, number of concurrent streams, spatial locality, store share,
// and software-prefetch coverage — is parameterized to match the program's
// published character (see Profile and DESIGN.md §2).
package trace

import "fmt"

// Op is the kind of a memory reference in the trace.
type Op int

const (
	// Load blocks commit until its data returns.
	Load Op = iota
	// Store commits immediately; the hierarchy handles it write-allocate.
	Store
	// Prefetch is a software prefetch instruction: when executed it warms
	// the L2 without ever blocking; when software prefetching is disabled
	// the simulator treats it as a NOP (Section 5.4).
	Prefetch
)

func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Item is one memory reference plus the count of non-memory instructions
// that precede it in program order.
type Item struct {
	Gap  int // non-memory instructions before this op
	Op   Op
	Addr int64
	// Dep marks a load whose address depends on the previous load's data
	// (pointer chasing, indirection); it cannot issue until that load
	// completes. Dependence is what makes real cores sensitive to memory
	// latency despite deep reordering.
	Dep bool
}

// Generator produces an unbounded instruction stream.
type Generator interface {
	// Next overwrites *Item with the next reference.
	Next(*Item)
}

// Profile characterizes one benchmark's memory behaviour.
type Profile struct {
	Name string

	// MemRatio is the fraction of (non-prefetch) instructions that are
	// loads or stores.
	MemRatio float64
	// StoreRatio is the fraction of memory references that are stores.
	StoreRatio float64

	// HotFrac, StreamFrac: fraction of references to a small cache-resident
	// hot set and to sequential streams; the remainder are uniform random
	// over the footprint (pointer chasing). Hot references mostly hit in
	// L1/L2; stream references miss once per new cacheline; random
	// references almost always miss.
	HotFrac    float64
	StreamFrac float64

	// Streams is the number of concurrent sequential access streams.
	Streams int
	// StrideBytes is the distance between consecutive references of one
	// stream (8 B for unit-stride FP loops).
	StrideBytes int64

	// FootprintMB is the per-core working set; far above the L2 so that
	// streams and random references miss.
	FootprintMB int

	// SegKB is the length of one sequential stream segment before the
	// stream jumps to a new random position (0 = the 512 KB default).
	// Small segments over a small footprint produce the loop-and-revisit
	// behaviour of cache-resident codes like art.
	SegKB int
	// HotKB sizes the heavily-reused hot region (0 = the 48 KB default,
	// which lives in the L1). A multi-MB value models a working set that
	// fits one L2 size but not another — art's defining property.
	HotKB int

	// DepFrac is the probability that a hot or stream load depends on the
	// previous load (address arithmetic chains); pointer-chasing random
	// loads are almost always dependent regardless.
	DepFrac float64

	// SWPrefetchCoverage is the probability that a stream reference
	// entering a new cacheline is preceded by a compiler-inserted
	// prefetch; integer benchmarks have little or none.
	SWPrefetchCoverage float64
	// PrefetchDistanceLines is how many cachelines ahead those prefetches
	// reach.
	PrefetchDistanceLines int64
}

// Profiles returns the twelve benchmark profiles of Table 3. The absolute
// values are calibrated so that relative intensity and locality across the
// programs track their published SPEC2000 behaviour: the FP streaming codes
// (swim, applu, lucas, equake, mgrid) are the most memory-intensive with
// strong spatial locality and high compiler-prefetch coverage; the integer
// codes (vpr, parser, gap, vortex) have lower intensity, poorer spatial
// locality, and little software prefetching.
func Profiles() map[string]Profile {
	list := []Profile{
		{Name: "wupwise", MemRatio: 0.24, StoreRatio: 0.28, HotFrac: 0.70, StreamFrac: 0.27, Streams: 4, StrideBytes: 8, FootprintMB: 176, DepFrac: 0.15, SWPrefetchCoverage: 0.55, PrefetchDistanceLines: 8},
		{Name: "swim", MemRatio: 0.30, StoreRatio: 0.30, HotFrac: 0.29, StreamFrac: 0.70, Streams: 6, StrideBytes: 8, FootprintMB: 192, DepFrac: 0.10, SWPrefetchCoverage: 0.75, PrefetchDistanceLines: 8},
		{Name: "mgrid", MemRatio: 0.28, StoreRatio: 0.22, HotFrac: 0.54, StreamFrac: 0.44, Streams: 8, StrideBytes: 8, FootprintMB: 56, DepFrac: 0.15, SWPrefetchCoverage: 0.65, PrefetchDistanceLines: 8},
		{Name: "applu", MemRatio: 0.28, StoreRatio: 0.28, HotFrac: 0.44, StreamFrac: 0.54, Streams: 6, StrideBytes: 8, FootprintMB: 180, DepFrac: 0.12, SWPrefetchCoverage: 0.65, PrefetchDistanceLines: 8},
		{Name: "vpr", MemRatio: 0.28, StoreRatio: 0.30, HotFrac: 0.86, StreamFrac: 0.10, Streams: 2, StrideBytes: 8, FootprintMB: 16, DepFrac: 0.45, SWPrefetchCoverage: 0.05, PrefetchDistanceLines: 4},
		{Name: "equake", MemRatio: 0.30, StoreRatio: 0.20, HotFrac: 0.42, StreamFrac: 0.46, Streams: 3, StrideBytes: 8, FootprintMB: 96, DepFrac: 0.20, SWPrefetchCoverage: 0.50, PrefetchDistanceLines: 8},
		{Name: "facerec", MemRatio: 0.26, StoreRatio: 0.22, HotFrac: 0.60, StreamFrac: 0.37, Streams: 4, StrideBytes: 8, FootprintMB: 64, DepFrac: 0.18, SWPrefetchCoverage: 0.55, PrefetchDistanceLines: 8},
		{Name: "lucas", MemRatio: 0.24, StoreRatio: 0.24, HotFrac: 0.36, StreamFrac: 0.62, Streams: 4, StrideBytes: 16, FootprintMB: 160, DepFrac: 0.10, SWPrefetchCoverage: 0.60, PrefetchDistanceLines: 8},
		{Name: "fma3d", MemRatio: 0.28, StoreRatio: 0.32, HotFrac: 0.64, StreamFrac: 0.30, Streams: 6, StrideBytes: 8, FootprintMB: 128, DepFrac: 0.22, SWPrefetchCoverage: 0.45, PrefetchDistanceLines: 6},
		{Name: "parser", MemRatio: 0.30, StoreRatio: 0.28, HotFrac: 0.88, StreamFrac: 0.08, Streams: 2, StrideBytes: 8, FootprintMB: 12, DepFrac: 0.50, SWPrefetchCoverage: 0.05, PrefetchDistanceLines: 4},
		{Name: "gap", MemRatio: 0.28, StoreRatio: 0.26, HotFrac: 0.80, StreamFrac: 0.16, Streams: 3, StrideBytes: 8, FootprintMB: 24, DepFrac: 0.35, SWPrefetchCoverage: 0.10, PrefetchDistanceLines: 4},
		{Name: "vortex", MemRatio: 0.30, StoreRatio: 0.32, HotFrac: 0.86, StreamFrac: 0.10, Streams: 3, StrideBytes: 8, FootprintMB: 16, DepFrac: 0.40, SWPrefetchCoverage: 0.08, PrefetchDistanceLines: 4},
	}
	// The two memory-intensive programs Section 4.2 deliberately excludes
	// from workload construction are still available for single runs:
	//
	//   - art: "very low miss rate with 4MB cache and very high miss rate
	//     with 2MB cache" — its ~3 MB working set sits right at the cliff,
	//     so it loops over a bounded footprint instead of streaming.
	//   - mcf: "very low IPC" — almost pure dependent pointer chasing over
	//     a large footprint.
	list = append(list,
		Profile{Name: "art", MemRatio: 0.30, StoreRatio: 0.16, HotFrac: 0.62, StreamFrac: 0.34, Streams: 4, StrideBytes: 8, FootprintMB: 3, SegKB: 64, HotKB: 2560, DepFrac: 0.15, SWPrefetchCoverage: 0.30, PrefetchDistanceLines: 6},
		Profile{Name: "mcf", MemRatio: 0.32, StoreRatio: 0.18, HotFrac: 0.40, StreamFrac: 0.05, Streams: 2, StrideBytes: 8, FootprintMB: 160, DepFrac: 0.75, SWPrefetchCoverage: 0.02, PrefetchDistanceLines: 4},
	)
	m := make(map[string]Profile, len(list))
	for _, p := range list {
		m[p.Name] = p
	}
	return m
}

// BenchmarkNames returns the twelve program names the paper's workloads
// draw from, in the paper's order. See AllProgramNames for the full set
// including the two excluded programs.
func BenchmarkNames() []string {
	return []string{
		"wupwise", "swim", "mgrid", "applu", "vpr", "equake",
		"facerec", "lucas", "fma3d", "parser", "gap", "vortex",
	}
}

// AllProgramNames returns every available profile: the twelve workload
// programs plus art and mcf, which Section 4.2 excludes from Table 3 but
// which remain runnable individually.
func AllProgramNames() []string {
	return append(BenchmarkNames(), "art", "mcf")
}

// ProfileFor returns the named profile or an error listing valid names.
func ProfileFor(name string) (Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q (valid: %v)", name, BenchmarkNames())
	}
	return p, nil
}

// rng is a SplitMix64 generator: tiny, fast and deterministic.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// stream is one sequential access stream walking a segment of the
// footprint.
type stream struct {
	pos    int64
	segEnd int64
	lastPF int64 // last line already covered by an emitted prefetch
}

// Synthetic generates references for one Profile. It is not goroutine-safe;
// each core owns its own instance.
type Synthetic struct {
	p        Profile
	r        rng
	base     int64 // address-space offset isolating this core
	foot     int64
	hotBytes int64
	streams  []stream
	segBytes int64

	// queued prefetch to emit before the upcoming access.
	pending    Item
	hasPending bool
}

// AddressSpaceStride separates per-core address spaces so multiprogrammed
// workloads never share data, matching the paper's distinct-application
// cores.
const AddressSpaceStride int64 = 1 << 40

// NewSynthetic builds the generator for profile p, core index core, and a
// seed that perturbs every random choice.
func NewSynthetic(p Profile, core int, seed int64) *Synthetic {
	g := &Synthetic{
		p:        p,
		r:        rng{state: uint64(seed)*0x9E3779B97F4A7C15 + uint64(core+1)*0xD1B54A32D192ED03},
		base:     int64(core) * AddressSpaceStride,
		foot:     int64(p.FootprintMB) << 20,
		hotBytes: 48 << 10, // mostly L1-resident hot set
		segBytes: 512 << 10,
	}
	if p.SegKB > 0 {
		g.segBytes = int64(p.SegKB) << 10
	}
	if p.HotKB > 0 {
		g.hotBytes = int64(p.HotKB) << 10
	}
	g.streams = make([]stream, p.Streams)
	for i := range g.streams {
		g.resetStream(&g.streams[i])
	}
	return g
}

func (g *Synthetic) resetStream(s *stream) {
	start := g.r.intn(g.foot-g.segBytes) &^ 63
	s.pos = start
	s.segEnd = start + g.segBytes
	s.lastPF = -1
}

// Next implements Generator.
func (g *Synthetic) Next(it *Item) {
	if g.hasPending {
		*it = g.pending
		g.hasPending = false
		return
	}
	it.Gap = g.gap()
	it.Op = Load
	if g.r.float() < g.p.StoreRatio {
		it.Op = Store
	}

	x := g.r.float()
	switch {
	case x < g.p.HotFrac:
		it.Addr = g.base + g.r.intn(g.hotBytes)&^7
		it.Dep = it.Op == Load && g.r.float() < g.p.DepFrac
	case x < g.p.HotFrac+g.p.StreamFrac:
		it.Dep = it.Op == Load && g.r.float() < g.p.DepFrac
		it.Addr = g.streamRef(it)
	default:
		// Pointer-chasing: a random word anywhere in the footprint,
		// whose address came from the previous load.
		it.Addr = g.base + g.r.intn(g.foot)&^7
		it.Dep = it.Op == Load && g.r.float() < 0.85
	}
}

// streamRef advances one stream and possibly schedules a software prefetch
// to be emitted immediately before the access. Stores walk a dedicated
// subset of the streams (FP loops read from some arrays and write to
// others), so only those streams' lines come back dirty.
func (g *Synthetic) streamRef(it *Item) int64 {
	var s *stream
	if nStore := (len(g.streams) + 2) / 3; it.Op == Store {
		s = &g.streams[g.r.intn(int64(nStore))]
	} else {
		s = &g.streams[int64(nStore)+g.r.intn(int64(len(g.streams)-nStore))]
	}
	addr := s.pos
	s.pos += g.p.StrideBytes
	if s.pos >= s.segEnd {
		g.resetStream(s)
	}
	line := addr >> 6
	if line != s.lastPF && g.p.SWPrefetchCoverage > 0 && g.r.float() < g.p.SWPrefetchCoverage {
		// New line: emit "prefetch addr + D lines" ahead of the access.
		s.lastPF = line
		g.pending = *it
		g.pending.Addr = g.base + addr
		g.hasPending = true
		it.Gap = 0
		it.Op = Prefetch
		it.Dep = false
		return g.base + addr + g.p.PrefetchDistanceLines*64
	}
	return g.base + addr
}

// gap draws the non-memory instruction count before the next reference,
// geometric with mean 1/MemRatio - 1.
func (g *Synthetic) gap() int {
	mean := 1/g.p.MemRatio - 1
	if mean <= 0 {
		return 0
	}
	// Inverse-CDF geometric sampling, capped to keep pathological draws
	// from stalling progress measurement.
	u := g.r.float()
	n := 0
	p := 1 / (mean + 1)
	acc := p
	for acc < u && n < 64 {
		n++
		acc += p * pow1mp(p, n)
	}
	return n
}

func pow1mp(p float64, n int) float64 {
	q := 1 - p
	out := 1.0
	for i := 0; i < n; i++ {
		out *= q
	}
	return out
}
