package resource

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the timeline's mutable state: the busy calendar and
// the cumulative reservation total. The quantum is construction-derived
// and not written.
func (t *Timeline) Snapshot(e *snapshot.Encoder) {
	e.Int(len(t.busy))
	for _, iv := range t.busy {
		e.I64(int64(iv.start))
		e.I64(int64(iv.end))
	}
	e.I64(int64(t.total))
}

// Restore overwrites the timeline's mutable state from d.
func (t *Timeline) Restore(d *snapshot.Decoder) {
	n := d.Count(16)
	t.busy = t.busy[:0]
	for i := 0; i < n; i++ {
		t.busy = append(t.busy, interval{clock.Time(d.I64()), clock.Time(d.I64())})
	}
	t.total = clock.Time(d.I64())
}
