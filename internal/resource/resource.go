// Package resource provides a reservable timeline used to model shared
// interconnect resources (FB-DIMM link frames, DDR2 data buses). Unlike a
// scalar busy-until clock, a Timeline remembers gaps between reservations,
// so a latency-critical transfer scheduled after a long-lead transfer can
// still claim an earlier free slot — exactly the effect that lets AMB-cache
// hits slip ahead of outstanding DRAM accesses on the northbound link.
package resource

import (
	"sort"

	"fbdsim/internal/clock"
)

type interval struct {
	start, end clock.Time // [start, end)
}

// Timeline is a single-owner (not goroutine-safe) reservation calendar.
// The zero value is ready to use.
type Timeline struct {
	busy []interval // sorted by start, non-overlapping
	// quantum, when nonzero, aligns reservation starts to multiples of it
	// (e.g. FB-DIMM frame boundaries).
	quantum clock.Time
	// total accumulates the duration of every reservation ever made,
	// surviving Prune; it feeds utilization statistics.
	total clock.Time
}

// NewQuantized returns a Timeline whose reservations begin on multiples of
// q (frame-aligned links). A zero q means unaligned.
func NewQuantized(q clock.Time) *Timeline { return &Timeline{quantum: q} }

func (t *Timeline) align(x clock.Time) clock.Time {
	if t.quantum <= 0 {
		return x
	}
	r := x % t.quantum
	if r == 0 {
		return x
	}
	return x + t.quantum - r
}

// Reserve books the earliest slot of length dur starting at or after
// earliest and returns its start time. dur must be positive.
func (t *Timeline) Reserve(earliest clock.Time, dur clock.Time) clock.Time {
	if dur <= 0 {
		panic("resource: reservation duration must be positive")
	}
	start := t.align(earliest)
	// Skip intervals that end at or before the candidate start. Intervals
	// are sorted and non-overlapping, so their end times are sorted too and
	// the first candidate can be found by binary search.
	i := sort.Search(len(t.busy), func(j int) bool { return t.busy[j].end > start })
	for i < len(t.busy) {
		if start+dur <= t.busy[i].start {
			break // fits in the gap before interval i
		}
		start = t.align(t.busy[i].end)
		i++
	}
	t.insert(i, interval{start, start + dur})
	t.total += dur
	return start
}

// insert places iv at index i, merging with adjacent intervals when they
// touch to keep the calendar compact.
func (t *Timeline) insert(i int, iv interval) {
	// Merge with predecessor if contiguous.
	if i > 0 && t.busy[i-1].end == iv.start {
		t.busy[i-1].end = iv.end
		// Possibly merge with successor too.
		if i < len(t.busy) && t.busy[i].start == t.busy[i-1].end {
			t.busy[i-1].end = t.busy[i].end
			t.busy = append(t.busy[:i], t.busy[i+1:]...)
		}
		return
	}
	if i < len(t.busy) && t.busy[i].start == iv.end {
		t.busy[i].start = iv.start
		return
	}
	t.busy = append(t.busy, interval{})
	copy(t.busy[i+1:], t.busy[i:])
	t.busy[i] = iv
}

// Prune discards reservations that end at or before horizon; the caller
// guarantees no future reservation will be requested earlier than horizon.
func (t *Timeline) Prune(horizon clock.Time) {
	n := 0
	for _, iv := range t.busy {
		if iv.end > horizon {
			t.busy[n] = iv
			n++
		}
	}
	t.busy = t.busy[:n]
}

// BusyUntil returns the end of the last reservation (0 if none), i.e. the
// first time the resource is guaranteed idle forever after.
func (t *Timeline) BusyUntil() clock.Time {
	if len(t.busy) == 0 {
		return 0
	}
	return t.busy[len(t.busy)-1].end
}

// Reserved returns the currently tracked (unpruned) reserved time.
func (t *Timeline) Reserved() clock.Time {
	var sum clock.Time
	for _, iv := range t.busy {
		sum += iv.end - iv.start
	}
	return sum
}

// TotalReserved returns the cumulative reserved time across the whole run,
// unaffected by Prune — the numerator of a utilization figure.
func (t *Timeline) TotalReserved() clock.Time { return t.total }

// Len reports the number of distinct busy intervals currently tracked.
func (t *Timeline) Len() int { return len(t.busy) }
