package resource

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fbdsim/internal/clock"
)

const ns = clock.Nanosecond

func TestReserveOnEmptyTimeline(t *testing.T) {
	var tl Timeline
	if got := tl.Reserve(10*ns, 5*ns); got != 10*ns {
		t.Errorf("start = %v, want 10ns", got)
	}
	if got := tl.BusyUntil(); got != 15*ns {
		t.Errorf("busy until %v, want 15ns", got)
	}
}

func TestBackToBackReservations(t *testing.T) {
	var tl Timeline
	a := tl.Reserve(0, 6*ns)
	b := tl.Reserve(0, 6*ns)
	c := tl.Reserve(0, 6*ns)
	if a != 0 || b != 6*ns || c != 12*ns {
		t.Errorf("got %v %v %v", a, b, c)
	}
	if tl.Len() != 1 {
		t.Errorf("contiguous reservations should merge: %d intervals", tl.Len())
	}
}

// TestGapFilling is the property the AMB-hit path depends on: a
// short transfer requested after a far-future reservation still gets the
// earlier free slot.
func TestGapFilling(t *testing.T) {
	var tl Timeline
	far := tl.Reserve(100*ns, 6*ns)
	if far != 100*ns {
		t.Fatalf("far start %v", far)
	}
	near := tl.Reserve(10*ns, 6*ns)
	if near != 10*ns {
		t.Errorf("near reservation = %v, want 10ns (gap before 100ns)", near)
	}
	// A transfer too big for the gap goes after the far one.
	big := tl.Reserve(20*ns, 90*ns)
	if big != 106*ns {
		t.Errorf("big reservation = %v, want 106ns", big)
	}
}

func TestExactGapFit(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 10*ns)
	tl.Reserve(20*ns, 10*ns)
	got := tl.Reserve(0, 10*ns) // exactly fills [10,20)
	if got != 10*ns {
		t.Errorf("exact fit = %v, want 10ns", got)
	}
	if tl.Len() != 1 {
		t.Errorf("filled gap should merge all intervals: %d", tl.Len())
	}
}

func TestQuantization(t *testing.T) {
	tl := NewQuantized(6 * ns)
	if got := tl.Reserve(1*ns, 6*ns); got != 6*ns {
		t.Errorf("quantized start = %v, want 6ns", got)
	}
	if got := tl.Reserve(0, 6*ns); got != 0 {
		t.Errorf("aligned gap = %v, want 0", got)
	}
	if got := tl.Reserve(13*ns, 3*ns); got != 18*ns {
		t.Errorf("start = %v, want 18ns", got)
	}
}

func TestPrune(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 10*ns)
	tl.Reserve(20*ns, 10*ns)
	tl.Reserve(40*ns, 10*ns)
	tl.Prune(30 * ns)
	if tl.Len() != 1 {
		t.Errorf("after prune: %d intervals, want 1", tl.Len())
	}
	if got := tl.Reserve(41*ns, 5*ns); got != 50*ns {
		t.Errorf("reservation after prune = %v, want 50ns", got)
	}
}

func TestReserved(t *testing.T) {
	var tl Timeline
	tl.Reserve(0, 10*ns)
	tl.Reserve(20*ns, 5*ns)
	if got := tl.Reserved(); got != 15*ns {
		t.Errorf("Reserved = %v, want 15ns", got)
	}
}

func TestZeroDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero duration")
		}
	}()
	var tl Timeline
	tl.Reserve(0, 0)
}

// TestNoOverlapProperty reserves randomly and checks that no two
// reservations ever overlap and every start honours its earliest bound.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		quantum := clock.Time(0)
		if rng.Intn(2) == 1 {
			quantum = 2 * ns
		}
		tl := NewQuantized(quantum)
		type iv struct{ s, e clock.Time }
		var got []iv
		for i := 0; i < 200; i++ {
			earliest := clock.Time(rng.Intn(500)) * ns
			dur := clock.Time(1+rng.Intn(20)) * ns
			s := tl.Reserve(earliest, dur)
			if s < earliest {
				return false
			}
			if quantum > 0 && s%quantum != 0 {
				return false
			}
			got = append(got, iv{s, s + dur})
		}
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				if got[i].s < got[j].e && got[j].s < got[i].e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEarliestFeasibleProperty: the chosen slot is the earliest feasible
// one — no aligned start point before it would have fit.
func TestEarliestFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tl Timeline
	type iv struct{ s, e clock.Time }
	var existing []iv
	fits := func(s clock.Time, d clock.Time) bool {
		for _, x := range existing {
			if s < x.e && x.s < s+d {
				return false
			}
		}
		return true
	}
	for i := 0; i < 300; i++ {
		earliest := clock.Time(rng.Intn(300)) * ns
		dur := clock.Time(1+rng.Intn(15)) * ns
		s := tl.Reserve(earliest, dur)
		for cand := earliest; cand < s; cand += ns {
			if fits(cand, dur) {
				t.Fatalf("slot %v chosen but %v would fit (dur %v)", s, cand, dur)
			}
		}
		if !fits(s, dur) {
			t.Fatalf("chosen slot %v overlaps", s)
		}
		existing = append(existing, iv{s, s + dur})
	}
}
