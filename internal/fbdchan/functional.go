package fbdchan

// Functional-warming twins of ScheduleRead/ScheduleWrite: they mirror the
// AMB prefetch-cache tag effects of an access — lookup bookkeeping, group
// fills, write invalidations — without reserving link or bus timelines,
// advancing bank state, or drawing from the fault injector. The sampling
// tier uses them to keep AMB caches warm across functionally-executed spans
// so the first measured cycles after a span see representative hit rates.

// FunctionalRead mirrors a demand read's AMB-cache effects. On a miss with
// prefetching enabled the K-1 companion lines of the group are installed
// immediately (a timed group fetch would land them a few bursts later; with
// the clock frozen "immediately" is the faithful limit).
func (c *Channel) FunctionalRead(addr int64) {
	if !c.cfg.AMBPrefetch {
		return
	}
	loc := c.mapper.Map(addr)
	line := c.mapper.LineAddr(addr)
	amb := c.ambs[loc.DIMM]
	if amb.LookupRead(line, c.mapper.LocalLineID(line)) {
		return
	}
	for _, la := range c.mapper.Group(addr)[1:] {
		if evicted, was := amb.InsertPrefetch(la, c.mapper.LocalLineID(la)); was {
			delete(c.inflight, evicted)
		}
		// No inflight entry: the line is resident as of now.
		delete(c.inflight, la)
	}
}

// FunctionalWrite mirrors a write's AMB-cache effect: under the paper's
// write-invalidate design the cached copy is dropped so the AMB never
// serves stale data.
func (c *Channel) FunctionalWrite(addr int64) {
	if !c.cfg.AMBPrefetch || c.cfg.AMBWriteUpdate {
		return
	}
	loc := c.mapper.Map(addr)
	line := c.mapper.LineAddr(addr)
	c.ambs[loc.DIMM].Invalidate(line, c.mapper.LocalLineID(line))
	delete(c.inflight, line)
}
