package fbdchan

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/fault"
)

func injector(t *testing.T, mutate func(*config.Fault)) *fault.Injector {
	t.Helper()
	fc := config.Fault{Enabled: true, Seed: 1, DegradedDIMM: -1, DeadBank: -1}
	if mutate != nil {
		mutate(&fc)
	}
	in := fault.FromConfig(fc)
	if in == nil {
		t.Fatal("injector not built")
	}
	return in
}

// TestZeroRateInjectorIsTransparent: an attached injector with all rates
// zero must not move a single edge — the seam's zero-perturbation
// guarantee.
func TestZeroRateInjectorIsTransparent(t *testing.T) {
	plain, _ := newChannel(t, nil)
	faulty, _ := newChannel(t, nil)
	faulty.SetInjector(injector(t, nil))
	for i, addr := range []int64{0, 2 * 64, 5 * 64, 0} {
		ready := ready12 + clock.Time(i)*100*ns
		d0, _ := plain.ScheduleRead(addr, ready)
		d1, _ := faulty.ScheduleRead(addr, ready)
		if d0 != d1 {
			t.Fatalf("read %d: zero-rate injector moved data from %v to %v", i, d0, d1)
		}
	}
	w0 := plain.ScheduleWrite([]int64{7 * 64}, 2000*ns)
	w1 := faulty.ScheduleWrite([]int64{7 * 64}, 2000*ns)
	if w0 != w1 {
		t.Errorf("zero-rate injector moved write completion from %v to %v", w0, w1)
	}
}

// TestSouthRetryCapped: with a 100% southbound error rate every command
// frame replays exactly MaxRetries times, and the data returns later than
// the fault-free run by at least the retry delays.
func TestSouthRetryCapped(t *testing.T) {
	plain, _ := newChannel(t, nil)
	clean, _ := plain.ScheduleRead(0, ready12)

	ch, _ := newChannel(t, nil)
	in := injector(t, func(fc *config.Fault) {
		fc.SouthErrorRate = 1
		fc.MaxRetries = 3
		fc.RetryDelay = 60 * clock.Nanosecond
	})
	ch.SetInjector(in)
	dataAt, _ := ch.ScheduleRead(0, ready12)

	if in.Counters.SouthFrameErrors != 3 {
		t.Errorf("south errors = %d, want MaxRetries = 3", in.Counters.SouthFrameErrors)
	}
	if in.Counters.Retries != 3 {
		t.Errorf("retries = %d, want 3", in.Counters.Retries)
	}
	// Each replay waits RetryDelay past the previous attempt and re-reserves
	// a slot, so the read must trail the clean run by ≥ 3 * 60ns.
	if dataAt < clean+3*60*ns {
		t.Errorf("faulty read at %v, clean at %v; retries cost only %v", dataAt, clean, dataAt-clean)
	}
	if in.Counters.RetryLatency < 3*60*ns {
		t.Errorf("retry latency = %v, want >= 180ns", in.Counters.RetryLatency)
	}
}

// TestNorthRetryDelaysData: northbound CRC errors replay the data transfer.
func TestNorthRetryDelaysData(t *testing.T) {
	plain, _ := newChannel(t, nil)
	clean, _ := plain.ScheduleRead(0, ready12)

	ch, _ := newChannel(t, nil)
	in := injector(t, func(fc *config.Fault) {
		fc.NorthErrorRate = 1
		fc.MaxRetries = 2
	})
	ch.SetInjector(in)
	dataAt, _ := ch.ScheduleRead(0, ready12)
	if in.Counters.NorthFrameErrors != 2 {
		t.Errorf("north errors = %d, want 2", in.Counters.NorthFrameErrors)
	}
	if dataAt <= clean {
		t.Errorf("northbound retries did not delay the read: %v vs clean %v", dataAt, clean)
	}
}

// TestRetryConsumesLinkBandwidth: replayed frames occupy real link slots,
// so an unfaulted request right behind a retried one is pushed back too —
// the mechanism that lets channel errors starve AMB prefetch bandwidth.
func TestRetryConsumesLinkBandwidth(t *testing.T) {
	run := func(rate float64) clock.Time {
		ch, _ := newChannel(t, nil)
		if rate > 0 {
			ch.SetInjector(injector(t, func(fc *config.Fault) {
				fc.NorthErrorRate = rate
				fc.MaxRetries = 8
			}))
		}
		// Saturate the northbound link with same-cycle reads to distinct
		// banks, then measure the tail request's completion.
		var last clock.Time
		for i := int64(0); i < 8; i++ {
			last, _ = ch.ScheduleRead(i*2*64, ready12)
		}
		return last
	}
	if faulty, clean := run(1), run(0); faulty <= clean {
		t.Errorf("retried frames should push the queue tail: %v vs %v", faulty, clean)
	}
}

// TestAMBSoftErrorForcesMiss: a poisoned AMB line is scrubbed on lookup;
// the demand proceeds as a miss (refetching from DRAM) and never counts as
// a hit.
func TestAMBSoftErrorForcesMiss(t *testing.T) {
	ch, _ := apChannel(t, nil)
	in := injector(t, func(fc *config.Fault) { fc.AMBSoftErrorRate = 1 })
	ch.SetInjector(in)

	ch.ScheduleRead(0, ready12) // miss; prefetches lines 1..3
	actBefore := ch.Counters.ACT
	dataAt, hit := ch.ScheduleRead(64, 1000*ns)
	if hit {
		t.Fatal("scrubbed line must not hit")
	}
	if in.Counters.AMBSoftErrors != 1 {
		t.Errorf("AMB soft errors = %d, want 1", in.Counters.AMBSoftErrors)
	}
	if ch.AMBStats().Scrubs != 1 {
		t.Errorf("cache scrubs = %d, want 1", ch.AMBStats().Scrubs)
	}
	if ch.Counters.ACT == actBefore {
		t.Error("the forced miss must refetch from DRAM")
	}
	if dataAt < 1000*ns+51*ns {
		t.Errorf("forced miss returned at %v, faster than a DRAM access", dataAt)
	}
	// Hit statistics must never count the scrubbed access as a hit.
	if s := ch.AMBStats(); s.Hits != 0 {
		t.Errorf("hits = %d, want 0", s.Hits)
	}
}

// TestDegradedBusSlowsDIMM: a degraded DIMM's burst occupies factor× the
// bus, delaying both its own read (store-and-forward) and back-to-back
// reads to the same DIMM, while other DIMMs are unaffected.
func TestDegradedBusSlowsDIMM(t *testing.T) {
	plain, m := newChannel(t, nil)
	deg, _ := newChannel(t, nil)
	deg.DegradeDIMMBus(0, 2)

	if m.Map(0).DIMM != 0 {
		t.Fatal("test assumes line 0 on DIMM 0")
	}
	c0, _ := plain.ScheduleRead(0, ready12)
	d0, _ := deg.ScheduleRead(0, ready12)
	if d0 <= c0 {
		t.Errorf("degraded DIMM read at %v, healthy at %v; store-and-forward not charged", d0, c0)
	}

	// Back-to-back reads to the degraded DIMM spread out by the slower bus.
	gap := func(ch *Channel) clock.Time {
		a, _ := ch.ScheduleRead(8*64, 5000*ns) // same bank path, later rows — use distinct banks instead
		b, _ := ch.ScheduleRead(16*64, 5000*ns)
		if b < a {
			return a - b
		}
		return b - a
	}
	if m.Map(8*64).DIMM != 0 || m.Map(16*64).DIMM != 0 {
		t.Fatal("test assumes lines 8 and 16 on DIMM 0")
	}
	if gd, gp := gap(deg), gap(plain); gd <= gp {
		t.Errorf("degraded same-DIMM gap %v should exceed healthy gap %v", gd, gp)
	}

	// A DIMM that is not degraded behaves identically.
	other := int64(2 * 64) // DIMM 1 under cacheline interleave
	if m.Map(other).DIMM == 0 {
		t.Fatal("test assumes line 2 off DIMM 0")
	}
	p2, _ := plain.ScheduleRead(other, 20000*ns)
	g2, _ := deg.ScheduleRead(other, 20000*ns)
	if p2 != g2 {
		t.Errorf("healthy DIMM perturbed by another DIMM's degradation: %v vs %v", g2, p2)
	}
}

// TestFaultDeterminism: the same seed reproduces the identical schedule,
// a different seed does not (with rates in the interior of (0,1)).
func TestFaultDeterminism(t *testing.T) {
	run := func(seed int64) []clock.Time {
		ch, _ := newChannel(t, nil)
		ch.SetInjector(injector(t, func(fc *config.Fault) {
			fc.Seed = seed
			fc.SouthErrorRate = 0.3
			fc.NorthErrorRate = 0.3
		}))
		out := make([]clock.Time, 0, 16)
		for i := int64(0); i < 16; i++ {
			d, _ := ch.ScheduleRead(i*2*64, ready12+clock.Time(i)*50*ns)
			out = append(out, d)
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical schedule")
	}
}
