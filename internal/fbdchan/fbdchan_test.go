package fbdchan

import (
	"testing"

	"fbdsim/internal/addrmap"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
)

const ns = clock.Nanosecond

// ready12 mimics the controller: a request arriving at t=0 reaches the
// channel with the 12 ns controller overhead already spent.
const ready12 = 12 * ns

func newChannel(t *testing.T, mutate func(*config.Config)) (*Channel, *addrmap.Mapper) {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	m := addrmap.New(&cfg.Mem)
	mem := cfg.Mem
	return New(&mem, m), m
}

func apChannel(t *testing.T, mutate func(*config.Config)) (*Channel, *addrmap.Mapper) {
	t.Helper()
	return newChannel(t, func(c *config.Config) {
		*c = config.WithAMBPrefetch(*c)
		if mutate != nil {
			mutate(c)
		}
	})
}

// TestIdleReadLatency verifies the Section 5.2 decomposition at channel
// level: 3 cmd + 15 tRCD + 15 tCL + 6 data + 12 AMB hops = 51 ns past the
// controller overhead (63 ns end to end).
func TestIdleReadLatency(t *testing.T) {
	ch, _ := newChannel(t, nil)
	dataAt, hit := ch.ScheduleRead(0, ready12)
	if hit {
		t.Fatal("no AMB cache: must not hit")
	}
	if want := ready12 + 51*ns; dataAt != want {
		t.Errorf("idle read data at %v, want %v (63ns total)", dataAt, want)
	}
}

// TestAMBHitLatency verifies an AMB-cache hit takes 3 cmd + 6 data + 12
// hops = 21 ns past the overhead (33 ns end to end).
func TestAMBHitLatency(t *testing.T) {
	ch, _ := apChannel(t, nil)
	ch.ScheduleRead(0, ready12) // miss; prefetches lines 1..3
	const later = 1000 * ns
	dataAt, hit := ch.ScheduleRead(64, later)
	if !hit {
		t.Fatal("line 1 must hit after the group fetch")
	}
	if want := later + 21*ns; dataAt != want {
		t.Errorf("AMB hit data at %v, want %v (33ns total)", dataAt, want)
	}
}

// TestFullLatencyHits verifies the FBD-APFL arm: hits pay tRCD+tCL extra.
func TestFullLatencyHits(t *testing.T) {
	ch, _ := apChannel(t, func(c *config.Config) { c.Mem.FullLatencyHits = true })
	ch.ScheduleRead(0, ready12)
	const later = 1000 * ns
	dataAt, hit := ch.ScheduleRead(64, later)
	if !hit {
		t.Fatal("expected hit")
	}
	if want := later + 51*ns; dataAt != want {
		t.Errorf("APFL hit data at %v, want %v (full 63ns path)", dataAt, want)
	}
}

// TestGroupFetchCountersAndFills: one demand miss performs exactly one
// ACT/PRE pair and K pipelined column reads, and deposits K-1 lines in the
// AMB cache.
func TestGroupFetchCountersAndFills(t *testing.T) {
	ch, m := apChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	if ch.Counters.ACT != 1 || ch.Counters.PRE != 1 {
		t.Errorf("ACT/PRE = %d/%d, want 1/1", ch.Counters.ACT, ch.Counters.PRE)
	}
	if ch.Counters.ColRead != 4 {
		t.Errorf("column reads = %d, want K=4", ch.Counters.ColRead)
	}
	for _, line := range []int64{64, 128, 192} {
		if !ch.ambs[0].Contains(line, m.LocalLineID(line)) {
			t.Errorf("line %d missing from AMB cache", line/64)
		}
	}
	s := ch.AMBStats()
	if s.Prefetched != 3 {
		t.Errorf("prefetched = %d, want 3", s.Prefetched)
	}
	if s.Reads != 1 || s.Hits != 0 {
		t.Errorf("reads/hits = %d/%d", s.Reads, s.Hits)
	}
}

// TestInflightRace: a demand read racing its own region's prefetch waits
// for the line to land in the AMB, not for a new DRAM access.
func TestInflightRace(t *testing.T) {
	ch, _ := apChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	actBefore := ch.Counters.ACT
	// Immediately demand line 3 (the last to arrive, at burstStart+4*burst;
	// the miss's burst starts at 45ns with burst 6ns → in AMB at 69ns).
	dataAt, hit := ch.ScheduleRead(192, ready12)
	if !hit {
		t.Fatal("in-flight line must count as a hit")
	}
	if ch.Counters.ACT != actBefore {
		t.Error("in-flight hit must not touch DRAM")
	}
	// It cannot return before the line reaches the AMB (69ns) plus the
	// northbound transfer and hops.
	if dataAt < 69*ns+6*ns+12*ns {
		t.Errorf("race hit returned at %v, before the prefetch landed", dataAt)
	}
}

// TestWriteInvalidatesAMB: the design invalidates written lines so the AMB
// never serves stale data; the write-update ablation keeps them.
func TestWriteInvalidatesAMB(t *testing.T) {
	ch, m := apChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	ch.ScheduleWrite([]int64{64}, 500*ns)
	if ch.ambs[0].Contains(64, m.LocalLineID(64)) {
		t.Error("written line must be invalidated")
	}
	if _, hit := ch.ScheduleRead(64, 2000*ns); hit {
		t.Error("read after write must miss the AMB cache")
	}

	upd, m2 := apChannel(t, func(c *config.Config) { c.Mem.AMBWriteUpdate = true })
	upd.ScheduleRead(0, ready12)
	upd.ScheduleWrite([]int64{64}, 500*ns)
	if !upd.ambs[0].Contains(64, m2.LocalLineID(64)) {
		t.Error("write-update ablation must keep the line")
	}
}

// TestVRL: with variable read latency a near DIMM pays one hop (3 ns)
// instead of the full chain (12 ns).
func TestVRL(t *testing.T) {
	base, _ := newChannel(t, nil)
	vrl, m := newChannel(t, func(c *config.Config) { c.Mem.VRL = true })
	addr := int64(0) // line 0: channel 0, DIMM 0 under cacheline interleave
	if m.Map(addr).DIMM != 0 {
		t.Fatal("test assumes DIMM 0")
	}
	d0, _ := base.ScheduleRead(addr, ready12)
	d1, _ := vrl.ScheduleRead(addr, ready12)
	if d0-d1 != 9*ns {
		t.Errorf("VRL saves %v on DIMM 0, want 9ns (3 vs 12)", d0-d1)
	}
}

// TestBankConflictSerializes: two reads to different rows of one bank are
// separated by the activate-to-activate time, idling the channel — the
// inefficiency AMB prefetching attacks.
func TestBankConflictSerializes(t *testing.T) {
	ch, m := newChannel(t, nil)
	cfg := config.Default().Mem
	// Same bank, next row: advance by totalBanks * linesPerRow... simpler:
	// line i and line i + totalBanks*linesPerRow share bank but not row.
	stride := int64(cfg.TotalBanks()) * int64(cfg.RowBytes/cfg.LineBytes) * 64
	a, b := int64(0), stride
	la, lb := m.Map(a), m.Map(b)
	if la.Bank != lb.Bank || la.DIMM != lb.DIMM || la.Row == lb.Row {
		t.Fatalf("addresses do not conflict: %v vs %v", la, lb)
	}
	d1, _ := ch.ScheduleRead(a, ready12)
	d2, _ := ch.ScheduleRead(b, ready12)
	// The second activation cannot start before ACT1 + tRC (15ns + 54ns),
	// so its data lags the first by at least tRC - small overlaps.
	if d2-d1 < 30*ns {
		t.Errorf("conflicting reads only %v apart; bank conflict not modeled", d2-d1)
	}

	// Control: reads to different banks overlap much more tightly.
	ch2, m2 := newChannel(t, nil)
	c, dAddr := int64(0), int64(2*64) // lines 0 and 2: same channel, different bank path
	if m2.Map(c).BankID(&cfg) == m2.Map(dAddr).BankID(&cfg) {
		t.Fatal("control addresses share a bank")
	}
	e1, _ := ch2.ScheduleRead(c, ready12)
	e2, _ := ch2.ScheduleRead(dAddr, ready12)
	if e2-e1 >= d2-d1 {
		t.Errorf("independent banks (%v apart) should beat conflicting banks (%v apart)", e2-e1, d2-d1)
	}
}

// TestNorthboundSerializesIndependentDIMMs: reads to different DIMMs still
// share the northbound link, spacing completions by the line transfer time.
func TestNorthboundSerializesIndependentDIMMs(t *testing.T) {
	ch, m := newChannel(t, nil)
	cfg := config.Default().Mem
	// Lines on channel 0, different DIMMs: lines 0 and 2 (line 2 → unit 2:
	// channel 0, DIMM 1).
	a, b := int64(0), int64(2*64)
	if m.Map(a).DIMM == m.Map(b).DIMM {
		t.Fatal("want different DIMMs")
	}
	_ = cfg
	d1, _ := ch.ScheduleRead(a, ready12)
	d2, _ := ch.ScheduleRead(b, ready12)
	if d2-d1 < 6*ns {
		t.Errorf("northbound must serialize transfers: %v apart", d2-d1)
	}
}

// TestWriteGroupSingleActivation: a batch of same-region writebacks costs
// one ACT/PRE pair and n column writes.
func TestWriteGroupSingleActivation(t *testing.T) {
	ch, _ := apChannel(t, nil)
	done := ch.ScheduleWrite([]int64{0, 64, 128, 192}, ready12)
	if ch.Counters.ACT != 1 || ch.Counters.PRE != 1 {
		t.Errorf("ACT/PRE = %d/%d, want 1/1", ch.Counters.ACT, ch.Counters.PRE)
	}
	if ch.Counters.ColWrit != 4 {
		t.Errorf("column writes = %d, want 4", ch.Counters.ColWrit)
	}
	if done <= ready12 {
		t.Error("completion time not in the future")
	}
	if ch.Links.BytesSouth != 4*64 {
		t.Errorf("south bytes = %d", ch.Links.BytesSouth)
	}
}

// TestSeparateWritesCostSeparateActivations is the contrast case for the
// group-write optimization.
func TestSeparateWritesCostSeparateActivations(t *testing.T) {
	ch, _ := newChannel(t, nil)
	// Under cacheline interleaving, consecutive lines 0 and 2 (same
	// channel) live in different banks → separate activations.
	ch.ScheduleWrite([]int64{0}, ready12)
	ch.ScheduleWrite([]int64{2 * 64}, ready12)
	if ch.Counters.ACT != 2 {
		t.Errorf("ACT = %d, want 2", ch.Counters.ACT)
	}
}

func TestLinkByteAccounting(t *testing.T) {
	ch, _ := newChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	ch.ScheduleRead(2*64, ready12)
	ch.ScheduleWrite([]int64{4 * 64}, ready12)
	if ch.Links.BytesNorth != 128 || ch.Links.BytesSouth != 64 {
		t.Errorf("bytes = %d north / %d south", ch.Links.BytesNorth, ch.Links.BytesSouth)
	}
}

func TestIsFastRead(t *testing.T) {
	ch, _ := apChannel(t, nil)
	if ch.IsFastRead(64) {
		t.Error("cold cache: nothing is fast")
	}
	ch.ScheduleRead(0, ready12)
	if !ch.IsFastRead(64) {
		t.Error("prefetched line must be fast")
	}
	if ch.IsFastRead(4 * 64) {
		t.Error("next region must not be fast")
	}
	plain, _ := newChannel(t, nil)
	if plain.IsFastRead(0) {
		t.Error("no AMB cache and close-page: never fast")
	}
}

// TestHousekeepPreservesFutureScheduling: pruning history must not affect
// subsequent requests.
func TestHousekeepPreservesFutureScheduling(t *testing.T) {
	ch, _ := newChannel(t, nil)
	ch.ScheduleRead(0, ready12)
	ch.Housekeep(500 * ns)
	dataAt, _ := ch.ScheduleRead(2*64, 1000*ns)
	if want := 1000*ns + 51*ns; dataAt != want {
		t.Errorf("post-housekeep idle read at %v, want %v", dataAt, want)
	}
}

// TestEvictionDropsInflight: when a prefetched-but-not-used line is evicted
// from the AMB cache, its in-flight record must go too (no stale hits).
func TestEvictionDropsInflight(t *testing.T) {
	ch, _ := apChannel(t, func(c *config.Config) {
		c.Mem.AMBCacheLines = 4 // tiny cache: one region fills it
		c.Mem.AMBCacheAssoc = config.FullAssoc
	})
	ch.ScheduleRead(0, ready12) // prefetches lines 1..3
	// Next region on the same DIMM: region IDs advance by channels*dimms.
	cfg := config.WithAMBPrefetch(config.Default()).Mem
	next := int64(cfg.LogicalChannels*cfg.DIMMsPerChannel) * 4 * 64
	ch.ScheduleRead(next, 500*ns) // evicts earlier lines
	if len(ch.inflight) > 6 {
		t.Errorf("inflight grew to %d; evicted lines not cleaned", len(ch.inflight))
	}
}

// TestDataRateScalesBurst: at 533 MT/s the idle latency grows by the longer
// frame/data times while DRAM core timings stay fixed.
func TestDataRateScalesBurst(t *testing.T) {
	fast, _ := newChannel(t, nil)
	slow, _ := newChannel(t, func(c *config.Config) { c.Mem.DataRate = clock.DDR2_533 })
	df, _ := fast.ScheduleRead(0, ready12)
	ds, _ := slow.ScheduleRead(0, ready12)
	if ds <= df {
		t.Errorf("533 MT/s read (%v) should be slower than 667 (%v)", ds, df)
	}
}

// TestSoakInvariants drives thousands of random transactions through the
// channel and checks global invariants: monotone resource behaviour, legal
// completion times, close-page ACT/PRE pairing, and statistics consistency.
func TestSoakInvariants(t *testing.T) {
	for _, ap := range []bool{false, true} {
		ch, m := newChannel(t, func(c *config.Config) {
			if ap {
				*c = config.WithAMBPrefetch(*c)
			}
		})
		rng := uint64(12345)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		ready := ready12
		var reads int64
		for i := 0; i < 5000; i++ {
			addr := int64(next()%(1<<22)) * 64
			ready += clock.Time(next()%20) * ns
			if next()%4 == 0 {
				done := ch.ScheduleWrite([]int64{m.LineAddr(addr)}, ready)
				if done <= ready {
					t.Fatalf("write completed before it was ready: %v <= %v", done, ready)
				}
				continue
			}
			reads++
			dataAt, _ := ch.ScheduleRead(addr, ready)
			// A read can never beat the minimal hit path (cmd + transfer
			// + hops = 21ns past ready).
			if dataAt < ready+21*ns {
				t.Fatalf("read %d impossibly fast: %v after ready %v", i, dataAt, ready)
			}
			if i%512 == 0 {
				ch.Housekeep(ready)
			}
		}
		if ch.Counters.ACT != ch.Counters.PRE {
			t.Errorf("ap=%v: close-page ACT %d != PRE %d", ap, ch.Counters.ACT, ch.Counters.PRE)
		}
		if ap {
			s := ch.AMBStats()
			if s.Reads != reads {
				t.Errorf("AMB reads %d != issued reads %d", s.Reads, reads)
			}
			if s.Hits > s.Reads || s.Evictions > s.Prefetched {
				t.Errorf("AMB stats inconsistent: %+v", s)
			}
			// Column reads = misses*K + 0 for hits.
			misses := reads - s.Hits
			if ch.Counters.ColRead != misses*4 {
				t.Errorf("column reads %d != misses %d * K", ch.Counters.ColRead, misses)
			}
		} else if ch.Counters.ColRead != reads {
			t.Errorf("column reads %d != reads %d", ch.Counters.ColRead, reads)
		}
	}
}
