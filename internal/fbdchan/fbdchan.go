// Package fbdchan models one logical FB-DIMM channel: the southbound link
// (three command slots, or one command plus 16 bytes of write data, per
// frame), the northbound link (32 bytes of read data per frame), the AMB
// daisy chain with its per-hop forwarding delay, the per-DIMM DDR2 buses
// between each AMB and its DRAM chips, and — when enabled — the AMB
// prefetching machinery of Section 3.2.
//
// A frame is two DRAM clocks (6 ns at 667 MT/s), which makes the northbound
// payload rate exactly one DDR2 channel's bandwidth and the southbound
// write-data rate half of it, as Section 3.1 requires. Channel ganging
// multiplies frame payloads and DIMM bus width.
//
// With the default configuration the model reproduces the paper's idle
// latency decomposition exactly: a read miss costs 12 ns controller
// overhead + 3 ns southbound command delay + 15 ns tRCD + 15 ns tCL + 6 ns
// data transfer + 4×3 ns AMB hops = 63 ns; an AMB-cache hit skips the two
// DRAM operations and costs 33 ns.
package fbdchan

import (
	"fbdsim/internal/addrmap"
	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/dram"
	"fbdsim/internal/fault"
	"fbdsim/internal/resource"
)

// LinkStats tracks data actually moved over the channel links, the basis of
// the paper's "utilized bandwidth" metric.
type LinkStats struct {
	BytesNorth int64 // read data returned to the controller
	BytesSouth int64 // write data sent to the DIMMs
}

// Channel is one logical FB-DIMM channel (possibly a gang of physical
// channels operated in lockstep).
type Channel struct {
	cfg    *config.Mem
	mapper *addrmap.Mapper

	frame     clock.Time // FB-DIMM frame: 2 tCK
	cmdSlot   clock.Time // one of three command slots per frame
	northTime clock.Time // northbound occupancy (and transfer time) of one cacheline
	burst     clock.Time // per-line occupancy of a DIMM's DDR2 bus
	cmdDelay  clock.Time // fixed southbound command propagation

	south   *resource.Timeline
	north   *resource.Timeline
	dimmBus []*resource.Timeline
	dimms   []*dram.DIMM

	// AMB prefetching state (nil / empty when disabled).
	ambs []*ambcache.Cache
	// inflight maps a prefetched line to the time it lands in its AMB
	// cache; a demand read racing a prefetch waits for that instant
	// rather than re-accessing DRAM.
	inflight map[int64]clock.Time

	// Counters accumulates DRAM operations for the power model.
	Counters dram.Counters
	// Links accumulates channel traffic.
	Links LinkStats
	// BankConflicts counts activations delayed by bank-level timing
	// (tRC/precharge/tRRD) — the inefficiency source Section 5.2 blames
	// for idle channel cycles and AMB prefetching reduces.
	BankConflicts int64

	// lastCmdAt / lastServiceAt record the command-arrival and
	// service-start instants of the most recent Schedule* call; the
	// controller copies them into the request when tracing is enabled
	// (see LastTiming).
	lastCmdAt     clock.Time
	lastServiceAt clock.Time

	// inj is the optional fault injector. When nil (the default) fault
	// injection costs a single pointer comparison per link reservation;
	// every injector method is additionally nil-safe.
	inj *fault.Injector
}

// New builds the channel model. cfg must be validated; mapper must be built
// from the same cfg.
func New(cfg *config.Mem, mapper *addrmap.Mapper) *Channel {
	tck := cfg.DataRate.TCK()
	frame := 2 * tck
	gang := clock.Time(cfg.GangWidth)
	line := clock.Time(cfg.LineBytes)

	c := &Channel{
		cfg:      cfg,
		mapper:   mapper,
		frame:    frame,
		cmdSlot:  frame / 3,
		cmdDelay: 3 * clock.Nanosecond,
		south:    resource.NewQuantized(frame / 3),
		north:    resource.NewQuantized(0),
		inflight: make(map[int64]clock.Time),
	}
	// Northbound: 32 B per frame per physical channel.
	framesPerLine := (line + 32*gang - 1) / (32 * gang)
	c.northTime = framesPerLine * frame
	// DIMM DDR2 bus: 8 B per beat per physical channel, two beats per tCK.
	beats := (line + 8*gang - 1) / (8 * gang)
	c.burst = beats * tck / 2

	c.dimmBus = make([]*resource.Timeline, cfg.DIMMsPerChannel)
	c.dimms = make([]*dram.DIMM, cfg.DIMMsPerChannel)
	for i := range c.dimms {
		c.dimmBus[i] = resource.NewQuantized(0)
		c.dimms[i] = dram.NewDIMM(cfg.BanksPerDIMM, cfg.Timing)
		if cfg.RefreshEnabled {
			trefi, trfc := cfg.RefreshTimings()
			// Stagger DIMMs so the channel never loses all of them at once.
			c.dimms[i].SetRefresh(trefi, trfc, clock.Time(i)*trefi/clock.Time(cfg.DIMMsPerChannel))
		}
	}
	if cfg.AMBPrefetch {
		c.ambs = make([]*ambcache.Cache, cfg.DIMMsPerChannel)
		for i := range c.ambs {
			c.ambs[i] = ambcache.New(cfg.AMBCacheLines, cfg.AMBCacheAssoc,
				cfg.AMBReplacement)
		}
	}
	return c
}

// SetInjector attaches (or, with nil, detaches) a fault injector. Call
// before simulation starts.
func (c *Channel) SetInjector(inj *fault.Injector) { c.inj = inj }

// DegradeDIMMBus puts one DIMM's DDR2 bus into degraded mode: every burst
// occupies factor× its nominal bus time.
func (c *Channel) DegradeDIMMBus(dimm, factor int) {
	c.dimms[dimm].SetDegradedBus(factor)
}

// burstFor returns the per-line DDR2 bus occupancy on dimm, scaled up when
// the DIMM runs degraded.
func (c *Channel) burstFor(dimm int) clock.Time {
	if s := c.dimms[dimm].BusScale(); s > 1 {
		return c.burst * clock.Time(s)
	}
	return c.burst
}

// northStart returns when the northbound transfer of a read served by dimm
// may begin, given its DRAM burst starts at burstStart. A healthy DIMM bus
// is rate-matched with the northbound link, so the AMB cuts the data
// through; a degraded (slower) bus cannot sustain the link rate, so the AMB
// buffers the full line before forwarding it.
func (c *Channel) northStart(dimm int, burstStart clock.Time) clock.Time {
	if b := c.burstFor(dimm); b > c.burst {
		return burstStart + b
	}
	return burstStart
}

// reserveWithRetry books dur on a link timeline, then — when fault
// injection is on — replays CRC-corrupted transfers: each error waits out
// the detect/turnaround delay and re-arbitrates for a fresh slot, consuming
// real link bandwidth exactly like the FB-DIMM retry protocol. Replays are
// capped at the injector's MaxRetries.
func (c *Channel) reserveWithRetry(tl *resource.Timeline, ready, dur clock.Time, class fault.Class) clock.Time {
	slot := tl.Reserve(ready, dur)
	if c.inj == nil {
		return slot
	}
	for n := 0; n < c.inj.MaxRetries(); n++ {
		if !c.inj.FrameError(class) {
			break
		}
		replay := tl.Reserve(slot+dur+c.inj.RetryDelay(), dur)
		c.inj.NoteRetry(replay - slot)
		slot = replay
	}
	return slot
}

// hop returns the total AMB forwarding delay a request to dimm pays.
// Without VRL every request pays the full chain (the fixed farthest-DIMM
// latency); with VRL only the hops up to its own DIMM.
func (c *Channel) hop(dimm int) clock.Time {
	n := c.cfg.DIMMsPerChannel
	if c.cfg.VRL {
		n = dimm + 1
	}
	return clock.Time(n) * c.cfg.AMBHopDelay
}

// IsFastRead reports whether a read to addr would be served without a full
// DRAM access — an AMB-cache hit (or in-flight prefetch), or an open-row
// hit under open-page mode. The controller's hit-first scheduler
// prioritizes these.
func (c *Channel) IsFastRead(addr int64) bool {
	loc := c.mapper.Map(addr)
	line := c.mapper.LineAddr(addr)
	if c.cfg.AMBPrefetch {
		if c.ambs[loc.DIMM].Contains(line, c.mapper.LocalLineID(line)) {
			return true
		}
		if _, ok := c.inflight[line]; ok {
			return true
		}
	}
	if c.cfg.PageMode == config.OpenPage {
		return c.dimms[loc.DIMM].Banks[loc.Bank].OpenRow() == loc.Row
	}
	return false
}

// AMBStats returns the aggregated prefetch statistics of every AMB cache on
// the channel (zero value when prefetching is disabled).
func (c *Channel) AMBStats() ambcache.Stats {
	var s ambcache.Stats
	for _, a := range c.ambs {
		s.Add(a.Stats)
	}
	return s
}

// ScheduleRead books every resource a demand read needs, starting no
// earlier than ready (the time the controller finished its own pipeline),
// and returns the time the full cacheline is back at the controller plus
// whether the AMB cache served it.
func (c *Channel) ScheduleRead(addr int64, ready clock.Time) (dataAt clock.Time, ambHit bool) {
	loc := c.mapper.Map(addr)
	line := c.mapper.LineAddr(addr)
	c.Links.BytesNorth += int64(c.cfg.LineBytes)

	if c.cfg.AMBPrefetch {
		if avail, hit := c.lookupAMB(loc.DIMM, line); hit {
			return c.scheduleAMBHit(loc, ready, avail), true
		}
		return c.scheduleGroupFetch(loc, addr, ready), false
	}
	// Plain FB-DIMM: single-line DRAM access. The AMB cuts the read data
	// through to the northbound link as the DDR2 burst streams in (the
	// two buses are rate-matched), so the northbound transfer begins when
	// the DRAM burst begins.
	sSlot := c.reserveWithRetry(c.south, ready, c.cmdSlot, fault.SouthFrame)
	cmdArrive := sSlot + c.cmdDelay
	burstStart := c.bankRead(loc, cmdArrive, 1)
	c.lastCmdAt, c.lastServiceAt = cmdArrive, burstStart
	nSlot := c.reserveWithRetry(c.north, c.northStart(loc.DIMM, burstStart), c.northTime, fault.NorthFrame)
	return nSlot + c.northTime + c.hop(loc.DIMM), false
}

// lookupAMB consults the controller-side tag table. It returns the time the
// line is (or will be) available at the AMB and whether that counts as a
// prefetch hit.
func (c *Channel) lookupAMB(dimm int, line int64) (clock.Time, bool) {
	amb := c.ambs[dimm]
	local := c.mapper.LocalLineID(line)
	// Soft-error injection: a resident line may be found poisoned on
	// access. The controller scrubs its tag (keeping MC tags and AMB
	// contents coherent) and the access falls through to a demand miss.
	// The residency check precedes LookupRead so hit statistics never
	// count a line the scrub just destroyed.
	if c.inj != nil && amb.Contains(line, local) && c.inj.AMBSoftError() {
		amb.Scrub(line, local)
		delete(c.inflight, line)
	}
	if amb.LookupRead(line, local) {
		if avail, ok := c.inflight[line]; ok {
			return avail, true
		}
		return 0, true
	}
	return 0, false
}

// scheduleAMBHit returns data from the AMB cache: southbound fetch command,
// then a northbound transfer — no DRAM operations. Under FullLatencyHits
// (the FBD-APFL decomposition arm of Figure 9) the hit additionally waits
// out the tRCD+tCL it would have spent in the DRAM, isolating the
// bank-conflict benefit from the latency benefit.
func (c *Channel) scheduleAMBHit(loc addrmap.Location, ready, avail clock.Time) clock.Time {
	sSlot := c.reserveWithRetry(c.south, ready, c.cmdSlot, fault.SouthFrame)
	ambReady := maxTime(sSlot+c.cmdDelay, avail)
	if c.cfg.FullLatencyHits {
		ambReady += c.cfg.Timing.TRCD + c.cfg.Timing.TCL
	}
	c.lastCmdAt, c.lastServiceAt = sSlot+c.cmdDelay, ambReady
	nSlot := c.reserveWithRetry(c.north, ambReady, c.northTime, fault.NorthFrame)
	return nSlot + c.northTime + c.hop(loc.DIMM)
}

// scheduleGroupFetch performs the AMB-prefetch miss path: one southbound
// command makes the AMB issue K pipelined column reads; the demanded line
// (fetched first) crosses the northbound link while the other K-1 lines are
// stored in the AMB cache without touching the channel.
func (c *Channel) scheduleGroupFetch(loc addrmap.Location, addr int64, ready clock.Time) clock.Time {
	group := c.mapper.Group(addr)
	k := len(group)

	sSlot := c.reserveWithRetry(c.south, ready, c.cmdSlot, fault.SouthFrame)
	cmdArrive := sSlot + c.cmdDelay
	burstStart := c.bankRead(loc, cmdArrive, k)
	c.lastCmdAt, c.lastServiceAt = cmdArrive, burstStart

	nSlot := c.reserveWithRetry(c.north, c.northStart(loc.DIMM, burstStart), c.northTime, fault.NorthFrame)
	dataAt := nSlot + c.northTime + c.hop(loc.DIMM)

	// The prefetched lines land in the AMB cache one DDR2 burst after
	// another (line i is fully received (i+1) bursts after the train
	// starts; the demanded line goes first).
	amb := c.ambs[loc.DIMM]
	burst := c.burstFor(loc.DIMM)
	for i, la := range group[1:] {
		fillAt := burstStart + clock.Time(i+2)*burst
		if evicted, was := amb.InsertPrefetch(la, c.mapper.LocalLineID(la)); was {
			delete(c.inflight, evicted)
		}
		c.inflight[la] = fillAt
	}
	return dataAt
}

// bankRead performs the DRAM side of a read of n pipelined column accesses
// (n > 1 only for AMB group fetches) and returns the time the first line's
// burst starts on the DIMM's DDR2 bus. cmdArrive is when the command
// reaches the AMB.
func (c *Channel) bankRead(loc addrmap.Location, cmdArrive clock.Time, n int) clock.Time {
	dimm := c.dimms[loc.DIMM]
	bank := dimm.Banks[loc.Bank]
	t := c.cfg.Timing

	rowReady := cmdArrive
	if c.cfg.PageMode == config.OpenPage && bank.OpenRow() == loc.Row {
		// Row hit: column access may issue immediately.
	} else {
		if bank.OpenRow() != dram.NoRow {
			// Row conflict under open-page mode: precharge first.
			preAt := bank.EarliestPRE(cmdArrive)
			bank.Precharge(preAt, &c.Counters)
			rowReady = preAt
		}
		actAt := dimm.EarliestACT(loc.Bank, rowReady)
		if actAt > rowReady {
			c.BankConflicts++
		}
		dimm.Activate(loc.Bank, actAt, loc.Row, &c.Counters)
	}

	burst := c.burstFor(loc.DIMM)
	rdMin := bank.EarliestRead(cmdArrive)
	busAt := c.dimmBus[loc.DIMM].Reserve(rdMin+t.TCL, clock.Time(n)*burst)
	rdAt := busAt - t.TCL
	bank.Read(rdAt, clock.Time(n)*burst, &c.Counters)
	c.Counters.ColRead += int64(n - 1) // remaining pipelined column accesses

	if c.cfg.PageMode == config.ClosePage {
		// Auto-precharge once the burst train and tRAS allow it.
		lastRd := rdAt + clock.Time(n-1)*burst
		preAt := bank.EarliestPRE(lastRd + t.TRPD)
		bank.Precharge(preAt, &c.Counters)
	}
	return busAt
}

// ScheduleWrite books a group of cacheline writebacks that share one DRAM
// row (the controller batches same-region writes, its hit-first policy
// applied to the write stream): command + data cross the southbound link,
// then one activation serves n pipelined column writes. It returns the time
// the last write's data is in the DRAM array.
func (c *Channel) ScheduleWrite(addrs []int64, ready clock.Time) clock.Time {
	loc := c.mapper.Map(addrs[0])
	n := len(addrs)
	c.Links.BytesSouth += int64(n * c.cfg.LineBytes)

	if c.cfg.AMBPrefetch && !c.cfg.AMBWriteUpdate {
		// The design invalidates cached copies so the AMB never serves
		// stale data. (Write-update is the ablation alternative: the AMB
		// snoops the write data as it passes through.)
		for _, a := range addrs {
			line := c.mapper.LineAddr(a)
			c.ambs[loc.DIMM].Invalidate(line, c.mapper.LocalLineID(line))
			delete(c.inflight, line)
		}
	}

	// Southbound: one command slot per line plus the write data. Each
	// frame moves 16 B × gang while still carrying one command, so data
	// consumes two of the three slots per frame it occupies.
	chunks := (c.cfg.LineBytes + 16*c.cfg.GangWidth - 1) / (16 * c.cfg.GangWidth)
	dur := c.cmdSlot * clock.Time(n+2*n*chunks)
	// A CRC error anywhere in the command+data frame sequence replays the
	// whole transfer (one injector draw per transfer attempt).
	sSlot := c.reserveWithRetry(c.south, ready, dur, fault.SouthFrame)
	cmdArrive := sSlot + dur + c.cmdDelay

	dimm := c.dimms[loc.DIMM]
	bank := dimm.Banks[loc.Bank]
	t := c.cfg.Timing

	if c.cfg.PageMode == config.OpenPage && bank.OpenRow() == loc.Row {
		// Row hit.
	} else {
		rowReady := cmdArrive
		if bank.OpenRow() != dram.NoRow {
			preAt := bank.EarliestPRE(cmdArrive)
			bank.Precharge(preAt, &c.Counters)
			rowReady = preAt
		}
		actAt := dimm.EarliestACT(loc.Bank, rowReady)
		if actAt > rowReady {
			c.BankConflicts++
		}
		dimm.Activate(loc.Bank, actAt, loc.Row, &c.Counters)
	}

	burst := c.burstFor(loc.DIMM)
	wrMin := bank.EarliestWrite(cmdArrive)
	busAt := c.dimmBus[loc.DIMM].Reserve(wrMin+t.TWL, clock.Time(n)*burst)
	wrAt := busAt - t.TWL
	c.lastCmdAt, c.lastServiceAt = cmdArrive, busAt
	dataStart := bank.Write(wrAt, clock.Time(n)*burst, &c.Counters)
	c.Counters.ColWrit += int64(n - 1)
	lastWr := wrAt + clock.Time(n-1)*burst

	if c.cfg.PageMode == config.ClosePage {
		preAt := bank.EarliestPRE(lastWr + t.TWPD)
		bank.Precharge(preAt, &c.Counters)
	}
	return dataStart + clock.Time(n)*burst
}

// Housekeep prunes reservation history older than the horizon and drops
// in-flight records that have already landed. The controller calls it
// periodically; horizon must not exceed the earliest future "ready" time it
// will ever pass to Schedule*.
func (c *Channel) Housekeep(horizon clock.Time) {
	c.south.Prune(horizon)
	c.north.Prune(horizon)
	for _, b := range c.dimmBus {
		b.Prune(horizon)
	}
	for line, t := range c.inflight {
		if t <= horizon {
			delete(c.inflight, line)
		}
	}
}

// LinkBusy reports the cumulative reserved time of the northbound and
// southbound links (utilization numerators).
func (c *Channel) LinkBusy() (north, south clock.Time) {
	return c.north.TotalReserved(), c.south.TotalReserved()
}

// LastTiming returns the command-arrival and service-start times of the
// most recent ScheduleRead/ScheduleWrite call. The memtrace recorder uses
// it to stamp per-stage timestamps; it is meaningless between calls.
func (c *Channel) LastTiming() (cmdAt, serviceAt clock.Time) {
	return c.lastCmdAt, c.lastServiceAt
}

// DIMMBusBusy reports the cumulative reserved time across the channel's
// per-DIMM DDR2 data buses (the numerator of DIMM-bus utilization).
func (c *Channel) DIMMBusBusy() clock.Time {
	var total clock.Time
	for _, b := range c.dimmBus {
		total += b.TotalReserved()
	}
	return total
}

func maxTime(a, b clock.Time) clock.Time {
	if a > b {
		return a
	}
	return b
}
