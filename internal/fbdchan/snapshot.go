package fbdchan

import (
	"sort"

	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the channel's mutable state: link and DIMM-bus
// timelines, bank FSMs, AMB caches, the in-flight prefetch table and the
// accumulated counters. Geometry and timing are construction-derived and
// not written. The fault injector is owned (and serialized) by the
// controller, which shares it across channels.
func (c *Channel) Snapshot(e *snapshot.Encoder) {
	c.south.Snapshot(e)
	c.north.Snapshot(e)
	e.Int(len(c.dimmBus))
	for _, b := range c.dimmBus {
		b.Snapshot(e)
	}
	e.Int(len(c.dimms))
	for _, d := range c.dimms {
		d.Snapshot(e)
	}
	e.Bool(c.ambs != nil)
	for _, a := range c.ambs {
		a.Snapshot(e)
	}
	// The in-flight map is written in sorted key order so identical machine
	// states produce identical snapshot bytes.
	lines := make([]int64, 0, len(c.inflight))
	for line := range c.inflight {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	e.Int(len(lines))
	for _, line := range lines {
		e.I64(line)
		e.I64(int64(c.inflight[line]))
	}
	c.Counters.Snapshot(e)
	e.I64(c.Links.BytesNorth)
	e.I64(c.Links.BytesSouth)
	e.I64(c.BankConflicts)
	e.I64(int64(c.lastCmdAt))
	e.I64(int64(c.lastServiceAt))
}

// Restore overwrites the channel's mutable state from d. Structural counts
// must match the constructed configuration.
func (c *Channel) Restore(d *snapshot.Decoder) {
	c.south.Restore(d)
	c.north.Restore(d)
	if n := d.Int(); n != len(c.dimmBus) {
		d.Fail("fbdchan: snapshot has %d DIMM buses, machine has %d", n, len(c.dimmBus))
		return
	}
	for _, b := range c.dimmBus {
		b.Restore(d)
	}
	if n := d.Int(); n != len(c.dimms) {
		d.Fail("fbdchan: snapshot has %d DIMMs, machine has %d", n, len(c.dimms))
		return
	}
	for _, dimm := range c.dimms {
		dimm.Restore(d)
	}
	if haveAMB := d.Bool(); haveAMB != (c.ambs != nil) {
		d.Fail("fbdchan: snapshot AMB caches %v, machine %v", haveAMB, c.ambs != nil)
		return
	}
	for _, a := range c.ambs {
		a.Restore(d)
	}
	n := d.Count(16)
	c.inflight = make(map[int64]clock.Time, n)
	for i := 0; i < n; i++ {
		line := d.I64()
		c.inflight[line] = clock.Time(d.I64())
	}
	c.Counters.Restore(d)
	c.Links = LinkStats{BytesNorth: d.I64(), BytesSouth: d.I64()}
	c.BankConflicts = d.I64()
	c.lastCmdAt = clock.Time(d.I64())
	c.lastServiceAt = clock.Time(d.I64())
}
