package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Save writes the configuration as indented JSON.
func (c *Config) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("config: encoding: %w", err)
	}
	return nil
}

// SaveFile writes the configuration to path.
func (c *Config) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return c.Save(f)
}

// Load reads a JSON configuration. Unknown fields are rejected so typos in
// experiment files fail loudly, and the result is validated before being
// returned.
func Load(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	// Start from the defaults so partial files only override what they
	// mention.
	c := Default()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: decoding: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadFile reads and validates the configuration at path.
func LoadFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Load(f)
}
