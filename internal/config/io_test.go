package config

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// brokenWriter fails every write so Save's error path runs.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("pipe closed") }

func TestSavePropagatesWriteError(t *testing.T) {
	c := Default()
	err := c.Save(brokenWriter{})
	if err == nil {
		t.Fatal("Save to a failing writer must error")
	}
	if !strings.Contains(err.Error(), "config:") {
		t.Errorf("error %q lacks package prefix", err)
	}
}

func TestSaveFileBadPath(t *testing.T) {
	c := Default()
	if err := c.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "cfg.json")); err == nil {
		t.Error("SaveFile into a missing directory must error")
	}
}

func TestSaveFileOverDirectory(t *testing.T) {
	c := Default()
	if err := c.SaveFile(t.TempDir()); err == nil {
		t.Error("SaveFile onto a directory must error")
	}
}

func TestLoadTruncatedJSON(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"Seed": 7,`)); err == nil {
		t.Error("truncated JSON must be rejected")
	}
}

func TestLoadWrongFieldType(t *testing.T) {
	_, err := Load(strings.NewReader(`{"Seed": "not a number"}`))
	if err == nil {
		t.Fatal("mistyped field must be rejected")
	}
	if !strings.Contains(err.Error(), "decoding") {
		t.Errorf("error %q should identify the decode stage", err)
	}
}

func TestLoadNestedUnknownField(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"Mem": {"Typo": 1}}`)); err == nil {
		t.Error("unknown nested fields must be rejected")
	}
}

func TestLoadEmptyObjectIsDefaults(t *testing.T) {
	got, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if got != Default() {
		t.Error("empty object must load as the default configuration")
	}
}

func TestLoadFileUnreadable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores file permissions")
	}
	path := filepath.Join(t.TempDir(), "cfg.json")
	c := Default()
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(path, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("unreadable file must error")
	}
}

// TestRoundTripEveryPreset: each preset survives Save/Load byte-identically.
func TestRoundTripEveryPreset(t *testing.T) {
	presets := map[string]Config{
		"default": Default(),
		"ddr2":    DDR2Baseline(),
		"ap":      WithAMBPrefetch(Default()),
		"apfl":    WithFullLatencyHits(Default()),
		"ddr3":    WithDDR3(WithAMBPrefetch(Default())),
	}
	for name, orig := range presets {
		var buf strings.Builder
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := Load(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != orig {
			t.Errorf("%s: round trip changed the configuration", name)
		}
	}
}
