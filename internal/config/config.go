// Package config defines the complete configuration of a simulated system:
// the processor pipeline parameters of Table 1, the DRAM timing parameters
// of Table 2, the memory-subsystem organization of Section 5, and every
// AMB-prefetching knob that the paper's sensitivity studies vary.
//
// The zero value is not usable; start from Default and adjust.
package config

import (
	"errors"
	"fmt"

	"fbdsim/internal/clock"
)

// MemKind selects the memory interconnect technology.
type MemKind int

const (
	// DDR2 is the conventional stub-bus DDR2 channel baseline.
	DDR2 MemKind = iota
	// FBDIMM is the fully-buffered DIMM two-level interconnect.
	FBDIMM
)

func (k MemKind) String() string {
	switch k {
	case DDR2:
		return "DDR2"
	case FBDIMM:
		return "FB-DIMM"
	default:
		return fmt.Sprintf("MemKind(%d)", int(k))
	}
}

// Interleave selects how physical addresses are laid out across channels,
// DIMMs and banks (Section 3.2).
type Interleave int

const (
	// CachelineInterleave maps consecutive cachelines to different
	// channels/DIMMs/banks round-robin (the baseline for close-page mode).
	CachelineInterleave Interleave = iota
	// PageInterleave maps a full DRAM page of consecutive addresses to one
	// bank (used with open-page mode).
	PageInterleave
	// MultiCachelineInterleave maps regions of K consecutive cachelines to
	// one bank and row, then round-robins regions across channels and banks.
	// This is the scheme AMB prefetching requires.
	MultiCachelineInterleave
)

func (iv Interleave) String() string {
	switch iv {
	case CachelineInterleave:
		return "cacheline"
	case PageInterleave:
		return "page"
	case MultiCachelineInterleave:
		return "multi-cacheline"
	default:
		return fmt.Sprintf("Interleave(%d)", int(iv))
	}
}

// PageMode selects the row-buffer management policy.
type PageMode int

const (
	// ClosePage precharges a bank immediately after each access burst
	// (auto-precharge). The paper uses it for cacheline and multi-cacheline
	// interleaving.
	ClosePage PageMode = iota
	// OpenPage leaves the row open until a conflicting access forces a
	// precharge. The paper pairs it with page interleaving.
	OpenPage
)

func (m PageMode) String() string {
	if m == ClosePage {
		return "close-page"
	}
	return "open-page"
}

// Replacement selects the AMB-cache replacement policy.
type Replacement int

const (
	// FIFO is the paper's choice: a hit block is likely resident in the
	// processor cache and will not be re-referenced soon, so LRU's
	// recency signal is misleading at this level.
	FIFO Replacement = iota
	// LRU is provided for the ablation study.
	LRU
)

func (r Replacement) String() string {
	if r == FIFO {
		return "FIFO"
	}
	return "LRU"
}

// FullAssoc denotes a fully-associative AMB cache when used as the
// associativity value.
const FullAssoc = 0

// Timing holds the DRAM operation delays of Table 2.
type Timing struct {
	TRP  clock.Time // PRE to ACT, same bank
	TRCD clock.Time // ACT to RD/WR, same bank
	TCL  clock.Time // RD command to read data
	TRC  clock.Time // ACT to ACT, same bank
	TRRD clock.Time // ACT to ACT (or PRE to PRE), different banks
	TRPD clock.Time // RD command to PRE
	TWTR clock.Time // end of write data to RD command
	TRAS clock.Time // ACT to PRE (reads)
	TWL  clock.Time // WR command to write data
	TWPD clock.Time // WR command to PRE
}

// Table2 returns the DRAM timing parameters of Table 2 (DDR2-667 class).
func Table2() Timing {
	ns := clock.Nanosecond
	return Timing{
		TRP:  15 * ns,
		TRCD: 15 * ns,
		TCL:  15 * ns,
		TRC:  54 * ns,
		TRRD: 9 * ns,
		TRPD: 9 * ns,
		TWTR: 9 * ns,
		TRAS: 39 * ns,
		TWL:  12 * ns,
		TWPD: 36 * ns,
	}
}

// Table2DDR3 returns DDR3-1333-class timings for the forward-looking
// configuration the paper's footnote 1 anticipates. Core cell timings
// barely move between generations — the win is interface bandwidth.
func Table2DDR3() Timing {
	ps := clock.Picosecond
	return Timing{
		TRP:  13500 * ps,
		TRCD: 13500 * ps,
		TCL:  13500 * ps,
		TRC:  49500 * ps,
		TRRD: 6000 * ps,
		TRPD: 7500 * ps,
		TWTR: 7500 * ps,
		TRAS: 36000 * ps,
		TWL:  9000 * ps,
		TWPD: 30000 * ps,
	}
}

// Mem configures the memory subsystem (controller, channels, DIMMs, DRAM).
type Mem struct {
	Kind     MemKind
	DataRate clock.DataRate

	// LogicalChannels is the number of independently scheduled channels.
	// The paper's default is 2 (four physical channels ganged in pairs).
	LogicalChannels int
	// GangWidth is the number of physical channels ganged per logical
	// channel (2 in the default setting). Ganging multiplies the per-frame
	// payload and the DIMM-internal bus width.
	GangWidth int
	// DIMMsPerChannel is the DIMM count on each logical channel.
	DIMMsPerChannel int
	// BanksPerDIMM is the number of logical DRAM banks per DIMM.
	BanksPerDIMM int
	// RowBytes is the DRAM page (row) size of a logical bank in bytes.
	RowBytes int
	// LineBytes is the cacheline / memory block size.
	LineBytes int

	Interleave Interleave
	// RegionLines is K, the multi-cacheline interleaving granularity and
	// the number of lines fetched per demand miss when AMB prefetching is
	// on. Meaningful only with MultiCachelineInterleave.
	RegionLines int
	PageMode    PageMode
	// PermuteBanks applies the permutation-based interleaving of the
	// paper's reference [26] (Zhang, Zhu, Zhang, MICRO 2000): the bank
	// index is XOR-ed with low row bits, spreading row-conflicting
	// addresses across banks. An orthogonal extension that composes with
	// every interleaving scheme, including AMB prefetching's.
	PermuteBanks bool

	// QueueEntries is the memory controller transaction buffer size.
	QueueEntries int
	// CtrlOverhead is the fixed memory-controller pipeline overhead.
	CtrlOverhead clock.Time
	// WriteDrainThreshold is the number of buffered writes above which the
	// scheduler stops prioritizing reads.
	WriteDrainThreshold int

	Timing Timing

	// AMBHopDelay is the forwarding delay added by each AMB on the
	// daisy chain (FB-DIMM only).
	AMBHopDelay clock.Time
	// VRL enables variable read latency: a request pays hop delays only up
	// to its own DIMM instead of the full chain.
	VRL bool

	// AMBPrefetch enables the paper's proposal (FBD-AP).
	AMBPrefetch bool
	// AMBCacheLines is the per-AMB prefetch buffer capacity in cachelines.
	AMBCacheLines int
	// AMBCacheAssoc is the AMB cache associativity; FullAssoc (0) means
	// fully associative.
	AMBCacheAssoc int
	// AMBReplacement selects FIFO (paper) or LRU (ablation).
	AMBReplacement Replacement
	// FullLatencyHits makes AMB-cache hits pay the full DRAM-access idle
	// latency while still skipping bank activity. This is the FBD-APFL
	// configuration used in Figure 9 to decompose the performance gain.
	FullLatencyHits bool
	// AMBWriteUpdate updates a cached line on a write instead of
	// invalidating it (ablation; the paper's design invalidates).
	AMBWriteUpdate bool

	// RefreshEnabled adds periodic all-bank DRAM refresh (extension; the
	// paper's evaluation ignores refresh, whose cost is common to every
	// configuration). TREFI/TRFC default to 7.8 µs / 127.5 ns when zero.
	RefreshEnabled bool
	TREFI          clock.Time
	TRFC           clock.Time
}

// CPU configures the cores and cache hierarchy (Table 1).
type CPU struct {
	Cores      int
	IssueWidth int
	ROBEntries int
	LQEntries  int
	SQEntries  int

	// PipelineDepth approximates the 21-stage front end: minimum cycles
	// between fetch and earliest commit of an instruction.
	PipelineDepth int

	L1DataKB    int
	L1Assoc     int
	L1HitCycles int

	L2KB        int
	L2Assoc     int
	L2HitCycles int

	LineBytes int

	L1MSHRs int // data MSHRs per core
	L2MSHRs int // shared

	// SoftwarePrefetch executes the prefetch hints embedded in traces
	// (Section 5.4 toggles this).
	SoftwarePrefetch bool

	// HardwarePrefetch enables a stream-based hardware L2 prefetcher —
	// the extension experiment for Section 5.4's conjecture that AMB
	// prefetching composes with hardware prefetching like it does with
	// software prefetching. Off by default (the paper's configuration).
	HardwarePrefetch bool
	// HWPrefetchStreams, HWPrefetchDegree size the prefetcher (defaults
	// applied when zero: 16 streams, degree 4).
	HWPrefetchStreams int
	HWPrefetchDegree  int
}

// Trace configures the optional memtrace recorder (per-request lifecycle
// events, per-stage latency histograms, epoch time-series). Disabled by
// default; when disabled the simulator pays only a nil-pointer check.
type Trace struct {
	// Enabled turns the recorder on.
	Enabled bool
	// Epoch is the time-series sampling interval; 0 means the recorder
	// default (1 µs of simulated time).
	Epoch clock.Time
	// MaxEvents bounds the number of retained per-request events (the
	// Chrome trace size); 0 means the recorder default (65536). Events
	// beyond the bound are dropped from the trace but still counted in
	// the histograms and epochs.
	MaxEvents int
}

// Fault configures the deterministic fault injector (internal/fault).
// Disabled by default; when disabled the pipeline pays only a nil-pointer
// check per injection point. Link-error and AMB-soft-error classes apply to
// FB-DIMM systems only (DDR2 has no CRC/replay protocol); the dead-bank
// remap applies to both interconnects.
type Fault struct {
	// Enabled turns the injector on.
	Enabled bool
	// Seed drives every stochastic fault decision; the same seed, rates
	// and configuration reproduce the exact same faults and results.
	Seed int64

	// SouthErrorRate / NorthErrorRate are per-transfer CRC frame-error
	// probabilities on the southbound and northbound links, in [0, 1].
	SouthErrorRate float64
	NorthErrorRate float64
	// AMBSoftErrorRate is the probability that a demand access to a
	// resident AMB-cache line finds it poisoned (scrub + demand miss).
	AMBSoftErrorRate float64

	// RetryDelay is the CRC-detect + replay turnaround before a corrupted
	// transfer re-arbitrates for a link slot; 0 means the default (60 ns,
	// roughly the round trip the FB-DIMM retry protocol pays).
	RetryDelay clock.Time
	// MaxRetries bounds consecutive replays of one transfer; 0 means the
	// default (8).
	MaxRetries int

	// DegradedChannel / DegradedDIMM select one DIMM running in degraded
	// mode. DegradedDIMM < 0 (the Default) means no DIMM is degraded.
	DegradedChannel int
	DegradedDIMM    int
	// DegradedBusFactor divides the degraded DIMM's DDR2 bus rate: each
	// burst occupies factor× the nominal bus time. 0 means the default (2).
	DegradedBusFactor int
	// DeadBank maps out one bank of the degraded DIMM: the address map
	// respreads its accesses onto a neighbouring bank. -1 (the Default)
	// means no bank is dead. Requires DegradedDIMM >= 0.
	DeadBank int
}

// RetrySettings returns the effective retry delay and cap, applying the
// defaults (60 ns, 8) for unset values.
func (f *Fault) RetrySettings() (delay clock.Time, retries int) {
	delay, retries = f.RetryDelay, f.MaxRetries
	if delay == 0 {
		delay = 60 * clock.Nanosecond
	}
	if retries == 0 {
		retries = 8
	}
	return delay, retries
}

// EffectiveBusFactor returns the degraded-bus slowdown, applying the
// default (2) when unset.
func (f *Fault) EffectiveBusFactor() int {
	if f.DegradedBusFactor == 0 {
		return 2
	}
	return f.DegradedBusFactor
}

func (f *Fault) validate(m *Mem) error {
	if !f.Enabled {
		return nil
	}
	for _, r := range []float64{f.SouthErrorRate, f.NorthErrorRate, f.AMBSoftErrorRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("config: fault rate %v outside [0, 1]", r)
		}
	}
	if f.RetryDelay < 0 {
		return errors.New("config: fault retry delay must be non-negative")
	}
	if f.MaxRetries < 0 {
		return errors.New("config: fault max retries must be non-negative")
	}
	if f.DegradedBusFactor < 0 {
		return errors.New("config: degraded bus factor must be non-negative")
	}
	if f.DegradedDIMM >= 0 {
		if f.DegradedChannel < 0 || f.DegradedChannel >= m.LogicalChannels {
			return fmt.Errorf("config: degraded channel %d outside [0, %d)",
				f.DegradedChannel, m.LogicalChannels)
		}
		if f.DegradedDIMM >= m.DIMMsPerChannel {
			return fmt.Errorf("config: degraded DIMM %d outside [0, %d)",
				f.DegradedDIMM, m.DIMMsPerChannel)
		}
	}
	if f.DeadBank >= 0 {
		if f.DegradedDIMM < 0 {
			return errors.New("config: dead bank requires a degraded DIMM")
		}
		if f.DeadBank >= m.BanksPerDIMM {
			return fmt.Errorf("config: dead bank %d outside [0, %d)", f.DeadBank, m.BanksPerDIMM)
		}
		if m.BanksPerDIMM < 2 {
			return errors.New("config: mapping out a bank requires at least two banks per DIMM")
		}
	}
	return nil
}

// Config is the complete simulated-system configuration.
type Config struct {
	CPU CPU
	Mem Mem

	// Trace configures the optional memtrace recorder.
	Trace Trace

	// Fault configures the optional deterministic fault injector.
	Fault Fault

	// MaxInsts is the per-core commit budget; the simulation stops when
	// any core commits this many instructions past warmup (the paper
	// stops at one simulation point of 100M; we default far lower for
	// tractability).
	MaxInsts int64
	// WarmupInsts is the per-core instruction count committed before
	// measurement begins (caches and queues reach steady state).
	WarmupInsts int64
	// Seed drives every stochastic choice in trace generation.
	Seed int64
}

// Default returns the paper's default setting: FB-DIMM, 667 MT/s, two
// logical channels of two ganged physical channels, four DIMMs per channel,
// four banks per DIMM, close-page cacheline interleaving, software
// prefetching on, AMB prefetching off.
func Default() Config {
	return Config{
		CPU: CPU{
			Cores:            1,
			IssueWidth:       8,
			ROBEntries:       196,
			LQEntries:        32,
			SQEntries:        32,
			PipelineDepth:    21,
			L1DataKB:         64,
			L1Assoc:          2,
			L1HitCycles:      3,
			L2KB:             4096,
			L2Assoc:          4,
			L2HitCycles:      15,
			LineBytes:        64,
			L1MSHRs:          32,
			L2MSHRs:          64,
			SoftwarePrefetch: true,
		},
		Mem: Mem{
			Kind:                FBDIMM,
			DataRate:            clock.DDR2_667,
			LogicalChannels:     2,
			GangWidth:           2,
			DIMMsPerChannel:     4,
			BanksPerDIMM:        4,
			RowBytes:            8192,
			LineBytes:           64,
			Interleave:          CachelineInterleave,
			RegionLines:         4,
			PageMode:            ClosePage,
			QueueEntries:        64,
			CtrlOverhead:        12 * clock.Nanosecond,
			WriteDrainThreshold: 16,
			Timing:              Table2(),
			AMBHopDelay:         3 * clock.Nanosecond,
			VRL:                 false,
			AMBPrefetch:         false,
			AMBCacheLines:       64,
			AMBCacheAssoc:       FullAssoc,
			AMBReplacement:      FIFO,
		},
		// -1 sentinels: 0 would mean "DIMM 0 / bank 0", not "none".
		Fault:       Fault{DegradedDIMM: -1, DeadBank: -1},
		MaxInsts:    1_000_000,
		WarmupInsts: 100_000,
		Seed:        1,
	}
}

// DDR2Baseline returns the conventional DDR2 comparison system with the
// same bandwidth organization as Default.
func DDR2Baseline() Config {
	c := Default()
	c.Mem.Kind = DDR2
	return c
}

// FBDIMMBaseline returns the FB-DIMM system without AMB prefetching (FBD).
func FBDIMMBaseline() Config { return Default() }

// WithAMBPrefetch returns c with AMB prefetching enabled using the paper's
// default prefetcher: four-cacheline interleaving, a 64-entry fully
// associative AMB cache with FIFO replacement (FBD-AP).
func WithAMBPrefetch(c Config) Config {
	c.Mem.AMBPrefetch = true
	c.Mem.Interleave = MultiCachelineInterleave
	c.Mem.RegionLines = 4
	c.Mem.PageMode = ClosePage
	return c
}

// WithDDR3 upgrades c to DDR3-1333 DIMMs behind the FB-DIMM channel — the
// future configuration of the paper's footnote 1. Everything else
// (channels, AMB, prefetcher) is unchanged.
func WithDDR3(c Config) Config {
	c.Mem.DataRate = clock.DDR3_1333
	c.Mem.Timing = Table2DDR3()
	return c
}

// WithFullLatencyHits returns c configured as FBD-APFL (Figure 9): AMB
// prefetching on, but hits pay full idle latency.
func WithFullLatencyHits(c Config) Config {
	c = WithAMBPrefetch(c)
	c.Mem.FullLatencyHits = true
	return c
}

// Validate reports the first configuration error found, or nil.
func (c *Config) Validate() error {
	switch {
	case c.CPU.Cores < 1:
		return errors.New("config: need at least one core")
	case c.CPU.IssueWidth < 1:
		return errors.New("config: issue width must be positive")
	case c.CPU.ROBEntries < 1:
		return errors.New("config: ROB must be positive")
	case c.CPU.LineBytes != c.Mem.LineBytes:
		return fmt.Errorf("config: cacheline size mismatch CPU %dB vs Mem %dB",
			c.CPU.LineBytes, c.Mem.LineBytes)
	case c.MaxInsts < 1:
		return errors.New("config: MaxInsts must be positive")
	case c.WarmupInsts < 0:
		return errors.New("config: WarmupInsts must be non-negative")
	}
	if !powerOfTwo(c.CPU.LineBytes) {
		return fmt.Errorf("config: line size %d not a power of two", c.CPU.LineBytes)
	}
	if c.Trace.Epoch < 0 {
		return errors.New("config: trace epoch must be non-negative")
	}
	if c.Trace.MaxEvents < 0 {
		return errors.New("config: trace MaxEvents must be non-negative")
	}
	if err := c.Fault.validate(&c.Mem); err != nil {
		return err
	}
	return c.Mem.validate()
}

func (m *Mem) validate() error {
	if !m.DataRate.Valid() {
		return fmt.Errorf("config: unsupported data rate %d MT/s", int(m.DataRate))
	}
	switch {
	case m.LogicalChannels < 1:
		return errors.New("config: need at least one logical channel")
	case m.GangWidth < 1:
		return errors.New("config: gang width must be positive")
	case m.DIMMsPerChannel < 1:
		return errors.New("config: need at least one DIMM per channel")
	case m.BanksPerDIMM < 1:
		return errors.New("config: need at least one bank per DIMM")
	case m.QueueEntries < 1:
		return errors.New("config: controller queue must be positive")
	}
	for _, v := range []int{m.LogicalChannels, m.DIMMsPerChannel, m.BanksPerDIMM, m.RowBytes, m.LineBytes} {
		if !powerOfTwo(v) {
			return fmt.Errorf("config: memory geometry value %d not a power of two", v)
		}
	}
	if m.RowBytes < m.LineBytes {
		return fmt.Errorf("config: row size %dB smaller than line size %dB", m.RowBytes, m.LineBytes)
	}
	if m.Interleave == MultiCachelineInterleave {
		if m.RegionLines < 2 || !powerOfTwo(m.RegionLines) {
			return fmt.Errorf("config: region size K=%d must be a power of two >= 2", m.RegionLines)
		}
		if m.RegionLines*m.LineBytes > m.RowBytes {
			return fmt.Errorf("config: region (%d lines) exceeds a DRAM row", m.RegionLines)
		}
	}
	if m.AMBPrefetch {
		if m.Kind != FBDIMM {
			return errors.New("config: AMB prefetching requires FB-DIMM")
		}
		if m.Interleave == CachelineInterleave {
			return errors.New("config: AMB prefetching requires multi-cacheline or page interleaving")
		}
		if m.AMBCacheLines < 1 {
			return errors.New("config: AMB cache must hold at least one line")
		}
		if m.AMBCacheAssoc < 0 || (m.AMBCacheAssoc != FullAssoc && !powerOfTwo(m.AMBCacheAssoc)) {
			return fmt.Errorf("config: AMB cache associativity %d invalid", m.AMBCacheAssoc)
		}
		if m.AMBCacheAssoc != FullAssoc && m.AMBCacheLines%m.AMBCacheAssoc != 0 {
			return fmt.Errorf("config: AMB cache lines %d not divisible by associativity %d",
				m.AMBCacheLines, m.AMBCacheAssoc)
		}
	}
	if m.PageMode == OpenPage && m.Interleave == CachelineInterleave {
		return errors.New("config: open-page mode requires page or multi-cacheline interleaving")
	}
	if m.RefreshEnabled {
		if m.TREFI < 0 || m.TRFC < 0 {
			return errors.New("config: refresh timings must be non-negative")
		}
		trefi, trfc := m.RefreshTimings()
		if trefi <= trfc {
			return fmt.Errorf("config: tREFI %v must exceed tRFC %v", trefi, trfc)
		}
	}
	return nil
}

// RefreshTimings returns the effective tREFI and tRFC, applying the DDR2
// defaults (7.8 µs, 127.5 ns) for unset values.
func (m *Mem) RefreshTimings() (trefi, trfc clock.Time) {
	trefi, trfc = m.TREFI, m.TRFC
	if trefi == 0 {
		trefi = 7800 * clock.Nanosecond
	}
	if trfc == 0 {
		trfc = 127500 * clock.Picosecond
	}
	return trefi, trfc
}

// TotalBanks returns the number of logical DRAM banks in the system.
func (m *Mem) TotalBanks() int {
	return m.LogicalChannels * m.DIMMsPerChannel * m.BanksPerDIMM
}

// PeakChannelBandwidth returns the aggregate peak read bandwidth of all
// logical channels in bytes per second.
func (m *Mem) PeakChannelBandwidth() float64 {
	per := m.DataRate.BytesPerSecond() * float64(m.GangWidth)
	return per * float64(m.LogicalChannels)
}

func powerOfTwo(v int) bool { return v > 0 && v&(v-1) == 0 }
