package config

import (
	"strings"
	"testing"

	"fbdsim/internal/clock"
)

// TestTable1Defaults pins the processor and memory parameters of Table 1.
func TestTable1Defaults(t *testing.T) {
	c := Default()
	cpu := c.CPU
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"issue width", cpu.IssueWidth, 8},
		{"pipeline depth", cpu.PipelineDepth, 21},
		{"ROB entries", cpu.ROBEntries, 196},
		{"LQ entries", cpu.LQEntries, 32},
		{"SQ entries", cpu.SQEntries, 32},
		{"L1D size KB", cpu.L1DataKB, 64},
		{"L1 assoc", cpu.L1Assoc, 2},
		{"L1 hit cycles", cpu.L1HitCycles, 3},
		{"L2 size KB", cpu.L2KB, 4096},
		{"L2 assoc", cpu.L2Assoc, 4},
		{"L2 hit cycles", cpu.L2HitCycles, 15},
		{"line bytes", cpu.LineBytes, 64},
		{"L1 data MSHRs", cpu.L1MSHRs, 32},
		{"L2 MSHRs", cpu.L2MSHRs, 64},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	m := c.Mem
	if m.Kind != FBDIMM {
		t.Errorf("default kind = %v, want FB-DIMM", m.Kind)
	}
	if m.DataRate != clock.DDR2_667 {
		t.Errorf("data rate = %d, want 667", int(m.DataRate))
	}
	if m.LogicalChannels != 2 || m.GangWidth != 2 {
		t.Errorf("channels = %d x %d gang, want 2 x 2 (four physical channels)",
			m.LogicalChannels, m.GangWidth)
	}
	if m.DIMMsPerChannel != 4 || m.BanksPerDIMM != 4 {
		t.Errorf("DIMMs/banks = %d/%d, want 4/4", m.DIMMsPerChannel, m.BanksPerDIMM)
	}
	if m.QueueEntries != 64 {
		t.Errorf("memory buffer = %d entries, want 64", m.QueueEntries)
	}
	if m.CtrlOverhead != 12*clock.Nanosecond {
		t.Errorf("controller overhead = %v, want 12ns", m.CtrlOverhead)
	}
	if m.AMBHopDelay != 3*clock.Nanosecond {
		t.Errorf("AMB hop = %v, want 3ns", m.AMBHopDelay)
	}
	if m.AMBPrefetch {
		t.Error("AMB prefetching must default off")
	}
	if !c.CPU.SoftwarePrefetch {
		t.Error("software prefetching must default on (Section 5 default)")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestTable2Timings pins the DRAM parameters of Table 2.
func TestTable2Timings(t *testing.T) {
	ns := clock.Nanosecond
	tm := Table2()
	cases := []struct {
		name string
		got  clock.Time
		want clock.Time
	}{
		{"tRP", tm.TRP, 15 * ns},
		{"tRCD", tm.TRCD, 15 * ns},
		{"tCL", tm.TCL, 15 * ns},
		{"tRC", tm.TRC, 54 * ns},
		{"tRRD", tm.TRRD, 9 * ns},
		{"tRPD", tm.TRPD, 9 * ns},
		{"tWTR", tm.TWTR, 9 * ns},
		{"tRAS", tm.TRAS, 39 * ns},
		{"tWL", tm.TWL, 12 * ns},
		{"tWPD", tm.TWPD, 36 * ns},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestPresets(t *testing.T) {
	ddr := DDR2Baseline()
	if ddr.Mem.Kind != DDR2 {
		t.Error("DDR2Baseline kind")
	}
	if err := ddr.Validate(); err != nil {
		t.Errorf("DDR2Baseline invalid: %v", err)
	}

	ap := WithAMBPrefetch(Default())
	if !ap.Mem.AMBPrefetch || ap.Mem.Interleave != MultiCachelineInterleave || ap.Mem.RegionLines != 4 {
		t.Errorf("WithAMBPrefetch wrong: %+v", ap.Mem)
	}
	if err := ap.Validate(); err != nil {
		t.Errorf("AP preset invalid: %v", err)
	}

	fl := WithFullLatencyHits(Default())
	if !fl.Mem.FullLatencyHits || !fl.Mem.AMBPrefetch {
		t.Error("WithFullLatencyHits must enable AP with full-latency hits")
	}
	if err := fl.Validate(); err != nil {
		t.Errorf("APFL preset invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Config)
		want string
	}{
		{"no cores", func(c *Config) { c.CPU.Cores = 0 }, "core"},
		{"zero issue", func(c *Config) { c.CPU.IssueWidth = 0 }, "issue"},
		{"zero rob", func(c *Config) { c.CPU.ROBEntries = 0 }, "ROB"},
		{"line mismatch", func(c *Config) { c.CPU.LineBytes = 32 }, "mismatch"},
		{"zero insts", func(c *Config) { c.MaxInsts = 0 }, "MaxInsts"},
		{"negative warmup", func(c *Config) { c.WarmupInsts = -1 }, "Warmup"},
		{"bad rate", func(c *Config) { c.Mem.DataRate = 123 }, "data rate"},
		{"no channels", func(c *Config) { c.Mem.LogicalChannels = 0 }, "channel"},
		{"no gang", func(c *Config) { c.Mem.GangWidth = 0 }, "gang"},
		{"no dimms", func(c *Config) { c.Mem.DIMMsPerChannel = 0 }, "DIMM"},
		{"no banks", func(c *Config) { c.Mem.BanksPerDIMM = 0 }, "bank"},
		{"no queue", func(c *Config) { c.Mem.QueueEntries = 0 }, "queue"},
		{"npot dimms", func(c *Config) { c.Mem.DIMMsPerChannel = 3 }, "power of two"},
		{"row < line", func(c *Config) { c.Mem.RowBytes = 32; c.Mem.LineBytes = 64; c.CPU.LineBytes = 64 }, "row size"},
		{"region not pot", func(c *Config) {
			c.Mem.Interleave = MultiCachelineInterleave
			c.Mem.RegionLines = 3
		}, "K=3"},
		{"region too big", func(c *Config) {
			c.Mem.Interleave = MultiCachelineInterleave
			c.Mem.RegionLines = 256 // 256 * 64B > 8KB row
		}, "exceeds"},
		{"AP on DDR2", func(c *Config) {
			c.Mem.Kind = DDR2
			c.Mem.AMBPrefetch = true
			c.Mem.Interleave = MultiCachelineInterleave
		}, "FB-DIMM"},
		{"AP cacheline interleave", func(c *Config) {
			c.Mem.AMBPrefetch = true
			c.Mem.Interleave = CachelineInterleave
		}, "interleaving"},
		{"AP empty cache", func(c *Config) {
			c.Mem.AMBPrefetch = true
			c.Mem.Interleave = MultiCachelineInterleave
			c.Mem.AMBCacheLines = 0
		}, "at least one line"},
		{"AP bad assoc", func(c *Config) {
			c.Mem.AMBPrefetch = true
			c.Mem.Interleave = MultiCachelineInterleave
			c.Mem.AMBCacheAssoc = 3
		}, "associativity"},
		{"AP assoc indivisible", func(c *Config) {
			c.Mem.AMBPrefetch = true
			c.Mem.Interleave = MultiCachelineInterleave
			c.Mem.AMBCacheLines = 48
			c.Mem.AMBCacheAssoc = 32
		}, "divisible"},
		{"open page cacheline", func(c *Config) { c.Mem.PageMode = OpenPage }, "open-page"},
	}
	for _, m := range mutate {
		c := Default()
		m.f(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestFaultDefaults(t *testing.T) {
	f := Default().Fault
	if f.Enabled {
		t.Error("fault injection must default off")
	}
	if f.DegradedDIMM != -1 || f.DeadBank != -1 {
		t.Errorf("degraded sentinels = %d/%d, want -1/-1 (0 is a valid index)",
			f.DegradedDIMM, f.DeadBank)
	}
	delay, max := f.RetrySettings()
	if delay != 60*clock.Nanosecond || max != 8 {
		t.Errorf("RetrySettings = %v/%d, want 60ns/8", delay, max)
	}
	if f.EffectiveBusFactor() != 2 {
		t.Errorf("EffectiveBusFactor = %d, want 2", f.EffectiveBusFactor())
	}
}

func TestFaultValidateRejects(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Config)
		want string
	}{
		{"south rate high", func(c *Config) { c.Fault.SouthErrorRate = 1.5 }, "rate"},
		{"north rate negative", func(c *Config) { c.Fault.NorthErrorRate = -0.1 }, "rate"},
		{"amb rate high", func(c *Config) { c.Fault.AMBSoftErrorRate = 2 }, "rate"},
		{"negative retries", func(c *Config) { c.Fault.MaxRetries = -1 }, "retries"},
		{"negative retry delay", func(c *Config) { c.Fault.RetryDelay = -1 }, "delay"},
		{"degraded dimm range", func(c *Config) { c.Fault.DegradedDIMM = 4 }, "DIMM"},
		{"degraded channel range", func(c *Config) { c.Fault.DegradedChannel = 2; c.Fault.DegradedDIMM = 0 }, "channel"},
		{"bus factor", func(c *Config) { c.Fault.DegradedDIMM = 0; c.Fault.DegradedBusFactor = -2 }, "factor"},
		{"dead bank needs dimm", func(c *Config) { c.Fault.DeadBank = 1 }, "degraded DIMM"},
		{"dead bank range", func(c *Config) { c.Fault.DegradedDIMM = 0; c.Fault.DeadBank = 4 }, "bank"},
		{"dead bank single bank", func(c *Config) {
			c.Mem.BanksPerDIMM = 1
			c.Fault.DegradedDIMM = 0
			c.Fault.DeadBank = 0
		}, "two banks"},
	}
	for _, m := range mutate {
		c := Default()
		c.Fault.Enabled = true
		m.f(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: expected error", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}

	// A disabled block is not validated: garbage rates are tolerated so
	// half-edited config files still load with fault injection off.
	c := Default()
	c.Fault.SouthErrorRate = 99
	if err := c.Validate(); err != nil {
		t.Errorf("disabled fault block must not be validated: %v", err)
	}

	// And a fully-specified valid block passes.
	c = Default()
	c.Fault = Fault{
		Enabled: true, Seed: 1, SouthErrorRate: 0.01, NorthErrorRate: 0.01,
		AMBSoftErrorRate: 0.001, DegradedChannel: 1, DegradedDIMM: 2,
		DegradedBusFactor: 4, DeadBank: 3,
	}
	if err := c.Validate(); err != nil {
		t.Errorf("valid fault block rejected: %v", err)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	orig := Default()
	orig.Fault = Fault{
		Enabled: true, Seed: 9, SouthErrorRate: 0.05, NorthErrorRate: 0.02,
		AMBSoftErrorRate: 0.001, RetryDelay: 90 * clock.Nanosecond, MaxRetries: 4,
		DegradedChannel: 0, DegradedDIMM: 1, DegradedBusFactor: 2, DeadBank: -1,
	}
	var buf strings.Builder
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault != orig.Fault {
		t.Errorf("fault block changed in round trip:\n%+v\nvs\n%+v", got.Fault, orig.Fault)
	}
}

func TestTotalBanks(t *testing.T) {
	c := Default()
	if got := c.Mem.TotalBanks(); got != 2*4*4 {
		t.Errorf("TotalBanks = %d, want 32", got)
	}
}

func TestPeakChannelBandwidth(t *testing.T) {
	c := Default()
	// 2 logical channels x 2-gang x 667 MT/s x 8 B.
	want := 2.0 * 2 * 667e6 * 8
	if got := c.Mem.PeakChannelBandwidth(); got != want {
		t.Errorf("peak = %g, want %g", got, want)
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{DDR2.String(), "DDR2"},
		{FBDIMM.String(), "FB-DIMM"},
		{CachelineInterleave.String(), "cacheline"},
		{PageInterleave.String(), "page"},
		{MultiCachelineInterleave.String(), "multi-cacheline"},
		{ClosePage.String(), "close-page"},
		{OpenPage.String(), "open-page"},
		{FIFO.String(), "FIFO"},
		{LRU.String(), "LRU"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
	if MemKind(99).String() == "" || Interleave(99).String() == "" {
		t.Error("unknown enum values must still print")
	}
}

func TestRefreshTimings(t *testing.T) {
	m := Default().Mem
	trefi, trfc := m.RefreshTimings()
	if trefi != 7800*clock.Nanosecond {
		t.Errorf("default tREFI = %v", trefi)
	}
	if trfc != 127500*clock.Picosecond {
		t.Errorf("default tRFC = %v", trfc)
	}
	m.TREFI = 1000 * clock.Nanosecond
	m.TRFC = 100 * clock.Nanosecond
	trefi, trfc = m.RefreshTimings()
	if trefi != 1000*clock.Nanosecond || trfc != 100*clock.Nanosecond {
		t.Error("explicit refresh timings not honored")
	}
}

func TestRefreshValidation(t *testing.T) {
	c := Default()
	c.Mem.RefreshEnabled = true
	if err := c.Validate(); err != nil {
		t.Errorf("default refresh config invalid: %v", err)
	}
	c.Mem.TREFI = 50 * clock.Nanosecond
	c.Mem.TRFC = 100 * clock.Nanosecond
	if err := c.Validate(); err == nil {
		t.Error("tREFI < tRFC must be rejected")
	}
}

func TestHWPrefetchAndPermutationValidate(t *testing.T) {
	c := Default()
	c.CPU.HardwarePrefetch = true
	c.CPU.HWPrefetchStreams = 8
	c.CPU.HWPrefetchDegree = 2
	c.Mem.PermuteBanks = true
	if err := c.Validate(); err != nil {
		t.Errorf("extension knobs should validate: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := WithAMBPrefetch(Default())
	orig.Mem.VRL = true
	orig.CPU.HardwarePrefetch = true
	orig.Seed = 42

	var buf strings.Builder
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip changed config:\n%+v\nvs\n%+v", got, orig)
	}
}

func TestLoadPartialOverridesDefaults(t *testing.T) {
	got, err := Load(strings.NewReader(`{"Seed": 7, "Mem": {"LogicalChannels": 4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.Mem.LogicalChannels != 4 {
		t.Errorf("overrides not applied: %+v", got)
	}
	if got.CPU.ROBEntries != 196 {
		t.Error("unmentioned fields must keep defaults")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"Typo": 1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
	if _, err := Load(strings.NewReader(`{"Mem": {"LogicalChannels": 3}}`)); err == nil {
		t.Error("invalid configurations must be rejected")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON must be rejected")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/config.json"); err == nil {
		t.Error("missing file must error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/cfg.json"
	orig := DDR2Baseline()
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem.Kind != DDR2 {
		t.Errorf("loaded kind = %v", got.Mem.Kind)
	}
}

func TestWithDDR3(t *testing.T) {
	c := WithDDR3(WithAMBPrefetch(Default()))
	if c.Mem.DataRate != clock.DDR3_1333 {
		t.Errorf("data rate = %d", int(c.Mem.DataRate))
	}
	if c.Mem.Timing.TRCD != 13500*clock.Picosecond {
		t.Errorf("DDR3 tRCD = %v", c.Mem.Timing.TRCD)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("DDR3 config invalid: %v", err)
	}
	if !c.Mem.AMBPrefetch {
		t.Error("WithDDR3 must preserve the prefetcher")
	}
}
