// Package memctrl implements the memory controller of Section 4.1: a
// transaction buffer per logical channel, hit-first scheduling (requests
// that will be served fast — AMB-cache hits or open-row hits — go before
// full DRAM accesses), and read priority over writes until the write queue
// exceeds a drain threshold. The controller adds a fixed 12 ns pipeline
// overhead to every transaction and drives either the FB-DIMM or the DDR2
// channel model.
package memctrl

import (
	"fbdsim/internal/addrmap"
	"fbdsim/internal/ambcache"
	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/ddrbus"
	"fbdsim/internal/dram"
	"fbdsim/internal/fault"
	"fbdsim/internal/fbdchan"
	"fbdsim/internal/memreq"
	"fbdsim/internal/memtrace"
	"fbdsim/internal/stats"
)

// channelModel is the contract both interconnect models satisfy.
type channelModel interface {
	IsFastRead(addr int64) bool
	ScheduleRead(addr int64, ready clock.Time) (dataAt clock.Time, ambHit bool)
	// ScheduleWrite handles a batch of writebacks that share one DRAM row.
	ScheduleWrite(addrs []int64, ready clock.Time) clock.Time
	Housekeep(horizon clock.Time)
	// LastTiming reports the command-arrival and service-start instants of
	// the most recent Schedule* call; the controller copies them into the
	// request when the memtrace recorder is enabled.
	LastTiming() (cmdAt, serviceAt clock.Time)
	// DIMMBusBusy reports cumulative DIMM-side data-bus occupancy.
	DIMMBusBusy() clock.Time
}

var (
	_ channelModel = (*fbdchan.Channel)(nil)
	_ channelModel = (*ddrbus.Channel)(nil)
)

// Stats aggregates the controller-level measurements the experiments use.
type Stats struct {
	Reads        int64
	Writes       int64
	AMBHits      int64
	ReadLatency  clock.Time // sum over completed reads, arrival → data
	ReadsDone    int64
	QueueRejects int64 // enqueue attempts refused because the buffer was full
}

// AvgReadLatency returns the mean read latency in nanoseconds.
func (s Stats) AvgReadLatency() float64 {
	if s.ReadsDone == 0 {
		return 0
	}
	return s.ReadLatency.Nanoseconds() / float64(s.ReadsDone)
}

// Controller is the memory controller plus its attached channels. It is the
// complete memory system seen by the cache hierarchy.
type Controller struct {
	cfg    config.Mem
	mapper *addrmap.Mapper

	chans []channelModel
	fbd   []*fbdchan.Channel // non-nil entries when Kind == FBDIMM
	ddr   []*ddrbus.Channel  // non-nil entries when Kind == DDR2

	readQ  [][]*memreq.Request
	writeQ [][]*memreq.Request
	// draining marks channels in write-drain mode: entered when the write
	// queue tops WriteDrainThreshold, left when nearly empty. Hysteresis
	// lets sequential writebacks accumulate so same-row batches form.
	draining []bool

	completions completionHeap
	// scratchBatch and scratchAddrs are reused across pickWriteBatch /
	// startWrites calls so the write path allocates nothing in steady
	// state. Both are dead between issue() calls.
	scratchBatch []*memreq.Request
	scratchAddrs []int64
	// inflight counts issued-but-uncompleted transactions per channel;
	// leftover writes below the drain threshold flush only when their
	// channel is fully quiescent, so batching opportunities survive
	// active phases.
	inflight []int
	// housekept is the highest time-derived tick index whose housekeeping
	// pass has run (see Tick); tck caches the memory clock period.
	housekept int64
	tck       clock.Time

	// Stats accumulates controller-level counters.
	Stats Stats
	// LatHist records the distribution of completed read latencies
	// (arrival to data return); the tail of this distribution is what
	// stalls ROB heads.
	LatHist *stats.Histogram

	// rec is the optional memtrace recorder. When nil (the default)
	// tracing costs a single pointer comparison per completion; every
	// recorder method is additionally nil-safe.
	rec *memtrace.Recorder

	// inj is the optional fault injector, shared with the channel models.
	// When nil (the default) fault injection costs one pointer comparison
	// per issued transaction.
	inj *fault.Injector
}

// New builds the controller for a validated memory configuration.
func New(cfg *config.Mem) *Controller {
	m := addrmap.New(cfg)
	c := &Controller{
		cfg:       *cfg,
		mapper:    m,
		chans:     make([]channelModel, cfg.LogicalChannels),
		readQ:     make([][]*memreq.Request, cfg.LogicalChannels),
		writeQ:    make([][]*memreq.Request, cfg.LogicalChannels),
		draining:  make([]bool, cfg.LogicalChannels),
		inflight:  make([]int, cfg.LogicalChannels),
		housekept: -1,
		tck:       cfg.DataRate.TCK(),
		LatHist:   &stats.Histogram{},
	}
	switch cfg.Kind {
	case config.FBDIMM:
		c.fbd = make([]*fbdchan.Channel, cfg.LogicalChannels)
		for i := range c.chans {
			c.fbd[i] = fbdchan.New(&c.cfg, m)
			c.chans[i] = c.fbd[i]
		}
	case config.DDR2:
		c.ddr = make([]*ddrbus.Channel, cfg.LogicalChannels)
		for i := range c.chans {
			c.ddr[i] = ddrbus.New(&c.cfg, m)
			c.chans[i] = c.ddr[i]
		}
	default:
		panic("memctrl: unknown memory kind")
	}
	return c
}

// Mapper exposes the address mapper (the cache hierarchy aligns addresses
// with it).
func (c *Controller) Mapper() *addrmap.Mapper { return c.mapper }

// SetRecorder attaches (or, with nil, detaches) a memtrace recorder. Call
// before simulation starts; the recorder is not safe for concurrent use.
func (c *Controller) SetRecorder(r *memtrace.Recorder) { c.rec = r }

// Recorder returns the attached memtrace recorder, if any.
func (c *Controller) Recorder() *memtrace.Recorder { return c.rec }

// SetInjector attaches (or, with nil, detaches) a fault injector and
// applies its static degraded-DIMM configuration: the degraded DIMM's bus
// is slowed and, when a bank is mapped out, the address map's bank spare is
// armed. Link and AMB fault classes reach only the FB-DIMM channels (DDR2
// has no CRC/replay protocol); the bank spare applies to both interconnects
// because it lives in the controller's mapper. Call before simulation
// starts.
func (c *Controller) SetInjector(inj *fault.Injector) {
	c.inj = inj
	if inj == nil {
		return
	}
	for _, f := range c.fbd {
		f.SetInjector(inj)
	}
	ch, dimm, factor, dead := inj.Degraded()
	if dimm < 0 {
		return
	}
	if ch < len(c.fbd) {
		c.fbd[ch].DegradeDIMMBus(dimm, factor)
	}
	if dead >= 0 {
		c.mapper.SetBankSpare(ch, dimm, dead)
	}
}

// FaultCounters returns the injector's cumulative counters (zero without
// an injector).
func (c *Controller) FaultCounters() fault.Counters {
	if c.inj == nil {
		return fault.Counters{}
	}
	return c.inj.Counters
}

// TCK returns the memory clock period driving Tick.
func (c *Controller) TCK() clock.Time { return c.tck }

// CanAccept reports whether the channel serving addr has buffer space for
// another transaction of the given kind.
func (c *Controller) CanAccept(addr int64, kind memreq.Kind) bool {
	ch := c.mapper.Map(addr).Channel
	if kind == memreq.Read {
		return len(c.readQ[ch]) < c.cfg.QueueEntries
	}
	return len(c.writeQ[ch]) < c.cfg.QueueEntries
}

// Enqueue presents a transaction to the controller at time now. It returns
// false (and counts a reject) when the transaction buffer is full; the
// caller retries later, modelling MSHR-held requests.
func (c *Controller) Enqueue(req *memreq.Request, now clock.Time) bool {
	if !c.CanAccept(req.Addr, req.Kind) {
		c.Stats.QueueRejects++
		return false
	}
	req.Arrived = now
	ch := c.mapper.Map(req.Addr).Channel
	if req.Kind == memreq.Read {
		c.readQ[ch] = append(c.readQ[ch], req)
	} else {
		c.writeQ[ch] = append(c.writeQ[ch], req)
	}
	return true
}

// QueuedReads returns the number of reads buffered across all channels
// (used by tests and backpressure diagnostics).
func (c *Controller) QueuedReads() int {
	n := 0
	for _, q := range c.readQ {
		n += len(q)
	}
	return n
}

// QueuedWrites returns the number of buffered writes across all channels.
func (c *Controller) QueuedWrites() int {
	n := 0
	for _, q := range c.writeQ {
		n += len(q)
	}
	return n
}

// Pending returns the number of issued-but-uncompleted transactions.
func (c *Controller) Pending() int { return len(c.completions) }

// Tick advances the controller one memory clock: it issues at most one new
// transaction per channel and fires completion callbacks whose time has
// come. Callers invoke it once per tCK with a monotonically increasing now.
func (c *Controller) Tick(now clock.Time) {
	// Housekeeping runs after every 4096th memory tick, with the tick
	// index derived from time rather than from a count of executed Tick
	// calls: the event-driven loop executes only interesting ticks, and a
	// pruned timeline is observable to later reservations whose ready
	// time precedes the prune horizon, so both loops must prune at the
	// same simulated instants. Boundaries inside a skipped stretch are
	// caught up here, before this tick issues anything — exactly the
	// state the reference loop would present, since no reservation can
	// occur between an end-of-tick housekeep and the next tick.
	const housekeepTicks = 4096
	if jm := (int64(now/c.tck)/housekeepTicks)*housekeepTicks - 1; jm > c.housekept {
		horizon := clock.Time(jm) * c.tck
		for _, ch := range c.chans {
			ch.Housekeep(horizon)
		}
		c.housekept = jm
	}
	for ch := range c.chans {
		c.issue(ch, now)
	}
	for len(c.completions) > 0 && c.completions[0].at <= now {
		done := c.popCompletion()
		c.inflight[done.ch]--
		req := done.req
		req.Done = done.at
		if req.Kind == memreq.Read {
			c.Stats.ReadLatency += done.at - req.Arrived
			c.Stats.ReadsDone++
			c.LatHist.Observe(done.at - req.Arrived)
		}
		if c.rec != nil {
			c.recordEvent(req, done.ch)
		}
		if req.OnDone != nil {
			req.OnDone(req)
		}
	}
	if c.rec != nil && c.rec.NeedSample(now) {
		c.rec.Sample(now, c.traceGauges())
	}
}

// recordEvent converts a completed request into a memtrace event. Only
// called while tracing is enabled.
func (c *Controller) recordEvent(req *memreq.Request, ch int) {
	loc := c.mapper.Map(req.Addr)
	created := req.Created
	if created == 0 || created > req.Arrived {
		created = req.Arrived
	}
	c.rec.Complete(memtrace.Event{
		ID:         req.ID,
		Addr:       req.Addr,
		Core:       req.Core,
		Write:      req.Kind == memreq.Write,
		SWPrefetch: req.SWPrefetch,
		AMBHit:     req.AMBHit,
		Channel:    ch,
		DIMM:       loc.DIMM,
		Bank:       loc.Bank,
		Created:    created,
		Arrived:    req.Arrived,
		Issued:     req.T.Issued,
		CmdAt:      req.T.CmdAt,
		ServiceAt:  req.T.Service,
		Done:       req.Done,
	})
}

// traceGauges snapshots the cumulative counters the epoch sampler
// differences into per-epoch utilizations.
func (c *Controller) traceGauges() memtrace.Gauges {
	north, south := c.LinkBusy()
	dc := c.DRAMCounters()
	g := memtrace.Gauges{
		QueueDepth:   c.QueuedReads() + c.QueuedWrites(),
		NorthBusy:    north,
		SouthBusy:    south,
		DIMMBusBusy:  c.dimmBusBusy(),
		ACT:          dc.ACT,
		PRE:          dc.PRE,
		ColRead:      dc.ColRead,
		ColWrit:      dc.ColWrit,
		Prefetched:   0,
		PrefetchHits: 0,
	}
	amb := c.AMBStats()
	g.Prefetched = amb.Prefetched
	g.PrefetchHits = amb.Hits
	return g
}

// dimmBusBusy sums DIMM-side data-bus occupancy across all channels.
func (c *Controller) dimmBusBusy() clock.Time {
	var total clock.Time
	for _, ch := range c.chans {
		total += ch.DIMMBusBusy()
	}
	return total
}

// ResetTraceMeasurement restarts the recorder's measurement window (no-op
// without a recorder). The system calls it at the warmup boundary so the
// trace covers exactly the measured interval.
func (c *Controller) ResetTraceMeasurement(now clock.Time) {
	if c.rec == nil {
		return
	}
	c.rec.ResetMeasurement(now, c.traceGauges())
}

// TraceSummary flushes the trailing epoch and renders the recorder's
// summary, or nil when tracing is disabled.
func (c *Controller) TraceSummary(now clock.Time) *memtrace.Summary {
	if c.rec == nil {
		return nil
	}
	return c.rec.Summarize(now, c.traceGauges())
}

// issue picks and schedules at most one transaction on channel ch.
//
// Policy (Section 4.1): reads before writes unless the write buffer is
// above its threshold; among reads, hit-first — the oldest read that the
// channel can serve without a full DRAM access wins, then the oldest read.
func (c *Controller) issue(ch int, now clock.Time) {
	model := c.chans[ch]
	switch {
	case len(c.writeQ[ch]) > c.cfg.WriteDrainThreshold:
		c.draining[ch] = true
	case len(c.writeQ[ch]) == 0:
		c.draining[ch] = false
	}

	if !c.draining[ch] {
		if req, idx := c.pickRead(ch, now, model); req != nil {
			c.removeRead(ch, idx)
			c.startRead(req, model, now)
			return
		}
		// Work conservation: once the channel is fully quiescent (no
		// queued or in-flight reads that a drain burst could batch
		// behind), leftover writes below the threshold still go out
		// rather than sitting forever.
		if len(c.readQ[ch]) == 0 && c.inflight[ch] == 0 {
			if batch := c.pickWriteBatch(ch, now); len(batch) > 0 {
				c.startWrites(batch, model, now)
			}
		}
		return
	}
	if batch := c.pickWriteBatch(ch, now); len(batch) > 0 {
		c.startWrites(batch, model, now)
		return
	}
	// Drain mode but no eligible write: fall back to a ready read so the
	// channel never idles with work available.
	if req, idx := c.pickRead(ch, now, model); req != nil {
		c.removeRead(ch, idx)
		c.startRead(req, model, now)
	}
}

// pickRead returns the scheduled-next read and its queue index, or nil.
// Only requests whose controller pipeline delay has elapsed are eligible.
func (c *Controller) pickRead(ch int, now clock.Time, model channelModel) (*memreq.Request, int) {
	oldest := -1
	for i, req := range c.readQ[ch] {
		if req.Arrived+c.cfg.CtrlOverhead > now+c.TCK() {
			continue // still in the controller pipeline
		}
		if model.IsFastRead(req.Addr) {
			return req, i // oldest fast read wins immediately
		}
		if oldest < 0 {
			oldest = i
		}
	}
	if oldest < 0 {
		return nil, -1
	}
	return c.readQ[ch][oldest], oldest
}

// pickWriteBatch removes and returns the oldest eligible write plus every
// other queued write sharing its DRAM region (same bank and row): the
// controller's hit-first policy applied to the write stream, which lets one
// activation serve a run of sequential writebacks under multi-cacheline
// interleaving.
func (c *Controller) pickWriteBatch(ch int, now clock.Time) []*memreq.Request {
	q := c.writeQ[ch]
	if len(q) == 0 {
		return nil
	}
	head := q[0]
	if head.Arrived+c.cfg.CtrlOverhead > now+c.TCK() {
		return nil
	}
	region := c.mapper.RegionID(head.Addr)
	batch := append(c.scratchBatch[:0], head)
	n := 0
	for _, req := range q[1:] {
		if req != head && c.mapper.RegionID(req.Addr) == region {
			batch = append(batch, req)
			continue
		}
		q[n] = req
		n++
	}
	c.writeQ[ch] = q[:n]
	c.scratchBatch = batch[:0]
	return batch
}

func (c *Controller) removeRead(ch, idx int) {
	q := c.readQ[ch]
	c.readQ[ch] = append(q[:idx], q[idx+1:]...)
}

func (c *Controller) startRead(req *memreq.Request, model channelModel, now clock.Time) {
	if c.inj != nil && c.mapper.Remapped(req.Addr) {
		c.inj.NoteRemap()
	}
	ready := req.Arrived + c.cfg.CtrlOverhead
	dataAt, hit := model.ScheduleRead(req.Addr, ready)
	req.AMBHit = hit
	if c.rec != nil {
		req.T.Issued = now
		req.T.CmdAt, req.T.Service = model.LastTiming()
	}
	c.Stats.Reads++
	if hit {
		c.Stats.AMBHits++
	}
	ch := c.mapper.Map(req.Addr).Channel
	c.inflight[ch]++
	c.pushCompletion(completion{at: dataAt, req: req, ch: ch})
}

func (c *Controller) startWrites(batch []*memreq.Request, model channelModel, now clock.Time) {
	ready := batch[0].Arrived + c.cfg.CtrlOverhead
	addrs := c.scratchAddrs
	if cap(addrs) < len(batch) {
		addrs = make([]int64, len(batch))
	} else {
		addrs = addrs[:len(batch)]
	}
	for i, req := range batch {
		addrs[i] = req.Addr
		if c.inj != nil && c.mapper.Remapped(req.Addr) {
			c.inj.NoteRemap()
		}
	}
	doneAt := model.ScheduleWrite(addrs, ready)
	c.scratchAddrs = addrs[:0]
	c.Stats.Writes += int64(len(batch))
	ch := c.mapper.Map(batch[0].Addr).Channel
	var cmdAt, serviceAt clock.Time
	if c.rec != nil {
		cmdAt, serviceAt = model.LastTiming()
	}
	for _, req := range batch {
		if c.rec != nil {
			req.T.Issued = now
			req.T.CmdAt, req.T.Service = cmdAt, serviceAt
		}
		c.inflight[ch]++
		c.pushCompletion(completion{at: doneAt, req: req, ch: ch})
	}
}

// DRAMCounters sums the DRAM operation counters across all channels.
func (c *Controller) DRAMCounters() dram.Counters {
	var sum dram.Counters
	for _, f := range c.fbd {
		sum.Add(f.Counters)
	}
	for _, d := range c.ddr {
		sum.Add(d.Counters)
	}
	return sum
}

// LinkBytes sums channel traffic (read bytes, write bytes) across channels.
func (c *Controller) LinkBytes() (north, south int64) {
	for _, f := range c.fbd {
		north += f.Links.BytesNorth
		south += f.Links.BytesSouth
	}
	for _, d := range c.ddr {
		north += d.Links.BytesNorth
		south += d.Links.BytesSouth
	}
	return north, south
}

// BankConflicts sums delayed activations across all channels.
func (c *Controller) BankConflicts() int64 {
	var n int64
	for _, f := range c.fbd {
		n += f.BankConflicts
	}
	for _, d := range c.ddr {
		n += d.BankConflicts
	}
	return n
}

// LinkBusy sums the cumulative link occupancy across channels: the read
// path (northbound / DDR2 data bus) and the write/command path.
func (c *Controller) LinkBusy() (north, south clock.Time) {
	for _, f := range c.fbd {
		n, s := f.LinkBusy()
		north += n
		south += s
	}
	for _, d := range c.ddr {
		n, s := d.LinkBusy()
		north += n
		south += s
	}
	return north, south
}

// AMBStats aggregates prefetch statistics across every AMB cache in the
// system (zero when prefetching is off or the system is DDR2).
func (c *Controller) AMBStats() ambcache.Stats {
	var s ambcache.Stats
	for _, f := range c.fbd {
		s.Add(f.AMBStats())
	}
	return s
}

// completion orders issued transactions by finish time.
type completion struct {
	at  clock.Time
	req *memreq.Request
	ch  int
}

// completionHeap is a hand-rolled binary min-heap on at. It replaces
// container/heap, whose interface{} Push/Pop boxes a completion per call —
// two heap allocations per transaction on the hottest controller path. The
// sift routines replicate container/heap's algorithm exactly (strict < on
// at, identical swap order), so equal-time completions pop in the same
// order the reference implementation produced and simulation results stay
// bit-identical.
type completionHeap []completion

func (c *Controller) pushCompletion(x completion) {
	h := append(c.completions, x)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !(h[j].at < h[i].at) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	c.completions = h
}

func (c *Controller) popCompletion() completion {
	h := c.completions
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1 // left child
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].at < h[j].at {
			j = j2
		}
		if !(h[j].at < h[i].at) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	x := h[n]
	h[n] = completion{} // drop the request pointer so the free slot can't pin it
	c.completions = h[:n]
	return x
}

// NextEventAt reports the earliest simulated time at which a Tick could do
// something: the next completion, the moment a queued read (or a write the
// current policy would issue) clears the controller pipeline, or the next
// memtrace epoch boundary. It returns clock.Infinity when the controller is
// empty. The estimate is conservative — it may be earlier than the true
// next state change (the extra tick is a no-op) but never later, which is
// the contract the event-driven system loop depends on. Queue contents and
// the drain flag can only change inside executed cycles, so a value
// computed between cycles stays valid for the whole skipped stretch.
func (c *Controller) NextEventAt() clock.Time {
	next := clock.Infinity
	if len(c.completions) > 0 {
		next = c.completions[0].at
	}
	tck := c.TCK()
	for ch := range c.chans {
		// Queues are arrival-ordered, so the head holds the earliest
		// pipeline-exit time: eligible once Arrived+CtrlOverhead <= now+tCK.
		if q := c.readQ[ch]; len(q) > 0 {
			if t := q[0].Arrived + c.cfg.CtrlOverhead - tck; t < next {
				next = t
			}
		}
		q := c.writeQ[ch]
		if len(q) == 0 {
			continue
		}
		// A queued write is only an event if the next tick would drain it:
		// either the channel is (or will flip to) drain mode, or work
		// conservation applies because nothing else is queued or in flight.
		// Otherwise writes wait on a completion or a read, both already
		// counted above.
		drain := c.draining[ch] || len(q) > c.cfg.WriteDrainThreshold
		if drain || (len(c.readQ[ch]) == 0 && c.inflight[ch] == 0) {
			if t := q[0].Arrived + c.cfg.CtrlOverhead - tck; t < next {
				next = t
			}
		}
	}
	if c.rec != nil {
		if t := c.rec.NextSampleAt(); t < next {
			next = t
		}
	}
	return next
}
