package memctrl

import (
	"testing"

	"fbdsim/internal/clock"
	"fbdsim/internal/config"
	"fbdsim/internal/memreq"
)

const ns = clock.Nanosecond

func newCtrl(t *testing.T, mutate func(*config.Config)) *Controller {
	t.Helper()
	cfg := config.Default()
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return New(&cfg.Mem)
}

// drive ticks the controller from (exclusive) from to (inclusive) to.
func drive(c *Controller, from, to clock.Time) {
	tck := c.TCK()
	start := from - from%tck
	for now := start; now <= to; now += tck {
		c.Tick(now)
	}
}

func read(addr int64) *memreq.Request {
	return &memreq.Request{Addr: addr, Kind: memreq.Read}
}

func write(addr int64) *memreq.Request {
	return &memreq.Request{Addr: addr, Kind: memreq.Write}
}

func TestSingleReadCompletesAt63ns(t *testing.T) {
	c := newCtrl(t, nil)
	var done clock.Time = -1
	req := read(0)
	req.OnDone = func(r *memreq.Request) { done = r.Done }
	if !c.Enqueue(req, 0) {
		t.Fatal("enqueue failed")
	}
	drive(c, 0, 200*ns)
	if done != 63*ns {
		t.Errorf("read completed at %v, want 63ns", done)
	}
	if c.Stats.Reads != 1 || c.Stats.ReadsDone != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if got := c.Stats.AvgReadLatency(); got != 63 {
		t.Errorf("avg latency = %g", got)
	}
}

func TestQueueFullRejects(t *testing.T) {
	c := newCtrl(t, func(cfg *config.Config) { cfg.Mem.QueueEntries = 2 })
	// All to channel 0 (even lines under cacheline interleaving).
	for i := 0; i < 2; i++ {
		if !c.Enqueue(read(int64(i)*128), 0) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if c.CanAccept(4*128, memreq.Read) {
		t.Error("queue should be full")
	}
	if c.Enqueue(read(4*128), 0) {
		t.Error("enqueue into full queue must fail")
	}
	if c.Stats.QueueRejects != 1 {
		t.Errorf("rejects = %d", c.Stats.QueueRejects)
	}
	// The other channel still accepts.
	if !c.CanAccept(64, memreq.Read) {
		t.Error("channel 1 should accept")
	}
}

// TestHitFirstScheduling: with AMB prefetching, a younger AMB-hit read
// overtakes an older bank-conflicting read.
func TestHitFirstScheduling(t *testing.T) {
	cfg := config.WithAMBPrefetch(config.Default())
	c := New(&cfg.Mem)
	// Warm the AMB cache: region 0 (lines 0..3, channel 0).
	var warmDone bool
	warm := read(0)
	warm.OnDone = func(*memreq.Request) { warmDone = true }
	c.Enqueue(warm, 0)
	drive(c, 0, 300*ns)
	if !warmDone {
		t.Fatal("warm read never completed")
	}

	// Same-bank conflicting read (different row, same region index modulo
	// geometry): pick the next row in bank 0 on channel 0.
	mem := cfg.Mem
	linesPerRow := int64(mem.RowBytes / mem.LineBytes)
	stride := int64(mem.TotalBanks()) * linesPerRow * 64
	older := read(stride) // bank 0, new row → slow
	younger := read(64)   // AMB hit → fast
	var olderDone, youngerDone clock.Time
	older.OnDone = func(r *memreq.Request) { olderDone = r.Done }
	younger.OnDone = func(r *memreq.Request) { youngerDone = r.Done }
	c.Enqueue(older, 600*ns)
	c.Enqueue(younger, 600*ns)
	drive(c, 600*ns, 1500*ns)
	if olderDone == 0 || youngerDone == 0 {
		t.Fatal("requests did not complete")
	}
	if youngerDone >= olderDone {
		t.Errorf("hit-first violated: hit at %v, miss at %v", youngerDone, olderDone)
	}
	if c.Stats.AMBHits != 1 {
		t.Errorf("AMB hits = %d", c.Stats.AMBHits)
	}
}

// TestWriteDrainHysteresis: while reads keep a channel busy, writes below
// the threshold accumulate; crossing it forces a drain even against reads.
func TestWriteDrainHysteresis(t *testing.T) {
	c := newCtrl(t, func(cfg *config.Config) { cfg.Mem.WriteDrainThreshold = 4 })
	tck := c.TCK()

	// Keep a steady read stream on channel 0 and slip in 3 writes.
	for i := 0; i < 3; i++ {
		c.Enqueue(write(int64(1000+i)*128), 0)
	}
	nextRead := int64(0)
	for now := clock.Time(0); now <= 600*ns; now += tck {
		if c.QueuedReads() < 4 {
			c.Enqueue(read(nextRead*128), now)
			nextRead++
		}
		c.Tick(now)
	}
	if c.Stats.Writes != 0 {
		t.Errorf("writes issued below threshold while reads pending: %d", c.Stats.Writes)
	}

	// Two more writes cross the threshold: the drain preempts reads.
	c.Enqueue(write(1003*128), 600*ns)
	c.Enqueue(write(1004*128), 600*ns)
	for now := 600 * ns; now <= 2000*ns; now += tck {
		if c.QueuedReads() < 4 {
			c.Enqueue(read(nextRead*128), now)
			nextRead++
		}
		c.Tick(now)
	}
	if c.Stats.Writes != 5 {
		t.Errorf("writes drained = %d, want 5", c.Stats.Writes)
	}
	if c.QueuedWrites() != 0 {
		t.Errorf("write queue not drained: %d", c.QueuedWrites())
	}
}

// TestIdleChannelFlushesLeftoverWrites: with no reads at all, sub-threshold
// writes still go out (work conservation).
func TestIdleChannelFlushesLeftoverWrites(t *testing.T) {
	c := newCtrl(t, func(cfg *config.Config) { cfg.Mem.WriteDrainThreshold = 4 })
	for i := 0; i < 3; i++ {
		c.Enqueue(write(int64(i)*128), 0)
	}
	drive(c, 0, 500*ns)
	if c.Stats.Writes != 3 {
		t.Errorf("idle channel left %d writes queued", 3-int(c.Stats.Writes))
	}
}

// TestReadsProceedWhileWritesWait: queued writes below the threshold never
// block reads.
func TestReadsProceedWhileWritesWait(t *testing.T) {
	c := newCtrl(t, nil)
	for i := 0; i < 3; i++ {
		c.Enqueue(write(int64(i)*128), 0)
	}
	var done clock.Time
	r := read(6 * 128)
	r.OnDone = func(q *memreq.Request) { done = q.Done }
	c.Enqueue(r, 0)
	drive(c, 0, 300*ns)
	if done != 63*ns {
		t.Errorf("read delayed by idle writes: done at %v", done)
	}
}

// TestWriteBatching: same-region writes issue as one transaction under
// multi-cacheline interleaving.
func TestWriteBatching(t *testing.T) {
	cfg := config.WithAMBPrefetch(config.Default())
	cfg.Mem.WriteDrainThreshold = 2
	c := New(&cfg.Mem)
	// Four writes to one region + enough to trip the drain threshold.
	for i := int64(0); i < 4; i++ {
		c.Enqueue(write(i*64), 0)
	}
	drive(c, 0, 1000*ns)
	if c.Stats.Writes != 4 {
		t.Fatalf("writes = %d", c.Stats.Writes)
	}
	counters := c.DRAMCounters()
	if counters.ACT != 1 {
		t.Errorf("batched writes used %d activations, want 1", counters.ACT)
	}
	if counters.ColWrit != 4 {
		t.Errorf("column writes = %d", counters.ColWrit)
	}
}

func TestControllerOverheadDelaysIssue(t *testing.T) {
	c := newCtrl(t, nil)
	var done clock.Time
	req := read(0)
	req.OnDone = func(r *memreq.Request) { done = r.Done }
	c.Enqueue(req, 33*ns) // arrives mid-stream
	drive(c, 0, 300*ns)
	// Off-grid arrivals may pay up to one southbound command slot (2 ns)
	// of alignment on top of the 63 ns minimum.
	if lat := done - 33*ns; lat < 63*ns || lat > 65*ns {
		t.Errorf("latency = %v, want 63-65ns regardless of arrival phase", lat)
	}
}

func TestLinkBytesAndAMBStatsAggregation(t *testing.T) {
	cfg := config.WithAMBPrefetch(config.Default())
	c := New(&cfg.Mem)
	c.Enqueue(read(0), 0)
	c.Enqueue(read(64), 0) // AMB hit after the first fetch
	drive(c, 0, 1000*ns)
	north, south := c.LinkBytes()
	if north != 128 || south != 0 {
		t.Errorf("link bytes = %d/%d", north, south)
	}
	s := c.AMBStats()
	if s.Reads != 2 || s.Hits != 1 || s.Prefetched != 3 {
		t.Errorf("AMB stats = %+v", s)
	}
}

func TestPendingCount(t *testing.T) {
	c := newCtrl(t, nil)
	c.Enqueue(read(0), 0)
	c.Tick(0)
	drive(c, 0, 9*ns)
	if c.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (issued, not complete)", c.Pending())
	}
	drive(c, 12*ns, 200*ns)
	if c.Pending() != 0 {
		t.Errorf("pending = %d after completion", c.Pending())
	}
}

func TestDDR2ControllerWorks(t *testing.T) {
	cfg := config.DDR2Baseline()
	c := New(&cfg.Mem)
	var done clock.Time
	req := read(0)
	req.OnDone = func(r *memreq.Request) { done = r.Done }
	c.Enqueue(req, 0)
	drive(c, 0, 300*ns)
	if done != 60*ns {
		t.Errorf("DDR2 read at %v, want 60ns", done)
	}
}

// TestManyRequestsAllComplete is a soak test: every request enqueued
// eventually completes exactly once.
func TestManyRequestsAllComplete(t *testing.T) {
	c := newCtrl(t, nil)
	completed := map[int64]int{}
	var enqueued []int64
	now := clock.Time(0)
	next := int64(0)
	for step := 0; step < 3000; step++ {
		now += c.TCK()
		c.Tick(now)
		if step%3 == 0 {
			addr := (next * 64) % (1 << 20)
			req := read(addr)
			id := next
			req.OnDone = func(*memreq.Request) { completed[id]++ }
			if c.Enqueue(req, now) {
				enqueued = append(enqueued, id)
			}
			next++
		}
	}
	// Drain.
	for i := 0; i < 100000 && c.Pending()+c.QueuedReads() > 0; i++ {
		now += c.TCK()
		c.Tick(now)
	}
	for _, id := range enqueued {
		if completed[id] != 1 {
			t.Fatalf("request %d completed %d times", id, completed[id])
		}
	}
}
