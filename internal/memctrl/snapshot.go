package memctrl

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/memreq"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the controller's mutable state: every channel model,
// the per-channel transaction queues, the completion heap (as its raw
// backing array, preserving the hand-rolled heap's exact layout and hence
// its equal-time pop order), the drain/in-flight bookkeeping, the stats,
// and the attached recorder and injector. The scratch buffers are dead
// between ticks and not written.
func (c *Controller) Snapshot(e *snapshot.Encoder) {
	e.Int(len(c.chans))
	for i := range c.chans {
		if c.fbd != nil {
			c.fbd[i].Snapshot(e)
		} else {
			c.ddr[i].Snapshot(e)
		}
	}
	for ch := range c.chans {
		e.Int(len(c.readQ[ch]))
		for _, req := range c.readQ[ch] {
			snapshotReq(e, req)
		}
		e.Int(len(c.writeQ[ch]))
		for _, req := range c.writeQ[ch] {
			snapshotReq(e, req)
		}
		e.Bool(c.draining[ch])
		e.Int(c.inflight[ch])
	}
	e.Int(len(c.completions))
	for _, comp := range c.completions {
		e.I64(int64(comp.at))
		snapshotReq(e, comp.req)
		e.Int(comp.ch)
	}
	e.I64(c.housekept)
	e.I64(c.Stats.Reads)
	e.I64(c.Stats.Writes)
	e.I64(c.Stats.AMBHits)
	e.I64(int64(c.Stats.ReadLatency))
	e.I64(c.Stats.ReadsDone)
	e.I64(c.Stats.QueueRejects)
	c.LatHist.Snapshot(e)
	c.rec.Snapshot(e)
	c.inj.Snapshot(e)
}

// Restore overwrites the controller's mutable state from d. Every restored
// in-flight request gets its completion callback rewired by kind: onRead
// and onWrite are the cache hierarchy's shared callbacks (requests cannot
// serialize their closures).
func (c *Controller) Restore(d *snapshot.Decoder, onRead, onWrite func(*memreq.Request)) {
	if n := d.Int(); n != len(c.chans) {
		d.Fail("memctrl: snapshot has %d channels, machine has %d", n, len(c.chans))
		return
	}
	for i := range c.chans {
		if c.fbd != nil {
			c.fbd[i].Restore(d)
		} else {
			c.ddr[i].Restore(d)
		}
	}
	rewire := func(req *memreq.Request) {
		if req.Kind == memreq.Read {
			req.OnDone = onRead
		} else {
			req.OnDone = onWrite
		}
	}
	for ch := range c.chans {
		n := d.Count(64)
		c.readQ[ch] = c.readQ[ch][:0]
		for i := 0; i < n; i++ {
			req := restoreReq(d)
			rewire(req)
			c.readQ[ch] = append(c.readQ[ch], req)
		}
		n = d.Count(64)
		c.writeQ[ch] = c.writeQ[ch][:0]
		for i := 0; i < n; i++ {
			req := restoreReq(d)
			rewire(req)
			c.writeQ[ch] = append(c.writeQ[ch], req)
		}
		c.draining[ch] = d.Bool()
		c.inflight[ch] = d.Int()
	}
	n := d.Count(72)
	c.completions = c.completions[:0]
	for i := 0; i < n; i++ {
		comp := completion{at: clock.Time(d.I64())}
		comp.req = restoreReq(d)
		rewire(comp.req)
		comp.ch = d.Int()
		if comp.ch < 0 || comp.ch >= len(c.chans) {
			d.Fail("memctrl: completion channel %d out of range", comp.ch)
			return
		}
		c.completions = append(c.completions, comp)
	}
	c.housekept = d.I64()
	c.Stats = Stats{
		Reads:        d.I64(),
		Writes:       d.I64(),
		AMBHits:      d.I64(),
		ReadLatency:  clock.Time(d.I64()),
		ReadsDone:    d.I64(),
		QueueRejects: d.I64(),
	}
	c.LatHist.Restore(d)
	c.rec.Restore(d)
	c.inj.Restore(d)
}

// snapshotReq serializes one transaction. OnDone is a closure and is
// rewired at restore time by kind.
func snapshotReq(e *snapshot.Encoder, req *memreq.Request) {
	e.I64(req.ID)
	e.I64(req.Addr)
	e.Int(int(req.Kind))
	e.Int(req.Core)
	e.Bool(req.SWPrefetch)
	e.I64(int64(req.Created))
	e.I64(int64(req.Arrived))
	e.I64(int64(req.Done))
	e.Bool(req.AMBHit)
	e.I64(int64(req.T.Issued))
	e.I64(int64(req.T.CmdAt))
	e.I64(int64(req.T.Service))
}

func restoreReq(d *snapshot.Decoder) *memreq.Request {
	return &memreq.Request{
		ID:         d.I64(),
		Addr:       d.I64(),
		Kind:       memreq.Kind(d.Int()),
		Core:       d.Int(),
		SWPrefetch: d.Bool(),
		Created:    clock.Time(d.I64()),
		Arrived:    clock.Time(d.I64()),
		Done:       clock.Time(d.I64()),
		AMBHit:     d.Bool(),
		T: memreq.Timing{
			Issued:  clock.Time(d.I64()),
			CmdAt:   clock.Time(d.I64()),
			Service: clock.Time(d.I64()),
		},
	}
}
