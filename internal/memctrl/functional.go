package memctrl

// FunctionalRead propagates the state effects of a demand read of addr in
// functional-warming mode: no queueing, no timing, no statistics beyond
// what the channel's own tag bookkeeping records. Only FB-DIMM channels
// carry warm state below the controller (AMB prefetch caches); DDR2
// channels are stateless at this level, so the call is a no-op for them.
func (c *Controller) FunctionalRead(addr int64) {
	ch := c.mapper.Map(addr).Channel
	if ch < len(c.fbd) && c.fbd[ch] != nil {
		c.fbd[ch].FunctionalRead(addr)
	}
}

// FunctionalWrite propagates the state effects of a write (a writeback or
// dirty eviction) in functional-warming mode; see FunctionalRead.
func (c *Controller) FunctionalWrite(addr int64) {
	ch := c.mapper.Map(addr).Channel
	if ch < len(c.fbd) && c.fbd[ch] != nil {
		c.fbd[ch].FunctionalWrite(addr)
	}
}
