package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(4, 2, 64) // 4KB, 2-way, 32 sets
	if c.Access(0, false) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0, false)
	if !c.Access(0, false) {
		t.Fatal("filled line must hit")
	}
	if !c.Access(63, false) {
		t.Fatal("same line, different offset must hit")
	}
	if c.Access(64, false) {
		t.Fatal("next line must miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %g", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(4, 2, 64)
	sets := int64(c.Sets())
	// Two lines in set 0.
	a, b, d := int64(0), sets*64, 2*sets*64
	c.Fill(a, false)
	c.Fill(b, false)
	c.Access(a, false) // a is now MRU
	v := c.Fill(d, false)
	if !v.Valid || v.Addr != b {
		t.Errorf("evicted %+v, want LRU line %d", v, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("post-eviction residency wrong")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := New(4, 1, 64)
	c.Fill(0, false)
	c.Access(0, true) // store dirties the line
	sets := int64(c.Sets())
	v := c.Fill(sets*64, false) // conflict: evicts line 0
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Errorf("victim = %+v, want dirty line 0", v)
	}
	if c.Stats.DirtyEvicts != 1 {
		t.Errorf("dirty evicts = %d", c.Stats.DirtyEvicts)
	}
}

func TestFillDirtyDirectly(t *testing.T) {
	c := New(4, 1, 64)
	c.Fill(0, true) // RFO fill
	sets := int64(c.Sets())
	v := c.Fill(sets*64, false)
	if !v.Dirty {
		t.Error("RFO-filled victim must be dirty")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := New(4, 2, 64)
	c.Fill(0, false)
	v := c.Fill(0, true)
	if v.Valid {
		t.Error("refreshing a resident line must not evict")
	}
	// The refresh set the dirty bit.
	sets := int64(c.Sets())
	c.Fill(sets*64, false)
	victim := c.Fill(2*sets*64, false)
	if !victim.Dirty || victim.Addr != 0 {
		t.Errorf("victim = %+v, want dirty line 0", victim)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, 2, 64)
	c.Fill(0, false)
	c.Access(0, true)
	dirty, present := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("invalidate = dirty %v present %v", dirty, present)
	}
	if c.Contains(0) {
		t.Error("line still present")
	}
	if _, present := c.Invalidate(0); present {
		t.Error("second invalidate must miss")
	}
}

func TestPrefetchFillCounted(t *testing.T) {
	c := New(4, 2, 64)
	c.FillPrefetch(0)
	if c.Stats.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d", c.Stats.PrefetchFills)
	}
	if !c.Contains(0) {
		t.Error("prefetch fill must install the line")
	}
}

func TestGeometry(t *testing.T) {
	c := New(4096, 4, 64) // the shared L2 of Table 1
	if c.Sets() != 16384 || c.Ways() != 4 {
		t.Errorf("L2 geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
	c2 := New(64, 2, 64) // the L1D of Table 1
	if c2.Sets() != 512 || c2.Ways() != 2 {
		t.Errorf("L1 geometry = %d sets x %d ways", c2.Sets(), c2.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(3, 2, 64) },  // does not divide
		func() { New(96, 1, 64) }, // 1536 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestOccupancyAndConservation is a property test over random workloads.
func TestOccupancyAndConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(8, 2, 64)
		capacity := c.Sets() * c.Ways()
		fills := 0
		for i := 0; i < 400; i++ {
			addr := int64(rng.Intn(1024)) * 64
			switch rng.Intn(3) {
			case 0:
				c.Access(addr, rng.Intn(2) == 0)
			case 1:
				c.Fill(addr, false)
				fills++
			case 2:
				c.Invalidate(addr)
			}
			if c.Occupancy() > capacity {
				return false
			}
		}
		// A cache can never evict more lines than were filled.
		return c.Stats.Evictions <= int64(fills) &&
			c.Stats.DirtyEvicts <= c.Stats.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSetIsolation: filling one set never disturbs another.
func TestSetIsolation(t *testing.T) {
	c := New(8, 2, 64)
	c.Fill(64, false) // set 1
	sets := int64(c.Sets())
	for i := int64(0); i < 10; i++ {
		c.Fill(i*sets*64, false) // hammer set 0
	}
	if !c.Contains(64) {
		t.Error("set 0 pressure evicted a set-1 line")
	}
}
