// Package cache implements the set-associative, write-back caches of the
// simulated hierarchy (per-core L1 data caches and the shared L2 of
// Table 1). The caches here are state-only: hit/miss decisions, LRU
// replacement, dirty tracking, and fills. Timing, MSHRs and miss handling
// live in the core model (internal/cpu), which owns the clock.
package cache

import (
	"fmt"
	"math/bits"
)

type line struct {
	tag   int64 // line-aligned address
	valid bool
	dirty bool
	use   int64
}

// Stats counts cache events.
type Stats struct {
	Accesses      int64
	Misses        int64
	Evictions     int64
	DirtyEvicts   int64
	PrefetchFills int64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative write-back cache with LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineBytes int64
	lineShift uint
	data      [][]line
	tick      int64

	// Stats is exported for the experiment harness and tests.
	Stats Stats
}

// New builds a cache of sizeKB kilobytes with the given associativity and
// line size. Geometry must divide evenly into power-of-two sets.
func New(sizeKB, ways, lineBytes int) *Cache {
	total := sizeKB * 1024
	if total%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("cache: %dKB not divisible into %d-way sets of %dB lines",
			sizeKB, ways, lineBytes))
	}
	sets := total / (ways * lineBytes)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	c := &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: int64(lineBytes),
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		data:      make([][]line, sets),
	}
	for i := range c.data {
		c.data[i] = make([]line, ways)
	}
	return c
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr int64) int64 { return addr &^ (c.lineBytes - 1) }

func (c *Cache) set(lineAddr int64) []line {
	idx := (lineAddr >> c.lineShift) & int64(c.sets-1)
	return c.data[idx]
}

// Access looks up addr; on a hit it refreshes LRU state and, for writes,
// sets the dirty bit. It returns whether the access hit.
func (c *Cache) Access(addr int64, write bool) bool {
	c.Stats.Accesses++
	la := c.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			c.tick++
			set[i].use = c.tick
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Contains reports residency without disturbing LRU or statistics.
func (c *Cache) Contains(addr int64) bool {
	la := c.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  int64
	Dirty bool
	Valid bool
}

// Fill installs the line containing addr (marking it dirty when the fill
// satisfies a store) and returns the displaced victim, if any. Filling an
// already-resident line only refreshes its state.
func (c *Cache) Fill(addr int64, dirty bool) Victim {
	la := c.LineAddr(addr)
	set := c.set(la)
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].use = c.tick
			if dirty {
				set[i].dirty = true
			}
			return Victim{}
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto install
		}
		if set[i].use < set[victim].use {
			victim = i
		}
	}
install:
	out := Victim{}
	if set[victim].valid {
		out = Victim{Addr: set[victim].tag, Dirty: set[victim].dirty, Valid: true}
		c.Stats.Evictions++
		if out.Dirty {
			c.Stats.DirtyEvicts++
		}
	}
	set[victim] = line{tag: la, valid: true, dirty: dirty, use: c.tick}
	return out
}

// FillPrefetch installs a line fetched by a (software) prefetch; identical
// to Fill but counted separately.
func (c *Cache) FillPrefetch(addr int64) Victim {
	c.Stats.PrefetchFills++
	return c.Fill(addr, false)
}

// Invalidate drops the line containing addr if resident, returning its
// dirty state (the caller is responsible for any writeback).
func (c *Cache) Invalidate(addr int64) (wasDirty, wasPresent bool) {
	la := c.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			set[i].valid = false
			return set[i].dirty, true
		}
	}
	return false, false
}

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

// Occupancy returns the number of valid lines (test helper).
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.data {
		for _, l := range set {
			if l.valid {
				n++
			}
		}
	}
	return n
}
