package cache

import "fbdsim/internal/snapshot"

// Snapshot serializes the cache's mutable state: every frame, the LRU
// tick, and the statistics. Geometry is construction-derived and not
// written.
func (c *Cache) Snapshot(e *snapshot.Encoder) {
	e.Int(c.sets)
	e.Int(c.ways)
	for _, set := range c.data {
		for _, l := range set {
			e.I64(l.tag)
			e.Bool(l.valid)
			e.Bool(l.dirty)
			e.I64(l.use)
		}
	}
	e.I64(c.tick)
	e.I64(c.Stats.Accesses)
	e.I64(c.Stats.Misses)
	e.I64(c.Stats.Evictions)
	e.I64(c.Stats.DirtyEvicts)
	e.I64(c.Stats.PrefetchFills)
}

// Restore overwrites the cache's mutable state from d. The geometry must
// match the constructed cache.
func (c *Cache) Restore(d *snapshot.Decoder) {
	if sets, ways := d.Int(), d.Int(); sets != c.sets || ways != c.ways {
		d.Fail("cache: snapshot geometry %dx%d, machine %dx%d", sets, ways, c.sets, c.ways)
		return
	}
	for _, set := range c.data {
		for i := range set {
			set[i] = line{tag: d.I64(), valid: d.Bool(), dirty: d.Bool(), use: d.I64()}
		}
	}
	c.tick = d.I64()
	c.Stats = Stats{
		Accesses:      d.I64(),
		Misses:        d.I64(),
		Evictions:     d.I64(),
		DirtyEvicts:   d.I64(),
		PrefetchFills: d.I64(),
	}
}
