package memtrace

import (
	"fbdsim/internal/clock"
	"fbdsim/internal/snapshot"
)

// Snapshot serializes the recorder's mutable state: retained events, the
// per-stage histograms, the open epoch accumulator, the gauge baseline and
// the finished epoch rows. The sizing Config is construction-derived and
// not written. Nil-safe: a disabled recorder writes a zero marker.
func (r *Recorder) Snapshot(e *snapshot.Encoder) {
	if r == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(len(r.events))
	for i := range r.events {
		snapshotEvent(e, &r.events[i])
	}
	e.I64(r.dropped)
	for i := range r.hists {
		for j := range r.hists[i] {
			r.hists[i][j].Snapshot(e)
		}
	}
	e.I64(r.writes)
	e.I64(int64(r.start))
	snapshotAccum(e, &r.cur)
	snapshotGauges(e, &r.prev)
	e.Int(len(r.epochs))
	for i := range r.epochs {
		snapshotEpoch(e, &r.epochs[i])
	}
	e.I64(r.droppedEpochs)
}

// Restore overwrites the recorder's mutable state from d. The
// enabled/disabled marker must match the constructed machine (tracing is
// part of the configuration fingerprint, so a mismatch means corruption).
func (r *Recorder) Restore(d *snapshot.Decoder) {
	present := d.Bool()
	if present != (r != nil) {
		d.Fail("memtrace: snapshot recorder presence %v, machine %v", present, r != nil)
		return
	}
	if r == nil {
		return
	}
	n := d.Count(64)
	r.events = r.events[:0]
	for i := 0; i < n; i++ {
		r.events = append(r.events, restoreEvent(d))
	}
	r.dropped = d.I64()
	for i := range r.hists {
		for j := range r.hists[i] {
			r.hists[i][j].Restore(d)
		}
	}
	r.writes = d.I64()
	r.start = clock.Time(d.I64())
	r.cur = restoreAccum(d)
	r.prev = restoreGauges(d)
	n = d.Count(64)
	r.epochs = r.epochs[:0]
	for i := 0; i < n; i++ {
		r.epochs = append(r.epochs, restoreEpoch(d))
	}
	r.droppedEpochs = d.I64()
}

func snapshotEvent(e *snapshot.Encoder, ev *Event) {
	e.I64(ev.ID)
	e.I64(ev.Addr)
	e.Int(ev.Core)
	e.Bool(ev.Write)
	e.Bool(ev.SWPrefetch)
	e.Bool(ev.AMBHit)
	e.Int(ev.Channel)
	e.Int(ev.DIMM)
	e.Int(ev.Bank)
	e.I64(int64(ev.Created))
	e.I64(int64(ev.Arrived))
	e.I64(int64(ev.Issued))
	e.I64(int64(ev.CmdAt))
	e.I64(int64(ev.ServiceAt))
	e.I64(int64(ev.Done))
}

func restoreEvent(d *snapshot.Decoder) Event {
	return Event{
		ID:         d.I64(),
		Addr:       d.I64(),
		Core:       d.Int(),
		Write:      d.Bool(),
		SWPrefetch: d.Bool(),
		AMBHit:     d.Bool(),
		Channel:    d.Int(),
		DIMM:       d.Int(),
		Bank:       d.Int(),
		Created:    clock.Time(d.I64()),
		Arrived:    clock.Time(d.I64()),
		Issued:     clock.Time(d.I64()),
		CmdAt:      clock.Time(d.I64()),
		ServiceAt:  clock.Time(d.I64()),
		Done:       clock.Time(d.I64()),
	}
}

func snapshotAccum(e *snapshot.Encoder, a *epochAccum) {
	e.I64(int64(a.start))
	e.I64(a.reads)
	e.I64(a.writes)
	e.I64(a.ambHits)
	for _, s := range a.stageSum {
		e.I64(int64(s))
	}
	e.I64(int64(a.e2eSum))
}

func restoreAccum(d *snapshot.Decoder) epochAccum {
	a := epochAccum{
		start:   clock.Time(d.I64()),
		reads:   d.I64(),
		writes:  d.I64(),
		ambHits: d.I64(),
	}
	for s := range a.stageSum {
		a.stageSum[s] = clock.Time(d.I64())
	}
	a.e2eSum = clock.Time(d.I64())
	return a
}

func snapshotGauges(e *snapshot.Encoder, g *Gauges) {
	e.Int(g.QueueDepth)
	e.I64(int64(g.NorthBusy))
	e.I64(int64(g.SouthBusy))
	e.I64(int64(g.DIMMBusBusy))
	e.I64(g.ACT)
	e.I64(g.PRE)
	e.I64(g.ColRead)
	e.I64(g.ColWrit)
	e.I64(g.Prefetched)
	e.I64(g.PrefetchHits)
}

func restoreGauges(d *snapshot.Decoder) Gauges {
	return Gauges{
		QueueDepth:   d.Int(),
		NorthBusy:    clock.Time(d.I64()),
		SouthBusy:    clock.Time(d.I64()),
		DIMMBusBusy:  clock.Time(d.I64()),
		ACT:          d.I64(),
		PRE:          d.I64(),
		ColRead:      d.I64(),
		ColWrit:      d.I64(),
		Prefetched:   d.I64(),
		PrefetchHits: d.I64(),
	}
}

func snapshotEpoch(e *snapshot.Encoder, ep *Epoch) {
	e.F64(ep.StartNS)
	e.F64(ep.EndNS)
	e.I64(ep.Reads)
	e.I64(ep.Writes)
	e.I64(ep.AMBHits)
	e.F64(ep.AMBHitRate)
	e.F64(ep.AvgReadLatencyNS)
	for _, m := range ep.StageMeanNS {
		e.F64(m)
	}
	e.Int(ep.QueueDepth)
	e.F64(ep.NorthUtil)
	e.F64(ep.SouthUtil)
	e.F64(ep.DIMMBusUtil)
	e.I64(ep.ACTs)
	e.I64(ep.PREs)
	e.I64(ep.ColReads)
	e.I64(ep.ColWrites)
	e.F64(ep.PrefetchAccuracy)
}

func restoreEpoch(d *snapshot.Decoder) Epoch {
	ep := Epoch{
		StartNS:          d.F64(),
		EndNS:            d.F64(),
		Reads:            d.I64(),
		Writes:           d.I64(),
		AMBHits:          d.I64(),
		AMBHitRate:       d.F64(),
		AvgReadLatencyNS: d.F64(),
	}
	for s := range ep.StageMeanNS {
		ep.StageMeanNS[s] = d.F64()
	}
	ep.QueueDepth = d.Int()
	ep.NorthUtil = d.F64()
	ep.SouthUtil = d.F64()
	ep.DIMMBusUtil = d.F64()
	ep.ACTs = d.I64()
	ep.PREs = d.I64()
	ep.ColReads = d.I64()
	ep.ColWrites = d.I64()
	ep.PrefetchAccuracy = d.F64()
	return ep
}
