package memtrace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"fbdsim/internal/clock"
)

const ns = clock.Nanosecond

// readEvent builds a well-ordered read miss: 2 ns MSHR wait, 10 ns queue,
// 3 ns southbound, 20 ns DRAM, 5 ns northbound.
func readEvent(id int64) Event {
	base := clock.Time(id) * 100 * ns
	return Event{
		ID:        id,
		Addr:      id * 64,
		Created:   base,
		Arrived:   base + 2*ns,
		Issued:    base + 12*ns,
		CmdAt:     base + 15*ns,
		ServiceAt: base + 35*ns,
		Done:      base + 40*ns,
	}
}

func TestBreakdownTelescopes(t *testing.T) {
	ev := readEvent(1)
	bd := ev.Breakdown()
	var sum clock.Time
	for _, d := range bd {
		if d < 0 {
			t.Fatalf("negative stage duration %v in %v", d, bd)
		}
		sum += d
	}
	if sum != ev.EndToEnd() {
		t.Fatalf("stage sum %v != end-to-end %v", sum, ev.EndToEnd())
	}
	if bd[StageMSHR] != 2*ns || bd[StageQueue] != 10*ns || bd[StageSouth] != 3*ns ||
		bd[StageDRAM] != 20*ns || bd[StageNorth] != 5*ns || bd[StageAMB] != 0 {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestBreakdownAMBHitUsesAMBStage(t *testing.T) {
	ev := readEvent(1)
	ev.AMBHit = true
	bd := ev.Breakdown()
	if bd[StageDRAM] != 0 {
		t.Errorf("AMB hit must not charge the dram stage: %v", bd)
	}
	if bd[StageAMB] != 20*ns {
		t.Errorf("AMB stage = %v, want 20ns", bd[StageAMB])
	}
}

func TestBreakdownWriteFoldsTail(t *testing.T) {
	ev := readEvent(1)
	ev.Write = true
	bd := ev.Breakdown()
	var sum clock.Time
	for _, d := range bd {
		sum += d
	}
	if sum != ev.EndToEnd() {
		t.Fatalf("write stage sum %v != end-to-end %v", sum, ev.EndToEnd())
	}
	if bd[StageNorth] != 0 {
		t.Errorf("writes have no northbound return: %v", bd)
	}
}

// TestBreakdownClampsDisorderedStamps is the safety property: whatever
// garbage the stamps hold (zero, reversed, beyond Done), every stage is
// non-negative and the telescoped sum still equals Done-Created (clamped).
func TestBreakdownClampsDisorderedStamps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		ev := Event{
			Created:   clock.Time(rng.Intn(100)) * ns,
			Arrived:   clock.Time(rng.Intn(100)) * ns,
			Issued:    clock.Time(rng.Intn(100)) * ns,
			CmdAt:     clock.Time(rng.Intn(100)) * ns,
			ServiceAt: clock.Time(rng.Intn(100)) * ns,
			Done:      clock.Time(rng.Intn(100)) * ns,
			AMBHit:    rng.Intn(2) == 0,
			Write:     rng.Intn(3) == 0,
		}
		bd := ev.Breakdown()
		var sum clock.Time
		for s, d := range bd {
			if d < 0 {
				t.Fatalf("case %d: stage %v negative: %v (ev %+v)", i, Stage(s), d, ev)
			}
			sum += d
		}
		want := ev.Done - ev.Created
		if want < 0 {
			want = 0
		}
		if sum != want {
			t.Fatalf("case %d: sum %v != clamped e2e %v (ev %+v)", i, sum, want, ev)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder must report disabled")
	}
	r.Complete(readEvent(1)) // must not panic
	if r.NeedSample(1000) {
		t.Error("nil recorder never needs sampling")
	}
	r.Sample(1000, Gauges{})
	r.ResetMeasurement(0, Gauges{})
	if s := r.Summarize(1000, Gauges{}); s != nil {
		t.Error("nil recorder summarizes to nil")
	}
}

func TestRecorderHistograms(t *testing.T) {
	r := New(Config{})
	hit := readEvent(1)
	hit.AMBHit = true
	miss := readEvent(2)
	wr := readEvent(3)
	wr.Write = true
	r.Complete(hit)
	r.Complete(miss)
	r.Complete(wr)

	s := r.Summarize(500*ns, Gauges{})
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	// Each stats table ends with the end-to-end "total" row.
	tot := s.Breakdown[len(s.Breakdown)-1]
	if tot.Stage != "total" || tot.Count != 2 {
		t.Errorf("total row = %+v", tot)
	}
	hits := s.Hits[len(s.Hits)-1]
	if hits.Count != 1 {
		t.Errorf("hit total count = %d", hits.Count)
	}
	misses := s.Misses[len(s.Misses)-1]
	if misses.Count != 1 {
		t.Errorf("miss total count = %d", misses.Count)
	}
}

func TestEventCapDropsButStillCounts(t *testing.T) {
	r := New(Config{MaxEvents: 4})
	for i := int64(0); i < 10; i++ {
		r.Complete(readEvent(i))
	}
	s := r.Summarize(2000*ns, Gauges{})
	if len(s.TraceEvents) != 4 {
		t.Errorf("kept %d events, want cap 4", len(s.TraceEvents))
	}
	if s.DroppedEvents != 6 {
		t.Errorf("dropped = %d, want 6", s.DroppedEvents)
	}
	if s.Reads != 10 {
		t.Errorf("histogram reads = %d, want all 10", s.Reads)
	}
}

func TestEpochSeries(t *testing.T) {
	r := New(Config{Epoch: 100 * ns, Channels: 1, DIMMBuses: 1})
	var g Gauges
	for i := int64(0); i < 8; i++ {
		r.Complete(readEvent(i)) // events at i*100ns .. +40ns
		g.NorthBusy += 10 * ns
		g.ACT++
		if r.NeedSample(clock.Time(i+1) * 100 * ns) {
			r.Sample(clock.Time(i+1)*100*ns, g)
		}
	}
	s := r.Summarize(800*ns, g)
	if len(s.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	for _, ep := range s.Epochs {
		var stages float64
		for _, m := range ep.StageMeanNS {
			stages += m
		}
		if ep.Reads > 0 && abs(stages-ep.AvgReadLatencyNS) > 1e-9 {
			t.Errorf("epoch %v: stage means %v don't sum to avg %v", ep.StartNS, stages, ep.AvgReadLatencyNS)
		}
		if ep.NorthUtil < 0 || ep.NorthUtil > 1.000001 {
			t.Errorf("north util out of range: %v", ep.NorthUtil)
		}
	}
}

func TestResetMeasurementClearsWindow(t *testing.T) {
	r := New(Config{})
	r.Complete(readEvent(1))
	r.ResetMeasurement(1000*ns, Gauges{NorthBusy: 50 * ns})
	s := r.Summarize(2000*ns, Gauges{NorthBusy: 80 * ns})
	if s.Reads != 0 {
		t.Errorf("reads after reset = %d, want 0", s.Reads)
	}
	if s.StartNS != (1000 * ns).Nanoseconds() {
		t.Errorf("window start = %v, want 1000ns", s.StartNS)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := New(Config{})
	hit := readEvent(1)
	hit.AMBHit = true
	hit.Channel, hit.DIMM, hit.Bank = 1, 2, 3
	r.Complete(hit)
	r.Complete(readEvent(2))
	s := r.Summarize(500*ns, Gauges{})

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, slices int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative slice duration: %+v", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if meta < 4 { // 2 tracks x (process_name + thread_name)
		t.Errorf("metadata events = %d, want >= 4", meta)
	}
	if slices == 0 {
		t.Error("no slices emitted")
	}
	// The hit's track uses pid=channel, tid=dimm*stride+bank.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.PID == 1 && e.TID == 2*chromeTIDStride+3 {
			found = true
		}
	}
	if !found {
		t.Error("no slice on the hit's (channel 1, dimm 2, bank 3) track")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	r := New(Config{Epoch: 100 * ns, Channels: 1, DIMMBuses: 1})
	r.Complete(readEvent(0))
	r.Sample(100*ns, Gauges{NorthBusy: 20 * ns})
	s := r.Summarize(200*ns, Gauges{NorthBusy: 30 * ns})

	var buf bytes.Buffer
	if err := s.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(s.Epochs) {
		t.Fatalf("csv lines = %d, want header + %d epochs", len(lines), len(s.Epochs))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("header has %d cols, row has %d", len(header), len(row))
	}
	if header[0] != "start_ns" || header[6] != "avg_read_latency_ns" {
		t.Errorf("unexpected header: %v", header)
	}
}

func TestRenderSummary(t *testing.T) {
	r := New(Config{Epoch: 100 * ns})
	for i := int64(0); i < 5; i++ {
		r.Complete(readEvent(i))
		r.Sample(clock.Time(i+1)*100*ns, Gauges{})
	}
	s := r.Summarize(600*ns, Gauges{})
	var buf bytes.Buffer
	s.Render(&buf, 60)
	out := buf.String()
	for _, want := range []string{"trace window", "mshr", "queue", "south", "amb", "dram", "north", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
