package memtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one record of the Chrome trace_event format (the JSON
// array flavour understood by Perfetto and chrome://tracing). Timestamps
// and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTIDStride packs (DIMM, bank) into a stable thread id; banks per
// DIMM never approach the stride in any valid configuration.
const chromeTIDStride = 1 << 10

// WriteChromeTrace renders the retained events in Chrome trace_event JSON:
// one process per logical channel, one thread per (DIMM, bank), and one
// complete ("X") slice per non-empty request stage, so a request reads as
// a contiguous run of slices from controller pick to data return. Load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (s *Summary) WriteChromeTrace(w io.Writer) error {
	type track struct{ pid, tid int }
	seen := make(map[track]bool)
	out := make([]chromeEvent, 0, len(s.TraceEvents)*4+16)

	for i := range s.TraceEvents {
		ev := &s.TraceEvents[i]
		tr := track{pid: ev.Channel, tid: ev.DIMM*chromeTIDStride + ev.Bank}
		if !seen[tr] {
			seen[tr] = true
			out = append(out,
				chromeEvent{Name: "process_name", Ph: "M", PID: tr.pid,
					Args: map[string]any{"name": fmt.Sprintf("channel %d", ev.Channel)}},
				chromeEvent{Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
					Args: map[string]any{"name": fmt.Sprintf("dimm %d bank %d", ev.DIMM, ev.Bank)}},
			)
		}
		cat := "read"
		if ev.Write {
			cat = "write"
		} else if ev.SWPrefetch {
			cat = "sw-prefetch"
		}
		bd := ev.Breakdown()
		start := ev.Created
		for st, d := range bd {
			if d > 0 {
				out = append(out, chromeEvent{
					Name: Stage(st).String(),
					Cat:  cat,
					Ph:   "X",
					TS:   float64(start) / 1e6,
					Dur:  float64(d) / 1e6,
					PID:  tr.pid,
					TID:  tr.tid,
					Args: map[string]any{
						"req":    ev.ID,
						"addr":   fmt.Sprintf("%#x", ev.Addr),
						"core":   ev.Core,
						"ambHit": ev.AMBHit,
					},
				})
			}
			start += d
		}
	}
	// Stable ordering (metadata first, then by time) keeps output
	// diffable between runs.
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := out[i].Ph == "M", out[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return out[i].TS < out[j].TS
	})
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
	})
}
