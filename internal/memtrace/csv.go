package memtrace

import (
	"encoding/csv"
	"io"
	"strconv"
)

// timelineHeader lists the timeline CSV columns. The per-stage mean
// columns (mshr_ns .. north_ns) sum to avg_read_latency_ns: they are
// computed from the same exact picosecond sums over the same request set.
var timelineHeader = []string{
	"start_ns", "end_ns",
	"reads", "writes", "amb_hits", "amb_hit_rate",
	"avg_read_latency_ns",
	"mshr_ns", "queue_ns", "south_ns", "amb_ns", "dram_ns", "north_ns",
	"queue_depth",
	"north_util", "south_util", "dimmbus_util",
	"acts", "pres", "col_reads", "col_writes", "prefetch_accuracy",
}

// WriteTimelineCSV exports the epoch time-series as CSV, one row per
// epoch, suitable for spreadsheets, gnuplot or pandas.
func (s *Summary) WriteTimelineCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, ep := range s.Epochs {
		row := []string{
			f(ep.StartNS), f(ep.EndNS),
			i(ep.Reads), i(ep.Writes), i(ep.AMBHits), f(ep.AMBHitRate),
			f(ep.AvgReadLatencyNS),
			f(ep.StageMeanNS[StageMSHR]), f(ep.StageMeanNS[StageQueue]),
			f(ep.StageMeanNS[StageSouth]), f(ep.StageMeanNS[StageAMB]),
			f(ep.StageMeanNS[StageDRAM]), f(ep.StageMeanNS[StageNorth]),
			i(int64(ep.QueueDepth)),
			f(ep.NorthUtil), f(ep.SouthUtil), f(ep.DIMMBusUtil),
			i(ep.ACTs), i(ep.PREs), i(ep.ColReads), i(ep.ColWrites),
			f(ep.PrefetchAccuracy),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
