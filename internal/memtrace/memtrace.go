// Package memtrace is the observability layer of the memory pipeline: an
// optionally-enabled, low-overhead event recorder that stamps every memory
// request with a per-stage timestamp as it flows CPU → MSHR → controller
// queue → southbound link → AMB / DRAM bank → northbound return, so that
// each completed request carries a full latency breakdown (where did the
// cycles go: MSHR backpressure, controller queueing, channel contention,
// AMB service, DRAM core). On top of the raw events it maintains
//
//   - per-stage latency histograms, split by AMB hit vs. miss, surfaced in
//     system.Results as p50/p95/p99 breakdowns,
//   - an epoch sampler emitting a fixed-interval time-series of channel /
//     DIMM-bus utilization, queue depth, AMB hit rate and prefetch
//     accuracy (exportable as CSV, renderable with internal/textplot), and
//   - a Chrome trace_event JSON exporter (one track per channel/DIMM/bank,
//     one slice per request stage) loadable in Perfetto or chrome://tracing.
//
// Tracing is nil-safe and off the hot path when disabled: the controller
// holds a *Recorder that is nil unless config.Trace.Enabled, and every
// per-tick touch point is guarded by that single pointer check. The
// disabled-path cost is bounded by BenchmarkTraceDisabled (see DESIGN.md).
package memtrace

import (
	"fmt"
	"io"

	"fbdsim/internal/clock"
	"fbdsim/internal/stats"
	"fbdsim/internal/textplot"
)

// Stage identifies one segment of a request's lifecycle. The stages of a
// request form a partition of its end-to-end latency: adjacent timestamps
// telescope, so the per-stage durations sum exactly to Done - Created.
type Stage int

const (
	// StageMSHR is the time between MSHR allocation in the cache
	// hierarchy and acceptance into the controller's transaction buffer
	// (non-zero only under controller-queue backpressure).
	StageMSHR Stage = iota
	// StageQueue is the time spent in the controller's transaction buffer
	// (arrival to scheduler pick), including the fixed controller
	// pipeline overhead.
	StageQueue
	// StageSouth is the southbound / command path: waiting for a command
	// slot plus propagation to the AMB or DRAM command decoder.
	StageSouth
	// StageAMB is AMB-cache service time on prefetch hits: waiting for an
	// in-flight prefetched line to land (plus the full-latency penalty
	// under FBD-APFL). Zero on misses and writes.
	StageAMB
	// StageDRAM is the DRAM core: bank conflicts, precharge, activation,
	// column access, and DIMM-bus queueing, up to the first data beat.
	// For writes it extends to the last beat written into the array.
	StageDRAM
	// StageNorth is the northbound return: DIMM-bus streaming, northbound
	// frame slots and AMB hop delays until the line is back at the
	// controller. On the DDR2 baseline this is the shared data bus.
	StageNorth

	// NumStages is the number of lifecycle stages.
	NumStages
)

var stageNames = [NumStages]string{"mshr", "queue", "south", "amb", "dram", "north"}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("Stage(%d)", int(s))
	}
	return stageNames[s]
}

// Event is one completed memory request with its lifecycle timestamps.
// Timestamps are simulation time (picoseconds); zero-valued intermediate
// stamps are clamped into [Created, Done] by Breakdown, so a partially
// stamped event still yields a consistent decomposition.
type Event struct {
	ID   int64 `json:"id"`
	Addr int64 `json:"addr"`
	Core int   `json:"core"`

	Write      bool `json:"write,omitempty"`
	SWPrefetch bool `json:"sw_prefetch,omitempty"`
	AMBHit     bool `json:"amb_hit,omitempty"`

	Channel int `json:"channel"`
	DIMM    int `json:"dimm"`
	Bank    int `json:"bank"`

	// Created is MSHR allocation (or writeback generation) in the cache
	// hierarchy; Arrived is acceptance into the controller queue; Issued
	// is the scheduler pick; CmdAt is command arrival at the AMB / DRAM;
	// ServiceAt is the service point (first data beat on the DIMM bus for
	// DRAM accesses, data-ready for AMB hits); Done is data back at the
	// controller (reads) or written into the array (writes).
	Created   clock.Time `json:"created_ps"`
	Arrived   clock.Time `json:"arrived_ps"`
	Issued    clock.Time `json:"issued_ps"`
	CmdAt     clock.Time `json:"cmd_ps"`
	ServiceAt clock.Time `json:"service_ps"`
	Done      clock.Time `json:"done_ps"`
}

// EndToEnd returns the full lifecycle latency, Done - Created, clamped at
// zero. (A write folded into an earlier batch can carry Done < Arrived:
// the channel books the batch from its head's ready time, and late
// joiners complete with it.)
func (e *Event) EndToEnd() clock.Time {
	if e.Done <= e.Created {
		return 0
	}
	return e.Done - e.Created
}

// Breakdown splits the end-to-end latency into per-stage durations. The
// timestamps are clamped to be monotonically non-decreasing within
// [Created, Done], so every duration is non-negative and the durations sum
// to EndToEnd exactly — the invariant TestStageLatenciesSumToEndToEnd
// checks over random workloads.
func (e *Event) Breakdown() [NumStages]clock.Time {
	var bd [NumStages]clock.Time
	clamp := func(t, lo clock.Time) clock.Time {
		if t < lo {
			t = lo
		}
		if t > e.Done {
			t = e.Done
		}
		return t
	}
	t0 := e.Created
	if t0 > e.Done {
		t0 = e.Done
	}
	t1 := clamp(e.Arrived, t0)
	t2 := clamp(e.Issued, t1)
	t3 := clamp(e.CmdAt, t2)
	t4 := clamp(e.ServiceAt, t3)
	bd[StageMSHR] = t1 - t0
	bd[StageQueue] = t2 - t1
	bd[StageSouth] = t3 - t2
	switch {
	case e.Write:
		// A write's service point sits inside the DRAM operation; the
		// whole post-command segment is DRAM-core time.
		bd[StageDRAM] = e.Done - t3
	case e.AMBHit:
		bd[StageAMB] = t4 - t3
		bd[StageNorth] = e.Done - t4
	default:
		bd[StageDRAM] = t4 - t3
		bd[StageNorth] = e.Done - t4
	}
	return bd
}

// Gauges carries the cumulative pipeline counters the controller samples at
// each epoch boundary; the recorder differences consecutive samples to
// produce per-epoch rates and utilizations.
type Gauges struct {
	// QueueDepth is the instantaneous controller buffer occupancy
	// (reads + writes) at the sample point.
	QueueDepth int
	// NorthBusy, SouthBusy, DIMMBusBusy are cumulative link occupancy
	// times summed over channels (DIMMBusBusy over per-DIMM DDR buses).
	NorthBusy, SouthBusy, DIMMBusBusy clock.Time
	// ACT is the cumulative bank-activation count (bank-pressure proxy).
	ACT int64
	// PRE, ColRead and ColWrit are the cumulative precharge and column
	// access counts. Together with ACT they let a consumer difference the
	// Section 5.5 dynamic-energy estimate (internal/power) per epoch.
	PRE, ColRead, ColWrit int64
	// Prefetched and PrefetchHits are the cumulative AMB prefetch fills
	// and hits; their per-epoch ratio is the prefetch accuracy.
	Prefetched, PrefetchHits int64
}

// Sink receives live epoch rows as the recorder appends them, turning the
// post-mortem time-series into a streaming one (the telemetry hub attaches
// one per traced serving job). Both methods run on the simulation
// goroutine: implementations must be fast and must never block. A nil sink
// costs one pointer check per epoch flush — nothing per request.
type Sink interface {
	// EpochSample is called exactly when a row is appended to the epoch
	// series, with the appended row (rows dropped past MaxEpochs are not
	// delivered, keeping the stream a mirror of the retained series).
	EpochSample(Epoch)
	// WindowReset is called when the measurement window restarts (the
	// warmup boundary): every previously delivered epoch is discarded
	// from the recorder, and subscribers should do the same.
	WindowReset()
}

// Config sizes a Recorder. The zero value gets the documented defaults.
type Config struct {
	// Epoch is the time-series sampling interval (default 1 µs).
	Epoch clock.Time
	// MaxEvents bounds the retained per-request events; completions past
	// the cap still feed histograms and epochs but drop their event
	// record (default 65536).
	MaxEvents int
	// MaxEpochs bounds the retained time-series rows (default 8192).
	MaxEpochs int
	// Channels and DIMMBuses are the utilization denominators: logical
	// channels and total per-DIMM DDR buses (default 1 each).
	Channels, DIMMBuses int
}

func (c Config) norm() Config {
	if c.Epoch <= 0 {
		c.Epoch = clock.Microsecond
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 65536
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 8192
	}
	if c.Channels <= 0 {
		c.Channels = 1
	}
	if c.DIMMBuses <= 0 {
		c.DIMMBuses = c.Channels
	}
	return c
}

// Epoch is one fixed-interval sample of the pipeline's behaviour.
type Epoch struct {
	StartNS float64 `json:"start_ns"`
	EndNS   float64 `json:"end_ns"`

	Reads   int64 `json:"reads"`
	Writes  int64 `json:"writes"`
	AMBHits int64 `json:"amb_hits"`
	// AMBHitRate is AMBHits / Reads over the epoch.
	AMBHitRate float64 `json:"amb_hit_rate"`

	// AvgReadLatencyNS is the mean end-to-end latency of reads completed
	// in the epoch; the per-stage means below sum to it exactly.
	AvgReadLatencyNS float64            `json:"avg_read_latency_ns"`
	StageMeanNS      [NumStages]float64 `json:"stage_mean_ns"`

	// QueueDepth is the controller buffer occupancy at the epoch end.
	QueueDepth int `json:"queue_depth"`
	// NorthUtil, SouthUtil, DIMMBusUtil are busy fractions of the
	// northbound (read) path, southbound (write/command) path and the
	// per-DIMM DDR buses over the epoch.
	NorthUtil   float64 `json:"north_util"`
	SouthUtil   float64 `json:"south_util"`
	DIMMBusUtil float64 `json:"dimmbus_util"`

	// ACTs counts bank activations during the epoch; PREs the precharges;
	// ColReads / ColWrites the column accesses. They are the per-epoch
	// inputs of the Section 5.5 dynamic-energy estimate.
	ACTs      int64 `json:"acts"`
	PREs      int64 `json:"pres"`
	ColReads  int64 `json:"col_reads"`
	ColWrites int64 `json:"col_writes"`
	// PrefetchAccuracy is AMB prefetch hits / fills over the epoch
	// (zero when nothing was prefetched).
	PrefetchAccuracy float64 `json:"prefetch_accuracy"`
}

// epochAccum accumulates the current epoch; sums are exact picoseconds so
// the per-stage means provably add up to the end-to-end mean.
type epochAccum struct {
	start         clock.Time
	reads, writes int64
	ambHits       int64
	stageSum      [NumStages]clock.Time
	e2eSum        clock.Time
}

// Recorder collects events, per-stage histograms and the epoch time-series
// for one simulation run. It is single-threaded, like the simulator that
// feeds it. All methods are nil-safe: a nil *Recorder ignores every call,
// which is how tracing is compiled out of the pipeline when disabled.
type Recorder struct {
	cfg Config

	events  []Event
	dropped int64

	// hists[0] = all reads, hists[1] = AMB hits, hists[2] = misses; each
	// row holds NumStages stage histograms plus the end-to-end histogram
	// at index NumStages.
	hists [3][NumStages + 1]stats.Histogram

	writes int64

	start clock.Time
	cur   epochAccum
	prev  Gauges

	epochs        []Epoch
	droppedEpochs int64

	// sink, when non-nil, receives every appended epoch row live. Not
	// serialized by Snapshot/Restore: it is serving-side wiring, not
	// machine state.
	sink Sink
}

// New builds a Recorder. The caller seeds the gauge baseline with the first
// ResetMeasurement (or lets it default to zero).
func New(cfg Config) *Recorder {
	c := cfg.norm()
	return &Recorder{
		cfg:    c,
		events: make([]Event, 0, min(c.MaxEvents, 4096)),
	}
}

// Enabled reports whether the recorder is live (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetSink attaches (or, with nil, detaches) a live epoch sink. Nil-safe;
// call before simulation starts. The sink is invoked on the simulation
// goroutine at epoch boundaries only, never per request.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
}

// Complete records one finished request. Nil-safe.
func (r *Recorder) Complete(ev Event) {
	if r == nil {
		return
	}
	if len(r.events) < r.cfg.MaxEvents {
		r.events = append(r.events, ev)
	} else {
		r.dropped++
	}
	if ev.Write {
		r.writes++
		r.cur.writes++
		return
	}
	bd := ev.Breakdown()
	sel := 2 // miss
	if ev.AMBHit {
		sel = 1
	}
	for s := 0; s < int(NumStages); s++ {
		r.hists[0][s].Observe(bd[s])
		r.hists[sel][s].Observe(bd[s])
	}
	e2e := ev.EndToEnd()
	r.hists[0][NumStages].Observe(e2e)
	r.hists[sel][NumStages].Observe(e2e)

	r.cur.reads++
	if ev.AMBHit {
		r.cur.ambHits++
	}
	for s := range bd {
		r.cur.stageSum[s] += bd[s]
	}
	r.cur.e2eSum += e2e
}

// NeedSample reports whether the current epoch has run its course at time
// now. Nil-safe (false). The controller calls it once per memory tick —
// together with the nil check this is the entire hot-path cost of tracing.
func (r *Recorder) NeedSample(now clock.Time) bool {
	return r != nil && now >= r.cur.start+r.cfg.Epoch
}

// NextSampleAt returns the time at which the current epoch ends — the
// earliest instant NeedSample will report true. The event-driven system
// loop never fast-forwards past it, so epoch boundaries land on exactly
// the same memory tick as under the reference tick-every-cycle loop.
// Nil-safe (Infinity: a disabled recorder never constrains a skip).
func (r *Recorder) NextSampleAt() clock.Time {
	if r == nil {
		return clock.Infinity
	}
	return r.cur.start + r.cfg.Epoch
}

// Sample closes the current epoch at time now using the cumulative gauges
// g, appends the finished row to the time-series, and opens the next
// epoch. Nil-safe.
func (r *Recorder) Sample(now clock.Time, g Gauges) {
	if r == nil {
		return
	}
	r.flushEpoch(now, g)
	r.prev = g
	r.cur = epochAccum{start: now}
}

// flushEpoch converts the accumulated epoch into a row.
func (r *Recorder) flushEpoch(now clock.Time, g Gauges) {
	span := now - r.cur.start
	if span <= 0 {
		return
	}
	if len(r.epochs) >= r.cfg.MaxEpochs {
		r.droppedEpochs++
		return
	}
	ep := Epoch{
		StartNS:    r.cur.start.Nanoseconds(),
		EndNS:      now.Nanoseconds(),
		Reads:      r.cur.reads,
		Writes:     r.cur.writes,
		AMBHits:    r.cur.ambHits,
		QueueDepth: g.QueueDepth,
		ACTs:       g.ACT - r.prev.ACT,
		PREs:       g.PRE - r.prev.PRE,
		ColReads:   g.ColRead - r.prev.ColRead,
		ColWrites:  g.ColWrit - r.prev.ColWrit,
	}
	if ep.Reads > 0 {
		ep.AMBHitRate = float64(ep.AMBHits) / float64(ep.Reads)
		ep.AvgReadLatencyNS = r.cur.e2eSum.Nanoseconds() / float64(ep.Reads)
		for s := range r.cur.stageSum {
			ep.StageMeanNS[s] = r.cur.stageSum[s].Nanoseconds() / float64(ep.Reads)
		}
	}
	wall := float64(span)
	ep.NorthUtil = float64(g.NorthBusy-r.prev.NorthBusy) / (wall * float64(r.cfg.Channels))
	ep.SouthUtil = float64(g.SouthBusy-r.prev.SouthBusy) / (wall * float64(r.cfg.Channels))
	ep.DIMMBusUtil = float64(g.DIMMBusBusy-r.prev.DIMMBusBusy) / (wall * float64(r.cfg.DIMMBuses))
	if dp := g.Prefetched - r.prev.Prefetched; dp > 0 {
		ep.PrefetchAccuracy = float64(g.PrefetchHits-r.prev.PrefetchHits) / float64(dp)
	}
	r.epochs = append(r.epochs, ep)
	if r.sink != nil {
		r.sink.EpochSample(ep)
	}
}

// ResetMeasurement discards everything recorded so far and restarts the
// trace at time now with gauge baseline g — the system calls it at the
// warmup boundary so the trace covers exactly the measured window that
// Results reports. Nil-safe.
func (r *Recorder) ResetMeasurement(now clock.Time, g Gauges) {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.dropped = 0
	r.writes = 0
	for i := range r.hists {
		for j := range r.hists[i] {
			r.hists[i][j] = stats.Histogram{}
		}
	}
	r.epochs = r.epochs[:0]
	r.droppedEpochs = 0
	r.start = now
	r.cur = epochAccum{start: now}
	r.prev = g
	if r.sink != nil {
		r.sink.WindowReset()
	}
}

// StageStats summarizes one lifecycle stage's latency distribution.
type StageStats struct {
	Stage  string  `json:"stage"`
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  float64 `json:"max_ns"`
}

func stageStats(name string, h *stats.Histogram) StageStats {
	return StageStats{
		Stage:  name,
		Count:  h.Count(),
		MeanNS: h.Mean().Nanoseconds(),
		P50NS:  h.Percentile(0.50).Nanoseconds(),
		P95NS:  h.Percentile(0.95).Nanoseconds(),
		P99NS:  h.Percentile(0.99).Nanoseconds(),
		MaxNS:  h.Max().Nanoseconds(),
	}
}

// Summary is the rendered form of a Recorder: everything the CLI, the
// serving layer and the exporters need, JSON-serializable inside
// system.Results. TraceEvents is kept in memory for the exporters but
// excluded from JSON (it can be large; fetch it as a trace artifact).
type Summary struct {
	// StartNS / EndNS delimit the traced (post-warmup) window.
	StartNS float64 `json:"start_ns"`
	EndNS   float64 `json:"end_ns"`
	EpochNS float64 `json:"epoch_ns"`

	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	// Events / DroppedEvents count retained and capacity-dropped event
	// records; DroppedEpochs counts rows past the MaxEpochs cap.
	Events        int64 `json:"events"`
	DroppedEvents int64 `json:"dropped_events"`
	DroppedEpochs int64 `json:"dropped_epochs"`

	// Breakdown is the per-stage read-latency decomposition over all
	// reads; Hits and Misses split it by AMB-cache outcome. Each list
	// ends with a "total" (end-to-end) row.
	Breakdown []StageStats `json:"breakdown"`
	Hits      []StageStats `json:"hits,omitempty"`
	Misses    []StageStats `json:"misses,omitempty"`

	Epochs []Epoch `json:"epochs,omitempty"`

	TraceEvents []Event `json:"-"`
}

// Summarize closes the trailing partial epoch at time now and renders the
// Summary. Nil-safe (returns nil).
func (r *Recorder) Summarize(now clock.Time, g Gauges) *Summary {
	if r == nil {
		return nil
	}
	r.flushEpoch(now, g)
	r.prev = g
	r.cur = epochAccum{start: now}

	render := func(row *[NumStages + 1]stats.Histogram) []StageStats {
		if row[NumStages].Count() == 0 {
			return nil
		}
		out := make([]StageStats, 0, NumStages+1)
		for s := 0; s < int(NumStages); s++ {
			out = append(out, stageStats(Stage(s).String(), &row[s]))
		}
		out = append(out, stageStats("total", &row[NumStages]))
		return out
	}
	s := &Summary{
		StartNS:       r.start.Nanoseconds(),
		EndNS:         now.Nanoseconds(),
		EpochNS:       r.cfg.Epoch.Nanoseconds(),
		Reads:         r.hists[0][NumStages].Count(),
		Writes:        r.writes,
		Events:        int64(len(r.events)),
		DroppedEvents: r.dropped,
		DroppedEpochs: r.droppedEpochs,
		Breakdown:     render(&r.hists[0]),
		Hits:          render(&r.hists[1]),
		Misses:        render(&r.hists[2]),
		Epochs:        append([]Epoch(nil), r.epochs...),
		TraceEvents:   append([]Event(nil), r.events...),
	}
	return s
}

// Render writes a human-readable report: the per-stage breakdown table
// (split by AMB hit vs. miss) and a textplot timeline of the epoch series.
func (s *Summary) Render(w io.Writer, width int) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "trace window %.0f–%.0f ns: %d reads, %d writes (%d events kept, %d dropped)\n",
		s.StartNS, s.EndNS, s.Reads, s.Writes, s.Events, s.DroppedEvents)
	writeTable := func(title string, rows []StageStats) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(w, "%s\n", title)
		fmt.Fprintf(w, "  %-6s %8s %9s %9s %9s %9s %9s\n",
			"stage", "count", "mean ns", "p50 ns", "p95 ns", "p99 ns", "max ns")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-6s %8d %9.1f %9.1f %9.1f %9.1f %9.1f\n",
				r.Stage, r.Count, r.MeanNS, r.P50NS, r.P95NS, r.P99NS, r.MaxNS)
		}
	}
	writeTable("read latency breakdown (all reads)", s.Breakdown)
	writeTable("AMB-cache hits", s.Hits)
	writeTable("AMB-cache misses / no AMB", s.Misses)

	if len(s.Epochs) > 1 {
		pts := make([]textplot.Point, 0, len(s.Epochs))
		for _, ep := range s.Epochs {
			if ep.Reads > 0 {
				pts = append(pts, textplot.Point{X: ep.EndNS / 1e3, Y: ep.AvgReadLatencyNS, Glyph: 'l'})
			}
		}
		if len(pts) > 1 {
			fmt.Fprintln(w)
			textplot.Scatter(w, "avg read latency over time ('l')", "time (us)", "latency (ns)", pts, 64, 10)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
