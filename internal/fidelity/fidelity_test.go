package fidelity

import (
	"context"
	"strings"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/snapshot"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
		ok   bool
	}{
		{"", CycleAccurate, true},
		{"cycle-accurate", CycleAccurate, true},
		{"sampled", Sampled, true},
		{"analytic", Analytic, true},
		{"fast", "", false},
		{"SAMPLED", "", false},
	} {
		got, err := Parse(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("Parse(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if !Tier("").Valid() || Tier("fast").Valid() {
		t.Error("Valid() disagrees with Parse")
	}
	if Tier("").String() != "cycle-accurate" {
		t.Errorf("zero tier prints %q", Tier("").String())
	}
}

func TestKeyCompatibility(t *testing.T) {
	cfg := config.Default()
	bench := []string{"swim"}
	plain := snapshot.Fingerprint(cfg, bench)
	// The cycle-accurate key IS the historical fingerprint — both
	// spellings of the default.
	if Key("", cfg, bench) != plain || Key(CycleAccurate, cfg, bench) != plain {
		t.Error("cycle-accurate key must equal the bare snapshot fingerprint")
	}
	// Cheaper tiers are tagged and mutually distinct.
	ks, ka := Key(Sampled, cfg, bench), Key(Analytic, cfg, bench)
	if ks == plain || ka == plain || ks == ka {
		t.Errorf("tier keys not distinct: %q %q %q", plain, ks, ka)
	}
	if !strings.HasPrefix(ks, "sampled:") || !strings.HasPrefix(ka, "analytic:") {
		t.Errorf("tier keys not tagged: %q %q", ks, ka)
	}
}

func TestRunDispatch(t *testing.T) {
	cfg := config.Default()
	cfg.MaxInsts = 60_000
	cfg.WarmupInsts = 10_000
	ctx := context.Background()

	if _, err := Run(ctx, "nope", cfg, []string{"swim"}); err == nil {
		t.Fatal("unknown tier must error")
	}
	full, err := Run(ctx, CycleAccurate, cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Estimate != nil {
		t.Error("cycle-accurate results must not carry an Estimate")
	}
	sampled, err := Run(ctx, Sampled, cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Estimate == nil || sampled.Estimate.Tier != "sampled" {
		t.Errorf("sampled estimate marker missing: %+v", sampled.Estimate)
	}
	analytic, err := Run(ctx, Analytic, cfg, []string{"swim"})
	if err != nil {
		t.Fatal(err)
	}
	if analytic.Estimate == nil || analytic.Estimate.Tier != "analytic" {
		t.Errorf("analytic estimate marker missing: %+v", analytic.Estimate)
	}
}
