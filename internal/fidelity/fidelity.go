// Package fidelity names and dispatches the simulator's three fidelity
// tiers: the ordinary cycle-accurate run, the SMARTS-style sampled run
// (internal/sample — detailed measured windows stitched over functional
// fast-forward, ~10-50x cheaper at <2% IPC error) and the calibrated
// analytic queue model (internal/analytic — sub-10ms queries after a short
// probe). The tier is pure data — a string that travels through
// configuration files, sweep specs and the fbdserve JSON API — and this
// package is the single place it is parsed, cache-keyed and executed, so
// every layer (fbdsim.Run options, sweep shards, server jobs, the
// experiment harness) agrees on what each tier means.
package fidelity

import (
	"context"
	"fmt"

	"fbdsim/internal/analytic"
	"fbdsim/internal/config"
	"fbdsim/internal/sample"
	"fbdsim/internal/snapshot"
	"fbdsim/internal/system"
)

// Tier is one fidelity level. The zero value ("") means cycle-accurate:
// every API that grew a fidelity field after the fact treats absence as
// the full-detail default, so pre-existing JSON (sweep specs, journals,
// job requests) keeps its meaning.
type Tier string

const (
	// CycleAccurate is the ordinary full-detail simulation.
	CycleAccurate Tier = "cycle-accurate"
	// Sampled alternates functional warming with detailed measured
	// windows (internal/sample): ~10-50x fewer detailed instructions at
	// <2% total-IPC error on the seed workloads, with a confidence
	// interval on the estimate.
	Sampled Tier = "sampled"
	// Analytic answers from a calibrated M/D/1 queue model
	// (internal/analytic): one short probe per (config, workload), then
	// sub-10ms queries.
	Analytic Tier = "analytic"
)

// Tiers lists the valid tiers, cheapest last (display and flag help).
func Tiers() []Tier { return []Tier{CycleAccurate, Sampled, Analytic} }

// Parse maps a wire string to a Tier. The empty string is cycle-accurate
// (the backward-compatible default); anything else unknown is an error.
func Parse(s string) (Tier, error) {
	switch Tier(s) {
	case "", CycleAccurate:
		return CycleAccurate, nil
	case Sampled:
		return Sampled, nil
	case Analytic:
		return Analytic, nil
	}
	return "", fmt.Errorf("fidelity: unknown tier %q (want cycle-accurate, sampled or analytic)", s)
}

// Valid reports whether t is a known tier (the empty string counts, as
// the cycle-accurate default).
func (t Tier) Valid() bool {
	_, err := Parse(string(t))
	return err == nil
}

// String returns the wire form; the zero value prints as cycle-accurate.
func (t Tier) String() string {
	if t == "" {
		return string(CycleAccurate)
	}
	return string(t)
}

// Key returns the result-cache / journal identity of one (tier, config,
// workload) request. Cycle-accurate requests keep the bare snapshot
// fingerprint — the identity every existing cache, journal and job store
// was built on — so enabling tiers invalidates nothing; the cheaper tiers
// are tagged so their estimates can never be confused with (or served in
// place of) full-detail results.
func Key(t Tier, cfg config.Config, benchmarks []string) string {
	fp := snapshot.Fingerprint(cfg, benchmarks)
	if t == "" || t == CycleAccurate {
		return fp
	}
	return string(t) + ":" + fp
}

// Run executes one simulation request at tier t. Results from the cheaper
// tiers carry a non-nil Results.Estimate describing the estimation
// (tier name, confidence interval, cost accounting); cycle-accurate
// results do not, which is itself the marker of full detail.
func Run(ctx context.Context, t Tier, cfg config.Config, benchmarks []string) (system.Results, error) {
	switch t {
	case "", CycleAccurate:
		return system.RunWorkloadContext(ctx, cfg, benchmarks)
	case Sampled:
		return sample.Run(ctx, cfg, benchmarks, sample.Options{})
	case Analytic:
		return analytic.Run(ctx, cfg, benchmarks, analytic.Options{})
	}
	return system.Results{}, fmt.Errorf("fidelity: unknown tier %q", t)
}
