package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over worker IDs. Sweep points hash onto
// it by their result-cache key (sweep.Key), so each worker's single-flight
// LRU cache sees a stable shard of the keyspace: identical points land on
// the same worker run after run, and membership changes move only the
// points adjacent to the joining or leaving worker's virtual nodes.
//
// A Ring is immutable once built; the coordinator rebuilds one per grant
// round from the current live membership (building is O(members·replicas·
// log) and rounds are seconds apart, so rebuilds are cheaper than the
// bookkeeping for incremental updates would be).
type Ring struct {
	replicas int
	entries  []ringEntry // sorted by hash
	members  []string    // sorted, deduplicated
}

type ringEntry struct {
	hash uint64
	id   string
}

// DefaultRingReplicas is the virtual-node count per member: enough that
// the largest shard of a 3-worker ring stays within ~2× of fair.
const DefaultRingReplicas = 64

// NewRing builds a ring with the given virtual-node count per member
// (<= 0 uses DefaultRingReplicas). Duplicate members collapse to one.
func NewRing(replicas int, members []string) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, members: uniq}
	r.entries = make([]ringEntry, 0, len(uniq)*replicas)
	for _, id := range uniq {
		for v := 0; v < replicas; v++ {
			r.entries = append(r.entries, ringEntry{hash: hash64(id + "#" + strconv.Itoa(v)), id: id})
		}
	}
	sort.Slice(r.entries, func(i, k int) bool {
		if r.entries[i].hash != r.entries[k].hash {
			return r.entries[i].hash < r.entries[k].hash
		}
		return r.entries[i].id < r.entries[k].id // deterministic on (vanishingly rare) collisions
	})
	return r
}

// Members returns the ring's membership, sorted.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member owning key — the first virtual node at or
// clockwise after the key's hash — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.entries) == 0 {
		return ""
	}
	return r.entries[r.slot(key)].id
}

// Sequence returns every member in the key's preference order: the owner
// first, then each distinct member encountered walking the ring. A caller
// that cannot use the owner (banned, suspected down) takes the next
// member in the sequence, which keeps reassignment deterministic.
func (r *Ring) Sequence(key string) []string {
	if len(r.entries) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	start := r.slot(key)
	for i := 0; i < len(r.entries) && len(out) < len(r.members); i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if !seen[e.id] {
			seen[e.id] = true
			out = append(out, e.id)
		}
	}
	return out
}

// slot returns the index of the first entry at or after key's hash,
// wrapping past the end.
func (r *Ring) slot(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	if i == len(r.entries) {
		i = 0
	}
	return i
}

// hash64 is FNV-64a with a murmur3-style avalanche finalizer. Raw FNV on
// short, similar strings (vnode labels, sweep keys) leaves the high bits
// clustered — bad enough that a 3-member ring can give one member 3% of
// the keyspace — so the finalizer mixes every input bit into every output
// bit before the hash is used as a ring position.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
