package cluster

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"time"

	"fbdsim/internal/retry"
	"fbdsim/internal/sweep"
	"fbdsim/pkg/fbdclient"
)

// All coordinator↔worker HTTP in this package goes through the typed
// client in pkg/fbdclient: lease dispatch (HTTPExecutor) and the worker
// liveness loop (Agent) are thin orchestration over fbdclient.Client, so
// the cluster protocol has exactly one wire implementation.

// HTTPExecutor dispatches leases over POST /v1/cluster/execute and
// commits the worker's streamed NDJSON points. It is the production
// Executor of Coordinator.
type HTTPExecutor struct {
	// Client overrides the HTTP client (nil: fbdclient's shared default
	// with no timeout — lease lifetime is governed by the dispatch
	// context).
	Client *http.Client
	// ClusterKey authenticates lease dispatch to workers running in
	// multi-tenant mode (the shared cluster secret). Empty against
	// open-access workers.
	ClusterKey string
}

// Execute implements Executor. Points are committed as their lines
// arrive, so a stream severed mid-lease still commits its delivered
// prefix; a line without its newline (the worker died mid-record) is an
// error, never a half-parsed point. It never retries: lease re-issue is
// the coordinator's failure model.
func (e *HTTPExecutor) Execute(ctx context.Context, w WorkerInfo, lease Lease, commit func(sweep.Point)) error {
	api := &fbdclient.Client{
		BaseURL:    w.URL,
		APIKey:     e.ClusterKey,
		HTTPClient: e.Client,
	}
	return api.ExecuteLease(ctx, lease, commit)
}

// errUnknownWorker signals a heartbeat 404: the coordinator does not
// know us (it restarted, or evicted us); the agent re-joins immediately.
var errUnknownWorker = errors.New("coordinator does not recognize this worker")

// Agent is the worker side of the cluster protocol: it registers the
// local server with a coordinator and keeps heartbeating it. Lease
// execution itself is served by the local HTTP server's
// /v1/cluster/execute handler — the agent is only the liveness loop.
//
// The agent is deliberately stubborn: a lost coordinator (crash,
// partition) triggers re-join attempts with capped jittered backoff,
// forever, while the local server independently finishes and journals
// any lease it already accepted. That pairing is what lets a worker
// "finish its lease, journal locally, and re-register".
type Agent struct {
	// ID uniquely names this worker across the cluster (stable across
	// re-joins, unique per process).
	ID string
	// URL is the advertised base URL of the local server, where the
	// coordinator will dispatch leases.
	URL string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ClusterKey authenticates join/heartbeat calls to a coordinator
	// running in multi-tenant mode (the shared cluster secret).
	ClusterKey string
	// Client overrides the HTTP client (nil: fbdclient's shared default).
	Client *http.Client
	// Logger receives join/heartbeat transitions (nil: discard).
	Logger *slog.Logger
	// Retry backs off failed joins (zero value: 100ms doubling to 5s,
	// full jitter).
	Retry retry.Policy
	// HeartbeatEvery is the beat interval used until the coordinator
	// states its own in the join response (default 2s).
	HeartbeatEvery time.Duration
}

// api builds the typed client for the coordinator. MaxAttempts is 1:
// the agent owns its retry loop (join backoff, heartbeat strikes), and
// stacking the client's retries under it would stretch every failure
// detection window.
func (a *Agent) api() *fbdclient.Client {
	return &fbdclient.Client{
		BaseURL:     a.Coordinator,
		APIKey:      a.ClusterKey,
		HTTPClient:  a.Client,
		MaxAttempts: 1,
	}
}

// Run joins and heartbeats until ctx ends, re-joining whenever the
// coordinator is lost or forgets us. It always returns ctx's error.
func (a *Agent) Run(ctx context.Context) error {
	log := a.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	pol := a.Retry
	if pol.Initial <= 0 && pol.Max <= 0 {
		pol = retry.Policy{Initial: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: true}
	}
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		interval, err := a.join(ctx)
		if err != nil {
			attempt++
			log.Warn("cluster: join failed, backing off",
				"coordinator", a.Coordinator, "attempt", attempt, "err", err)
			if pol.Sleep(ctx, attempt) != nil {
				return ctx.Err()
			}
			continue
		}
		attempt = 0
		log.Info("cluster: joined coordinator",
			"coordinator", a.Coordinator, "worker", a.ID, "heartbeat", interval)
		if err := a.beat(ctx, interval); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			log.Warn("cluster: heartbeat lost, re-joining", "err", err)
		}
	}
}

// join registers with the coordinator and returns the heartbeat interval
// it demands.
func (a *Agent) join(ctx context.Context) (time.Duration, error) {
	jr, err := a.api().Join(ctx, JoinRequest{ID: a.ID, URL: a.URL})
	if err != nil {
		return 0, err
	}
	interval := time.Duration(jr.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = a.HeartbeatEvery
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return interval, nil
}

// beat heartbeats at interval until the context ends, the coordinator
// forgets us (re-join immediately), or three consecutive beats fail
// (coordinator unreachable; re-join with backoff).
func (a *Agent) beat(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		err := a.api().Heartbeat(ctx, a.ID)
		var apiErr *fbdclient.Error
		switch {
		case err == nil:
			fails = 0
		case errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound:
			// The coordinator answered but does not know us: re-join now.
			return errUnknownWorker
		default:
			if fails++; fails >= 3 {
				return err
			}
		}
	}
}
