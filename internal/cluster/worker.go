package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"fbdsim/internal/retry"
	"fbdsim/internal/sweep"
)

// sharedClient carries lease streams and heartbeats. No client timeout:
// a lease stream legitimately runs for minutes, and cancellation arrives
// through the request context.
var sharedClient = &http.Client{}

// HTTPExecutor dispatches leases over POST /v1/cluster/execute and
// decodes the worker's streamed NDJSON points. It is the production
// Executor of Coordinator.
type HTTPExecutor struct {
	// Client overrides the HTTP client (nil: a shared default with no
	// timeout — lease lifetime is governed by the dispatch context).
	Client *http.Client
}

// Execute implements Executor. Points are committed as their lines
// arrive, so a stream severed mid-lease still commits its delivered
// prefix; a line without its newline (the worker died mid-record) is an
// error, never a half-parsed point.
func (e *HTTPExecutor) Execute(ctx context.Context, w WorkerInfo, lease Lease, commit func(sweep.Point)) error {
	body, err := json.Marshal(lease)
	if err != nil {
		return fmt.Errorf("cluster: encode lease: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(w.URL, "/")+"/v1/cluster/execute", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: build lease request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := e.Client
	if client == nil {
		client = sharedClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: dispatch to %s: %w", w.ID, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: worker %s refused lease: %s: %s",
			w.ID, resp.Status, bytes.TrimSpace(msg))
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if errors.Is(err, io.EOF) {
			if len(bytes.TrimSpace(line)) > 0 {
				return fmt.Errorf("cluster: worker %s stream ended mid-record", w.ID)
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("cluster: read lease stream from %s: %w", w.ID, err)
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var p sweep.Point
		if uerr := json.Unmarshal(line, &p); uerr != nil {
			return fmt.Errorf("cluster: corrupt point from %s: %w", w.ID, uerr)
		}
		commit(p)
	}
}

// errUnknownWorker signals a heartbeat 404: the coordinator does not
// know us (it restarted, or evicted us); the agent re-joins immediately.
var errUnknownWorker = errors.New("coordinator does not recognize this worker")

// Agent is the worker side of the cluster protocol: it registers the
// local server with a coordinator and keeps heartbeating it. Lease
// execution itself is served by the local HTTP server's
// /v1/cluster/execute handler — the agent is only the liveness loop.
//
// The agent is deliberately stubborn: a lost coordinator (crash,
// partition) triggers re-join attempts with capped jittered backoff,
// forever, while the local server independently finishes and journals
// any lease it already accepted. That pairing is what lets a worker
// "finish its lease, journal locally, and re-register".
type Agent struct {
	// ID uniquely names this worker across the cluster (stable across
	// re-joins, unique per process).
	ID string
	// URL is the advertised base URL of the local server, where the
	// coordinator will dispatch leases.
	URL string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Client overrides the HTTP client (nil: shared default).
	Client *http.Client
	// Logger receives join/heartbeat transitions (nil: discard).
	Logger *slog.Logger
	// Retry backs off failed joins (zero value: 100ms doubling to 5s,
	// full jitter).
	Retry retry.Policy
	// HeartbeatEvery is the beat interval used until the coordinator
	// states its own in the join response (default 2s).
	HeartbeatEvery time.Duration
}

// Run joins and heartbeats until ctx ends, re-joining whenever the
// coordinator is lost or forgets us. It always returns ctx's error.
func (a *Agent) Run(ctx context.Context) error {
	log := a.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	pol := a.Retry
	if pol.Initial <= 0 && pol.Max <= 0 {
		pol = retry.Policy{Initial: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: true}
	}
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		interval, err := a.join(ctx)
		if err != nil {
			attempt++
			log.Warn("cluster: join failed, backing off",
				"coordinator", a.Coordinator, "attempt", attempt, "err", err)
			if pol.Sleep(ctx, attempt) != nil {
				return ctx.Err()
			}
			continue
		}
		attempt = 0
		log.Info("cluster: joined coordinator",
			"coordinator", a.Coordinator, "worker", a.ID, "heartbeat", interval)
		if err := a.beat(ctx, interval); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			log.Warn("cluster: heartbeat lost, re-joining", "err", err)
		}
	}
}

func (a *Agent) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return sharedClient
}

// join registers with the coordinator and returns the heartbeat interval
// it demands.
func (a *Agent) join(ctx context.Context) (time.Duration, error) {
	var jr JoinResponse
	err := a.post(ctx, "/v1/cluster/join", JoinRequest{ID: a.ID, URL: a.URL}, &jr)
	if err != nil {
		return 0, err
	}
	interval := time.Duration(jr.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = a.HeartbeatEvery
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return interval, nil
}

// beat heartbeats at interval until the context ends, the coordinator
// forgets us (re-join immediately), or three consecutive beats fail
// (coordinator unreachable; re-join with backoff).
func (a *Agent) beat(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		err := a.post(ctx, "/v1/cluster/heartbeat", HeartbeatRequest{ID: a.ID}, nil)
		switch {
		case err == nil:
			fails = 0
		case errors.Is(err, errUnknownWorker):
			return err
		default:
			if fails++; fails >= 3 {
				return err
			}
		}
	}
}

// post sends one JSON request to the coordinator, decoding a 200 body
// into out when non-nil. A 404 maps to errUnknownWorker.
func (a *Agent) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(a.Coordinator, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return errUnknownWorker
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
	}
	return nil
}
