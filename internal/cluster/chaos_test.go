// Chaos harness: the one test in the repo that kills real operating-system
// processes. TestMain re-execs the test binary as worker processes (the
// FBDSIM_CHAOS_* environment gates the branch), the parent runs an
// in-process coordinator, and the test SIGKILLs a worker that provably
// holds undelivered lease points mid-sweep. The sweep must still complete
// with a result set identical to a standalone single-process run, and the
// coordinator's failure counters must show the recovery actually happened
// (leases expired, points requeued) rather than the kill landing between
// leases.
//
// This lives in package cluster_test (external) because it drives the full
// simserver HTTP surface, and simserver imports cluster.
package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"fbdsim/internal/cluster"
	"fbdsim/internal/config"
	"fbdsim/internal/simserver"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
)

func TestMain(m *testing.M) {
	if os.Getenv("FBDSIM_CHAOS_WORKER") == "1" {
		runChaosWorker()
		return
	}
	os.Exit(m.Run())
}

// runChaosWorker is the re-exec'ed child: a worker simserver on an
// ephemeral port plus its cluster agent, running until the parent kills
// the process. It prints "ADDR <url>" so the parent knows where it lives.
//
// The simulation function is the real simulator behind an artificial
// per-point delay (FBDSIM_CHAOS_DELAY): results stay byte-identical to a
// plain run, but each point is slow enough that the parent can observe a
// lease in flight and SIGKILL us while points are provably undelivered.
func runChaosWorker() {
	delay, _ := time.ParseDuration(os.Getenv("FBDSIM_CHAOS_DELAY"))
	run := func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return system.Results{}, ctx.Err()
			}
		}
		return system.RunWorkloadContext(ctx, cfg, benchmarks)
	}
	s := simserver.New(simserver.Options{
		Workers:    2,
		Run:        run,
		Role:       "worker",
		JournalDir: os.Getenv("FBDSIM_CHAOS_DIR"),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos worker listen:", err)
		os.Exit(1)
	}
	go func() { _ = http.Serve(ln, s.Handler()) }()
	url := "http://" + ln.Addr().String()
	fmt.Printf("ADDR %s\n", url)

	agent := &cluster.Agent{
		ID:          os.Getenv("FBDSIM_CHAOS_ID"),
		URL:         url,
		Coordinator: os.Getenv("FBDSIM_CHAOS_COORD"),
	}
	_ = agent.Run(context.Background()) // until SIGKILL
}

// startChaosWorker spawns one worker process and returns its command
// handle once the worker has printed its address (i.e. is serving).
func startChaosWorker(t *testing.T, id, coordURL string, delay time.Duration) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FBDSIM_CHAOS_WORKER=1",
		"FBDSIM_CHAOS_COORD="+coordURL,
		"FBDSIM_CHAOS_ID="+id,
		"FBDSIM_CHAOS_DIR="+t.TempDir(),
		"FBDSIM_CHAOS_DELAY="+delay.String(),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker %s: %v", id, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addr <- rest
				break
			}
		}
		close(addr)
		// Keep draining so the child never blocks on a full stdout pipe.
		for sc.Scan() {
		}
	}()
	select {
	case a, ok := <-addr:
		if !ok || a == "" {
			t.Fatalf("worker %s exited before printing its address", id)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("worker %s did not come up within 30s", id)
	}
	return cmd
}

// chaosSweepBody is a real-simulator sweep: 2 configs x 2 workloads x
// 3 seeds = 12 points, leased in batches of 4 across 3 workers.
const chaosSweepBody = `{
	"name": "chaos",
	"configs": [{"name": "fbd", "preset": "fbd"}, {"name": "ap", "preset": "fbd-ap"}],
	"workloads": [{"benchmarks": ["swim"]}, {"benchmarks": ["mgrid"]}],
	"seeds": [1, 2, 3],
	"max_insts": 20000
}`

type sweepStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct {
		Total     int `json:"total"`
		Completed int `json:"completed"`
		Failed    int `json:"failed"`
	} `json:"progress"`
}

func submitSweep(t *testing.T, baseURL, body string) sweepStatus {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit = %d (%+v), want 202", resp.StatusCode, v)
	}
	return v
}

func waitSweepDone(t *testing.T, baseURL, id string, timeout time.Duration) sweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(baseURL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v sweepStatus
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done":
			return v
		case "failed", "cancelled":
			t.Fatalf("sweep %s reached %q (error %q), want done", id, v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %q after %s (%+v)", id, v.State, timeout, v.Progress)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// fetchSweepPoints reads the sweep's NDJSON results, sorted by index.
func fetchSweepPoints(t *testing.T, baseURL, id string) []sweep.Point {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pts []sweep.Point
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Bytes())
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, k int) bool { return pts[i].Index < pts[k].Index })
	return pts
}

// TestChaosSIGKILLWorkerMidSweep is the headline fault-tolerance proof:
// three worker processes, one SIGKILLed while it holds >= 2 undelivered
// points, and the distributed result set must still be identical to a
// standalone run, with the coordinator's counters showing the lease
// actually expired and its remainder was requeued.
func TestChaosSIGKILLWorkerMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test spawns and kills worker processes")
	}

	co := cluster.NewCoordinator(cluster.Options{
		LeaseTTL:         3 * time.Second,
		HeartbeatEvery:   200 * time.Millisecond,
		HeartbeatTimeout: time.Second,
		BatchPoints:      4,
		SpeculateAfter:   time.Hour, // isolate death recovery from speculation
	})
	srv := simserver.New(simserver.Options{
		Workers:     2,
		Coordinator: co,
		JournalDir:  t.TempDir(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})

	procs := make(map[string]*exec.Cmd, 3)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("chaos-w%d", i)
		procs[id] = startChaosWorker(t, id, ts.URL, 300*time.Millisecond)
	}
	waitLive := time.Now().Add(15 * time.Second)
	for co.LiveWorkerCount() < 3 {
		if time.Now().After(waitLive) {
			t.Fatalf("only %d of 3 workers became live", co.LiveWorkerCount())
		}
		time.Sleep(10 * time.Millisecond)
	}

	v := submitSweep(t, ts.URL, chaosSweepBody)

	// Find a worker that provably holds undelivered points, then SIGKILL
	// it. Requiring PendingPoints >= 2 guarantees the kill interrupts a
	// lease (at least one point can never have been delivered), so the
	// expiry/requeue counters asserted below must move.
	var victim string
	hunt := time.Now().Add(15 * time.Second)
	for victim == "" {
		if time.Now().After(hunt) {
			t.Fatalf("no worker accumulated >= 2 pending points; workers: %+v", co.Workers())
		}
		for _, w := range co.Workers() {
			if w.Live && w.ActiveLeases >= 1 && w.PendingPoints >= 2 {
				victim = w.ID
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Logf("SIGKILLing %s mid-lease", victim)
	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	_ = procs[victim].Wait()

	final := waitSweepDone(t, ts.URL, v.ID, 90*time.Second)
	if final.Progress.Completed != 12 || final.Progress.Failed != 0 {
		t.Fatalf("progress = %+v, want 12 completed / 0 failed", final.Progress)
	}
	got := fetchSweepPoints(t, ts.URL, v.ID)

	// Reference: the identical sweep on a standalone in-process server
	// running the plain simulator. Byte-identical results prove both that
	// no point was lost or doubled and that the artificial worker delay
	// changed nothing but timing.
	ref := simserver.New(simserver.Options{Workers: 4})
	rts := httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		rts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = ref.Shutdown(ctx)
	})
	rv := submitSweep(t, rts.URL, chaosSweepBody)
	waitSweepDone(t, rts.URL, rv.ID, 90*time.Second)
	want := fetchSweepPoints(t, rts.URL, rv.ID)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed results differ from standalone run\ngot:  %+v\nwant: %+v", got, want)
	}

	cnt := co.Counters()
	if cnt.LeasesExpired < 1 {
		t.Errorf("LeasesExpired = %d, want >= 1 (the victim's lease must not have completed)", cnt.LeasesExpired)
	}
	if cnt.PointsRequeued < 1 {
		t.Errorf("PointsRequeued = %d, want >= 1 (the victim's undelivered points must requeue)", cnt.PointsRequeued)
	}
	if lost := cnt.WorkersLost; lost < 1 {
		t.Errorf("WorkersLost = %d, want >= 1", lost)
	}
}
