// Package cluster turns the sweep engine into a fault-tolerant
// distributed system: a coordinator shards a sweep's grid points across N
// worker processes over the serving layer's streaming-NDJSON API, designed
// failure-first.
//
// The unit of distribution is the lease: a batch of sweep.Key-addressed
// points (sweep.PointDef) handed to one worker with a no-progress
// deadline. Points are assigned by consistent hashing over their result
// keys, so each worker's single-flight dedupe cache naturally owns a
// stable shard of the keyspace. The coordinator tracks worker liveness
// via heartbeats; on lease expiry, worker death or connection loss it
// re-queues every point the lease did not deliver. Results commit exactly
// once: the first delivery of a point claims its grid index and lands in
// the sweep's fsynced NDJSON journal; later deliveries of the same index
// (requeue races, speculative re-issue) are counted and dropped. The
// final result set is therefore bit-identical to a single-process run —
// the same guarantee the journal already gives kill/resume.
//
// Failure matrix (see DESIGN.md §13 for the full argument):
//
//   - Worker death: heartbeats stop and open connections break; every
//     unjournaled point of its leases re-queues to the surviving ring.
//   - Coordinator death: workers finish their in-flight leases, journal
//     results locally, and keep trying to re-register; resubmitting the
//     sweep on a restarted coordinator replays its journal and re-runs
//     only what is missing (workers answer replayed points from their
//     local journals without re-simulating).
//   - Partition: indistinguishable from worker death on the coordinator
//     side (points re-queue); the isolated worker finishes and journals
//     its lease, then re-registers when the partition heals. Duplicated
//     work is absorbed by exactly-once commit.
//   - Straggler: when the queue is otherwise empty, a lease stalled past
//     the speculation threshold is re-issued to an idle worker; first
//     delivery wins, the loser's results are dropped as duplicates.
package cluster

import (
	"fbdsim/pkg/fbdclient"
)

// The wire types of the cluster protocol are defined once, in
// pkg/fbdclient, so the coordinator, the worker agent and external tools
// compile against a single contract. The aliases below keep this
// package's vocabulary (cluster.Lease, cluster.WorkerInfo, ...) intact.

// Lease is one batch of grid points assigned to one worker: the
// coordinator→worker wire format of POST /v1/cluster/execute.
type Lease = fbdclient.Lease

// JoinRequest registers a worker with the coordinator
// (POST /v1/cluster/join).
type JoinRequest = fbdclient.JoinRequest

// JoinResponse tells the joining worker the coordinator's expectations.
type JoinResponse = fbdclient.JoinResponse

// HeartbeatRequest is the worker liveness beacon
// (POST /v1/cluster/heartbeat).
type HeartbeatRequest = fbdclient.HeartbeatRequest

// WorkerInfo is one worker's row in the coordinator's membership view
// (GET /v1/cluster and the dashboard panel).
type WorkerInfo = fbdclient.WorkerInfo

// Counters is the coordinator's failure-visibility surface, exported as
// cluster_* metrics.
type Counters = fbdclient.Counters
