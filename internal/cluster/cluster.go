// Package cluster turns the sweep engine into a fault-tolerant
// distributed system: a coordinator shards a sweep's grid points across N
// worker processes over the serving layer's streaming-NDJSON API, designed
// failure-first.
//
// The unit of distribution is the lease: a batch of sweep.Key-addressed
// points (sweep.PointDef) handed to one worker with a no-progress
// deadline. Points are assigned by consistent hashing over their result
// keys, so each worker's single-flight dedupe cache naturally owns a
// stable shard of the keyspace. The coordinator tracks worker liveness
// via heartbeats; on lease expiry, worker death or connection loss it
// re-queues every point the lease did not deliver. Results commit exactly
// once: the first delivery of a point claims its grid index and lands in
// the sweep's fsynced NDJSON journal; later deliveries of the same index
// (requeue races, speculative re-issue) are counted and dropped. The
// final result set is therefore bit-identical to a single-process run —
// the same guarantee the journal already gives kill/resume.
//
// Failure matrix (see DESIGN.md §13 for the full argument):
//
//   - Worker death: heartbeats stop and open connections break; every
//     unjournaled point of its leases re-queues to the surviving ring.
//   - Coordinator death: workers finish their in-flight leases, journal
//     results locally, and keep trying to re-register; resubmitting the
//     sweep on a restarted coordinator replays its journal and re-runs
//     only what is missing (workers answer replayed points from their
//     local journals without re-simulating).
//   - Partition: indistinguishable from worker death on the coordinator
//     side (points re-queue); the isolated worker finishes and journals
//     its lease, then re-registers when the partition heals. Duplicated
//     work is absorbed by exactly-once commit.
//   - Straggler: when the queue is otherwise empty, a lease stalled past
//     the speculation threshold is re-issued to an idle worker; first
//     delivery wins, the loser's results are dropped as duplicates.
package cluster

import (
	"time"

	"fbdsim/internal/sweep"
)

// Lease is one batch of grid points assigned to one worker: the
// coordinator→worker wire format of POST /v1/cluster/execute. Sweep and
// Fingerprint identify the sweep spec (naming the worker's local journal
// and guarding it against cross-sweep mixing); Points carry everything
// needed to run each shard without the spec.
type Lease struct {
	ID          string           `json:"id"`
	Sweep       string           `json:"sweep"`
	Fingerprint string           `json:"fingerprint"`
	Points      []sweep.PointDef `json:"points"`
}

// JoinRequest registers a worker with the coordinator
// (POST /v1/cluster/join). URL is the worker's advertised base URL, where
// the coordinator dispatches leases.
type JoinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// JoinResponse tells the joining worker the coordinator's expectations.
type JoinResponse struct {
	// HeartbeatMS is the interval the worker must beat at; missing a few
	// marks it dead and re-queues its leases.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// LeaseTTLMS is the no-progress deadline applied to its leases
	// (informational).
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// HeartbeatRequest is the worker liveness beacon
// (POST /v1/cluster/heartbeat). A coordinator that does not recognize ID
// answers 404 and the worker re-joins — the recovery path after a
// coordinator restart.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

// WorkerInfo is one worker's row in the coordinator's membership view
// (GET /v1/cluster and the dashboard panel).
type WorkerInfo struct {
	ID            string    `json:"id"`
	URL           string    `json:"url"`
	Joined        time.Time `json:"joined"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	// Live reports whether the worker is currently eligible for leases:
	// heartbeating within the timeout and with no dispatch failure newer
	// than its last heartbeat.
	Live bool `json:"live"`
	// ActiveLeases counts leases currently dispatched to the worker;
	// PendingPoints the points in them not yet committed; PointsDone the
	// worker's lifetime committed points.
	ActiveLeases  int   `json:"active_leases"`
	PendingPoints int   `json:"pending_points"`
	PointsDone    int64 `json:"points_done"`
}

// Counters is the coordinator's failure-visibility surface, exported as
// cluster_* metrics. LeasesExpired counts every lease that ended without
// delivering all its points — deadline expiry, worker death and
// connection loss alike — because each of those is the same event from
// the sweep's perspective: a broken lease whose remainder re-queued.
type Counters struct {
	WorkersJoined    int64 `json:"workers_joined"`
	WorkersLost      int64 `json:"workers_lost"`
	LeasesGranted    int64 `json:"leases_granted"`
	LeasesExpired    int64 `json:"leases_expired"`
	PointsRequeued   int64 `json:"points_requeued"`
	PointsDuplicate  int64 `json:"points_duplicate"`
	LeasesSpeculated int64 `json:"leases_speculated"`
}
