package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"fbdsim/internal/config"
	"fbdsim/internal/retry"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
	"fbdsim/internal/workload"
)

// testSpec builds a small deterministic grid (nConfigs × nWorkloads).
func testSpec(nConfigs, nWorkloads int) sweep.Spec {
	var cfgs []sweep.NamedConfig
	for i := 0; i < nConfigs; i++ {
		c := config.Default()
		c.Seed = int64(i + 1)
		cfgs = append(cfgs, sweep.NamedConfig{Name: fmt.Sprintf("cfg-%d", i), Config: c})
	}
	var wls []workload.Workload
	for i := 0; i < nWorkloads; i++ {
		wls = append(wls, workload.Workload{
			Name:       fmt.Sprintf("wl-%d", i),
			Benchmarks: []string{"swim", "mgrid"}[:i%2+1],
		})
	}
	return sweep.Spec{
		Name:        "cluster-test",
		Configs:     cfgs,
		Workloads:   wls,
		MaxInsts:    10_000,
		WarmupInsts: 1_000,
	}
}

// pointFor is the fake workers' deterministic "simulation": a pure
// function of the point definition, so any worker (or a duplicate
// delivery) produces the identical point.
func pointFor(d sweep.PointDef) sweep.Point {
	return sweep.Point{
		Index:    d.Index,
		Config:   d.Config,
		Workload: d.Workload,
		Seed:     d.Seed,
		Key:      d.Key,
		Results:  system.Results{Cycles: int64(d.Index)*1000 + 7, Reads: d.Cfg.Seed * 3},
	}
}

func deliverAll(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
	for _, d := range lease.Points {
		if err := ctx.Err(); err != nil {
			return err
		}
		commit(pointFor(d))
	}
	return nil
}

// fakeExec scripts per-worker behavior; unscripted workers deliver every
// leased point instantly.
type fakeExec struct {
	mu     sync.Mutex
	behave map[string]func(ctx context.Context, lease Lease, commit func(sweep.Point)) error
	leases map[string]int // worker → leases dispatched
}

func newFakeExec() *fakeExec {
	return &fakeExec{
		behave: make(map[string]func(context.Context, Lease, func(sweep.Point)) error),
		leases: make(map[string]int),
	}
}

func (f *fakeExec) set(worker string, fn func(context.Context, Lease, func(sweep.Point)) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.behave[worker] = fn
}

func (f *fakeExec) leaseCount(worker string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leases[worker]
}

func (f *fakeExec) Execute(ctx context.Context, w WorkerInfo, lease Lease, commit func(sweep.Point)) error {
	f.mu.Lock()
	f.leases[w.ID]++
	fn := f.behave[w.ID]
	f.mu.Unlock()
	if fn == nil {
		return deliverAll(ctx, lease, commit)
	}
	return fn(ctx, lease, commit)
}

// testOpts are coordinator options shrunk to test time scales.
func testOpts(exec Executor) Options {
	return Options{
		LeaseTTL:         500 * time.Millisecond,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		BatchPoints:      2,
		SpeculateAfter:   time.Hour, // off unless a test opts in
		DispatchAttempts: 2,
		Retry:            retry.Policy{Initial: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Executor:         exec,
	}
}

// keepAlive heartbeats the given workers every 20ms until the returned
// stop func is called.
func keepAlive(c *Coordinator, ids ...string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				for _, id := range ids {
					c.Heartbeat(id)
				}
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// execute runs the sweep on c and returns the emitted points sorted by
// index.
func execute(t *testing.T, c *Coordinator, spec sweep.Spec) []sweep.Point {
	t.Helper()
	run, err := c.NewRun(spec)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var mu sync.Mutex
	var got []sweep.Point
	if err := run.Execute(ctx, func(p sweep.Point) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sort.Slice(got, func(i, k int) bool { return got[i].Index < got[k].Index })
	return got
}

// wantPoints is the full expected result set of spec under the fake
// workers' pointFor simulation.
func wantPoints(spec sweep.Spec) []sweep.Point {
	var out []sweep.Point
	for _, d := range spec.Points() {
		out = append(out, pointFor(d))
	}
	return out
}

func TestClusterSweepAllPointsExactlyOnce(t *testing.T) {
	exec := newFakeExec()
	c := NewCoordinator(testOpts(exec))
	c.Join("w0", "fake://w0")
	c.Join("w1", "fake://w1")
	defer keepAlive(c, "w0", "w1")()

	spec := testSpec(3, 2) // 6 points
	got := execute(t, c, spec)
	if want := wantPoints(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("emitted points differ from expected grid\ngot:  %+v\nwant: %+v", got, want)
	}
	if n := c.Counters().LeasesGranted; n < 3 { // 6 points / batch 2
		t.Fatalf("LeasesGranted = %d, want >= 3", n)
	}
	// Both workers should have seen work (the ring spreads 6 keys).
	if exec.leaseCount("w0")+exec.leaseCount("w1") < 3 {
		t.Fatalf("leases: w0=%d w1=%d", exec.leaseCount("w0"), exec.leaseCount("w1"))
	}
}

// A worker that delivers every point twice (requeue race, retried
// dispatch) must not double-emit: commit claims each index once.
func TestClusterDuplicateDeliveriesDropped(t *testing.T) {
	exec := newFakeExec()
	dup := func(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
		for _, d := range lease.Points {
			commit(pointFor(d))
			commit(pointFor(d))
		}
		return nil
	}
	c := NewCoordinator(testOpts(exec))
	exec.set("w0", dup)
	exec.set("w1", dup)
	c.Join("w0", "fake://w0")
	c.Join("w1", "fake://w1")
	defer keepAlive(c, "w0", "w1")()

	spec := testSpec(2, 2)
	got := execute(t, c, spec)
	if want := wantPoints(spec); !reflect.DeepEqual(got, want) {
		t.Fatal("duplicate deliveries leaked into the emitted stream")
	}
	if n := c.Counters().PointsDuplicate; n != int64(len(got)) {
		t.Fatalf("PointsDuplicate = %d, want %d", n, len(got))
	}
}

// A hung worker — accepts leases, heartbeats happily, never delivers —
// must lose its leases to the no-progress TTL, and the ban list must
// push the requeued points to the healthy worker instead of hashing them
// straight back.
func TestClusterHungWorkerLeaseExpiresAndRequeues(t *testing.T) {
	exec := newFakeExec()
	exec.set("hung", func(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
		<-ctx.Done()
		return ctx.Err()
	})
	opts := testOpts(exec)
	opts.LeaseTTL = 200 * time.Millisecond
	c := NewCoordinator(opts)
	c.Join("hung", "fake://hung")
	c.Join("ok", "fake://ok")
	defer keepAlive(c, "hung", "ok")()

	spec := testSpec(3, 2)
	got := execute(t, c, spec)
	if want := wantPoints(spec); !reflect.DeepEqual(got, want) {
		t.Fatal("sweep did not recover the hung worker's points")
	}
	ctr := c.Counters()
	if ctr.LeasesExpired == 0 {
		t.Fatalf("LeasesExpired = 0, want > 0 (counters: %+v)", ctr)
	}
	if ctr.PointsRequeued == 0 {
		t.Fatalf("PointsRequeued = 0, want > 0 (counters: %+v)", ctr)
	}
}

// A worker whose heartbeats stop (process death) must be declared dead
// and its leases' points requeued to the survivor.
func TestClusterWorkerDeathRequeues(t *testing.T) {
	exec := newFakeExec()
	dead := make(chan struct{})
	exec.set("victim", func(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
		// Deliver the first point, then die mid-lease.
		if len(lease.Points) > 0 {
			commit(pointFor(lease.Points[0]))
		}
		<-dead
		return errors.New("connection reset")
	})
	opts := testOpts(exec)
	c := NewCoordinator(opts)
	c.Join("victim", "fake://victim")
	c.Join("ok", "fake://ok")
	stopVictim := keepAlive(c, "victim")
	defer keepAlive(c, "ok")()

	go func() {
		time.Sleep(150 * time.Millisecond)
		stopVictim() // heartbeats stop...
		close(dead)  // ...and the in-flight connection breaks
	}()

	spec := testSpec(3, 2)
	got := execute(t, c, spec)
	if want := wantPoints(spec); !reflect.DeepEqual(got, want) {
		t.Fatal("sweep did not recover the dead worker's points")
	}
	ctr := c.Counters()
	if ctr.PointsRequeued == 0 {
		t.Fatalf("PointsRequeued = 0, want > 0 (counters: %+v)", ctr)
	}
	if ctr.WorkersLost == 0 {
		t.Fatalf("WorkersLost = 0, want > 0 (counters: %+v)", ctr)
	}
}

// With an empty queue and one straggling lease, the coordinator must
// speculatively re-issue the remainder to an idle worker; the fast
// worker's delivery wins and the straggler's late duplicates are
// dropped.
func TestClusterSpeculativeReissue(t *testing.T) {
	exec := newFakeExec()
	release := make(chan struct{})
	exec.set("slow", func(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
		select {
		case <-release:
		case <-ctx.Done():
			return ctx.Err()
		}
		return deliverAll(ctx, lease, commit)
	})
	opts := testOpts(exec)
	opts.SpeculateAfter = 150 * time.Millisecond
	opts.LeaseTTL = time.Hour // isolate speculation from expiry
	c := NewCoordinator(opts)
	c.Join("slow", "fake://slow")
	c.Join("fast", "fake://fast")
	defer keepAlive(c, "slow", "fast")()
	defer close(release)

	spec := testSpec(3, 2)
	got := execute(t, c, spec)
	if want := wantPoints(spec); !reflect.DeepEqual(got, want) {
		t.Fatal("speculation changed the result set")
	}
	if n := c.Counters().LeasesSpeculated; n == 0 {
		t.Fatal("LeasesSpeculated = 0, want > 0")
	}
}

// A journaled cluster sweep interrupted and re-run must replay committed
// points without re-dispatching them, and the merged output must be
// bit-identical to an unbroken run.
func TestClusterJournalResumeExactlyOnce(t *testing.T) {
	spec := testSpec(3, 2) // 6 points
	ref := wantPoints(spec)
	journal := filepath.Join(t.TempDir(), "cluster.ndjson")

	// Phase 1: a worker that delivers only the first point of each lease
	// then breaks, under a single-attempt dispatch policy — some points
	// commit and journal, the rest would requeue; cancel the run after
	// the first few commits.
	exec1 := newFakeExec()
	var committed sync.WaitGroup
	committed.Add(2)
	var once sync.Once
	exec1.set("w0", func(ctx context.Context, lease Lease, commit func(sweep.Point)) error {
		commit(pointFor(lease.Points[0]))
		once.Do(func() { committed.Done(); committed.Done() })
		<-ctx.Done()
		return ctx.Err()
	})
	c1 := NewCoordinator(testOpts(exec1))
	c1.Join("w0", "fake://w0")
	stop1 := keepAlive(c1, "w0")
	run1, err := c1.NewRun(withJournal(spec, journal))
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		_ = run1.Execute(ctx1, func(sweep.Point) {})
	}()
	committed.Wait()
	cancel1()
	<-done1
	stop1()

	// Phase 2: fresh coordinator, healthy worker. Journal replays what
	// phase 1 committed; only the remainder is dispatched.
	exec2 := newFakeExec()
	c2 := NewCoordinator(testOpts(exec2))
	c2.Join("w1", "fake://w1")
	defer keepAlive(c2, "w1")()
	run2, err := c2.NewRun(withJournal(spec, journal))
	if err != nil {
		t.Fatalf("NewRun phase 2: %v", err)
	}
	var mu sync.Mutex
	var got []sweep.Point
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := run2.Execute(ctx2, func(p sweep.Point) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Execute phase 2: %v", err)
	}
	sort.Slice(got, func(i, k int) bool { return got[i].Index < got[k].Index })
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("resumed cluster sweep differs from reference\ngot:  %+v\nwant: %+v", got, ref)
	}
	prog := run2.Progress()
	if prog.Replayed == 0 {
		t.Fatal("phase 2 replayed nothing; journal was not used")
	}
	if prog.Completed != len(ref) {
		t.Fatalf("Completed = %d, want %d", prog.Completed, len(ref))
	}
}

// A run with no live workers waits instead of failing, and proceeds the
// moment one joins.
func TestClusterRunWaitsForFirstWorker(t *testing.T) {
	exec := newFakeExec()
	c := NewCoordinator(testOpts(exec))
	spec := testSpec(1, 2)
	run, err := c.NewRun(spec)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var mu sync.Mutex
	var got []sweep.Point
	done := make(chan error, 1)
	go func() {
		done <- run.Execute(ctx, func(p sweep.Point) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
		})
	}()
	select {
	case err := <-done:
		t.Fatalf("run finished with no workers: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
	c.Join("late", "fake://late")
	defer keepAlive(c, "late")()
	if err := <-done; err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(got) != run.Total() {
		t.Fatalf("emitted %d points, want %d", len(got), run.Total())
	}
}

func TestClusterExecuteTwiceRejected(t *testing.T) {
	c := NewCoordinator(testOpts(newFakeExec()))
	c.Join("w0", "fake://w0")
	defer keepAlive(c, "w0")()
	run, err := c.NewRun(testSpec(1, 1))
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	ctx := context.Background()
	if err := run.Execute(ctx, func(sweep.Point) {}); err != nil {
		t.Fatalf("first Execute: %v", err)
	}
	if err := run.Execute(ctx, func(sweep.Point) {}); err == nil {
		t.Fatal("second Execute succeeded, want error")
	}
}

func TestHeartbeatUnknownWorker(t *testing.T) {
	c := NewCoordinator(testOpts(newFakeExec()))
	if c.Heartbeat("ghost") {
		t.Fatal("heartbeat for unknown worker accepted")
	}
	c.Join("real", "fake://real")
	if !c.Heartbeat("real") {
		t.Fatal("heartbeat for joined worker rejected")
	}
}

func withJournal(spec sweep.Spec, path string) sweep.Spec {
	spec.Journal = path
	return spec
}
