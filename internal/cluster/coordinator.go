package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fbdsim/internal/retry"
	"fbdsim/internal/sweep"
)

// Executor dispatches one lease to one worker and calls commit for every
// point the worker streams back, in arrival order, on the dispatching
// goroutine. A nil return means the worker's stream ended cleanly — it
// does NOT promise every point was delivered (a shutting-down worker
// finishes what it started and closes the stream); the coordinator
// re-queues whatever is missing either way. The default is HTTPExecutor;
// tests substitute fakes to script worker failures.
type Executor interface {
	Execute(ctx context.Context, w WorkerInfo, lease Lease, commit func(sweep.Point)) error
}

// Options tunes the coordinator's failure detection. The zero value is
// production-ready; tests shrink the intervals.
type Options struct {
	// LeaseTTL is the no-progress deadline: a lease that has not
	// delivered a point for this long is cancelled and its remainder
	// re-queued (default 30s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the beat interval told to joining workers
	// (default 2s); HeartbeatTimeout marks a worker dead when its last
	// beat is older than this (default 3×HeartbeatEvery).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// BatchPoints caps the points per lease (default 16). Smaller leases
	// re-queue less on failure; larger ones amortize dispatch overhead.
	BatchPoints int
	// SpeculateAfter re-issues a stalled lease's remainder to an idle
	// worker when nothing else is pending (default LeaseTTL/2).
	SpeculateAfter time.Duration
	// DispatchAttempts caps Execute tries per lease (default 3), backed
	// off by Retry (default: 100ms doubling to 2s, full jitter).
	DispatchAttempts int
	Retry            retry.Policy
	// RingReplicas is the consistent-hash virtual-node count
	// (default DefaultRingReplicas).
	RingReplicas int
	// Executor dispatches leases (default: HTTPExecutor over the
	// workers' advertised URLs).
	Executor Executor
	// Logger receives membership and failure events (default: discard).
	Logger *slog.Logger
}

func (o Options) norm() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatEvery
	}
	if o.BatchPoints <= 0 {
		o.BatchPoints = 16
	}
	if o.SpeculateAfter <= 0 {
		o.SpeculateAfter = o.LeaseTTL / 2
	}
	if o.DispatchAttempts <= 0 {
		o.DispatchAttempts = 3
	}
	if o.Retry.Initial <= 0 && o.Retry.Max <= 0 {
		o.Retry = retry.Policy{Initial: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: true}
	}
	if o.RingReplicas <= 0 {
		o.RingReplicas = DefaultRingReplicas
	}
	if o.Executor == nil {
		o.Executor = &HTTPExecutor{}
	}
	if o.Logger == nil {
		o.Logger = slog.New(discardHandler{})
	}
	return o
}

// workerState is the coordinator's view of one registered worker.
// All fields are guarded by Coordinator.mu.
type workerState struct {
	id       string
	url      string
	joined   time.Time
	lastBeat time.Time
	// failedAt records the last dispatch failure; the worker is only
	// eligible for new leases once a heartbeat lands after it (a dead
	// worker's clock never advances past its failure, so consistent
	// hashing cannot bounce re-queued points straight back to it).
	failedAt time.Time
	wasLive  bool // last evaluated liveness, for WorkersLost edges

	activeLeases  int
	pendingPoints int
	pointsDone    int64
}

// Coordinator owns cluster membership and executes sweeps by leasing
// their grid points to workers. One Coordinator serves many sweeps
// (Runs) concurrently; workers are shared across them.
type Coordinator struct {
	opts Options
	log  *slog.Logger

	mu        sync.Mutex
	workers   map[string]*workerState
	runs      map[*Run]struct{}
	nextLease int64

	workersJoined    atomic.Int64
	workersLost      atomic.Int64
	leasesGranted    atomic.Int64
	leasesExpired    atomic.Int64
	pointsRequeued   atomic.Int64
	pointsDuplicate  atomic.Int64
	leasesSpeculated atomic.Int64
}

// NewCoordinator builds a coordinator with no workers; workers arrive
// via Join (the /v1/cluster/join handler).
func NewCoordinator(opts Options) *Coordinator {
	opts = opts.norm()
	return &Coordinator{
		opts:    opts,
		log:     opts.Logger,
		workers: make(map[string]*workerState),
		runs:    make(map[*Run]struct{}),
	}
}

// Join registers (or re-registers) a worker and wakes every run that may
// have points waiting for capacity. Re-joining clears any failure
// suspicion: the worker proved it is alive and reachable.
func (c *Coordinator) Join(id, url string) JoinResponse {
	now := time.Now()
	c.mu.Lock()
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id, joined: now}
		c.workers[id] = w
		c.workersJoined.Add(1)
	}
	w.url = url
	w.lastBeat = now
	w.failedAt = time.Time{}
	w.wasLive = true
	for r := range c.runs {
		r.poke()
	}
	c.mu.Unlock()
	if ok {
		c.log.Info("cluster: worker re-joined", "worker", id, "url", url)
	} else {
		c.log.Info("cluster: worker joined", "worker", id, "url", url)
	}
	return JoinResponse{
		HeartbeatMS: c.opts.HeartbeatEvery.Milliseconds(),
		LeaseTTLMS:  c.opts.LeaseTTL.Milliseconds(),
	}
}

// Heartbeat records a worker's liveness beacon. It returns false when the
// worker is unknown (e.g. the coordinator restarted); the worker must
// re-join.
func (c *Coordinator) Heartbeat(id string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return false
	}
	wasLive := c.liveLocked(w, now)
	w.lastBeat = now
	if !wasLive {
		// Revival: a failed or timed-out worker is eligible again; runs
		// with starved pending queues should re-grant.
		w.wasLive = true
		for r := range c.runs {
			r.poke()
		}
	}
	return true
}

// liveLocked evaluates w's liveness at now and records the live→dead
// edge in WorkersLost. Caller holds c.mu.
func (c *Coordinator) liveLocked(w *workerState, now time.Time) bool {
	live := now.Sub(w.lastBeat) <= c.opts.HeartbeatTimeout &&
		(w.failedAt.IsZero() || w.lastBeat.After(w.failedAt))
	if w.wasLive && !live {
		w.wasLive = false
		c.workersLost.Add(1)
		c.log.Warn("cluster: worker lost", "worker", w.id, "last_heartbeat", w.lastBeat)
	} else if live {
		w.wasLive = true
	}
	return live
}

func (c *Coordinator) infoLocked(w *workerState, now time.Time) WorkerInfo {
	return WorkerInfo{
		ID:            w.id,
		URL:           w.url,
		Joined:        w.joined,
		LastHeartbeat: w.lastBeat,
		Live:          c.liveLocked(w, now),
		ActiveLeases:  w.activeLeases,
		PendingPoints: w.pendingPoints,
		PointsDone:    w.pointsDone,
	}
}

// Workers returns the membership view, sorted by ID.
func (c *Coordinator) Workers() []WorkerInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, c.infoLocked(w, now))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// liveWorkers returns only the currently lease-eligible workers.
func (c *Coordinator) liveWorkers() []WorkerInfo {
	var out []WorkerInfo
	for _, w := range c.Workers() {
		if w.Live {
			out = append(out, w)
		}
	}
	return out
}

// LiveWorkerCount returns the number of lease-eligible workers (the
// readyz / metrics gauge).
func (c *Coordinator) LiveWorkerCount() int { return len(c.liveWorkers()) }

// Counters returns the failure-visibility counters.
func (c *Coordinator) Counters() Counters {
	return Counters{
		WorkersJoined:    c.workersJoined.Load(),
		WorkersLost:      c.workersLost.Load(),
		LeasesGranted:    c.leasesGranted.Load(),
		LeasesExpired:    c.leasesExpired.Load(),
		PointsRequeued:   c.pointsRequeued.Load(),
		PointsDuplicate:  c.pointsDuplicate.Load(),
		LeasesSpeculated: c.leasesSpeculated.Load(),
	}
}

func (c *Coordinator) workerInfo(id string) (WorkerInfo, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return WorkerInfo{}, false
	}
	return c.infoLocked(w, now), true
}

// markWorkerFailed records a dispatch failure: the worker leaves the
// lease-eligible set until a heartbeat newer than the failure proves it
// reachable again.
func (c *Coordinator) markWorkerFailed(id string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok {
		w.failedAt = now
		c.liveLocked(w, now)
	}
}

func (c *Coordinator) leaseIssued(worker string, points int) {
	c.leasesGranted.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[worker]; ok {
		w.activeLeases++
		w.pendingPoints += points
	}
}

func (c *Coordinator) leaseSettled(worker string, undelivered int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[worker]; ok {
		w.activeLeases--
		w.pendingPoints -= undelivered
	}
}

func (c *Coordinator) pointDelivered(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[worker]; ok {
		w.pendingPoints--
		w.pointsDone++
	}
}

func (c *Coordinator) addRun(r *Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs[r] = struct{}{}
}

func (c *Coordinator) removeRun(r *Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.runs, r)
}

// scanEvery is the run loop's housekeeping tick: a quarter of the
// tightest deadline, clamped to [5ms, 1s].
func (c *Coordinator) scanEvery() time.Duration {
	d := c.opts.HeartbeatTimeout
	if c.opts.LeaseTTL < d {
		d = c.opts.LeaseTTL
	}
	if c.opts.SpeculateAfter < d {
		d = c.opts.SpeculateAfter
	}
	d /= 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Run is one sweep executing on the cluster. Build with NewRun, drive
// with Execute; Progress mirrors sweep.Engine.Progress for the serving
// layer's sweep views.
type Run struct {
	c       *Coordinator
	spec    sweep.Spec
	fp      string
	defs    []sweep.PointDef
	started atomic.Bool

	// Tenant is the submitting principal's name, stamped onto every lease
	// minted for this run so workers attribute the points to the right
	// tenant. Set (before Execute) by the serving layer in multi-tenant
	// mode; empty otherwise. Deliberately not part of sweep.Spec — the
	// spec's fingerprint identifies the simulation work, which is
	// tenant-neutral, and journals must stay replayable across tenants.
	Tenant string

	mu          sync.Mutex
	pending     []sweep.PointDef
	banned      map[int]map[string]bool // point index → workers that broke a lease on it
	outstanding map[string]*leaseState
	done        map[int]bool
	completed   int
	failed      int
	replayed    int
	lastStarve  time.Time // throttles the "no live workers" log

	parentCtx  context.Context
	journal    *sweep.Journal
	emit       func(sweep.Point)
	wake       chan struct{}
	dispatchWG sync.WaitGroup
}

// leaseState tracks one outstanding lease. Mutable fields are guarded by
// Run.mu.
type leaseState struct {
	lease        Lease
	worker       string
	info         WorkerInfo
	issued       time.Time
	lastProgress time.Time
	remaining    int
	cancel       context.CancelFunc
	expired      bool
	speculative  bool
	speculated   bool
}

// NewRun validates and expands spec into a cluster run. The spec's
// Parallel knob is ignored (parallelism is the cluster's width);
// ShareWarmup is worker-local and leases do not group warmups across
// workers.
func (c *Coordinator) NewRun(spec sweep.Spec) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Run{
		c:           c,
		spec:        spec,
		fp:          spec.Fingerprint(),
		defs:        spec.Points(),
		banned:      make(map[int]map[string]bool),
		outstanding: make(map[string]*leaseState),
		done:        make(map[int]bool),
		wake:        make(chan struct{}, 1),
	}, nil
}

// Total returns the grid size.
func (r *Run) Total() int { return len(r.defs) }

// Progress returns the run's execution counters (cache hits and warmups
// happen worker-side and are not visible here).
func (r *Run) Progress() sweep.Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sweep.Progress{
		Total:     len(r.defs),
		Completed: r.completed,
		Failed:    r.failed,
		Replayed:  r.replayed,
	}
}

// Execute runs the sweep to completion: journal replay first (emitted in
// index order), then lease grant / failure-recovery rounds until every
// grid point has committed. It blocks until done or ctx ends; cancelled
// leases are awaited either way, so no dispatch goroutine outlives the
// call. Execute may be called once per Run.
func (r *Run) Execute(ctx context.Context, emit func(sweep.Point)) error {
	if r.started.Swap(true) {
		return errors.New("cluster: run already executed")
	}
	r.parentCtx = ctx
	r.emit = emit

	if r.spec.Journal != "" {
		j, replayed, err := sweep.OpenJournal(r.spec.Journal, r.spec.Name, r.fp)
		if err != nil {
			return err
		}
		r.journal = j
		defer j.Close()
		// Replay committed points first, in index order, with the same
		// key-match defense the single-process engine applies.
		for _, def := range r.defs {
			if p, ok := replayed[def.Index]; ok && p.Key == def.Key {
				r.done[def.Index] = true
				r.completed++
				r.replayed++
				emit(p)
			}
		}
	}
	for _, def := range r.defs {
		if !r.done[def.Index] {
			r.pending = append(r.pending, def)
		}
	}

	r.c.addRun(r)
	defer r.c.removeRun(r)

	leaseCtx, cancelLeases := context.WithCancel(ctx)
	defer cancelLeases()
	tick := time.NewTicker(r.c.scanEvery())
	defer tick.Stop()

	for !r.finished() {
		r.grant(leaseCtx)
		r.expireAndSpeculate(leaseCtx)
		select {
		case <-ctx.Done():
			cancelLeases()
			r.dispatchWG.Wait()
			return ctx.Err()
		case <-r.wake:
		case <-tick.C:
		}
	}
	// Done: cancel surviving stragglers (speculation losers) and wait
	// them out so no dispatch goroutine outlives the run.
	cancelLeases()
	r.dispatchWG.Wait()
	return nil
}

func (r *Run) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.done) == len(r.defs)
}

// poke nudges the run loop without blocking (callers may hold locks).
func (r *Run) poke() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// grant assigns every pending point to a live worker by consistent
// hashing over the point's result key, skipping workers that previously
// broke a lease on that point (the ban list — without it, a hung-but-
// heartbeating worker would receive its own expired points back forever).
func (r *Run) grant(ctx context.Context) {
	c := r.c
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) == 0 {
		return
	}
	workers := c.liveWorkers()
	if len(workers) == 0 {
		if time.Since(r.lastStarve) > 5*time.Second {
			r.lastStarve = time.Now()
			c.log.Warn("cluster: sweep starved, no live workers",
				"sweep", r.spec.Name, "pending", len(r.pending))
		}
		return
	}
	byID := make(map[string]WorkerInfo, len(workers))
	ids := make([]string, 0, len(workers))
	for _, w := range workers {
		byID[w.ID] = w
		ids = append(ids, w.ID)
	}
	ring := NewRing(c.opts.RingReplicas, ids)
	assign := make(map[string][]sweep.PointDef)
	for _, def := range r.pending {
		owner := ""
		for _, id := range ring.Sequence(def.Key) {
			if !r.banned[def.Index][id] {
				owner = id
				break
			}
		}
		if owner == "" {
			// Every live worker has broken a lease on this point; clear
			// the slate and try the hash owner again.
			delete(r.banned, def.Index)
			owner = ring.Owner(def.Key)
		}
		assign[owner] = append(assign[owner], def)
	}
	r.pending = r.pending[:0]
	owners := make([]string, 0, len(assign))
	for id := range assign {
		owners = append(owners, id)
	}
	sort.Strings(owners)
	for _, id := range owners {
		pts := assign[id]
		for s := 0; s < len(pts); s += c.opts.BatchPoints {
			e := s + c.opts.BatchPoints
			if e > len(pts) {
				e = len(pts)
			}
			r.issueLocked(ctx, byID[id], pts[s:e], false)
		}
	}
}

// issueLocked creates and dispatches one lease. Caller holds r.mu.
func (r *Run) issueLocked(ctx context.Context, w WorkerInfo, pts []sweep.PointDef, speculative bool) {
	c := r.c
	c.mu.Lock()
	c.nextLease++
	id := fmt.Sprintf("lease-%d", c.nextLease)
	c.mu.Unlock()
	lctx, cancel := context.WithCancel(ctx)
	now := time.Now()
	ls := &leaseState{
		lease:        Lease{ID: id, Sweep: r.spec.Name, Fingerprint: r.fp, Tenant: r.Tenant, Points: slices.Clone(pts)},
		worker:       w.ID,
		info:         w,
		issued:       now,
		lastProgress: now,
		remaining:    len(pts),
		cancel:       cancel,
		speculative:  speculative,
	}
	r.outstanding[id] = ls
	c.leaseIssued(w.ID, len(pts))
	if speculative {
		c.leasesSpeculated.Add(1)
	}
	c.log.Debug("cluster: lease granted", "lease", id, "worker", w.ID,
		"points", len(pts), "speculative", speculative)
	r.dispatchWG.Add(1)
	go r.dispatch(lctx, ls)
}

// dispatch drives one lease: Execute with capped jittered retries, then
// settlement (requeue of whatever the worker did not deliver).
func (r *Run) dispatch(ctx context.Context, ls *leaseState) {
	defer r.dispatchWG.Done()
	defer ls.cancel()
	c := r.c
	var err error
	for attempt := 1; ; attempt++ {
		// A retried Execute re-sends the whole lease; the worker answers
		// already-finished points from its cache or local journal and
		// commit dedups, so retries are idempotent.
		err = c.opts.Executor.Execute(ctx, ls.info, ls.lease, func(p sweep.Point) { r.commit(ls, p) })
		if err == nil || ctx.Err() != nil || attempt >= c.opts.DispatchAttempts {
			break
		}
		c.log.Warn("cluster: lease dispatch failed, retrying",
			"lease", ls.lease.ID, "worker", ls.worker, "attempt", attempt, "err", err)
		if c.opts.Retry.Sleep(ctx, attempt) != nil {
			break
		}
	}
	r.settle(ls, err)
}

// commit is the exactly-once point sink: the first delivery of a grid
// index claims it (under the run lock), journals it, and emits it; every
// later delivery — requeue race, speculative loser, dispatch retry — is
// counted as a duplicate and dropped.
func (r *Run) commit(ls *leaseState, p sweep.Point) {
	r.mu.Lock()
	if p.Index < 0 || p.Index >= len(r.defs) || r.defs[p.Index].Key != p.Key {
		r.mu.Unlock()
		r.c.log.Warn("cluster: dropping foreign point", "sweep", r.spec.Name,
			"index", p.Index, "worker", ls.worker)
		return
	}
	ls.lastProgress = time.Now()
	if ls.remaining > 0 {
		ls.remaining--
	}
	dup := r.done[p.Index]
	if !dup {
		r.done[p.Index] = true
		if p.Err == "" {
			r.completed++
		} else {
			r.failed++
		}
	}
	j := r.journal
	r.mu.Unlock()
	r.c.pointDelivered(ls.worker)
	if dup {
		r.c.pointsDuplicate.Add(1)
		return
	}
	// Journal before emit, outside the run lock (Journal serializes its
	// own appends): once a consumer sees a point, a crash cannot lose it.
	// Failed points are emitted but never journaled — a resumed sweep
	// re-runs them, mirroring the single-process engine.
	if p.Err == "" && j != nil {
		j.Append(p)
	}
	r.emit(p)
	r.poke()
}

// settle closes out a finished (or broken) lease: any point neither
// committed nor covered by another outstanding lease goes back on the
// pending queue, and a broken lease bans its worker from those points so
// consistent hashing cannot hand them straight back.
func (r *Run) settle(ls *leaseState, err error) {
	c := r.c
	r.mu.Lock()
	delete(r.outstanding, ls.lease.ID)
	var missing []sweep.PointDef
	for _, def := range ls.lease.Points {
		if !r.done[def.Index] && !r.coveredLocked(def.Index) {
			missing = append(missing, def)
		}
	}
	broken := err != nil || ls.expired
	requeued := false
	if len(missing) > 0 && r.parentCtx.Err() == nil {
		if broken {
			for _, def := range missing {
				if r.banned[def.Index] == nil {
					r.banned[def.Index] = make(map[string]bool)
				}
				r.banned[def.Index][ls.worker] = true
			}
		}
		r.pending = append(r.pending, missing...)
		c.pointsRequeued.Add(int64(len(missing)))
		requeued = true
	}
	if broken && (ls.expired || len(missing) > 0) && r.parentCtx.Err() == nil {
		c.leasesExpired.Add(1)
		c.log.Warn("cluster: lease broken, remainder requeued", "lease", ls.lease.ID,
			"worker", ls.worker, "requeued", len(missing), "expired", ls.expired, "err", err)
	}
	undelivered := ls.remaining
	r.mu.Unlock()
	c.leaseSettled(ls.worker, undelivered)
	if err != nil && len(missing) > 0 && r.parentCtx.Err() == nil {
		// A transport failure with undelivered points: keep the worker
		// out of the ring until a fresh heartbeat proves it reachable.
		c.markWorkerFailed(ls.worker)
	}
	if requeued {
		r.poke()
	}
}

// coveredLocked reports whether another outstanding, unexpired lease
// already carries the point. Caller holds r.mu.
func (r *Run) coveredLocked(idx int) bool {
	for _, ls := range r.outstanding {
		if ls.expired {
			continue
		}
		for _, d := range ls.lease.Points {
			if d.Index == idx {
				return true
			}
		}
	}
	return false
}

// expireAndSpeculate is the failure-detection scan: leases on dead
// workers or stalled past the TTL are cancelled (their settlement
// re-queues the remainder), and when nothing else is pending the slowest
// stragglers are speculatively re-issued to an idle worker — first
// delivery wins, the loser commits duplicates that are dropped.
func (r *Run) expireAndSpeculate(ctx context.Context) {
	c := r.c
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var live []WorkerInfo // fetched lazily, only if a speculation candidate appears
	for _, ls := range r.outstanding {
		if ls.expired {
			continue
		}
		w, known := c.workerInfo(ls.worker)
		dead := !known || !w.Live
		stalled := now.Sub(ls.lastProgress)
		if dead || stalled > c.opts.LeaseTTL {
			ls.expired = true
			ls.cancel()
			c.log.Warn("cluster: lease expired", "lease", ls.lease.ID, "worker", ls.worker,
				"dead", dead, "stalled", stalled.Truncate(time.Millisecond))
			continue
		}
		if len(r.pending) > 0 || ls.speculative || ls.speculated || stalled <= c.opts.SpeculateAfter {
			continue
		}
		if live == nil {
			live = c.liveWorkers()
		}
		var best *WorkerInfo
		for i := range live {
			if live[i].ID == ls.worker {
				continue
			}
			if best == nil || live[i].PendingPoints < best.PendingPoints {
				best = &live[i]
			}
		}
		if best == nil {
			continue
		}
		var missing []sweep.PointDef
		for _, d := range ls.lease.Points {
			if !r.done[d.Index] {
				missing = append(missing, d)
			}
		}
		if len(missing) == 0 {
			continue
		}
		ls.speculated = true
		c.log.Info("cluster: speculative re-issue of straggler lease",
			"lease", ls.lease.ID, "worker", ls.worker, "to", best.ID, "points", len(missing))
		r.issueLocked(ctx, *best, missing, true)
	}
}

// discardHandler is a slog.Handler that drops everything (slog.DiscardHandler
// arrives in go 1.24; this repo pins 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
