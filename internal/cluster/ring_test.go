package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndCovering(t *testing.T) {
	members := []string{"w2", "w0", "w1"}
	a := NewRing(0, members)
	b := NewRing(0, []string{"w0", "w1", "w2", "w1"}) // order and dups must not matter

	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		own := a.Owner(key)
		if own != b.Owner(key) {
			t.Fatalf("owner of %q differs across identically-membered rings", key)
		}
		counts[own]++
	}
	for _, m := range a.Members() {
		if counts[m] == 0 {
			t.Fatalf("member %s owns zero of 1000 keys", m)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("keys landed on %d members, want 3", len(counts))
	}
}

func TestRingSequenceVisitsEveryMemberOnce(t *testing.T) {
	r := NewRing(16, []string{"a", "b", "c", "d"})
	for i := 0; i < 100; i++ {
		seq := r.Sequence(fmt.Sprintf("key-%d", i))
		if len(seq) != 4 {
			t.Fatalf("sequence length %d, want 4", len(seq))
		}
		if seq[0] != r.Owner(fmt.Sprintf("key-%d", i)) {
			t.Fatal("sequence does not start at the owner")
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("member %s repeated in sequence %v", id, seq)
			}
			seen[id] = true
		}
	}
}

// Removing one member must move only that member's keys: everyone else's
// assignments stay put — the property that keeps worker-local caches warm
// across membership churn.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing(0, []string{"w0", "w1", "w2"})
	reduced := NewRing(0, []string{"w0", "w2"})
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Owner(key), reduced.Owner(key)
		if was == "w1" {
			if is == "w1" {
				t.Fatal("removed member still owns a key")
			}
			continue
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members; want 0", moved)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(0, nil)
	if own := empty.Owner("k"); own != "" {
		t.Fatalf("empty ring owner = %q, want empty", own)
	}
	if seq := empty.Sequence("k"); seq != nil {
		t.Fatalf("empty ring sequence = %v, want nil", seq)
	}
	one := NewRing(0, []string{"solo"})
	if own := one.Owner("k"); own != "solo" {
		t.Fatalf("single ring owner = %q", own)
	}
}
