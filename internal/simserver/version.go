package simserver

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"fbdsim/internal/stats"
)

// This file is the build-identity corner of the API: GET /v1/version
// reports what binary is serving (module version, VCS revision when the
// build recorded one, Go toolchain, process start time and uptime), and
// the same facts export as a Prometheus-style build_info metric on
// /metrics — the constant-1 labeled-sample idiom scrapers join against.

// versionView is the GET /v1/version response.
type versionView struct {
	Version       string  `json:"version"`
	Revision      string  `json:"revision,omitempty"`
	GoVersion     string  `json:"go_version"`
	StartTime     string  `json:"start_time"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// moduleVersion extracts the main module's version and VCS revision from
// the build info baked into the binary. Test binaries and plain `go run`
// builds report "(devel)" with no revision.
func moduleVersion() (version, revision string) {
	version = "(devel)"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, ""
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return version, revision
}

// buildInfo renders the build_info registry metric: WriteProm turns a
// stats.Info into the constant-1 sample build_info{...} 1, WriteJSON into
// a plain string map.
func buildInfo(started time.Time) stats.Info {
	version, revision := moduleVersion()
	info := stats.Info{
		"version":    version,
		"go_version": runtime.Version(),
		"start_time": started.UTC().Format(time.RFC3339),
	}
	if revision != "" {
		info["revision"] = revision
	}
	return info
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	version, revision := moduleVersion()
	writeJSON(w, http.StatusOK, versionView{
		Version:       version,
		Revision:      revision,
		GoVersion:     runtime.Version(),
		StartTime:     s.started.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}
