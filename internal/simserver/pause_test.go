package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

func postPause(t *testing.T, ts *httptest.Server, id string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/pause", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func getCheckpoint(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestPauseCheckpointResume is the end-to-end pause flow against the real
// simulator: pause a running job, download its checkpoint artifact, resume
// it as a new job with {"from_checkpoint": id}, and verify the resumed run's
// results match an unbroken run of the same machine bit for bit.
func TestPauseCheckpointResume(t *testing.T) {
	// The same config the server builds for the submit body below.
	cfg := config.Default()
	cfg.MaxInsts = 2_000_000
	cfg.WarmupInsts = 5_000
	cfg.CPU.Cores = 1
	baseline, err := system.RunWorkload(cfg, []string{"swim"})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baseJSON, _ := json.Marshal(baseline)

	// The real simulator retires a short job faster than a poll loop can
	// observe it running, so gate the pause on the run actually starting.
	started := make(chan struct{}, 2)
	run := func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
		started <- struct{}{}
		return system.RunWorkloadContext(ctx, cfg, benchmarks)
	}
	_, ts := newTestServer(t, Options{Workers: 2, Run: run})
	status, v, _ := postJob(t, ts, `{"benchmarks": ["swim"], "max_insts": 2000000, "warmup_insts": 5000}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	<-started

	status, pv := postPause(t, ts, v.ID)
	if status != http.StatusOK {
		t.Fatalf("pause: status %d (%+v)", status, pv)
	}
	if pv.State != string(StatePaused) {
		t.Fatalf("pause left job %q, want paused", pv.State)
	}
	if pv.CheckpointBytes == 0 {
		t.Fatalf("paused job reports no checkpoint artifact")
	}
	if pv.Results != nil {
		t.Fatalf("paused job carries results")
	}

	status, data := getCheckpoint(t, ts, v.ID)
	if status != http.StatusOK {
		t.Fatalf("checkpoint fetch: status %d", status)
	}
	if len(data) != pv.CheckpointBytes {
		t.Fatalf("artifact is %d bytes, view said %d", len(data), pv.CheckpointBytes)
	}
	if !bytes.HasPrefix(data, []byte("FBDSNAP\x00")) {
		t.Fatalf("artifact does not start with the snapshot magic: %q", data[:8])
	}

	status, rv, _ := postJob(t, ts, `{"from_checkpoint": "`+v.ID+`"}`)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("resume submit: status %d (%+v)", status, rv)
	}
	if rv.Key != pv.Key {
		t.Fatalf("resumed job key %q differs from source %q", rv.Key, pv.Key)
	}
	final := waitState(t, ts, rv.ID, StateDone)
	if final.Results == nil {
		t.Fatalf("resumed job has no results")
	}
	gotJSON, _ := json.Marshal(final.Results)
	if string(gotJSON) != string(baseJSON) {
		t.Fatalf("resumed run diverged from unbroken run\nbase:    %s\nresumed: %s", baseJSON, gotJSON)
	}
}

// TestPauseAndCheckpointErrors covers the failure surface of the pause API
// with a controllable fake: wrong states, missing jobs, missing artifacts
// and malformed resume requests are all refused with typed envelopes.
func TestPauseAndCheckpointErrors(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Run:     fakeRun(&calls, started, release),
	})

	if status, _ := postPause(t, ts, "job-404"); status != http.StatusNotFound {
		t.Errorf("pause of unknown job: status %d, want 404", status)
	}
	if status, _ := getCheckpoint(t, ts, "job-404"); status != http.StatusNotFound {
		t.Errorf("checkpoint of unknown job: status %d, want 404", status)
	}

	// Occupy the single worker, then queue a second job behind it.
	_, running, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 1}`)
	<-started
	_, queued, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 2}`)

	if status, _ := postPause(t, ts, queued.ID); status != http.StatusConflict {
		t.Errorf("pause of queued job: status %d, want 409", status)
	}
	if status, _ := getCheckpoint(t, ts, running.ID); status != http.StatusConflict {
		t.Errorf("checkpoint of running job: status %d, want 409", status)
	}

	// The fake ignores the checkpoint plumbing, so a pause fired at it
	// resolves when the run completes: the job reports done, not paused.
	close(release)
	done := waitState(t, ts, running.ID, StateDone)
	waitState(t, ts, queued.ID, StateDone)
	if done.CheckpointBytes != 0 {
		t.Errorf("fake run produced a checkpoint artifact")
	}

	if status, _ := postPause(t, ts, running.ID); status != http.StatusConflict {
		t.Errorf("pause of done job: status %d, want 409", status)
	}
	if status, _ := getCheckpoint(t, ts, running.ID); status != http.StatusNotFound {
		t.Errorf("checkpoint of done job without artifact: status %d, want 404", status)
	}

	if status, _, _ := postJob(t, ts, `{"from_checkpoint": "job-404"}`); status != http.StatusNotFound {
		t.Errorf("resume of unknown job: status %d, want 404", status)
	}
	if status, _, _ := postJob(t, ts, `{"from_checkpoint": "`+running.ID+`"}`); status != http.StatusConflict {
		t.Errorf("resume of done job: status %d, want 409", status)
	}
	if status, _, _ := postJob(t, ts, `{"from_checkpoint": "`+running.ID+`", "benchmarks": ["swim"]}`); status != http.StatusBadRequest {
		t.Errorf("resume with config overrides: status %d, want 400", status)
	}
}
