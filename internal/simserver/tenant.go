package simserver

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Tenant is one API-key principal from the keyfile: a stable name (used in
// views, metrics labels and the dashboard), the bearer secret, a fair-share
// weight for the deficit-round-robin scheduler, and its admission limits.
// The rate limit is a classic token bucket (Rate sustained submissions per
// second, Burst capacity); MaxActive caps jobs+sweeps that are queued or
// running at once. Zero means unlimited for both.
type Tenant struct {
	Name      string
	Key       string
	Weight    int
	Rate      float64
	Burst     float64
	MaxActive int

	mu     sync.Mutex
	tokens float64
	last   time.Time
	active int
}

// tenantAdmitOK is the zero admission verdict: allowed.
type admitVerdict struct {
	ok         bool
	code       string        // codeRateLimited or codeQuotaExceeded when !ok
	retryAfter time.Duration // hint for the Retry-After header, >= 1s
}

// admitOne charges one submission against the tenant's limits at wall time
// now. Concurrency is checked before the bucket so a quota rejection never
// burns a token. On success the active count is incremented; the caller
// must pair it with release() when the work leaves the system.
func (t *Tenant) admitOne(now time.Time) admitVerdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.MaxActive > 0 && t.active >= t.MaxActive {
		return admitVerdict{code: codeQuotaExceeded, retryAfter: time.Second}
	}
	if t.Rate > 0 {
		if t.last.IsZero() {
			t.tokens = t.burstCap()
		} else {
			t.tokens += now.Sub(t.last).Seconds() * t.Rate
			if max := t.burstCap(); t.tokens > max {
				t.tokens = max
			}
		}
		t.last = now
		if t.tokens < 1 {
			wait := time.Duration((1 - t.tokens) / t.Rate * float64(time.Second))
			if wait < time.Second {
				wait = time.Second
			}
			return admitVerdict{code: codeRateLimited, retryAfter: wait}
		}
		t.tokens--
	}
	t.active++
	return admitVerdict{ok: true}
}

// release returns one admission unit (job or sweep reaching a terminal
// state) to the tenant's concurrency quota.
func (t *Tenant) release() {
	t.mu.Lock()
	if t.active > 0 {
		t.active--
	}
	t.mu.Unlock()
}

// activeCount reports jobs+sweeps currently charged against the quota.
func (t *Tenant) activeCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// burstCap is the bucket capacity: Burst if set, else max(Rate, 1) so a
// rate-limited tenant can always submit at least one request immediately.
func (t *Tenant) burstCap() float64 {
	if t.Burst > 0 {
		return t.Burst
	}
	if t.Rate > 1 {
		return t.Rate
	}
	return 1
}

// weight returns the scheduler weight, defaulting to 1.
func (t *Tenant) weight() int {
	if t == nil || t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// TenantSet is the parsed keyfile: the fixed, bounded set of principals the
// server recognizes. A nil or empty set means open access (single-tenant
// mode, backward compatible with pre-auth deployments). The set is
// immutable after load, so lookups are lock-free.
type TenantSet struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	names  []string
}

// Enabled reports whether authentication is required.
func (ts *TenantSet) Enabled() bool { return ts != nil && len(ts.byKey) > 0 }

// Lookup resolves a bearer key to its tenant, or nil.
func (ts *TenantSet) Lookup(key string) *Tenant {
	if ts == nil {
		return nil
	}
	return ts.byKey[key]
}

// ByName resolves a tenant name, or nil.
func (ts *TenantSet) ByName(name string) *Tenant {
	if ts == nil {
		return nil
	}
	return ts.byName[name]
}

// Names returns tenant names in sorted order — the bounded label set for
// metrics and the dashboard.
func (ts *TenantSet) Names() []string {
	if ts == nil {
		return nil
	}
	return ts.names
}

// LoadTenants reads a keyfile from disk. See ParseTenants for the format.
func LoadTenants(path string) (*TenantSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts, err := ParseTenants(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}

// ParseTenants parses the keyfile format: one tenant per line,
//
//	<name> <key> [weight=N] [rate=R] [burst=B] [max_active=M]
//
// Blank lines and #-comments are ignored. Names and keys must be unique;
// names are restricted to [a-zA-Z0-9_-] so they are safe as metric labels
// and in URLs.
func ParseTenants(r io.Reader) (*TenantSet, error) {
	ts := &TenantSet{
		byKey:  make(map[string]*Tenant),
		byName: make(map[string]*Tenant),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want \"<name> <key> [k=v...]\", got %q", lineNo, line)
		}
		t := &Tenant{Name: fields[0], Key: fields[1], Weight: 1}
		if !validTenantName(t.Name) {
			return nil, fmt.Errorf("line %d: invalid tenant name %q (want [a-zA-Z0-9_-]+)", lineNo, t.Name)
		}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed option %q (want k=v)", lineNo, kv)
			}
			var err error
			switch k {
			case "weight":
				t.Weight, err = strconv.Atoi(v)
				if err == nil && t.Weight < 1 {
					err = fmt.Errorf("must be >= 1")
				}
			case "rate":
				t.Rate, err = strconv.ParseFloat(v, 64)
				if err == nil && t.Rate < 0 {
					err = fmt.Errorf("must be >= 0")
				}
			case "burst":
				t.Burst, err = strconv.ParseFloat(v, 64)
				if err == nil && t.Burst < 0 {
					err = fmt.Errorf("must be >= 0")
				}
			case "max_active":
				t.MaxActive, err = strconv.Atoi(v)
				if err == nil && t.MaxActive < 0 {
					err = fmt.Errorf("must be >= 0")
				}
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return nil, fmt.Errorf("line %d: option %q: %v", lineNo, kv, err)
			}
		}
		if _, dup := ts.byName[t.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate tenant name %q", lineNo, t.Name)
		}
		if _, dup := ts.byKey[t.Key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key for tenant %q", lineNo, t.Name)
		}
		ts.byName[t.Name] = t
		ts.byKey[t.Key] = t
		ts.names = append(ts.names, t.Name)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(ts.names)
	return ts, nil
}

func validTenantName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		ok := c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
