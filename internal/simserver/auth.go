package simserver

import (
	"context"
	"net/http"
	"strings"
)

// Authentication: when a tenant keyfile is configured (Options.Tenants),
// every /v1 endpoint requires "Authorization: Bearer <key>"; a job, sweep
// or telemetry stream is then visible only to the tenant that created it.
// The /v1/cluster endpoints are machine-to-machine and authenticate with
// the shared cluster secret (Options.ClusterKey) instead of a tenant key.
// Infrastructure probes (/healthz, /readyz, /metrics) stay open — they
// carry capacity data, not tenant data. Without a keyfile the middleware
// is a passthrough and the server behaves exactly as before (open access,
// single implicit tenant).

// authKind classifies a route's authentication requirement.
type authKind int

const (
	authOpen    authKind = iota // probes and scrape endpoints: never gated
	authTenant                  // requires a tenant bearer key in multi-tenant mode
	authCluster                 // requires the shared cluster secret in multi-tenant mode
)

type tenantCtxKey struct{}

// tenantFrom resolves the authenticated tenant attached to the request by
// the middleware; nil in open-access mode.
func (s *Server) tenantFrom(r *http.Request) *Tenant {
	t, _ := r.Context().Value(tenantCtxKey{}).(*Tenant)
	return t
}

// bearerToken extracts the Authorization: Bearer credential, or "".
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// withAuth wraps one handler with the route's authentication gate.
func (s *Server) withAuth(kind authKind, h http.HandlerFunc) http.HandlerFunc {
	if !s.tenants.Enabled() || kind == authOpen {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		token := bearerToken(r)
		if token == "" {
			writeError(w, http.StatusUnauthorized, codeUnauthorized,
				"missing Authorization: Bearer token (multi-tenant mode)")
			return
		}
		if kind == authCluster {
			if s.opts.ClusterKey != "" && token == s.opts.ClusterKey {
				h(w, r)
				return
			}
			if s.tenants.Lookup(token) != nil {
				writeError(w, http.StatusForbidden, codeForbidden,
					"cluster endpoints require the cluster key, not a tenant key")
				return
			}
			writeError(w, http.StatusUnauthorized, codeUnauthorized, "unknown cluster key")
			return
		}
		t := s.tenants.Lookup(token)
		if t == nil {
			writeError(w, http.StatusUnauthorized, codeUnauthorized, "unknown API key")
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	}
}

// ownsJob reports whether the request's principal may read the job. Open
// mode allows everything; in multi-tenant mode a job belongs to exactly
// the tenant that submitted it.
func (s *Server) ownsJob(r *http.Request, j *job) bool {
	if !s.tenants.Enabled() {
		return true
	}
	return s.tenantFrom(r) == j.tenant
}

// ownsSweep is ownsJob for sweeps.
func (s *Server) ownsSweep(r *http.Request, sj *sweepJob) bool {
	if !s.tenants.Enabled() {
		return true
	}
	t := s.tenantFrom(r)
	return t != nil && t.Name == sj.tenant
}

// authorizeJob resolves {id} to a job the requester owns, writing the
// error response itself otherwise. Foreign jobs answer 403 — the id
// namespace is shared and sequential, so existence is not a secret, but
// the contents are.
func (s *Server) authorizeJob(w http.ResponseWriter, r *http.Request) *job {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job")
		return nil
	}
	if !s.ownsJob(r, j) {
		writeError(w, http.StatusForbidden, codeForbidden, "job %s belongs to another tenant", j.id)
		return nil
	}
	return j
}

// authorizeSweep is authorizeJob for sweeps.
func (s *Server) authorizeSweep(w http.ResponseWriter, r *http.Request) *sweepJob {
	sj := s.lookupSweep(r.PathValue("id"))
	if sj == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "no such sweep")
		return nil
	}
	if !s.ownsSweep(r, sj) {
		writeError(w, http.StatusForbidden, codeForbidden, "sweep %s belongs to another tenant", sj.id)
		return nil
	}
	return sj
}
