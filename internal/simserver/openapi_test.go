package simserver

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// specPath is the committed API contract this server must match.
const specPath = "../../api/openapi.yaml"

// loadSpecOps extracts "METHOD /path" operations from api/openapi.yaml.
// It relies on the formatting contract stated at the top of the spec
// (path items 2-space-indented under `paths:`, operations their
// 4-space-indented method keys) rather than a YAML dependency — the
// module is stdlib-only by design.
func loadSpecOps(t *testing.T) map[string]bool {
	t.Helper()
	f, err := os.Open(filepath.FromSlash(specPath))
	if err != nil {
		t.Fatalf("open spec: %v", err)
	}
	defer f.Close()

	methods := map[string]string{
		"get:": "GET", "post:": "POST", "put:": "PUT",
		"delete:": "DELETE", "patch:": "PATCH", "head:": "HEAD",
	}
	ops := make(map[string]bool)
	inPaths := false
	curPath := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		switch {
		case indent == 0:
			inPaths = line == "paths:"
		case !inPaths:
		case indent == 2 && strings.HasPrefix(trimmed, "/") && strings.HasSuffix(trimmed, ":"):
			curPath = strings.TrimSuffix(trimmed, ":")
		case indent == 4 && curPath != "":
			if m, ok := methods[trimmed]; ok {
				ops[m+" "+curPath] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read spec: %v", err)
	}
	if len(ops) == 0 {
		t.Fatalf("no operations parsed from %s — formatting contract broken?", specPath)
	}
	return ops
}

// TestOpenAPISpecMatchesRoutes is the spec-drift gate: every route the
// server registers must have an operation in api/openapi.yaml, and every
// spec operation must have a route. Go 1.22 mux patterns and OpenAPI
// path templates share the {id} placeholder syntax, so patterns compare
// verbatim.
func TestOpenAPISpecMatchesRoutes(t *testing.T) {
	spec := loadSpecOps(t)

	s, _ := newTestServer(t, Options{Workers: 1})
	served := make(map[string]bool)
	for _, rt := range s.routes() {
		served[rt.method+" "+rt.pattern] = true
	}

	var missing, stale []string
	for op := range served {
		if !spec[op] {
			missing = append(missing, op)
		}
	}
	for op := range spec {
		if !served[op] {
			stale = append(stale, op)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, op := range missing {
		t.Errorf("route %q is served but absent from %s — add the operation to the spec", op, specPath)
	}
	for _, op := range stale {
		t.Errorf("operation %q is in %s but not served — remove it or register the route", op, specPath)
	}
	if len(served) != len(spec) {
		t.Logf("server routes: %d, spec operations: %d", len(served), len(spec))
	}
}

// TestOpenAPISpecLint is a dependency-free sanity lint of the committed
// spec: the fields the drift gate and clients rely on must be present.
func TestOpenAPISpecLint(t *testing.T) {
	raw, err := os.ReadFile(filepath.FromSlash(specPath))
	if err != nil {
		t.Fatalf("read spec: %v", err)
	}
	text := string(raw)
	for _, want := range []string{
		"openapi: 3.1.0",
		"paths:",
		"components:",
		"securitySchemes:",
		"tenantKey:",
		"clusterKey:",
		"ErrorEnvelope:",
		"Retry-After:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("spec is missing %q", want)
		}
	}
	// Every stable error code the server can emit must be declared in the
	// envelope's enum.
	for _, code := range []string{
		codeBadRequest, codeNotFound, codeConflict, codeQueueFull,
		codeShuttingDown, codeCancelTimeout, codePauseTimeout, codeInternal,
		codeUnauthorized, codeForbidden, codeRateLimited, codeQuotaExceeded,
	} {
		if !strings.Contains(text, fmt.Sprintf("- %s", code)) {
			t.Errorf("spec error-code enum is missing %q", code)
		}
	}
}
