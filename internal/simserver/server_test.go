package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

// fakeRun builds a controllable RunFunc: it signals each start on started
// (if non-nil), then blocks until release is closed or the context is
// cancelled. calls counts invocations.
func fakeRun(calls *atomic.Int64, started chan<- struct{}, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
		calls.Add(1)
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return system.Results{Benchmarks: benchmarks, Cores: len(benchmarks), IPC: []float64{1}}, nil
		case <-ctx.Done():
			return system.Results{}, ctx.Err()
		}
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, jobView, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v, resp.Header
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) (int, jobView) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) jobView {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, v := getJob(t, ts, id)
		if v.State == string(want) {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	_, v := getJob(t, ts, id)
	t.Fatalf("job %s never reached %q (last state %q)", id, want, v.State)
	return v
}

// TestCoalescing32 is acceptance criterion (a): 32 concurrent identical
// submissions run exactly one simulation; the other 31 are coalesced or
// cache hits.
func TestCoalescing32(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 4,
		Run:     fakeRun(&calls, nil, release),
	})

	const n = 32
	body := `{"benchmarks": ["swim"], "seed": 7}`
	statuses := make([]int, n)
	views := make([]jobView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], views[i], _ = postJob(t, ts, body)
		}(i)
	}
	wg.Wait()
	close(release)

	var firstID, key string
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusAccepted && statuses[i] != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, statuses[i])
		}
		if views[i].ID == "" || views[i].Key == "" {
			t.Fatalf("submission %d: missing id/key: %+v", i, views[i])
		}
		if firstID == "" {
			firstID, key = views[i].ID, views[i].Key
		}
		if views[i].Key != key {
			t.Errorf("submission %d: key %q != %q", i, views[i].Key, key)
		}
	}
	waitState(t, ts, firstID, StateDone)

	if got := calls.Load(); got != 1 {
		t.Errorf("simulations run = %d, want exactly 1", got)
	}
	m := s.Metrics()
	if hits := m.CacheHits.Value(); hits != n-1 {
		t.Errorf("cache/coalesced hits = %d, want %d", hits, n-1)
	}
	if misses := m.CacheMisses.Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if acc := m.Accepted.Value(); acc != n {
		t.Errorf("accepted = %d, want %d", acc, n)
	}

	// The completed result is servable directly by key ...
	resp, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("results by key: status %d", resp.StatusCode)
	}
	// ... and a fresh identical submission is a pure cache hit.
	status, v, _ := postJob(t, ts, body)
	if status != http.StatusOK || !v.Cached || v.State != string(StateDone) || v.Results == nil {
		t.Errorf("post-completion submit: status %d view %+v", status, v)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("cache hit re-ran the simulation (calls = %d)", got)
	}
}

// TestQueueFullBackpressure is acceptance criterion (b): a full queue
// returns 429 with a Retry-After header.
func TestQueueFullBackpressure(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 3 * time.Second,
		Run:        fakeRun(&calls, started, release),
	})

	// Job A occupies the single worker ...
	status, _, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 1}`)
	if status != http.StatusAccepted {
		t.Fatalf("job A: status %d", status)
	}
	<-started
	// ... job B fills the queue ...
	status, _, _ = postJob(t, ts, `{"benchmarks": ["swim"], "seed": 2}`)
	if status != http.StatusAccepted {
		t.Fatalf("job B: status %d", status)
	}
	// ... and job C must be rejected with backpressure.
	status, _, hdr := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 3}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429", status)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
	if rej := s.Metrics().Rejected.Value(); rej != 1 {
		t.Errorf("rejected = %d, want 1", rej)
	}
	close(release)
}

// TestCancelRunningJob is acceptance criterion (c) against a fake runner:
// DELETE on a running job returns, with the job terminal, well within
// 100 ms, because cancellation propagates through the context.
func TestCancelRunningJob(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed: only ctx can stop the job
	s, ts := newTestServer(t, Options{Workers: 1, Run: fakeRun(&calls, started, release)})

	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	<-started

	begin := time.Now()
	status, final := deleteJob(t, ts, v.ID)
	elapsed := time.Since(begin)
	if status != http.StatusOK {
		t.Fatalf("DELETE status %d", status)
	}
	if final.State != string(StateCancelled) {
		t.Errorf("state after cancel = %q", final.State)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("cancellation took %v, want < 100ms", elapsed)
	}
	if c := s.Metrics().Cancelled.Value(); c != 1 {
		t.Errorf("cancelled counter = %d, want 1", c)
	}
}

// TestCancelRealSimulation is criterion (c) end to end: a genuine
// simulation with a huge instruction budget stops through the context
// plumbing within 100 ms of the DELETE.
func TestCancelRealSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulator cancellation latency; skipped in -short")
	}
	s, ts := newTestServer(t, Options{Workers: 1})
	_ = s
	// A budget far beyond anything that completes in test time.
	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"], "max_insts": 500000000}`)
	waitState(t, ts, v.ID, StateRunning)

	begin := time.Now()
	status, final := deleteJob(t, ts, v.ID)
	elapsed := time.Since(begin)
	if status != http.StatusOK {
		t.Fatalf("DELETE status %d", status)
	}
	if final.State != string(StateCancelled) {
		t.Errorf("state after cancel = %q", final.State)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("real-simulation cancellation took %v, want < 100ms", elapsed)
	}
}

// TestCancelQueuedJob: cancelling a job that never started is immediate
// and the worker skips it.
func TestCancelQueuedJob(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Run: fakeRun(&calls, started, release)})

	postJob(t, ts, `{"benchmarks": ["swim"], "seed": 1}`)
	<-started
	_, queued, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 2}`)
	status, final := deleteJob(t, ts, queued.ID)
	if status != http.StatusOK || final.State != string(StateCancelled) {
		t.Fatalf("cancel queued: status %d state %q", status, final.State)
	}
	close(release)
	// Drain: the worker must not have executed the cancelled job.
	waitState(t, ts, queued.ID, StateCancelled)
	if got := calls.Load(); got != 1 {
		t.Errorf("runner calls = %d, want 1 (cancelled job must be skipped)", got)
	}
}

// TestGracefulShutdownDrains is acceptance criterion (d): shutdown waits
// for in-flight jobs and refuses later submissions.
func TestGracefulShutdownDrains(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Options{Workers: 1, Run: fakeRun(&calls, started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Give shutdown a moment to flip intake off, then finish the job.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}

	// The in-flight job drained to completion ...
	_, final := getJob(t, ts, v.ID)
	if final.State != string(StateDone) {
		t.Errorf("in-flight job state after shutdown = %q, want done", final.State)
	}
	// ... and a post-shutdown submit is refused.
	status, _, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit status = %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
}

// TestShutdownGraceExpiryCancels: when the grace period lapses, running
// jobs are cancelled rather than awaited forever.
func TestShutdownGraceExpiryCancels(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed
	s := New(Options{Workers: 1, Run: fakeRun(&calls, started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	_, final := getJob(t, ts, v.ID)
	if final.State != string(StateCancelled) {
		t.Errorf("job state after forced shutdown = %q, want cancelled", final.State)
	}
}

// TestSubmitValidation rejects malformed requests with 400.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxInsts: 1000})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"bogus": 1, "benchmarks": ["swim"]}`},
		{"no benchmarks", `{"seed": 1}`},
		{"unknown benchmark", `{"benchmarks": ["nosuch"]}`},
		{"unknown preset", `{"preset": "ddr9", "benchmarks": ["swim"]}`},
		{"unknown config field", `{"benchmarks": ["swim"], "config": {"Bogus": 1}}`},
		{"invalid config", `{"benchmarks": ["swim"], "config": {"Mem": {"LogicalChannels": 3}}}`},
		{"over insts cap", `{"benchmarks": ["swim"], "max_insts": 100000}`},
	}
	for _, c := range cases {
		if status, _, _ := postJob(t, ts, c.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, status)
		}
	}
	// art and mcf are valid for direct runs even though excluded from mixes.
	if status, _, _ := postJob(t, ts, `{"benchmarks": ["art"], "max_insts": 500}`); status != http.StatusAccepted {
		t.Errorf("art: status %d, want 202", status)
	}
}

// TestLookupErrors: unknown ids and keys return 404.
func TestLookupErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if status, _ := getJob(t, ts, "job-999"); status != http.StatusNotFound {
		t.Errorf("get unknown job: %d", status)
	}
	if status, _ := deleteJob(t, ts, "job-999"); status != http.StatusNotFound {
		t.Errorf("delete unknown job: %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/results/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result key: %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint: /metrics renders the counter registry as JSON.
func TestMetricsEndpoint(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	close(release) // jobs complete immediately
	_, ts := newTestServer(t, Options{Workers: 1, Run: fakeRun(&calls, nil, release)})

	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	waitState(t, ts, v.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"jobs_accepted", "jobs_completed", "jobs_cancelled", "jobs_failed",
		"jobs_rejected", "cache_hits", "cache_misses", "queue_depth",
		"workers", "workers_busy", "cache_entries",
		"job_wall_ms_count", "job_wall_ms_mean", "job_wall_ms_max",
		"sim_cycles_total",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if m["jobs_completed"].(float64) != 1 {
		t.Errorf("jobs_completed = %v, want 1", m["jobs_completed"])
	}
	if m["job_wall_ms_count"].(float64) != 1 {
		t.Errorf("job_wall_ms_count = %v, want 1", m["job_wall_ms_count"])
	}
}

// TestFailedJob: a runner error marks the job failed and counts it.
func TestFailedJob(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Workers: 1,
		Run: func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
			return system.Results{}, fmt.Errorf("model exploded")
		},
	})
	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	final := waitState(t, ts, v.ID, StateFailed)
	if final.Error == "" {
		t.Error("failed job must carry its error")
	}
	if f := s.Metrics().Failed.Value(); f != 1 {
		t.Errorf("failed counter = %d, want 1", f)
	}
	// Failures are not cached: a retry runs again.
	_, v2, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	waitState(t, ts, v2.ID, StateFailed)
}

// TestJobTimeout: the per-job deadline cancels overlong runs.
func TestJobTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{}) // never closed
	_, ts := newTestServer(t, Options{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Run:        fakeRun(&calls, nil, release),
	})
	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	final := waitState(t, ts, v.ID, StateCancelled)
	if final.State != string(StateCancelled) {
		t.Errorf("timed-out job state = %q", final.State)
	}
}

// TestPresets: each preset resolves to a distinct cache key.
func TestPresets(t *testing.T) {
	keys := map[string]bool{}
	for _, preset := range []string{"ddr2", "fbd", "fbd-ap", "fbd-apfl"} {
		var calls atomic.Int64
		release := make(chan struct{})
		close(release)
		_, ts := newTestServer(t, Options{Workers: 1, Run: fakeRun(&calls, nil, release)})
		_, v, _ := postJob(t, ts, fmt.Sprintf(`{"preset": %q, "benchmarks": ["swim"]}`, preset))
		if v.Key == "" {
			t.Fatalf("%s: no key", preset)
		}
		if keys[v.Key] {
			t.Errorf("%s: key collides with another preset", preset)
		}
		keys[v.Key] = true
	}
}

// TestJobThroughputReporting: a completed job reports its simulation
// throughput (sim cycles / wall second) and feeds the sim_cycles_total
// counter; unfinished and failed jobs report none.
func TestJobThroughputReporting(t *testing.T) {
	run := func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
		time.Sleep(5 * time.Millisecond) // guarantee a measurable wall time
		return system.Results{Benchmarks: benchmarks, Cores: len(benchmarks), Cycles: 2_000_000}, nil
	}
	s, ts := newTestServer(t, Options{Workers: 1, Run: run})

	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"]}`)
	done := waitState(t, ts, v.ID, StateDone)
	if done.SimCyclesPerSec <= 0 {
		t.Fatalf("done job reports sim_cycles_per_sec = %v, want > 0", done.SimCyclesPerSec)
	}
	if done.WallMS <= 0 {
		t.Fatalf("done job reports wall_ms = %v, want > 0", done.WallMS)
	}
	// cycles / (wall seconds) must be consistent with the reported wall time.
	want := 2_000_000 / (done.WallMS / 1000)
	if ratio := done.SimCyclesPerSec / want; ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("sim_cycles_per_sec = %v, want about %v", done.SimCyclesPerSec, want)
	}
	if got := s.Metrics().SimCycles.Value(); got != 2_000_000 {
		t.Fatalf("sim_cycles_total = %d, want 2000000", got)
	}
}
