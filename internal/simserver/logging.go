package simserver

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// This file is the structured access log: AccessLog wraps the API handler
// so every request emits one slog line with method, path, status, bytes,
// duration and a correlation ID — the client's X-Request-ID when it sent
// one, a server-minted one otherwise (echoed back in the response header
// either way). Requests touching a job or sweep also carry job_id /
// sweep_id attributes, so one `grep job-17` joins the access log with the
// server's lifecycle log for that job.

// statusWriter captures the response status and size. It passes Flush
// through — the SSE and NDJSON streaming handlers type-assert their writer
// to http.Flusher, and a middleware that swallowed it would silently turn
// live streams into fully buffered responses.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// reqSeq mints process-unique request IDs for clients that send none.
var reqSeq atomic.Int64

// entityID extracts the job or sweep ID a request path addresses, so log
// lines correlate with the lifecycle log. Empty strings when the path
// carries neither.
func entityID(path string) (jobID, sweepID string) {
	const jobs, sweeps = "/v1/jobs/", "/v1/sweeps/"
	switch {
	case strings.HasPrefix(path, jobs):
		jobID, _, _ = strings.Cut(path[len(jobs):], "/")
	case strings.HasPrefix(path, sweeps):
		sweepID, _, _ = strings.Cut(path[len(sweeps):], "/")
	}
	return jobID, sweepID
}

// AccessLog wraps next so every request logs one structured line to
// logger, correlated by request ID (and job/sweep ID when addressed).
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%d", reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", reqID)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start)) / float64(time.Millisecond),
			"request_id", reqID,
		}
		if jobID, sweepID := entityID(r.URL.Path); jobID != "" {
			attrs = append(attrs, "job_id", jobID)
		} else if sweepID != "" {
			attrs = append(attrs, "sweep_id", sweepID)
		}
		logger.Info("http", attrs...)
	})
}
