package simserver

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"fbdsim/internal/cluster"
	"fbdsim/internal/config"
	"fbdsim/internal/system"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenRun returns fixed, fully deterministic results so the rendered
// API responses are byte-stable.
func goldenRun(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
	return system.Results{
		Benchmarks: benchmarks,
		Cores:      len(benchmarks),
		IPC:        []float64{1.25},
		Cycles:     2_000_000,
	}, nil
}

// normalize re-indents raw JSON after overwriting the named volatile
// top-level fields (wall times and derived rates vary run to run) with
// fixed sentinels, so the remainder of the response is pinned exactly.
func normalize(t *testing.T, raw []byte, volatileFields ...string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response is not a JSON object: %v\n%s", err, raw)
	}
	for _, f := range volatileFields {
		if _, ok := m[f]; !ok {
			t.Errorf("expected volatile field %q missing from response", f)
		}
		m[f] = "<volatile>"
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update ./internal/simserver/): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("response differs from %s.\nThis test pins the public JSON shape: if the change is intentional,\nre-run with -update and review the diff.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func goldenBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestGoldenJobView pins the public JSON shape of a completed job
// response (GET /v1/jobs/{id} with embedded results).
func TestGoldenJobView(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun})
	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 42, "max_insts": 10000}`)
	waitState(t, ts, v.ID, StateDone)
	raw := goldenBody(t, ts, "/v1/jobs/"+v.ID)
	checkGolden(t, "jobview.golden.json", normalize(t, raw, "wall_ms", "sim_cycles_per_sec"))
}

// TestGoldenSweepView pins the public JSON shape of a completed sweep
// response (GET /v1/sweeps/{id}).
func TestGoldenSweepView(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun})
	_, v := postSweep(t, ts, `{
		"name": "golden",
		"configs": [{"name": "fbd", "preset": "fbd"}],
		"workloads": [{"benchmarks": ["swim"]}, {"benchmarks": ["applu"]}],
		"seeds": [42],
		"max_insts": 10000,
		"parallel": 1
	}`)
	waitSweepState(t, ts, v.ID, StateDone)
	raw := goldenBody(t, ts, "/v1/sweeps/"+v.ID)
	checkGolden(t, "sweepview.golden.json", normalize(t, raw, "wall_ms"))
}

// TestGoldenSweepPoints pins the NDJSON point stream of a sweep: Point
// deliberately carries no volatile fields, so the stream is byte-stable
// with parallel=1.
func TestGoldenSweepPoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun})
	_, v := postSweep(t, ts, `{
		"name": "golden",
		"configs": [{"name": "fbd", "preset": "fbd"}],
		"workloads": [{"benchmarks": ["swim"]}, {"benchmarks": ["applu"]}],
		"seeds": [42],
		"max_insts": 10000,
		"parallel": 1
	}`)
	waitSweepState(t, ts, v.ID, StateDone)
	raw := goldenBody(t, ts, "/v1/sweeps/"+v.ID+"/results")
	checkGolden(t, "sweeppoints.golden.ndjson", raw)
}

// goldenTierRun returns fixed estimate-tier results: the same counters as
// goldenRun plus the Estimate block a sampled/analytic run would carry.
func goldenTierRun(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error) {
	res, _ := goldenRun(ctx, cfg, benchmarks)
	res.Estimate = &system.EstimateInfo{
		Tier:            tier,
		TotalIPC:        1.25,
		CI95:            0.02,
		Windows:         12,
		DetailedInsts:   30_000,
		FunctionalInsts: 170_000,
	}
	return res, nil
}

// TestGoldenSampledJobView pins the JSON shape of a sampled job: the
// fidelity field on the view, the results' Estimate block (tier, CI,
// window accounting) and the headline ipc_ci95.
func TestGoldenSampledJobView(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun, RunTier: goldenTierRun})
	_, v, _ := postJob(t, ts, `{"benchmarks": ["swim"], "seed": 42, "max_insts": 10000, "fidelity": "sampled"}`)
	waitState(t, ts, v.ID, StateDone)
	raw := goldenBody(t, ts, "/v1/jobs/"+v.ID)
	checkGolden(t, "jobview_sampled.golden.json", normalize(t, raw, "wall_ms", "sim_cycles_per_sec"))
}

// TestGoldenSweepPointsFidelity pins the NDJSON point stream of a
// mixed-fidelity sweep: the cycle-accurate point carries no fidelity field
// (pre-fidelity journal compatibility), the analytic point is tagged and
// its key tier-prefixed.
func TestGoldenSweepPointsFidelity(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun, RunTier: goldenTierRun})
	_, v := postSweep(t, ts, `{
		"name": "golden-fidelity",
		"configs": [{"name": "fbd", "preset": "fbd"}, {"name": "fbd-triage", "preset": "fbd", "fidelity": "analytic"}],
		"workloads": [{"benchmarks": ["swim"]}],
		"seeds": [42],
		"max_insts": 10000,
		"parallel": 1
	}`)
	waitSweepState(t, ts, v.ID, StateDone)
	raw := goldenBody(t, ts, "/v1/sweeps/"+v.ID+"/results")
	checkGolden(t, "sweeppoints_fidelity.golden.ndjson", raw)
}

// TestGoldenErrorEnvelope pins the error envelope itself.
func TestGoldenErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: goldenRun})
	raw := goldenBody(t, ts, "/v1/jobs/job-999")
	checkGolden(t, "error.golden.json", raw)
}

// TestGoldenReadyz pins the structured /readyz document — probes and
// operators parse it, so shape drift must be a conscious decision.
func TestGoldenReadyz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, Run: goldenRun})
	raw := goldenBody(t, ts, "/readyz")
	checkGolden(t, "readyz.golden.json", raw)
}

// TestGoldenReadyzCoordinator pins the coordinator-role variant: the same
// document plus the live-worker gauge.
func TestGoldenReadyzCoordinator(t *testing.T) {
	co := cluster.NewCoordinator(cluster.Options{})
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, Coordinator: co, Run: goldenRun})
	raw := goldenBody(t, ts, "/readyz")
	checkGolden(t, "readyz_coordinator.golden.json", raw)
}

// goldenTenantServer builds a deterministic multi-tenant server: two
// tenants with distinct limits and a frozen clock, so bucket token counts
// in /readyz never drift.
func goldenTenantServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Options{
		Workers:    2,
		QueueDepth: 8,
		Run:        goldenRun,
		Tenants: mustTenants(t,
			"acme key-acme weight=3 rate=10 burst=5 max_active=4\nglobex key-globex\n"),
		ClusterKey: "key-cluster",
		Now:        func() time.Time { return time.Unix(7000, 0) },
	})
}

// TestGoldenTenantJobView pins the tenant-mode job document: the same
// shape as the open-mode golden plus the owning tenant and the scheduling
// class.
func TestGoldenTenantJobView(t *testing.T) {
	_, ts := goldenTenantServer(t)
	var v jobView
	status, _, raw := authedReq(t, ts, "POST", "/v1/jobs", "key-acme",
		`{"benchmarks": ["swim"], "seed": 42, "max_insts": 10000}`, &v)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", status, raw)
	}
	waitStateAuthed(t, ts, "key-acme", v.ID, StateDone)
	_, _, body := authedReq(t, ts, "GET", "/v1/jobs/"+v.ID, "key-acme", "", nil)
	checkGolden(t, "jobview_tenant.golden.json", normalize(t, body, "wall_ms", "sim_cycles_per_sec"))
}

// TestGoldenTenantReadyz pins the tenant-mode readiness document: the
// per-tenant quota table (active vs max_active, bucket tokens, weight)
// rides along with the open-mode fields, which stay byte-identical.
func TestGoldenTenantReadyz(t *testing.T) {
	_, ts := goldenTenantServer(t)
	_, _, raw := authedReq(t, ts, "GET", "/readyz", "", "", nil)
	checkGolden(t, "readyz_tenants.golden.json", raw)
}

// TestGoldenTenantMetrics pins the tenant-labeled Prometheus series.
// Only the tenant_* subset is golden'd — the rest of the exposition
// carries volatile process gauges — and one accepted plus one
// rate-limited submission make the counters nonzero so label rendering
// is actually exercised.
func TestGoldenTenantMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Run:     goldenRun,
		Tenants: mustTenants(t, "acme key-acme rate=1 burst=1\nglobex key-globex\n"),
		Now:     func() time.Time { return time.Unix(7000, 0) }, // frozen: no refill
	})
	var v jobView
	if status, _, raw := authedReq(t, ts, "POST", "/v1/jobs", "key-acme",
		`{"benchmarks": ["swim"], "seed": 42, "max_insts": 10000}`, &v); status != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", status, raw)
	}
	if status, _, _ := authedReq(t, ts, "POST", "/v1/jobs", "key-acme",
		`{"benchmarks": ["swim"], "seed": 43}`, nil); status != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429 (burst=1, frozen clock)", status)
	}
	waitStateAuthed(t, ts, "key-acme", v.ID, StateDone)

	_, _, raw := authedReq(t, ts, "GET", "/metrics?format=prom", "", "", nil)
	var lines []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "tenant_") {
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	checkGolden(t, "metrics_tenant.golden.prom", []byte(strings.Join(lines, "\n")+"\n"))
}
