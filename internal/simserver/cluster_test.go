package simserver

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"fbdsim/internal/cluster"
	"fbdsim/internal/config"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
)

// detRun is a deterministic fake simulation whose results distinguish grid
// points, so byte-identity comparisons between distributed and local runs
// are meaningful.
func detRun(calls *atomic.Int64) RunFunc {
	return func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
		if calls != nil {
			calls.Add(1)
		}
		return system.Results{
			Benchmarks: benchmarks,
			Cores:      len(benchmarks),
			IPC:        []float64{float64(cfg.Seed) / 8},
			Cycles:     100_000 + cfg.Seed*1000,
			Reads:      cfg.Seed * 7,
		}, nil
	}
}

// testCoordOptions are cluster timings tight enough for unit tests.
func testCoordOptions() cluster.Options {
	return cluster.Options{
		LeaseTTL:         2 * time.Second,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatTimeout: 200 * time.Millisecond,
		BatchPoints:      2,
		SpeculateAfter:   time.Hour,
	}
}

const clusterSweepBody = `{
	"name": "cluster",
	"configs": [{"name": "fbd", "preset": "fbd"}, {"name": "ap", "preset": "fbd-ap"}],
	"workloads": [{"benchmarks": ["swim"]}, {"benchmarks": ["mgrid"]}],
	"seeds": [1, 2, 3],
	"max_insts": 10000
}`

// startWorker brings up one worker server plus its agent loop, joined to
// the coordinator at coordURL.
func startWorker(t *testing.T, id, coordURL string, run RunFunc, journalDir string) *httptest.Server {
	t.Helper()
	s := New(Options{Workers: 2, Run: run, Role: "worker", JournalDir: journalDir})
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	agent := &cluster.Agent{ID: id, URL: ts.URL, Coordinator: coordURL}
	agentDone := make(chan struct{})
	go func() { defer close(agentDone); _ = agent.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-agentDone
		ts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return ts
}

func waitLiveWorkers(t *testing.T, co *cluster.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for co.LiveWorkerCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers became live", co.LiveWorkerCount(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchPoints reads a sweep's NDJSON result stream sorted by index.
func fetchPoints(t *testing.T, ts *httptest.Server, id string) []sweep.Point {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pts []sweep.Point
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, sc.Bytes())
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, k int) bool { return pts[i].Index < pts[k].Index })
	return pts
}

// TestClusterSweepOverHTTP runs a sweep through a coordinator with two
// joined workers, end to end over real HTTP, and asserts the distributed
// result set is identical to the same sweep on a standalone server.
func TestClusterSweepOverHTTP(t *testing.T) {
	co := cluster.NewCoordinator(testCoordOptions())
	coord, cts := newTestServer(t, Options{Workers: 2, Coordinator: co, Run: detRun(nil)})
	if coord.opts.Role != "coordinator" {
		t.Fatalf("role = %q, want coordinator", coord.opts.Role)
	}
	startWorker(t, "w0", cts.URL, detRun(nil), "")
	startWorker(t, "w1", cts.URL, detRun(nil), "")
	waitLiveWorkers(t, co, 2)

	status, v := postSweep(t, cts, clusterSweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", status)
	}
	final := waitSweepState(t, cts, v.ID, StateDone)
	if final.Progress.Completed != 12 || final.Progress.Failed != 0 {
		t.Fatalf("progress = %+v, want 12 completed", final.Progress)
	}
	got := fetchPoints(t, cts, v.ID)

	_, sts := newTestServer(t, Options{Workers: 2, Run: detRun(nil)})
	_, sv := postSweep(t, sts, clusterSweepBody)
	waitSweepState(t, sts, sv.ID, StateDone)
	want := fetchPoints(t, sts, sv.ID)

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed points differ from standalone run\ngot:  %+v\nwant: %+v", got, want)
	}
	if n := co.Counters().LeasesGranted; n < 2 {
		t.Errorf("LeasesGranted = %d, want >= 2 (two workers, batch 2)", n)
	}
}

// TestClusterRoleChecks pins the role gating of the membership endpoints:
// 409 on a non-coordinator, 404 for an unknown worker's heartbeat.
func TestClusterRoleChecks(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: detRun(nil)})
	for _, path := range []string{"/v1/cluster/join", "/v1/cluster/heartbeat"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(`{"id":"w0","url":"http://x"}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s on standalone = %d, want 409", path, resp.StatusCode)
		}
	}
	var cv clusterView
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&cv)
	resp.Body.Close()
	if cv.Role != "standalone" {
		t.Errorf("role = %q, want standalone", cv.Role)
	}

	co := cluster.NewCoordinator(testCoordOptions())
	_, cts := newTestServer(t, Options{Workers: 1, Coordinator: co, Run: detRun(nil)})
	resp, err = http.Post(cts.URL+"/v1/cluster/heartbeat", "application/json",
		bytes.NewReader([]byte(`{"id":"ghost"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown heartbeat = %d, want 404", resp.StatusCode)
	}
}

// postLease sends one lease to /v1/cluster/execute and decodes the NDJSON
// stream.
func postLease(t *testing.T, ts *httptest.Server, lease cluster.Lease) (int, []sweep.Point) {
	t.Helper()
	body, err := json.Marshal(lease)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/cluster/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var pts []sweep.Point
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p sweep.Point
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad lease stream line: %v", err)
		}
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, k int) bool { return pts[i].Index < pts[k].Index })
	return resp.StatusCode, pts
}

// TestClusterExecuteValidation pins the lease admission checks.
func TestClusterExecuteValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: detRun(nil)})

	status, _ := postLease(t, ts, cluster.Lease{ID: "l1"})
	if status != http.StatusBadRequest {
		t.Errorf("empty lease = %d, want 400", status)
	}

	cfg := config.Default()
	cfg.MaxInsts = 10000
	cfg.CPU.Cores = 1
	def := sweep.PointDef{
		Index: 0, Config: "fbd", Workload: "swim", Seed: cfg.Seed,
		Cfg: cfg, Benchmarks: []string{"swim"},
		Key: "not-the-right-key",
	}
	status, _ = postLease(t, ts, cluster.Lease{ID: "l2", Sweep: "s", Points: []sweep.PointDef{def}})
	if status != http.StatusBadRequest {
		t.Errorf("key-mismatch lease = %d, want 400", status)
	}

	def.Key = sweep.Key(cfg, def.Benchmarks)
	def.Benchmarks = []string{"no-such-benchmark"}
	status, _ = postLease(t, ts, cluster.Lease{ID: "l3", Sweep: "s", Points: []sweep.PointDef{def}})
	if status != http.StatusBadRequest {
		t.Errorf("unknown-benchmark lease = %d, want 400", status)
	}
}

// TestClusterExecuteJournalReplay proves worker-local persistence: a lease
// executed by one server process is answered from the journal by a fresh
// process sharing the journal directory, without re-simulating.
func TestClusterExecuteJournalReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := config.Default()
	cfg.MaxInsts = 10000
	cfg.CPU.Cores = 1
	mkLease := func() cluster.Lease {
		lease := cluster.Lease{ID: "l1", Sweep: "replay", Fingerprint: "fp-replay-test"}
		for i, seed := range []int64{1, 2, 3} {
			c := cfg
			c.Seed = seed
			lease.Points = append(lease.Points, sweep.PointDef{
				Index: i, Config: "fbd", Workload: "swim", Seed: seed,
				Cfg: c, Benchmarks: []string{"swim"}, Key: sweep.Key(c, []string{"swim"}),
			})
		}
		return lease
	}

	var calls1 atomic.Int64
	s1 := New(Options{Workers: 2, Run: detRun(&calls1), JournalDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	status, first := postLease(t, ts1, mkLease())
	if status != http.StatusOK || len(first) != 3 {
		t.Fatalf("first lease = %d with %d points, want 200 with 3", status, len(first))
	}
	if calls1.Load() != 3 {
		t.Fatalf("first lease simulated %d points, want 3", calls1.Load())
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	var calls2 atomic.Int64
	s2, ts2 := newTestServer(t, Options{Workers: 2, Run: detRun(&calls2), JournalDir: dir})
	status, second := postLease(t, ts2, mkLease())
	if status != http.StatusOK {
		t.Fatalf("replayed lease = %d, want 200", status)
	}
	if calls2.Load() != 0 {
		t.Errorf("replayed lease simulated %d points, want 0 (journal replay)", calls2.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replayed points differ from originals\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if got := s2.metrics.LeasePoints.Value(); got != 3 {
		t.Errorf("cluster_lease_points_total = %d, want 3", got)
	}
}

// TestClusterSweepSurvivesWorkerChurn kills one worker's agent (heartbeats
// stop) mid-sweep while its server keeps serving, and checks the sweep
// still completes with the correct result set.
func TestClusterSweepSurvivesWorkerChurn(t *testing.T) {
	co := cluster.NewCoordinator(testCoordOptions())
	_, cts := newTestServer(t, Options{Workers: 2, Coordinator: co, Run: detRun(nil)})

	// Worker 0: joined through the normal helper, lives for the whole test.
	startWorker(t, "w0", cts.URL, detRun(nil), "")
	// Worker 1: manually managed agent we can kill.
	ws := New(Options{Workers: 2, Run: detRun(nil), Role: "worker"})
	wts := httptest.NewServer(ws.Handler())
	t.Cleanup(func() {
		wts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = ws.Shutdown(ctx)
	})
	actx, acancel := context.WithCancel(context.Background())
	agent := &cluster.Agent{ID: "w1", URL: wts.URL, Coordinator: cts.URL}
	agentDone := make(chan struct{})
	go func() { defer close(agentDone); _ = agent.Run(actx) }()
	waitLiveWorkers(t, co, 2)

	// Kill w1's heartbeats, then submit: the coordinator will mark it dead
	// shortly and the whole grid must converge onto w0.
	acancel()
	<-agentDone

	status, v := postSweep(t, cts, clusterSweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", status)
	}
	final := waitSweepState(t, cts, v.ID, StateDone)
	if final.Progress.Completed != 12 {
		t.Fatalf("progress = %+v, want 12 completed", final.Progress)
	}
	got := fetchPoints(t, cts, v.ID)
	if len(got) != 12 {
		t.Fatalf("got %d points, want 12", len(got))
	}
	for i, p := range got {
		if p.Index != i || p.Err != "" {
			t.Fatalf("point %d = %+v, want index %d with no error", i, p, i)
		}
	}
}
