// Package simserver turns the simulator into a service: an HTTP JSON API
// that queues simulation jobs onto a bounded worker pool, deduplicates
// identical requests through an LRU result cache and in-flight coalescing,
// cancels running jobs through the simulator's context plumbing, and
// exposes its counters on an expvar-style /metrics endpoint.
//
// API:
//
//	POST   /v1/jobs                 submit {preset, config, benchmarks, seed, trace, ...}
//	GET    /v1/jobs/{id}            poll one job (results embedded when done)
//	GET    /v1/jobs/{id}/trace      Chrome trace_event JSON (jobs submitted with trace)
//	GET    /v1/jobs/{id}/timeline   epoch time-series CSV (jobs submitted with trace)
//	POST   /v1/jobs/{id}/pause      checkpoint a running job at the next boundary and stop it
//	GET    /v1/jobs/{id}/checkpoint download a paused job's snapshot artifact (binary)
//	DELETE /v1/jobs/{id}            cancel; returns the job's final state
//	GET    /v1/results/{key}        direct result-cache lookup by canonical key
//	POST   /v1/sweeps               submit a sweep grid {name, configs, workloads, seeds, ...}
//	GET    /v1/sweeps/{id}          poll a sweep (state + progress counters)
//	GET    /v1/sweeps/{id}/results  stream completed grid points as NDJSON (?follow=1 tails)
//	DELETE /v1/sweeps/{id}          cancel a sweep; returns its final state
//	POST   /v1/cluster/join         register a worker with the coordinator
//	POST   /v1/cluster/heartbeat    worker liveness beacon (404: re-join)
//	POST   /v1/cluster/execute      execute one lease, streaming its points as NDJSON
//	GET    /v1/cluster              cluster role, membership and failure counters
//	GET    /healthz                 liveness (503 while shutting down)
//	GET    /readyz                  readiness (503 when the queue is saturated or shutdown began)
//	GET    /metrics                 counter registry as JSON (?format=prom for Prometheus text)
//
// Every /v1 error response uses one envelope:
//
//	{"error": {"code": "not_found", "message": "no such job"}}
//
// where code is a stable machine-readable identifier (bad_request,
// not_found, conflict, queue_full, shutting_down, cancel_timeout) and
// message is human-readable detail.
//
// Sweeps run the internal/sweep engine against the same single-flight
// result cache as jobs, so sweep points, concurrent sweeps and individual
// job submissions all deduplicate against each other.
//
// Backpressure: when the job queue is full, submissions are refused with
// HTTP 429 and a Retry-After header. Shutdown stops intake immediately,
// drains in-flight jobs for a grace period, then cancels survivors.
//
// Resilience: a panic inside a simulation run is recovered by the worker —
// the job fails with the panic message, the pool survives. Jobs submitted
// with "retries": N re-run transient failures up to N times (capped by the
// server) with exponential backoff; panics, cancellations and deadline
// expiries are never retried.
package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fbdsim/internal/cluster"
	"fbdsim/internal/config"
	"fbdsim/internal/fidelity"
	"fbdsim/internal/memtrace"
	"fbdsim/internal/retry"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
	"fbdsim/internal/telemetry"
	"fbdsim/internal/trace"
)

// RunFunc executes one simulation. Tests substitute fakes; production uses
// system.RunWorkloadContext.
type RunFunc func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error)

// TierRunFunc executes one estimate-tier simulation ("sampled" or
// "analytic"). Tests substitute fakes; production uses fidelity.Run.
type TierRunFunc func(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error)

// Options configures a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue; a full queue rejects
	// submissions with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 256).
	CacheEntries int
	// JobTimeout is the per-job execution deadline; 0 means none.
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxInsts caps the per-job instruction budget a client may request;
	// 0 means no cap.
	MaxInsts int64
	// MaxJobRetries caps the per-job transient-failure retries a client
	// may request with the submit body's "retries" field (default 3).
	// Jobs retry only when they ask to; panics, cancellations and
	// deadline expiries are never retried.
	MaxJobRetries int
	// RetryBackoff is the first retry's delay, doubled per attempt
	// (default 50ms); RetryBackoffMax caps the doubling (default 2s).
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// SweepParallel caps the per-sweep shard parallelism a client may
	// request (default: Workers). Each sweep runs its own bounded pool;
	// this keeps one greedy sweep from oversubscribing the host.
	SweepParallel int
	// MaxSweepPoints caps the grid size of one sweep submission
	// (default 4096).
	MaxSweepPoints int
	// Coordinator, when non-nil, puts the server in coordinator role:
	// sweeps submitted to /v1/sweeps are leased out to registered workers
	// over the cluster protocol instead of simulated locally, and the
	// /v1/cluster membership endpoints come alive.
	Coordinator *cluster.Coordinator
	// Role labels the server's cluster role in /readyz and /v1/cluster:
	// "coordinator", "worker" or "standalone". Defaults to "coordinator"
	// when Coordinator is set and "standalone" otherwise; fbdserve passes
	// "worker" when joining a cluster.
	Role string
	// JournalDir, when set, persists sweep journals under it: coordinator
	// sweeps checkpoint to <dir>/sweep-<fp>.ndjson and lease execution
	// journals worker-side results to <dir>/worker-<fp>.ndjson, so both
	// halves of a distributed sweep survive kill -9. Empty disables
	// journaling.
	JournalDir string
	// Logger receives the server's structured lifecycle log (job and
	// sweep transitions, shutdown). Defaults to a discard logger so
	// embedding tests stay quiet; fbdserve passes its process logger.
	Logger *slog.Logger
	// Telemetry sizes the live-telemetry hub's per-stream rings; the zero
	// value takes the hub defaults.
	Telemetry telemetry.Options
	// Run overrides the simulation function (tests).
	Run RunFunc
	// RunTier overrides the estimate-tier executor (tests). Jobs and
	// sweep points submitted with "fidelity": "sampled" or "analytic" go
	// through it; everything else goes through Run.
	RunTier TierRunFunc
	// FastWorkers is the size of the dedicated pool draining the
	// fast lane — the queue analytic jobs are admitted to, so a
	// sub-second estimate is never stuck behind queued cycle-accurate
	// work (default 1).
	FastWorkers int
	// Tenants, when non-nil and non-empty, turns on multi-tenant mode:
	// every /v1 request must carry a keyfile bearer token, submissions are
	// charged against the tenant's token bucket and concurrency quota, and
	// the scheduler arbitrates fairly across tenants. Nil means open
	// access (single-tenant mode, backward compatible).
	Tenants *TenantSet
	// ClusterKey, when set alongside Tenants, is the shared secret the
	// /v1/cluster endpoints require instead of a tenant key: coordinators
	// and workers authenticate to each other with it.
	ClusterKey string
	// Now overrides the wall clock (tests). Queue-wait metrics and tenant
	// token buckets read it; the simulated-time clock package is unrelated.
	Now func() time.Time
}

func (o Options) norm() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxJobRetries <= 0 {
		o.MaxJobRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 2 * time.Second
	}
	if o.SweepParallel <= 0 {
		o.SweepParallel = o.Workers
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 4096
	}
	if o.Role == "" {
		if o.Coordinator != nil {
			o.Role = "coordinator"
		} else {
			o.Role = "standalone"
		}
	}
	if o.Logger == nil {
		// slog.DiscardHandler is newer than this module's Go baseline;
		// a text handler on io.Discard is the same thing.
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Run == nil {
		o.Run = system.RunWorkloadContext
	}
	if o.RunTier == nil {
		o.RunTier = func(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error) {
			return fidelity.Run(ctx, fidelity.Tier(tier), cfg, benchmarks)
		}
	}
	if o.FastWorkers <= 0 {
		o.FastWorkers = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StatePaused means the job's simulation was checkpointed at a cycle
	// boundary and stopped. The snapshot is served at
	// /v1/jobs/{id}/checkpoint and a new job submitted with
	// {"from_checkpoint": id} resumes it; the paused job itself never
	// transitions again.
	StatePaused State = "paused"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StatePaused
}

// job is one tracked simulation request.
type job struct {
	id         string
	key        string
	cfg        config.Config
	benchmarks []string
	// fidelity is the job's simulation tier: "" (cycle-accurate),
	// "sampled" or "analytic". Estimate tiers run through
	// Options.RunTier and cannot be paused, traced or checkpointed.
	fidelity  string
	submitted time.Time
	// retries is the client-requested transient-failure retry budget,
	// clamped to Options.MaxJobRetries at submission.
	retries int
	// class is the scheduler priority class derived from fidelity
	// (classForFidelity); tenant is the submitting principal, nil in
	// open-access mode.
	class  int
	tenant *Tenant

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal transition

	// pauseTrig asks the simulator to checkpoint at the next cycle
	// boundary and end the run with system.ErrPaused. restore, when
	// non-nil, is a snapshot the run starts from instead of cycle zero.
	pauseTrig *system.Trigger
	restore   []byte

	// stream is the job's live-telemetry channel: lifecycle state events
	// always, epoch samples when the job is traced. Set at registration,
	// closed with the terminal state.
	stream *telemetry.Stream

	mu       sync.Mutex
	state    State
	res      system.Results
	errMsg   string
	attempts int
	started  time.Time
	finished time.Time
	// checkpoint is the snapshot captured by a pause, stored before the
	// paused transition so the artifact is ready the moment done closes.
	checkpoint []byte
}

// snapshotView renders the job for JSON responses.
func (j *job) snapshotView(withResults bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:              j.id,
		Key:             j.key,
		State:           string(j.state),
		Class:           classNames[j.class],
		Tenant:          j.tenantName(),
		Benchmarks:      j.benchmarks,
		Fidelity:        j.fidelity,
		Attempts:        j.attempts,
		Error:           j.errMsg,
		CheckpointBytes: len(j.checkpoint),
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		wall := j.finished.Sub(j.started)
		v.WallMS = float64(wall) / float64(time.Millisecond)
		if j.state == StateDone && wall > 0 {
			v.SimCyclesPerSec = float64(j.res.Cycles) / wall.Seconds()
		}
	}
	if j.state == StateDone {
		v.TotalIPC = j.res.TotalIPC()
		if e := j.res.Estimate; e != nil {
			v.IPCCI95 = e.CI95
		}
	}
	if withResults && j.state == StateDone {
		res := j.res
		v.Results = &res
	}
	return v
}

// tryStart moves queued -> running; false if the job was cancelled while
// waiting in the queue.
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state and wakes waiters.
func (j *job) finish(state State, res system.Results, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.res = res
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
	j.closeStream(state)
}

func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// tenantName is the job's owning tenant for views, logs and the
// scheduler's flow key; empty in open-access mode.
func (j *job) tenantName() string {
	if j.tenant == nil {
		return defaultTenant
	}
	return j.tenant.Name
}

// coalesceKey is the tenant-scoped key the job is registered under in
// s.byKey.
func (j *job) coalesceKey() string {
	return coalesceKey(j.tenant, j.key)
}

// releaseQuota returns the job's admission unit to its tenant; safe to
// call for open-access jobs.
func (j *job) releaseQuota() {
	if j.tenant != nil {
		j.tenant.release()
	}
}

// Server is the simulation service: scheduler, worker pool, cache, metrics.
type Server struct {
	opts    Options
	metrics *Metrics
	cache   *sweep.Cache
	// sched is the admission queue: strict priority across fidelity
	// classes, weighted deficit round-robin across tenants within a class
	// (see sched.go). It subsumes the old FIFO channel pair.
	sched   *scheduler
	tenants *TenantSet
	// now is the wall-clock seam (Options.Now): queue-wait accounting and
	// tenant token buckets read it, so fairness tests can drive virtual
	// time deterministically.
	now     func() time.Time
	hub     *telemetry.Hub
	log     *slog.Logger
	started time.Time
	occ     occHistory

	baseCtx    context.Context
	baseCancel context.CancelFunc
	// shutdownCh closes the moment Shutdown begins, so long-lived
	// streaming handlers (SSE) end promptly instead of pinning the HTTP
	// drain until the grace period expires.
	shutdownCh chan struct{}

	// retryPol backs off transient job-retry attempts: capped exponential
	// with full jitter (internal/retry), built from Options.RetryBackoff.
	retryPol retry.Policy

	mu     sync.Mutex
	jobs   map[string]*job
	byKey  map[string]*job // queued/running jobs, for coalescing
	sweeps map[string]*sweepJob
	// clusterJournals holds this worker's lease-execution journals, one
	// per sweep fingerprint, opened lazily by /v1/cluster/execute and
	// closed at Shutdown.
	clusterJournals map[string]*workerJournal
	closed          bool
	nextID          int64
	nextSweepID     int64

	busy     atomic.Int64
	workerWG sync.WaitGroup
	sweepWG  sync.WaitGroup
	shutOnce sync.Once
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	o := opts.norm()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       o,
		metrics:    newMetrics(),
		cache:      sweep.NewCache(o.CacheEntries),
		sched:      newScheduler(o.QueueDepth),
		tenants:    o.Tenants,
		now:        o.Now,
		hub:        telemetry.NewHub(o.Telemetry),
		log:        o.Logger,
		started:    time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		shutdownCh: make(chan struct{}),
		retryPol: retry.Policy{
			Initial: o.RetryBackoff, Max: o.RetryBackoffMax, Jitter: true,
		},
		jobs:            make(map[string]*job),
		byKey:           make(map[string]*job),
		sweeps:          make(map[string]*sweepJob),
		clusterJournals: make(map[string]*workerJournal),
	}
	reg := s.metrics.Registry()
	reg.Func("queue_depth", func() any { _, slow := s.sched.depths(); return slow })
	reg.Func("fast_queue_depth", func() any { fast, _ := s.sched.depths(); return fast })
	reg.Func("workers", func() any { return o.Workers })
	reg.Func("workers_busy", func() any { return s.busy.Load() })
	reg.Func("cache_entries", func() any { return s.cache.Len() })
	reg.Func("sweeps_active", func() any { return s.activeSweeps() })
	reg.Func("uptime_seconds", func() any { return time.Since(s.started).Seconds() })
	reg.Func("build_info", func() any { return buildInfo(s.started) })
	if co := o.Coordinator; co != nil {
		reg.Func("cluster_workers_live", func() any { return co.LiveWorkerCount() })
		reg.Func("cluster_workers_joined", func() any { return co.Counters().WorkersJoined })
		reg.Func("cluster_workers_lost", func() any { return co.Counters().WorkersLost })
		reg.Func("cluster_leases_granted", func() any { return co.Counters().LeasesGranted })
		reg.Func("cluster_leases_expired", func() any { return co.Counters().LeasesExpired })
		reg.Func("cluster_leases_speculated", func() any { return co.Counters().LeasesSpeculated })
		reg.Func("cluster_points_requeued", func() any { return co.Counters().PointsRequeued })
		reg.Func("cluster_points_duplicate", func() any { return co.Counters().PointsDuplicate })
	}
	// Per-tenant gauges: the label set is the keyfile's tenant list, fixed
	// at startup, so cardinality is bounded by configuration, never by
	// request data.
	for _, name := range s.tenants.Names() {
		t := s.tenants.ByName(name)
		labels := map[string]string{"tenant": name}
		reg.LabeledFunc("tenant_queued", labels, func() any { return s.sched.queuedFor(name) })
		reg.LabeledFunc("tenant_active", labels, func() any { return t.activeCount() })
		s.metrics.tenantRejected[name] = reg.LabeledCounter("tenant_rejected", labels)
		s.metrics.tenantAccepted[name] = reg.LabeledCounter("tenant_accepted", labels)
	}
	for i := 0; i < o.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	for i := 0; i < o.FastWorkers; i++ {
		s.workerWG.Add(1)
		go s.fastWorker()
	}
	return s
}

// Metrics exposes the server's counters (tests, embedding binaries).
func (s *Server) Metrics() *Metrics { return s.metrics }

// worker pulls from every scheduler class in strict priority order until
// the scheduler is closed and drained by Shutdown. An idle general worker
// therefore helps the analytic class first, then sampled, cycle-accurate
// and finally batch slot tickets.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		it, ok := s.sched.next(classBatch)
		if !ok {
			return
		}
		if it.j != nil {
			s.runJob(it.j)
		} else {
			s.serveTicket(it.tk)
		}
	}
}

// fastWorker serves only the analytic class, so estimates keep their
// sub-second latency even when every general worker is deep in a
// cycle-accurate run or parked on a sweep slot.
func (s *Server) fastWorker() {
	defer s.workerWG.Done()
	for {
		it, ok := s.sched.next(classAnalytic)
		if !ok {
			return
		}
		if it.j != nil {
			s.runJob(it.j)
		} else {
			s.serveTicket(it.tk)
		}
	}
}

// panicError marks a job failure caused by a recovered simulation panic.
// Panics are deterministic model bugs, never retried.
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// retryable reports whether a failed attempt may be retried: cancellation,
// deadline expiry, panics and pauses are final; other errors are treated as
// transient when the job asked for retries.
func retryable(err error) bool {
	var pe *panicError
	if errors.As(err, &pe) {
		return false
	}
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, system.ErrPaused)
}

// runSim executes one simulation attempt, converting a panic in the
// simulation into an error so a crashing run fails its job instead of
// killing the worker (and with it the whole server).
func (s *Server) runSim(ctx context.Context, j *job) (res system.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Panics.Inc()
			res, err = system.Results{}, &panicError{msg: fmt.Sprintf("simulation panicked: %v", r)}
		}
	}()
	j.mu.Lock()
	j.attempts++
	j.mu.Unlock()
	if j.fidelity != "" {
		return s.opts.RunTier(ctx, j.fidelity, j.cfg, j.benchmarks)
	}
	return s.opts.Run(ctx, j.cfg, j.benchmarks)
}

// runJob executes one job — retrying transient failures up to the job's
// requested budget — and records its outcome.
func (s *Server) runJob(j *job) {
	if !j.tryStart() {
		// Cancelled while queued; cancelJob already finished it.
		return
	}
	s.metrics.ObserveQueueWait(s.now().Sub(j.submitted))
	j.publishState(StateRunning)
	s.busy.Add(1)
	defer s.busy.Add(-1)

	ctx := j.ctx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	// Estimate-tier jobs skip the cycle-accurate context plumbing: the
	// sampled tier drives the machine through its own stepping API (an
	// armed checkpoint spec would corrupt its window surgery) and the
	// analytic tier has no machine at all. Pause, checkpoint and trace
	// are rejected for these jobs at submission.
	if j.fidelity == "" {
		// Arm the pause trigger: when fired, the simulator snapshots itself at
		// the next cycle boundary, hands the bytes here, and ends the run with
		// ErrPaused. The checkpoint is stored before finish() runs, so the
		// artifact is available the moment the job reports "paused". A RunFunc
		// that ignores the context (test fakes) simply never pauses.
		ctx = system.WithCheckpoint(ctx, system.CheckpointSpec{
			Trigger: j.pauseTrig,
			OnCheckpoint: func(cp system.Checkpoint) error {
				j.mu.Lock()
				j.checkpoint = append([]byte(nil), cp.Data...)
				j.mu.Unlock()
				return nil
			},
		})
		if j.restore != nil {
			ctx = system.WithRestore(ctx, system.RestoreSpec{Data: j.restore})
		}
		// Traced jobs publish their epoch series live: the hub sink rides the
		// recorder's epoch-flush seam, so untraced jobs pay nothing and traced
		// ones pay one publish per 1024-cycle measurement boundary.
		if j.cfg.Trace.Enabled && j.stream != nil {
			ctx = system.WithEpochSink(ctx, telemetry.NewJobSink(j.stream))
		}
	}
	start := time.Now()
	var (
		res system.Results
		err error
	)
	for attempt := 1; ; attempt++ {
		res, err = s.runSim(ctx, j)
		if err == nil || attempt > j.retries || !retryable(err) {
			break
		}
		s.metrics.Retries.Inc()
		if s.retryPol.Sleep(ctx, attempt) != nil {
			err = ctx.Err()
			break
		}
	}
	wall := time.Since(start)

	s.mu.Lock()
	if s.byKey[j.coalesceKey()] == j {
		delete(s.byKey, j.coalesceKey())
	}
	s.mu.Unlock()
	defer j.releaseQuota()

	s.metrics.ObserveRunDuration(wall)

	switch {
	case err == nil:
		s.cache.Put(j.key, res)
		s.metrics.ObserveWall(wall)
		s.metrics.SimCycles.Add(res.Cycles)
		s.metrics.Completed.Inc()
		j.finish(StateDone, res, "")
	case errors.Is(err, system.ErrPaused):
		s.metrics.Paused.Inc()
		j.finish(StatePaused, system.Results{}, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.Cancelled.Inc()
		j.finish(StateCancelled, system.Results{}, err.Error())
	default:
		s.metrics.Failed.Inc()
		j.finish(StateFailed, system.Results{}, err.Error())
	}
	j.mu.Lock()
	state, attempts := j.state, j.attempts
	j.mu.Unlock()
	s.log.Info("job finished",
		"job_id", j.id, "state", string(state),
		"wall_ms", float64(wall)/float64(time.Millisecond), "attempts", attempts)
}

// Shutdown stops intake, then waits for queued and running jobs to drain.
// When ctx expires first, every remaining job is cancelled through the
// simulator's context plumbing and Shutdown still waits (briefly) for the
// workers to observe the cancellation. Subsequent submissions are refused
// with 503. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		// No submission can be in flight past this point: enqueue happens
		// under s.mu with the closed check. Closing the scheduler stops
		// intake; workers keep draining what is already queued. Draining
		// sweeps acquire their slots ungated from here on, so they cannot
		// deadlock against exiting workers.
		s.sched.close()
		// Wake every SSE handler so streaming connections end now, not at
		// the end of the HTTP server's grace period.
		close(s.shutdownCh)
		s.log.Info("shutdown started")
	})
	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		s.sweepWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.closeClusterJournals()
		return nil
	case <-ctx.Done():
		s.baseCancel() // cancel every job context; workers unwind fast
		<-drained
		s.closeClusterJournals()
		return ctx.Err()
	}
}

// ------------------------------------------------------------------ HTTP

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	// Preset names a base configuration: ddr2, fbd (default), fbd-ap,
	// fbd-apfl.
	Preset string `json:"preset"`
	// Config optionally overrides preset fields; unknown fields are
	// rejected, mirroring config.Load.
	Config json.RawMessage `json:"config"`
	// Benchmarks is the per-core program list (required).
	Benchmarks []string `json:"benchmarks"`
	Seed       int64    `json:"seed"`
	MaxInsts   int64    `json:"max_insts"`
	Warmup     int64    `json:"warmup_insts"`
	// Trace enables the memtrace recorder for this job; the trace and
	// timeline artifacts are then served at /v1/jobs/{id}/trace and
	// /v1/jobs/{id}/timeline once the job completes.
	Trace bool `json:"trace"`
	// Fidelity selects the simulation tier: "cycle-accurate" (or "",
	// the default), "sampled" or "analytic". Analytic jobs are admitted
	// to a dedicated fast lane and never queue behind cycle-accurate
	// work; sampled and analytic jobs cannot be traced, paused or
	// checkpointed.
	Fidelity string `json:"fidelity"`
	// Retries requests up to this many transient-failure retries (capped
	// by the server's MaxJobRetries). Cancellations, deadline expiries
	// and panics are never retried.
	Retries int `json:"retries"`
	// FromCheckpoint names a paused job whose snapshot this submission
	// resumes. The new job runs the source job's exact configuration and
	// workload from the checkpointed cycle; every other field except
	// retries must be left unset (the snapshot's fingerprint pins the
	// machine identity, so overrides could only fail at restore time).
	FromCheckpoint string `json:"from_checkpoint"`
}

// jobView is the JSON rendering of a job.
type jobView struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Class is the scheduler priority class the job was admitted under:
	// "analytic", "sampled", "cycle-accurate" or "batch" (see sched.go).
	Class string `json:"class"`
	// Tenant is the owning principal's keyfile name; absent in
	// open-access mode, so pre-multi-tenant clients and goldens are
	// unaffected.
	Tenant     string   `json:"tenant,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Fidelity is the job's simulation tier; absent means
	// cycle-accurate (so pre-fidelity clients and goldens see
	// byte-identical responses).
	Fidelity string `json:"fidelity,omitempty"`
	// TotalIPC is the done job's headline result; IPCCI95 is the 95%
	// confidence half-width on it for sampled jobs (absent otherwise).
	TotalIPC  float64 `json:"total_ipc,omitempty"`
	IPCCI95   float64 `json:"ipc_ci95,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	WallMS    float64 `json:"wall_ms,omitempty"`
	// SimCyclesPerSec is the completed job's simulation throughput:
	// simulated CPU cycles divided by the attempt's wall time.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// CheckpointBytes is the size of a paused job's snapshot artifact.
	CheckpointBytes int             `json:"checkpoint_bytes,omitempty"`
	Error           string          `json:"error,omitempty"`
	Results         *system.Results `json:"results,omitempty"`
}

// route is one entry of the server's route table: the single source of
// truth for mux registration, per-route authentication, and the OpenAPI
// contract — the spec-drift test asserts this table and api/openapi.yaml
// describe exactly the same method/path surface.
type route struct {
	method  string
	pattern string
	auth    authKind
	h       http.HandlerFunc
}

// routes returns the full API surface. Add routes here (and to
// api/openapi.yaml — the drift test enforces the pairing), never directly
// on the mux.
func (s *Server) routes() []route {
	return []route{
		{"POST", "/v1/jobs", authTenant, s.handleSubmit},
		{"GET", "/v1/jobs", authTenant, s.handleJobs},
		{"GET", "/v1/jobs/{id}", authTenant, s.handleGet},
		{"GET", "/v1/jobs/{id}/trace", authTenant, s.handleTrace},
		{"GET", "/v1/jobs/{id}/timeline", authTenant, s.handleTimeline},
		{"GET", "/v1/jobs/{id}/events", authTenant, s.handleJobEvents},
		{"GET", "/v1/jobs/{id}/stats", authTenant, s.handleJobStats},
		{"POST", "/v1/jobs/{id}/pause", authTenant, s.handlePause},
		{"GET", "/v1/jobs/{id}/checkpoint", authTenant, s.handleCheckpoint},
		{"DELETE", "/v1/jobs/{id}", authTenant, s.handleCancel},
		{"GET", "/v1/results/{key}", authTenant, s.handleResult},
		{"POST", "/v1/sweeps", authTenant, s.handleSweepSubmit},
		{"GET", "/v1/sweeps/{id}", authTenant, s.handleSweepGet},
		{"GET", "/v1/sweeps/{id}/results", authTenant, s.handleSweepResults},
		{"GET", "/v1/sweeps/{id}/events", authTenant, s.handleSweepEvents},
		{"DELETE", "/v1/sweeps/{id}", authTenant, s.handleSweepCancel},
		{"POST", "/v1/cluster/join", authCluster, s.handleClusterJoin},
		{"POST", "/v1/cluster/heartbeat", authCluster, s.handleClusterHeartbeat},
		{"POST", "/v1/cluster/execute", authCluster, s.handleClusterExecute},
		{"GET", "/v1/cluster", authCluster, s.handleClusterStatus},
		{"GET", "/v1/dashboard", authTenant, s.handleDashboard},
		{"GET", "/v1/version", authOpen, s.handleVersion},
		{"GET", "/healthz", authOpen, s.handleHealth},
		{"GET", "/readyz", authOpen, s.handleReady},
		{"GET", "/metrics", authOpen, s.handleMetrics},
	}
}

// Handler returns the server's HTTP API with per-route authentication.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.HandleFunc(rt.method+" "+rt.pattern, s.withAuth(rt.auth, rt.h))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Stable machine-readable error codes carried by every /v1 error response.
const (
	codeBadRequest    = "bad_request"
	codeNotFound      = "not_found"
	codeConflict      = "conflict"
	codeQueueFull     = "queue_full"
	codeShuttingDown  = "shutting_down"
	codeCancelTimeout = "cancel_timeout"
	codePauseTimeout  = "pause_timeout"
	codeInternal      = "internal"
	// Multi-tenant mode codes: missing/unknown bearer token, a valid token
	// reaching another principal's resource, and the two 429 variants — a
	// token-bucket rate rejection and a concurrency-quota rejection. Both
	// 429s carry a Retry-After header.
	codeUnauthorized  = "unauthorized"
	codeForbidden     = "forbidden"
	codeRateLimited   = "rate_limited"
	codeQuotaExceeded = "quota_exceeded"
)

// errorView is the uniform error envelope of the /v1 API:
// {"error": {"code": ..., "message": ...}}.
type errorView struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorView{Error: errorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// resolveConfig materializes a preset name plus an optional strict JSON
// overlay into a Config. It is the shared front half of job and sweep
// config resolution.
func resolveConfig(preset string, overlay json.RawMessage) (config.Config, error) {
	var cfg config.Config
	switch preset {
	case "", "fbd":
		cfg = config.Default()
	case "ddr2":
		cfg = config.DDR2Baseline()
	case "fbd-ap":
		cfg = config.WithAMBPrefetch(config.Default())
	case "fbd-apfl":
		cfg = config.WithFullLatencyHits(config.Default())
	default:
		return config.Config{}, fmt.Errorf("unknown preset %q (want ddr2, fbd, fbd-ap, fbd-apfl)", preset)
	}
	if len(overlay) > 0 {
		dec := json.NewDecoder(bytes.NewReader(overlay))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&cfg); err != nil {
			return config.Config{}, fmt.Errorf("config overrides: %v", err)
		}
	}
	return cfg, nil
}

// validBenchmarks rejects unknown program names.
func validBenchmarks(benchmarks []string) error {
	for _, b := range benchmarks {
		if _, err := trace.ProfileFor(b); err != nil {
			return fmt.Errorf("unknown benchmark %q (valid: %v)", b, trace.AllProgramNames())
		}
	}
	return nil
}

// buildConfig resolves preset + overrides + budgets into a validated Config.
func (s *Server) buildConfig(req *submitRequest) (config.Config, error) {
	cfg, err := resolveConfig(req.Preset, req.Config)
	if err != nil {
		return config.Config{}, err
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.MaxInsts > 0 {
		cfg.MaxInsts = req.MaxInsts
	}
	if req.Warmup > 0 {
		cfg.WarmupInsts = req.Warmup
	}
	if req.Trace {
		cfg.Trace.Enabled = true
	}
	if s.opts.MaxInsts > 0 && cfg.MaxInsts > s.opts.MaxInsts {
		return config.Config{}, fmt.Errorf("max_insts %d exceeds server cap %d", cfg.MaxInsts, s.opts.MaxInsts)
	}
	if len(req.Benchmarks) == 0 {
		return config.Config{}, errors.New("benchmarks list is required")
	}
	if err := validBenchmarks(req.Benchmarks); err != nil {
		return config.Config{}, err
	}
	cfg.CPU.Cores = len(req.Benchmarks)
	if err := cfg.Validate(); err != nil {
		return config.Config{}, err
	}
	return cfg, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "decoding request: %v", err)
		return
	}
	if req.FromCheckpoint != "" {
		if req.Fidelity != "" {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"from_checkpoint resumes cycle-accurately; fidelity cannot accompany it")
			return
		}
		s.resumeFromCheckpoint(w, r, &req)
		return
	}
	tier, err := fidelity.Parse(req.Fidelity)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	fid := ""
	if tier != fidelity.CycleAccurate {
		fid = string(tier)
	}
	if fid != "" && req.Trace {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"tracing requires cycle-accurate fidelity; %s jobs return estimates", fid)
		return
	}
	cfg, err := s.buildConfig(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	s.admit(w, r, fidelity.Key(tier, cfg, req.Benchmarks), cfg, req.Benchmarks, req.Retries, nil, fid)
}

// resumeFromCheckpoint admits a job that continues a paused job's simulation
// from its stored snapshot instead of cycle zero. The resumed run replays
// the exact machine, so it shares the source job's cache key: a cached or
// in-flight identical run satisfies the resume without simulating.
func (s *Server) resumeFromCheckpoint(w http.ResponseWriter, r *http.Request, req *submitRequest) {
	if req.Preset != "" || len(req.Config) > 0 || len(req.Benchmarks) > 0 ||
		req.Seed != 0 || req.MaxInsts != 0 || req.Warmup != 0 || req.Trace {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"from_checkpoint resumes the source job's exact configuration; only \"retries\" may accompany it")
		return
	}
	src := s.lookup(req.FromCheckpoint)
	if src == nil || !s.ownsJob(r, src) {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job %q", req.FromCheckpoint)
		return
	}
	src.mu.Lock()
	state, data := src.state, src.checkpoint
	src.mu.Unlock()
	if state != StatePaused || len(data) == 0 {
		writeError(w, http.StatusConflict, codeConflict,
			"job %s is %s; only a paused job's checkpoint can be resumed", src.id, state)
		return
	}
	s.admit(w, r, src.key, src.cfg, src.benchmarks, req.Retries, data, "")
}

// chargeTenant runs the multi-tenant admission gates — token-bucket rate,
// then concurrency quota — writing the 429 (with Retry-After) itself on
// rejection. On success one admission unit is held; the caller must pair
// it with tenant.release() when the work leaves the system. A nil tenant
// (open-access mode) always passes.
func (s *Server) chargeTenant(w http.ResponseWriter, t *Tenant) bool {
	if t == nil {
		return true
	}
	verdict := t.admitOne(s.now())
	if verdict.ok {
		return true
	}
	if c := s.metrics.tenantRejected[t.Name]; c != nil {
		c.Inc()
	}
	s.metrics.Rejected.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int(verdict.retryAfter.Seconds()+0.5)))
	if verdict.code == codeQuotaExceeded {
		writeError(w, http.StatusTooManyRequests, codeQuotaExceeded,
			"tenant %q has %d submissions active (max_active %d); retry later", t.Name, t.activeCount(), t.MaxActive)
		return false
	}
	writeError(w, http.StatusTooManyRequests, codeRateLimited,
		"tenant %q exceeded its submission rate (%g/s); retry later", t.Name, t.Rate)
	return false
}

// coalesceKey scopes in-flight coalescing to one tenant: identical
// submissions from different tenants must not share a job record (the
// follower would be handed a job it cannot read), while the result cache
// stays shared — a completed simulation is tenant-neutral data.
func coalesceKey(t *Tenant, key string) string {
	if t == nil {
		return key
	}
	return t.Name + "\x00" + key
}

// admit runs the shared admission path: tenant rate/quota gates, cache
// fast path, in-flight coalescing, then enqueue into the fair-share
// scheduler. restore, when non-nil, is the snapshot the job starts from.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, key string, cfg config.Config, benchmarks []string, retries int, restore []byte, fid string) {
	tenant := s.tenantFrom(r)
	if !s.chargeTenant(w, tenant) {
		return
	}
	ckey := coalesceKey(tenant, key)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		return
	}
	// Fast path 1: an identical completed run is cached. The response job
	// is born terminal, so its quota unit is returned immediately.
	if res, ok := s.cache.Get(key); ok {
		id := s.newIDLocked()
		j := s.newJobLocked(id, key, cfg, benchmarks, 0)
		j.fidelity = fid
		j.class = classForFidelity(fid)
		j.tenant = tenant
		j.finish(StateDone, res, "")
		j.cancel() // release the job context; nothing will run
		s.metrics.Accepted.Inc()
		s.metrics.CacheHits.Inc()
		s.countAccepted(tenant)
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		v := j.snapshotView(true)
		v.Cached = true
		writeJSON(w, http.StatusOK, v)
		return
	}
	// Fast path 2: an identical job from the same tenant is already
	// queued or running — coalesce onto it instead of simulating twice.
	if existing, ok := s.byKey[ckey]; ok {
		s.metrics.Accepted.Inc()
		s.metrics.CacheHits.Inc()
		s.countAccepted(tenant)
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		v := existing.snapshotView(false)
		v.Coalesced = true
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	// Slow path: a fresh simulation enters the scheduler under its
	// fidelity class; the analytic class's dedicated workers guarantee an
	// estimate never waits behind queued cycle-accurate simulations, and
	// WDRR arbitrates across tenants inside each class.
	id := s.newIDLocked()
	j := s.newJobLocked(id, key, cfg, benchmarks, retries)
	j.fidelity = fid
	j.class = classForFidelity(fid)
	j.tenant = tenant
	j.restore = restore
	if !s.sched.offerJob(j) {
		delete(s.jobs, id)
		j.cancel()
		s.metrics.Rejected.Inc()
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, codeQueueFull, "job queue full (depth %d); retry later", s.opts.QueueDepth)
		return
	}
	s.byKey[ckey] = j
	s.metrics.Accepted.Inc()
	s.metrics.CacheMisses.Inc()
	s.countAccepted(tenant)
	s.mu.Unlock()
	s.log.Info("job accepted", "job_id", j.id, "benchmarks", benchmarks,
		"traced", cfg.Trace.Enabled, "fidelity", fidelity.Tier(fid).String(),
		"class", classNames[j.class], "tenant", j.tenantName())
	writeJSON(w, http.StatusAccepted, j.snapshotView(false))
}

// countAccepted bumps the per-tenant acceptance counter when one exists.
func (s *Server) countAccepted(t *Tenant) {
	if t == nil {
		return
	}
	if c := s.metrics.tenantAccepted[t.Name]; c != nil {
		c.Inc()
	}
}

// newIDLocked mints a job id; caller holds s.mu.
func (s *Server) newIDLocked() string {
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

// newJobLocked creates and registers a job record; caller holds s.mu.
func (s *Server) newJobLocked(id, key string, cfg config.Config, benchmarks []string, retries int) *job {
	if retries < 0 {
		retries = 0
	}
	if retries > s.opts.MaxJobRetries {
		retries = s.opts.MaxJobRetries
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:         id,
		key:        key,
		cfg:        cfg,
		benchmarks: append([]string(nil), benchmarks...),
		submitted:  s.now(),
		retries:    retries,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		state:      StateQueued,
		pauseTrig:  &system.Trigger{},
		stream:     s.hub.Open(id),
	}
	j.publishState(StateQueued)
	s.jobs[id] = j
	return j
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobsView is the GET /v1/jobs body: every tracked job in submission
// order, without embedded results (poll GET /v1/jobs/{id} for those). Each
// entry carries the job's fidelity tier, and for done jobs the headline
// total IPC — with its 95% confidence half-width when the job ran sampled.
type jobsView struct {
	Jobs []jobView `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	idOrder(ids)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := jobsView{Jobs: make([]jobView, 0, len(jobs))}
	for _, j := range jobs {
		// Multi-tenant mode lists only the requester's own jobs.
		if !s.ownsJob(r, j) {
			continue
		}
		out.Jobs = append(out.Jobs, j.snapshotView(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshotView(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j)
	// The simulator polls its context at cycle-batch granularity, so a
	// running job reaches a terminal state within milliseconds; wait for
	// it so the response carries the final state.
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, codeCancelTimeout, "cancellation still in flight")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshotView(false))
}

// cancelJob cancels one job whatever its phase. A queued job is finished
// immediately (the worker will skip it); a running one is stopped through
// its context and the worker records the outcome.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	if j.state == StateQueued {
		// Atomic with tryStart (both hold j.mu): the worker cannot start
		// this job anymore.
		j.state = StateCancelled
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		close(j.done)
		j.closeStream(StateCancelled)
		s.mu.Lock()
		if s.byKey[j.coalesceKey()] == j {
			delete(s.byKey, j.coalesceKey())
		}
		s.mu.Unlock()
		s.metrics.Cancelled.Inc()
		j.releaseQuota()
		j.cancel()
		return
	}
	j.mu.Unlock()
	j.cancel()
}

// handlePause fires a running job's pause trigger and waits for the
// simulator to take the checkpoint. The trigger is observed at the next
// 1024-cycle boundary, so the wait is milliseconds; the response carries the
// job's resulting state — normally "paused", or "done" when the run crossed
// the finish line before the trigger landed.
func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	if j.fidelity != "" {
		writeError(w, http.StatusConflict, codeConflict,
			"%s jobs cannot be paused; only cycle-accurate simulations checkpoint", j.fidelity)
		return
	}
	switch state := j.currentState(); state {
	case StateRunning:
	case StateQueued:
		writeError(w, http.StatusConflict, codeConflict,
			"job is queued; pause applies to a running job (cancel it instead)")
		return
	default:
		writeError(w, http.StatusConflict, codeConflict, "job is already %s", state)
		return
	}
	j.pauseTrig.Fire()
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, codePauseTimeout, "pause still in flight")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshotView(false))
}

// handleCheckpoint serves a paused job's snapshot artifact. The bytes are
// the simulator's versioned snapshot container, suitable for
// "from_checkpoint" resubmission or offline fbdsim -restore.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, data := j.state, j.checkpoint
	j.mu.Unlock()
	switch {
	case !state.terminal():
		writeError(w, http.StatusConflict, codeConflict, "job is %s; pause it to produce a checkpoint", state)
		return
	case len(data) == 0:
		writeError(w, http.StatusNotFound, codeNotFound, "job %s has no checkpoint artifact", state)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+".snapshot"))
	_, _ = w.Write(data)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Get(r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no cached result for key")
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyView is the structured /readyz body: one document whatever the
// verdict, so probes and operators read capacity and cluster posture from
// the same endpoint that gates routing.
type readyView struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Workers       int    `json:"workers"`
	WorkersBusy   int64  `json:"workers_busy"`
	SweepsActive  int    `json:"sweeps_active"`
	ClusterRole   string `json:"cluster_role"`
	// ClusterWorkersLive is the coordinator's live-worker count; absent
	// outside coordinator role.
	ClusterWorkersLive *int `json:"cluster_workers_live,omitempty"`
	// Tenants is the per-tenant quota state, keyed by tenant name; absent
	// in open-access mode (so pre-multi-tenant probes see the exact
	// pre-existing document).
	Tenants map[string]tenantQuotaView `json:"tenants,omitempty"`
}

// tenantQuotaView is one tenant's live admission state in /readyz.
type tenantQuotaView struct {
	Active    int     `json:"active"`
	Queued    int     `json:"queued"`
	MaxActive int     `json:"max_active,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	Weight    int     `json:"weight"`
}

// handleReady is the load-balancer readiness probe, distinct from liveness:
// a saturated queue or a begun shutdown answers 503 so routing stops before
// submissions start bouncing with 429, while /healthz keeps reporting the
// process alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	_, slow := s.sched.depths()
	v := readyView{
		QueueDepth:    slow,
		QueueCapacity: s.opts.QueueDepth,
		Workers:       s.opts.Workers,
		WorkersBusy:   s.busy.Load(),
		SweepsActive:  s.activeSweeps(),
		ClusterRole:   s.opts.Role,
	}
	if co := s.opts.Coordinator; co != nil {
		live := co.LiveWorkerCount()
		v.ClusterWorkersLive = &live
	}
	if s.tenants.Enabled() {
		v.Tenants = make(map[string]tenantQuotaView, len(s.tenants.Names()))
		for _, name := range s.tenants.Names() {
			t := s.tenants.ByName(name)
			v.Tenants[name] = tenantQuotaView{
				Active:    t.activeCount(),
				Queued:    s.sched.queuedFor(name),
				MaxActive: t.MaxActive,
				Rate:      t.Rate,
				Weight:    t.weight(),
			}
		}
	}
	switch {
	case closed:
		v.Status = "shutting down"
		writeJSON(w, http.StatusServiceUnavailable, v)
	case v.QueueDepth >= v.QueueCapacity:
		v.Status = "saturated"
		writeJSON(w, http.StatusServiceUnavailable, v)
	default:
		v.Status = "ready"
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.Registry().WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.Registry().WriteJSON(w)
}

// traceSummary fetches a done job's memtrace summary, writing the error
// response itself when the artifact is unavailable. Returns nil after an
// error has been written.
func (s *Server) traceSummary(w http.ResponseWriter, r *http.Request) *memtrace.Summary {
	j := s.authorizeJob(w, r)
	if j == nil {
		return nil
	}
	j.mu.Lock()
	state := j.state
	tr := j.res.Trace
	j.mu.Unlock()
	switch {
	case !state.terminal():
		writeError(w, http.StatusConflict, codeConflict, "job is %s; artifacts are available once it is done", state)
		return nil
	case state != StateDone:
		writeError(w, http.StatusNotFound, codeNotFound, "job %s; no results", state)
		return nil
	case tr == nil:
		writeError(w, http.StatusNotFound, codeNotFound, "job ran without tracing; submit with \"trace\": true")
		return nil
	}
	return tr
}

// handleTrace serves a done job's Chrome trace_event JSON (Perfetto-loadable).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.traceSummary(w, r)
	if tr == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename=\"trace.json\"")
	_ = tr.WriteChromeTrace(w)
}

// handleTimeline serves a done job's epoch time-series as CSV.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	tr := s.traceSummary(w, r)
	if tr == nil {
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", "attachment; filename=\"timeline.csv\"")
	_ = tr.WriteTimelineCSV(w)
}
