package simserver

import (
	"fmt"
	"net/http"
	"strconv"

	"fbdsim/internal/telemetry"
)

// This file is the live-telemetry half of the API: every job and sweep owns
// a telemetry.Stream in the server's hub, fed with lifecycle state events,
// per-epoch samples (traced jobs) and completed grid points (sweeps).
//
//	GET /v1/jobs/{id}/events    SSE stream: state transitions, epoch samples, end
//	GET /v1/jobs/{id}/stats     latest-window JSON snapshot of the epoch series
//	GET /v1/sweeps/{id}/events  SSE stream: state transitions, grid points, end
//
// The SSE wire format is one frame per hub event,
//
//	id: <seq>
//	event: <state|epoch|reset|point|end>
//	data: <json>
//
// where seq is the stream's monotonically increasing sequence number, so a
// reconnecting client can detect gaps. A new subscriber first receives the
// stream's retained history (bounded by the hub's event ring), then live
// events until the entity reaches a terminal state (the "end" event), the
// client disconnects, or the server shuts down. Subscribers that fall
// behind are dropped — never allowed to block the simulation publishing
// into the hub.

// publishState forwards a lifecycle transition to the job's stream.
// Nil-safe so tests that construct bare jobs keep working.
func (j *job) publishState(state State) {
	if j.stream != nil {
		j.stream.PublishState(string(state))
	}
}

// closeStream ends the job's stream with its terminal state.
func (j *job) closeStream(state State) {
	if j.stream != nil {
		j.stream.Close(string(state))
	}
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	s.serveSSE(w, r, j.stream)
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sj := s.authorizeSweep(w, r)
	if sj == nil {
		return
	}
	s.serveSSE(w, r, sj.stream)
}

// handleJobStats serves the latest telemetry window as one JSON document:
// the retained epoch samples (?window=N trims to the most recent N), the
// last published state, and the stream counters. Cheap to poll — one
// lock-scoped copy, no subscription.
func (s *Server) handleJobStats(w http.ResponseWriter, r *http.Request) {
	j := s.authorizeJob(w, r)
	if j == nil {
		return
	}
	window := 0
	if q := r.URL.Query().Get("window"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest, "window must be a non-negative integer")
			return
		}
		window = n
	}
	writeJSON(w, http.StatusOK, j.stream.Snapshot(window))
}

// serveSSE streams one telemetry stream over Server-Sent Events until the
// stream ends, the client leaves, or the server begins shutdown.
//
// Reconnects resume: every frame carries its sequence number in the id:
// field, browsers and spec-conforming clients echo the last one seen back
// as a Last-Event-ID header, and the replay then skips everything at or
// below it — the client sees each event once across any number of
// reconnects (within the hub's retained ring). A reconnect after the
// stream already delivered its terminal event answers 204 No Content: the
// client has everything and should stop reconnecting.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, st *telemetry.Stream) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "response writer does not support streaming")
		return
	}
	var after int64
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		n, err := strconv.ParseInt(h, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"Last-Event-ID must be a non-negative event sequence number")
			return
		}
		after = n
	}
	if lastSeq, closed := st.Terminal(); closed && after >= lastSeq {
		// The stream is terminal and the client already consumed its last
		// event (including "end"); nothing will ever follow.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	// History and live registration are atomic in the hub: nothing is both
	// missing from the replay and absent from the channel.
	replay, sub := st.SubscribeFrom(after)
	defer sub.Cancel()
	for _, ev := range replay {
		if !writeSSE(w, ev) {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				// Stream closed (terminal state already delivered) or this
				// subscriber fell behind and was dropped.
				return
			}
			if !writeSSE(w, ev) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.shutdownCh:
			// Server shutdown: end the stream promptly instead of holding
			// the HTTP drain hostage until the grace period expires.
			return
		}
	}
}

// writeSSE emits one event frame; false when the client is gone. Data is
// compact JSON (no raw newlines), so a single data: line is always valid.
func writeSSE(w http.ResponseWriter, ev telemetry.Event) bool {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
	return err == nil
}
