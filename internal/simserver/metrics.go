package simserver

import (
	"sync"
	"time"

	"fbdsim/internal/clock"
	"fbdsim/internal/stats"
)

// Metrics is the server's counter set, published through a stats.Registry
// on /metrics. All counters are goroutine-safe.
type Metrics struct {
	reg *stats.Registry

	// Job lifecycle.
	Accepted  *stats.Counter // submissions admitted (including coalesced)
	Completed *stats.Counter // jobs that finished successfully
	Cancelled *stats.Counter // jobs cancelled before completing
	Failed    *stats.Counter // jobs that errored
	Paused    *stats.Counter // jobs checkpointed and stopped via pause
	Rejected  *stats.Counter // submissions refused with 429 (queue full)
	Panics    *stats.Counter // simulation panics recovered by the worker pool
	Retries   *stats.Counter // transient-failure job retries performed
	SimCycles *stats.Counter // simulated CPU cycles across completed jobs

	// Result cache.
	CacheHits   *stats.Counter // served from cache or coalesced onto a run
	CacheMisses *stats.Counter // submissions that required a simulation

	// Sweeps.
	SweepsAccepted  *stats.Counter // sweep submissions admitted
	SweepsCompleted *stats.Counter // sweeps whose every grid point emitted
	SweepsCancelled *stats.Counter // sweeps stopped before completing
	SweepsFailed    *stats.Counter // sweeps that errored (journal, cluster)
	SweepPoints     *stats.Counter // grid points emitted across all sweeps

	// Cluster worker side: leases accepted by /v1/cluster/execute and the
	// points answered for them (fresh, cached or journal-replayed). The
	// coordinator-side cluster_* gauges live on the cluster.Coordinator
	// and are registered in New when one is configured.
	LeasesExecuted *stats.Counter
	LeasePoints    *stats.Counter

	// Per-tenant counters, keyed by tenant name (keyfile tenants only, so
	// cardinality is bounded by configuration). Registered by New when
	// multi-tenant mode is on; nil-safe to index when it is off.
	tenantAccepted map[string]*stats.Counter // admitted submissions per tenant
	tenantRejected map[string]*stats.Counter // 429s (rate or quota) per tenant

	// Per-job wall time of completed simulations.
	wallMu sync.Mutex
	wall   stats.Summary

	// Full wall-time distributions: queueWait is submission→start for every
	// job that reached a worker; runDur is the start→terminal wall time of
	// every executed job, whatever its outcome. Both histograms observe
	// durations as clock.Time picoseconds, the registry's histogram
	// convention, and export as native Prometheus histograms in seconds.
	histMu    sync.Mutex
	queueWait stats.Histogram
	runDur    stats.Histogram
}

func newMetrics() *Metrics {
	reg := &stats.Registry{}
	m := &Metrics{
		reg:         reg,
		Accepted:    reg.Counter("jobs_accepted"),
		Completed:   reg.Counter("jobs_completed"),
		Cancelled:   reg.Counter("jobs_cancelled"),
		Failed:      reg.Counter("jobs_failed"),
		Paused:      reg.Counter("jobs_paused"),
		Rejected:    reg.Counter("jobs_rejected"),
		Panics:      reg.Counter("job_panics"),
		Retries:     reg.Counter("job_retries"),
		SimCycles:   reg.Counter("sim_cycles_total"),
		CacheHits:   reg.Counter("cache_hits"),
		CacheMisses: reg.Counter("cache_misses"),

		SweepsAccepted:  reg.Counter("sweeps_accepted"),
		SweepsCompleted: reg.Counter("sweeps_completed"),
		SweepsCancelled: reg.Counter("sweeps_cancelled"),
		SweepsFailed:    reg.Counter("sweeps_failed"),
		SweepPoints:     reg.Counter("sweep_points_total"),

		LeasesExecuted: reg.Counter("cluster_leases_executed"),
		LeasePoints:    reg.Counter("cluster_lease_points_total"),

		tenantAccepted: make(map[string]*stats.Counter),
		tenantRejected: make(map[string]*stats.Counter),
	}
	reg.Func("job_wall_ms_count", func() any { i, _, _ := m.wallSnapshot(); return i })
	reg.Func("job_wall_ms_mean", func() any { _, mean, _ := m.wallSnapshot(); return mean })
	reg.Func("job_wall_ms_max", func() any { _, _, max := m.wallSnapshot(); return max })
	reg.Func("job_queue_wait_seconds", func() any {
		m.histMu.Lock()
		defer m.histMu.Unlock()
		return m.queueWait.Clone()
	})
	reg.Func("job_run_seconds", func() any {
		m.histMu.Lock()
		defer m.histMu.Unlock()
		return m.runDur.Clone()
	})
	return m
}

// durationTime converts a wall duration to the histogram domain
// (clock.Time picoseconds), saturating instead of overflowing.
func durationTime(d time.Duration) clock.Time {
	if d < 0 {
		return 0
	}
	ns := d.Nanoseconds()
	if ns > (1<<62)/1000 {
		return clock.Time(1 << 62)
	}
	return clock.Time(ns * 1000)
}

// ObserveQueueWait records one job's submission→start wait.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	m.histMu.Lock()
	m.queueWait.Observe(durationTime(d))
	m.histMu.Unlock()
}

// ObserveRunDuration records one executed job's start→terminal wall time.
func (m *Metrics) ObserveRunDuration(d time.Duration) {
	m.histMu.Lock()
	m.runDur.Observe(durationTime(d))
	m.histMu.Unlock()
}

// ObserveWall records one completed job's wall time.
func (m *Metrics) ObserveWall(d time.Duration) {
	m.wallMu.Lock()
	m.wall.Observe(float64(d) / float64(time.Millisecond))
	m.wallMu.Unlock()
}

func (m *Metrics) wallSnapshot() (count int64, mean, max float64) {
	m.wallMu.Lock()
	defer m.wallMu.Unlock()
	return m.wall.Count(), m.wall.Mean(), m.wall.Max()
}

// Registry exposes the underlying registry so the server can attach
// gauges (queue depth, busy workers).
func (m *Metrics) Registry() *stats.Registry { return m.reg }
