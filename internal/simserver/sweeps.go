package simserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fbdsim/internal/cluster"
	"fbdsim/internal/config"
	"fbdsim/internal/sweep"
	"fbdsim/internal/system"
	"fbdsim/internal/telemetry"
	"fbdsim/internal/workload"
)

// This file is the sweep half of the API: POST /v1/sweeps expands a
// declarative grid (configs × workloads × seeds) through the
// internal/sweep engine, GET polls progress, GET .../results streams the
// completed points as NDJSON (optionally tailing a live sweep with
// ?follow=1), DELETE cancels. Sweeps share the server's single-flight
// result cache with individual job submissions, so identical simulations
// are never run twice no matter which door they come in through.

// sweepConfigDim is one configuration-dimension entry of a sweep request:
// a preset plus an optional strict JSON overlay, exactly like a job
// submission's preset/config pair.
type sweepConfigDim struct {
	// Name labels the dimension value in results; defaults to the preset
	// name. Names must be unique within one sweep.
	Name   string          `json:"name"`
	Preset string          `json:"preset"`
	Config json.RawMessage `json:"config"`
	// Fidelity overrides the sweep-level tier for this config's points
	// ("" inherits): triage the grid analytically, refine one config
	// cycle-accurately, in a single submission.
	Fidelity string `json:"fidelity"`
}

// sweepWorkloadDim is one workload-dimension entry: a benchmark list run
// one-per-core. Name defaults to the benchmarks joined with "+".
type sweepWorkloadDim struct {
	Name       string   `json:"name"`
	Benchmarks []string `json:"benchmarks"`
}

// sweepRequest is the POST /v1/sweeps body. The grid is the cross product
// Configs × Workloads × Seeds; each point is one simulation.
type sweepRequest struct {
	Name      string             `json:"name"`
	Configs   []sweepConfigDim   `json:"configs"`
	Workloads []sweepWorkloadDim `json:"workloads"`
	// Seeds is the seed dimension; empty runs one pass per
	// (config, workload) with each config's own seed.
	Seeds []int64 `json:"seeds"`
	// MaxInsts > 0 overrides every point's instruction budget;
	// WarmupInsts > 0 overrides every point's warmup budget.
	MaxInsts    int64 `json:"max_insts"`
	WarmupInsts int64 `json:"warmup_insts"`
	// Parallel bounds concurrently simulating points, clamped to the
	// server's SweepParallel cap (0 takes the cap).
	Parallel int `json:"parallel"`
	// Fidelity selects every point's simulation tier: "cycle-accurate"
	// (or "", the default), "sampled" or "analytic". Per-config
	// fidelity overrides it point-wise.
	Fidelity string `json:"fidelity"`
}

// sweepView is the JSON rendering of a sweep.
type sweepView struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Class is the scheduler priority class sweep points run under —
	// always "batch": grid points borrow worker slots at the lowest
	// priority so interactive jobs overtake them.
	Class string `json:"class"`
	// Tenant is the owning principal's keyfile name; absent in
	// open-access mode.
	Tenant string `json:"tenant,omitempty"`
	// Fingerprint is the spec's identity hash (see sweep.Spec.Fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Progress carries the engine counters: total, completed, failed,
	// cache hits.
	Progress sweep.Progress `json:"progress"`
	// Points is the number of grid points emitted so far; they are
	// readable at /v1/sweeps/{id}/results while the sweep runs.
	Points int     `json:"points"`
	Error  string  `json:"error,omitempty"`
	WallMS float64 `json:"wall_ms,omitempty"`
}

// sweepJob is one tracked sweep — locally engine-run or cluster-leased —
// plus its accumulated points. progress abstracts over the two executors
// (sweep.Engine.Progress or cluster.Run.Progress).
type sweepJob struct {
	id          string
	name        string
	fingerprint string
	// tenant is the owning principal's name ("" in open-access mode);
	// tenantRef is the live record for quota release at terminal time.
	tenant    string
	tenantRef *Tenant
	total     int
	progress  func() sweep.Progress
	cancel    context.CancelFunc
	done      chan struct{} // closed on terminal transition

	// stream is the sweep's live-telemetry channel: lifecycle states plus
	// one point event per completed grid point.
	stream *telemetry.Stream

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on point append and terminal transition
	state    State
	points   []sweep.Point
	errMsg   string
	started  time.Time
	finished time.Time
}

func newSweepJob(id string, spec sweep.Spec, total int, progress func() sweep.Progress, cancel context.CancelFunc, stream *telemetry.Stream) *sweepJob {
	sj := &sweepJob{
		id:          id,
		name:        spec.Name,
		fingerprint: spec.Fingerprint(),
		total:       total,
		progress:    progress,
		cancel:      cancel,
		done:        make(chan struct{}),
		stream:      stream,
		state:       StateRunning,
		started:     time.Now(),
	}
	sj.cond = sync.NewCond(&sj.mu)
	if stream != nil {
		stream.PublishState(string(StateRunning))
	}
	return sj
}

// setTenant stamps the sweep's owner before it is published in s.sweeps.
func (sj *sweepJob) setTenant(t *Tenant) {
	if t == nil {
		return
	}
	sj.tenant = t.Name
	sj.tenantRef = t
}

func (sj *sweepJob) view() sweepView {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	v := sweepView{
		ID:          sj.id,
		Name:        sj.name,
		State:       string(sj.state),
		Class:       classNames[classBatch],
		Tenant:      sj.tenant,
		Fingerprint: sj.fingerprint,
		Progress:    sj.progress(),
		Points:      len(sj.points),
		Error:       sj.errMsg,
	}
	if !sj.finished.IsZero() {
		v.WallMS = float64(sj.finished.Sub(sj.started)) / float64(time.Millisecond)
	}
	return v
}

func (sj *sweepJob) currentState() State {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.state
}

// finish records the terminal state and wakes pollers and followers.
func (sj *sweepJob) finish(state State, errMsg string) {
	sj.mu.Lock()
	closed := sj.state.terminal()
	if !closed {
		sj.state = state
		sj.errMsg = errMsg
		sj.finished = time.Now()
		close(sj.done)
	}
	sj.cond.Broadcast()
	sj.mu.Unlock()
	if !closed {
		if sj.stream != nil {
			sj.stream.Close(string(state))
		}
		if sj.tenantRef != nil {
			sj.tenantRef.release()
		}
	}
}

// buildSweepSpec resolves a sweep request into a validated engine spec,
// applying the server's parallelism, grid-size and instruction-budget caps.
func (s *Server) buildSweepSpec(req *sweepRequest) (sweep.Spec, error) {
	spec := sweep.Spec{
		Name:        req.Name,
		Seeds:       req.Seeds,
		MaxInsts:    req.MaxInsts,
		WarmupInsts: -1, // keep each config's own warmup by default
		Parallel:    req.Parallel,
		Fidelity:    req.Fidelity,
	}
	if spec.Name == "" {
		spec.Name = "sweep"
	}
	if req.WarmupInsts > 0 {
		spec.WarmupInsts = req.WarmupInsts
	}
	if spec.Parallel <= 0 || spec.Parallel > s.opts.SweepParallel {
		spec.Parallel = s.opts.SweepParallel
	}
	for _, dim := range req.Configs {
		cfg, err := resolveConfig(dim.Preset, dim.Config)
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("config %q: %v", dim.Name, err)
		}
		name := dim.Name
		if name == "" {
			if name = dim.Preset; name == "" {
				name = "fbd"
			}
		}
		spec.Configs = append(spec.Configs, sweep.NamedConfig{Name: name, Config: cfg, Fidelity: dim.Fidelity})
	}
	for _, dim := range req.Workloads {
		if err := validBenchmarks(dim.Benchmarks); err != nil {
			return sweep.Spec{}, fmt.Errorf("workload %q: %v", dim.Name, err)
		}
		name := dim.Name
		if name == "" {
			name = strings.Join(dim.Benchmarks, "+")
		}
		spec.Workloads = append(spec.Workloads, workload.Workload{Name: name, Benchmarks: dim.Benchmarks})
	}
	if err := spec.Validate(); err != nil {
		return sweep.Spec{}, err
	}
	seeds := len(spec.Seeds)
	if seeds == 0 {
		seeds = 1
	}
	if points := len(spec.Configs) * len(spec.Workloads) * seeds; points > s.opts.MaxSweepPoints {
		return sweep.Spec{}, fmt.Errorf("sweep grid has %d points, server cap is %d", points, s.opts.MaxSweepPoints)
	}
	// Validate every grid point's effective configuration up front: a bad
	// point must fail the submission, not surface minutes later as a
	// failed shard.
	for _, nc := range spec.Configs {
		c := nc.Config
		if spec.MaxInsts > 0 {
			c.MaxInsts = spec.MaxInsts
		}
		if spec.WarmupInsts >= 0 {
			c.WarmupInsts = spec.WarmupInsts
		}
		if s.opts.MaxInsts > 0 && c.MaxInsts > s.opts.MaxInsts {
			return sweep.Spec{}, fmt.Errorf("config %q: max_insts %d exceeds server cap %d", nc.Name, c.MaxInsts, s.opts.MaxInsts)
		}
		for _, wl := range spec.Workloads {
			c.CPU.Cores = len(wl.Benchmarks)
			if err := c.Validate(); err != nil {
				return sweep.Spec{}, fmt.Errorf("config %q with workload %q: %v", nc.Name, wl.Name, err)
			}
		}
	}
	return spec, nil
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "decoding request: %v", err)
		return
	}
	spec, err := s.buildSweepSpec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	tenant := s.tenantFrom(r)
	if !s.chargeTenant(w, tenant) {
		return
	}
	if s.opts.Coordinator != nil {
		s.submitClusterSweep(w, spec, tenant)
		return
	}
	// Every grid point borrows a worker slot through the fair-share
	// scheduler at batch priority before simulating, so a 10k-point sweep
	// shares the same arbiter as interactive jobs instead of
	// oversubscribing the host from its private pool. Cache hits inside
	// the engine's single-flight never reach these wrappers.
	eng, err := sweep.New(spec, sweep.Options{
		Run: func(ctx context.Context, cfg config.Config, benchmarks []string) (system.Results, error) {
			release := s.acquireSlot(ctx, tenant, classBatch)
			defer release()
			return s.opts.Run(ctx, cfg, benchmarks)
		},
		RunTier: func(ctx context.Context, tier string, cfg config.Config, benchmarks []string) (system.Results, error) {
			release := s.acquireSlot(ctx, tenant, classBatch)
			defer release()
			return s.opts.RunTier(ctx, tier, cfg, benchmarks)
		},
		Cache: s.cache,
	})
	if err != nil {
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	ch, err := eng.Start(ctx)
	if err != nil {
		s.mu.Unlock()
		cancel()
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusInternalServerError, codeInternal, "starting sweep: %v", err)
		return
	}
	s.nextSweepID++
	id := fmt.Sprintf("sweep-%d", s.nextSweepID)
	sj := newSweepJob(id, spec, eng.Total(), eng.Progress, cancel, s.hub.Open(id))
	sj.setTenant(tenant)
	s.sweeps[sj.id] = sj
	s.sweepWG.Add(1)
	s.mu.Unlock()

	s.metrics.SweepsAccepted.Inc()
	s.countAccepted(tenant)
	s.log.Info("sweep accepted", "sweep_id", sj.id, "name", sj.name,
		"points", eng.Total(), "tenant", sj.tenant)
	go s.drainSweep(sj, ctx, ch)
	writeJSON(w, http.StatusAccepted, sj.view())
}

// submitClusterSweep admits a sweep in coordinator role: instead of the
// local engine, a cluster.Run leases the grid out to registered workers.
// When journaling is configured the run checkpoints to a per-fingerprint
// journal, so a restarted coordinator resubmitting the same sweep replays
// finished points and leases out only the remainder.
func (s *Server) submitClusterSweep(w http.ResponseWriter, spec sweep.Spec, tenant *Tenant) {
	if s.opts.JournalDir != "" {
		spec.Journal = filepath.Join(s.opts.JournalDir, "sweep-"+shortFP(spec.Fingerprint())+".ndjson")
	}
	run, err := s.opts.Coordinator.NewRun(spec)
	if err != nil {
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, "%v", err)
		return
	}
	// Tenant identity rides the leases to the workers: every lease minted
	// for this run carries the owner's name, so worker-side telemetry and
	// journals attribute the points correctly.
	if tenant != nil {
		run.Tenant = tenant.Name
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if tenant != nil {
			tenant.release()
		}
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown, "server is shutting down")
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.nextSweepID++
	id := fmt.Sprintf("sweep-%d", s.nextSweepID)
	sj := newSweepJob(id, spec, run.Total(), run.Progress, cancel, s.hub.Open(id))
	sj.setTenant(tenant)
	s.sweeps[sj.id] = sj
	s.sweepWG.Add(1)
	s.mu.Unlock()

	s.metrics.SweepsAccepted.Inc()
	s.countAccepted(tenant)
	s.log.Info("cluster sweep accepted", "sweep_id", sj.id, "name", sj.name,
		"points", run.Total(), "journal", spec.Journal, "tenant", sj.tenant)
	go s.driveClusterSweep(sj, ctx, run)
	writeJSON(w, http.StatusAccepted, sj.view())
}

// driveClusterSweep runs one leased sweep to completion and settles its
// terminal state. Points arrive concurrently from lease dispatch
// goroutines; appending under sj.mu keeps pollers, followers and SSE
// consumers consistent.
func (s *Server) driveClusterSweep(sj *sweepJob, ctx context.Context, run *cluster.Run) {
	defer s.sweepWG.Done()
	err := run.Execute(ctx, func(p sweep.Point) {
		sj.mu.Lock()
		sj.points = append(sj.points, p)
		sj.cond.Broadcast()
		sj.mu.Unlock()
		s.metrics.SweepPoints.Inc()
		if sj.stream != nil {
			if data, merr := json.Marshal(p); merr == nil {
				sj.stream.PublishPoint(data)
			}
		}
	})
	switch {
	case err == nil:
		s.metrics.SweepsCompleted.Inc()
		sj.finish(StateDone, "")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.metrics.SweepsCancelled.Inc()
		sj.finish(StateCancelled, err.Error())
	default:
		// Setup failures (a locked journal, a fingerprint mismatch)
		// surface here: the sweep fails with the cause in its view.
		s.metrics.SweepsFailed.Inc()
		sj.finish(StateFailed, err.Error())
	}
	v := sj.view()
	s.log.Info("cluster sweep finished", "sweep_id", sj.id, "state", v.State,
		"points", v.Points, "error", v.Error)
}

// drainSweep accumulates the engine's point stream into the sweep record
// and settles its terminal state once the stream closes.
func (s *Server) drainSweep(sj *sweepJob, ctx context.Context, ch <-chan sweep.Point) {
	defer s.sweepWG.Done()
	emitted := 0
	for p := range ch {
		sj.mu.Lock()
		sj.points = append(sj.points, p)
		sj.cond.Broadcast()
		sj.mu.Unlock()
		emitted++
		s.metrics.SweepPoints.Inc()
		if sj.stream != nil {
			// Same JSON rendering the NDJSON results endpoint streams, so
			// SSE followers and ?follow=1 tails see identical documents.
			if data, err := json.Marshal(p); err == nil {
				sj.stream.PublishPoint(data)
			}
		}
	}
	// The engine emits one point per grid slot (failed points carry Err);
	// anything short means cancellation stopped dispatch.
	if emitted == sj.total {
		s.metrics.SweepsCompleted.Inc()
		sj.finish(StateDone, "")
		s.log.Info("sweep finished", "sweep_id", sj.id, "state", string(StateDone), "points", emitted)
		return
	}
	s.metrics.SweepsCancelled.Inc()
	msg := context.Canceled.Error()
	if err := ctx.Err(); err != nil {
		msg = err.Error()
	}
	sj.finish(StateCancelled, msg)
	s.log.Info("sweep finished", "sweep_id", sj.id, "state", string(StateCancelled), "points", emitted)
}

func (s *Server) lookupSweep(id string) *sweepJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// activeSweeps counts non-terminal sweeps (the sweeps_active gauge).
func (s *Server) activeSweeps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sj := range s.sweeps {
		if !sj.currentState().terminal() {
			n++
		}
	}
	return n
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sj := s.authorizeSweep(w, r)
	if sj == nil {
		return
	}
	writeJSON(w, http.StatusOK, sj.view())
}

// handleSweepResults streams the sweep's completed points as NDJSON, one
// sweep.Point per line in completion order. Without ?follow=1 it returns
// the points completed so far and ends; with it, the stream stays open and
// tails new points until the sweep reaches a terminal state or the client
// disconnects.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sj := s.authorizeSweep(w, r)
	if sj == nil {
		return
	}
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting follower must not sleep on the condition variable
	// forever; wake it so the wait loop can observe the dead request.
	stopWatch := context.AfterFunc(r.Context(), func() {
		sj.mu.Lock()
		sj.cond.Broadcast()
		sj.mu.Unlock()
	})
	defer stopWatch()

	next := 0
	for {
		sj.mu.Lock()
		if follow {
			for next >= len(sj.points) && !sj.state.terminal() && r.Context().Err() == nil {
				sj.cond.Wait()
			}
		}
		batch := append([]sweep.Point(nil), sj.points[next:]...)
		next += len(batch)
		terminal := sj.state.terminal()
		sj.mu.Unlock()

		for _, p := range batch {
			if err := enc.Encode(p); err != nil {
				return
			}
		}
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if !follow || terminal || r.Context().Err() != nil {
			return
		}
	}
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sj := s.authorizeSweep(w, r)
	if sj == nil {
		return
	}
	sj.cancel()
	// In-flight shards observe the cancellation at cycle-batch granularity;
	// wait for the terminal state so the response carries it.
	select {
	case <-sj.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, codeCancelTimeout, "cancellation still in flight")
		return
	}
	writeJSON(w, http.StatusOK, sj.view())
}
